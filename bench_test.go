package lhmm

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section (§V). Each benchmark regenerates its artifact on
// the synthetic-Hangzhou and synthetic-Xiamen presets and prints the
// rendered rows/series once, so
//
//	go test -bench=. -benchmem
//
// reproduces the full experiment suite. Suites (datasets + trained
// models) are built lazily and shared across benchmarks.
//
// Scale knobs: LHMM_BENCH_SCALE (default 0.04) and LHMM_BENCH_TRIPS
// (default 220) size the synthetic cities; the defaults keep the whole
// suite tractable on one machine while preserving the paper's result
// shape (see EXPERIMENTS.md).

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/eval"
)

var (
	benchOnce sync.Once
	benchHZ   *Suite
	benchXM   *Suite

	printedMu sync.Mutex
	printed   = map[string]bool{}
)

func benchScale() float64 {
	if v := os.Getenv("LHMM_BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.04
}

func benchTrips() int {
	if v := os.Getenv("LHMM_BENCH_TRIPS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 220
}

func suites() (*Suite, *Suite) {
	benchOnce.Do(func() {
		scale, trips := benchScale(), benchTrips()
		benchHZ = NewSuite(eval.DefaultSuite("hangzhou", scale, trips))
		benchXM = NewSuite(eval.DefaultSuite("xiamen", scale, trips))
	})
	return benchHZ, benchXM
}

// runExperiment executes the experiment once per benchmark iteration
// and prints its rendering the first time.
func runExperiment(b *testing.B, id string, both bool) {
	b.Helper()
	hz, xm := suites()
	secondary := xm
	if !both {
		secondary = nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := RunExperiment(id, hz, secondary)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		printedMu.Lock()
		if !printed[id] {
			printed[id] = true
			fmt.Printf("\n%s\n", out)
		}
		printedMu.Unlock()
	}
}

// BenchmarkTable1 regenerates Table I (dataset characteristics) for
// both synthetic datasets.
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1", true) }

// BenchmarkTable2 regenerates Table II (overall performance of all 11
// methods) on both datasets.
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2", true) }

// BenchmarkTable3 regenerates Table III (ablations) on both datasets.
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3", true) }

// BenchmarkFigure7a regenerates Fig. 7(a): accuracy vs. distance to
// the city center.
func BenchmarkFigure7a(b *testing.B) { runExperiment(b, "fig7a", false) }

// BenchmarkFigure7b regenerates Fig. 7(b): accuracy vs. sampling rate.
func BenchmarkFigure7b(b *testing.B) { runExperiment(b, "fig7b", false) }

// BenchmarkFigure8 regenerates Fig. 8: accuracy vs. candidate number k.
func BenchmarkFigure8(b *testing.B) { runExperiment(b, "fig8", false) }

// BenchmarkFigure9 regenerates Fig. 9: accuracy vs. shortcut number K.
func BenchmarkFigure9(b *testing.B) { runExperiment(b, "fig9", false) }

// BenchmarkFigure10a regenerates Fig. 10(a): accuracy vs. per-tower
// data scale (retrains at each level).
func BenchmarkFigure10a(b *testing.B) { runExperiment(b, "fig10a", false) }

// BenchmarkFigure10b regenerates Fig. 10(b): accuracy vs. total
// historical data scale (retrains at each level).
func BenchmarkFigure10b(b *testing.B) { runExperiment(b, "fig10b", false) }

// BenchmarkFigure11 regenerates Fig. 11: the hardest-trip case study.
func BenchmarkFigure11(b *testing.B) { runExperiment(b, "fig11", false) }

// BenchmarkFidelity validates the ground-truth substitution: the
// paper's label recipe (classical HMM over GPS, §V-A1) must recover
// the simulator's true paths (DESIGN.md §2).
func BenchmarkFidelity(b *testing.B) { runExperiment(b, "fidelity", true) }

// BenchmarkMatchOne measures single-trajectory matching latency with
// the trained LHMM (the per-trajectory cost behind Table II's Avg
// Time column).
func BenchmarkMatchOne(b *testing.B) {
	hz, _ := suites()
	model, err := hz.LHMM()
	if err != nil {
		b.Fatal(err)
	}
	ds, err := hz.Dataset()
	if err != nil {
		b.Fatal(err)
	}
	trips := ds.TestTrips()
	if len(trips) == 0 {
		b.Fatal("no test trips")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Match(trips[i%len(trips)].Cell); err != nil {
			b.Fatal(err)
		}
	}
}
