package lhmm

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/faultinject"
)

// TestPublicAPIDegenerateInputs exercises the hostile inputs a real
// cellular feed produces against the public facade: whatever happens,
// Match must return a result or an error — never panic.
func TestPublicAPIDegenerateInputs(t *testing.T) {
	ds := tinyDataset(t)
	model, err := Train(ds, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	base := ds.TestTrips()[0].Cell

	t.Run("single-point", func(t *testing.T) {
		res, err := model.Match(base[:1])
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Path) == 0 {
			t.Error("no path for single point")
		}
	})

	t.Run("nan-coords-strict", func(t *testing.T) {
		ct := append(CellTrajectory(nil), base...)
		ct[1].P.X = math.NaN()
		if _, err := model.Match(ct); err == nil {
			t.Error("NaN coordinate under strict sanitization did not error")
		}
	})

	t.Run("nan-coords-drop", func(t *testing.T) {
		model.Cfg.Sanitize = SanitizeDrop
		defer func() { model.Cfg.Sanitize = SanitizeStrict }()
		ct := append(CellTrajectory(nil), base...)
		ct[1].P.X = math.NaN()
		res, err := model.Match(ct)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sanitize.BadCoords != 1 {
			t.Errorf("BadCoords = %d, want 1", res.Sanitize.BadCoords)
		}
		if len(res.Matched) != len(ct)-1 {
			t.Errorf("matched %d points, want %d", len(res.Matched), len(ct)-1)
		}
	})

	t.Run("duplicate-timestamps", func(t *testing.T) {
		model.Cfg.Sanitize = SanitizeDrop
		defer func() { model.Cfg.Sanitize = SanitizeStrict }()
		ct := append(CellTrajectory(nil), base...)
		ct[2].T = ct[1].T // zero-duration duplicate
		res, err := model.Match(ct)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sanitize.BadTimes != 1 {
			t.Errorf("BadTimes = %d, want 1", res.Sanitize.BadTimes)
		}
	})

	t.Run("all-bad-points", func(t *testing.T) {
		model.Cfg.Sanitize = SanitizeDrop
		defer func() { model.Cfg.Sanitize = SanitizeStrict }()
		ct := CellTrajectory{
			{P: Point{X: math.NaN(), Y: 0}, T: 0},
			{P: Point{X: math.Inf(1), Y: 0}, T: 60},
		}
		if _, err := model.Match(ct); err == nil {
			t.Error("trajectory with no valid points did not error")
		}
	})

	t.Run("cancellation", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := model.MatchContext(ctx, base); !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	})

	t.Run("chaos-batch-nan", func(t *testing.T) {
		t.Cleanup(faultinject.DisarmAll)
		if err := faultinject.Arm("core.trans.nan:2"); err != nil {
			t.Fatal(err)
		}
		res, err := model.Match(base)
		if err != nil {
			t.Fatal(err)
		}
		if res.Degraded == 0 {
			t.Error("injected NaN scores produced no degraded events")
		}
		if len(res.Path) == 0 {
			t.Error("empty path under degraded scoring")
		}
	})

	t.Run("chaos-dead-candidates", func(t *testing.T) {
		t.Cleanup(faultinject.DisarmAll)
		model.Cfg.OnBreak = BreakSplit
		defer func() { model.Cfg.OnBreak = BreakError }()
		if err := faultinject.Arm("hmm.candidates.empty:3"); err != nil {
			t.Fatal(err)
		}
		res, err := model.Match(base)
		if err != nil {
			t.Fatal(err)
		}
		dead := 0
		for _, d := range res.Dead {
			if d {
				dead++
			}
		}
		if dead == 0 {
			t.Error("injected empty candidate sets produced no dead points")
		}
	})
}

// TestPublicAPISanitizeHelpers covers the facade's sanitization
// re-exports.
func TestPublicAPISanitizeHelpers(t *testing.T) {
	if p, err := ParseBreakPolicy("split"); err != nil || p != BreakSplit {
		t.Errorf("ParseBreakPolicy(split) = %v, %v", p, err)
	}
	if m, err := ParseSanitizeMode("drop"); err != nil || m != SanitizeDrop {
		t.Errorf("ParseSanitizeMode(drop) = %v, %v", m, err)
	}
	ct := CellTrajectory{
		{P: Point{X: 0, Y: 0}, T: 0},
		{P: Point{X: math.NaN(), Y: 0}, T: 60},
		{P: Point{X: 10, Y: 0}, T: 120},
	}
	out, rep, err := Sanitize(ct, SanitizeDrop)
	if err != nil || len(out) != 2 || rep.BadCoords != 1 {
		t.Errorf("Sanitize: out=%d rep=%+v err=%v", len(out), rep, err)
	}
}
