package lhmm

import (
	"bytes"
	"math"
	"testing"
)

// tinyDataset builds a minimal dataset through the public API.
func tinyDataset(t testing.TB) *Dataset {
	t.Helper()
	cfg := SyntheticXiamen(0.02, 24)
	cfg.Seed = 77
	ds, err := GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Dim = 12
	cfg.Epochs = 1
	cfg.FuseEpochs = 1
	cfg.K = 8
	cfg.PoolSize = 16
	cfg.CoPool = 6
	cfg.PairsPerTrip = 16
	return cfg
}

func TestPublicAPITrainMatchEvaluate(t *testing.T) {
	ds := tinyDataset(t)
	model, err := Train(ds, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	trip := ds.TestTrips()[0]
	res, err := model.Match(trip.Cell)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Path) == 0 {
		t.Fatal("empty matched path")
	}
	pm := EvalPath(ds.Net, res.Path, trip.Path, 50)
	if pm.CMF < 0 || pm.CMF > 1 {
		t.Errorf("CMF out of range: %v", pm.CMF)
	}
	summary := Evaluate(ds, AsMethod("LHMM", model), ds.TestTrips(), 50)
	if summary.Trips != len(ds.TestTrips()) {
		t.Errorf("Evaluate covered %d trips", summary.Trips)
	}
	if summary.AvgTimeS <= 0 {
		t.Error("no timing recorded")
	}
}

func TestPublicAPISaveLoad(t *testing.T) {
	ds := tinyDataset(t)
	cfg := tinyConfig()
	model, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := NewModel(ds, ds.TrainTrips(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	trip := ds.TestTrips()[0]
	a, _ := model.Match(trip.Cell)
	b, _ := restored.Match(trip.Cell)
	if len(a.Path) != len(b.Path) {
		t.Fatal("restored model diverges")
	}
}

func TestPublicAPIClassicalAndFilters(t *testing.T) {
	ds := tinyDataset(t)
	router := NewRouter(ds.Net)
	matcher := ClassicalMatcher(ds.Net, router, 10, 450, 500)
	trip := ds.TestTrips()[0]
	out, err := matcher.Match(trip.Cell)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Path) == 0 {
		t.Error("classical matcher returned empty path")
	}
	filtered := Preprocess(trip.Cell, DefaultFilterConfig())
	if len(filtered) == 0 || len(filtered) > len(trip.Cell) {
		t.Errorf("Preprocess kept %d of %d", len(filtered), len(trip.Cell))
	}
}

func TestPublicAPIPresets(t *testing.T) {
	hz := SyntheticHangzhou(0.05, 10)
	xm := SyntheticXiamen(0.05, 10)
	if hz.City.Name == xm.City.Name {
		t.Error("presets share a name")
	}
	// Hangzhou samples more sparsely than Xiamen (Table I).
	if hz.Trips.CellMeanInterval <= xm.Trips.CellMeanInterval {
		t.Error("preset sampling intervals inverted")
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	s := NewSuite(DefaultSuite("xiamen", 0.02, 10))
	if _, err := RunExperiment("bogus", s, nil); err == nil {
		t.Error("unknown experiment did not error")
	}
}

func TestRandSourceDeterminism(t *testing.T) {
	a, b := RandSource(5), RandSource(5)
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("RandSource not deterministic")
		}
	}
	if math.IsNaN(RandSource(1).Float64()) {
		t.Fatal("bad rand")
	}
}

func TestPublicStreamingAPI(t *testing.T) {
	ds := tinyDataset(t)
	router := NewRouter(ds.Net)
	sm := NewClassicalStream(ds.Net, router, 8, 2, 450, 500)
	trip := ds.TestTrips()[0]
	var matched int
	for _, p := range trip.Cell {
		out, err := sm.Push(p)
		if err != nil {
			t.Fatal(err)
		}
		matched += len(out)
	}
	matched += len(sm.Flush())
	if matched != len(trip.Cell) {
		t.Errorf("stream matched %d of %d points", matched, len(trip.Cell))
	}
	if len(sm.Path()) == 0 {
		t.Error("empty stream path")
	}
}

func TestPublicKalmanAndFrechet(t *testing.T) {
	ds := tinyDataset(t)
	trip := ds.TestTrips()[0]
	smoothed := KalmanFilter(trip.Cell, KalmanConfig{ProcessNoise: 1, MeasurementNoise: 300})
	if len(smoothed) != len(trip.Cell) {
		t.Fatalf("Kalman changed length")
	}
	d := DiscreteFrechet(smoothed.Positions(), trip.PathGeom)
	if d <= 0 {
		t.Errorf("Frechet distance = %v", d)
	}
	geom := NewGeometricMatcher(ds.Net, NewRouter(ds.Net))
	out, err := geom.Match(trip.Cell)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Path) == 0 {
		t.Error("geometric matcher empty path")
	}
}
