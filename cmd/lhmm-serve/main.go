// Command lhmm-serve is the online map-matching service: it loads a
// dataset and trained LHMM weights, then serves whole-trajectory and
// streaming-session matching over HTTP/JSON.
//
// Usage:
//
//	lhmm-serve -addr :8080 -data data.json -model model.json
//
// Endpoints:
//
//	POST   /v1/match                  match a whole trajectory (byte-identical to `lhmm match -json`)
//	POST   /v1/sessions               open a streaming session (body: {"lag": N})
//	POST   /v1/sessions/{id}/points   push points, get finalized matches back
//	POST   /v1/sessions/{id}/finish   flush and close a session
//	GET    /v1/sessions/{id}          session progress counters
//	DELETE /v1/sessions/{id}          discard a session
//	POST   /v1/reload                 hot-reload model weights from -model
//	GET    /v1/shadow                 shadow-scoring agreement report + promotion verdict
//	POST   /v1/shadow/load            load/replace the shadow candidate (body: {"path": "..."})
//	GET    /v1/quality                windowed quality/SLO report
//	GET    /v1/drift                  learned-score drift vs the -drift-baseline (PSI/KL per signal)
//	GET    /healthz /readyz           liveness, readiness (with quality detail)
//	GET    /metrics /metrics.json     Prometheus text exposition, JSON snapshot
//
// SIGHUP also triggers a hot reload; SIGINT/SIGTERM drain in-flight
// matches (up to -drain-timeout) before exiting. A failed reload —
// missing, truncated, or corrupt weights — keeps the previous model
// serving.
//
// With -checkpoint-dir set, in-flight streaming sessions are
// checkpointed to disk (periodically, on finish, and on drain) and
// restored on the next boot, so a crash or planned restart loses no
// session state. SIGUSR2 forces a synchronous sweep of every dirty
// session — the handover primitive.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	lhmm "repro"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/shadow"
	"repro/internal/traj"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lhmm-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lhmm-serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	data := fs.String("data", "dataset.json", "dataset file from `lhmm datagen`")
	modelPath := fs.String("model", "model.json", "model weights file (re-read on reload)")
	dim := fs.Int("dim", 32, "embedding dimension the model was trained with")
	k := fs.Int("k", 30, "candidates per point")
	seed := fs.Int64("seed", 1, "seed the model was trained with")
	parallel := fs.Int("parallel", 0, "transition fan-out workers per match (<=1 sequential; output identical)")
	onBreak := fs.String("on-break", "error", "default dead-point policy: error|skip|split")
	sanitize := fs.String("sanitize", "strict", "default input validation: strict|drop|off")
	lag := fs.Int("lag", 2, "default streaming emit lag in points")
	workers := fs.Int("workers", 4, "concurrent matching workers")
	queue := fs.Int("queue", 64, "admission queue depth before shedding 429s")
	maxSessions := fs.Int("max-sessions", 1024, "cap on live streaming sessions")
	sessionTTL := fs.Duration("session-ttl", 5*time.Minute, "evict sessions idle longer than this")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request match timeout ceiling")
	drainTimeout := fs.Duration("drain-timeout", 20*time.Second, "max wait for in-flight matches on shutdown")
	sloWindow := fs.Duration("slo-window", time.Minute, "quality monitor sliding window")
	sloDegraded := fs.Float64("slo-degraded-rate", 0.05, "max fraction of matches with degraded scoring before /readyz reports degraded")
	sloGap := fs.Float64("slo-gap-rate", 0.20, "max fraction of matches with gaps or breaks")
	sloEmpty := fs.Float64("slo-empty-rate", 0.20, "max fraction of requests failing with no candidates")
	sloShed := fs.Float64("slo-shed-rate", 0.05, "max fraction of requests shed by admission control")
	sloP99 := fs.Duration("slo-p99", 0, "p99 match latency objective (0 disables)")
	sloDriftPSI := fs.Float64("slo-drift-psi", 0, "max learned-score drift PSI vs -drift-baseline before /readyz reports degraded (0 disables)")
	driftBaseline := fs.String("drift-baseline", "", "training-time drift baseline file (enables GET /v1/drift and lhmm_drift_* gauges)")
	captureOut := fs.String("capture-out", "", "capture sampled match requests + response digests as JSONL to this file (for lhmm replay)")
	captureSample := fs.Float64("capture-sample", 1, "fraction of eligible match requests to capture in [0,1]")
	checkpointDir := fs.String("checkpoint-dir", "", "durable-session store: snapshot in-flight streaming sessions here and restore them on boot (empty disables)")
	checkpointInterval := fs.Duration("checkpoint-interval", 5*time.Second, "periodic dirty-session checkpoint sweep cadence")
	batchWindow := fs.Duration("batch-window", 0, "cross-request micro-batch coalescing window (0 disables batching; float64 output is byte-identical either way)")
	batchMax := fs.Int("batch-max", 0, "flush a micro-batch early once it holds this many rows (0 = default 512)")
	batchWorkers := fs.Int("batch-workers", 0, "micro-batch executor goroutines (0 = GOMAXPROCS)")
	f32 := fs.Bool("f32", false, "score micro-batches on the approximate float32 path (NOT byte-identical; excluded from parity)")
	batchMemo := fs.Int("batch-memo", 64<<20, "byte budget of the cross-batch scored-row memo (0 disables; hits are bit-identical to recomputing)")
	shadowModel := fs.String("shadow-model", "", "candidate model weights to shadow-score against live traffic (also loadable at runtime via POST /v1/shadow/load)")
	shadowSample := fs.Float64("shadow-sample", 1, "fraction of completed match requests and sessions mirrored through the shadow candidate in [0,1]")
	shadowWorkers := fs.Int("shadow-workers", 2, "shadow mirror worker goroutines")
	shadowQueue := fs.Int("shadow-queue", 256, "shadow mirror queue depth; full queue drops samples, never delays serving")
	shadowCaptureOut := fs.String("shadow-capture-out", "", "write disagreeing mirrored requests as capture JSONL to this file (for lhmm replay forensics)")
	shadowMinSamples := fs.Int("shadow-min-samples", 50, "mirrored samples required before the /v1/shadow verdict leaves insufficient_data")
	shadowMinAgreement := fs.Float64("shadow-min-agreement", 0.98, "minimum per-point agreement rate for a ready verdict")
	shadowMaxRegression := fs.Float64("shadow-max-quality-regression", 0.05, "max allowed increase of candidate degraded/gap/failure rates over the active model")
	sloShadowAgreement := fs.Float64("slo-shadow-agreement", 0, "shadow agreement floor before /readyz reports a shadow_divergence quality detail (0 disables)")
	of := obs.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	obsCleanup, err := of.Apply()
	if err != nil {
		return err
	}
	defer obsCleanup() //nolint:errcheck // exiting anyway

	if err := faultinject.ArmFromEnv(); err != nil {
		return err
	}
	if fp := faultinject.Armed(); len(fp) > 0 {
		fmt.Fprintf(os.Stderr, "lhmm-serve: fault injection armed via %s: %s\n",
			faultinject.EnvVar, strings.Join(fp, ","))
	}

	f, err := os.Open(*data)
	if err != nil {
		return err
	}
	ds, err := traj.ReadDataset(f)
	f.Close()
	if err != nil {
		return err
	}

	breakPolicy, err := lhmm.ParseBreakPolicy(*onBreak)
	if err != nil {
		return err
	}
	sanitizeMode, err := lhmm.ParseSanitizeMode(*sanitize)
	if err != nil {
		return err
	}

	// The batching scheduler is created before the loader so every
	// loaded model — initial, hot-reloaded, or checkpoint-recovered —
	// carries it as its executor. Nil when batching is off, keeping the
	// scoring path exactly as before.
	var scheduler *sched.Scheduler
	if *batchWindow > 0 {
		scheduler = sched.New(sched.Config{
			Window:    *batchWindow,
			MaxRows:   *batchMax,
			Workers:   *batchWorkers,
			F32:       *f32,
			MemoBytes: *batchMemo,
		})
	} else if *f32 {
		return errors.New("-f32 requires -batch-window > 0")
	}

	// The loader runs once at startup and again on every reload: it
	// rebuilds a fresh model skeleton over the resident dataset and
	// restores the (possibly replaced) weights file. Load validates
	// every parameter before writing any, so a bad file fails the whole
	// reload and the registry keeps the old model.
	loader := func() (*lhmm.Model, error) {
		cfg := lhmm.DefaultConfig()
		cfg.Dim = *dim
		cfg.K = *k
		cfg.Seed = *seed
		cfg.Parallel = *parallel
		cfg.OnBreak = breakPolicy
		cfg.Sanitize = sanitizeMode
		m, err := lhmm.NewModel(ds, ds.TrainTrips(), cfg)
		if err != nil {
			return nil, err
		}
		wf, err := os.Open(*modelPath)
		if err != nil {
			return nil, err
		}
		defer wf.Close()
		if err := m.Load(wf); err != nil {
			return nil, err
		}
		if scheduler != nil {
			m.Exec = scheduler
		}
		return m, nil
	}

	reg := serve.NewRegistry(loader)
	if err := reg.Reload(); err != nil {
		return fmt.Errorf("initial model load: %w", err)
	}

	var baseline *obs.DriftBaseline
	if *driftBaseline != "" {
		baseline, err = obs.LoadDriftBaseline(*driftBaseline)
		if err != nil {
			return fmt.Errorf("drift baseline: %w", err)
		}
		fmt.Fprintf(os.Stderr, "lhmm-serve: drift baseline %s (%d signals, model %q)\n",
			*driftBaseline, len(baseline.Signals), baseline.Model)
	}
	var capture *serve.Capture
	if *captureOut != "" {
		capture, err = serve.OpenCaptureFile(*captureOut, *captureSample)
		if err != nil {
			return err
		}
		defer capture.Close() //nolint:errcheck // exiting anyway
		fmt.Fprintf(os.Stderr, "lhmm-serve: capturing matches to %s (sample %.2f)\n",
			*captureOut, *captureSample)
	}
	// The shadow loader mirrors the registry loader but opens an
	// arbitrary candidate path and never attaches the serving scheduler
	// (mirrored work must not ride live micro-batches).
	shadowLoader := func(path string) (*lhmm.Model, error) {
		cfg := lhmm.DefaultConfig()
		cfg.Dim = *dim
		cfg.K = *k
		cfg.Seed = *seed
		cfg.Parallel = *parallel
		cfg.OnBreak = breakPolicy
		cfg.Sanitize = sanitizeMode
		m, err := lhmm.NewModel(ds, ds.TrainTrips(), cfg)
		if err != nil {
			return nil, err
		}
		wf, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer wf.Close()
		if err := m.Load(wf); err != nil {
			return nil, err
		}
		return m, nil
	}
	var shadowCapture *serve.Capture
	if *shadowCaptureOut != "" {
		// Sample rate 1: the mirror already sampled; every disagreement
		// that reaches the capture must be persisted.
		shadowCapture, err = serve.OpenCaptureFile(*shadowCaptureOut, 1)
		if err != nil {
			return err
		}
		defer shadowCapture.Close() //nolint:errcheck // exiting anyway
		fmt.Fprintf(os.Stderr, "lhmm-serve: capturing shadow disagreements to %s\n", *shadowCaptureOut)
	}

	srv, err := serve.New(reg, serve.Config{
		Workers:      *workers,
		Queue:        *queue,
		MaxSessions:  *maxSessions,
		SessionTTL:   *sessionTTL,
		DefaultLag:   *lag,
		MatchTimeout: *timeout,
		Checkpoint: serve.CheckpointConfig{
			Dir:      *checkpointDir,
			Interval: *checkpointInterval,
		},
		Quality: obs.QualityConfig{
			Window:             *sloWindow,
			MaxDegradedRate:    *sloDegraded,
			MaxGapRate:         *sloGap,
			MaxEmptyRate:       *sloEmpty,
			MaxShedRate:        *sloShed,
			MaxP99:             *sloP99,
			MaxDriftPSI:        *sloDriftPSI,
			MinShadowAgreement: *sloShadowAgreement,
		},
		DriftBaseline:     baseline,
		DriftBaselinePath: *driftBaseline,
		Capture:           capture,
		Sched:             scheduler,
		Shadow: serve.ShadowConfig{
			Loader:    shadowLoader,
			ModelPath: *shadowModel,
			Sample:    *shadowSample,
			Workers:   *shadowWorkers,
			Queue:     *shadowQueue,
			Capture:   shadowCapture,
			Thresholds: shadow.Thresholds{
				MinSamples:           *shadowMinSamples,
				MinAgreement:         *shadowMinAgreement,
				MaxQualityRegression: *shadowMaxRegression,
			},
		},
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	if *checkpointDir != "" {
		fmt.Fprintf(os.Stderr, "lhmm-serve: durable sessions in %s (%d restored, sweep every %s)\n",
			*checkpointDir, srv.Sessions().Len(), *checkpointInterval)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// SIGHUP hot-reloads; SIGUSR2 forces a full checkpoint sweep (the
	// handover primitive: sweep, then SIGKILL is loss-free); SIGINT/
	// SIGTERM drain and exit.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := reg.Reload(); err != nil {
				fmt.Fprintln(os.Stderr, "lhmm-serve: reload:", err)
			} else {
				fmt.Fprintln(os.Stderr, "lhmm-serve: model reloaded")
			}
		}
	}()
	usr2 := make(chan os.Signal, 1)
	signal.Notify(usr2, syscall.SIGUSR2)
	go func() {
		for range usr2 {
			ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
			if err := srv.CheckpointSweep(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "lhmm-serve: checkpoint sweep:", err)
			} else {
				fmt.Fprintln(os.Stderr, "lhmm-serve: checkpoint sweep complete")
			}
			cancel()
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "lhmm-serve: serving %s on %s (dim %d, k %d, %d workers)\n",
		ds.Name, *addr, *dim, *k, *workers)
	if scheduler != nil {
		prec := "float64, byte-identical"
		if *f32 {
			prec = "float32, approximate"
		}
		fmt.Fprintf(os.Stderr, "lhmm-serve: micro-batching scoring (window %s, %s)\n",
			*batchWindow, prec)
	}
	if *shadowModel != "" {
		fmt.Fprintf(os.Stderr, "lhmm-serve: shadow-scoring candidate %s (sample %.2f)\n",
			*shadowModel, *shadowSample)
	}

	select {
	case err := <-serveErr:
		return err
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "lhmm-serve: %s: draining\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "lhmm-serve:", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
