package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	lhmm "repro"
)

// lhmm sessions — operator tooling for lhmm-serve's durable streaming
// sessions. `inspect` summarizes a snapshot file from a -checkpoint-dir
// store (or its quarantine) without needing the dataset or model: the
// full structural validation runs, so a file inspect accepts is one
// recovery would at most reject for model mismatch or staleness.
func cmdSessions(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: lhmm sessions inspect <snapshot.ckpt> [-json]")
	}
	switch args[0] {
	case "inspect":
		return cmdSessionsInspect(args[1:])
	default:
		return fmt.Errorf("unknown sessions subcommand %q (want inspect)", args[0])
	}
}

func cmdSessionsInspect(args []string) error {
	fs := flag.NewFlagSet("sessions inspect", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the summary as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: lhmm sessions inspect <snapshot.ckpt> [-json]")
	}
	path := fs.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	info, err := lhmm.InspectSessionSnapshot(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(info)
	}
	fmt.Printf("%s: lhmm-session/v%d, %d bytes\n", path, info.Version, info.Bytes)
	fmt.Printf("session:   %s (lag %d, on-break %s, sanitize %s)\n", info.ID, info.Lag, info.OnBreak, info.Sanitize)
	fmt.Printf("points:    %d (%d emitted, %d pending, %d dead)\n", info.Points, info.Emitted, info.Pending, info.DeadPoints)
	fmt.Printf("gaps:      %d\n", info.Gaps)
	fmt.Printf("degraded:  %d scoring fallbacks\n", info.Degraded)
	if info.BadCoords+info.BadTimes > 0 {
		fmt.Printf("sanitized: %d bad coords, %d bad times dropped\n", info.BadCoords, info.BadTimes)
	}
	fmt.Printf("last t:    %v\n", info.LastT)
	fmt.Printf("model:     dim %d, config %s, weights %s\n", info.Dim, info.Fingerprint, info.WeightsHash)
	return nil
}
