package main

// lhmm net — road-network tooling around the binary LNET format.
//
//	lhmm net build -data dataset.json -out network.lnet [-no-ch] [-verify 1000]
//	lhmm net stat  -in network.lnet
//
// build compiles a road network into the flat binary format that loads
// in milliseconds at paper scale, running Contraction-Hierarchies
// preprocessing by default so routers can attach the index without
// paying for it at startup. -verify N cross-checks the CH against flat
// Dijkstra on N random node pairs before writing anything.

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/roadnet"
)

func cmdNet(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: lhmm net <build|stat> [flags]")
	}
	switch args[0] {
	case "build":
		return cmdNetBuild(args[1:])
	case "stat":
		return cmdNetStat(args[1:])
	default:
		return fmt.Errorf("unknown net subcommand %q (want build or stat)", args[0])
	}
}

func cmdNetBuild(args []string) error {
	fs := flag.NewFlagSet("net build", flag.ExitOnError)
	data := fs.String("data", "", "dataset file to take the road network from ('-' for stdin)")
	netIn := fs.String("net", "", "bare road-network JSON file (alternative to -data)")
	out := fs.String("out", "network.lnet", "output binary network file")
	noCH := fs.Bool("no-ch", false, "skip Contraction-Hierarchies preprocessing")
	verify := fs.Int("verify", 0, "cross-check CH vs flat Dijkstra on N random node pairs")
	seed := fs.Int64("seed", 1, "RNG seed for -verify pair sampling")
	cleanup, err := parseWithObs(fs, args)
	if err != nil {
		return err
	}
	defer cleanup()

	var n *roadnet.Network
	switch {
	case *data != "" && *netIn != "":
		return fmt.Errorf("give either -data or -net, not both")
	case *data != "":
		ds, err := loadDataset(*data)
		if err != nil {
			return err
		}
		n = ds.Net
	case *netIn != "":
		f, err := os.Open(*netIn)
		if err != nil {
			return err
		}
		n, err = roadnet.Read(f)
		f.Close()
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -data or -net")
	}
	fmt.Printf("network: %d nodes, %d segments\n", n.NumNodes(), n.NumSegments())

	var h *roadnet.Hierarchy
	if !*noCH {
		start := time.Now()
		h = roadnet.BuildHierarchy(n)
		fmt.Printf("ch: %d shortcuts in %.1fs\n", h.NumShortcuts(), time.Since(start).Seconds())
	}
	if *verify > 0 {
		if h == nil {
			return fmt.Errorf("-verify needs the CH (drop -no-ch)")
		}
		start := time.Now()
		if err := verifyHierarchy(n, h, *verify, *seed); err != nil {
			return err
		}
		fmt.Printf("verify: ch matches flat dijkstra on %d random pairs (%.1fs)\n",
			*verify, time.Since(start).Seconds())
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := roadnet.WriteBinary(f, n, h); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%.1f MB)\n", *out, float64(st.Size())/(1<<20))
	return nil
}

// verifyHierarchy compares the CH-backed router against flat Dijkstra
// on random node pairs: same reachability, bit-identical distance,
// identical segment path.
func verifyHierarchy(n *roadnet.Network, h *roadnet.Hierarchy, pairs int, seed int64) error {
	flat := roadnet.NewRouter(n)
	ch := roadnet.NewRouter(n, roadnet.WithHierarchy(h))
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < pairs; i++ {
		a := roadnet.NodeID(rng.Intn(n.NumNodes()))
		b := roadnet.NodeID(rng.Intn(n.NumNodes()))
		p1, d1, ok1 := flat.NodePath(a, b)
		p2, d2, ok2 := ch.NodePath(a, b)
		if ok1 != ok2 {
			return fmt.Errorf("verify: reachability mismatch %d->%d: flat %v, ch %v", a, b, ok1, ok2)
		}
		if !ok1 {
			continue
		}
		if d1 != d2 {
			return fmt.Errorf("verify: distance mismatch %d->%d: flat %v, ch %v", a, b, d1, d2)
		}
		if len(p1) != len(p2) {
			return fmt.Errorf("verify: path length mismatch %d->%d: flat %d hops, ch %d", a, b, len(p1), len(p2))
		}
		for j := range p1 {
			if p1[j] != p2[j] {
				return fmt.Errorf("verify: path mismatch %d->%d at hop %d", a, b, j)
			}
		}
	}
	return nil
}

func cmdNetStat(args []string) error {
	fs := flag.NewFlagSet("net stat", flag.ExitOnError)
	in := fs.String("in", "network.lnet", "binary network file")
	cleanup, err := parseWithObs(fs, args)
	if err != nil {
		return err
	}
	defer cleanup()

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	start := time.Now()
	n, h, err := roadnet.ReadBinary(f)
	if err != nil {
		return err
	}
	loadMS := time.Since(start).Seconds() * 1e3

	fmt.Printf("%s: %.1f MB, loaded in %.0fms\n", *in, float64(st.Size())/(1<<20), loadMS)
	fmt.Printf("nodes:     %d\n", n.NumNodes())
	fmt.Printf("segments:  %d\n", n.NumSegments())
	b := n.Bounds()
	fmt.Printf("bounds:    %.0fm x %.0fm\n", b.Max.X-b.Min.X, b.Max.Y-b.Min.Y)
	if h != nil {
		fmt.Printf("ch:        %d shortcuts (%.2fx base edges)\n",
			h.NumShortcuts(), float64(h.NumShortcuts())/float64(n.NumSegments()))
	} else {
		fmt.Printf("ch:        none\n")
	}
	return nil
}
