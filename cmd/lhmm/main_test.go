package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	lhmm "repro"
	"repro/internal/traj"
)

// TestCLIPipeline exercises the command implementations end to end:
// datagen → train → match → eval, through the same code paths the CLI
// binary uses (the cmd* functions), with artifacts in a temp dir.
func TestCLIPipeline(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data.json")
	model := filepath.Join(dir, "model.json")
	geojson := filepath.Join(dir, "trip.geojson")

	if err := cmdDatagen([]string{
		"-preset", "xiamen", "-scale", "0.02", "-trips", "30", "-out", data,
	}); err != nil {
		t.Fatalf("datagen: %v", err)
	}
	if fi, err := os.Stat(data); err != nil || fi.Size() == 0 {
		t.Fatalf("dataset file missing: %v", err)
	}

	if err := cmdTrain([]string{
		"-data", data, "-model", model, "-dim", "8", "-epochs", "1", "-k", "8",
	}); err != nil {
		t.Fatalf("train: %v", err)
	}
	if fi, err := os.Stat(model); err != nil || fi.Size() == 0 {
		t.Fatalf("model file missing: %v", err)
	}

	if err := cmdMatch([]string{
		"-data", data, "-model", model, "-trip", "0",
		"-dim", "8", "-k", "8", "-geojson", geojson,
	}); err != nil {
		t.Fatalf("match: %v", err)
	}
	gj, err := os.ReadFile(geojson)
	if err != nil {
		t.Fatalf("geojson missing: %v", err)
	}
	if !strings.Contains(string(gj), "FeatureCollection") {
		t.Error("geojson output malformed")
	}

	if err := cmdEval([]string{
		"-data", data, "-model", model, "-methods", "LHMM,STM",
		"-dim", "8", "-k", "8",
	}); err != nil {
		t.Fatalf("eval: %v", err)
	}

	// Error paths.
	if err := cmdDatagen([]string{"-preset", "nowhere", "-out", data}); err == nil {
		t.Error("bad preset did not error")
	}
	if err := cmdMatch([]string{
		"-data", data, "-model", model, "-trip", "9999", "-dim", "8", "-k", "8",
	}); err == nil {
		t.Error("out-of-range trip did not error")
	}
	if err := cmdEval([]string{
		"-data", data, "-methods", "LHMM", "-dim", "8", "-k", "8",
	}); err == nil {
		t.Error("LHMM without -model did not error")
	}
}

// TestDatasetFileCompat pins that datagen output loads through the
// library reader with all splits intact.
func TestDatasetFileCompat(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data.json")
	if err := cmdDatagen([]string{
		"-preset", "hangzhou", "-scale", "0.02", "-trips", "20", "-out", data, "-seed", "123",
	}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(data)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := traj.ReadDataset(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Train)+len(ds.Valid)+len(ds.Test) != len(ds.Trips) {
		t.Error("splits do not partition trips")
	}
	var _ = lhmm.Config{} // the facade stays importable from cmd tests
}
