// Command lhmm is the end-to-end CLI for the LHMM reproduction:
// generate synthetic datasets, train models, match trajectories, and
// evaluate methods.
//
// Usage:
//
//	lhmm datagen -preset hangzhou -scale 0.05 -trips 200 -out data.json
//	lhmm train   -data data.json -model model.json
//	lhmm match   -data data.json -model model.json -trip 3 [-geojson out.geojson]
//	lhmm eval    -data data.json -model model.json [-methods LHMM,STM,THMM]
//
// All generation is deterministic given -seed.
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	lhmm "repro"
	"repro/internal/eval"
	"repro/internal/faultinject"
	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/shadow"
	"repro/internal/synth"
	"repro/internal/traj"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	if err := faultinject.ArmFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "lhmm:", err)
		os.Exit(2)
	}
	if fp := faultinject.Armed(); len(fp) > 0 {
		fmt.Fprintf(os.Stderr, "lhmm: fault injection armed via %s: %s\n",
			faultinject.EnvVar, strings.Join(fp, ","))
	}
	var err error
	switch os.Args[1] {
	case "datagen":
		err = cmdDatagen(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "match":
		err = cmdMatch(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "net":
		err = cmdNet(os.Args[2:])
	case "sessions":
		err = cmdSessions(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lhmm:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: lhmm <command> [flags]

commands:
  datagen   generate a synthetic paired cellular+GPS dataset
  train     train an LHMM on a dataset's training split
  match     match one test trajectory and report metrics
  eval      evaluate methods on the test split
  replay    re-run requests from an lhmm-serve capture file and diff outputs
  net       road-network tools: 'net build' compiles a dataset's network
            (plus Contraction-Hierarchies index) into a binary .lnet file;
            'net stat' inspects one
  sessions  durable-session tools: 'sessions inspect' summarizes a
            snapshot file from an lhmm-serve -checkpoint-dir store

observability flags (every command):
  -metrics FILE     dump telemetry counters/histograms as JSON on exit ('-' for stderr)
  -log-level LEVEL  structured logs on stderr: debug|info|warn|error
  -debug-addr ADDR  serve /debug/pprof, /debug/vars, /metrics while running

robustness flags (match, eval):
  -on-break POLICY  dead-point policy: error|skip|split
  -sanitize MODE    input validation: strict|drop|off

fault injection (chaos testing): set LHMM_FAULTS=name[:N],... to arm
failpoints, e.g. LHMM_FAULTS=hmm.candidates.empty:7`)
}

// parseWithObs parses the flag set with the shared observability trio
// bound, applies them, and returns the cleanup to run on exit.
func parseWithObs(fs *flag.FlagSet, args []string) (func(), error) {
	of := obs.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	cleanup, err := of.Apply()
	if err != nil {
		return nil, err
	}
	return func() {
		if err := cleanup(); err != nil {
			fmt.Fprintln(os.Stderr, "lhmm: obs:", err)
		}
	}, nil
}

func cmdDatagen(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ExitOnError)
	preset := fs.String("preset", "hangzhou", "dataset preset: hangzhou, xiamen, or metro (~100k-segment network at scale 1)")
	scale := fs.Float64("scale", 0.05, "city scale in (0, 1]")
	trips := fs.Int("trips", 200, "number of trips to simulate")
	seed := fs.Int64("seed", 0, "override the preset RNG seed (0 keeps it)")
	out := fs.String("out", "dataset.json", "output file")
	cleanup, err := parseWithObs(fs, args)
	if err != nil {
		return err
	}
	defer cleanup()
	var cfg synth.DatasetConfig
	switch *preset {
	case "xiamen":
		cfg = lhmm.SyntheticXiamen(*scale, *trips)
	case "hangzhou":
		cfg = lhmm.SyntheticHangzhou(*scale, *trips)
	case "metro":
		cfg = lhmm.SyntheticMetro(*scale, *trips)
	default:
		return fmt.Errorf("unknown preset %q", *preset)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	ds, err := lhmm.GenerateDataset(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := traj.WriteDataset(f, ds); err != nil {
		return err
	}
	st := ds.ComputeStats()
	fmt.Printf("wrote %s: %d road segments, %d intersections, %d towers, %d trips (%d/%d/%d split)\n",
		*out, st.RoadSegments, st.Intersections, ds.Cells.NumTowers(), len(ds.Trips),
		len(ds.Train), len(ds.Valid), len(ds.Test))
	fmt.Printf("cellular: %.0f pts/trajectory, avg interval %.0fs, avg sampling distance %.0fm\n",
		st.CellPointsPerTraj, st.AvgCellIntervalSec, st.AvgCellSampleDistM)
	return nil
}

// loadDataset reads a dataset file; "-" reads stdin, so datasets can
// be piped between tools without touching disk.
func loadDataset(path string) (*traj.Dataset, error) {
	if path == "-" {
		return traj.ReadDataset(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return traj.ReadDataset(f)
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	data := fs.String("data", "dataset.json", "dataset file from `lhmm datagen`")
	out := fs.String("model", "model.json", "output model weights file")
	dim := fs.Int("dim", 32, "embedding dimension")
	epochs := fs.Int("epochs", 4, "phase-1 training epochs")
	k := fs.Int("k", 30, "candidates per point")
	seed := fs.Int64("seed", 1, "training seed")
	trace := fs.Bool("trace", false, "collect per-trajectory match traces during calibration")
	parallel := fs.Int("parallel", 0, "transition fan-out workers per match (<=1 sequential; output identical)")
	driftBaseline := fs.String("drift-baseline", "", "drift baseline output file (default <model>.baseline.json; 'none' skips)")
	cleanup, err := parseWithObs(fs, args)
	if err != nil {
		return err
	}
	defer cleanup()
	ds, err := loadDataset(*data)
	if err != nil {
		return err
	}
	cfg := lhmm.DefaultConfig()
	cfg.Dim = *dim
	cfg.Epochs = *epochs
	cfg.K = *k
	cfg.Seed = *seed
	cfg.Trace = *trace
	cfg.Parallel = *parallel
	model, err := lhmm.Train(ds, cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := model.Save(f); err != nil {
		return err
	}
	fmt.Printf("trained LHMM (dim %d, %d epochs) on %d trips; weights -> %s\n",
		*dim, *epochs, len(ds.Train), *out)
	// Score-distribution baseline for online drift monitoring
	// (lhmm-serve -drift-baseline): replay validation trips through the
	// trained model and record emission/transition/candidate sketches.
	if *driftBaseline != "none" {
		basePath := *driftBaseline
		if basePath == "" {
			basePath = *out + ".baseline.json"
		}
		base, err := model.CollectDriftBaseline(ds, 16, *out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lhmm: drift baseline skipped:", err)
			return nil
		}
		if err := base.WriteFile(basePath); err != nil {
			return err
		}
		fmt.Printf("drift baseline (%d signals) -> %s\n", len(base.Signals), basePath)
	}
	return nil
}

// loadModel rebuilds the model skeleton for the dataset and restores
// saved weights.
func loadModel(ds *traj.Dataset, path string, dim, k int, seed int64) (*lhmm.Model, error) {
	cfg := lhmm.DefaultConfig()
	cfg.Dim = dim
	cfg.K = k
	cfg.Seed = seed
	model, err := lhmm.NewModel(ds, ds.TrainTrips(), cfg)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return model, model.Load(f)
}

func cmdMatch(args []string) error {
	fs := flag.NewFlagSet("match", flag.ExitOnError)
	data := fs.String("data", "dataset.json", "dataset file")
	modelPath := fs.String("model", "model.json", "model weights file")
	trip := fs.Int("trip", 0, "test-trip index to match")
	dim := fs.Int("dim", 32, "embedding dimension the model was trained with")
	k := fs.Int("k", 30, "candidates per point")
	seed := fs.Int64("seed", 1, "seed the model was trained with")
	trajPath := fs.String("traj", "", "match a trajectory from a MatchRequest JSON file instead of -trip ('-' for stdin)")
	jsonOut := fs.Bool("json", false, "write the result as MatchResponse JSON on stdout (the lhmm-serve wire format)")
	dumpTraj := fs.String("dump-traj", "", "write the -trip trajectory as MatchRequest JSON and exit ('-' for stdout; no model needed)")
	geojson := fs.String("geojson", "", "optional GeoJSON output file")
	traceOut := fs.String("trace", "", "write the per-trajectory match trace as JSON ('-' for stdout; with -json it is embedded in the response instead)")
	explain := fs.Bool("explain", false, "collect the per-decision explanation (top-k candidates, margins, chosen routes); with -json it is embedded in the response, matching POST /v1/match?explain=1")
	parallel := fs.Int("parallel", 0, "transition fan-out workers per match (<=1 sequential; output identical)")
	onBreak := fs.String("on-break", "error", "dead-point policy: error|skip|split")
	sanitize := fs.String("sanitize", "strict", "input validation: strict|drop|off")
	cleanup, err := parseWithObs(fs, args)
	if err != nil {
		return err
	}
	defer cleanup()
	ds, err := loadDataset(*data)
	if err != nil {
		return err
	}
	if *dumpTraj != "" {
		return dumpTrajectory(ds, *trip, *dumpTraj)
	}
	model, err := loadModel(ds, *modelPath, *dim, *k, *seed)
	if err != nil {
		return err
	}
	model.Cfg.Trace = *traceOut != ""
	model.Cfg.Explain = *explain
	model.Cfg.Parallel = *parallel
	if model.Cfg.OnBreak, err = lhmm.ParseBreakPolicy(*onBreak); err != nil {
		return err
	}
	if model.Cfg.Sanitize, err = lhmm.ParseSanitizeMode(*sanitize); err != nil {
		return err
	}

	// The trajectory comes either from a MatchRequest JSON file (the
	// lhmm-serve wire format; no ground truth, so no accuracy metrics)
	// or from a test trip of the dataset.
	var ct traj.CellTrajectory
	var tr *traj.Trip
	if *trajPath != "" {
		req, err := readMatchRequest(*trajPath)
		if err != nil {
			return err
		}
		if req.Options != nil {
			if o := req.Options.OnBreak; o != "" {
				if model.Cfg.OnBreak, err = lhmm.ParseBreakPolicy(o); err != nil {
					return err
				}
			}
			if sm := req.Options.Sanitize; sm != "" {
				if model.Cfg.Sanitize, err = lhmm.ParseSanitizeMode(sm); err != nil {
					return err
				}
			}
		}
		if ct, err = req.Trajectory(ds.Cells); err != nil {
			return err
		}
	} else {
		tests := ds.TestTrips()
		if *trip < 0 || *trip >= len(tests) {
			return fmt.Errorf("trip index %d out of range (have %d test trips)", *trip, len(tests))
		}
		tr = tests[*trip]
		ct = tr.Cell
	}
	// One root span per CLI match when tracing is on (-trace-out): the
	// same span tree a sampled server request produces, minus the HTTP
	// layer.
	ctx := context.Background()
	var sp *obs.Span
	if obs.DefaultTracer.ShouldSample() {
		sp = obs.DefaultTracer.StartSpan("match", "", "")
		sp.SetAttr("points", len(ct))
		ctx = obs.ContextWithSpan(ctx, sp)
	}
	res, err := model.MatchContext(ctx, ct)
	if sp != nil {
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
	}
	if err != nil {
		return err
	}
	if *traceOut != "" && res.Trace != nil && !*jsonOut {
		data, err := json.MarshalIndent(res.Trace, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if *traceOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*traceOut, data, 0o644); err != nil {
			return err
		} else {
			fmt.Printf("match trace -> %s\n", *traceOut)
		}
	}
	if *jsonOut {
		// The exact bytes lhmm-serve answers for this trajectory: same
		// struct, same encoder. `diff` against a server response is the
		// online/offline parity check. With -trace the output is the
		// debug form instead — the same leading fields plus the appended
		// trace block, matching POST /v1/match?debug=1.
		enc := json.NewEncoder(os.Stdout)
		switch {
		case *explain:
			// Matches POST /v1/match?explain=1 byte-for-byte (the trace
			// block rides along when -trace is also set, as it does for
			// ?debug=1&explain=1).
			return enc.Encode(serve.ExplainMatchResponse{MatchResponse: serve.ResultJSON(res), Trace: res.Trace, Explain: res.Explain})
		case *traceOut != "":
			return enc.Encode(serve.DebugMatchResponse{MatchResponse: serve.ResultJSON(res), Trace: res.Trace})
		}
		return enc.Encode(serve.ResultJSON(res))
	}
	if tr != nil {
		pm := lhmm.EvalPath(ds.Net, res.Path, tr.Path, 50)
		fmt.Printf("trip %d: %d cellular points -> %d road segments\n", tr.ID, len(tr.Cell), len(res.Path))
		fmt.Printf("precision %.3f  recall %.3f  RMF %.3f  CMF50 %.3f\n",
			pm.Precision, pm.Recall, pm.RMF, pm.CMF)
	} else {
		fmt.Printf("trajectory: %d cellular points -> %d road segments\n", len(ct), len(res.Path))
	}
	skips := 0
	for _, s := range res.Skipped {
		if s {
			skips++
		}
	}
	fmt.Printf("shortcut skips: %d of %d points\n", skips, len(res.Skipped))
	if d := res.Sanitize.Dropped(); d > 0 {
		fmt.Printf("sanitized: dropped %d malformed points (%d bad coords, %d bad timestamps)\n",
			d, res.Sanitize.BadCoords, res.Sanitize.BadTimes)
	}
	deadPts := 0
	for _, dd := range res.Dead {
		if dd {
			deadPts++
		}
	}
	if deadPts > 0 {
		fmt.Printf("dead points (no candidates): %d of %d\n", deadPts, len(res.Dead))
	}
	for _, g := range res.Gaps {
		fmt.Printf("gap: points %d -> %d (%s)\n", g.From, g.To, g.Reason)
	}
	if res.Degraded > 0 {
		fmt.Printf("degraded scoring events (classical fallback): %d\n", res.Degraded)
	}
	if ex := res.Explain; ex != nil {
		decisions := 0
		for i := range ex.Points {
			if !ex.Points[i].Dead {
				decisions++
			}
		}
		fmt.Printf("explain: %d decisions, %d low-margin (< %.3f nats)\n",
			decisions, ex.LowMarginDecisions, ex.MarginThreshold)
		for i := range ex.Points {
			ch := ex.Points[i].Chosen
			if ch == nil || !ch.LowMargin {
				continue
			}
			fmt.Printf("  point %d: seg %d margin %.4f (prev seg %d)\n",
				ex.Points[i].Index, ch.Seg, ch.Margin, ch.PrevSeg)
		}
	}
	if *geojson != "" && tr != nil {
		cs := caseFor(ds, tr, res.Path)
		data, err := cs.GeoJSON(geo.Anchor{Origin: geo.LatLon{Lat: 30.25, Lon: 120.17}})
		if err != nil {
			return err
		}
		if err := os.WriteFile(*geojson, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("geometry -> %s\n", *geojson)
	}
	return nil
}

// dumpTrajectory writes the test trip's cellular trajectory as
// MatchRequest JSON — the body format of POST /v1/match and of
// `lhmm match -traj`.
func dumpTrajectory(ds *traj.Dataset, trip int, out string) error {
	tests := ds.TestTrips()
	if trip < 0 || trip >= len(tests) {
		return fmt.Errorf("trip index %d out of range (have %d test trips)", trip, len(tests))
	}
	req := serve.PointsRequest(tests[trip].Cell)
	data, err := json.MarshalIndent(req, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("trajectory (%d points) -> %s\n", len(req.Points), out)
	return nil
}

// readMatchRequest reads a MatchRequest JSON file ("-" for stdin).
func readMatchRequest(path string) (*serve.MatchRequest, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var req serve.MatchRequest
	if err := json.NewDecoder(r).Decode(&req); err != nil {
		return nil, fmt.Errorf("reading trajectory %s: %w", path, err)
	}
	return &req, nil
}

// cmdReplay re-runs requests from an lhmm-serve capture file against a
// model and compares the re-encoded responses with the captured
// digests. Identical digests prove the serving stack still answers
// byte-for-byte what it answered at capture time — the regression
// check for model rollouts and scoring refactors. With -against, every
// record is additionally replayed through a second model and the same
// decision-level agreement report as GET /v1/shadow is printed — the
// offline half of the shadow-scoring loop.
func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	data := fs.String("data", "dataset.json", "dataset file")
	modelPath := fs.String("model", "model.json", "model weights file")
	dim := fs.Int("dim", 32, "embedding dimension the model was trained with")
	k := fs.Int("k", 30, "candidates per point")
	seed := fs.Int64("seed", 1, "seed the model was trained with")
	capturesPath := fs.String("captures", "-", "capture JSONL file from lhmm-serve -capture-out ('-' for stdin)")
	against := fs.String("against", "", "candidate model weights: replay through both models and print the /v1/shadow agreement report")
	minSamples := fs.Int("min-samples", 1, "promotion-verdict sample floor for -against (offline runs have exactly the capture's records)")
	minAgreement := fs.Float64("min-agreement", 0.98, "promotion-verdict agreement floor for -against")
	maxRegression := fs.Float64("max-quality-regression", 0.05, "promotion-verdict quality-regression ceiling for -against")
	tolerate := fs.Bool("tolerate", false, "report diffs but exit 0 (shadow-scoring mode)")
	verbose := fs.Bool("v", false, "print one line per replayed record")
	cleanup, err := parseWithObs(fs, args)
	if err != nil {
		return err
	}
	defer cleanup()
	ds, err := loadDataset(*data)
	if err != nil {
		return err
	}
	var in io.Reader = os.Stdin
	if *capturesPath != "-" {
		f, err := os.Open(*capturesPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	recs, err := serve.ReadCaptures(in)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("no capture records in %s", *capturesPath)
	}
	model, err := loadModel(ds, *modelPath, *dim, *k, *seed)
	if err != nil {
		return err
	}
	var candModel *lhmm.Model
	var stats *shadow.Stats
	if *against != "" {
		if candModel, err = loadModel(ds, *against, *dim, *k, *seed); err != nil {
			return fmt.Errorf("against model: %w", err)
		}
		stats = shadow.NewStats()
	}

	identical, diffs, failed := 0, 0, 0
	for i := range recs {
		rec := &recs[i]
		id := rec.ID
		if id == "" {
			id = fmt.Sprintf("#%d", i+1)
		}
		// Replay under the captured effective configuration on a private
		// model copy (the capture's Config already folds in any
		// per-request overrides, so request options are not re-applied).
		mm := *model
		if rec.Config.OnBreak != "" {
			if mm.Cfg.OnBreak, err = lhmm.ParseBreakPolicy(rec.Config.OnBreak); err != nil {
				return fmt.Errorf("capture %s: %w", id, err)
			}
		}
		if rec.Config.Sanitize != "" {
			if mm.Cfg.Sanitize, err = lhmm.ParseSanitizeMode(rec.Config.Sanitize); err != nil {
				return fmt.Errorf("capture %s: %w", id, err)
			}
		}
		if rec.Config.K > 0 {
			mm.Cfg.K = rec.Config.K
		}
		mm.Cfg.Shortcuts = rec.Config.Shortcuts
		if stats != nil {
			// Explain artifacts feed the margin deltas; they are not part
			// of the wire encoding, so the digest check is unaffected.
			mm.Cfg.Explain = true
		}
		ct, err := rec.Request.Trajectory(ds.Cells)
		if err != nil {
			failed++
			fmt.Printf("replay %s: bad request: %v\n", id, err)
			continue
		}
		res, err := mm.Match(ct)
		if err != nil {
			failed++
			fmt.Printf("replay %s: match failed: %v\n", id, err)
			continue
		}
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(serve.ResultJSON(res)); err != nil {
			return err
		}
		if stats != nil {
			// Candidate replay under the same captured effective config —
			// only the weights differ, exactly like the live mirror.
			cm := *candModel
			cm.Cfg = mm.Cfg
			cRes, cErr := cm.Match(ct)
			var cmp shadow.Comparison
			if cErr != nil {
				cmp = shadow.Comparison{
					Points:         len(res.Matched),
					ActiveDegraded: res.Degraded > 0,
					ActiveGapped:   len(res.Gaps) > 0,
					CandErr:        cErr,
					ActiveRes:      res,
					ActiveBody:     buf.Bytes(),
				}
			} else {
				var cbuf bytes.Buffer
				if err := json.NewEncoder(&cbuf).Encode(serve.ResultJSON(cRes)); err != nil {
					return err
				}
				cmp = shadow.Compare(res, cRes, buf.Bytes(), cbuf.Bytes())
			}
			stats.Record(&cmp)
			if *verbose && cmp.Disagrees() {
				fmt.Printf("replay %s: candidate disagrees (%d/%d points agreed)\n",
					id, cmp.Agreed, cmp.Points)
			}
		}
		sum := sha256.Sum256(buf.Bytes())
		got := hex.EncodeToString(sum[:])
		if got == rec.Response.SHA256 {
			identical++
			if *verbose {
				fmt.Printf("replay %s: identical (%d bytes)\n", id, buf.Len())
			}
			continue
		}
		diffs++
		fmt.Printf("replay %s: DIFF captured %s (%d bytes, score %.6g) vs replayed %s (%d bytes, score %.6g)\n",
			id, shortHash(rec.Response.SHA256), rec.Response.Bytes, rec.Response.Score,
			shortHash(got), buf.Len(), res.Score)
	}
	fmt.Printf("replayed %d captures: %d identical, %d diffs, %d failed\n",
		len(recs), identical, diffs, failed)
	if stats != nil {
		rep := stats.Report(shadow.Thresholds{
			MinSamples:           *minSamples,
			MinAgreement:         *minAgreement,
			MaxQualityRegression: *maxRegression,
		})
		rep.Enabled = true
		rep.ModelPath = *against
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Printf("shadow report (%s vs %s):\n%s\n", *modelPath, *against, out)
	}
	if (diffs > 0 || failed > 0) && !*tolerate {
		return fmt.Errorf("%d of %d captures did not reproduce", diffs+failed, len(recs))
	}
	return nil
}

func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

func caseFor(ds *traj.Dataset, tr *traj.Trip, path []lhmm.SegmentID) *eval.CaseStudy {
	return &eval.CaseStudy{
		TripID:  tr.ID,
		Truth:   tr.PathGeom,
		Cell:    tr.Cell.Positions(),
		Matched: map[string]geo.Polyline{"LHMM": metrics.PathGeometry(ds.Net, path)},
		CMF:     map[string]float64{"LHMM": lhmm.EvalPath(ds.Net, path, tr.Path, 50).CMF},
	}
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	data := fs.String("data", "dataset.json", "dataset file")
	modelPath := fs.String("model", "", "LHMM weights (omit to evaluate baselines only)")
	methods := fs.String("methods", "LHMM,STM,THMM", "comma-separated methods (Table II names)")
	dim := fs.Int("dim", 32, "embedding dimension the model was trained with")
	k := fs.Int("k", 30, "candidates per point")
	seed := fs.Int64("seed", 1, "seed the model was trained with")
	parallel := fs.Int("parallel", 0, "transition fan-out workers per match (<=1 sequential; output identical)")
	onBreak := fs.String("on-break", "error", "dead-point policy: error|skip|split")
	sanitize := fs.String("sanitize", "strict", "input validation: strict|drop|off")
	cleanup, err := parseWithObs(fs, args)
	if err != nil {
		return err
	}
	defer cleanup()
	breakPolicy, err := lhmm.ParseBreakPolicy(*onBreak)
	if err != nil {
		return err
	}
	sanitizeMode, err := lhmm.ParseSanitizeMode(*sanitize)
	if err != nil {
		return err
	}
	ds, err := loadDataset(*data)
	if err != nil {
		return err
	}

	var rows []eval.Row
	for _, name := range strings.Split(*methods, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		var m lhmm.Method
		if name == "LHMM" {
			if *modelPath == "" {
				return fmt.Errorf("method LHMM requires -model")
			}
			model, err := loadModel(ds, *modelPath, *dim, *k, *seed)
			if err != nil {
				return err
			}
			model.Cfg.Parallel = *parallel
			model.Cfg.OnBreak = breakPolicy
			model.Cfg.Sanitize = sanitizeMode
			m = lhmm.AsMethod("LHMM", model)
		} else {
			m, err = methodByName(ds, name)
			if err != nil {
				return err
			}
		}
		summary, _ := eval.EvaluateMethod(ds, m, ds.TestTrips(), 50)
		rows = append(rows, eval.Row{Method: name, Summary: summary})
	}
	fmt.Print(eval.FormatRows(fmt.Sprintf("evaluation on %s (%d test trips)", ds.Name, len(ds.Test)), rows))
	return nil
}

// methodByName builds a non-learned baseline directly over the loaded
// dataset (seq2seq baselines need training and are exercised by
// cmd/lhmm-bench instead).
func methodByName(ds *traj.Dataset, name string) (lhmm.Method, error) {
	router := lhmm.NewRouter(ds.Net)
	if name == "HMM" {
		return lhmm.ClassicalMatcher(ds.Net, router, 45, 450, 500), nil
	}
	return eval.BaselineByName(ds, router, name)
}
