package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	lhmm "repro"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/serve"
)

// serveClientsResult is the -serve-clients section of the lhmm-bench/v1
// document: aggregate serving throughput + latency quantiles at N
// concurrent clients. Self-hosted runs carry both arms (batching off
// and on) plus the speedup; -serve-url runs carry one arm measured
// against the live server.
type serveClientsResult struct {
	Clients       int     `json:"clients"`
	Trajectories  int     `json:"trajectories"`
	DurationS     float64 `json:"duration_s"`
	BatchWindowMS float64 `json:"batch_window_ms,omitempty"`
	// Dim is the served model's embedding dimension (self-hosted runs;
	// 0 means the library default).
	Dim int `json:"dim,omitempty"`
	// URL is set on external runs (-serve-url) and empty on self-hosted
	// A/B runs.
	URL string `json:"url,omitempty"`
	// ParityDigest is the SHA-256 over the concatenated /v1/match bodies
	// of one sequential pass over every trajectory — identical digests
	// across batching-off and batching-on servers prove byte parity.
	ParityDigest string `json:"parity_digest"`
	// Off/On/OnF32 are the measured arms; external runs fill only Live.
	// OnF32 is the approximate float32 scoring mode (-f32): its bodies
	// are NOT byte-identical to float64 and are excluded from the parity
	// digest. ShadowOn is batching-off with candidate-model shadow
	// mirroring enabled — serving-path bytes stay in the parity check,
	// so the arm pins both shadow overhead and shadow transparency.
	Off      *serveArm `json:"batching_off,omitempty"`
	On       *serveArm `json:"batching_on,omitempty"`
	OnF32    *serveArm `json:"batching_on_f32,omitempty"`
	ShadowOn *serveArm `json:"shadow_on,omitempty"`
	Live     *serveArm `json:"live,omitempty"`
	// SpeedupX is On.ThroughputRPS / Off.ThroughputRPS (self-hosted
	// runs only); SpeedupF32X the same for the float32 arm.
	// ShadowFactorX is ShadowOn.ThroughputRPS / Off.ThroughputRPS —
	// the serving-path cost of mirroring every request (sample 1).
	SpeedupX      float64 `json:"speedup_x,omitempty"`
	SpeedupF32X   float64 `json:"speedup_f32_x,omitempty"`
	ShadowFactorX float64 `json:"shadow_factor_x,omitempty"`
	// MeanBatchRows is the average rows per executed scheduler batch in
	// the On arm (from sched.rows / sched.batches deltas).
	MeanBatchRows float64 `json:"mean_batch_rows,omitempty"`
	// DedupedRows counts submitted rows the On arm never had to compute
	// because an identical row was already in the same micro-batch;
	// MemoHits counts rows served from the cross-batch scored-row memo.
	DedupedRows int64 `json:"deduped_rows,omitempty"`
	MemoHits    int64 `json:"memo_hits,omitempty"`
}

// serveArm is one measured serving configuration.
type serveArm struct {
	Requests      int64   `json:"requests"`
	Errors        int64   `json:"errors"`
	WallS         float64 `json:"wall_s"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"latency_p50_ms"`
	P95Ms         float64 `json:"latency_p95_ms"`
	P99Ms         float64 `json:"latency_p99_ms"`
}

// runServeClients measures aggregate served matching throughput at
// `clients` concurrent clients. With url empty it self-hosts the A/B:
// two in-process servers over the same model weights, batching off and
// on, and reports the speedup plus a byte-parity digest across both.
// With url set it drives the live server there (the CI smoke starts
// lhmm-serve itself and diffs the digests of two runs).
func runServeClients(scale float64, trips, clients, dim int, url string, window, dur time.Duration) (*serveClientsResult, string, error) {
	ds, err := lhmm.GenerateDataset(lhmm.SyntheticHangzhou(scale, trips))
	if err != nil {
		return nil, "", fmt.Errorf("generate dataset: %w", err)
	}
	// Every held-out trip becomes a request body; clients round-robin
	// over them.
	var bodies [][]byte
	for _, tr := range ds.TestTrips() {
		req := serve.PointsRequest(tr.Cell)
		b, err := json.Marshal(req)
		if err != nil {
			return nil, "", err
		}
		bodies = append(bodies, b)
	}
	if len(bodies) == 0 {
		return nil, "", fmt.Errorf("no test trips at scale %g / %d trips", scale, trips)
	}

	res := &serveClientsResult{
		Clients:      clients,
		Trajectories: len(bodies),
		DurationS:    dur.Seconds(),
		Dim:          dim,
		URL:          url,
	}

	if url != "" {
		digest, err := parityDigest(url, bodies)
		if err != nil {
			return nil, "", err
		}
		res.ParityDigest = digest
		arm, err := driveClients(url, bodies, clients, dur)
		if err != nil {
			return nil, "", err
		}
		res.Live = arm
		return res, renderServeClients(res), nil
	}

	// Self-hosted A/B over one model skeleton: untrained with frozen
	// embeddings (deterministic for the seed) — the serving layer never
	// trains, and scoring cost is identical in shape either way.
	newModel := func() (*lhmm.Model, error) {
		cfg := lhmm.DefaultConfig()
		if dim > 0 {
			cfg.Dim = dim
		}
		m, err := lhmm.NewModel(ds, ds.TrainTrips(), cfg)
		if err != nil {
			return nil, err
		}
		m.RefreshEmbeddings()
		return m, nil
	}

	startServer := func(s *sched.Scheduler, shadowOn bool) (*serve.Server, *httptest.Server, error) {
		m, err := newModel()
		if err != nil {
			return nil, nil, err
		}
		if s != nil {
			m.Exec = s
		}
		reg := serve.NewRegistry(func() (*lhmm.Model, error) { return m, nil })
		if err := reg.Reload(); err != nil {
			return nil, nil, err
		}
		cfg := serve.Config{Workers: clients, Queue: 4 * clients, Sched: s}
		if shadowOn {
			// Identical-weights candidate (newModel is deterministic per
			// seed): comparisons all agree, but every mirrored request pays
			// the full candidate match — the realistic shadow cost.
			cfg.Shadow = serve.ShadowConfig{
				Loader:    func(string) (*lhmm.Model, error) { return newModel() },
				ModelPath: "bench-candidate",
				Sample:    1,
				Queue:     16384,
			}
		}
		srv, err := serve.New(reg, cfg)
		if err != nil {
			return nil, nil, err
		}
		return srv, httptest.NewServer(srv.Handler()), nil
	}

	res.BatchWindowMS = float64(window) / float64(time.Millisecond)

	// Arm 1: batching off.
	srvOff, tsOff, err := startServer(nil, false)
	if err != nil {
		return nil, "", err
	}
	digestOff, err := parityDigest(tsOff.URL, bodies)
	if err != nil {
		return nil, "", err
	}
	res.Off, err = driveClients(tsOff.URL, bodies, clients, dur)
	if err != nil {
		return nil, "", err
	}
	tsOff.Close()
	srvOff.Close()

	// Arm 1b: shadow mirroring on (batching off). The parity digest must
	// match the shadow-off arm — shadow scoring is observable only via
	// its own endpoints, never in serving-path bytes.
	srvSh, tsSh, err := startServer(nil, true)
	if err != nil {
		return nil, "", err
	}
	digestShadow, err := parityDigest(tsSh.URL, bodies)
	if err != nil {
		return nil, "", err
	}
	res.ShadowOn, err = driveClients(tsSh.URL, bodies, clients, dur)
	if err != nil {
		return nil, "", err
	}
	tsSh.Close()
	srvSh.Close()
	if digestShadow != digestOff {
		return nil, "", fmt.Errorf("byte-parity violation: shadow-on digest %s != shadow-off %s", digestShadow, digestOff)
	}

	// Arm 2: batching on (float64 — byte parity holds).
	scheduler := sched.New(sched.Config{Window: window, MemoBytes: 64 << 20})
	srvOn, tsOn, err := startServer(scheduler, false)
	if err != nil {
		return nil, "", err
	}
	digestOn, err := parityDigest(tsOn.URL, bodies)
	if err != nil {
		return nil, "", err
	}
	before := obs.Default.Snapshot()
	res.On, err = driveClients(tsOn.URL, bodies, clients, dur)
	if err != nil {
		return nil, "", err
	}
	after := obs.Default.Snapshot()
	tsOn.Close()
	srvOn.Close()

	// Arm 3: batching on, float32 scoring (approximate — measured for
	// throughput, excluded from the parity check).
	schedF32 := sched.New(sched.Config{Window: window, F32: true, MemoBytes: 64 << 20})
	srvF32, tsF32, err := startServer(schedF32, false)
	if err != nil {
		return nil, "", err
	}
	res.OnF32, err = driveClients(tsF32.URL, bodies, clients, dur)
	if err != nil {
		return nil, "", err
	}
	tsF32.Close()
	srvF32.Close()

	if digestOff != digestOn {
		return nil, "", fmt.Errorf("byte-parity violation: batching-off digest %s != batching-on %s", digestOff, digestOn)
	}
	res.ParityDigest = digestOn
	if res.Off.ThroughputRPS > 0 {
		res.SpeedupX = res.On.ThroughputRPS / res.Off.ThroughputRPS
		res.SpeedupF32X = res.OnF32.ThroughputRPS / res.Off.ThroughputRPS
		if res.ShadowOn != nil {
			res.ShadowFactorX = res.ShadowOn.ThroughputRPS / res.Off.ThroughputRPS
		}
	}
	if db := after.Counters["sched.batches"] - before.Counters["sched.batches"]; db > 0 {
		res.MeanBatchRows = float64(after.Counters["sched.rows"]-before.Counters["sched.rows"]) / float64(db)
	}
	res.DedupedRows = after.Counters["sched.rows.deduped"] - before.Counters["sched.rows.deduped"]
	res.MemoHits = after.Counters["sched.memo.hits"] - before.Counters["sched.memo.hits"]
	return res, renderServeClients(res), nil
}

// parityDigest POSTs every trajectory once, sequentially, and hashes
// the concatenated response bodies. Sequential requests batch trivially
// (single-item batches), so the digest is scheduler-independent iff
// float64 byte parity holds.
func parityDigest(url string, bodies [][]byte) (string, error) {
	h := sha256.New()
	for i, b := range bodies {
		code, body, err := postMatch(url, b)
		if err != nil {
			return "", fmt.Errorf("parity request %d: %w", i, err)
		}
		if code != http.StatusOK {
			return "", fmt.Errorf("parity request %d: HTTP %d: %s", i, code, body)
		}
		h.Write(body)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// driveClients runs `clients` goroutines round-robining over the
// request bodies for dur, then folds their latencies into one arm.
func driveClients(url string, bodies [][]byte, clients int, dur time.Duration) (*serveArm, error) {
	var (
		wg       sync.WaitGroup
		requests atomic.Int64
		errs     atomic.Int64
		latMu    sync.Mutex
		lats     []float64 // milliseconds
	)
	deadline := time.Now().Add(dur)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var local []float64
			for i := c; time.Now().Before(deadline); i++ {
				t0 := time.Now()
				code, _, err := postMatch(url, bodies[i%len(bodies)])
				lat := time.Since(t0)
				requests.Add(1)
				if err != nil || code != http.StatusOK {
					errs.Add(1)
					continue
				}
				local = append(local, float64(lat)/float64(time.Millisecond))
			}
			latMu.Lock()
			lats = append(lats, local...)
			latMu.Unlock()
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	sort.Float64s(lats)
	arm := &serveArm{
		Requests: requests.Load(),
		Errors:   errs.Load(),
		WallS:    wall.Seconds(),
	}
	if ok := arm.Requests - arm.Errors; ok > 0 && wall > 0 {
		arm.ThroughputRPS = float64(ok) / wall.Seconds()
	}
	arm.P50Ms = quantile(lats, 0.50)
	arm.P95Ms = quantile(lats, 0.95)
	arm.P99Ms = quantile(lats, 0.99)
	return arm, nil
}

// postMatch POSTs one prepared body to url's /v1/match.
func postMatch(url string, body []byte) (int, []byte, error) {
	resp, err := http.Post(strings.TrimRight(url, "/")+"/v1/match", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, out, nil
}

// quantile returns the q-quantile of ascending xs (exact order
// statistic, nearest-rank).
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(q * float64(len(xs)-1))
	return xs[i]
}

func renderServeClients(r *serveClientsResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d clients x %.0fs over %d trajectories\n", r.Clients, r.DurationS, r.Trajectories)
	arm := func(name string, a *serveArm) {
		if a == nil {
			return
		}
		fmt.Fprintf(&b, "%-13s %7.1f req/s  (%d req, %d err)  p50 %.1fms  p95 %.1fms  p99 %.1fms\n",
			name, a.ThroughputRPS, a.Requests, a.Errors, a.P50Ms, a.P95Ms, a.P99Ms)
	}
	arm("live:", r.Live)
	arm("batching off:", r.Off)
	arm("shadow on:", r.ShadowOn)
	arm("batching on:", r.On)
	arm("on + f32:", r.OnF32)
	if r.ShadowFactorX > 0 {
		fmt.Fprintf(&b, "shadow factor: %.2fx serving throughput with full mirroring (identical-weights candidate)\n",
			r.ShadowFactorX)
	}
	if r.SpeedupX > 0 {
		fmt.Fprintf(&b, "speedup: %.2fx f64 (byte-identical), %.2fx f32 (approximate); window %.1fms, mean batch %.1f rows, %d deduped, %d memo hits\n",
			r.SpeedupX, r.SpeedupF32X, r.BatchWindowMS, r.MeanBatchRows, r.DedupedRows, r.MemoHits)
	}
	fmt.Fprintf(&b, "parity digest: %s\n", r.ParityDigest)
	return b.String()
}
