// Command lhmm-bench regenerates the paper's tables and figures on the
// synthetic datasets.
//
// Usage:
//
//	lhmm-bench -exp table2                 # one experiment
//	lhmm-bench -exp all -scale 0.05        # the whole evaluation section
//
// Experiments: table1 table2 table3 fig7a fig7b fig8 fig9 fig10a
// fig10b fig11. Results print to stdout; -out duplicates them to a
// file.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	lhmm "repro"
	"repro/internal/eval"
	"repro/internal/geo"
)

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all'")
	scale := flag.Float64("scale", 0.04, "city scale in (0, 1]")
	trips := flag.Int("trips", 220, "trips per dataset")
	out := flag.String("out", "", "also write results to this file")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lhmm-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	hz := lhmm.NewSuite(lhmm.DefaultSuite("hangzhou", *scale, *trips))
	xm := lhmm.NewSuite(lhmm.DefaultSuite("xiamen", *scale, *trips))

	ids := []string{*exp}
	if *exp == "all" {
		ids = eval.ExperimentNames
	}
	for _, id := range ids {
		start := time.Now()
		text, err := lhmm.RunExperiment(id, hz, xm)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lhmm-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "== %s (%.1fs) ==\n%s\n", id, time.Since(start).Seconds(), text)
		if id == "fig11" {
			if err := writeFig11Artifacts(hz); err != nil {
				fmt.Fprintf(os.Stderr, "lhmm-bench: fig11 artifacts: %v\n", err)
			}
		}
	}
}

// writeFig11Artifacts saves the case study as SVG and GeoJSON files
// alongside the text rendering.
func writeFig11Artifacts(s *lhmm.Suite) error {
	cs, err := eval.Figure11(s)
	if err != nil {
		return err
	}
	if err := os.WriteFile("fig11.svg", cs.SVG(900), 0o644); err != nil {
		return err
	}
	gj, err := cs.GeoJSON(geo.Anchor{Origin: geo.LatLon{Lat: 30.25, Lon: 120.17}})
	if err != nil {
		return err
	}
	if err := os.WriteFile("fig11.geojson", gj, 0o644); err != nil {
		return err
	}
	fmt.Println("case study artifacts -> fig11.svg, fig11.geojson")
	return nil
}
