// Command lhmm-bench regenerates the paper's tables and figures on the
// synthetic datasets.
//
// Usage:
//
//	lhmm-bench -exp table2                 # one experiment
//	lhmm-bench -exp all -scale 0.05       # the whole evaluation section
//	lhmm-bench -exp table2 -json          # machine-readable results
//	lhmm-bench -exp table2 -json -compare BENCH_baseline.json
//	                                      # diff against a committed run
//
// Experiments: table1 table2 table3 fig7a fig7b fig8 fig9 fig10a
// fig10b fig11. Results print to stdout; -out duplicates them to a
// file. With -json, results are emitted as a single JSON document
// (schema lhmm-bench/v1) carrying per-experiment wall-clock, the
// rendered text, and the full observability snapshot (router cache hit
// rate, shortcut activations, Viterbi breaks, latency histograms) so
// successive runs can be diffed for perf trajectory — BENCH_*.json
// files in the repo root are committed runs of this mode. -compare
// diffs the finished run against such a committed document (wall-clock
// and counter deltas) and exits nonzero when the counter schema
// drifted. -parallel N fans each Viterbi step's transition batch out
// over N workers; matched output is identical for any value.
//
// -fullscale replaces the table/figure experiments with the
// paper-scale workload: generate the metro city at -scale (~100k
// segments at scale 1), build the Contraction Hierarchy, measure
// routed-transition throughput on CH-backed vs flat routers over
// identical matcher-shaped candidate pairs (cross-checked bitwise),
// and run the classical matcher over held-out trips for end-to-end
// match-latency quantiles. BENCH_fullscale.json is a committed run:
//
//	lhmm-bench -fullscale -scale 1 -trips 80 -json -out BENCH_fullscale.json
//
// Observability: -metrics dumps the telemetry snapshot on exit,
// -log-level enables structured logs on stderr, and -debug-addr serves
// /debug/pprof, /debug/vars, and /metrics while the bench runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	lhmm "repro"
	"repro/internal/eval"
	"repro/internal/faultinject"
	"repro/internal/geo"
	"repro/internal/obs"
)

// output is the -json document (schema lhmm-bench/v1).
type output struct {
	Schema    string `json:"schema"`
	Timestamp string `json:"timestamp"`
	// Build stamps the producing binary (version, go toolchain, vcs
	// commit) so committed BENCH_*.json runs are attributable.
	Build       obs.BuildInfo `json:"build"`
	Scale       float64       `json:"scale"`
	Trips       int           `json:"trips"`
	Experiments []experiment  `json:"experiments"`
	// TotalWallS is end-to-end wall-clock including dataset generation
	// and model training triggered lazily by the first experiment.
	TotalWallS float64 `json:"total_wall_s"`
	// Derived headline metrics, also recoverable from Obs.
	RouterCacheHitRate  float64 `json:"router_cache_hit_rate"`
	ShortcutActivations int64   `json:"shortcut_activations"`
	ViterbiBreaks       int64   `json:"viterbi_breaks"`
	// Headline match-latency quantiles (hmm.match.seconds, bucket-
	// interpolated like Prometheus histogram_quantile).
	MatchP50S float64 `json:"match_p50_s"`
	MatchP95S float64 `json:"match_p95_s"`
	MatchP99S float64 `json:"match_p99_s"`
	// Fullscale carries the paper-scale workload section when the run
	// was -fullscale (additive; absent on table/figure runs).
	Fullscale *fullscaleResult `json:"fullscale,omitempty"`
	// Snapshot carries the durable-session micro-benchmarks when the
	// run was -snapshot (additive; absent otherwise).
	Snapshot *snapshotResult `json:"snapshot,omitempty"`
	// ServeClients carries the concurrent-clients serving workload when
	// the run was -serve-clients (additive; absent otherwise).
	ServeClients *serveClientsResult `json:"serve_clients,omitempty"`
	// Obs is the full telemetry snapshot of the run.
	Obs obs.Snapshot `json:"obs"`
}

// experiment is one experiment's result row.
type experiment struct {
	ID    string  `json:"id"`
	WallS float64 `json:"wall_s"`
	Text  string  `json:"text"`
}

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all'")
	scale := flag.Float64("scale", 0.04, "city scale in (0, 1]")
	trips := flag.Int("trips", 220, "trips per dataset")
	out := flag.String("out", "", "also write results to this file")
	asJSON := flag.Bool("json", false, "emit one machine-readable JSON document instead of text")
	compare := flag.String("compare", "", "baseline lhmm-bench JSON file to diff this run against (exits nonzero on counter-schema drift)")
	parallel := flag.Int("parallel", 0, "transition fan-out workers per match (<=1 keeps matching sequential; matched output is identical)")
	fullscale := flag.Bool("fullscale", false, "run the paper-scale metro workload (CH vs flat routed-transition throughput, match latency) instead of -exp")
	snapshot := flag.Bool("snapshot", false, "run the durable-session micro-benchmarks (snapshot encode/restore latency, bytes per session) instead of -exp")
	serveClients := flag.Int("serve-clients", 0, "run the concurrent-clients serving workload with N clients instead of -exp (0 disables)")
	serveURL := flag.String("serve-url", "", "drive a live lhmm-serve at this base URL (default: self-host the batching-off/on A/B in process)")
	serveDur := flag.Duration("serve-duration", 10*time.Second, "measurement duration per -serve-clients arm")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "coalescing window of the self-hosted batching-on arm")
	serveDim := flag.Int("serve-dim", 0, "embedding dimension of the self-hosted serving model (0 = library default; the paper uses 128)")
	of := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	if err := faultinject.ArmFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "lhmm-bench:", err)
		os.Exit(1)
	}
	if fp := faultinject.Armed(); len(fp) > 0 {
		fmt.Fprintf(os.Stderr, "lhmm-bench: fault injection armed via %s: %s\n",
			faultinject.EnvVar, strings.Join(fp, ","))
	}

	cleanup, err := of.Apply()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lhmm-bench:", err)
		os.Exit(1)
	}
	defer func() {
		if err := cleanup(); err != nil {
			fmt.Fprintln(os.Stderr, "lhmm-bench:", err)
		}
	}()

	if *asJSON || *compare != "" || *fullscale || *snapshot || *serveClients > 0 {
		// JSON, compare, and fullscale runs measure from a clean
		// telemetry slate so committed BENCH_*.json files diff as true
		// per-run deltas (fullscale also reads the match-latency
		// histogram for its text report).
		obs.Default.Enable()
		obs.Default.Reset()
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lhmm-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if *asJSON {
			w = f // JSON goes to the file only; progress stays on stderr
		} else {
			w = io.MultiWriter(os.Stdout, f)
		}
	}

	runStart := time.Now()
	var results []experiment
	var fsRes *fullscaleResult
	var snapRes *snapshotResult
	var scRes *serveClientsResult
	if *serveClients > 0 {
		start := time.Now()
		sc, text, err := runServeClients(*scale, *trips, *serveClients, *serveDim, *serveURL, *batchWindow, *serveDur)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lhmm-bench: serve-clients: %v\n", err)
			os.Exit(1)
		}
		wall := time.Since(start).Seconds()
		scRes = sc
		results = append(results, experiment{ID: "serve-clients", WallS: wall, Text: text})
		obs.Logger().Info("lhmm-bench: serve-clients done", "wall_s", wall)
		if !*asJSON {
			fmt.Fprintf(w, "== serve-clients (%.1fs) ==\n%s\n", wall, text)
		} else {
			fmt.Fprintf(os.Stderr, "lhmm-bench: serve-clients done in %.1fs\n%s", wall, text)
		}
	} else if *snapshot {
		start := time.Now()
		sr, text, err := runSnapshotBench(*scale, *trips)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lhmm-bench: snapshot: %v\n", err)
			os.Exit(1)
		}
		wall := time.Since(start).Seconds()
		snapRes = sr
		results = append(results, experiment{ID: "snapshot", WallS: wall, Text: text})
		obs.Logger().Info("lhmm-bench: snapshot done", "wall_s", wall)
		if !*asJSON {
			fmt.Fprintf(w, "== snapshot (%.1fs) ==\n%s\n", wall, text)
		} else {
			fmt.Fprintf(os.Stderr, "lhmm-bench: snapshot done in %.1fs\n%s", wall, text)
		}
	} else if *fullscale {
		start := time.Now()
		fs, text, err := runFullscale(*scale, *trips, *parallel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lhmm-bench: fullscale: %v\n", err)
			os.Exit(1)
		}
		wall := time.Since(start).Seconds()
		fsRes = fs
		results = append(results, experiment{ID: "fullscale", WallS: wall, Text: text})
		obs.Logger().Info("lhmm-bench: fullscale done", "wall_s", wall)
		if !*asJSON {
			fmt.Fprintf(w, "== fullscale (%.1fs) ==\n%s\n", wall, text)
		} else {
			fmt.Fprintf(os.Stderr, "lhmm-bench: fullscale done in %.1fs\n%s", wall, text)
		}
	} else {
		hzCfg := lhmm.DefaultSuite("hangzhou", *scale, *trips)
		xmCfg := lhmm.DefaultSuite("xiamen", *scale, *trips)
		hzCfg.LHMM.Parallel = *parallel
		xmCfg.LHMM.Parallel = *parallel
		hz := lhmm.NewSuite(hzCfg)
		xm := lhmm.NewSuite(xmCfg)

		ids := []string{*exp}
		if *exp == "all" {
			ids = eval.ExperimentNames
		}
		for _, id := range ids {
			start := time.Now()
			text, err := lhmm.RunExperiment(id, hz, xm)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lhmm-bench: %s: %v\n", id, err)
				os.Exit(1)
			}
			wall := time.Since(start).Seconds()
			results = append(results, experiment{ID: id, WallS: wall, Text: text})
			obs.Logger().Info("lhmm-bench: experiment done", "id", id, "wall_s", wall)
			if !*asJSON {
				fmt.Fprintf(w, "== %s (%.1fs) ==\n%s\n", id, wall, text)
			} else {
				fmt.Fprintf(os.Stderr, "lhmm-bench: %s done in %.1fs\n", id, wall)
			}
			if id == "fig11" && !*asJSON {
				if err := writeFig11Artifacts(hz); err != nil {
					fmt.Fprintf(os.Stderr, "lhmm-bench: fig11 artifacts: %v\n", err)
				}
			}
		}
	}

	var doc *output
	if *asJSON || *compare != "" {
		doc = buildDoc(results, *scale, *trips, time.Since(runStart).Seconds())
		doc.Fullscale = fsRes
		doc.Snapshot = snapRes
		doc.ServeClients = scRes
	}
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, "lhmm-bench:", err)
			os.Exit(1)
		}
	}
	if *compare != "" {
		base, err := loadBaseline(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lhmm-bench:", err)
			os.Exit(1)
		}
		cw := io.Writer(os.Stdout)
		if *asJSON && *out == "" {
			cw = os.Stderr // JSON owns stdout
		}
		if err := compareRuns(cw, base, doc); err != nil {
			fmt.Fprintln(os.Stderr, "lhmm-bench:", err)
			os.Exit(1)
		}
	}
}

// buildDoc assembles the lhmm-bench/v1 document for this run.
func buildDoc(results []experiment, scale float64, trips int, totalS float64) *output {
	snap := obs.Default.Snapshot()
	match := snap.Histograms["hmm.match.seconds"]
	return &output{
		Schema:              "lhmm-bench/v1",
		Timestamp:           time.Now().UTC().Format(time.RFC3339),
		Build:               obs.GetBuildInfo(),
		Scale:               scale,
		Trips:               trips,
		Experiments:         results,
		TotalWallS:          totalS,
		RouterCacheHitRate:  snap.Ratio("router.cache.hits", "router.cache.misses"),
		ShortcutActivations: snap.Counters["hmm.shortcut.adoptions"],
		ViterbiBreaks:       snap.Counters["hmm.viterbi.breaks"],
		MatchP50S:           match.P50,
		MatchP95S:           match.P95,
		MatchP99S:           match.P99,
		Obs:                 snap,
	}
}

// loadBaseline reads a committed lhmm-bench JSON document.
func loadBaseline(path string) (*output, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc output
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &doc, nil
}

// compareRuns prints per-experiment wall-clock and counter deltas of
// this run against a baseline document. It returns an error on schema
// mismatch or counter-schema drift — a baseline counter whose name is
// no longer registered in this binary (zero-valued counters still
// register, so small-scale runs don't false-positive).
func compareRuns(w io.Writer, base, fresh *output) error {
	if base.Schema != fresh.Schema {
		return fmt.Errorf("schema mismatch: baseline %q vs this run %q", base.Schema, fresh.Schema)
	}
	fmt.Fprintf(w, "== compare vs baseline (baseline scale %g / %d trips; run scale %g / %d trips) ==\n",
		base.Scale, base.Trips, fresh.Scale, fresh.Trips)
	if base.Scale != fresh.Scale || base.Trips != fresh.Trips {
		fmt.Fprintln(w, "note: run sizes differ; deltas reflect scale, not performance")
	}
	baseExp := make(map[string]experiment, len(base.Experiments))
	for _, e := range base.Experiments {
		baseExp[e.ID] = e
	}
	for _, e := range fresh.Experiments {
		be, ok := baseExp[e.ID]
		if !ok {
			fmt.Fprintf(w, "  %-8s %9s -> %8.2fs\n", e.ID, "(new)", e.WallS)
			continue
		}
		fmt.Fprintf(w, "  %-8s %8.2fs -> %8.2fs  %s\n", e.ID, be.WallS, e.WallS, pctDelta(be.WallS, e.WallS))
	}
	fmt.Fprintf(w, "  %-8s %8.2fs -> %8.2fs  %s\n", "total",
		base.TotalWallS, fresh.TotalWallS, pctDelta(base.TotalWallS, fresh.TotalWallS))
	// Match-latency quantiles: flagged (but non-fatal) outside a ±50%
	// tolerance band — bench hosts are noisy, so quantile drift is a
	// signal, not a gate. Zero or absent baseline quantiles (older
	// baselines predate them) are skipped.
	const qTol = 0.50
	for _, q := range []struct {
		name      string
		base, cur float64
	}{
		{"match_p50_s", base.MatchP50S, fresh.MatchP50S},
		{"match_p95_s", base.MatchP95S, fresh.MatchP95S},
		{"match_p99_s", base.MatchP99S, fresh.MatchP99S},
	} {
		if q.base <= 0 || q.cur <= 0 {
			continue
		}
		mark := ""
		if rel := (q.cur - q.base) / q.base; rel > qTol || rel < -qTol {
			mark = "  ** outside ±50% tolerance"
		}
		fmt.Fprintf(w, "  %-12s %9.6fs -> %9.6fs  %s%s\n", q.name, q.base, q.cur, pctDelta(q.base, q.cur), mark)
	}
	// Durable-session micro-benchmarks: same treatment — deltas are a
	// signal, never a gate (only printed when both runs carry them).
	if base.Snapshot != nil && fresh.Snapshot != nil {
		b, f := base.Snapshot, fresh.Snapshot
		fmt.Fprintf(w, "  %-18s %9.1fus -> %9.1fus  %s\n", "snapshot_encode_us",
			b.SnapshotEncodeUs, f.SnapshotEncodeUs, pctDelta(b.SnapshotEncodeUs, f.SnapshotEncodeUs))
		fmt.Fprintf(w, "  %-18s %9.1fus -> %9.1fus  %s\n", "restore_us",
			b.RestoreUs, f.RestoreUs, pctDelta(b.RestoreUs, f.RestoreUs))
		fmt.Fprintf(w, "  %-18s %8dB  -> %8dB   %s\n", "bytes_per_session",
			b.BytesPerSession, f.BytesPerSession, pctDelta(float64(b.BytesPerSession), float64(f.BytesPerSession)))
	}
	// Concurrent-clients serving workload: deltas are a signal, never a
	// gate — serving throughput moves with host load, so a regression
	// here flags for a human, it does not fail the run.
	if base.ServeClients != nil && fresh.ServeClients != nil {
		b, f := base.ServeClients, fresh.ServeClients
		if b.Clients != f.Clients {
			fmt.Fprintf(w, "  note: serve-clients count differs (%d vs %d); deltas reflect load, not performance\n",
				b.Clients, f.Clients)
		}
		armDelta := func(name string, ba, fa *serveArm) {
			if ba == nil || fa == nil {
				return
			}
			fmt.Fprintf(w, "  %-22s %8.1f rps -> %8.1f rps %s\n", name+"_rps",
				ba.ThroughputRPS, fa.ThroughputRPS, pctDelta(ba.ThroughputRPS, fa.ThroughputRPS))
			fmt.Fprintf(w, "  %-22s %8.1fms  -> %8.1fms  %s\n", name+"_p99",
				ba.P99Ms, fa.P99Ms, pctDelta(ba.P99Ms, fa.P99Ms))
		}
		armDelta("serve_live", b.Live, f.Live)
		armDelta("serve_off", b.Off, f.Off)
		armDelta("serve_shadow_on", b.ShadowOn, f.ShadowOn)
		armDelta("serve_on", b.On, f.On)
		if b.SpeedupX > 0 && f.SpeedupX > 0 {
			fmt.Fprintf(w, "  %-22s %7.2fx    -> %7.2fx   %s\n", "serve_speedup",
				b.SpeedupX, f.SpeedupX, pctDelta(b.SpeedupX, f.SpeedupX))
		}
	}
	names := make([]string, 0, len(base.Obs.Counters))
	for name := range base.Obs.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	registered := make(map[string]bool)
	for _, name := range obs.Default.CounterNames() {
		registered[name] = true
	}
	var missing []string
	for _, name := range names {
		if !registered[name] {
			missing = append(missing, name)
			continue
		}
		bv, fv := base.Obs.Counters[name], fresh.Obs.Counters[name]
		if bv != fv {
			fmt.Fprintf(w, "  %-36s %12d -> %12d  (%+d)\n", name, bv, fv, fv-bv)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("counter-schema drift: baseline counters no longer registered: %s",
			strings.Join(missing, ", "))
	}
	return nil
}

// pctDelta renders the relative change, or nothing when the base is 0.
func pctDelta(old, new float64) string {
	if old == 0 {
		return ""
	}
	return fmt.Sprintf("(%+.1f%%)", (new-old)/old*100)
}

// writeFig11Artifacts saves the case study as SVG and GeoJSON files
// alongside the text rendering.
func writeFig11Artifacts(s *lhmm.Suite) error {
	cs, err := eval.Figure11(s)
	if err != nil {
		return err
	}
	if err := os.WriteFile("fig11.svg", cs.SVG(900), 0o644); err != nil {
		return err
	}
	gj, err := cs.GeoJSON(geo.Anchor{Origin: geo.LatLon{Lat: 30.25, Lon: 120.17}})
	if err != nil {
		return err
	}
	if err := os.WriteFile("fig11.geojson", gj, 0o644); err != nil {
		return err
	}
	fmt.Println("case study artifacts -> fig11.svg, fig11.geojson")
	return nil
}
