package main

import (
	"fmt"
	"strings"
	"time"

	lhmm "repro"
	"repro/internal/obs"
	"repro/internal/roadnet"
)

// The -fullscale workload exercises the paper-scale regime the tables
// never reach: a metro road network around 100k segments (scale 1),
// where flat per-query Dijkstra is the bottleneck the CH backend
// exists to remove. It measures three things on one generated city:
//
//  1. CH preprocessing cost (build wall-clock, shortcut ratio);
//  2. routed-transition throughput — k x k RouteDist fan-outs shaped
//     exactly like the matcher's Viterbi transition step — on a
//     CH-backed router vs the flat Dijkstra router, over identical
//     candidate pairs (results are cross-checked bitwise);
//  3. end-to-end match latency (hmm.match.seconds p50/p95/p99) running
//     the classical matcher over held-out test trips with the CH
//     router.
//
// The committed BENCH_fullscale.json in the repo root is a run of
// `lhmm-bench -fullscale -scale 1 -json`.

// fullscaleResult is the "fullscale" section of the -json document.
type fullscaleResult struct {
	Nodes    int `json:"nodes"`
	Segments int `json:"segments"`
	Towers   int `json:"towers"`
	// Dataset generation (network + trips + cell sampling).
	GenS float64 `json:"gen_s"`
	// Contraction-Hierarchies preprocessing.
	CHBuildS        float64 `json:"ch_build_s"`
	CHShortcuts     int     `json:"ch_shortcuts"`
	CHShortcutRatio float64 `json:"ch_shortcut_ratio"`
	// Routed-transition throughput, matcher-shaped k x k fan-outs.
	TransitionK          int     `json:"transition_k"`
	CHTransitionPairs    int     `json:"ch_transition_pairs"`
	CHUsPerPair          float64 `json:"ch_us_per_pair"`
	FlatTransitionPairs  int     `json:"flat_transition_pairs"`
	FlatUsPerPair        float64 `json:"flat_us_per_pair"`
	TransitionSpeedup    float64 `json:"transition_speedup"`
	TransitionMismatches int     `json:"transition_mismatches"`
	// End-to-end matching with the CH-backed router.
	MatchedTrips int     `json:"matched_trips"`
	MatchWallS   float64 `json:"match_wall_s"`
}

// fullscaleK is the candidate-pool size per trajectory point, matching
// the k the CLI matcher uses at full scale.
const fullscaleK = 45

// transitionStep is one Viterbi-shaped unit of routing work: the
// candidate pools of two consecutive trajectory points.
type transitionStep struct {
	from, to []roadnet.PointOnRoad
}

// runFullscale executes the paper-scale workload and returns the
// result section plus a human-readable rendering.
func runFullscale(scale float64, trips, parallel int) (*fullscaleResult, string, error) {
	fs := &fullscaleResult{TransitionK: fullscaleK}
	var b strings.Builder

	start := time.Now()
	ds, err := lhmm.GenerateDataset(lhmm.SyntheticMetro(scale, trips))
	if err != nil {
		return nil, "", fmt.Errorf("generate metro dataset: %w", err)
	}
	fs.GenS = time.Since(start).Seconds()
	fs.Nodes = ds.Net.NumNodes()
	fs.Segments = ds.Net.NumSegments()
	fs.Towers = ds.Cells.NumTowers()
	fmt.Fprintf(&b, "metro scale %g: %d nodes, %d segments, %d towers, %d trips (gen %.1fs)\n",
		scale, fs.Nodes, fs.Segments, fs.Towers, len(ds.Trips), fs.GenS)

	start = time.Now()
	h := roadnet.BuildHierarchy(ds.Net)
	fs.CHBuildS = time.Since(start).Seconds()
	fs.CHShortcuts = h.NumShortcuts()
	fs.CHShortcutRatio = 1 + float64(fs.CHShortcuts)/float64(fs.Segments)
	fmt.Fprintf(&b, "CH preprocessing: %.1fs, %d shortcuts (%.2fx edges)\n",
		fs.CHBuildS, fs.CHShortcuts, fs.CHShortcutRatio)

	chRouter := lhmm.NewRouter(ds.Net, roadnet.WithHierarchy(h))
	flatRouter := lhmm.NewRouter(ds.Net)

	// Harvest matcher-shaped transition steps from held-out test trips:
	// the candidate pools of consecutive cell points, exactly what the
	// Viterbi transition scorer fans out over.
	const chSteps, flatSteps = 24, 4
	steps := harvestTransitionSteps(ds, chSteps)
	if len(steps) < flatSteps {
		return nil, "", fmt.Errorf("only %d transition steps harvested; dataset too small for -fullscale (raise -scale or -trips)", len(steps))
	}

	chDist := make([][]float64, 0, flatSteps)
	start = time.Now()
	for si, st := range steps {
		var rec []float64
		if si < flatSteps {
			rec = make([]float64, 0, len(st.from)*len(st.to))
		}
		for _, a := range st.from {
			for _, bp := range st.to {
				d, ok := chRouter.RouteDist(a, bp)
				fs.CHTransitionPairs++
				if si < flatSteps {
					if !ok {
						d = -1
					}
					rec = append(rec, d)
				}
			}
		}
		if si < flatSteps {
			chDist = append(chDist, rec)
		}
	}
	chWall := time.Since(start)
	fs.CHUsPerPair = chWall.Seconds() * 1e6 / float64(fs.CHTransitionPairs)
	fmt.Fprintf(&b, "CH transitions: %d routed pairs in %.2fs (%.1f us/pair)\n",
		fs.CHTransitionPairs, chWall.Seconds(), fs.CHUsPerPair)

	// Flat Dijkstra over a prefix of the same steps — identical pairs,
	// so per-pair costs compare like for like, and distances must agree
	// bitwise with the CH answers (the byte-identity contract).
	start = time.Now()
	for si := 0; si < flatSteps; si++ {
		st := steps[si]
		i := 0
		for _, a := range st.from {
			for _, bp := range st.to {
				d, ok := flatRouter.RouteDist(a, bp)
				if !ok {
					d = -1
				}
				if d != chDist[si][i] {
					fs.TransitionMismatches++
				}
				i++
				fs.FlatTransitionPairs++
			}
		}
	}
	flatWall := time.Since(start)
	fs.FlatUsPerPair = flatWall.Seconds() * 1e6 / float64(fs.FlatTransitionPairs)
	if fs.CHUsPerPair > 0 {
		fs.TransitionSpeedup = fs.FlatUsPerPair / fs.CHUsPerPair
	}
	fmt.Fprintf(&b, "flat transitions: %d routed pairs in %.2fs (%.1f us/pair)\n",
		fs.FlatTransitionPairs, flatWall.Seconds(), fs.FlatUsPerPair)
	fmt.Fprintf(&b, "routed-transition speedup: %.1fx (CH vs flat)\n", fs.TransitionSpeedup)
	if fs.TransitionMismatches > 0 {
		return fs, b.String(), fmt.Errorf("CH/flat disagreement on %d of %d cross-checked transition pairs",
			fs.TransitionMismatches, fs.FlatTransitionPairs)
	}

	// End-to-end matching with the CH router. The match-latency
	// quantiles land in hmm.match.seconds and surface in the JSON doc.
	matcher := lhmm.ClassicalMatcher(ds.Net, chRouter, fullscaleK, 450, 500)
	const maxMatch = 25
	start = time.Now()
	for _, ti := range ds.Test {
		if fs.MatchedTrips >= maxMatch {
			break
		}
		trip := &ds.Trips[ti]
		if len(trip.Cell) < 2 {
			continue
		}
		if _, err := matcher.Match(trip.Cell); err != nil {
			return fs, b.String(), fmt.Errorf("match trip %d: %w", trip.ID, err)
		}
		fs.MatchedTrips++
	}
	fs.MatchWallS = time.Since(start).Seconds()
	snap := obs.Default.Snapshot()
	m := snap.Histograms["hmm.match.seconds"]
	fmt.Fprintf(&b, "matched %d test trips in %.1fs (p50 %.3fs, p95 %.3fs, p99 %.3fs)\n",
		fs.MatchedTrips, fs.MatchWallS, m.P50, m.P95, m.P99)
	_ = parallel // matching stays sequential; transition timing must not overlap

	return fs, b.String(), nil
}

// harvestTransitionSteps extracts up to n consecutive-point candidate
// pools from the test trips, skipping degenerate pools so every step
// does real k x k routing work.
func harvestTransitionSteps(ds *lhmm.Dataset, n int) []transitionStep {
	var steps []transitionStep
	pool := func(p lhmm.CellPoint) []roadnet.PointOnRoad {
		segs := ds.Net.SegmentsNear(p.P, fullscaleK)
		out := make([]roadnet.PointOnRoad, 0, len(segs))
		for _, s := range segs {
			_, frac := ds.Net.Project(s, p.P)
			out = append(out, roadnet.PointOnRoad{Seg: s, Frac: frac})
		}
		return out
	}
	for _, ti := range ds.Test {
		trip := &ds.Trips[ti]
		// Spread steps across trips: a few interior transitions each.
		for i := 1; i+1 < len(trip.Cell) && len(steps) < n; i += 4 {
			from := pool(trip.Cell[i])
			to := pool(trip.Cell[i+1])
			if len(from) < fullscaleK/2 || len(to) < fullscaleK/2 {
				continue
			}
			steps = append(steps, transitionStep{from: from, to: to})
		}
		if len(steps) >= n {
			break
		}
	}
	return steps
}
