package main

import (
	"fmt"
	"strings"
	"time"

	lhmm "repro"
	"repro/internal/core"
)

// The -snapshot workload measures the durable-session machinery that
// lhmm-serve's checkpointer exercises on every dirty sweep: encoding a
// live mid-stream session to the lhmm-session/v1 wire format, and
// restoring a matcher from those bytes (full structural validation +
// Viterbi-state rebuild). Both paths run under the session lock in the
// server, so their latency bounds how much a checkpoint sweep can
// stall a concurrent push.

// snapshotResult is the "snapshot" section of the -json document.
type snapshotResult struct {
	// Session shape at snapshot time.
	Points  int `json:"points"`
	Pending int `json:"pending"`
	// BytesPerSession is the encoded snapshot size for that session.
	BytesPerSession int `json:"bytes_per_session"`
	// Encode/restore latency, microseconds per operation.
	SnapshotEncodeUs float64 `json:"snapshot_encode_us"`
	RestoreUs        float64 `json:"restore_us"`
}

// runSnapshotBench builds a small learned model, streams one held-out
// trip through it, and times snapshot encode and restore over the
// resulting session state.
func runSnapshotBench(scale float64, trips int) (*snapshotResult, string, error) {
	ds, err := lhmm.GenerateDataset(lhmm.SyntheticHangzhou(scale, trips))
	if err != nil {
		return nil, "", fmt.Errorf("generate dataset: %w", err)
	}
	cfg := lhmm.DefaultConfig()
	m, err := lhmm.NewModel(ds, ds.TrainTrips(), cfg)
	if err != nil {
		return nil, "", fmt.Errorf("build model: %w", err)
	}
	// Frozen embeddings exercise the learned scoring path end to end
	// without paying for training; the state being snapshotted is
	// identical in shape either way.
	m.RefreshEmbeddings()
	wh := m.WeightsHash()

	// Stream the longest held-out trip so the session carries a
	// realistic mix of emitted prefix and pending tail.
	var trip []lhmm.CellPoint
	for _, tr := range ds.TestTrips() {
		if len(tr.Cell) > len(trip) {
			trip = tr.Cell
		}
	}
	if len(trip) < 4 {
		return nil, "", fmt.Errorf("no usable test trip (longest has %d points); raise -scale or -trips", len(trip))
	}
	sm := m.NewStream(2)
	for _, p := range trip {
		if _, err := sm.Push(p); err != nil {
			return nil, "", fmt.Errorf("push: %w", err)
		}
	}

	data, err := core.EncodeStreamSnapshot(sm, "bench", wh)
	if err != nil {
		return nil, "", fmt.Errorf("encode: %w", err)
	}
	res := &snapshotResult{
		Points:          len(trip),
		Pending:         sm.Pending(),
		BytesPerSession: len(data),
	}

	res.SnapshotEncodeUs = usPerOp(func() error {
		_, err := core.EncodeStreamSnapshot(sm, "bench", wh)
		return err
	})
	res.RestoreUs = usPerOp(func() error {
		_, err := core.DecodeStreamSnapshot(m, wh, data)
		return err
	})

	var b strings.Builder
	fmt.Fprintf(&b, "session: %d points (%d pending), snapshot %d bytes\n",
		res.Points, res.Pending, res.BytesPerSession)
	fmt.Fprintf(&b, "encode:  %.1f us/op (%.1f MB/s)\n",
		res.SnapshotEncodeUs, float64(res.BytesPerSession)/res.SnapshotEncodeUs)
	fmt.Fprintf(&b, "restore: %.1f us/op (%.1f MB/s)\n",
		res.RestoreUs, float64(res.BytesPerSession)/res.RestoreUs)
	return res, b.String(), nil
}

// usPerOp times fn adaptively: warm up, then run for at least 250ms of
// accumulated work before reporting microseconds per operation.
func usPerOp(fn func() error) float64 {
	for i := 0; i < 3; i++ {
		if err := fn(); err != nil {
			return -1
		}
	}
	const minWall = 250 * time.Millisecond
	var n int
	start := time.Now()
	for time.Since(start) < minWall {
		for i := 0; i < 16; i++ {
			if err := fn(); err != nil {
				return -1
			}
		}
		n += 16
	}
	return float64(time.Since(start).Microseconds()) / float64(n)
}
