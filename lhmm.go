// Package lhmm is a production-quality Go reproduction of "LHMM: A
// Learning Enhanced HMM Model for Cellular Trajectory Map Matching"
// (Shi et al., ICDE 2023).
//
// The library map-matches cellular trajectories — sequences of cell
// tower observations with positioning errors of 0.1–3 km — onto a road
// network, by fusing learned observation and transition probabilities
// into a Hidden Markov Model path-finder with shortcut-augmented
// Viterbi decoding.
//
// # Quick start
//
//	cfg := lhmm.SyntheticXiamen(0.05, 200)       // or your own dataset
//	ds, err := lhmm.GenerateDataset(cfg)
//	model, err := lhmm.Train(ds, lhmm.DefaultConfig())
//	result, err := model.Match(ds.TestTrips()[0].Cell)
//	// result.Path is the matched road-segment sequence.
//
// The package is a facade over the implementation packages:
// internal/core (the LHMM model), internal/hmm (the HMM backbone),
// internal/mrg (multi-relational representation learning),
// internal/baselines (the paper's ten comparison methods),
// internal/synth (the synthetic city and trip simulator standing in
// for the paper's proprietary operator datasets), internal/metrics and
// internal/eval (the evaluation harness regenerating every table and
// figure). See DESIGN.md for the system inventory.
package lhmm

import (
	"math/rand"

	"repro/internal/baselines"
	"repro/internal/cellular"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/geo"
	"repro/internal/hmm"
	"repro/internal/metrics"
	"repro/internal/roadnet"
	"repro/internal/synth"
	"repro/internal/traj"
)

// Core data types.
type (
	// Point is a planar coordinate in meters.
	Point = geo.Point
	// Polyline is an ordered point sequence.
	Polyline = geo.Polyline
	// CellPoint is one cellular positioning observation.
	CellPoint = traj.CellPoint
	// CellTrajectory is a cellular sampling sequence (Definition 2).
	CellTrajectory = traj.CellTrajectory
	// GPSPoint is one GPS observation.
	GPSPoint = traj.GPSPoint
	// Trip is a journey with ground truth and both sampling modalities.
	Trip = traj.Trip
	// Dataset bundles networks and trips with train/valid/test splits.
	Dataset = traj.Dataset
	// Network is a directed road network (Definition 3).
	Network = roadnet.Network
	// NetworkBuilder accumulates nodes and segments into a Network.
	NetworkBuilder = roadnet.Builder
	// SegmentID identifies a directed road segment.
	SegmentID = roadnet.SegmentID
	// NodeID identifies a road-network node.
	NodeID = roadnet.NodeID
	// Router answers shortest-path queries with memoization.
	Router = roadnet.Router
	// TowerID identifies a cell tower.
	TowerID = cellular.TowerID
	// CellNet is a set of cell towers with spatial indexing.
	CellNet = cellular.Net
)

// Model types.
type (
	// Config parameterizes LHMM training and inference.
	Config = core.Config
	// Model is a trained LHMM. Model.MatchContext matches with
	// cancellation and a panic-hardened boundary.
	Model = core.Model
	// MatchResult is the outcome of matching one trajectory.
	MatchResult = hmm.Result
	// Candidate is one candidate road for one trajectory point.
	Candidate = hmm.Candidate
	// Explain is the per-decision explanation artifact attached to a
	// MatchResult when Config.Explain is set: top-k candidate emission
	// breakdowns, chosen backpointers with step scores and routes, and
	// winner/runner-up margins.
	Explain = hmm.Explain
	// ExplainPoint explains the decision at one trajectory point.
	ExplainPoint = hmm.ExplainPoint
)

// Fault-tolerance types. A matcher configured with OnBreak and
// Sanitize policies survives dead points (no candidate roads), corrupt
// model scores, and malformed input instead of erroring or panicking;
// see the Robustness sections of README.md and DESIGN.md.
type (
	// BreakPolicy selects how matching treats a point with no
	// candidate roads: BreakError (default), BreakSkip, or BreakSplit.
	BreakPolicy = hmm.BreakPolicy
	// Gap marks a stitch discontinuity in a BreakSplit match.
	Gap = hmm.Gap
	// GapReason explains a Gap (no candidates vs. Viterbi break).
	GapReason = hmm.GapReason
	// SanitizeMode selects input validation: SanitizeStrict (default),
	// SanitizeDrop, or SanitizeOff.
	SanitizeMode = traj.SanitizeMode
	// SanitizeReport counts what drop-mode sanitization removed.
	SanitizeReport = traj.SanitizeReport
)

// Break policies (see hmm.BreakPolicy).
const (
	BreakError = hmm.BreakError
	BreakSkip  = hmm.BreakSkip
	BreakSplit = hmm.BreakSplit
)

// Sanitize modes (see traj.SanitizeMode).
const (
	SanitizeStrict = traj.SanitizeStrict
	SanitizeDrop   = traj.SanitizeDrop
	SanitizeOff    = traj.SanitizeOff
)

// Gap reasons (see hmm.GapReason).
const (
	GapNoCandidates = hmm.GapNoCandidates
	GapViterbiBreak = hmm.GapViterbiBreak
)

// ParseBreakPolicy parses the CLI spelling of a break policy
// ("error", "skip", or "split").
func ParseBreakPolicy(s string) (BreakPolicy, error) { return hmm.ParseBreakPolicy(s) }

// ParseSanitizeMode parses the CLI spelling of a sanitize mode
// ("strict", "drop", or "off").
func ParseSanitizeMode(s string) (SanitizeMode, error) { return traj.ParseSanitizeMode(s) }

// Sanitize validates or repairs a cellular trajectory per the mode —
// the same pass Model.Match applies (per Config.Sanitize), exported
// for pipelines that want to sanitize ahead of preprocessing.
func Sanitize(ct CellTrajectory, mode SanitizeMode) (CellTrajectory, SanitizeReport, error) {
	return traj.Sanitize(ct, mode)
}

// Evaluation types.
type (
	// PathMetrics are per-trip accuracy measures (precision, recall,
	// RMF, CMF).
	PathMetrics = metrics.PathMetrics
	// Summary aggregates metrics over an evaluation run.
	Summary = metrics.Summary
	// Method is any map-matching algorithm under evaluation.
	Method = baselines.Method
	// Suite materializes one city's experiments (datasets + trained
	// models) lazily.
	Suite = eval.Suite
	// SuiteConfig sizes a Suite.
	SuiteConfig = eval.SuiteConfig
	// DatasetConfig drives the synthetic dataset generator.
	DatasetConfig = synth.DatasetConfig
	// CityConfig drives the synthetic road-network generator.
	CityConfig = synth.CityConfig
	// TripConfig drives trip simulation and sampling.
	TripConfig = synth.TripConfig
	// FilterConfig parameterizes the SnapNet preprocessing chain.
	FilterConfig = traj.FilterConfig
)

// DefaultConfig returns the LHMM configuration used by the experiment
// harness (embedding dim 32, q=2 encoder rounds, k=30 candidates, one
// shortcut, Adam with the paper's §V-A2 hyper-parameters).
func DefaultConfig() Config { return core.DefaultConfig() }

// Train builds and trains an LHMM on the dataset's training split.
func Train(ds *Dataset, cfg Config) (*Model, error) { return core.Train(ds, cfg) }

// NewModel builds an untrained model (for loading saved weights).
func NewModel(ds *Dataset, trainTrips []*Trip, cfg Config) (*Model, error) {
	return core.New(ds, trainTrips, cfg)
}

// GenerateDataset builds a synthetic paired cellular+GPS dataset.
func GenerateDataset(cfg DatasetConfig) (*Dataset, error) {
	return synth.GenerateDataset(cfg)
}

// SyntheticHangzhou returns a dataset config mirroring the paper's
// Hangzhou dataset shape (Table I) at the given scale in (0, 1].
func SyntheticHangzhou(scale float64, trips int) DatasetConfig {
	return synth.SyntheticHangzhou(scale, trips)
}

// SyntheticXiamen returns a dataset config mirroring the paper's
// Xiamen dataset shape (Table I).
func SyntheticXiamen(scale float64, trips int) DatasetConfig {
	return synth.SyntheticXiamen(scale, trips)
}

// SyntheticMetro returns a dataset config for a paper-scale city: at
// scale=1 the road network carries ~100k directed segments, matching
// the paper's Xiamen network size (Table I).
func SyntheticMetro(scale float64, trips int) DatasetConfig {
	return synth.SyntheticMetro(scale, trips)
}

// Preprocess applies the paper's filter chain (speed, α-trimmed mean,
// direction filters) to a cellular trajectory.
func Preprocess(ct CellTrajectory, cfg FilterConfig) CellTrajectory {
	return traj.Preprocess(ct, cfg)
}

// DefaultFilterConfig returns the preprocessing defaults (§V-A1).
func DefaultFilterConfig() FilterConfig { return traj.DefaultFilterConfig() }

// EvalPath compares a matched path against the ground truth with the
// given CMF corridor radius in meters (the paper reports CMF50).
func EvalPath(net *Network, matched, truth []SegmentID, corridor float64) PathMetrics {
	return metrics.EvalPath(net, matched, truth, corridor)
}

// Evaluate runs a method over trips and aggregates the paper's metrics.
func Evaluate(ds *Dataset, m Method, trips []*Trip, corridor float64) Summary {
	s, _ := eval.EvaluateMethod(ds, m, trips, corridor)
	return s
}

// AsMethod adapts a trained model to the evaluation Method interface.
func AsMethod(name string, m *Model) Method { return eval.LHMMMethod(name, m) }

// NewSuite creates a lazy experiment suite.
func NewSuite(cfg SuiteConfig) *Suite { return eval.NewSuite(cfg) }

// DefaultSuite sizes a suite for one of the dataset presets
// ("hangzhou" or "xiamen").
func DefaultSuite(preset string, scale float64, trips int) SuiteConfig {
	return eval.DefaultSuite(preset, scale, trips)
}

// RunExperiment regenerates one of the paper's tables or figures by id
// (table1..table3, fig7a..fig11) and returns the rendered text.
func RunExperiment(id string, primary, secondary *Suite) (string, error) {
	return eval.RunExperiment(id, primary, secondary)
}

// NewRouter builds a shortest-path router over a network.
func NewRouter(net *Network, opts ...roadnet.RouterOption) *Router {
	return roadnet.NewRouter(net, opts...)
}

// ClassicalMatcher builds the classical distance-probability HMM
// matcher (Eqs. 2–3) — the non-learned reference point.
func ClassicalMatcher(net *Network, router *Router, k int, sigma, beta float64) Method {
	return baselines.NewHMMMethod("HMM", &hmm.Matcher{
		Net:    net,
		Router: router,
		Obs:    &hmm.GaussianObservation{Net: net, Sigma: sigma},
		Trans:  &hmm.ExponentialTransition{Router: router, Beta: beta},
		Cfg:    hmm.Config{K: k},
	})
}

// RandSource returns a deterministic rand.Rand for the given seed —
// every generator in the library takes one of these, keeping all
// synthetic data reproducible.
func RandSource(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// StreamMatcher is the online fixed-lag matcher: push points as they
// arrive and receive finalized matches Lag points behind real time.
// For learned-model streaming, call (*Model).NewStream(lag) — one
// StreamMatcher per device trajectory, since streaming LHMM keeps
// per-trajectory context. The lhmm-serve session endpoints are a
// network front-end over exactly that constructor.
type StreamMatcher = hmm.StreamMatcher

// SessionSnapshotInfo is the model-independent summary of a durable
// streaming-session snapshot (the lhmm-session/v1 files lhmm-serve
// writes under -checkpoint-dir), as reported by `lhmm sessions
// inspect`.
type SessionSnapshotInfo = core.SnapshotInfo

// InspectSessionSnapshot validates a snapshot's framing (magic, CRC,
// version, structural invariants) and summarizes it without needing
// the dataset or model. Safe on arbitrary bytes.
func InspectSessionSnapshot(data []byte) (*SessionSnapshotInfo, error) {
	return core.InspectStreamSnapshot(data)
}

// NewClassicalStream builds a streaming matcher over the classical
// distance-probability models with the given emission lag (the
// non-learned counterpart of (*Model).NewStream).
func NewClassicalStream(net *Network, router *Router, k, lag int, sigma, beta float64) *StreamMatcher {
	return hmm.NewStreamMatcher(&hmm.Matcher{
		Net:    net,
		Router: router,
		Obs:    &hmm.GaussianObservation{Net: net, Sigma: sigma},
		Trans:  &hmm.ExponentialTransition{Router: router, Beta: beta},
		Cfg:    hmm.Config{K: k},
	}, lag)
}

// KalmanConfig parameterizes the optional constant-velocity Kalman
// smoother.
type KalmanConfig = traj.KalmanConfig

// KalmanFilter smooths a cellular trajectory with a constant-velocity
// Kalman filter — an alternative to the α-trimmed mean smoothing of
// the default preprocessing chain.
func KalmanFilter(ct CellTrajectory, cfg KalmanConfig) CellTrajectory {
	return traj.KalmanFilter(ct, cfg)
}

// DiscreteFrechet computes the discrete Fréchet distance between two
// polylines — an additional curve-similarity metric for comparing
// matched paths with ground truth.
func DiscreteFrechet(a, b Polyline) float64 { return metrics.DiscreteFrechet(a, b) }

// NewGeometricMatcher builds the classical nearest-road geometric
// matcher — the no-noise-model lower-bound reference.
func NewGeometricMatcher(net *Network, router *Router) Method {
	return baselines.NewGeometric(net, router)
}
