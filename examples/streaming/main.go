// Streaming: match a cellular trajectory online with fixed-lag
// emission — the real-time telecom pipeline setting, where matches
// must be produced seconds after each handover event rather than after
// the trip completes.
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	lhmm "repro"
)

func main() {
	ds, err := lhmm.GenerateDataset(lhmm.SyntheticXiamen(0.04, 60))
	if err != nil {
		log.Fatal(err)
	}
	router := lhmm.NewRouter(ds.Net)

	// Lag 2: a point's match is emitted after two more points arrive —
	// enough look-ahead for the transition evidence to disambiguate,
	// with bounded latency (2 × the sampling interval, ≈90 s here).
	stream := lhmm.NewClassicalStream(ds.Net, router, 20, 2, 450, 500)

	trip := ds.TestTrips()[0]
	fmt.Printf("replaying trip %d (%d cellular points)\n\n", trip.ID, len(trip.Cell))
	fmt.Printf("%-8s %-14s %-30s\n", "t (s)", "event", "finalized matches")

	emitted := 0
	for i, p := range trip.Cell {
		out, err := stream.Push(p)
		if err != nil {
			log.Fatal(err)
		}
		desc := "buffered (awaiting look-ahead)"
		if len(out) > 0 {
			segs := ""
			for _, c := range out {
				segs += fmt.Sprintf("seg %d  ", c.Seg)
			}
			desc = segs
			emitted += len(out)
		}
		fmt.Printf("%-8.0f point %-8d %-30s\n", p.T, i, desc)
	}
	rest := stream.Flush()
	emitted += len(rest)
	fmt.Printf("%-8s %-14s %d final matches flushed\n", "-", "end of trip", len(rest))

	path := stream.Path()
	pm := lhmm.EvalPath(ds.Net, path, trip.Path, 50)
	fmt.Printf("\nstreamed %d/%d matches into a %d-segment path\n", emitted, len(trip.Cell), len(path))
	fmt.Printf("accuracy vs ground truth: precision %.3f  recall %.3f  CMF50 %.3f\n",
		pm.Precision, pm.Recall, pm.CMF)

	// The batch matcher on the same trip, for comparison: the offline
	// result benefits from full-trajectory context and shortcuts.
	batch := lhmm.ClassicalMatcher(ds.Net, router, 20, 450, 500)
	bout, err := batch.Match(trip.Cell)
	if err != nil {
		log.Fatal(err)
	}
	bm := lhmm.EvalPath(ds.Net, bout.Path, trip.Path, 50)
	fmt.Printf("offline batch on the same trip:   precision %.3f  recall %.3f  CMF50 %.3f\n",
		bm.Precision, bm.Recall, bm.CMF)
}
