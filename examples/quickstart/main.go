// Quickstart: generate a small synthetic city with paired
// cellular+GPS trips, train an LHMM, and map-match a held-out cellular
// trajectory.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	lhmm "repro"
)

func main() {
	// 1. A small synthetic-Xiamen-shaped dataset: the generator stands
	// in for the paper's proprietary operator data (see DESIGN.md §2).
	// scale sizes the city; 120 trips are simulated and split 70/10/20
	// into train/valid/test.
	dsCfg := lhmm.SyntheticXiamen(0.05, 120)
	ds, err := lhmm.GenerateDataset(dsCfg)
	if err != nil {
		log.Fatal(err)
	}
	stats := ds.ComputeStats()
	fmt.Printf("dataset: %d road segments, %d towers, %d trips (%.0f cellular points each)\n",
		stats.RoadSegments, ds.Cells.NumTowers(), len(ds.Trips), stats.CellPointsPerTraj)

	// 2. Train LHMM on the training split. The defaults follow the
	// paper's §V-A2 setup scaled to this dataset; training covers the
	// multi-relational graph encoder, the observation learner, and the
	// transition learner.
	cfg := lhmm.DefaultConfig()
	cfg.Dim = 16   // embedding size; the paper uses 128
	cfg.Epochs = 2 // quick demo training
	cfg.K = 15     // candidate roads per point
	model, err := lhmm.Train(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("model trained")

	// 3. Match a held-out trajectory and compare with ground truth.
	trip := ds.TestTrips()[0]
	res, err := model.Match(trip.Cell)
	if err != nil {
		log.Fatal(err)
	}
	pm := lhmm.EvalPath(ds.Net, res.Path, trip.Path, 50)
	fmt.Printf("matched %d cellular points onto %d road segments\n", len(trip.Cell), len(res.Path))
	fmt.Printf("precision %.3f  recall %.3f  RMF %.3f  CMF50 %.3f\n",
		pm.Precision, pm.Recall, pm.RMF, pm.CMF)

	// 4. Shortcuts in action: points whose whole candidate set missed
	// the path were skipped (Observation 1 / Algorithm 2).
	for i, skipped := range res.Skipped {
		if skipped {
			fmt.Printf("point %d was skipped via a shortcut (noisy positioning)\n", i)
		}
	}

	// 5. Compare with the classical distance-based HMM (Eqs. 2–3).
	router := lhmm.NewRouter(ds.Net)
	classical := lhmm.ClassicalMatcher(ds.Net, router, 20, 450, 500)
	out, err := classical.Match(trip.Cell)
	if err != nil {
		log.Fatal(err)
	}
	cm := lhmm.EvalPath(ds.Net, out.Path, trip.Path, 50)
	fmt.Printf("classical HMM on the same trip: precision %.3f  CMF50 %.3f\n",
		cm.Precision, cm.CMF)
}
