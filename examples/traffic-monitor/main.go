// Traffic monitor: the telecom-operator scenario from the paper's
// introduction — map-match a fleet of cellular trajectories and derive
// road-level traffic volumes from telecom tokens alone, without any
// GPS hardware in the vehicles.
//
// Run with:
//
//	go run ./examples/traffic-monitor
package main

import (
	"fmt"
	"log"
	"sort"

	lhmm "repro"
)

func main() {
	ds, err := lhmm.GenerateDataset(lhmm.SyntheticHangzhou(0.05, 140))
	if err != nil {
		log.Fatal(err)
	}
	cfg := lhmm.DefaultConfig()
	cfg.Dim = 16
	cfg.Epochs = 2
	cfg.K = 15
	model, err := lhmm.Train(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Match the whole held-out fleet and accumulate per-segment volume.
	volume := map[lhmm.SegmentID]int{}
	var matched, failed int
	for _, trip := range ds.TestTrips() {
		res, err := model.Match(trip.Cell)
		if err != nil {
			failed++
			continue
		}
		matched++
		for _, sid := range res.Path {
			volume[sid]++
		}
	}
	fmt.Printf("matched %d trips (%d failed)\n", matched, failed)

	// Rank road segments by inferred traffic volume.
	type road struct {
		sid lhmm.SegmentID
		n   int
	}
	var roads []road
	for sid, n := range volume {
		roads = append(roads, road{sid, n})
	}
	sort.Slice(roads, func(i, j int) bool {
		if roads[i].n != roads[j].n {
			return roads[i].n > roads[j].n
		}
		return roads[i].sid < roads[j].sid
	})

	fmt.Println("\nbusiest road segments (inferred from cellular data):")
	fmt.Printf("%-10s %-10s %-12s %-10s\n", "segment", "class", "length (m)", "vehicles")
	for i := 0; i < 10 && i < len(roads); i++ {
		seg := ds.Net.Segment(roads[i].sid)
		fmt.Printf("%-10d %-10s %-12.0f %-10d\n",
			roads[i].sid, seg.Class, seg.Length, roads[i].n)
	}

	// Compare inferred volumes against ground truth: how well does the
	// cellular-derived picture track reality?
	truth := map[lhmm.SegmentID]int{}
	for _, trip := range ds.TestTrips() {
		for _, sid := range trip.Path {
			truth[sid]++
		}
	}
	var agree, total int
	for sid, n := range truth {
		if n >= 2 { // roads with real traffic
			total++
			if volume[sid] >= 1 {
				agree++
			}
		}
	}
	if total > 0 {
		fmt.Printf("\n%d/%d genuinely busy roads (≥2 vehicles) were detected from cellular data (%.0f%%)\n",
			agree, total, 100*float64(agree)/float64(total))
	}
}
