// Custom network: build a road network by hand through the public API
// (e.g. from your own map extract), attach cell towers, and run both
// the classical HMM matcher and the preprocessing filter chain on a
// hand-crafted noisy trajectory.
//
// This is the integration path for users with real data: construct the
// Network with NetworkBuilder, wrap tower positions in a Dataset, and
// feed CellTrajectory values to any matcher.
//
// Run with:
//
//	go run ./examples/custom-network
package main

import (
	"fmt"
	"log"

	lhmm "repro"
)

func main() {
	// A small district: a main east-west avenue with a parallel service
	// road and three cross streets.
	var b lhmm.NetworkBuilder
	type nodeAt struct {
		x, y float64
	}
	coords := []nodeAt{
		{0, 0}, {500, 0}, {1000, 0}, {1500, 0}, {2000, 0}, // avenue nodes 0-4
		{0, 300}, {500, 300}, {1000, 300}, {1500, 300}, {2000, 300}, // service road 5-9
	}
	ids := make([]lhmm.NodeID, len(coords))
	for i, c := range coords {
		ids[i] = b.AddNode(lhmm.Point{X: c.x, Y: c.y})
	}
	mustTwoWay := func(a, c lhmm.NodeID, class int) {
		var err error
		switch class {
		case 1:
			_, _, err = b.AddTwoWay(a, c, 1) // arterial
		default:
			_, _, err = b.AddTwoWay(a, c, 0) // local
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		mustTwoWay(ids[i], ids[i+1], 1)   // avenue
		mustTwoWay(ids[i+5], ids[i+6], 0) // service road
	}
	for i := 0; i <= 4; i += 2 {
		mustTwoWay(ids[i], ids[i+5], 0) // cross streets
	}
	net, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom network: %d nodes, %d directed segments, %.1f km of road\n",
		net.NumNodes(), net.NumSegments(), net.TotalLength()/1000)

	// A noisy cellular trajectory traveling the avenue west to east.
	// Positions wobble hundreds of meters off the road, and one sample
	// is a severe outlier — the shape of real cellular data.
	raw := lhmm.CellTrajectory{
		{Tower: 0, P: lhmm.Point{X: 80, Y: 210}, T: 0},
		{Tower: 1, P: lhmm.Point{X: 540, Y: -260}, T: 60},
		{Tower: 2, P: lhmm.Point{X: 660, Y: 2400}, T: 120}, // outlier
		{Tower: 3, P: lhmm.Point{X: 1420, Y: 180}, T: 180},
		{Tower: 4, P: lhmm.Point{X: 1980, Y: -150}, T: 240},
	}

	// Preprocess with the paper's filter chain (speed, α-trimmed mean,
	// direction filters, §V-A1).
	filtered := lhmm.Preprocess(raw, lhmm.DefaultFilterConfig())
	fmt.Printf("preprocessing kept %d of %d points\n", len(filtered), len(raw))

	// Match with the classical HMM (on hand-built networks without
	// historical training trips, the distance-based model is the
	// starting point; collect trips and call lhmm.Train to upgrade).
	router := lhmm.NewRouter(net)
	matcher := lhmm.ClassicalMatcher(net, router, 8, 300, 400)
	out, err := matcher.Match(filtered)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("matched path:")
	for _, sid := range out.Path {
		seg := net.Segment(sid)
		fmt.Printf("  segment %d (%s): %v -> %v\n",
			sid, seg.Class, seg.Shape[0], seg.Shape[len(seg.Shape)-1])
	}
}
