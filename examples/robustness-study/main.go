// Robustness study: how does matching accuracy degrade as the cellular
// sampling rate drops (the paper's Fig. 7(b) experiment), and how does
// LHMM compare against the classical HMM under the same degradation?
//
// Run with:
//
//	go run ./examples/robustness-study
package main

import (
	"fmt"
	"log"

	lhmm "repro"
)

func main() {
	ds, err := lhmm.GenerateDataset(lhmm.SyntheticXiamen(0.05, 140))
	if err != nil {
		log.Fatal(err)
	}
	cfg := lhmm.DefaultConfig()
	cfg.Dim = 16
	cfg.Epochs = 2
	cfg.K = 15
	model, err := lhmm.Train(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	learned := lhmm.AsMethod("LHMM", model)
	classical := lhmm.ClassicalMatcher(ds.Net, lhmm.NewRouter(ds.Net), 20, 450, 500)

	fmt.Println("CMF50 (lower is better) as the sampling rate decreases:")
	fmt.Printf("%-22s %10s %14s\n", "rate (samples/min)", "LHMM", "classical HMM")
	for _, rate := range []float64{1.4, 1.0, 0.6, 0.3} {
		minGap := 60.0 / rate
		// Build resampled copies of the test trips.
		var resampled []lhmm.Trip
		for _, tr := range ds.TestTrips() {
			rt := *tr
			rt.Cell = tr.Cell.Resample(minGap)
			if len(rt.Cell) >= 2 {
				resampled = append(resampled, rt)
			}
		}
		trips := make([]*lhmm.Trip, len(resampled))
		for i := range resampled {
			trips[i] = &resampled[i]
		}
		if len(trips) == 0 {
			continue
		}
		sLearned := lhmm.Evaluate(ds, learned, trips, 50)
		sClassical := lhmm.Evaluate(ds, classical, trips, 50)
		fmt.Printf("%-22.1f %10.3f %14.3f\n", rate, sLearned.CMF, sClassical.CMF)
	}
	fmt.Println("\nThe learned probabilities degrade more slowly: trajectory context")
	fmt.Println("and co-occurrence knowledge compensate for missing samples, while")
	fmt.Println("the classical model has only spatial distance to lean on (§V-D).")
}
