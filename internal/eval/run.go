package eval

import (
	"fmt"
	"strings"
)

// ExperimentNames lists every runnable experiment id, in paper order,
// plus the "fidelity" check validating the ground-truth substitution
// (DESIGN.md §2).
var ExperimentNames = []string{
	"table1", "table2", "table3",
	"fig7a", "fig7b", "fig8", "fig9", "fig10a", "fig10b", "fig11",
	"fidelity",
}

// Figure10aLevels are the per-tower trajectory counts swept by default.
var Figure10aLevels = []int{2, 5, 10, 20}

// Figure10bFractions are the training-set fractions swept by default.
var Figure10bFractions = []float64{0.25, 0.5, 0.75, 1.0}

// RunExperiment executes one experiment by id and returns its rendered
// text. Experiments needing both datasets (table1) use both suites;
// the rest run on primary.
func RunExperiment(id string, primary, secondary *Suite) (string, error) {
	switch id {
	case "table1":
		suites := []*Suite{primary}
		if secondary != nil {
			suites = append(suites, secondary)
		}
		return Table1(suites...)
	case "table2":
		var b strings.Builder
		for _, s := range suitesFor(primary, secondary) {
			rows, err := Table2(s)
			if err != nil {
				return "", err
			}
			ds, _ := s.Dataset()
			b.WriteString(FormatRows(fmt.Sprintf("Table II — overall performance (%s)", ds.Name), rows))
			b.WriteString("\n")
		}
		return b.String(), nil
	case "table3":
		var b strings.Builder
		for _, s := range suitesFor(primary, secondary) {
			rows, err := Table3(s)
			if err != nil {
				return "", err
			}
			ds, _ := s.Dataset()
			b.WriteString(FormatRows(fmt.Sprintf("Table III — ablations (%s)", ds.Name), rows))
			b.WriteString("\n")
		}
		return b.String(), nil
	case "fig7a":
		pts, err := Figure7a(primary)
		if err != nil {
			return "", err
		}
		return FormatSeries("Fig. 7(a) — CMF50 vs. distance to city center (m)", "distance", pts), nil
	case "fig7b":
		pts, err := Figure7b(primary)
		if err != nil {
			return "", err
		}
		return FormatSeries("Fig. 7(b) — CMF50 vs. sampling rate (samples/min)", "rate", pts), nil
	case "fig8":
		pts, err := Figure8(primary)
		if err != nil {
			return "", err
		}
		return FormatSeries("Fig. 8 — LHMM accuracy vs. candidate number k", "k", pts), nil
	case "fig9":
		pts, err := Figure9(primary)
		if err != nil {
			return "", err
		}
		return FormatSeries("Fig. 9 — LHMM accuracy vs. shortcut number K", "K", pts), nil
	case "fig10a":
		pts, err := Figure10a(primary, Figure10aLevels)
		if err != nil {
			return "", err
		}
		return FormatSeries("Fig. 10(a) — CMF50 vs. trajectories at one tower", "trajectories", pts), nil
	case "fig10b":
		pts, err := Figure10b(primary, Figure10bFractions)
		if err != nil {
			return "", err
		}
		return FormatSeries("Fig. 10(b) — accuracy vs. total historical trajectories", "trajectories", pts), nil
	case "fig11":
		cs, err := Figure11(primary)
		if err != nil {
			return "", err
		}
		return cs.ASCII(100, 30), nil
	case "fidelity":
		var b strings.Builder
		b.WriteString("Ground-truth fidelity — classical HMM on GPS vs simulator truth\n")
		for _, s := range suitesFor(primary, secondary) {
			ds, err := s.Dataset()
			if err != nil {
				return "", err
			}
			sum := GroundTruthFidelity(ds, ds.TestTrips())
			fmt.Fprintf(&b, "%-22s P=%.3f R=%.3f RMF=%.3f CMF50=%.3f\n",
				ds.Name, sum.Precision, sum.Recall, sum.RMF, sum.CMF)
		}
		return b.String(), nil
	default:
		return "", fmt.Errorf("eval: unknown experiment %q (have %s)", id, strings.Join(ExperimentNames, ", "))
	}
}

func suitesFor(primary, secondary *Suite) []*Suite {
	if secondary == nil {
		return []*Suite{primary}
	}
	return []*Suite{primary, secondary}
}
