package eval

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/traj"
)

// CaseStudy is the Fig. 11 artifact: one challenging trajectory matched
// by LHMM and DMM, with per-method CMF and renderable geometry.
type CaseStudy struct {
	TripID      int
	MeanPosErrM float64 // mean distance from cell positions to the true path
	Truth       geo.Polyline
	Cell        geo.Polyline
	Matched     map[string]geo.Polyline
	CMF         map[string]float64
}

// Figure11 finds the test trip with the highest mean positioning error
// and matches it with LHMM and DMM (the paper's Fig. 11 comparison).
func Figure11(s *Suite) (*CaseStudy, error) {
	ds, err := s.Dataset()
	if err != nil {
		return nil, err
	}
	var hardest *traj.Trip
	worst := -1.0
	for _, tr := range ds.TestTrips() {
		var sum float64
		for _, cp := range tr.Cell {
			sum += tr.PathGeom.Dist(cp.P)
		}
		if len(tr.Cell) == 0 {
			continue
		}
		if e := sum / float64(len(tr.Cell)); e > worst {
			worst, hardest = e, tr
		}
	}
	if hardest == nil {
		return nil, fmt.Errorf("figure11: no test trips")
	}
	cs := &CaseStudy{
		TripID:      hardest.ID,
		MeanPosErrM: worst,
		Truth:       hardest.PathGeom,
		Cell:        hardest.Cell.Positions(),
		Matched:     map[string]geo.Polyline{},
		CMF:         map[string]float64{},
	}
	for _, name := range []string{"LHMM", "DMM"} {
		m, err := s.Method(name)
		if err != nil {
			return nil, err
		}
		out, err := m.Match(hardest.Cell)
		if err != nil {
			return nil, fmt.Errorf("figure11: %s: %w", name, err)
		}
		cs.Matched[name] = metrics.PathGeometry(ds.Net, out.Path)
		pm := metrics.EvalPath(ds.Net, out.Path, hardest.Path, 50)
		cs.CMF[name] = pm.CMF
	}
	return cs, nil
}

// ASCII renders the case study as a text map: `#` ground truth, letters
// for each method's path, `o` cellular points.
func (c *CaseStudy) ASCII(width, height int) string {
	if width < 10 {
		width = 60
	}
	if height < 5 {
		height = 24
	}
	box, ok := c.Truth.BBox()
	if !ok {
		return "(empty case)\n"
	}
	for _, pl := range c.Matched {
		if b2, ok := pl.BBox(); ok {
			box = box.Union(b2)
		}
	}
	if b2, ok := c.Cell.BBox(); ok {
		box = box.Union(b2)
	}
	box = box.Buffer(50)

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	plot := func(pl geo.Polyline, ch byte) {
		if len(pl) == 0 {
			return
		}
		total := pl.Length()
		steps := width * 4
		for i := 0; i <= steps; i++ {
			p := pl.At(total * float64(i) / float64(steps))
			x := int((p.X - box.Min.X) / box.Width() * float64(width-1))
			y := int((p.Y - box.Min.Y) / box.Height() * float64(height-1))
			if x >= 0 && x < width && y >= 0 && y < height {
				grid[height-1-y][x] = ch
			}
		}
	}
	plot(c.Truth, '#')
	chars := []byte{'L', 'D', 'M', 'X'}
	names := sortedKeys(c.Matched)
	for i, name := range names {
		plot(c.Matched[name], chars[i%len(chars)])
	}
	for _, p := range c.Cell {
		x := int((p.X - box.Min.X) / box.Width() * float64(width-1))
		y := int((p.Y - box.Min.Y) / box.Height() * float64(height-1))
		if x >= 0 && x < width && y >= 0 && y < height {
			grid[height-1-y][x] = 'o'
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 11 case study — trip %d, mean positioning error %.0f m\n",
		c.TripID, c.MeanPosErrM)
	b.WriteString("legend: # ground truth, o cellular points")
	for i, name := range names {
		fmt.Fprintf(&b, ", %c %s (CMF %.3f)", chars[i%len(chars)], name, c.CMF[name])
	}
	b.WriteString("\n")
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

func sortedKeys(m map[string]geo.Polyline) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// insertion sort (tiny)
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// GeoJSON exports the case study as a FeatureCollection (WGS84 around
// the given anchor) for external visualization.
func (c *CaseStudy) GeoJSON(anchor geo.Anchor) ([]byte, error) {
	type geometry struct {
		Type   string      `json:"type"`
		Coords [][]float64 `json:"coordinates"`
	}
	type feature struct {
		Type       string            `json:"type"`
		Properties map[string]string `json:"properties"`
		Geometry   geometry          `json:"geometry"`
	}
	line := func(pl geo.Polyline) [][]float64 {
		out := make([][]float64, len(pl))
		for i, p := range pl {
			ll := anchor.ToLatLon(p)
			out[i] = []float64{round6(ll.Lon), round6(ll.Lat)}
		}
		return out
	}
	features := []feature{{
		Type:       "Feature",
		Properties: map[string]string{"role": "ground-truth"},
		Geometry:   geometry{Type: "LineString", Coords: line(c.Truth)},
	}, {
		Type:       "Feature",
		Properties: map[string]string{"role": "cellular-trajectory"},
		Geometry:   geometry{Type: "LineString", Coords: line(c.Cell)},
	}}
	for _, name := range sortedKeys(c.Matched) {
		features = append(features, feature{
			Type: "Feature",
			Properties: map[string]string{
				"role":   "match",
				"method": name,
				"cmf":    fmt.Sprintf("%.3f", c.CMF[name]),
			},
			Geometry: geometry{Type: "LineString", Coords: line(c.Matched[name])},
		})
	}
	return json.MarshalIndent(map[string]interface{}{
		"type":     "FeatureCollection",
		"features": features,
	}, "", "  ")
}

func round6(v float64) float64 { return math.Round(v*1e6) / 1e6 }
