package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/mrg"
	"repro/internal/traj"
)

// Table2Methods lists the Table II rows in the paper's order.
var Table2Methods = []string{
	"STM", "IVMM", "IFM", "DeepMM", "MCM", "TransformerMM", // GPS-era
	"CLSTERS", "SNet", "THMM", "DMM", // CTMM-tailored
	"LHMM",
}

// Table1 regenerates Table I (dataset characteristics).
func Table1(suites ...*Suite) (string, error) {
	var names []string
	var stats []traj.Stats
	for _, s := range suites {
		ds, err := s.Dataset()
		if err != nil {
			return "", err
		}
		names = append(names, ds.Name)
		stats = append(stats, ds.ComputeStats())
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — dataset characteristics\n%-42s", "category")
	for _, n := range names {
		fmt.Fprintf(&b, " %18s", n)
	}
	b.WriteString("\n")
	row := func(label string, get func(traj.Stats) string) {
		fmt.Fprintf(&b, "%-42s", label)
		for _, st := range stats {
			fmt.Fprintf(&b, " %18s", get(st))
		}
		b.WriteString("\n")
	}
	row("road segments", func(s traj.Stats) string { return fmt.Sprintf("%d", s.RoadSegments) })
	row("intersections", func(s traj.Stats) string { return fmt.Sprintf("%d", s.Intersections) })
	row("all cellular trajectory points", func(s traj.Stats) string { return fmt.Sprintf("%d", s.CellPoints) })
	row("all GPS trajectory points", func(s traj.Stats) string { return fmt.Sprintf("%d", s.GPSPoints) })
	row("cellular trajectory points per trajectory", func(s traj.Stats) string { return fmt.Sprintf("%.0f", s.CellPointsPerTraj) })
	row("GPS trajectory points per trajectory", func(s traj.Stats) string { return fmt.Sprintf("%.0f", s.GPSPointsPerTraj) })
	row("average cellular sampling interval (s)", func(s traj.Stats) string { return fmt.Sprintf("%.0f", s.AvgCellIntervalSec) })
	row("maximum cellular sampling interval (s)", func(s traj.Stats) string { return fmt.Sprintf("%.0f", s.MaxCellIntervalSec) })
	row("average cellular sampling distance (m)", func(s traj.Stats) string { return fmt.Sprintf("%.0f", s.AvgCellSampleDistM) })
	row("median cellular sampling distance (m)", func(s traj.Stats) string { return fmt.Sprintf("%.0f", s.MedianCellSampleDistM) })
	return b.String(), nil
}

// Table2 regenerates Table II (overall performance) for one dataset.
func Table2(s *Suite) ([]Row, error) {
	ds, err := s.Dataset()
	if err != nil {
		return nil, err
	}
	trips := ds.TestTrips()
	rows := make([]Row, 0, len(Table2Methods))
	for _, name := range Table2Methods {
		m, err := s.Method(name)
		if err != nil {
			return nil, fmt.Errorf("table2: %s: %w", name, err)
		}
		summary, _ := EvaluateMethod(ds, m, trips, 50)
		rows = append(rows, Row{Method: name, Summary: summary})
	}
	return rows, nil
}

// Table3Variants lists the Table III ablation rows.
var Table3Variants = []string{"LHMM", "LHMM-E", "LHMM-H", "LHMM-O", "LHMM-T", "LHMM-S", "STM", "STM+S"}

// Table3 regenerates Table III (ablations) for one dataset.
func Table3(s *Suite) ([]Row, error) {
	ds, err := s.Dataset()
	if err != nil {
		return nil, err
	}
	trips := ds.TestTrips()
	mods := map[string]func(*core.Config){
		"LHMM-E": func(c *core.Config) { c.EncoderMode = mrg.MLPOnly },
		"LHMM-H": func(c *core.Config) { c.EncoderMode = mrg.HomoGNN },
		"LHMM-O": func(c *core.Config) { c.DisableImplicitObs = true },
		"LHMM-T": func(c *core.Config) { c.DisableImplicitTrans = true },
		"LHMM-S": func(c *core.Config) { c.Shortcuts = 0 },
	}
	var rows []Row
	for _, name := range Table3Variants {
		var m baselines.Method
		var err error
		switch {
		case name == "LHMM":
			m, err = s.Method("LHMM")
		case strings.HasPrefix(name, "LHMM-"):
			var model *core.Model
			model, err = s.LHMMVariant(name, mods[name])
			if err == nil {
				m = LHMMMethod(name, model)
			}
		default:
			m, err = s.Method(name)
		}
		if err != nil {
			return nil, fmt.Errorf("table3: %s: %w", name, err)
		}
		summary, _ := EvaluateMethod(ds, m, trips, 50)
		rows = append(rows, Row{Method: name, Summary: summary})
	}
	return rows, nil
}

// SeriesPoint is one x-position of a figure's line chart.
type SeriesPoint struct {
	X      float64
	Values map[string]float64 // method -> metric value
}

// Figure7aMethods are the methods compared in the robustness figures.
var Figure7aMethods = []string{"LHMM", "DMM", "STM"}

// Figure7a regenerates Fig. 7(a): CMF50 bucketed by the trip's distance
// to the city center (5 levels).
func Figure7a(s *Suite) ([]SeriesPoint, error) {
	ds, err := s.Dataset()
	if err != nil {
		return nil, err
	}
	trips := ds.TestTrips()
	// Bucket trips by centroid distance to the center, 5 equal-count
	// levels ordered urban → rural.
	type bucketed struct {
		trip *traj.Trip
		r    float64
	}
	bs := make([]bucketed, len(trips))
	for i, tr := range trips {
		centroid := tr.PathGeom.At(tr.PathGeom.Length() / 2)
		bs[i] = bucketed{tr, centroid.Dist(ds.Center)}
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].r < bs[j].r })
	const levels = 5
	points := make([]SeriesPoint, 0, levels)
	for lvl := 0; lvl < levels; lvl++ {
		lo, hi := lvl*len(bs)/levels, (lvl+1)*len(bs)/levels
		if hi <= lo {
			continue
		}
		group := make([]*traj.Trip, 0, hi-lo)
		var meanR float64
		for _, b := range bs[lo:hi] {
			group = append(group, b.trip)
			meanR += b.r
		}
		meanR /= float64(len(group))
		sp := SeriesPoint{X: meanR, Values: map[string]float64{}}
		for _, name := range Figure7aMethods {
			m, err := s.Method(name)
			if err != nil {
				return nil, err
			}
			summary, _ := EvaluateMethod(ds, m, group, 50)
			sp.Values[name] = summary.CMF
		}
		points = append(points, sp)
	}
	return points, nil
}

// Figure7bRates are the sampling rates (samples per minute) of
// Fig. 7(b).
var Figure7bRates = []float64{0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4}

// Figure7b regenerates Fig. 7(b): CMF50 as the cellular sampling rate
// varies, by resampling the test trajectories.
func Figure7b(s *Suite) ([]SeriesPoint, error) {
	ds, err := s.Dataset()
	if err != nil {
		return nil, err
	}
	trips := ds.TestTrips()
	points := make([]SeriesPoint, 0, len(Figure7bRates))
	for _, rate := range Figure7bRates {
		minGap := 60.0 / rate
		// Resampled copies of the test trips.
		resampled := make([]traj.Trip, 0, len(trips))
		for _, tr := range trips {
			rt := *tr
			rt.Cell = tr.Cell.Resample(minGap)
			if len(rt.Cell) >= 2 {
				resampled = append(resampled, rt)
			}
		}
		group := make([]*traj.Trip, len(resampled))
		for i := range resampled {
			group[i] = &resampled[i]
		}
		if len(group) == 0 {
			continue
		}
		sp := SeriesPoint{X: rate, Values: map[string]float64{}}
		for _, name := range Figure7aMethods {
			m, err := s.Method(name)
			if err != nil {
				return nil, err
			}
			summary, _ := EvaluateMethod(ds, m, group, 50)
			sp.Values[name] = summary.CMF
		}
		points = append(points, sp)
	}
	return points, nil
}

// Figure8Ks are the candidate counts swept in Fig. 8.
var Figure8Ks = []int{10, 20, 30, 40, 50, 60}

// Figure8 regenerates Fig. 8: LHMM accuracy vs. candidate number k.
func Figure8(s *Suite) ([]SeriesPoint, error) {
	ds, err := s.Dataset()
	if err != nil {
		return nil, err
	}
	model, err := s.LHMM()
	if err != nil {
		return nil, err
	}
	trips := ds.TestTrips()
	points := make([]SeriesPoint, 0, len(Figure8Ks))
	origK := model.Cfg.K
	defer func() { model.Cfg.K = origK }()
	for _, k := range Figure8Ks {
		model.Cfg.K = k
		summary, _ := EvaluateMethod(ds, LHMMMethod("LHMM", model), trips, 50)
		points = append(points, SeriesPoint{
			X: float64(k),
			Values: map[string]float64{
				"Precision": summary.Precision,
				"CMF50":     summary.CMF,
				"HR":        summary.HR,
			},
		})
	}
	return points, nil
}

// Figure9Ks are the shortcut counts swept in Fig. 9.
var Figure9Ks = []int{0, 1, 2, 3, 4}

// Figure9 regenerates Fig. 9: LHMM accuracy vs. shortcut number K.
func Figure9(s *Suite) ([]SeriesPoint, error) {
	ds, err := s.Dataset()
	if err != nil {
		return nil, err
	}
	model, err := s.LHMM()
	if err != nil {
		return nil, err
	}
	trips := ds.TestTrips()
	points := make([]SeriesPoint, 0, len(Figure9Ks))
	orig := model.Cfg.Shortcuts
	defer func() { model.Cfg.Shortcuts = orig }()
	for _, k := range Figure9Ks {
		model.Cfg.Shortcuts = k
		summary, _ := EvaluateMethod(ds, LHMMMethod("LHMM", model), trips, 50)
		points = append(points, SeriesPoint{
			X: float64(k),
			Values: map[string]float64{
				"Precision": summary.Precision,
				"CMF50":     summary.CMF,
			},
		})
	}
	return points, nil
}

// Figure10a regenerates Fig. 10(a): CMF50 for trips interacting with
// one (busy) tower, as the number of its associated training
// trajectories grows. Each x-position trains a model on a subset.
func Figure10a(s *Suite, levels []int) ([]SeriesPoint, error) {
	ds, err := s.Dataset()
	if err != nil {
		return nil, err
	}
	// Busiest tower by training-trip interactions.
	counts := map[int]int{}
	for _, tr := range ds.TrainTrips() {
		seen := map[int]bool{}
		for _, cp := range tr.Cell {
			seen[int(cp.Tower)] = true
		}
		for t := range seen {
			counts[t]++
		}
	}
	busiest, best := -1, 0
	for t, c := range counts {
		if c > best {
			busiest, best = t, c
		}
	}
	if busiest < 0 {
		return nil, fmt.Errorf("figure10a: no tower interactions")
	}
	interacts := func(tr *traj.Trip) bool {
		for _, cp := range tr.Cell {
			if int(cp.Tower) == busiest {
				return true
			}
		}
		return false
	}
	// Test trips touching the tower.
	var evalTrips []*traj.Trip
	for _, tr := range ds.TestTrips() {
		if interacts(tr) {
			evalTrips = append(evalTrips, tr)
		}
	}
	if len(evalTrips) == 0 {
		return nil, fmt.Errorf("figure10a: no test trips interact with the busiest tower")
	}
	// Training subsets: all non-interacting trips plus the first n
	// interacting ones.
	var inter, other []int
	for _, idx := range ds.Train {
		if interacts(&ds.Trips[idx]) {
			inter = append(inter, idx)
		} else {
			other = append(other, idx)
		}
	}
	points := make([]SeriesPoint, 0, len(levels))
	for _, n := range levels {
		if n > len(inter) {
			n = len(inter)
		}
		sub := *ds
		sub.Train = append(append([]int(nil), other...), inter[:n]...)
		model, err := core.Train(&sub, s.Cfg.LHMM)
		if err != nil {
			return nil, err
		}
		summary, _ := EvaluateMethod(ds, LHMMMethod("LHMM", model), evalTrips, 50)
		points = append(points, SeriesPoint{
			X:      float64(n),
			Values: map[string]float64{"CMF50": summary.CMF},
		})
	}
	return points, nil
}

// Figure10b regenerates Fig. 10(b): accuracy as the total number of
// historical (training) trajectories grows.
func Figure10b(s *Suite, fractions []float64) ([]SeriesPoint, error) {
	ds, err := s.Dataset()
	if err != nil {
		return nil, err
	}
	trips := ds.TestTrips()
	points := make([]SeriesPoint, 0, len(fractions))
	for _, f := range fractions {
		n := int(math.Max(1, f*float64(len(ds.Train))))
		sub := *ds
		sub.Train = ds.Train[:n]
		model, err := core.Train(&sub, s.Cfg.LHMM)
		if err != nil {
			return nil, err
		}
		summary, _ := EvaluateMethod(ds, LHMMMethod("LHMM", model), trips, 50)
		points = append(points, SeriesPoint{
			X: float64(n),
			Values: map[string]float64{
				"CMF50":     summary.CMF,
				"Precision": summary.Precision,
			},
		})
	}
	return points, nil
}

// FormatSeries renders figure data as an aligned text table.
func FormatSeries(title, xLabel string, points []SeriesPoint) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	if len(points) == 0 {
		return b.String()
	}
	var keys []string
	for k := range points[0].Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(&b, "%-14s", xLabel)
	for _, k := range keys {
		fmt.Fprintf(&b, " %14s", k)
	}
	b.WriteString("\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%-14.2f", p.X)
		for _, k := range keys {
			fmt.Fprintf(&b, " %14.3f", p.Values[k])
		}
		b.WriteString("\n")
	}
	return b.String()
}
