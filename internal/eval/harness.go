// Package eval is the experiment harness: it evaluates any matching
// method over a dataset's test trips, aggregates the paper's metrics,
// and regenerates every table and figure of the evaluation section
// (Tables I–III, Figures 7–11). See DESIGN.md §5 for the experiment
// index.
package eval

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/traj"
)

// Harness telemetry (internal/obs).
var (
	obsEvalTrips  = obs.Default.Counter("eval.trips")
	obsEvalErrors = obs.Default.Counter("eval.trip.errors")
	obsEvalTripS  = obs.Default.Histogram("eval.trip.seconds", obs.LatencyBuckets)
)

// LHMMMethod adapts a trained core.Model to the Method interface.
func LHMMMethod(name string, m *core.Model) baselines.Method {
	return &baselines.FuncMethod{
		MethodName: name,
		Fn: func(ct traj.CellTrajectory) (*baselines.Output, error) {
			res, err := m.Match(ct)
			if err != nil {
				return nil, err
			}
			return baselines.ResultToOutput(res), nil
		},
	}
}

// TripResult is one trip's evaluation outcome.
type TripResult struct {
	TripID  int
	Metrics metrics.PathMetrics
	HR      float64
	HasHR   bool
	Seconds float64
	Err     error
}

// EvaluateMethod runs the method over the trips in parallel and
// aggregates the paper's metrics with the given CMF corridor radius.
// Matching wall time is measured per trip (the paper's Avg Time).
func EvaluateMethod(ds *traj.Dataset, m baselines.Method, trips []*traj.Trip, corridor float64) (metrics.Summary, []TripResult) {
	evalStart := time.Now()
	results := make([]TripResult, len(trips))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	for i, tr := range trips {
		wg.Add(1)
		go func(i int, tr *traj.Trip) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			out, err := m.Match(tr.Cell)
			elapsed := time.Since(start).Seconds()
			obsEvalTrips.Inc()
			obsEvalTripS.Observe(elapsed)
			r := TripResult{TripID: tr.ID, Seconds: elapsed, Err: err}
			if err == nil {
				r.Metrics = metrics.EvalPath(ds.Net, out.Path, tr.Path, corridor)
				if out.Candidates != nil {
					r.HR = metrics.HittingRatio(out.Candidates, tr.Path)
					r.HasHR = true
				}
			} else {
				obsEvalErrors.Inc()
			}
			results[i] = r
		}(i, tr)
	}
	wg.Wait()

	var acc metrics.Accum
	for _, r := range results {
		if r.Err != nil {
			// A method failing a trip counts as a total mismatch, the
			// fairest aggregate treatment.
			acc.Add(metrics.PathMetrics{RMF: 1, CMF: 1})
			acc.AddTime(r.Seconds)
			continue
		}
		acc.Add(r.Metrics)
		acc.AddTime(r.Seconds)
		if r.HasHR {
			acc.AddHR(r.HR)
		}
	}
	summary := acc.Summary()
	obs.Logger().Debug("eval: method evaluated",
		"method", m.Name(), "trips", len(trips),
		"cmf50", summary.CMF, "rmf", summary.RMF,
		"avg_trip_s", summary.AvgTimeS,
		"wall_s", time.Since(evalStart).Seconds())
	return summary, results
}

// Row is one rendered table row: a method name and its summary.
type Row struct {
	Method  string
	Summary metrics.Summary
}

// FormatRows renders rows in the paper's Table II shape.
func FormatRows(title string, rows []Row) string {
	out := fmt.Sprintf("%s\n%-15s %9s %9s %9s %9s %9s %12s\n",
		title, "Method", "Precision", "Recall", "RMF", "CMF50", "HR", "AvgTime(s)")
	for _, r := range rows {
		hr := "    -"
		if !isNaN(r.Summary.HR) {
			hr = fmt.Sprintf("%9.3f", r.Summary.HR)
		}
		out += fmt.Sprintf("%-15s %9.3f %9.3f %9.3f %9.3f %9s %12.4f\n",
			r.Method, r.Summary.Precision, r.Summary.Recall, r.Summary.RMF,
			r.Summary.CMF, hr, r.Summary.AvgTimeS)
	}
	return out
}

func isNaN(f float64) bool { return f != f }
