package eval

import (
	"fmt"
	"sync"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/mrg"
	"repro/internal/roadnet"
	"repro/internal/synth"
	"repro/internal/traj"
)

// SuiteConfig sizes one dataset's experiment suite.
type SuiteConfig struct {
	// Dataset is the generator preset.
	Dataset synth.DatasetConfig
	// LHMM is the model configuration (K=30 per the paper).
	LHMM core.Config
	// Baseline is the HMM-family configuration (K=45 per the paper).
	Baseline baselines.CommonConfig
	// Seq is the seq2seq-family configuration.
	Seq baselines.Seq2SeqConfig
}

// DefaultSuite returns the experiment sizing used by the benchmark
// harness: a scaled-down city preserving the paper's dataset shape
// (Table I ratios) at single-machine cost.
func DefaultSuite(preset string, scale float64, trips int) SuiteConfig {
	var ds synth.DatasetConfig
	switch preset {
	case "xiamen":
		ds = synth.SyntheticXiamen(scale, trips)
	default:
		ds = synth.SyntheticHangzhou(scale, trips)
	}
	lhmm := core.DefaultConfig()
	lhmm.Dim = 24
	lhmm.Epochs = 3
	lhmm.FuseEpochs = 2
	lhmm.K = 30
	lhmm.Shortcuts = 1
	return SuiteConfig{
		Dataset:  ds,
		LHMM:     lhmm,
		Baseline: baselines.CommonConfig{K: 45, Sigma: 450, Beta: 500},
		Seq:      baselines.Seq2SeqConfig{Dim: 24, Epochs: 4, Seed: 3},
	}
}

// Suite lazily materializes the dataset, shared infrastructure, and
// trained models for one city's experiments. All getters are safe for
// concurrent use and memoize their results.
type Suite struct {
	Cfg SuiteConfig

	mu      sync.Mutex
	ds      *traj.Dataset
	router  *roadnet.Router
	graph   *mrg.Graph
	lhmm    *core.Model
	lhmmVar map[string]*core.Model
	seq     map[string]baselines.Method
	errs    map[string]error
}

// NewSuite creates an empty suite.
func NewSuite(cfg SuiteConfig) *Suite {
	return &Suite{
		Cfg:     cfg,
		lhmmVar: make(map[string]*core.Model),
		seq:     make(map[string]baselines.Method),
		errs:    make(map[string]error),
	}
}

// Dataset generates (once) and returns the dataset.
func (s *Suite) Dataset() (*traj.Dataset, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.datasetLocked()
}

func (s *Suite) datasetLocked() (*traj.Dataset, error) {
	if s.ds != nil {
		return s.ds, nil
	}
	if err, ok := s.errs["dataset"]; ok {
		return nil, err
	}
	ds, err := synth.GenerateDataset(s.Cfg.Dataset)
	if err != nil {
		s.errs["dataset"] = err
		return nil, err
	}
	s.ds = ds
	s.router = roadnet.NewRouter(ds.Net)
	return ds, nil
}

// Router returns the shared router.
func (s *Suite) Router() (*roadnet.Router, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.datasetLocked(); err != nil {
		return nil, err
	}
	return s.router, nil
}

// Graph builds (once) the multi-relational graph over training trips.
func (s *Suite) Graph() (*mrg.Graph, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.graph != nil {
		return s.graph, nil
	}
	ds, err := s.datasetLocked()
	if err != nil {
		return nil, err
	}
	g, err := mrg.BuildGraph(ds.Net, ds.Cells, ds.TrainTrips())
	if err != nil {
		return nil, err
	}
	s.graph = g
	return g, nil
}

// LHMM trains (once) and returns the full LHMM model.
func (s *Suite) LHMM() (*core.Model, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lhmm != nil {
		return s.lhmm, nil
	}
	if err, ok := s.errs["lhmm"]; ok {
		return nil, err
	}
	ds, err := s.datasetLocked()
	if err != nil {
		return nil, err
	}
	m, err := core.Train(ds, s.Cfg.LHMM)
	if err != nil {
		s.errs["lhmm"] = err
		return nil, err
	}
	s.lhmm = m
	return m, nil
}

// LHMMVariant trains (once per name) an ablation variant; mod adjusts
// the base configuration.
func (s *Suite) LHMMVariant(name string, mod func(*core.Config)) (*core.Model, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.lhmmVar[name]; ok {
		return m, nil
	}
	if err, ok := s.errs["lhmm:"+name]; ok {
		return nil, err
	}
	ds, err := s.datasetLocked()
	if err != nil {
		return nil, err
	}
	cfg := s.Cfg.LHMM
	mod(&cfg)
	m, err := core.Train(ds, cfg)
	if err != nil {
		s.errs["lhmm:"+name] = err
		return nil, err
	}
	s.lhmmVar[name] = m
	return m, nil
}

// SeqMethod trains (once per name) a seq2seq baseline: "DeepMM",
// "TransformerMM", or "DMM".
func (s *Suite) SeqMethod(name string) (baselines.Method, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.seq[name]; ok {
		return m, nil
	}
	if err, ok := s.errs["seq:"+name]; ok {
		return nil, err
	}
	ds, err := s.datasetLocked()
	if err != nil {
		return nil, err
	}
	var m baselines.Method
	switch name {
	case "DeepMM":
		m, err = baselines.NewDeepMM(ds.Net, ds.Cells.NumTowers(), ds.TrainTrips(), s.Cfg.Seq)
	case "TransformerMM":
		m, err = baselines.NewTransformerMM(ds.Net, ds.Cells.NumTowers(), ds.TrainTrips(), s.Cfg.Seq)
	case "DMM":
		m, err = baselines.NewDMM(ds.Net, ds.Cells.NumTowers(), ds.TrainTrips(), s.Cfg.Seq)
	default:
		err = fmt.Errorf("eval: unknown seq2seq method %q", name)
	}
	if err != nil {
		s.errs["seq:"+name] = err
		return nil, err
	}
	s.seq[name] = m
	return m, nil
}

// HMMBaseline constructs one of the HMM-family baselines by name.
func (s *Suite) HMMBaseline(name string) (baselines.Method, error) {
	ds, err := s.Dataset()
	if err != nil {
		return nil, err
	}
	router, err := s.Router()
	if err != nil {
		return nil, err
	}
	cfg := s.Cfg.Baseline
	switch name {
	case "STM":
		return baselines.NewSTM(ds.Net, router, cfg), nil
	case "STM+S":
		return baselines.NewSTMWithShortcuts(ds.Net, router, cfg, 1), nil
	case "IVMM":
		return baselines.NewIVMM(ds.Net, router, cfg), nil
	case "IFM":
		return baselines.NewIFM(ds.Net, router, cfg), nil
	case "MCM":
		return baselines.NewMCM(ds.Net, router, cfg), nil
	case "SNet":
		return baselines.NewSNet(ds.Net, router, cfg), nil
	case "THMM":
		return baselines.NewTHMM(ds.Net, router, cfg), nil
	case "CLSTERS":
		g, err := s.Graph()
		if err != nil {
			return nil, err
		}
		return baselines.NewCLSTERS(ds.Net, router, g, cfg), nil
	default:
		return nil, fmt.Errorf("eval: unknown HMM baseline %q", name)
	}
}

// BaselineByName builds a non-learned HMM-family baseline directly
// over a dataset (without a Suite). CLSTERS needs historical data, so
// it builds the co-occurrence graph from the dataset's training split.
func BaselineByName(ds *traj.Dataset, router *roadnet.Router, name string) (baselines.Method, error) {
	cfg := baselines.CommonConfig{K: 45, Sigma: 450, Beta: 500}
	switch name {
	case "STM":
		return baselines.NewSTM(ds.Net, router, cfg), nil
	case "STM+S":
		return baselines.NewSTMWithShortcuts(ds.Net, router, cfg, 1), nil
	case "IVMM":
		return baselines.NewIVMM(ds.Net, router, cfg), nil
	case "IFM":
		return baselines.NewIFM(ds.Net, router, cfg), nil
	case "MCM":
		return baselines.NewMCM(ds.Net, router, cfg), nil
	case "SNet":
		return baselines.NewSNet(ds.Net, router, cfg), nil
	case "THMM":
		return baselines.NewTHMM(ds.Net, router, cfg), nil
	case "CLSTERS":
		g, err := mrg.BuildGraph(ds.Net, ds.Cells, ds.TrainTrips())
		if err != nil {
			return nil, err
		}
		return baselines.NewCLSTERS(ds.Net, router, g, cfg), nil
	default:
		return nil, fmt.Errorf("eval: unknown baseline %q", name)
	}
}

// Method resolves any Table II method by name (trains it if needed).
func (s *Suite) Method(name string) (baselines.Method, error) {
	switch name {
	case "LHMM":
		m, err := s.LHMM()
		if err != nil {
			return nil, err
		}
		return LHMMMethod("LHMM", m), nil
	case "DeepMM", "TransformerMM", "DMM":
		return s.SeqMethod(name)
	default:
		return s.HMMBaseline(name)
	}
}
