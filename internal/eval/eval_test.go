package eval

import (
	"math"
	"strings"
	"testing"

	"repro/internal/baselines"
	"repro/internal/cellular"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/synth"
	"repro/internal/traj"
)

// tinySuite keeps everything very small so the whole experiment surface
// can run inside a unit test.
func tinySuite(name string, seed int64) *Suite {
	cfg := SuiteConfig{
		Dataset: synth.DatasetConfig{
			Seed: seed,
			City: synth.CityConfig{
				Name:          name,
				HalfSize:      2000,
				BlockSize:     250,
				CoreRadius:    1000,
				NodeJitter:    15,
				EdgeDropCore:  0.05,
				EdgeDropRural: 0.3,
				ArterialEvery: 4,
				TowerCount:    40,
			},
			Trips: synth.TripConfig{
				Count:            18,
				MinLen:           1200,
				MaxLen:           3200,
				GPSInterval:      20,
				GPSNoise:         8,
				CellMeanInterval: 40,
				Serving:          cellular.DefaultServingModel(),
			},
			Preprocess: true,
			Filter:     traj.DefaultFilterConfig(),
			TrainFrac:  0.6,
			ValidFrac:  0.1,
		},
		LHMM: func() core.Config {
			c := core.DefaultConfig()
			c.Dim = 12
			c.Epochs = 1
			c.FuseEpochs = 1
			c.K = 8
			c.PoolSize = 16
			c.CoPool = 6
			c.PairsPerTrip = 16
			return c
		}(),
		Baseline: baselines.CommonConfig{K: 10},
		Seq:      baselines.Seq2SeqConfig{Dim: 10, Epochs: 1, MaxTarget: 40, Seed: 2},
	}
	return NewSuite(cfg)
}

func TestEvaluateMethod(t *testing.T) {
	s := tinySuite("eval-test", 31)
	ds, err := s.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Method("STM")
	if err != nil {
		t.Fatal(err)
	}
	summary, results := EvaluateMethod(ds, m, ds.TestTrips(), 50)
	if summary.Trips != len(ds.TestTrips()) {
		t.Errorf("Trips = %d, want %d", summary.Trips, len(ds.TestTrips()))
	}
	if summary.AvgTimeS <= 0 {
		t.Error("AvgTimeS not measured")
	}
	if math.IsNaN(summary.HR) {
		t.Error("HMM method should report HR")
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("trip %d errored: %v", r.TripID, r.Err)
		}
	}
}

func TestSuiteMemoization(t *testing.T) {
	s := tinySuite("memo-test", 32)
	d1, err := s.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := s.Dataset()
	if d1 != d2 {
		t.Error("Dataset not memoized")
	}
	m1, err := s.LHMM()
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := s.LHMM()
	if m1 != m2 {
		t.Error("LHMM not memoized")
	}
	if _, err := s.Method("nope"); err == nil {
		t.Error("unknown method did not error")
	}
	if _, err := s.SeqMethod("nope"); err == nil {
		t.Error("unknown seq method did not error")
	}
}

func TestTable1(t *testing.T) {
	s := tinySuite("t1-test", 33)
	out, err := Table1(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"road segments", "t1-test", "cellular trajectory points"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3AndFigures(t *testing.T) {
	// Table 3 exercises every ablation; figures 8/9 sweep the trained
	// model. Table 2 is exercised in the benchmark harness (it trains
	// three extra seq2seq models); here we run a subset through
	// Method() to keep the test fast.
	s := tinySuite("t3-test", 34)

	rows, err := Table3(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Table3Variants) {
		t.Fatalf("Table3 rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Summary.Trips == 0 {
			t.Errorf("row %s evaluated no trips", r.Method)
		}
	}
	rendered := FormatRows("Table III", rows)
	if !strings.Contains(rendered, "LHMM-S") || !strings.Contains(rendered, "STM+S") {
		t.Errorf("render missing rows:\n%s", rendered)
	}

	pts, err := Figure8(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(Figure8Ks) {
		t.Errorf("Figure8 points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Values["CMF50"] < 0 || p.Values["CMF50"] > 1 {
			t.Errorf("Figure8 CMF out of range: %v", p.Values)
		}
	}

	pts9, err := Figure9(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts9) != len(Figure9Ks) {
		t.Errorf("Figure9 points = %d", len(pts9))
	}
	if out := FormatSeries("Fig 9", "K", pts9); !strings.Contains(out, "CMF50") {
		t.Errorf("FormatSeries missing header:\n%s", out)
	}
}

func TestFigure7bResampling(t *testing.T) {
	s := tinySuite("f7-test", 35)
	// Restrict to the cheap methods for the unit test.
	old := Figure7aMethods
	Figure7aMethods = []string{"STM"}
	defer func() { Figure7aMethods = old }()
	pts, err := Figure7b(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no Figure7b points")
	}
	for _, p := range pts {
		if _, ok := p.Values["STM"]; !ok {
			t.Error("missing STM series")
		}
	}
}

func TestFigure10b(t *testing.T) {
	s := tinySuite("f10-test", 36)
	pts, err := Figure10b(s, []float64{0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("Figure10b points = %d", len(pts))
	}
	if pts[0].X >= pts[1].X {
		t.Error("training sizes not increasing")
	}
}

func TestFigure11CaseStudy(t *testing.T) {
	s := tinySuite("f11-test", 37)
	// DMM is expensive; swap the comparison to STM by name is not
	// supported (Figure11 is fixed to LHMM/DMM per the paper), so run
	// it fully but with the tiny seq config.
	cs, err := Figure11(s)
	if err != nil {
		t.Fatal(err)
	}
	if cs.MeanPosErrM <= 0 {
		t.Error("no positioning error measured")
	}
	art := cs.ASCII(60, 20)
	if !strings.Contains(art, "ground truth") || !strings.Contains(art, "#") {
		t.Errorf("ASCII art missing elements:\n%s", art)
	}
	gj, err := cs.GeoJSON(geo.Anchor{Origin: geo.LatLon{Lat: 30, Lon: 120}})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"FeatureCollection", "ground-truth", "LHMM", "DMM"} {
		if !strings.Contains(string(gj), want) {
			t.Errorf("GeoJSON missing %q", want)
		}
	}
}

func TestCaseStudySVG(t *testing.T) {
	cs := &CaseStudy{
		TripID:      3,
		MeanPosErrM: 512,
		Truth:       geo.Polyline{geo.Pt(0, 0), geo.Pt(500, 0), geo.Pt(500, 400)},
		Cell:        geo.Polyline{geo.Pt(30, 120), geo.Pt(420, -80), geo.Pt(600, 380)},
		Matched: map[string]geo.Polyline{
			"LHMM": {geo.Pt(0, 0), geo.Pt(500, 0), geo.Pt(500, 400)},
			"DMM":  {geo.Pt(0, 0), geo.Pt(0, 400), geo.Pt(500, 400)},
		},
		CMF: map[string]float64{"LHMM": 0.1, "DMM": 0.5},
	}
	svg := string(cs.SVG(600))
	for _, want := range []string{"<svg", "polyline", "ground truth", "LHMM", "DMM", "</svg>"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Degenerate case study yields a valid empty document.
	empty := &CaseStudy{}
	if !strings.Contains(string(empty.SVG(600)), "<svg") {
		t.Error("empty SVG malformed")
	}
}

// TestGroundTruthFidelity validates the paper's label recipe against
// the simulator labels: a classical HMM on the (low-noise) GPS track
// should recover the true path with high corridor accuracy.
func TestGroundTruthFidelity(t *testing.T) {
	s := tinySuite("fid-test", 38)
	ds, err := s.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	sum := GroundTruthFidelity(ds, ds.TestTrips())
	t.Logf("GPS-HMM vs simulator truth: P=%.3f R=%.3f CMF50=%.3f", sum.Precision, sum.Recall, sum.CMF)
	if sum.CMF > 0.15 {
		t.Errorf("GPS-derived labels diverge from simulator truth: CMF50 %.3f", sum.CMF)
	}
	if sum.Recall < 0.7 {
		t.Errorf("GPS matcher recall %.3f too low for 8 m noise", sum.Recall)
	}
}
