package eval

import (
	"fmt"
	"strings"

	"repro/internal/geo"
)

// svgPalette assigns stable colors to the case-study layers.
var svgPalette = []string{"#d62728", "#1f77b4", "#9467bd", "#8c564b"}

// SVG renders the case study as a standalone SVG document: ground
// truth in black, the cellular trajectory as gray points connected by
// a dashed line, and each method's matched path in color — the Fig. 11
// visualization as a publishable vector image.
func (c *CaseStudy) SVG(width int) []byte {
	if width < 100 {
		width = 800
	}
	box, ok := c.Truth.BBox()
	if !ok {
		return []byte("<svg xmlns=\"http://www.w3.org/2000/svg\"/>")
	}
	for _, pl := range c.Matched {
		if b2, ok := pl.BBox(); ok {
			box = box.Union(b2)
		}
	}
	if b2, ok := c.Cell.BBox(); ok {
		box = box.Union(b2)
	}
	box = box.Buffer(80)
	if box.Width() <= 0 || box.Height() <= 0 {
		box = box.Buffer(1)
	}
	scale := float64(width) / box.Width()
	height := int(box.Height()*scale) + 40 // room for the legend

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)

	toXY := func(p geo.Point) (float64, float64) {
		return (p.X - box.Min.X) * scale, float64(height-40) - (p.Y-box.Min.Y)*scale
	}
	polyline := func(pl geo.Polyline, stroke string, widthPx float64, dashed bool) {
		if len(pl) < 2 {
			return
		}
		var pts []string
		for _, p := range pl {
			x, y := toXY(p)
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y))
		}
		dash := ""
		if dashed {
			dash = ` stroke-dasharray="6,4"`
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%.1f"%s stroke-linecap="round"/>`,
			strings.Join(pts, " "), stroke, widthPx, dash)
	}

	polyline(c.Truth, "#000000", 3, false)
	polyline(c.Cell, "#999999", 1.5, true)
	for _, p := range c.Cell {
		x, y := toXY(p)
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="4" fill="#999999"/>`, x, y)
	}
	names := sortedKeys(c.Matched)
	for i, name := range names {
		polyline(c.Matched[name], svgPalette[i%len(svgPalette)], 2.5, false)
	}

	// Legend.
	ly := height - 22
	lx := 10.0
	entry := func(color, label string) {
		fmt.Fprintf(&b, `<rect x="%.0f" y="%d" width="14" height="4" fill="%s"/>`, lx, ly, color)
		fmt.Fprintf(&b, `<text x="%.0f" y="%d" font-family="sans-serif" font-size="12">%s</text>`,
			lx+18, ly+6, label)
		lx += float64(len(label))*7 + 45
	}
	entry("#000000", "ground truth")
	entry("#999999", "cellular trajectory")
	for i, name := range names {
		entry(svgPalette[i%len(svgPalette)], fmt.Sprintf("%s (CMF %.3f)", name, c.CMF[name]))
	}
	b.WriteString("</svg>")
	return []byte(b.String())
}
