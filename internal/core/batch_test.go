package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/hmm"
	"repro/internal/nn"
)

// The batched inference paths (obsScoreBatch, ScoreBatch,
// SelfApplyAllWS-built context) must agree with the scalar reference
// paths within 1e-12 — the scalar paths are what the seed shipped, so
// this pins the perf rewrite to the original semantics.

const batchTol = 1e-12

// trainedModel trains one small model shared by the equivalence tests.
func trainedModel(t *testing.T) (*Model, *session) {
	t.Helper()
	d := testDataset(t, 14)
	m, err := Train(d, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := d.Trips[d.Test[0]]
	if len(tr.Cell) < 3 {
		t.Fatalf("test trip too short: %d points", len(tr.Cell))
	}
	sess := m.newSession(tr.Cell)
	t.Cleanup(sess.release)
	return m, sess
}

// TestContextMatchesPerPointAttention: the one-shot batched Eq. 6 pass
// (SelfApplyAllWS) equals running the attention per point.
func TestContextMatchesPerPointAttention(t *testing.T) {
	m, sess := trainedModel(t)
	for i := 0; i < len(sess.ct); i++ {
		q := &nn.Mat{R: 1, C: sess.ptEmb.C, W: sess.ptEmb.Row(i)}
		want, _ := m.ObsAtt.Apply(q, sess.ptEmb, sess.ptEmb)
		got := sess.ctx.Row(i)
		for j := range want.W {
			if math.Abs(want.W[j]-got[j]) > batchTol {
				t.Fatalf("point %d dim %d: ctx %v vs per-point %v", i, j, got[j], want.W[j])
			}
		}
	}
}

// TestCandidatesMatchScalarObsScore: every candidate probability out of
// the batched pool scoring equals the scalar obsScore re-normalized by
// the cached pool softmax.
func TestCandidatesMatchScalarObsScore(t *testing.T) {
	m, sess := trainedModel(t)
	for i := 0; i < len(sess.ct); i++ {
		cands := sess.Candidates(sess.ct, i, m.Cfg.K)
		if len(cands) == 0 {
			t.Fatalf("point %d: no candidates", i)
		}
		for _, c := range cands {
			sc := sess.obsScore(i, c.Seg, c.Dist)
			want := math.Exp(sc-sess.obsMax[i]) / sess.obsZ[i]
			if math.Abs(want-c.Obs) > batchTol {
				t.Fatalf("point %d seg %d: batched Obs %v vs scalar %v", i, c.Seg, c.Obs, want)
			}
		}
	}
}

// TestScoreBatchMatchesTransScore: the fused k×k transition batch
// equals pairwise TransScore, with NaN exactly where the scalar path
// reports unreachable.
func TestScoreBatchMatchesTransScore(t *testing.T) {
	m, sess := trainedModel(t)
	for i := 1; i < len(sess.ct) && i <= 4; i++ {
		from := sess.Candidates(sess.ct, i-1, m.Cfg.K)
		to := sess.Candidates(sess.ct, i, m.Cfg.K)
		out := make([]float64, len(from)*len(to))
		sess.ScoreBatch(sess.ct, i, from, to, out)
		for j := range from {
			for kk := range to {
				got := out[j*len(to)+kk]
				want, ok := sess.TransScore(sess.ct, i, &from[j], &to[kk])
				if !ok {
					if !math.IsNaN(got) {
						t.Fatalf("step %d pair (%d,%d): batch %v for unreachable pair", i, j, kk, got)
					}
					continue
				}
				if math.IsNaN(got) || math.Abs(want-got) > batchTol {
					t.Fatalf("step %d pair (%d,%d): batch %v vs scalar %v", i, j, kk, got, want)
				}
			}
		}
	}
}

// TestScoreBatchParallelIdentical: worker count must not change a
// single bit of the batch output (features are pair-indexed, roadProb
// is deterministic, and the fused product is one shared matrix).
func TestScoreBatchParallelIdentical(t *testing.T) {
	m, sess := trainedModel(t)
	i := 1
	from := sess.Candidates(sess.ct, i-1, m.Cfg.K)
	to := sess.Candidates(sess.ct, i, m.Cfg.K)
	want := make([]float64, len(from)*len(to))
	sess.ScoreBatch(sess.ct, i, from, to, want)
	for _, workers := range []int{2, 3, 8} {
		m.Cfg.Parallel = workers
		got := make([]float64, len(want))
		sess.ScoreBatch(sess.ct, i, from, to, got)
		for p := range want {
			if want[p] != got[p] && !(math.IsNaN(want[p]) && math.IsNaN(got[p])) {
				t.Fatalf("workers=%d pair %d: %v vs %v", workers, p, got[p], want[p])
			}
		}
	}
	m.Cfg.Parallel = 0
}

// TestParallelMatchIdentical: full end-to-end matching with the
// parallel fan-out returns the same result as sequential. Run under
// -race this also validates the concurrent session/router caches.
func TestParallelMatchIdentical(t *testing.T) {
	d := testDataset(t, 14)
	m, err := Train(d, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	nTrips := len(d.Test)
	if nTrips > 4 {
		nTrips = 4
	}
	want := make([]*hmm.Result, nTrips)
	for i := 0; i < nTrips; i++ {
		res, err := m.Match(d.Trips[d.Test[i]].Cell)
		if err != nil {
			t.Fatalf("sequential match %d: %v", i, err)
		}
		want[i] = res
	}
	for _, workers := range []int{2, 4} {
		m.Cfg.Parallel = workers
		for i := 0; i < nTrips; i++ {
			res, err := m.Match(d.Trips[d.Test[i]].Cell)
			if err != nil {
				t.Fatalf("parallel match %d: %v", i, err)
			}
			if !reflect.DeepEqual(res.Matched, want[i].Matched) {
				t.Fatalf("workers=%d trip %d: Matched diverged", workers, i)
			}
			if !reflect.DeepEqual(res.Path, want[i].Path) {
				t.Fatalf("workers=%d trip %d: Path diverged", workers, i)
			}
			if res.Score != want[i].Score {
				t.Fatalf("workers=%d trip %d: Score %v vs %v", workers, i, res.Score, want[i].Score)
			}
		}
	}
	m.Cfg.Parallel = 0
}
