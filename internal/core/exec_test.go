package core

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/hmm"
	"repro/internal/sched"
	"repro/internal/traj"
)

// TestExecSchedulerMatchParity pins the serving guarantee end to end at
// the model layer: matching through a micro-batching scheduler in
// float64 mode produces results bit-identical to direct inline scoring,
// including under concurrent requests that actually coalesce.
func TestExecSchedulerMatchParity(t *testing.T) {
	d := testDataset(t, 10)
	m := streamModel(t, d)
	trips := d.TestTrips()
	if len(trips) == 0 {
		t.Skip("no test trips")
	}

	// Reference: direct inline scoring.
	want := make([]*hmm.Result, len(trips))
	for i, tr := range trips {
		res, err := m.Match(tr.Cell)
		if err != nil {
			t.Fatalf("direct match trip %d: %v", tr.ID, err)
		}
		want[i] = res
	}

	s := sched.New(sched.Config{Window: 500 * time.Microsecond, MaxRows: 256, Workers: 4})
	defer s.Close()
	ms := *m // shallow copy, the serve overrideModel pattern
	ms.Exec = s

	// Concurrent matches through the shared scheduler so batches form.
	var wg sync.WaitGroup
	got := make([]*hmm.Result, len(trips))
	errs := make([]error, len(trips))
	for round := 0; round < 3; round++ {
		for i, tr := range trips {
			wg.Add(1)
			go func(i int, ct traj.CellTrajectory) {
				defer wg.Done()
				got[i], errs[i] = ms.Match(ct)
			}(i, tr.Cell)
		}
		wg.Wait()
		for i := range trips {
			if errs[i] != nil {
				t.Fatalf("scheduled match trip %d: %v", trips[i].ID, errs[i])
			}
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("round %d trip %d: scheduled result differs from direct", round, trips[i].ID)
			}
		}
	}
}

// TestExecSchedulerStreamParity: the streaming session's learned
// scoring also routes through the executor, so a stream over a
// scheduled model must emit exactly the direct stream's output.
func TestExecSchedulerStreamParity(t *testing.T) {
	d := testDataset(t, 10)
	m := streamModel(t, d)
	tr := d.TestTrips()[0]

	run := func(m *Model) ([]hmm.Candidate, []int) {
		sm := m.NewStream(2)
		var out []hmm.Candidate
		for _, p := range tr.Cell {
			cs, err := sm.Push(p)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, cs...)
		}
		out = append(out, sm.Flush()...)
		var path []int
		for _, s := range sm.Path() {
			path = append(path, int(s))
		}
		return out, path
	}

	wantOut, wantPath := run(m)

	s := sched.New(sched.Config{Window: 300 * time.Microsecond, MaxRows: 128, Workers: 2})
	defer s.Close()
	ms := *m
	ms.Exec = s
	gotOut, gotPath := run(&ms)

	if !reflect.DeepEqual(gotOut, wantOut) {
		t.Fatal("scheduled stream emissions differ from direct")
	}
	if !reflect.DeepEqual(gotPath, wantPath) {
		t.Fatal("scheduled stream path differs from direct")
	}
}
