package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/hmm"
	"repro/internal/traj"
)

// TestMatchContextPanicRecovered corrupts the model/config agreement
// (the classic way a mismatched weights file crashes inference: nn
// panics on matrix shape mismatches) and checks the public boundary
// turns the panic into an error instead of unwinding.
func TestMatchContextPanicRecovered(t *testing.T) {
	d := testDataset(t, 10)
	cfg := fastConfig()
	cfg.Epochs = 1
	m, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ct := d.TestTrips()[0].Cell
	m.Cfg.Dim *= 2 // config now disagrees with every weight matrix
	_, err = m.Match(ct)
	if err == nil {
		t.Fatal("shape-mismatched model did not error")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Errorf("error does not identify the recovered panic: %v", err)
	}
}

// TestMatchContextCancellation checks a canceled context stops the
// learned matcher with the context error wrapped.
func TestMatchContextCancellation(t *testing.T) {
	d := testDataset(t, 10)
	cfg := fastConfig()
	cfg.Epochs = 1
	m, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.MatchContext(ctx, d.TestTrips()[0].Cell); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestChaosLearnedPipeline arms every inference failpoint at once and
// hammers the learned matcher: with Skip/Split policies armed faults
// must never error or panic, and disarming must restore clean runs.
func TestChaosLearnedPipeline(t *testing.T) {
	t.Cleanup(faultinject.DisarmAll)
	d := testDataset(t, 12)
	cfg := fastConfig()
	cfg.Epochs = 1
	m, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	trips := d.TestTrips()
	if len(trips) > 3 {
		trips = trips[:3]
	}
	for _, parallel := range []int{0, 4} {
		for _, policy := range []hmm.BreakPolicy{hmm.BreakSkip, hmm.BreakSplit} {
			faultinject.DisarmAll()
			if err := faultinject.Arm("hmm.candidates.empty:5,core.trans.nan:3,hmm.trans.nan:2"); err != nil {
				t.Fatal(err)
			}
			m.Cfg.Parallel = parallel
			m.Cfg.OnBreak = policy
			m.Cfg.Sanitize = traj.SanitizeDrop
			for _, tr := range trips {
				res, err := m.Match(tr.Cell)
				if err != nil {
					t.Fatalf("parallel=%d policy=%v trip %d: %v", parallel, policy, tr.ID, err)
				}
				if len(res.Matched) == 0 {
					t.Fatalf("parallel=%d policy=%v trip %d: empty result", parallel, policy, tr.ID)
				}
			}
		}
	}
	faultinject.DisarmAll()
	m.Cfg.Parallel = 0
	m.Cfg.OnBreak = hmm.BreakError
	m.Cfg.Sanitize = traj.SanitizeStrict
	res, err := m.Match(trips[0].Cell)
	if err != nil {
		t.Fatalf("disarmed match failed: %v", err)
	}
	if res.Degraded != 0 {
		t.Errorf("disarmed run counted %d degraded events", res.Degraded)
	}
	dead := 0
	for _, dd := range res.Dead {
		if dd {
			dead++
		}
	}
	if dead != 0 {
		t.Errorf("disarmed run marked %d dead points", dead)
	}
}
