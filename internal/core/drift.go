package core

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/traj"
)

// CollectDriftBaseline replays a sample of dataset trips through the
// trained model with the drift monitor collecting, and returns the
// resulting score-distribution baseline (emission scores, chosen-path
// transition weights, candidate-set sizes, degraded rates). The
// serving layer later compares live traffic against it with PSI.
//
// Prefers the validation split (matching calibrateGamma: baseline
// distributions should reflect held-out traffic, not the trips the
// model memorized), falls back to training trips, and caps the sample
// at maxTrips (default 16). The monitor's prior enabled state and
// accumulated sketches are consumed: the monitor is reset before
// collection and left disabled with the baseline's observations
// recorded, matching the train-time call site where collection is the
// monitor's only consumer.
func (m *Model) CollectDriftBaseline(ds *traj.Dataset, maxTrips int, modelName string) (*obs.DriftBaseline, error) {
	trips := ds.ValidTrips()
	if len(trips) == 0 {
		trips = ds.TrainTrips()
	}
	if maxTrips <= 0 {
		maxTrips = 16
	}
	if len(trips) > maxTrips {
		trips = trips[:maxTrips]
	}
	if len(trips) == 0 {
		return nil, fmt.Errorf("core: no trips available for a drift baseline")
	}
	obs.DefaultDrift.Reset()
	obs.DefaultDrift.Enable()
	defer obs.DefaultDrift.Disable()
	matched := 0
	for _, tr := range trips {
		if _, err := m.Match(tr.Cell); err == nil {
			matched++
		}
	}
	if matched == 0 {
		return nil, fmt.Errorf("core: drift baseline: none of the %d sampled trips matched", len(trips))
	}
	base := obs.DefaultDrift.Baseline(modelName)
	if len(base.Signals) == 0 {
		return nil, fmt.Errorf("core: drift baseline: no signals recorded (matcher sketches not registered?)")
	}
	obs.Logger().Info("core: drift baseline collected",
		"trips", len(trips), "matched", matched, "signals", len(base.Signals))
	return &base, nil
}
