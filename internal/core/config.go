// Package core implements LHMM itself (§IV): the learned observation
// probability (attentive context-aware point–road correlation fused
// with explicit features, Eqs. 6–8), the learned transition probability
// (attentive trajectory–path relevance fused with explicit features,
// Eqs. 9–12), the two-phase training pipeline, and inference that
// plugs both learners into the HMM path-finding backbone with the
// shortcut-augmented candidate graph (§IV-E).
package core

import (
	"repro/internal/hmm"
	"repro/internal/mrg"
	"repro/internal/traj"
)

// Config parameterizes LHMM training and inference. Zero values select
// the defaults noted on each field (applied by withDefaults).
type Config struct {
	// Dim is the embedding dimension (the paper uses 128; experiments
	// at repo scale default to 32, which preserves the result shape at
	// a fraction of the cost).
	Dim int
	// AttDim is the attention hidden size. Default Dim/2.
	AttDim int
	// Rounds is the number of Het-Graph Encoder message-passing
	// iterations q (paper: 2).
	Rounds int
	// EncoderMode selects the representation learner; HetGNN is the
	// paper's model, the others are the -H and -E ablations.
	EncoderMode mrg.EncoderMode

	// K is the number of candidate roads per point (paper: 30).
	K int
	// Shortcuts is the number of shortcut predecessors per candidate
	// (paper: 1; 0 disables — the -S ablation).
	Shortcuts int
	// PoolRadius is the radius in meters within which segments join
	// the candidate pool scored by learned P_O; it must cover the
	// positioning-error distribution. Default 1500.
	PoolRadius float64
	// PoolSize is the minimum pool size (nearest segments top up the
	// pool when the radius captures fewer). Default 3×K.
	PoolSize int
	// PoolMax caps the pool (nearest-first) so dense urban cores stay
	// cheap to score. Default max(PoolSize, 400).
	PoolMax int
	// CoPool is how many top co-occurring roads of the point's tower
	// join the pool. Default K.
	CoPool int

	// DisableImplicitObs removes the implicit point-road correlation
	// from P_O (ablation LHMM-O).
	DisableImplicitObs bool
	// DisableImplicitTrans removes the implicit trajectory-path
	// correlation from P_T (ablation LHMM-T).
	DisableImplicitTrans bool

	// Epochs is the number of phase-1 passes over the training trips.
	// Default 4.
	Epochs int
	// FuseEpochs is the number of phase-2 (fine-tune) passes. Default 2.
	FuseEpochs int
	// BatchTrips is how many trips share one encoder forward pass per
	// optimization step. Default 4.
	BatchTrips int
	// PairsPerTrip bounds the number of classification pairs sampled
	// from one trip per pass. Default 48.
	PairsPerTrip int
	// NegPerPos is the undersampling ratio of negative to positive
	// road samples. Default 3.
	NegPerPos int
	// LR is the Adam learning rate (paper: 1e-3).
	LR float64
	// WeightDecay is the Adam weight decay (paper: 1e-4).
	WeightDecay float64
	// LabelSmooth is the cross-entropy label smoothing (paper: 0.1).
	LabelSmooth float64
	// Seed drives all sampling and initialization.
	Seed int64

	// OnBreak selects how matching treats a point with no candidate
	// roads: error out (the default, the paper's assumption), skip the
	// point, or split the trajectory into independently matched
	// segments stitched with explicit Gap markers. See hmm.BreakPolicy.
	OnBreak hmm.BreakPolicy
	// Sanitize selects input validation before matching: strict (the
	// default; malformed points error), drop (malformed points are
	// removed and reported), or off. See traj.SanitizeMode.
	Sanitize traj.SanitizeMode

	// Trace attaches a per-trajectory obs.MatchTrace to every Match
	// result (candidate stats, Viterbi breaks, stage wall-clock).
	// Off by default; costs a few clock reads per match when on.
	Trace bool

	// Explain attaches a per-decision hmm.Explain artifact to every
	// Match result: top-k candidate emission breakdowns (learned score
	// vs. classical fallback), the chosen backpointer with step score
	// and route, and winner/runner-up margins. Off by default; costs
	// per-point allocations and one route query per chosen transition.
	Explain bool
	// ExplainTopK bounds the per-point candidate breakdown (default 5).
	ExplainTopK int
	// ExplainLowMargin is the margin (nats) below which a decision is
	// flagged low-confidence (default 0.05).
	ExplainLowMargin float64

	// Parallel bounds the worker pool the per-step transition fan-out
	// (route construction + explicit features) runs on during
	// inference. <=1 (the default) keeps matching single-threaded.
	// Matched output is identical for any value: parallel workers only
	// fill a pair-indexed feature table, and the Viterbi recurrence
	// stays sequential.
	Parallel int
}

// DefaultConfig returns the configuration used by the experiment
// harness.
func DefaultConfig() Config {
	return Config{
		Dim:          32,
		Rounds:       2,
		EncoderMode:  mrg.HetGNN,
		K:            30,
		Shortcuts:    1,
		Epochs:       4,
		FuseEpochs:   2,
		BatchTrips:   4,
		PairsPerTrip: 48,
		NegPerPos:    3,
		LR:           1e-3,
		WeightDecay:  1e-4,
		LabelSmooth:  0.1,
		Seed:         1,
	}
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Dim <= 0 {
		c.Dim = 32
	}
	if c.AttDim <= 0 {
		c.AttDim = c.Dim / 2
		if c.AttDim == 0 {
			c.AttDim = 1
		}
	}
	if c.Rounds <= 0 {
		c.Rounds = 2
	}
	if c.K <= 0 {
		c.K = 30
	}
	if c.PoolRadius <= 0 {
		c.PoolRadius = 1500
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 3 * c.K
	}
	if c.PoolMax <= 0 {
		c.PoolMax = c.PoolSize
		if c.PoolMax < 400 {
			c.PoolMax = 400
		}
	}
	if c.CoPool <= 0 {
		c.CoPool = c.K
	}
	if c.Epochs <= 0 {
		c.Epochs = 4
	}
	if c.FuseEpochs <= 0 {
		c.FuseEpochs = 2
	}
	if c.BatchTrips <= 0 {
		c.BatchTrips = 4
	}
	if c.PairsPerTrip <= 0 {
		c.PairsPerTrip = 48
	}
	if c.NegPerPos <= 0 {
		c.NegPerPos = 3
	}
	if c.LR <= 0 {
		c.LR = 1e-3
	}
	if c.WeightDecay < 0 {
		c.WeightDecay = 1e-4
	}
	if c.LabelSmooth <= 0 {
		c.LabelSmooth = 0.1
	}
	return c
}
