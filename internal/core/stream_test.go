package core

import (
	"math"
	"testing"

	"repro/internal/traj"
)

// streamModel builds an untrained model with frozen embeddings — the
// learned scoring machinery is exercised end to end without paying for
// training (weights are deterministic for the seed).
func streamModel(t testing.TB, d *traj.Dataset) *Model {
	t.Helper()
	m, err := New(d, d.TrainTrips(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.RefreshEmbeddings()
	return m
}

func TestNewStreamDeterministic(t *testing.T) {
	d := testDataset(t, 10)
	m := streamModel(t, d)
	tr := d.TestTrips()[0]

	run := func() ([]int, []int) {
		sm := m.NewStream(2)
		var segs []int
		for _, p := range tr.Cell {
			out, err := sm.Push(p)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range out {
				segs = append(segs, int(c.Seg))
			}
		}
		for _, c := range sm.Flush() {
			segs = append(segs, int(c.Seg))
		}
		path := make([]int, 0, 8)
		for _, s := range sm.Path() {
			path = append(path, int(s))
		}
		return segs, path
	}

	s1, p1 := run()
	s2, p2 := run()
	if len(s1) != len(tr.Cell) {
		t.Fatalf("emitted %d matches for %d points", len(s1), len(tr.Cell))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("two streams diverge at point %d: %d vs %d", i, s1[i], s2[i])
		}
	}
	if len(p1) == 0 {
		t.Fatal("empty expanded path")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("paths diverge at %d", i)
		}
	}
}

// The streamed observation scores must be finite and normalized like
// the batch session's (a pool softmax), and lag semantics must hold:
// nothing is finalized until Lag points of look-ahead exist.
func TestNewStreamLagAndScores(t *testing.T) {
	d := testDataset(t, 10)
	m := streamModel(t, d)
	tr := d.TestTrips()[0]
	if len(tr.Cell) < 4 {
		t.Skip("trip too short")
	}
	lag := 2
	sm := m.NewStream(lag)
	for i, p := range tr.Cell {
		out, err := sm.Push(p)
		if err != nil {
			t.Fatal(err)
		}
		if i < lag && len(out) > 0 {
			t.Fatalf("point %d finalized before %d points of look-ahead", i, lag)
		}
		for _, c := range out {
			if math.IsNaN(c.Obs) || c.Obs < 0 || c.Obs > 1 {
				t.Fatalf("observation probability %v out of range", c.Obs)
			}
		}
	}
	if got := sm.Pending(); got != lag {
		t.Fatalf("pending %d points in steady state, want %d", got, lag)
	}
	sm.Flush()
	if got := sm.Pending(); got != 0 {
		t.Fatalf("pending %d after Flush", got)
	}
}

func TestNewStreamWithoutEmbeddingsPanics(t *testing.T) {
	d := testDataset(t, 6)
	m, err := New(d, d.TrainTrips(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("NewStream without embeddings did not panic")
		}
	}()
	m.NewStream(1)
}

// The model's sanitize and break policies carry into the stream.
func TestNewStreamPolicyCarryover(t *testing.T) {
	d := testDataset(t, 10)
	m := streamModel(t, d)
	m.Cfg.Sanitize = traj.SanitizeDrop
	sm := m.NewStream(1)
	tr := d.TestTrips()[0]
	if _, err := sm.Push(tr.Cell[0]); err != nil {
		t.Fatal(err)
	}
	// A non-increasing timestamp is dropped, not an error, under drop.
	bad := tr.Cell[1]
	bad.T = tr.Cell[0].T
	if _, err := sm.Push(bad); err != nil {
		t.Fatalf("drop-mode push errored: %v", err)
	}
	if got := sm.Sanitize().BadTimes; got != 1 {
		t.Fatalf("BadTimes = %d, want 1", got)
	}

	m.Cfg.Sanitize = traj.SanitizeStrict
	sm2 := m.NewStream(1)
	if _, err := sm2.Push(tr.Cell[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := sm2.Push(bad); err == nil {
		t.Fatal("strict-mode push accepted a non-increasing timestamp")
	}
}

// Streaming and batch sessions share the scoring helpers; pin that a
// candidate layer produced by each for the same first point agrees
// (with a single point there is no look-ahead, so the causal context
// equals the batch context and scores must match exactly).
func TestNewStreamFirstPointAgreesWithBatch(t *testing.T) {
	d := testDataset(t, 10)
	m := streamModel(t, d)
	tr := d.TestTrips()[0]
	one := tr.Cell[:1]

	sess := m.newSession(one)
	defer sess.release()
	batch := sess.Candidates(one, 0, m.Cfg.K)

	ss := &streamSession{m: m, roadP: nil}
	stream := ss.Candidates(one, 0, m.Cfg.K)

	if len(batch) != len(stream) {
		t.Fatalf("layer sizes differ: %d vs %d", len(batch), len(stream))
	}
	for i := range batch {
		if batch[i].Seg != stream[i].Seg || batch[i].Obs != stream[i].Obs {
			t.Fatalf("candidate %d differs: batch (%d, %v) vs stream (%d, %v)",
				i, batch[i].Seg, batch[i].Obs, stream[i].Seg, stream[i].Obs)
		}
	}
}
