package core

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/hmm"
)

// streamRun is everything observable about a finished streaming match,
// collected push by push so restore fidelity can be pinned at emission
// granularity, not just on the final state.
type streamRun struct {
	emitted []hmm.Candidate
	state   *hmm.StreamState
	path    []int
}

func finishRun(sm *hmm.StreamMatcher, emitted []hmm.Candidate) streamRun {
	emitted = append(emitted, sm.Flush()...)
	var path []int
	for _, s := range sm.Path() {
		path = append(path, int(s))
	}
	return streamRun{emitted: emitted, state: sm.ExportState(), path: path}
}

// sameCandidates compares candidate slices with float bit equality —
// "close enough" is not the contract, bit-identical is.
func sameCandidates(t *testing.T, what string, a, b []hmm.Candidate) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d entries", what, len(a), len(b))
	}
	for i := range a {
		if a[i].Seg != b[i].Seg || a[i].Frac != b[i].Frac || a[i].Proj != b[i].Proj ||
			a[i].Dist != b[i].Dist ||
			math.Float64bits(a[i].Obs) != math.Float64bits(b[i].Obs) {
			t.Fatalf("%s: entry %d differs: %+v vs %+v", what, i, a[i], b[i])
		}
	}
}

func sameRun(t *testing.T, base, got streamRun) {
	t.Helper()
	sameCandidates(t, "emitted", base.emitted, got.emitted)
	sameCandidates(t, "matched", base.state.Matched, got.state.Matched)
	if len(base.path) != len(got.path) {
		t.Fatalf("path length %d vs %d", len(got.path), len(base.path))
	}
	for i := range base.path {
		if base.path[i] != got.path[i] {
			t.Fatalf("paths diverge at %d: %d vs %d", i, got.path[i], base.path[i])
		}
	}
	if len(base.state.Gaps) != len(got.state.Gaps) {
		t.Fatalf("gaps %d vs %d", len(got.state.Gaps), len(base.state.Gaps))
	}
	for i := range base.state.Gaps {
		if base.state.Gaps[i] != got.state.Gaps[i] {
			t.Fatalf("gap %d differs: %+v vs %+v", i, got.state.Gaps[i], base.state.Gaps[i])
		}
	}
	for i := range base.state.Dead {
		if base.state.Dead[i] != got.state.Dead[i] {
			t.Fatalf("dead flag %d differs", i)
		}
	}
	if base.state.Degraded != got.state.Degraded {
		t.Fatalf("degraded %d vs %d", got.state.Degraded, base.state.Degraded)
	}
	// The full Viterbi tables, bit for bit: the first half restored
	// from the snapshot, the second half recomputed on top of it.
	for i := range base.state.F {
		if len(base.state.F[i]) != len(got.state.F[i]) {
			t.Fatalf("point %d: %d vs %d forward scores", i, len(got.state.F[i]), len(base.state.F[i]))
		}
		for j := range base.state.F[i] {
			if math.Float64bits(base.state.F[i][j]) != math.Float64bits(got.state.F[i][j]) {
				t.Fatalf("forward score (%d,%d) differs: %v vs %v", i, j, got.state.F[i][j], base.state.F[i][j])
			}
		}
	}
}

// The tentpole property: checkpoint mid-stream, restore, push the
// rest — every emission, the full Viterbi table, gaps, dead points,
// degraded counters, and the expanded path are bit-identical to an
// uninterrupted run. Run twice: a clean trip, and a trip with fault-
// injected dead points under the split policy so the gap/stitch state
// round-trips too.
func TestSnapshotRestoreFidelity(t *testing.T) {
	d := testDataset(t, 10)
	m := streamModel(t, d)
	wh := m.WeightsHash()
	tr := d.TestTrips()[0]
	if len(tr.Cell) < 6 {
		t.Skip("trip too short")
	}
	lag := 2
	half := len(tr.Cell) / 2

	for _, tc := range []struct {
		name  string
		fault string
	}{
		{"clean", ""},
		{"deadpoints", "hmm.candidates.empty:4"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if tc.fault != "" {
				m.Cfg.OnBreak = hmm.BreakSplit
				defer func() { m.Cfg.OnBreak = hmm.BreakError }()
			}
			// arm resets all failpoint hit counters so the Nth-hit
			// positions align between the baseline and interrupted runs.
			arm := func() {
				faultinject.DisarmAll()
				if tc.fault != "" {
					if err := faultinject.Arm(tc.fault); err != nil {
						t.Fatal(err)
					}
				}
			}
			defer faultinject.DisarmAll()

			arm()
			sm := m.NewStream(lag)
			var baseEmitted []hmm.Candidate
			for _, p := range tr.Cell {
				out, err := sm.Push(p)
				if err != nil {
					t.Fatal(err)
				}
				baseEmitted = append(baseEmitted, out...)
			}
			baseline := finishRun(sm, baseEmitted)
			if tc.fault != "" {
				dead := 0
				for _, d := range baseline.state.Dead {
					if d {
						dead++
					}
				}
				if dead == 0 {
					t.Fatal("fault injection produced no dead points; the subtest pins nothing")
				}
			}

			arm()
			sm = m.NewStream(lag)
			var emitted []hmm.Candidate
			for _, p := range tr.Cell[:half] {
				out, err := sm.Push(p)
				if err != nil {
					t.Fatal(err)
				}
				emitted = append(emitted, out...)
			}
			data, err := EncodeStreamSnapshot(sm, "fidelity-1", wh)
			if err != nil {
				t.Fatal(err)
			}
			snap, err := DecodeStreamSnapshot(m, wh, data)
			if err != nil {
				t.Fatal(err)
			}
			if snap.ID != "fidelity-1" || snap.Lag != lag {
				t.Fatalf("restored (id=%q, lag=%d), want (fidelity-1, %d)", snap.ID, snap.Lag, lag)
			}
			for _, p := range tr.Cell[half:] {
				out, err := snap.SM.Push(p)
				if err != nil {
					t.Fatal(err)
				}
				emitted = append(emitted, out...)
			}
			sameRun(t, baseline, finishRun(snap.SM, emitted))
		})
	}
}

// A snapshot can be taken and restored at any point, including before
// anything was pushed and after the last point.
func TestSnapshotAtBoundaries(t *testing.T) {
	d := testDataset(t, 10)
	m := streamModel(t, d)
	wh := m.WeightsHash()
	tr := d.TestTrips()[0]

	// Empty session round-trip.
	sm := m.NewStream(1)
	data, err := EncodeStreamSnapshot(sm, "empty", wh)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := DecodeStreamSnapshot(m, wh, data)
	if err != nil {
		t.Fatal(err)
	}
	var emitted []hmm.Candidate
	for _, p := range tr.Cell {
		out, err := snap.SM.Push(p)
		if err != nil {
			t.Fatal(err)
		}
		emitted = append(emitted, out...)
	}
	emitted = append(emitted, snap.SM.Flush()...)
	if len(emitted) != len(tr.Cell) {
		t.Fatalf("restored-empty stream emitted %d of %d points", len(emitted), len(tr.Cell))
	}

	// All-points-pushed round-trip: restore then flush only.
	sm = m.NewStream(2)
	want := 0
	for _, p := range tr.Cell {
		out, err := sm.Push(p)
		if err != nil {
			t.Fatal(err)
		}
		want += len(out)
	}
	data, err = EncodeStreamSnapshot(sm, "full", wh)
	if err != nil {
		t.Fatal(err)
	}
	snap, err = DecodeStreamSnapshot(m, wh, data)
	if err != nil {
		t.Fatal(err)
	}
	rest := snap.SM.Flush()
	if want+len(rest) != len(tr.Cell) {
		t.Fatalf("restored-full stream finalized %d of %d points", want+len(rest), len(tr.Cell))
	}
}

func snapshotFixture(t testing.TB) (*Model, [32]byte, []byte) {
	t.Helper()
	d := testDataset(t, 10)
	m := streamModel(t, d)
	wh := m.WeightsHash()
	tr := d.TestTrips()[0]
	sm := m.NewStream(2)
	for _, p := range tr.Cell {
		if _, err := sm.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	data, err := EncodeStreamSnapshot(sm, "fixture", wh)
	if err != nil {
		t.Fatal(err)
	}
	return m, wh, data
}

// refit recomputes the CRC footer after a deliberate body mutation, so
// the test reaches the check behind the CRC gate.
func refit(data []byte) []byte {
	out := append([]byte(nil), data...)
	crc := crc32.Checksum(out[:len(out)-4], crc32.MakeTable(crc32.Castagnoli))
	binary.LittleEndian.PutUint32(out[len(out)-4:], crc)
	return out
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	m, wh, data := snapshotFixture(t)

	if _, err := DecodeStreamSnapshot(m, wh, data[:len(data)/2]); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("truncated snapshot: %v, want ErrSnapshotCorrupt", err)
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0xFF
	if _, err := DecodeStreamSnapshot(m, wh, flipped); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("bit-flipped snapshot: %v, want ErrSnapshotCorrupt", err)
	}
	if _, err := DecodeStreamSnapshot(m, wh, []byte("LHMMSESS")); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("header-only snapshot: %v, want ErrSnapshotCorrupt", err)
	}
	if _, err := DecodeStreamSnapshot(m, wh, nil); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("nil snapshot: %v, want ErrSnapshotCorrupt", err)
	}
}

func TestSnapshotRejectsVersionSkew(t *testing.T) {
	m, wh, data := snapshotFixture(t)
	skewed := append([]byte(nil), data...)
	binary.LittleEndian.PutUint16(skewed[8:], SnapshotVersion+1)
	skewed = refit(skewed)
	if _, err := DecodeStreamSnapshot(m, wh, skewed); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("version-skewed snapshot: %v, want ErrSnapshotVersion", err)
	}
	if _, err := InspectStreamSnapshot(skewed); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("inspect version-skewed: %v, want ErrSnapshotVersion", err)
	}
}

func TestSnapshotRejectsModelMismatch(t *testing.T) {
	m, wh, data := snapshotFixture(t)

	// Wrong weights: same config, different hash.
	var otherWH [32]byte
	otherWH[0] = 1
	if _, err := DecodeStreamSnapshot(m, otherWH, data); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("weights mismatch: %v, want ErrSnapshotMismatch", err)
	}

	// Wrong config: the fingerprint covers K.
	origK := m.Cfg.K
	m.Cfg.K = origK + 3
	_, err := DecodeStreamSnapshot(m, wh, data)
	m.Cfg.K = origK
	if !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("config mismatch: %v, want ErrSnapshotMismatch", err)
	}
}

func TestSnapshotEncodeValidatesID(t *testing.T) {
	d := testDataset(t, 6)
	m := streamModel(t, d)
	sm := m.NewStream(1)
	if _, err := EncodeStreamSnapshot(sm, "", [32]byte{}); err == nil {
		t.Fatal("empty session id accepted")
	}
	long := make([]byte, snapMaxID+1)
	for i := range long {
		long[i] = 'x'
	}
	if _, err := EncodeStreamSnapshot(sm, string(long), [32]byte{}); err == nil {
		t.Fatal("oversized session id accepted")
	}
}

func TestInspectStreamSnapshot(t *testing.T) {
	m, _, data := snapshotFixture(t)
	info, err := InspectStreamSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "fixture" || info.Version != SnapshotVersion {
		t.Fatalf("inspect: id=%q version=%d", info.ID, info.Version)
	}
	if info.Points == 0 || info.Points != info.Emitted+info.Pending {
		t.Fatalf("inspect: points=%d emitted=%d pending=%d", info.Points, info.Emitted, info.Pending)
	}
	if info.Dim != m.Cfg.Dim || info.Lag != 2 || info.Bytes != len(data) {
		t.Fatalf("inspect: dim=%d lag=%d bytes=%d", info.Dim, info.Lag, info.Bytes)
	}
	if len(info.WeightsHash) != 64 || len(info.Fingerprint) != 16 {
		t.Fatalf("inspect: weights_hash=%q fingerprint=%q", info.WeightsHash, info.Fingerprint)
	}
	if _, err := InspectStreamSnapshot(data[:snapMinLen-1]); err == nil {
		t.Fatal("inspect accepted a truncated snapshot")
	}
}

// Arbitrary bytes must decode to an error or a snapshot — never a
// panic and never a giant allocation. The CRC footer rejects almost
// all mutations outright, so each input is also re-tried with a fixed
// CRC to exercise the structural validation behind the gate.
func FuzzSnapshotDecode(f *testing.F) {
	m, wh, data := snapshotFixture(f)
	f.Add(data)
	f.Add(data[:len(data)/2])
	f.Add([]byte(snapMagic))
	skewed := append([]byte(nil), data...)
	binary.LittleEndian.PutUint16(skewed[8:], SnapshotVersion+9)
	f.Add(refit(skewed))
	truncated := refit(data[: len(data)/3 : len(data)/3])
	f.Add(truncated)

	f.Fuzz(func(t *testing.T, b []byte) {
		for _, in := range [][]byte{b, fixCRC(b)} {
			if snap, err := DecodeStreamSnapshot(m, wh, in); err == nil && snap == nil {
				t.Fatal("nil snapshot without error")
			}
			if info, err := InspectStreamSnapshot(in); err == nil && info == nil {
				t.Fatal("nil info without error")
			}
		}
	})
}

// fixCRC makes arbitrary fuzz bytes pass the CRC gate by rewriting the
// footer (no-op on inputs too short to carry one).
func fixCRC(b []byte) []byte {
	if len(b) < snapMinLen {
		return b
	}
	return refit(b)
}

func BenchmarkSnapshotEncode(b *testing.B) {
	d := testDataset(b, 10)
	m := streamModel(b, d)
	wh := m.WeightsHash()
	tr := d.TestTrips()[0]
	sm := m.NewStream(2)
	for _, p := range tr.Cell {
		if _, err := sm.Push(p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		data, err := EncodeStreamSnapshot(sm, "bench", wh)
		if err != nil {
			b.Fatal(err)
		}
		n = len(data)
	}
	b.SetBytes(int64(n))
}

func BenchmarkSnapshotDecode(b *testing.B) {
	m, wh, data := snapshotFixture(b)
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeStreamSnapshot(m, wh, data); err != nil {
			b.Fatal(err)
		}
	}
}
