package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cellular"
	"repro/internal/geo"
	"repro/internal/hmm"
	"repro/internal/nn"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// This file holds the learned streaming matcher: a per-trajectory
// session that grows incrementally as points arrive, so a trained
// Model can drive hmm.StreamMatcher without knowing the trajectory up
// front. The batch session (session.go) precomputes Eq. 6/9 over the
// whole trajectory; the streaming session computes them causally —
// point i attends over points 0..i only, because the future has not
// been observed yet. Scoring is otherwise the same arithmetic: the
// shared helpers below are used verbatim by both paths.

// poolCandidates materializes a candidate pool as hmm.Candidates with
// their projections and point-to-road distances filled in.
func poolCandidates(net *roadnet.Network, p geo.Point, pool []roadnet.SegmentID) []hmm.Candidate {
	cands := make([]hmm.Candidate, 0, len(pool))
	for _, sid := range pool {
		c := hmm.Candidate{Seg: sid}
		c.Proj, c.Frac = net.Project(sid, p)
		c.Dist = c.Proj.Dist(p)
		cands = append(cands, c)
	}
	return cands
}

// selectTopK softmax-normalizes the fused log-odds over the pool
// (Eq. 7's softmax runs across the candidate roads of the point),
// fills each candidate's Obs, and picks the top-k by learned
// probability with the nearest third by geometric distance always
// retained. It returns the chosen candidates in descending probability
// order plus the pool's (max, normalizer) pair so later pseudo-
// candidate scores stay on the same scale.
func selectTopK(cands []hmm.Candidate, scores []float64, k int) ([]hmm.Candidate, float64, float64) {
	mx := scores[0]
	for _, v := range scores[1:] {
		if v > mx {
			mx = v
		}
	}
	var z float64
	for _, v := range scores {
		z += math.Exp(v - mx)
	}
	for j := range cands {
		cands[j].Obs = math.Exp(scores[j]-mx) / z
	}
	if k >= len(cands) {
		sort.Slice(cands, func(a, b int) bool { return cands[a].Obs > cands[b].Obs })
		return cands, mx, z
	}
	// Mark the nearest k/3 by distance as guaranteed.
	byDist := make([]int, len(cands))
	for i := range byDist {
		byDist[i] = i
	}
	sort.Slice(byDist, func(a, b int) bool { return cands[byDist[a]].Dist < cands[byDist[b]].Dist })
	guaranteed := make(map[int]bool, k/3+1)
	for _, idx := range byDist[:k/3+1] {
		guaranteed[idx] = true
	}
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ga, gb := guaranteed[order[a]], guaranteed[order[b]]
		if ga != gb {
			return ga
		}
		if cands[order[a]].Obs != cands[order[b]].Obs {
			return cands[order[a]].Obs > cands[order[b]].Obs
		}
		return cands[order[a]].Seg < cands[order[b]].Seg
	})
	out := make([]hmm.Candidate, k)
	for i := 0; i < k; i++ {
		out[i] = cands[order[i]]
	}
	// Present in descending learned-probability order.
	sort.Slice(out, func(a, b int) bool { return out[a].Obs > out[b].Obs })
	return out, mx, z
}

// obsScoreBatchCtx fills scores with the fused Eq. 8 log-odds of every
// candidate of one point in two batched MLP applications, given the
// point's tower and its context-aware representation row (Eq. 6). This
// is the shared core of the batch session's obsScoreBatch and the
// streaming session's per-push scoring; both are bit-identical to the
// scalar path because row-at-a-time and batched matrix products
// accumulate each output row in the same order.
func (m *Model) obsScoreBatchCtx(ws *nn.Workspace, tower cellular.TowerID, ctxRow []float64, cands []hmm.Candidate, scores []float64) {
	p := len(cands)
	d := m.Cfg.Dim
	imp := ws.TakeVec(p)
	if m.Cfg.DisableImplicitObs {
		for j := range imp {
			imp[j] = 0.5
		}
	} else {
		feat := ws.Take(p, 2*d)
		for j := range cands {
			row := feat.Row(j)
			copy(row[:d], m.segEmb(cands[j].Seg))
			copy(row[d:], ctxRow)
		}
		logits := m.applyMLP(ws, m.ObsMLP, feat) // p×2
		for j := 0; j < p; j++ {
			lr := logits.Row(j)
			imp[j] = softmaxP1(lr[0], lr[1])
		}
	}
	fuse := ws.Take(p, 3)
	for j := range cands {
		row := fuse.Row(j)
		row[0] = imp[j]
		row[1] = m.gaussDist(cands[j].Dist)
		row[2] = m.Graph.CoOccurrenceNorm(tower, cands[j].Seg)
	}
	logits := m.applyMLP(ws, m.ObsFuse, fuse) // p×2
	for j := 0; j < p; j++ {
		lr := logits.Row(j)
		scores[j] = lr[1] - lr[0]
	}
	obsObsBatched.Add(int64(p))
}

// routeSims computes the explicit Eq. 12 features of a route: length
// similarity against the straight-line distance and turn similarity
// over consecutive segment bearings.
func routeSims(net *roadnet.Network, route roadnet.Route, straight float64) (lenSim, turnSim float64) {
	lenSim = math.Exp(-math.Abs(straight-route.Dist) / 500)
	var turn float64
	for j := 1; j < len(route.Segs); j++ {
		a := net.Segment(route.Segs[j-1])
		b := net.Segment(route.Segs[j])
		turn += geoAngleDiff(a.Bearing(), b.Bearing())
	}
	turnSim = math.Exp(-turn / math.Pi)
	return lenSim, turnSim
}

// streamSession is the incremental analogue of session: per-point
// embeddings and context representations are appended as points
// arrive, the Eq. 9 key cache is rebuilt lazily whenever the
// trajectory has grown (attention context changes with every new
// point), and the Eq. 10 road-probability cache is invalidated with
// it. One streamSession serves exactly one hmm.StreamMatcher and, like
// the matcher itself, is not safe for concurrent use — the serving
// layer serializes pushes per session.
type streamSession struct {
	m *Model

	n    int       // points absorbed so far
	embW []float64 // n×d raw point embeddings, append-grown
	ctxW []float64 // n×d causal context rows (Eq. 6 over points 0..i)

	// keys caches the key-side attention state of Eq. 9 over the first
	// keysN point embeddings; rebuilt when the trajectory grows.
	keys  *nn.AttKeys
	keysN int

	// roadP caches Eq. 10 per segment for the current keys; cleared on
	// every keys rebuild because the trajectory context changed.
	roadP map[roadnet.SegmentID]float64

	// obsZ/obsMax cache, per point, the pool softmax normalizer and max
	// (same contract as session.obsZ/obsMax).
	obsZ   []float64
	obsMax []float64
}

// extend absorbs any trajectory points not yet seen: their raw
// embeddings and causal context-aware representations (attention of
// point i over points 0..i — the batch session attends over the whole
// trajectory, which a stream cannot).
func (s *streamSession) extend(ct traj.CellTrajectory) {
	d := s.m.Cfg.Dim
	for i := s.n; i < len(ct); i++ {
		s.embW = append(s.embW, s.m.towerEmb(ct[i].Tower)...)
		kv := &nn.Mat{R: i + 1, C: d, W: s.embW[: (i+1)*d : (i+1)*d]}
		q := &nn.Mat{R: 1, C: d, W: s.embW[i*d : (i+1)*d]}
		ws := nn.GetWorkspace()
		out, _ := s.m.ObsAtt.ApplyWS(ws, q, kv, kv)
		s.ctxW = append(s.ctxW, out.W...)
		nn.PutWorkspace(ws)
		s.obsZ = append(s.obsZ, 0)
		s.obsMax = append(s.obsMax, 0)
		s.n = i + 1
	}
}

// ctxRow returns point i's causal context representation.
func (s *streamSession) ctxRow(i int) []float64 {
	d := s.m.Cfg.Dim
	return s.ctxW[i*d : (i+1)*d]
}

// ensureKeys (re)builds the Eq. 9 key cache over every point seen so
// far. Each rebuild invalidates the road-probability cache: Eq. 10
// conditions on the whole trajectory context, which just changed.
func (s *streamSession) ensureKeys() {
	if s.keys != nil && s.keysN == s.n {
		return
	}
	d := s.m.Cfg.Dim
	kv := &nn.Mat{R: s.n, C: d, W: s.embW[: s.n*d : s.n*d]}
	s.keys = s.m.TransAtt.PrecomputeKeys(kv)
	s.keysN = s.n
	s.roadP = make(map[roadnet.SegmentID]float64, len(s.roadP))
}

// roadProb evaluates Eq. 10 against the causal key cache, memoized per
// segment until the trajectory grows.
func (s *streamSession) roadProb(ws *nn.Workspace, sid roadnet.SegmentID) float64 {
	if p, ok := s.roadP[sid]; ok {
		obsRoadProbHits.Inc()
		return p
	}
	obsRoadProbMiss.Inc()
	d := s.m.Cfg.Dim
	ws.Reset()
	segRow := &nn.Mat{R: 1, C: d, W: s.m.segEmb(sid)}
	xl, _ := s.keys.QueryWS(ws, segRow)
	feat := ws.Take(1, 2*d)
	copy(feat.W[:d], segRow.W)
	copy(feat.W[d:], xl.W)
	logits := s.m.TransMLP.ApplyWS(ws, feat)
	p := softmaxP1(logits.W[0], logits.W[1])
	s.roadP[sid] = p
	return p
}

// Candidates implements hmm.ObservationModel: identical ranking to the
// batch session (pool scoring, pool softmax, nearest-third floor), but
// with the point's causal context representation.
func (s *streamSession) Candidates(ct traj.CellTrajectory, i, k int) []hmm.Candidate {
	s.extend(ct)
	pool := s.m.candidatePool(ct, i)
	cands := poolCandidates(s.m.Net, ct[i].P, pool)
	ws := nn.GetWorkspace()
	defer nn.PutWorkspace(ws)
	scores := ws.TakeVec(len(cands))
	s.m.obsScoreBatchCtx(ws, ct[i].Tower, s.ctxRow(i), cands, scores)
	out, mx, z := selectTopK(cands, scores, k)
	s.obsMax[i], s.obsZ[i] = mx, z
	return out
}

// Score implements hmm.ObservationModel for arbitrary candidates,
// normalized by the point's cached pool softmax (the streaming matcher
// never synthesizes shortcut pseudo-candidates, but the interface — and
// any future caller — gets the same contract as the batch session).
func (s *streamSession) Score(ct traj.CellTrajectory, i int, c *hmm.Candidate) float64 {
	s.extend(ct)
	ws := nn.GetWorkspace()
	defer nn.PutWorkspace(ws)
	one := []hmm.Candidate{*c}
	sc := ws.TakeVec(1)
	s.m.obsScoreBatchCtx(ws, ct[i].Tower, s.ctxRow(i), one, sc)
	if s.obsZ[i] == 0 {
		return 1 / (1 + math.Exp(-sc[0]))
	}
	return math.Exp(sc[0]-s.obsMax[i]) / s.obsZ[i]
}

// streamTrans adapts the streaming session to hmm.TransitionModel (the
// session's own Score method is taken by hmm.ObservationModel).
type streamTrans struct{ s *streamSession }

// Score is the learned transition probability of Eq. 12 with causal
// trajectory context. The streaming matcher scores each fan-out
// pairwise at push time, so no batched variant is needed.
func (t streamTrans) Score(ct traj.CellTrajectory, i int, from, to *hmm.Candidate) (float64, bool) {
	s := t.s
	s.extend(ct)
	route, ok := s.m.Router.RouteBetween(from.Pos(), to.Pos())
	if !ok || len(route.Segs) == 0 {
		return 0, false
	}
	var pRoute float64
	if s.m.Cfg.DisableImplicitTrans {
		pRoute = 0.5
	} else {
		s.ensureKeys()
		ws := nn.GetWorkspace()
		var sum float64
		for _, sid := range route.Segs {
			sum += s.roadProb(ws, sid)
		}
		nn.PutWorkspace(ws)
		pRoute = sum / float64(len(route.Segs))
	}
	straight := ct[i-1].P.Dist(ct[i].P)
	lenSim, turnSim := routeSims(s.m.Net, route, straight)
	logits := s.m.TransFuse.Apply(nn.RowVec(pRoute, lenSim, turnSim))
	p := softmaxP1(logits.W[0], logits.W[1])
	if g := s.m.transGamma.W.W[0]; g != 1 {
		p = math.Pow(p, g)
	}
	return p, true
}

// NewStream returns an online fixed-lag matcher driven by the trained
// learned models: push points as they arrive and receive finalized
// matches Lag points behind real time. Each call creates an
// independent per-trajectory session (streaming LHMM keeps
// per-trajectory context), so construct one StreamMatcher per device
// trajectory. The model's OnBreak and Sanitize policies carry over;
// shortcuts do not apply in streaming mode (they would revise
// already-emitted matches).
//
// The point representations are causal — point i attends over points
// 0..i — so streamed matches can differ from the offline Match result
// for the same trajectory; two streams over the same model and point
// sequence are deterministic and identical.
//
// NewStream panics if the model has no frozen embeddings; call
// RefreshEmbeddings (or Load) first.
func (m *Model) NewStream(lag int) *hmm.StreamMatcher {
	if m.emb == nil {
		panic(fmt.Sprintf("core: NewStream on model %p without embeddings; call RefreshEmbeddings after training or loading", m))
	}
	ss := &streamSession{m: m, roadP: make(map[roadnet.SegmentID]float64)}
	return hmm.NewStreamMatcher(&hmm.Matcher{
		Net:    m.Net,
		Router: m.Router,
		Obs:    ss,
		Trans:  streamTrans{ss},
		Cfg: hmm.Config{
			K:        m.Cfg.K,
			OnBreak:  m.Cfg.OnBreak,
			Sanitize: m.Cfg.Sanitize,
		},
	}, lag)
}
