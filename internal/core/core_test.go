package core

import (
	"bytes"
	"testing"

	"repro/internal/cellular"
	"repro/internal/hmm"
	"repro/internal/metrics"
	"repro/internal/roadnet"
	"repro/internal/synth"
	"repro/internal/traj"
)

// testDataset builds a small deterministic paired dataset.
func testDataset(t testing.TB, trips int) *traj.Dataset {
	t.Helper()
	cfg := synth.DatasetConfig{
		Seed: 7,
		City: synth.CityConfig{
			Name:          "core-test",
			HalfSize:      2200,
			BlockSize:     250,
			CoreRadius:    1100,
			NodeJitter:    15,
			EdgeDropCore:  0.05,
			EdgeDropRural: 0.35,
			ArterialEvery: 4,
			TowerCount:    45,
		},
		Trips: synth.TripConfig{
			Count:            trips,
			MinLen:           1200,
			MaxLen:           3500,
			GPSInterval:      20,
			GPSNoise:         8,
			CellMeanInterval: 40,
			Serving:          cellular.DefaultServingModel(),
		},
		Preprocess: true,
		Filter:     traj.DefaultFilterConfig(),
		TrainFrac:  0.7,
		ValidFrac:  0.1,
	}
	d, err := synth.GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// fastConfig keeps training cheap for unit tests.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Dim = 16
	cfg.Epochs = 2
	cfg.FuseEpochs = 1
	cfg.K = 10
	cfg.PoolSize = 20
	cfg.CoPool = 8
	cfg.PairsPerTrip = 24
	return cfg
}

func TestTrainValidation(t *testing.T) {
	d := testDataset(t, 6)
	d.Train = nil
	if _, err := Train(d, fastConfig()); err == nil {
		t.Error("Train with no training trips did not error")
	}
}

func TestTrainAndMatch(t *testing.T) {
	d := testDataset(t, 20)
	m, err := Train(d, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Embeddings() == nil {
		t.Fatal("no embeddings after training")
	}

	var acc metrics.Accum
	for _, tr := range d.TestTrips() {
		res, err := m.Match(tr.Cell)
		if err != nil {
			t.Fatalf("match trip %d: %v", tr.ID, err)
		}
		if len(res.Path) == 0 {
			t.Fatalf("trip %d: empty path", tr.ID)
		}
		pm := metrics.EvalPath(d.Net, res.Path, tr.Path, 50)
		acc.Add(pm)
		cands := make([][]roadnet.SegmentID, len(res.Candidates))
		for i, layer := range res.Candidates {
			for _, c := range layer {
				cands[i] = append(cands[i], c.Seg)
			}
		}
		acc.AddHR(metrics.HittingRatio(cands, tr.Path))
	}
	s := acc.Summary()
	t.Logf("LHMM on %d test trips: P=%.3f R=%.3f RMF=%.3f CMF50=%.3f HR=%.3f",
		s.Trips, s.Precision, s.Recall, s.RMF, s.CMF, s.HR)
	// Degeneracy floor only: this seed's test trips are brutally
	// sparse (5–11 points with long same-tower runs), so absolute
	// quality is asserted at bench scale by the experiment harness;
	// here we pin that the pipeline produces structured output at all.
	if s.Recall == 0 && s.Precision == 0 {
		t.Error("matcher produced zero overlap on every trip")
	}
	if s.CMF >= 0.99 {
		t.Errorf("CMF50 %.3f — matcher output is unrelated to the truth", s.CMF)
	}
	if s.HR < 0.05 {
		t.Errorf("hitting ratio %.3f implausibly low", s.HR)
	}
}

func TestMatchBeforeTraining(t *testing.T) {
	d := testDataset(t, 6)
	m, err := New(d, d.TrainTrips(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Match(d.Trips[0].Cell); err == nil {
		t.Error("Match without embeddings did not error")
	}
	m.RefreshEmbeddings()
	if _, err := m.Match(nil); err == nil {
		t.Error("Match with empty trajectory did not error")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := testDataset(t, 12)
	cfg := fastConfig()
	m, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// A freshly built model with the same dataset/config but untrained
	// weights, restored from the snapshot, must reproduce matches.
	m2, err := New(d, d.TrainTrips(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	tr := d.TestTrips()[0]
	r1, err := m.Match(tr.Cell)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m2.Match(tr.Cell)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Path) != len(r2.Path) {
		t.Fatalf("restored model path length differs: %d vs %d", len(r1.Path), len(r2.Path))
	}
	for i := range r1.Path {
		if r1.Path[i] != r2.Path[i] {
			t.Fatalf("restored model path differs at %d", i)
		}
	}
}

func TestTrainDeterministic(t *testing.T) {
	d := testDataset(t, 10)
	cfg := fastConfig()
	cfg.Epochs = 1
	cfg.FuseEpochs = 1
	m1, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := d.TestTrips()[0]
	r1, _ := m1.Match(tr.Cell)
	r2, _ := m2.Match(tr.Cell)
	if len(r1.Path) != len(r2.Path) {
		t.Fatal("training not deterministic")
	}
	for i := range r1.Path {
		if r1.Path[i] != r2.Path[i] {
			t.Fatal("training not deterministic: paths differ")
		}
	}
}

func TestAblationVariantsRun(t *testing.T) {
	d := testDataset(t, 10)
	variants := map[string]func(*Config){
		"LHMM-O": func(c *Config) { c.DisableImplicitObs = true },
		"LHMM-T": func(c *Config) { c.DisableImplicitTrans = true },
		"LHMM-S": func(c *Config) { c.Shortcuts = 0 },
	}
	for name, mod := range variants {
		cfg := fastConfig()
		cfg.Epochs = 1
		cfg.FuseEpochs = 1
		mod(&cfg)
		m, err := Train(d, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tr := d.TestTrips()[0]
		res, err := m.Match(tr.Cell)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Path) == 0 {
			t.Errorf("%s: empty path", name)
		}
	}
}

func TestCandidatePoolIncludesCoRoads(t *testing.T) {
	d := testDataset(t, 12)
	m, err := New(d, d.TrainTrips(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The pool must contain at least the nearest segments.
	tr := d.TestTrips()[0]
	pool := m.candidatePool(tr.Cell, 0)
	if len(pool) < m.Cfg.PoolSize {
		t.Errorf("pool size %d < %d", len(pool), m.Cfg.PoolSize)
	}
	seen := map[roadnet.SegmentID]bool{}
	for _, sid := range pool {
		if seen[sid] {
			t.Fatal("pool has duplicates")
		}
		seen[sid] = true
	}
}

// The learned matcher and the classical matcher run on the same
// trajectory must both produce connected paths; this integration test
// pins the interface contract between core and hmm.
func TestLearnedVsClassicalInterface(t *testing.T) {
	d := testDataset(t, 14)
	cfg := fastConfig()
	cfg.Epochs = 1
	m, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	classical := &hmm.Matcher{
		Net:    d.Net,
		Router: m.Router,
		Obs:    &hmm.GaussianObservation{Net: d.Net, Sigma: 450},
		Trans:  &hmm.ExponentialTransition{Router: m.Router, Beta: 500},
		Cfg:    hmm.Config{K: 10},
	}
	tr := d.TestTrips()[0]
	for name, match := range map[string]func(traj.CellTrajectory) (*hmm.Result, error){
		"learned":   m.Match,
		"classical": classical.Match,
	} {
		res, err := match(tr.Cell)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := 1; i < len(res.Path); i++ {
			if res.Path[i] == res.Path[i-1] {
				t.Errorf("%s: duplicate consecutive segment", name)
			}
		}
	}
}
