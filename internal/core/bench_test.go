package core

import (
	"sync"
	"testing"

	"repro/internal/hmm"
	"repro/internal/nn"
	"repro/internal/traj"
)

// Shared trained model for the micro-benchmarks: training dominates
// setup, so do it once per `go test -bench` run.
var (
	benchOnce sync.Once
	benchM    *Model
	benchCT   traj.CellTrajectory
)

func benchModel(b *testing.B) (*Model, traj.CellTrajectory) {
	benchOnce.Do(func() {
		d := testDataset(b, 14)
		m, err := Train(d, fastConfig())
		if err != nil {
			b.Fatal(err)
		}
		benchM, benchCT = m, d.Trips[d.Test[0]].Cell
	})
	if benchM == nil {
		b.Fatal("benchmark model failed to train")
	}
	return benchM, benchCT
}

// benchSession prepares a session with candidates for points 0 and 1 so
// both observation and transition scoring have warm state.
func benchSession(b *testing.B) (*session, []hmm.Candidate, []hmm.Candidate) {
	m, ct := benchModel(b)
	sess := m.newSession(ct)
	b.Cleanup(sess.release)
	from := sess.Candidates(ct, 0, m.Cfg.K)
	to := sess.Candidates(ct, 1, m.Cfg.K)
	return sess, from, to
}

// BenchmarkObsScoreScalar is the seed's per-candidate observation
// scoring path (allocates per call: feature rows + MLP activations).
func BenchmarkObsScoreScalar(b *testing.B) {
	sess, _, to := benchSession(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range to {
			sess.obsScore(1, to[j].Seg, to[j].Dist)
		}
	}
}

// BenchmarkObsScoreBatch is the batched pool scoring: two MLP batches
// through pooled workspace scratch, zero steady-state allocations.
func BenchmarkObsScoreBatch(b *testing.B) {
	sess, _, to := benchSession(b)
	prev := nn.SetMatMulWorkers(1)
	defer nn.SetMatMulWorkers(prev)
	sess.ws.Reset()
	scores := sess.ws.TakeVec(len(to))
	sess.obsScoreBatch(sess.ws, 1, to, scores) // warm slabs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.ws.Reset()
		scores := sess.ws.TakeVec(len(to))
		sess.obsScoreBatch(sess.ws, 1, to, scores)
	}
}

// BenchmarkTransScoreScalar is the seed's pairwise transition scoring
// over one k×k Viterbi step.
func BenchmarkTransScoreScalar(b *testing.B) {
	sess, from, to := benchSession(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range from {
			for kk := range to {
				sess.TransScore(sess.ct, 1, &from[j], &to[kk])
			}
		}
	}
}

// BenchmarkTransScoreBatch is the fused k×k transition batch for the
// same step.
func BenchmarkTransScoreBatch(b *testing.B) {
	sess, from, to := benchSession(b)
	prev := nn.SetMatMulWorkers(1)
	defer nn.SetMatMulWorkers(prev)
	out := make([]float64, len(from)*len(to))
	sess.ScoreBatch(sess.ct, 1, from, to, out) // warm caches + slabs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.ScoreBatch(sess.ct, 1, from, to, out)
	}
}

// BenchmarkMatch is the end-to-end single-trajectory match.
func BenchmarkMatch(b *testing.B) {
	m, ct := benchModel(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Match(ct); err != nil {
			b.Fatal(err)
		}
	}
}
