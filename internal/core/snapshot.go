package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math"

	"repro/internal/hmm"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// lhmm-session/v1 — the durable wire format for an in-flight streaming
// session. A snapshot captures everything needed to resume a learned
// streaming match bit-exactly on another process:
//
//	magic   "LHMMSESS" (8 bytes)
//	version u16 (1)
//	header  onBreak u8 · sanitize u8 · lag u32 · config fingerprint u64
//	        · weights hash [32]byte · id (u32 length + bytes, ≤256)
//	matcher n u32
//	        points    n × (tower i32, x f64, y f64, t f64)
//	        dead      n × u8
//	        emitted u32 · lastT f64 · degraded i64
//	        badCoords u32 · badTimes u32
//	        per point i: cᵢ u32, cᵢ candidates (seg i64, frac f64,
//	          projX f64, projY f64, dist f64, obs f64), cᵢ × f64
//	          forward scores, cᵢ × i32 backpointers
//	        matched   u32 count (== emitted) × candidate
//	        gaps      u32 count × (from i32, to i32, reason u8)
//	session dim u32 · embW n·dim × f64 · ctxW n·dim × f64
//	        · obsZ n × f64 · obsMax n × f64
//	footer  CRC-32C (Castagnoli) over everything before it, u32
//
// All integers and float bit patterns are little-endian. Floats are
// raw IEEE-754 bits, so restored Viterbi tables and cached context
// rows are bit-identical to the originals — the property that pins
// "restore then continue" to the uninterrupted output.
//
// What is deliberately NOT serialized: the session's Eq. 9 key cache
// and Eq. 10 road-probability memo. Both are deterministic functions
// of (weights, embW) and rebuild lazily on the first push after
// restore, yielding the same values; a snapshot is therefore closed
// under the model identity checks in the header (config fingerprint +
// weights hash) and carries no derived state that could drift.

const (
	snapMagic = "LHMMSESS"
	// SnapshotVersion is the wire version written by EncodeStreamSnapshot.
	SnapshotVersion = 1
	// snapMaxID bounds the session ID length on the wire.
	snapMaxID = 256
	// snapMinLen is the smallest structurally possible snapshot:
	// magic+version+fixed header+empty sections+CRC.
	snapMinLen = 8 + 2 + (1 + 1 + 4 + 8 + 32 + 4) + (4 + 4 + 8 + 8 + 4 + 4 + 4 + 4) + 4 + 4
)

// Sentinel errors for snapshot triage: Corrupt means the bytes cannot
// be trusted (truncation, CRC, structural violations), Version means a
// wire version this build does not speak, Mismatch means a valid
// snapshot that belongs to a different model (config or weights).
// Recovery quarantines all three instead of crashing, but reports them
// distinctly.
var (
	ErrSnapshotCorrupt  = errors.New("snapshot corrupt")
	ErrSnapshotVersion  = errors.New("unsupported snapshot version")
	ErrSnapshotMismatch = errors.New("snapshot does not match model")
)

var snapCRCTable = crc32.MakeTable(crc32.Castagnoli)

// WeightsHash digests every trainable parameter and calibration scalar
// (name, shape, and raw float bits, in AllParams order). Two models
// with equal hashes score identically; the frozen embeddings are a
// deterministic function of the encoder parameters and the graph, so
// they are covered transitively.
func (m *Model) WeightsHash() [32]byte {
	h := sha256.New()
	var buf [8]byte
	for _, p := range m.AllParams() {
		h.Write([]byte(p.Name))
		h.Write([]byte{0})
		binary.LittleEndian.PutUint32(buf[:4], uint32(p.W.R))
		h.Write(buf[:4])
		binary.LittleEndian.PutUint32(buf[:4], uint32(p.W.C))
		h.Write(buf[:4])
		for _, v := range p.W.W {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// ConfigFingerprint digests the inference-relevant configuration plus
// the network/tower cardinalities: everything that must agree between
// the snapshotting and restoring model for a resumed session to score
// identically (training-only knobs like epochs and learning rate are
// excluded on purpose).
func (m *Model) ConfigFingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	b2u := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	put(uint64(m.Cfg.Dim))
	put(uint64(m.Cfg.AttDim))
	put(uint64(m.Cfg.K))
	put(math.Float64bits(m.Cfg.PoolRadius))
	put(uint64(m.Cfg.PoolSize))
	put(uint64(m.Cfg.PoolMax))
	put(uint64(m.Cfg.CoPool))
	put(b2u(m.Cfg.DisableImplicitObs))
	put(b2u(m.Cfg.DisableImplicitTrans))
	put(uint64(m.Net.NumSegments()))
	put(uint64(m.Cells.NumTowers()))
	return h.Sum64()
}

// snapWriter appends little-endian primitives to a growing buffer.
type snapWriter struct{ b []byte }

func (w *snapWriter) bytes(p []byte) { w.b = append(w.b, p...) }
func (w *snapWriter) u8(v uint8)     { w.b = append(w.b, v) }
func (w *snapWriter) u16(v uint16)   { w.b = binary.LittleEndian.AppendUint16(w.b, v) }
func (w *snapWriter) u32(v uint32)   { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *snapWriter) u64(v uint64)   { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *snapWriter) i32(v int32)    { w.u32(uint32(v)) }
func (w *snapWriter) i64(v int64)    { w.u64(uint64(v)) }
func (w *snapWriter) f64(v float64)  { w.u64(math.Float64bits(v)) }

func (w *snapWriter) f64s(vs []float64) {
	for _, v := range vs {
		w.f64(v)
	}
}

func (w *snapWriter) candidate(c *hmm.Candidate) {
	w.i64(int64(c.Seg))
	w.f64(c.Frac)
	w.f64(c.Proj.X)
	w.f64(c.Proj.Y)
	w.f64(c.Dist)
	w.f64(c.Obs)
}

const candWire = 8 + 5*8 // one candidate on the wire

// EncodeStreamSnapshot serializes a learned streaming session (a
// matcher produced by Model.NewStream, possibly resumed) to the
// lhmm-session/v1 format. weightsHash is the serving model's
// WeightsHash — passed in rather than recomputed because the caller
// checkpoints many sessions against one model.
//
// The encoder reads live matcher state through views; the caller must
// hold whatever lock serializes pushes to this session for the
// duration of the call.
func EncodeStreamSnapshot(sm *hmm.StreamMatcher, id string, weightsHash [32]byte) ([]byte, error) {
	ss, ok := sm.M.Obs.(*streamSession)
	if !ok {
		return nil, fmt.Errorf("core: snapshot: matcher is not driven by a learned streaming session (obs model %T)", sm.M.Obs)
	}
	if len(id) == 0 || len(id) > snapMaxID {
		return nil, fmt.Errorf("core: snapshot: session id length %d out of range [1,%d]", len(id), snapMaxID)
	}
	st := sm.ExportState()
	n := len(st.Points)
	if ss.n != n {
		return nil, fmt.Errorf("core: snapshot: session absorbed %d points but matcher holds %d", ss.n, n)
	}
	d := ss.m.Cfg.Dim

	cands := 0
	for i := range st.Layers {
		cands += len(st.Layers[i])
	}
	est := snapMinLen + len(id) + n*(4+3*8+1+4) + cands*(candWire+8+4) +
		len(st.Matched)*candWire + len(st.Gaps)*9 + (2*n*d+2*n)*8
	w := &snapWriter{b: make([]byte, 0, est)}

	w.bytes([]byte(snapMagic))
	w.u16(SnapshotVersion)
	w.u8(uint8(sm.M.Cfg.OnBreak))
	w.u8(uint8(sm.M.Cfg.Sanitize))
	w.u32(uint32(st.Lag))
	w.u64(ss.m.ConfigFingerprint())
	w.bytes(weightsHash[:])
	w.u32(uint32(len(id)))
	w.bytes([]byte(id))

	w.u32(uint32(n))
	for _, p := range st.Points {
		w.i32(int32(p.Tower))
		w.f64(p.X)
		w.f64(p.Y)
		w.f64(p.T)
	}
	for _, dead := range st.Dead {
		if dead {
			w.u8(1)
		} else {
			w.u8(0)
		}
	}
	w.u32(uint32(st.Emitted))
	w.f64(st.LastT)
	w.i64(st.Degraded)
	w.u32(uint32(st.SanitizeBadCoords))
	w.u32(uint32(st.SanitizeBadTimes))
	for i := 0; i < n; i++ {
		layer := st.Layers[i]
		w.u32(uint32(len(layer)))
		for j := range layer {
			w.candidate(&layer[j])
		}
		w.f64s(st.F[i])
		for _, p := range st.Pre[i] {
			w.i32(int32(p))
		}
	}
	w.u32(uint32(len(st.Matched)))
	for j := range st.Matched {
		w.candidate(&st.Matched[j])
	}
	w.u32(uint32(len(st.Gaps)))
	for _, g := range st.Gaps {
		w.i32(int32(g.From))
		w.i32(int32(g.To))
		w.u8(uint8(g.Reason))
	}

	w.u32(uint32(d))
	w.f64s(ss.embW)
	w.f64s(ss.ctxW)
	w.f64s(ss.obsZ)
	w.f64s(ss.obsMax)

	w.u32(crc32.Checksum(w.b, snapCRCTable))
	return w.b, nil
}

// snapReader consumes little-endian primitives with sticky, bounds-
// checked errors: any read past the end (or any structural violation
// flagged by the caller) records ErrSnapshotCorrupt once and turns all
// further reads into zero-valued no-ops. Decoding arbitrary bytes can
// therefore never panic — the property FuzzSnapshotDecode locks in.
type snapReader struct {
	b   []byte
	off int
	err error
}

func (r *snapReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s (offset %d)", ErrSnapshotCorrupt, fmt.Sprintf(format, args...), r.off)
	}
}

func (r *snapReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail("truncated: need %d bytes, %d left", n, len(r.b)-r.off)
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

func (r *snapReader) u8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *snapReader) u16() uint16 {
	p := r.take(2)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}

func (r *snapReader) u32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (r *snapReader) u64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (r *snapReader) i32() int32     { return int32(r.u32()) }
func (r *snapReader) i64() int64     { return int64(r.u64()) }
func (r *snapReader) f64() float64   { return math.Float64frombits(r.u64()) }
func (r *snapReader) remaining() int { return len(r.b) - r.off }

// count reads a u32 element count and rejects values that could not
// possibly fit in the remaining bytes at minBytes per element, so a
// corrupt length cannot drive a giant allocation.
func (r *snapReader) count(what string, minBytes int) int {
	v := r.u32()
	if r.err != nil {
		return 0
	}
	if minBytes > 0 && int(v) > r.remaining()/minBytes {
		r.fail("%s count %d exceeds remaining payload", what, v)
		return 0
	}
	return int(v)
}

func (r *snapReader) f64s(n int) []float64 {
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
		if r.err != nil {
			return nil
		}
	}
	return out
}

func (r *snapReader) candidate(c *hmm.Candidate) {
	c.Seg = roadnet.SegmentID(r.i64())
	c.Frac = r.f64()
	c.Proj.X = r.f64()
	c.Proj.Y = r.f64()
	c.Dist = r.f64()
	c.Obs = r.f64()
}

// snapHeader is the decoded fixed header.
type snapHeader struct {
	OnBreak     hmm.BreakPolicy
	Sanitize    traj.SanitizeMode
	Lag         int
	Fingerprint uint64
	WeightsHash [32]byte
	ID          string
}

// snapSession is the decoded learned-session block.
type snapSession struct {
	dim          int
	embW, ctxW   []float64
	obsZ, obsMax []float64
}

// parseSnapshot validates framing (magic, CRC, version) and decodes
// every section with bounds checking. It is model-independent: all
// structural invariants are enforced here or by the hmm-level state
// validation, while model identity (fingerprint/weights) is the
// caller's concern.
func parseSnapshot(data []byte) (*snapHeader, *hmm.StreamState, *snapSession, error) {
	if len(data) < snapMinLen {
		return nil, nil, nil, fmt.Errorf("%w: %d bytes is below the minimum snapshot size %d", ErrSnapshotCorrupt, len(data), snapMinLen)
	}
	if string(data[:8]) != snapMagic {
		return nil, nil, nil, fmt.Errorf("%w: bad magic %q", ErrSnapshotCorrupt, data[:8])
	}
	body, foot := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.Checksum(body, snapCRCTable), binary.LittleEndian.Uint32(foot); got != want {
		return nil, nil, nil, fmt.Errorf("%w: CRC %08x, footer says %08x", ErrSnapshotCorrupt, got, want)
	}
	r := &snapReader{b: body, off: 8}
	if v := r.u16(); v != SnapshotVersion {
		return nil, nil, nil, fmt.Errorf("%w: version %d (this build speaks %d)", ErrSnapshotVersion, v, SnapshotVersion)
	}

	var hdr snapHeader
	ob := r.u8()
	sz := r.u8()
	if r.err == nil && ob > uint8(hmm.BreakSplit) {
		r.fail("unknown break policy %d", ob)
	}
	if r.err == nil && sz > uint8(traj.SanitizeOff) {
		r.fail("unknown sanitize mode %d", sz)
	}
	hdr.OnBreak = hmm.BreakPolicy(ob)
	hdr.Sanitize = traj.SanitizeMode(sz)
	hdr.Lag = int(r.u32())
	hdr.Fingerprint = r.u64()
	copy(hdr.WeightsHash[:], r.take(32))
	idLen := r.count("session id", 1)
	if r.err == nil && (idLen == 0 || idLen > snapMaxID) {
		r.fail("session id length %d out of range [1,%d]", idLen, snapMaxID)
	}
	hdr.ID = string(r.take(idLen))

	st := &hmm.StreamState{Lag: hdr.Lag}
	n := r.count("point", 4+3*8)
	st.Points = make([]hmm.StreamPoint, n)
	for i := range st.Points {
		st.Points[i].Tower = int(r.i32())
		st.Points[i].X = r.f64()
		st.Points[i].Y = r.f64()
		st.Points[i].T = r.f64()
		if r.err != nil {
			return nil, nil, nil, r.err
		}
	}
	st.Dead = make([]bool, n)
	for i := range st.Dead {
		switch r.u8() {
		case 0:
		case 1:
			st.Dead[i] = true
		default:
			if r.err == nil {
				r.fail("dead flag for point %d is not 0/1", i)
			}
		}
		if r.err != nil {
			return nil, nil, nil, r.err
		}
	}
	st.Emitted = int(r.u32())
	st.LastT = r.f64()
	st.Degraded = r.i64()
	st.SanitizeBadCoords = int(r.u32())
	st.SanitizeBadTimes = int(r.u32())

	st.Layers = make([][]hmm.Candidate, n)
	st.F = make([][]float64, n)
	st.Pre = make([][]int, n)
	for i := 0; i < n; i++ {
		c := r.count("candidate", candWire+8+4)
		if r.err != nil {
			return nil, nil, nil, r.err
		}
		if c == 0 {
			continue // dead point: nil rows
		}
		layer := make([]hmm.Candidate, c)
		for j := range layer {
			r.candidate(&layer[j])
		}
		st.Layers[i] = layer
		st.F[i] = r.f64s(c)
		pre := make([]int, c)
		for j := range pre {
			pre[j] = int(r.i32())
		}
		st.Pre[i] = pre
		if r.err != nil {
			return nil, nil, nil, r.err
		}
	}
	mc := r.count("matched", candWire)
	st.Matched = make([]hmm.Candidate, mc)
	for j := range st.Matched {
		r.candidate(&st.Matched[j])
		if r.err != nil {
			return nil, nil, nil, r.err
		}
	}
	gc := r.count("gap", 9)
	st.Gaps = make([]hmm.Gap, gc)
	for j := range st.Gaps {
		st.Gaps[j].From = int(r.i32())
		st.Gaps[j].To = int(r.i32())
		st.Gaps[j].Reason = hmm.GapReason(r.u8())
		if r.err != nil {
			return nil, nil, nil, r.err
		}
	}

	sess := &snapSession{}
	sess.dim = int(r.u32())
	if r.err == nil && (sess.dim <= 0 || n > 0 && sess.dim > r.remaining()/(8*2*n)) {
		r.fail("dim %d inconsistent with %d points and %d remaining bytes", sess.dim, n, r.remaining())
	}
	if r.err != nil {
		return nil, nil, nil, r.err
	}
	sess.embW = r.f64s(n * sess.dim)
	sess.ctxW = r.f64s(n * sess.dim)
	sess.obsZ = r.f64s(n)
	sess.obsMax = r.f64s(n)
	if r.err != nil {
		return nil, nil, nil, r.err
	}
	if r.remaining() != 0 {
		r.fail("%d trailing bytes after session section", r.remaining())
		return nil, nil, nil, r.err
	}
	return &hdr, st, sess, nil
}

// StreamSnapshot is a restored streaming session: the matcher resumes
// exactly where the snapshotted one stopped.
type StreamSnapshot struct {
	ID  string
	Lag int
	SM  *hmm.StreamMatcher
}

// DecodeStreamSnapshot restores an lhmm-session/v1 snapshot against m.
// weightsHash is the caller's cached m.WeightsHash(). The error is
// ErrSnapshotCorrupt, ErrSnapshotVersion, or ErrSnapshotMismatch
// (errors.Is) — the recovery path quarantines on any of them.
//
// The restored matcher's OnBreak/Sanitize policies come from the
// snapshot header (they are per-session serving overrides), while
// scoring configuration comes from m, pinned equal by the fingerprint.
func DecodeStreamSnapshot(m *Model, weightsHash [32]byte, data []byte) (*StreamSnapshot, error) {
	if m.emb == nil {
		return nil, fmt.Errorf("core: snapshot: model has no embeddings; call RefreshEmbeddings or Load first")
	}
	hdr, st, sess, err := parseSnapshot(data)
	if err != nil {
		return nil, err
	}
	if fp := m.ConfigFingerprint(); hdr.Fingerprint != fp {
		return nil, fmt.Errorf("%w: config fingerprint %016x, model has %016x", ErrSnapshotMismatch, hdr.Fingerprint, fp)
	}
	if hdr.WeightsHash != weightsHash {
		return nil, fmt.Errorf("%w: weights hash %s, model has %s", ErrSnapshotMismatch,
			hex.EncodeToString(hdr.WeightsHash[:8]), hex.EncodeToString(weightsHash[:8]))
	}
	if sess.dim != m.Cfg.Dim {
		return nil, fmt.Errorf("%w: session dim %d, model dim %d", ErrSnapshotMismatch, sess.dim, m.Cfg.Dim)
	}
	nSeg, nTow := m.Net.NumSegments(), m.Cells.NumTowers()
	for i := range st.Points {
		if t := st.Points[i].Tower; t < 0 || t >= nTow {
			return nil, fmt.Errorf("%w: point %d tower %d out of range [0,%d)", ErrSnapshotCorrupt, i, t, nTow)
		}
	}
	checkSeg := func(what string, i int, c *hmm.Candidate) error {
		if s := int(c.Seg); s < 0 || s >= nSeg {
			return fmt.Errorf("%w: %s %d: segment %d out of range [0,%d)", ErrSnapshotCorrupt, what, i, s, nSeg)
		}
		return nil
	}
	for i := range st.Layers {
		for j := range st.Layers[i] {
			if err := checkSeg("candidate of point", i, &st.Layers[i][j]); err != nil {
				return nil, err
			}
		}
	}
	for j := range st.Matched {
		if err := checkSeg("matched entry", j, &st.Matched[j]); err != nil {
			return nil, err
		}
	}

	ss := &streamSession{
		m:      m,
		n:      len(st.Points),
		embW:   sess.embW,
		ctxW:   sess.ctxW,
		roadP:  make(map[roadnet.SegmentID]float64),
		obsZ:   sess.obsZ,
		obsMax: sess.obsMax,
	}
	mm := &hmm.Matcher{
		Net:    m.Net,
		Router: m.Router,
		Obs:    ss,
		Trans:  streamTrans{ss},
		Cfg: hmm.Config{
			K:        m.Cfg.K,
			OnBreak:  hdr.OnBreak,
			Sanitize: hdr.Sanitize,
		},
	}
	sm, err := hmm.NewStreamMatcherFromState(mm, st)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	return &StreamSnapshot{ID: hdr.ID, Lag: hdr.Lag, SM: sm}, nil
}

// SnapshotInfo is a model-independent summary of a snapshot file, for
// `lhmm sessions inspect`.
type SnapshotInfo struct {
	Version     int     `json:"version"`
	ID          string  `json:"id"`
	Lag         int     `json:"lag"`
	OnBreak     string  `json:"on_break"`
	Sanitize    string  `json:"sanitize"`
	Points      int     `json:"points"`
	Emitted     int     `json:"emitted"`
	Pending     int     `json:"pending"`
	DeadPoints  int     `json:"dead_points"`
	Gaps        int     `json:"gaps"`
	Degraded    int64   `json:"degraded"`
	BadCoords   int     `json:"sanitize_bad_coords"`
	BadTimes    int     `json:"sanitize_bad_times"`
	LastT       float64 `json:"last_t"`
	Dim         int     `json:"dim"`
	Fingerprint string  `json:"config_fingerprint"`
	WeightsHash string  `json:"weights_hash"`
	Bytes       int     `json:"bytes"`
}

// InspectStreamSnapshot decodes a snapshot's framing and state without
// a model: full structural validation (CRC, bounds, hmm invariants)
// but no identity check. Safe on arbitrary bytes.
func InspectStreamSnapshot(data []byte) (*SnapshotInfo, error) {
	hdr, st, sess, err := parseSnapshot(data)
	if err != nil {
		return nil, err
	}
	// Run the hmm-level validation too, so inspect flags the same
	// states restore would reject (a throwaway matcher shell suffices
	// — validation is structural).
	if _, err := hmm.NewStreamMatcherFromState(&hmm.Matcher{}, st); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	dead := 0
	for _, d := range st.Dead {
		if d {
			dead++
		}
	}
	return &SnapshotInfo{
		Version:     SnapshotVersion,
		ID:          hdr.ID,
		Lag:         hdr.Lag,
		OnBreak:     hdr.OnBreak.String(),
		Sanitize:    hdr.Sanitize.String(),
		Points:      len(st.Points),
		Emitted:     st.Emitted,
		Pending:     len(st.Points) - st.Emitted,
		DeadPoints:  dead,
		Gaps:        len(st.Gaps),
		Degraded:    st.Degraded,
		BadCoords:   st.SanitizeBadCoords,
		BadTimes:    st.SanitizeBadTimes,
		LastT:       st.LastT,
		Dim:         sess.dim,
		Fingerprint: fmt.Sprintf("%016x", hdr.Fingerprint),
		WeightsHash: hex.EncodeToString(hdr.WeightsHash[:]),
		Bytes:       len(data),
	}, nil
}
