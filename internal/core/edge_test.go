package core

import (
	"testing"

	"repro/internal/traj"
)

// TestMatchDegenerateTrajectories exercises inputs real pipelines
// produce: stationary phones (one tower repeated), two-point tracks,
// and towers never seen in training.
func TestMatchDegenerateTrajectories(t *testing.T) {
	d := testDataset(t, 14)
	cfg := fastConfig()
	cfg.Epochs = 1
	m, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}

	base := d.TestTrips()[0].Cell

	t.Run("single-point", func(t *testing.T) {
		res, err := m.Match(base[:1])
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Path) == 0 {
			t.Error("no path for single point")
		}
	})

	t.Run("stationary", func(t *testing.T) {
		ct := make(traj.CellTrajectory, 5)
		for i := range ct {
			ct[i] = base[0]
			ct[i].T = float64(i) * 60
		}
		res, err := m.Match(ct)
		if err != nil {
			t.Fatal(err)
		}
		// A stationary phone should match a short path.
		if len(res.Path) > 30 {
			t.Errorf("stationary track matched %d segments", len(res.Path))
		}
	})

	t.Run("two-point", func(t *testing.T) {
		res, err := m.Match(base[:2])
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matched) != 2 {
			t.Errorf("matched %d points", len(res.Matched))
		}
	})
}

// TestSessionCaches pins that per-trajectory state is rebuilt per call
// (no cross-trajectory leakage): matching A then B gives the same
// result as matching B alone.
func TestSessionNoLeakage(t *testing.T) {
	d := testDataset(t, 14)
	cfg := fastConfig()
	cfg.Epochs = 1
	m, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := d.TestTrips()[0], d.TestTrips()[1]
	// Fresh model match of b.
	rb1, err := m.Match(b.Cell)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave: a then b.
	if _, err := m.Match(a.Cell); err != nil {
		t.Fatal(err)
	}
	rb2, err := m.Match(b.Cell)
	if err != nil {
		t.Fatal(err)
	}
	if len(rb1.Path) != len(rb2.Path) {
		t.Fatal("matching order changed the result")
	}
	for i := range rb1.Path {
		if rb1.Path[i] != rb2.Path[i] {
			t.Fatal("matching order changed the path")
		}
	}
}

// TestConfigDefaults pins withDefaults filling.
func TestConfigDefaults(t *testing.T) {
	var c Config
	c = c.withDefaults()
	if c.Dim == 0 || c.K == 0 || c.PoolSize == 0 || c.LR == 0 || c.Epochs == 0 {
		t.Errorf("defaults not filled: %+v", c)
	}
	if c.PoolSize < c.K {
		t.Error("pool smaller than candidate count")
	}
	// AttDim derived from Dim.
	if c.AttDim == 0 {
		t.Error("AttDim not defaulted")
	}
}
