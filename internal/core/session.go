package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/hmm"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// Inference telemetry (internal/obs). Counters are interned by name,
// so "hmm.match.degraded" here is the same instrument the hmm matcher
// increments for its scalar-path fallbacks.
var (
	obsCoreMatches   = obs.Default.Counter("core.matches")
	obsCoreMatchErrs = obs.Default.Counter("core.match.errors")
	obsCoreMatchS    = obs.Default.Histogram("core.match.seconds", obs.LatencyBuckets)
	obsRoadProbHits  = obs.Default.Counter("core.roadprob.cache.hits")
	obsRoadProbMiss  = obs.Default.Counter("core.roadprob.cache.misses")
	obsObsBatched    = obs.Default.Counter("core.obs.batched.rows")
	obsTransBatched  = obs.Default.Counter("core.trans.batched.rows")
	obsCoreDegraded  = obs.Default.Counter("hmm.match.degraded")
	obsCoreSanitized = obs.Default.Counter("hmm.match.sanitized")
)

// fpBatchNaN poisons the batched transition scores with NaN (chaos
// tests for the inline degraded fallback; no-op unless armed).
var fpBatchNaN = faultinject.New("core.trans.nan")

// session holds the per-trajectory inference state: point embeddings,
// context-aware point representations (Eq. 6), and a cache of per-road
// trajectory relevance scores (Eq. 10). It implements both
// hmm.ObservationModel and hmm.TransitionModel (including the batched
// hmm.TransitionBatchModel fast path).
//
// All learned scoring is batch-oriented: the per-point candidate pool
// is scored through the Eq. 7/8 MLPs as one pool×d matrix product, and
// each Viterbi step's k×k transition fan-out is fused through the
// Eq. 12 MLP in a single product (see ScoreBatch). The scalar paths are
// kept for shortcut pseudo-candidates and as the equivalence reference;
// batched and scalar scoring agree bit-for-bit on the MLP stages
// because row-at-a-time and batched matrix products accumulate each
// output row in the same order.
type session struct {
	m  *Model
	ct traj.CellTrajectory

	// ws is the match-goroutine scratch workspace (from the shared nn
	// pool, returned by release). Parallel transition workers take
	// their own.
	ws *nn.Workspace

	ptEmb *nn.Mat // n×d raw point embeddings
	ctx   *nn.Mat // n×d context-aware representations (Eq. 6)

	// transKeys caches the key-side attention state of Eq. 9 over the
	// trajectory's point embeddings, shared by every roadProb query.
	transKeys *nn.AttKeys

	// roadP caches Eq. 10 per segment. roadMu guards it when the
	// transition fan-out runs on multiple workers.
	roadMu sync.Mutex
	roadP  map[roadnet.SegmentID]float64

	// obsZ caches, per point, the softmax denominator over the
	// candidate pool (Eq. 7 normalizes P_O across the candidate roads
	// of the point); obsMax the max score for stable exponentials.
	obsZ   []float64
	obsMax []float64

	// deg counts batched scoring events that fell back to the
	// classical explicit feature because the learned score came out
	// NaN/Inf (degraded mode); folded into Result.Degraded by Match.
	deg atomic.Int64

	// span, when non-nil, is the request's match span; observation-
	// scoring wall-clock accumulates into obsT (first call stamped in
	// obsT0) and MatchContext emits it as one "observation" child span.
	// Candidates runs sequentially on the match goroutine, so plain
	// fields suffice.
	span  *obs.Span
	obsT0 time.Time
	obsT  float64
}

// newSession precomputes the trajectory-level state. The model must
// have frozen embeddings (RefreshEmbeddings).
func (m *Model) newSession(ct traj.CellTrajectory) *session {
	n, d := len(ct), m.Cfg.Dim
	s := &session{
		m:      m,
		ct:     ct,
		ws:     nn.GetWorkspace(),
		ptEmb:  nn.NewMat(n, d),
		ctx:    nn.NewMat(n, d),
		roadP:  make(map[roadnet.SegmentID]float64),
		obsZ:   make([]float64, n),
		obsMax: make([]float64, n),
	}
	for i, cp := range ct {
		copy(s.ptEmb.Row(i), m.towerEmb(cp.Tower))
	}
	// Eq. 6 for every point in one batched self-attention pass.
	s.ws.Reset()
	copy(s.ctx.W, m.ObsAtt.SelfApplyAllWS(s.ws, s.ptEmb).W)
	s.ws.Reset()
	if !m.Cfg.DisableImplicitTrans {
		s.transKeys = m.TransAtt.PrecomputeKeys(s.ptEmb)
	}
	return s
}

// release returns the session's pooled resources. The session must not
// be used afterwards.
func (s *session) release() {
	if s.ws != nil {
		nn.PutWorkspace(s.ws)
		s.ws = nil
	}
}

// softmaxP1 is the positive-class probability of a 2-logit softmax,
// arithmetically identical to nn.Softmax(logits)[1].
func softmaxP1(l0, l1 float64) float64 {
	mx := l0
	if l1 > mx {
		mx = l1
	}
	e0 := math.Exp(l0 - mx)
	e1 := math.Exp(l1 - mx)
	return e1 / (e0 + e1)
}

// implicitObs evaluates Eq. 7 for one candidate: the probability that
// segment sid is the true location of point i given the context-aware
// representation. Scalar reference path; Candidates scores whole pools
// through implicitObsBatch instead.
func (s *session) implicitObs(i int, sid roadnet.SegmentID) float64 {
	if s.m.Cfg.DisableImplicitObs {
		return 0.5
	}
	d := s.m.Cfg.Dim
	feat := nn.NewMat(1, 2*d)
	copy(feat.W[:d], s.m.segEmb(sid))
	copy(feat.W[d:], s.ctx.Row(i))
	logits := s.m.ObsMLP.Apply(feat)
	return softmaxP1(logits.W[0], logits.W[1])
}

// obsScore evaluates the fused point-road log-odds (Eq. 8's MLP) for
// one candidate. The explicit distance feature is presented as a
// calibrated Gaussian (the paper batch-normalizes it; a Gaussian of the
// calibrated scale carries the same information in a shape the small
// fuse MLP can use directly, so the classical Eq. 2 behaviour is the
// learner's starting point rather than something it must rediscover).
// Scalar reference path, used for shortcut pseudo-candidates.
func (s *session) obsScore(i int, sid roadnet.SegmentID, dist float64) float64 {
	feat := nn.RowVec(
		s.implicitObs(i, sid),
		s.m.gaussDist(dist),
		s.m.Graph.CoOccurrenceNorm(s.ct[i].Tower, sid),
	)
	logits := s.m.ObsFuse.Apply(feat)
	return logits.W[1] - logits.W[0]
}

// obsScoreBatch fills scores with the fused Eq. 8 log-odds of every
// candidate of point i in two batched MLP applications: one P×2d
// product through the Eq. 7 MLP and one P×3 product through the fuse
// MLP, instead of P single-row calls. ws scratch; scores caller-owned.
// The arithmetic lives in Model.obsScoreBatchCtx (stream.go), shared
// with the streaming session.
func (s *session) obsScoreBatch(ws *nn.Workspace, i int, cands []hmm.Candidate, scores []float64) {
	s.m.obsScoreBatchCtx(ws, s.ct[i].Tower, s.ctx.Row(i), cands, scores)
}

// roadProb evaluates Eq. 10 with caching: the likelihood that segment
// sid belongs to this trajectory. Safe for concurrent use (the cache is
// mutex-guarded; the underlying inference is deterministic, so a rare
// duplicated computation stores the same value). ws supplies scratch
// and is Reset here — callers must not hold live ws buffers across it.
func (s *session) roadProb(ws *nn.Workspace, sid roadnet.SegmentID) float64 {
	s.roadMu.Lock()
	if p, ok := s.roadP[sid]; ok {
		s.roadMu.Unlock()
		obsRoadProbHits.Inc()
		return p
	}
	s.roadMu.Unlock()
	obsRoadProbMiss.Inc()
	d := s.m.Cfg.Dim
	ws.Reset()
	segRow := &nn.Mat{R: 1, C: d, W: s.m.segEmb(sid)}
	xl, _ := s.transKeys.QueryWS(ws, segRow)
	feat := ws.Take(1, 2*d)
	copy(feat.W[:d], segRow.W)
	copy(feat.W[d:], xl.W)
	logits := s.m.TransMLP.ApplyWS(ws, feat)
	p := softmaxP1(logits.W[0], logits.W[1])
	s.roadMu.Lock()
	s.roadP[sid] = p
	s.roadMu.Unlock()
	return p
}

// transFeatures assembles the Eq. 12 input for a movement into point i
// along the given route: [implicit route relevance (Eq. 11), length
// similarity, turn similarity]. straight is the hoisted straight-line
// distance between points i-1 and i (identical for every pair of the
// step's fan-out).
func (s *session) transFeatures(ws *nn.Workspace, i int, route roadnet.Route, straight float64) [3]float64 {
	var pRoute float64
	if s.m.Cfg.DisableImplicitTrans {
		pRoute = 0.5
	} else {
		var sum float64
		for _, sid := range route.Segs {
			sum += s.roadProb(ws, sid)
		}
		pRoute = sum / float64(len(route.Segs))
	}
	lenSim, turnSim := routeSims(s.m.Net, route, straight)
	return [3]float64{pRoute, lenSim, turnSim}
}

// geoAngleDiff is a tiny local wrapper to avoid importing geo for one
// function in this file's hot path.
func geoAngleDiff(a, b float64) float64 {
	d := math.Mod(math.Abs(a-b), 2*math.Pi)
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d
}

// candidatePool returns the restricted search space the learned P_O
// ranks (§IV-C "limits the candidate search space by the explicit
// features"): the PoolSize nearest segments (clipped to PoolRadius),
// plus the top co-occurring roads of the point's tower. Distance
// bounds the bulk of the space; historical co-occurrence contributes
// the far-but-relevant roads, and the shortcut structure covers points
// whose truth escapes both (Observation 1).
func (m *Model) candidatePool(ct traj.CellTrajectory, i int) []roadnet.SegmentID {
	pool := m.Net.SegmentsNear(ct[i].P, m.Cfg.PoolSize)
	// Clip the tail beyond PoolRadius (ascending distance order).
	for len(pool) > 1 && m.Net.DistTo(pool[len(pool)-1], ct[i].P) > m.Cfg.PoolRadius {
		pool = pool[:len(pool)-1]
	}
	seen := make(map[roadnet.SegmentID]bool, len(pool))
	for _, sid := range pool {
		seen[sid] = true
	}
	for _, sid := range m.Graph.TopCoRoads(ct[i].Tower, m.Cfg.CoPool) {
		if !seen[sid] {
			seen[sid] = true
			pool = append(pool, sid)
		}
	}
	return pool
}

// Candidates implements hmm.ObservationModel: the top-k pool segments
// by learned observation probability — the pool scores softmax-
// normalized per point (Eq. 7's softmax runs over the candidate roads
// of the point, which keeps P_O sharp and comparable across
// candidates) — with the nearest third by geometric distance always
// retained. The distance floor keeps the physical prior intact when
// the learned ranking is uncertain (the paper's P_O likewise folds the
// explicit distance feature into its ranking, §IV-C). The whole pool is
// scored as one batch (obsScoreBatch).
func (s *session) Candidates(ct traj.CellTrajectory, i, k int) []hmm.Candidate {
	pool := s.m.candidatePool(s.ct, i)
	cands := poolCandidates(s.m.Net, s.ct[i].P, pool)
	s.ws.Reset()
	scores := s.ws.TakeVec(len(cands))
	var t time.Time
	if s.span != nil {
		t = time.Now()
		if s.obsT0.IsZero() {
			s.obsT0 = t
		}
	}
	s.obsScoreBatch(s.ws, i, cands, scores)
	if s.span != nil {
		s.obsT += time.Since(t).Seconds()
	}
	// Across-pool softmax with cached normalizer so shortcut
	// pseudo-candidates score consistently later (selectTopK returns
	// the pool max and normalizer it used).
	out, mx, z := selectTopK(cands, scores, k)
	s.obsMax[i] = mx
	s.obsZ[i] = z
	return out
}

// Score implements hmm.ObservationModel for shortcut pseudo-candidates:
// the fused score normalized by the point's cached pool softmax.
func (s *session) Score(ct traj.CellTrajectory, i int, c *hmm.Candidate) float64 {
	sc := s.obsScore(i, c.Seg, c.Dist)
	if s.obsZ[i] == 0 {
		// Candidates was never called for this point (single-point
		// trajectories bypass transitions); fall back to the sigmoid.
		return 1 / (1 + math.Exp(-sc))
	}
	return math.Exp(sc-s.obsMax[i]) / s.obsZ[i]
}

// TransScore implements hmm.TransitionModel: the learned transition
// probability of Eq. 12. Scalar reference path, used by the shortcut
// pass; the Viterbi fan-out goes through ScoreBatch.
func (s *session) TransScore(ct traj.CellTrajectory, i int, from, to *hmm.Candidate) (float64, bool) {
	route, ok := s.m.Router.RouteBetween(from.Pos(), to.Pos())
	if !ok || len(route.Segs) == 0 {
		return 0, false
	}
	straight := s.ct[i-1].P.Dist(s.ct[i].P)
	f := s.transFeatures(s.ws, i, route, straight)
	logits := s.m.TransFuse.Apply(nn.RowVec(f[0], f[1], f[2]))
	p := softmaxP1(logits.W[0], logits.W[1])
	if g := s.m.transGamma.W.W[0]; g != 1 {
		p = math.Pow(p, g)
	}
	return p, true
}

// roadProbFill batch-computes every uncached Eq. 10 road probability
// referenced by the step's reachable routes: one multi-row attention
// read-out (nn.AttKeys.QueryAllWS) plus one R×2d product through the
// relevance MLP — routed through Model.Exec when a scheduler is
// installed — instead of R single-row passes. Per-row arithmetic
// mirrors roadProb exactly (MatMulInto is row-independent and the
// qdot/softmax/read-out order is shared), so cached values are
// bit-identical whichever path computed them; the scalar TransScore
// path keeps reading the same cache.
func (s *session) roadProbFill(routes []roadnet.Route, mask []float64) {
	if s.m.Cfg.DisableImplicitTrans {
		return
	}
	// Unique uncached segments across the step, in first-encounter order
	// (deterministic: routes are pair-indexed).
	var need []roadnet.SegmentID
	seen := make(map[roadnet.SegmentID]bool)
	s.roadMu.Lock()
	for p := range routes {
		if math.IsNaN(mask[p]) {
			continue
		}
		for _, sid := range routes[p].Segs {
			if seen[sid] {
				continue
			}
			seen[sid] = true
			if _, ok := s.roadP[sid]; !ok {
				need = append(need, sid)
			}
		}
	}
	s.roadMu.Unlock()
	obsRoadProbMiss.Add(int64(len(need)))
	if len(need) == 0 {
		return
	}
	d := s.m.Cfg.Dim
	segs := s.ws.Take(len(need), d)
	for r, sid := range need {
		copy(segs.Row(r), s.m.segEmb(sid))
	}
	xl := s.transKeys.QueryAllWS(s.ws, segs)
	feat := s.ws.Take(len(need), 2*d)
	for r := 0; r < len(need); r++ {
		row := feat.Row(r)
		copy(row[:d], segs.Row(r))
		copy(row[d:], xl.Row(r))
	}
	logits := s.m.applyMLP(s.ws, s.m.TransMLP, feat)
	s.roadMu.Lock()
	for r, sid := range need {
		lr := logits.Row(r)
		s.roadP[sid] = softmaxP1(lr[0], lr[1])
	}
	s.roadMu.Unlock()
}

// ScoreBatch implements hmm.TransitionBatchModel: the whole k×k
// transition fan-out of one Viterbi step in a single fused-MLP batch.
// Route construction runs on Cfg.Parallel workers (the router's SSSP
// cache is concurrency-safe), then every road probability the step's
// routes reference is batch-filled in one shot (roadProbFill), the
// explicit features are assembled from the warm cache, and one
// (k·k)×3 matrix product through the Eq. 12 fuse MLP scores every
// reachable pair at once. The per-step straight-line distance is
// hoisted out of the pair loop. Results are identical to pairwise
// TransScore regardless of worker count: feature rows are
// pair-indexed, cached road probabilities are bit-identical whichever
// path computed them, and the MLP products are row-independent.
func (s *session) ScoreBatch(ct traj.CellTrajectory, i int, from, to []hmm.Candidate, out []float64) {
	nFrom, nTo := len(from), len(to)
	nPairs := nFrom * nTo
	straight := s.ct[i-1].P.Dist(s.ct[i].P)
	s.ws.Reset()
	feat := s.ws.Take(nPairs, 3)
	routes := make([]roadnet.Route, nPairs)

	// Phase 1: a route per pair, fanned out over workers. out doubles as
	// the reachability mask (NaN = unreachable).
	routePair := func(p int) {
		j, kk := p/nTo, p%nTo
		route, ok := s.m.Router.RouteBetween(from[j].Pos(), to[kk].Pos())
		if !ok || len(route.Segs) == 0 {
			out[p] = math.NaN()
			return
		}
		routes[p] = route
		out[p] = 0
	}
	workers := s.m.Cfg.Parallel
	if workers > nPairs {
		workers = nPairs
	}
	if workers <= 1 {
		for p := 0; p < nPairs; p++ {
			routePair(p)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					p := int(next.Add(1)) - 1
					if p >= nPairs {
						return
					}
					routePair(p)
				}
			}()
		}
		wg.Wait()
	}

	// Phase 2: batch every uncached road probability the step needs,
	// then assemble the explicit features from the warm cache. Sharing
	// s.ws with transFeatures is safe only because roadProbFill
	// guarantees every roadProb read below is a cache hit (a miss would
	// Reset the workspace under the live feat buffer).
	s.roadProbFill(routes, out)
	for p := 0; p < nPairs; p++ {
		row := feat.Row(p)
		if math.IsNaN(out[p]) {
			row[0], row[1], row[2] = 0, 0, 0
			continue
		}
		f := s.transFeatures(s.ws, i, routes[p], straight)
		row[0], row[1], row[2] = f[0], f[1], f[2]
	}

	// Phase 3: one batched product through the fuse MLP. NaN in out is
	// the unreachable sentinel of the batch protocol, so a learned
	// score that itself comes out non-finite (corrupt weights, a NaN
	// that slipped past load validation, fault injection) must be
	// caught here: it degrades to the explicit length-similarity
	// feature — exactly the classical Eq. 3 exponential with β=500,
	// already computed into the feature row — instead of silently
	// reading as "unreachable" and breaking the chain.
	logits := s.m.applyMLP(s.ws, s.m.TransFuse, feat) // nPairs×2
	g := s.m.transGamma.W.W[0]
	for p := 0; p < nPairs; p++ {
		if math.IsNaN(out[p]) {
			continue
		}
		lr := logits.Row(p)
		pr := softmaxP1(lr[0], lr[1])
		if g != 1 {
			pr = math.Pow(pr, g)
		}
		if fpBatchNaN.Fail() {
			pr = math.NaN()
		}
		if math.IsNaN(pr) || math.IsInf(pr, 0) {
			if fb := feat.Row(p)[1]; !math.IsNaN(fb) && !math.IsInf(fb, 0) {
				pr = fb
			} else {
				out[p] = math.NaN()
				s.deg.Add(1)
				continue
			}
			s.deg.Add(1)
		}
		out[p] = pr
	}
	obsTransBatched.Add(int64(nPairs))
}

// transAdapter exposes the session's transition scoring under the
// hmm.TransitionModel method names (the session's own Score is taken by
// hmm.ObservationModel).
type transAdapter struct{ s *session }

func (t transAdapter) Score(ct traj.CellTrajectory, i int, from, to *hmm.Candidate) (float64, bool) {
	return t.s.TransScore(ct, i, from, to)
}

// ScoreBatch forwards the batched fast path (hmm.TransitionBatchModel).
func (t transAdapter) ScoreBatch(ct traj.CellTrajectory, i int, from, to []hmm.Candidate, out []float64) {
	t.s.ScoreBatch(ct, i, from, to, out)
}

// Match map-matches one cellular trajectory with the trained model.
func (m *Model) Match(ct traj.CellTrajectory) (*hmm.Result, error) {
	return m.MatchContext(context.Background(), ct)
}

// MatchContext is Match with cancellation and a hardened boundary: the
// context is checked between Viterbi steps (a canceled context stops
// the match within one step's work), and a panic anywhere in inference
// — most plausibly an nn shape mismatch from a model whose weights
// disagree with the configuration — is recovered into a wrapped error
// instead of unwinding through the caller.
func (m *Model) MatchContext(ctx context.Context, ct traj.CellTrajectory) (res *hmm.Result, err error) {
	if m.emb == nil {
		obsCoreMatchErrs.Inc()
		return nil, fmt.Errorf("core: model has no embeddings; call RefreshEmbeddings after training or loading")
	}
	if len(ct) == 0 {
		obsCoreMatchErrs.Inc()
		return nil, fmt.Errorf("core: empty trajectory")
	}
	// A sampled request's span arrives on ctx; the match opens a child
	// span, re-wraps the context so the hmm layer parents its stage
	// spans under it, and emits sanitize/session_init/observation
	// children itself. All span calls are nil-safe, so the untraced
	// path pays one context lookup.
	msp := obs.SpanFromContext(ctx).StartChild("match")
	defer msp.End()
	ctx = obs.ContextWithSpan(ctx, msp)
	var spanT time.Time
	if msp != nil {
		spanT = time.Now()
	}
	// Sanitize before the session precomputes per-point state: the
	// session's embeddings, attention keys, and softmax caches are all
	// indexed by trajectory position, so dropping points later (inside
	// the hmm matcher) would misalign them.
	ct, srep, err := traj.Sanitize(ct, m.Cfg.Sanitize)
	if err != nil {
		obsCoreMatchErrs.Inc()
		return nil, fmt.Errorf("core: %w", err)
	}
	if msp != nil {
		msp.ChildAt("sanitize", spanT, time.Since(spanT))
		msp.SetAttr("points", len(ct))
	}
	if srep.Dropped() > 0 {
		obsCoreSanitized.Add(int64(srep.Dropped()))
	}
	if len(ct) == 0 {
		obsCoreMatchErrs.Inc()
		return nil, fmt.Errorf("core: no valid points left after sanitization (dropped %d)", srep.Dropped())
	}
	var start time.Time
	if timed := obs.Default.Enabled(); timed {
		start = time.Now()
		defer func() { obsCoreMatchS.ObserveSince(start) }()
	}
	defer func() {
		if r := recover(); r != nil {
			obsCoreMatchErrs.Inc()
			res, err = nil, fmt.Errorf("core: match panicked (likely a model/config shape mismatch): %v", r)
		}
	}()
	if msp != nil {
		spanT = time.Now()
	}
	sess := m.newSession(ct)
	defer sess.release()
	if msp != nil {
		msp.ChildAt("session_init", spanT, time.Since(spanT))
		sess.span = msp
	}
	matcher := &hmm.Matcher{
		Net:    m.Net,
		Router: m.Router,
		Obs:    sess,
		Trans:  transAdapter{sess},
		Cfg: hmm.Config{
			K:         m.Cfg.K,
			Shortcuts: m.Cfg.Shortcuts,
			OnBreak:   m.Cfg.OnBreak,
			// Sanitization already ran above (session state must align
			// with what the matcher sees); do not re-run it inside.
			Sanitize:         traj.SanitizeOff,
			Trace:            m.Cfg.Trace,
			Parallel:         m.Cfg.Parallel,
			Explain:          m.Cfg.Explain,
			ExplainTopK:      m.Cfg.ExplainTopK,
			ExplainLowMargin: m.Cfg.ExplainLowMargin,
		},
	}
	res, err = matcher.MatchContext(ctx, ct)
	if msp != nil && sess.obsT > 0 {
		msp.ChildAt("observation", sess.obsT0,
			time.Duration(sess.obsT*float64(time.Second)))
	}
	if err != nil {
		obsCoreMatchErrs.Inc()
		return nil, err
	}
	res.Sanitize = srep
	if d := int(sess.deg.Load()); d > 0 {
		// Fold the batched-path fallbacks into the result and the
		// shared degraded counter (the hmm layer counted its own).
		res.Degraded += d
		obsCoreDegraded.Add(int64(d))
	}
	if msp != nil {
		msp.SetAttr("degraded", res.Degraded)
		msp.SetAttr("gaps", len(res.Gaps))
	}
	obsCoreMatches.Inc()
	return res, nil
}
