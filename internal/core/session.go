package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/hmm"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// Inference telemetry (internal/obs).
var (
	obsCoreMatches   = obs.Default.Counter("core.matches")
	obsCoreMatchErrs = obs.Default.Counter("core.match.errors")
	obsCoreMatchS    = obs.Default.Histogram("core.match.seconds", obs.LatencyBuckets)
	obsRoadProbHits  = obs.Default.Counter("core.roadprob.cache.hits")
	obsRoadProbMiss  = obs.Default.Counter("core.roadprob.cache.misses")
)

// session holds the per-trajectory inference state: point embeddings,
// context-aware point representations (Eq. 6), and a cache of per-road
// trajectory relevance scores (Eq. 10). It implements both
// hmm.ObservationModel and hmm.TransitionModel.
type session struct {
	m  *Model
	ct traj.CellTrajectory

	ptEmb *nn.Mat   // n×d raw point embeddings
	ctx   []*nn.Mat // per point: 1×d context-aware representation
	roadP map[roadnet.SegmentID]float64

	// obsZ caches, per point, the softmax denominator over the
	// candidate pool (Eq. 7 normalizes P_O across the candidate roads
	// of the point); obsMax the max score for stable exponentials.
	obsZ   []float64
	obsMax []float64
}

// newSession precomputes the trajectory-level state. The model must
// have frozen embeddings (RefreshEmbeddings).
func (m *Model) newSession(ct traj.CellTrajectory) *session {
	s := &session{
		m:      m,
		ct:     ct,
		ptEmb:  nn.NewMat(len(ct), m.Cfg.Dim),
		ctx:    make([]*nn.Mat, len(ct)),
		roadP:  make(map[roadnet.SegmentID]float64),
		obsZ:   make([]float64, len(ct)),
		obsMax: make([]float64, len(ct)),
	}
	for i, cp := range ct {
		copy(s.ptEmb.Row(i), m.towerEmb(cp.Tower))
	}
	for i := range ct {
		q := &nn.Mat{R: 1, C: m.Cfg.Dim, W: s.ptEmb.Row(i)}
		out, _ := m.ObsAtt.Apply(q, s.ptEmb, s.ptEmb)
		s.ctx[i] = out
	}
	return s
}

// implicitObs evaluates Eq. 7: the probability that segment sid is the
// true location of point i given the context-aware representation.
func (s *session) implicitObs(i int, sid roadnet.SegmentID) float64 {
	if s.m.Cfg.DisableImplicitObs {
		return 0.5
	}
	d := s.m.Cfg.Dim
	feat := nn.NewMat(1, 2*d)
	copy(feat.W[:d], s.m.segEmb(sid))
	copy(feat.W[d:], s.ctx[i].W)
	logits := s.m.ObsMLP.Apply(feat)
	p := nn.Softmax(logits.W)
	return p[1]
}

// obsScore evaluates the fused point-road log-odds (Eq. 8's MLP). The
// explicit distance feature is presented as a calibrated Gaussian (the
// paper batch-normalizes it; a Gaussian of the calibrated scale
// carries the same information in a shape the small fuse MLP can use
// directly, so the classical Eq. 2 behaviour is the learner's starting
// point rather than something it must rediscover).
func (s *session) obsScore(i int, sid roadnet.SegmentID, dist float64) float64 {
	feat := nn.RowVec(
		s.implicitObs(i, sid),
		s.m.gaussDist(dist),
		s.m.Graph.CoOccurrenceNorm(s.ct[i].Tower, sid),
	)
	logits := s.m.ObsFuse.Apply(feat)
	return logits.W[1] - logits.W[0]
}

// roadProb evaluates Eq. 10 with caching: the likelihood that segment
// sid belongs to this trajectory.
func (s *session) roadProb(sid roadnet.SegmentID) float64 {
	if p, ok := s.roadP[sid]; ok {
		obsRoadProbHits.Inc()
		return p
	}
	obsRoadProbMiss.Inc()
	d := s.m.Cfg.Dim
	segRow := &nn.Mat{R: 1, C: d, W: s.m.segEmb(sid)}
	xl, _ := s.m.TransAtt.Apply(segRow, s.ptEmb, s.ptEmb)
	feat := nn.NewMat(1, 2*d)
	copy(feat.W[:d], segRow.W)
	copy(feat.W[d:], xl.W)
	logits := s.m.TransMLP.Apply(feat)
	p := nn.Softmax(logits.W)[1]
	s.roadP[sid] = p
	return p
}

// transFeatures assembles the Eq. 12 input for a movement into point i
// along the given route: [implicit route relevance (Eq. 11), length
// similarity, turn similarity].
func (s *session) transFeatures(i int, route roadnet.Route) [3]float64 {
	var pRoute float64
	if s.m.Cfg.DisableImplicitTrans {
		pRoute = 0.5
	} else {
		var sum float64
		for _, sid := range route.Segs {
			sum += s.roadProb(sid)
		}
		pRoute = sum / float64(len(route.Segs))
	}
	straight := s.ct[i-1].P.Dist(s.ct[i].P)
	lenSim := math.Exp(-math.Abs(straight-route.Dist) / 500)
	var turn float64
	for j := 1; j < len(route.Segs); j++ {
		a := s.m.Net.Segment(route.Segs[j-1])
		b := s.m.Net.Segment(route.Segs[j])
		turn += geoAngleDiff(a.Bearing(), b.Bearing())
	}
	turnSim := math.Exp(-turn / math.Pi)
	return [3]float64{pRoute, lenSim, turnSim}
}

// geoAngleDiff is a tiny local wrapper to avoid importing geo for one
// function in this file's hot path.
func geoAngleDiff(a, b float64) float64 {
	d := math.Mod(math.Abs(a-b), 2*math.Pi)
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d
}

// candidatePool returns the restricted search space the learned P_O
// ranks (§IV-C "limits the candidate search space by the explicit
// features"): the PoolSize nearest segments (clipped to PoolRadius),
// plus the top co-occurring roads of the point's tower. Distance
// bounds the bulk of the space; historical co-occurrence contributes
// the far-but-relevant roads, and the shortcut structure covers points
// whose truth escapes both (Observation 1).
func (m *Model) candidatePool(ct traj.CellTrajectory, i int) []roadnet.SegmentID {
	pool := m.Net.SegmentsNear(ct[i].P, m.Cfg.PoolSize)
	// Clip the tail beyond PoolRadius (ascending distance order).
	for len(pool) > 1 && m.Net.DistTo(pool[len(pool)-1], ct[i].P) > m.Cfg.PoolRadius {
		pool = pool[:len(pool)-1]
	}
	seen := make(map[roadnet.SegmentID]bool, len(pool))
	for _, sid := range pool {
		seen[sid] = true
	}
	for _, sid := range m.Graph.TopCoRoads(ct[i].Tower, m.Cfg.CoPool) {
		if !seen[sid] {
			seen[sid] = true
			pool = append(pool, sid)
		}
	}
	return pool
}

// Candidates implements hmm.ObservationModel: the top-k pool segments
// by learned observation probability — the pool scores softmax-
// normalized per point (Eq. 7's softmax runs over the candidate roads
// of the point, which keeps P_O sharp and comparable across
// candidates) — with the nearest third by geometric distance always
// retained. The distance floor keeps the physical prior intact when
// the learned ranking is uncertain (the paper's P_O likewise folds the
// explicit distance feature into its ranking, §IV-C).
func (s *session) Candidates(ct traj.CellTrajectory, i, k int) []hmm.Candidate {
	pool := s.m.candidatePool(s.ct, i)
	cands := make([]hmm.Candidate, 0, len(pool))
	scores := make([]float64, 0, len(pool))
	for _, sid := range pool {
		c := hmm.Candidate{Seg: sid}
		c.Proj, c.Frac = s.m.Net.Project(sid, s.ct[i].P)
		c.Dist = c.Proj.Dist(s.ct[i].P)
		scores = append(scores, s.obsScore(i, sid, c.Dist))
		cands = append(cands, c)
	}
	// Across-pool softmax with cached normalizer so shortcut
	// pseudo-candidates score consistently later.
	mx := scores[0]
	for _, v := range scores[1:] {
		if v > mx {
			mx = v
		}
	}
	var z float64
	for _, v := range scores {
		z += math.Exp(v - mx)
	}
	s.obsMax[i] = mx
	s.obsZ[i] = z
	for j := range cands {
		cands[j].Obs = math.Exp(scores[j]-mx) / z
	}
	if k >= len(cands) {
		sort.Slice(cands, func(a, b int) bool { return cands[a].Obs > cands[b].Obs })
		return cands
	}
	// Mark the nearest k/3 by distance as guaranteed.
	byDist := make([]int, len(cands))
	for i := range byDist {
		byDist[i] = i
	}
	sort.Slice(byDist, func(a, b int) bool { return cands[byDist[a]].Dist < cands[byDist[b]].Dist })
	guaranteed := make(map[int]bool, k/3+1)
	for _, idx := range byDist[:k/3+1] {
		guaranteed[idx] = true
	}
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ga, gb := guaranteed[order[a]], guaranteed[order[b]]
		if ga != gb {
			return ga
		}
		if cands[order[a]].Obs != cands[order[b]].Obs {
			return cands[order[a]].Obs > cands[order[b]].Obs
		}
		return cands[order[a]].Seg < cands[order[b]].Seg
	})
	out := make([]hmm.Candidate, k)
	for i := 0; i < k; i++ {
		out[i] = cands[order[i]]
	}
	// Present in descending learned-probability order.
	sort.Slice(out, func(a, b int) bool { return out[a].Obs > out[b].Obs })
	return out
}

// Score implements hmm.ObservationModel for shortcut pseudo-candidates:
// the fused score normalized by the point's cached pool softmax.
func (s *session) Score(ct traj.CellTrajectory, i int, c *hmm.Candidate) float64 {
	sc := s.obsScore(i, c.Seg, c.Dist)
	if s.obsZ[i] == 0 {
		// Candidates was never called for this point (single-point
		// trajectories bypass transitions); fall back to the sigmoid.
		return 1 / (1 + math.Exp(-sc))
	}
	return math.Exp(sc-s.obsMax[i]) / s.obsZ[i]
}

// Score implements hmm.TransitionModel: the learned transition
// probability of Eq. 12.
func (s *session) TransScore(ct traj.CellTrajectory, i int, from, to *hmm.Candidate) (float64, bool) {
	route, ok := s.m.Router.RouteBetween(from.Pos(), to.Pos())
	if !ok || len(route.Segs) == 0 {
		return 0, false
	}
	f := s.transFeatures(i, route)
	logits := s.m.TransFuse.Apply(nn.RowVec(f[0], f[1], f[2]))
	p := nn.Softmax(logits.W)[1]
	if g := s.m.transGamma.W.W[0]; g != 1 {
		p = math.Pow(p, g)
	}
	return p, true
}

// transAdapter exposes the session's transition scoring under the
// hmm.TransitionModel method name.
type transAdapter struct{ s *session }

func (t transAdapter) Score(ct traj.CellTrajectory, i int, from, to *hmm.Candidate) (float64, bool) {
	return t.s.TransScore(ct, i, from, to)
}

// Match map-matches one cellular trajectory with the trained model.
func (m *Model) Match(ct traj.CellTrajectory) (*hmm.Result, error) {
	if m.emb == nil {
		obsCoreMatchErrs.Inc()
		return nil, fmt.Errorf("core: model has no embeddings; call RefreshEmbeddings after training or loading")
	}
	if len(ct) == 0 {
		obsCoreMatchErrs.Inc()
		return nil, fmt.Errorf("core: empty trajectory")
	}
	var start time.Time
	if timed := obs.Default.Enabled(); timed {
		start = time.Now()
		defer func() { obsCoreMatchS.ObserveSince(start) }()
	}
	sess := m.newSession(ct)
	matcher := &hmm.Matcher{
		Net:    m.Net,
		Router: m.Router,
		Obs:    sess,
		Trans:  transAdapter{sess},
		Cfg:    hmm.Config{K: m.Cfg.K, Shortcuts: m.Cfg.Shortcuts, Trace: m.Cfg.Trace},
	}
	res, err := matcher.Match(ct)
	if err != nil {
		obsCoreMatchErrs.Inc()
		return nil, err
	}
	obsCoreMatches.Inc()
	return res, nil
}
