package core

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// Training telemetry (internal/obs): per-epoch loss and wall-clock for
// both phases, surfaced as structured logs and histograms.
var (
	obsTrainEpochs  = obs.Default.Counter("train.epochs")
	obsTrainEpochS  = obs.Default.Histogram("train.epoch.seconds", obs.LatencyBuckets)
	obsTrainLoss    = obs.Default.Gauge("train.loss.milli") // last epoch mean loss ×1000
	obsTrainSeconds = obs.Default.Histogram("train.total.seconds", obs.LatencyBuckets)
)

// Train builds and trains an LHMM on the dataset's training split
// (§IV-D "Training Process"): phase 1 trains the encoder and the
// implicit correlation networks by road classification; phase 2
// fine-tunes the fuse MLPs that blend implicit and explicit features.
func Train(ds *traj.Dataset, cfg Config) (*Model, error) {
	start := time.Now()
	trips := ds.TrainTrips()
	if len(trips) == 0 {
		return nil, fmt.Errorf("core: no training trips")
	}
	m, err := New(ds, trips, cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(m.Cfg.Seed + 1))

	samples := make([]*tripSample, 0, len(trips))
	for _, tr := range trips {
		if s := m.prepareSample(tr); s != nil {
			samples = append(samples, s)
		}
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: no usable training trips")
	}
	obs.Logger().Info("core: training started",
		"trips", len(trips), "usable", len(samples),
		"dim", m.Cfg.Dim, "epochs", m.Cfg.Epochs, "fuse_epochs", m.Cfg.FuseEpochs)

	m.calibrateDistScale(samples)
	m.pretrainFuse(rng)
	if err := m.trainImplicit(samples, rng); err != nil {
		return nil, err
	}
	m.RefreshEmbeddings()
	if err := m.trainFuse(samples, rng); err != nil {
		return nil, err
	}
	m.calibrateGamma(ds)
	obsTrainSeconds.ObserveSince(start)
	obs.Logger().Info("core: training finished",
		"seconds", time.Since(start).Seconds(),
		"dist_scale", m.distScale.W.W[0], "gamma", m.transGamma.W.W[0])
	return m, nil
}

// calibrateGamma selects the transition-sharpening exponent on the
// validation split: the fuse net's probabilities are flatter than a
// fully-trained learner's, and a sharper P_T both punishes detours and
// lets the shortcut optimization (Algorithm 2) outscore paths through
// noisy points. Falls back to a training subset when the validation
// split is empty.
func (m *Model) calibrateGamma(ds *traj.Dataset) {
	trips := ds.ValidTrips()
	if len(trips) == 0 {
		trips = ds.TrainTrips()
	}
	if len(trips) > 16 {
		trips = trips[:16]
	}
	if len(trips) == 0 {
		return
	}
	bestGamma, bestScore := 1.0, math.Inf(1)
	for _, gamma := range []float64{1, 2, 4, 8} {
		m.transGamma.W.W[0] = gamma
		var cmf float64
		var n int
		for _, tr := range trips {
			res, err := m.Match(tr.Cell)
			if err != nil {
				continue
			}
			pm := metrics.EvalPath(m.Net, res.Path, tr.Path, 50)
			cmf += pm.CMF + 0.3*pm.RMF // corridor accuracy with a detour penalty
			n++
		}
		if n == 0 {
			continue
		}
		if score := cmf / float64(n); score < bestScore {
			bestScore, bestGamma = score, gamma
		}
	}
	m.transGamma.W.W[0] = bestGamma
	obs.Logger().Debug("core: transition gamma calibrated",
		"gamma", bestGamma, "validation_trips", len(trips))
}

// tripSample is the preprocessed training view of one trip.
type tripSample struct {
	tr      *traj.Trip
	pathSet map[roadnet.SegmentID]bool
	// pointPos assigns each ground-truth path segment to the trajectory
	// point whose tower is closest to it — the positive (point, road)
	// pairs of the observation classification task.
	pointPos [][]roadnet.SegmentID
	// negPool holds, per point, nearby segments off the path (negative
	// samples).
	negPool [][]roadnet.SegmentID
}

// prepareSample builds the training view; trips with no usable points
// return nil.
func (m *Model) prepareSample(tr *traj.Trip) *tripSample {
	if len(tr.Cell) < 2 || len(tr.Path) == 0 {
		return nil
	}
	s := &tripSample{
		tr:       tr,
		pathSet:  tr.PathSet(),
		pointPos: make([][]roadnet.SegmentID, len(tr.Cell)),
		negPool:  make([][]roadnet.SegmentID, len(tr.Cell)),
	}
	for _, sid := range tr.Path {
		mid := m.Net.Segment(sid).Midpoint()
		best, bestD := -1, math.Inf(1)
		for i, cp := range tr.Cell {
			if d := m.Cells.Tower(cp.Tower).P.DistSq(mid); d < bestD {
				best, bestD = i, d
			}
		}
		if best >= 0 {
			s.pointPos[best] = append(s.pointPos[best], sid)
		}
	}
	// Negatives come from the same pool inference scores, so the
	// classifier sees the full distance distribution it must rank.
	for i := range tr.Cell {
		for _, sid := range m.candidatePool(tr.Cell, i) {
			if !s.pathSet[sid] {
				s.negPool[i] = append(s.negPool[i], sid)
			}
		}
	}
	return s
}

// calibrateDistScale sets the distance normalization from the mean
// point-to-positive-road distance across the training data.
func (m *Model) calibrateDistScale(samples []*tripSample) {
	var sum float64
	var n int
	for _, s := range samples {
		for i, pos := range s.pointPos {
			p := s.tr.Cell[i].P
			for _, sid := range pos {
				sum += m.Net.DistTo(sid, p)
				n++
			}
		}
	}
	if n > 0 {
		m.distScale.W.W[0] = math.Max(200, sum/float64(n))
	}
}

// pair is one labeled (point, road) classification example.
type pair struct {
	point int
	seg   roadnet.SegmentID
	label int
}

// samplePairs draws balanced positive/negative pairs for one trip.
func (s *tripSample) samplePairs(rng *rand.Rand, maxPairs, negPerPos int) []pair {
	var out []pair
	posBudget := maxPairs / (1 + negPerPos)
	if posBudget < 1 {
		posBudget = 1
	}
	// Points visited in random order for coverage.
	order := rng.Perm(len(s.tr.Cell))
	for _, i := range order {
		if len(out) >= posBudget*(1+negPerPos) {
			break
		}
		if len(s.pointPos[i]) == 0 || len(s.negPool[i]) == 0 {
			continue
		}
		posSeg := s.pointPos[i][rng.Intn(len(s.pointPos[i]))]
		out = append(out, pair{point: i, seg: posSeg, label: 1})
		for k := 0; k < negPerPos; k++ {
			negSeg := s.negPool[i][rng.Intn(len(s.negPool[i]))]
			out = append(out, pair{point: i, seg: negSeg, label: 0})
		}
	}
	return out
}

// trainImplicit runs phase 1: joint training of the encoder, the
// context attention networks, and the implicit correlation MLPs via
// binary road classification with undersampled negatives and label
// smoothing.
func (m *Model) trainImplicit(samples []*tripSample, rng *rand.Rand) error {
	opt := nn.NewAdam()
	opt.LR = m.Cfg.LR
	opt.WeightDecay = m.Cfg.WeightDecay
	params := m.implicitParams()

	for epoch := 0; epoch < m.Cfg.Epochs; epoch++ {
		epochStart := time.Now()
		var lossSum float64
		var lossN int
		perm := rng.Perm(len(samples))
		for at := 0; at < len(perm); at += m.Cfg.BatchTrips {
			end := at + m.Cfg.BatchTrips
			if end > len(perm) {
				end = len(perm)
			}
			tp := nn.NewTape()
			H := m.Enc.Forward(tp, m.Graph)
			var losses []*nn.T
			for _, si := range perm[at:end] {
				s := samples[si]
				if !m.Cfg.DisableImplicitObs {
					if l := m.obsLossForTrip(tp, H, s, rng); l != nil {
						losses = append(losses, l)
					}
				}
				if !m.Cfg.DisableImplicitTrans {
					if l := m.transLossForTrip(tp, H, s, rng); l != nil {
						losses = append(losses, l)
					}
				}
			}
			if len(losses) == 0 {
				continue
			}
			loss := losses[0]
			for _, l := range losses[1:] {
				loss = tp.Add(loss, l)
			}
			loss = tp.Scale(loss, 1/float64(len(losses)))
			if err := tp.Backward(loss); err != nil {
				return fmt.Errorf("core: phase 1: %w", err)
			}
			lossSum += loss.Val.W[0] * float64(len(losses))
			lossN += len(losses)
			nn.ClipGradNorm(params, 5)
			opt.Step(params)
		}
		meanLoss := math.NaN()
		if lossN > 0 {
			meanLoss = lossSum / float64(lossN)
			obsTrainLoss.Set(int64(meanLoss * 1000))
		}
		obsTrainEpochs.Inc()
		obsTrainEpochS.ObserveSince(epochStart)
		obs.Logger().Info("core: phase 1 epoch",
			"epoch", epoch+1, "of", m.Cfg.Epochs,
			"loss", meanLoss, "seconds", time.Since(epochStart).Seconds())
	}
	return nil
}

// obsLossForTrip builds the observation classification loss of one trip
// on the tape: Eq. 6 context representations feed Eq. 7 logits.
func (m *Model) obsLossForTrip(tp *nn.Tape, H *nn.T, s *tripSample, rng *rand.Rand) *nn.T {
	pairs := s.samplePairs(rng, m.Cfg.PairsPerTrip, m.Cfg.NegPerPos)
	if len(pairs) == 0 {
		return nil
	}
	ptIdx := make([]int, len(s.tr.Cell))
	for i, cp := range s.tr.Cell {
		ptIdx[i] = m.Graph.TowerNode(cp.Tower)
	}
	ptEmb := tp.Gather(H, ptIdx)

	// Context representation per distinct point in the sample.
	ctx := make(map[int]*nn.T)
	for _, pr := range pairs {
		if _, ok := ctx[pr.point]; ok {
			continue
		}
		q := tp.Gather(ptEmb, []int{pr.point})
		out, _ := m.ObsAtt.Forward(tp, q, ptEmb, ptEmb)
		ctx[pr.point] = out
	}
	rows := make([]*nn.T, len(pairs))
	labels := make([]int, len(pairs))
	for i, pr := range pairs {
		segT := tp.Gather(H, []int{m.Graph.SegNode(pr.seg)})
		rows[i] = tp.ConcatCols(segT, ctx[pr.point])
		labels[i] = pr.label
	}
	logits := m.ObsMLP.Forward(tp, tp.StackRows(rows))
	target := nn.SmoothedTargets(len(pairs), 2, labels, m.Cfg.LabelSmooth)
	return tp.CrossEntropy(logits, target)
}

// transLossForTrip builds the trajectory-road classification loss of
// one trip: Eq. 9 trajectory representations feed Eq. 10 logits.
func (m *Model) transLossForTrip(tp *nn.Tape, H *nn.T, s *tripSample, rng *rand.Rand) *nn.T {
	// Positive roads: on the path. Negative roads: from the pooled
	// negatives of random points.
	posBudget := m.Cfg.PairsPerTrip / (1 + m.Cfg.NegPerPos)
	if posBudget < 1 {
		posBudget = 1
	}
	type roadEx struct {
		seg   roadnet.SegmentID
		label int
	}
	var exs []roadEx
	for k := 0; k < posBudget; k++ {
		exs = append(exs, roadEx{s.tr.Path[rng.Intn(len(s.tr.Path))], 1})
		for j := 0; j < m.Cfg.NegPerPos; j++ {
			i := rng.Intn(len(s.negPool))
			if len(s.negPool[i]) == 0 {
				continue
			}
			exs = append(exs, roadEx{s.negPool[i][rng.Intn(len(s.negPool[i]))], 0})
		}
	}
	if len(exs) == 0 {
		return nil
	}
	ptIdx := make([]int, len(s.tr.Cell))
	for i, cp := range s.tr.Cell {
		ptIdx[i] = m.Graph.TowerNode(cp.Tower)
	}
	ptEmb := tp.Gather(H, ptIdx)

	rows := make([]*nn.T, len(exs))
	labels := make([]int, len(exs))
	for i, ex := range exs {
		segT := tp.Gather(H, []int{m.Graph.SegNode(ex.seg)})
		xl, _ := m.TransAtt.Forward(tp, segT, ptEmb, ptEmb)
		rows[i] = tp.ConcatCols(segT, xl)
		labels[i] = ex.label
	}
	logits := m.TransMLP.Forward(tp, tp.StackRows(rows))
	target := nn.SmoothedTargets(len(exs), 2, labels, m.Cfg.LabelSmooth)
	return tp.CrossEntropy(logits, target)
}

// pretrainFuse initializes both fuse MLPs (Eqs. 8 and 12) to pass
// through their explicit-feature channel: with inputs [implicit,
// explicit, extra], the output starts as the explicit similarity
// itself. This makes the untrained learners behave like the classical
// distance models (Eqs. 2–3), so fine-tuning on real labels can only
// refine from a physically sane baseline — important at small training
// scales where the fuse nets would otherwise start arbitrary.
func (m *Model) pretrainFuse(rng *rand.Rand) {
	opt := nn.NewAdam()
	opt.LR = 0.01
	opt.WeightDecay = 0
	for _, fuse := range []*nn.MLP{m.ObsFuse, m.TransFuse} {
		params := fuse.Params()
		for step := 0; step < 300; step++ {
			const batch = 32
			feats := nn.NewMat(batch, 3)
			target := nn.NewMat(batch, 2)
			for i := 0; i < batch; i++ {
				f := [3]float64{rng.Float64(), rng.Float64(), rng.Float64()}
				copy(feats.Row(i), f[:])
				target.Set(i, 0, 1-f[1])
				target.Set(i, 1, f[1])
			}
			tp := nn.NewTape()
			loss := tp.CrossEntropy(fuse.Forward(tp, tp.Const(feats)), target)
			if err := tp.Backward(loss); err != nil {
				// Pretraining failure is non-fatal; phase 2 still runs.
				break
			}
			opt.Step(params)
		}
	}
}

// trainFuse runs phase 2: with embeddings and implicit networks frozen,
// fine-tune the fuse MLPs (Eqs. 8 and 12) that blend the implicit
// probability with the explicit features.
func (m *Model) trainFuse(samples []*tripSample, rng *rand.Rand) error {
	opt := nn.NewAdam()
	opt.LR = m.Cfg.LR
	opt.WeightDecay = m.Cfg.WeightDecay

	obsParams := m.ObsFuse.Params()
	transParams := m.TransFuse.Params()

	for epoch := 0; epoch < m.Cfg.FuseEpochs; epoch++ {
		epochStart := time.Now()
		var lossSum float64
		var lossN int
		perm := rng.Perm(len(samples))
		for _, si := range perm {
			s := samples[si]
			sess := m.newSession(s.tr.Cell)

			if feats, labels := m.obsFuseExamples(s, sess, rng); len(labels) > 0 {
				tp := nn.NewTape()
				logits := m.ObsFuse.Forward(tp, tp.Const(feats))
				target := nn.SmoothedTargets(len(labels), 2, labels, m.Cfg.LabelSmooth)
				loss := tp.CrossEntropy(logits, target)
				if err := tp.Backward(loss); err != nil {
					return fmt.Errorf("core: phase 2 obs: %w", err)
				}
				lossSum += loss.Val.W[0]
				lossN++
				opt.Step(obsParams)
			}

			if feats, targets := m.transFuseExamples(s, sess, rng); targets != nil {
				tp := nn.NewTape()
				logits := m.TransFuse.Forward(tp, tp.Const(feats))
				loss := tp.CrossEntropy(logits, targets)
				if err := tp.Backward(loss); err != nil {
					return fmt.Errorf("core: phase 2 trans: %w", err)
				}
				lossSum += loss.Val.W[0]
				lossN++
				opt.Step(transParams)
			}
			sess.release()
		}
		meanLoss := math.NaN()
		if lossN > 0 {
			meanLoss = lossSum / float64(lossN)
		}
		obsTrainEpochs.Inc()
		obsTrainEpochS.ObserveSince(epochStart)
		obs.Logger().Info("core: phase 2 epoch",
			"epoch", epoch+1, "of", m.Cfg.FuseEpochs,
			"loss", meanLoss, "seconds", time.Since(epochStart).Seconds())
	}
	return nil
}

// obsFuseExamples builds the phase-2 observation examples of one trip:
// features [implicit prob, normalized distance, co-occurrence] with
// on-path labels, balanced by undersampling.
func (m *Model) obsFuseExamples(s *tripSample, sess *session, rng *rand.Rand) (*nn.Mat, []int) {
	type ex struct {
		f     [3]float64
		label int
	}
	var exs []ex
	posBudget := m.Cfg.PairsPerTrip / 2
	if posBudget < 1 {
		posBudget = 1
	}
	order := rng.Perm(len(s.tr.Cell))
	var posCount int
	for _, i := range order {
		if posCount >= posBudget {
			break
		}
		if len(s.pointPos[i]) == 0 || len(s.negPool[i]) == 0 {
			continue
		}
		posCount++
		mk := func(sid roadnet.SegmentID, label int) ex {
			d := m.Net.DistTo(sid, s.tr.Cell[i].P)
			return ex{
				f: [3]float64{
					sess.implicitObs(i, sid),
					m.gaussDist(d),
					m.Graph.CoOccurrenceNorm(s.tr.Cell[i].Tower, sid),
				},
				label: label,
			}
		}
		exs = append(exs, mk(s.pointPos[i][rng.Intn(len(s.pointPos[i]))], 1))
		for k := 0; k < m.Cfg.NegPerPos; k++ {
			exs = append(exs, mk(s.negPool[i][rng.Intn(len(s.negPool[i]))], 0))
		}
	}
	if len(exs) == 0 {
		return nil, nil
	}
	feats := nn.NewMat(len(exs), 3)
	labels := make([]int, len(exs))
	for i, e := range exs {
		copy(feats.Row(i), e.f[:])
		labels[i] = e.label
	}
	return feats, labels
}

// transFuseExamples builds the phase-2 transition examples: candidate
// routes between consecutive points with soft targets equal to the
// fraction of route segments on the ground-truth path ("the ratio of
// traveled roads to the moving path", §IV-D).
//
// Pairs are sampled from the same distribution inference sees — the
// top candidates by learned observation probability — plus one
// injected ground-truth pair per step, so the fuse net learns to
// separate the exact routes Viterbi will compare rather than arbitrary
// ones.
func (m *Model) transFuseExamples(s *tripSample, sess *session, rng *rand.Rand) (*nn.Mat, *nn.Mat) {
	type ex struct {
		f     [3]float64
		ratio float64
	}
	var exs []ex
	if len(s.tr.Cell) < 2 {
		return nil, nil
	}
	addRoute := func(i int, from, to roadnet.PointOnRoad) {
		route, ok := m.Router.RouteBetween(from, to)
		if !ok || len(route.Segs) == 0 {
			return
		}
		var onPath int
		for _, sid := range route.Segs {
			if s.pathSet[sid] {
				onPath++
			}
		}
		ratio := float64(onPath) / float64(len(route.Segs))
		straight := s.tr.Cell[i-1].P.Dist(s.tr.Cell[i].P)
		exs = append(exs, ex{f: sess.transFeatures(sess.ws, i, route, straight), ratio: ratio})
	}
	candK := m.Cfg.K / 3
	if candK < 4 {
		candK = 4
	}
	budget := m.Cfg.PairsPerTrip
	if budget < 2 {
		budget = 2
	}
	for k := 0; k < budget; k++ {
		i := 1 + rng.Intn(len(s.tr.Cell)-1)
		fromCands := sess.Candidates(s.tr.Cell, i-1, candK)
		toCands := sess.Candidates(s.tr.Cell, i, candK)
		if len(fromCands) == 0 || len(toCands) == 0 {
			continue
		}
		fc := fromCands[rng.Intn(len(fromCands))]
		tc := toCands[rng.Intn(len(toCands))]
		addRoute(i, fc.Pos(), tc.Pos())
		// Inject the ground-truth movement for this step when both
		// points have positives: route between on-path roads is the
		// clean ratio≈1 example.
		if len(s.pointPos[i-1]) > 0 && len(s.pointPos[i]) > 0 {
			gFrom := s.pointPos[i-1][rng.Intn(len(s.pointPos[i-1]))]
			gTo := s.pointPos[i][rng.Intn(len(s.pointPos[i]))]
			_, ff := m.Net.Project(gFrom, s.tr.Cell[i-1].P)
			_, tf := m.Net.Project(gTo, s.tr.Cell[i].P)
			addRoute(i,
				roadnet.PointOnRoad{Seg: gFrom, Frac: ff},
				roadnet.PointOnRoad{Seg: gTo, Frac: tf},
			)
		}
	}
	if len(exs) == 0 {
		return nil, nil
	}
	feats := nn.NewMat(len(exs), 3)
	targets := nn.NewMat(len(exs), 2)
	for i, e := range exs {
		copy(feats.Row(i), e.f[:])
		targets.Set(i, 0, 1-e.ratio)
		targets.Set(i, 1, e.ratio)
	}
	return feats, targets
}
