package core

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/cellular"
	"repro/internal/mrg"
	"repro/internal/nn"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// MLPExecutor runs batched MLP forward passes on behalf of a model.
// The serving layer installs a cross-request micro-batching scheduler
// here (internal/sched) so concurrent requests share matrix products;
// offline matching leaves it nil and scores directly. Implementations
// must write exactly x.R×mlp.OutDim() float64s into out before
// returning and must be safe for concurrent use. In float64 mode the
// written rows must be bit-identical to mlp.ApplyWS over the same
// rows — MLP application is row-independent, so any batching that
// preserves per-row accumulation order satisfies this.
type MLPExecutor interface {
	ApplyMLP(mlp *nn.MLP, x, out *nn.Mat)
}

// Model is a trained LHMM: the multi-relational graph and encoder, the
// observation and transition probability learners, and frozen node
// embeddings for inference.
type Model struct {
	Cfg Config

	// Exec, when non-nil, receives every batched MLP forward pass of
	// the scoring hot path (observation pool scoring and the k×k
	// transition fan-out). Shallow model copies share it, so a served
	// request pinned to one model snapshot keeps its executor. Nil
	// scores inline — the offline default.
	Exec MLPExecutor

	Net    *roadnet.Network
	Cells  *cellular.Net
	Router *roadnet.Router
	Graph  *mrg.Graph

	Enc *mrg.Encoder

	// Observation learner (§IV-C).
	ObsAtt  *nn.Attention // Eq. 6: context-aware point representation
	ObsMLP  *nn.MLP       // Eq. 7: implicit point-road correlation (2 classes)
	ObsFuse *nn.MLP       // Eq. 8: fuse implicit + explicit (2 classes)

	// Transition learner (§IV-D).
	TransAtt  *nn.Attention // Eq. 9: per-road trajectory representation
	TransMLP  *nn.MLP       // Eq. 10: road-in-trajectory likelihood (2 classes)
	TransFuse *nn.MLP       // Eq. 12: fuse implicit + explicit (2 classes)

	// emb holds the frozen |V|×Dim node embeddings computed after
	// training; refreshed by RefreshEmbeddings.
	emb *nn.Mat

	// distScale normalizes the explicit distance feature; calibrated
	// from the training data (mean point-to-positive-road distance) and
	// stored as a 1×1 parameter so Save/Load round-trips it.
	distScale *nn.Param

	// transGamma sharpens the learned transition probability
	// (P_T^γ): at repository data scales the fuse net's outputs are
	// flatter than the paper's fully-trained learner, so γ is selected
	// on the validation split (the paper likewise tunes
	// hyper-parameters on validation, §V-A2). Stored as a parameter so
	// Save/Load round-trips it.
	transGamma *nn.Param
}

// New builds an untrained model over the dataset's networks using the
// given training trips for graph construction.
func New(ds *traj.Dataset, trainTrips []*traj.Trip, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	graph, err := mrg.BuildGraph(ds.Net, ds.Cells, trainTrips)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	enc, err := mrg.NewEncoder(graph, cfg.EncoderMode, cfg.Dim, cfg.Rounds, rng)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	d, h := cfg.Dim, cfg.AttDim
	m := &Model{
		Cfg:        cfg,
		Net:        ds.Net,
		Cells:      ds.Cells,
		Router:     roadnet.NewRouter(ds.Net),
		Graph:      graph,
		Enc:        enc,
		ObsAtt:     nn.NewAttention("obs.att", d, h, rng),
		ObsMLP:     nn.NewMLP("obs.mlp", []int{2 * d, d, 2}, nn.ActReLU, rng),
		ObsFuse:    nn.NewMLP("obs.fuse", []int{3, 8, 2}, nn.ActReLU, rng),
		TransAtt:   nn.NewAttention("trans.att", d, h, rng),
		TransMLP:   nn.NewMLP("trans.mlp", []int{2 * d, d, 2}, nn.ActReLU, rng),
		TransFuse:  nn.NewMLP("trans.fuse", []int{3, 8, 2}, nn.ActReLU, rng),
		distScale:  nn.NewZeroParam("meta.distScale", 1, 1),
		transGamma: nn.NewZeroParam("meta.transGamma", 1, 1),
	}
	m.distScale.W.W[0] = 1000
	m.transGamma.W.W[0] = 1
	return m, nil
}

// implicitParams returns the parameters trained in phase 1.
func (m *Model) implicitParams() []*nn.Param {
	ps := m.Enc.Params()
	ps = append(ps, m.ObsAtt.Params()...)
	ps = append(ps, m.ObsMLP.Params()...)
	ps = append(ps, m.TransAtt.Params()...)
	ps = append(ps, m.TransMLP.Params()...)
	return ps
}

// fuseParams returns the parameters fine-tuned in phase 2.
func (m *Model) fuseParams() []*nn.Param {
	ps := append([]*nn.Param(nil), m.ObsFuse.Params()...)
	ps = append(ps, m.TransFuse.Params()...)
	return ps
}

// AllParams returns every trainable parameter plus serialized
// calibration state.
func (m *Model) AllParams() []*nn.Param {
	ps := append(m.implicitParams(), m.fuseParams()...)
	return append(ps, m.distScale, m.transGamma)
}

// RefreshEmbeddings recomputes and freezes the node embeddings from the
// current encoder weights. Call after training and before matching.
func (m *Model) RefreshEmbeddings() {
	tp := nn.NewTape()
	m.emb = m.Enc.Forward(tp, m.Graph).Val.Clone()
}

// Embeddings returns the frozen |V|×Dim embedding matrix (nil before
// RefreshEmbeddings).
func (m *Model) Embeddings() *nn.Mat { return m.emb }

// towerEmb returns the frozen embedding row of a tower.
func (m *Model) towerEmb(id cellular.TowerID) []float64 {
	return m.emb.Row(m.Graph.TowerNode(id))
}

// segEmb returns the frozen embedding row of a segment.
func (m *Model) segEmb(id roadnet.SegmentID) []float64 {
	return m.emb.Row(m.Graph.SegNode(id))
}

// applyMLP routes a batched MLP forward pass through the installed
// executor (cross-request micro-batching) or, with none installed,
// straight to the inline workspace path. The returned matrix aliases
// ws either way and is invalidated by ws.Reset.
func (m *Model) applyMLP(ws *nn.Workspace, mlp *nn.MLP, x *nn.Mat) *nn.Mat {
	if m.Exec == nil {
		return mlp.ApplyWS(ws, x)
	}
	out := ws.Take(x.R, mlp.OutDim())
	m.Exec.ApplyMLP(mlp, x, out)
	return out
}

// gaussDist maps a point-to-road distance to the calibrated Gaussian
// explicit feature of Eq. 8 (σ = the calibrated mean positive-road
// distance).
func (m *Model) gaussDist(d float64) float64 {
	z := d / m.distScale.W.W[0]
	return math.Exp(-0.5 * z * z)
}

// Save writes all model weights.
func (m *Model) Save(w io.Writer) error {
	return nn.SaveParams(w, m.AllParams())
}

// Load restores model weights written by Save into a model constructed
// with the same configuration and dataset, then refreshes embeddings.
func (m *Model) Load(r io.Reader) error {
	if err := nn.LoadParams(r, m.AllParams()); err != nil {
		return err
	}
	m.RefreshEmbeddings()
	return nil
}
