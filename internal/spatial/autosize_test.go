package spatial

import (
	"math/rand"
	"testing"

	"repro/internal/geo"
)

func TestAutoCellSize(t *testing.T) {
	big := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(40000, 40000)}
	cases := []struct {
		name      string
		bounds    geo.Rect
		items     int
		wantAtMin bool // expect the minCell floor
	}{
		{"empty", big, 0, true},
		{"degenerate bounds", geo.Rect{Min: geo.Pt(3, 3), Max: geo.Pt(3, 3)}, 100, true},
		{"dense", big, 1 << 23, true},
		{"metro", big, 100000, false},
		{"sparse", big, 16, false},
	}
	for _, c := range cases {
		cell := AutoCellSize(c.bounds, c.items, 0, 0)
		maxDim := c.bounds.Width()
		if c.bounds.Height() > maxDim {
			maxDim = c.bounds.Height()
		}
		if cell < 50 || (maxDim > 0 && cell > maxDim) {
			t.Errorf("%s: cell %v outside [50, max(dim, 50)]", c.name, cell)
		}
		if c.wantAtMin && cell != 50 {
			t.Errorf("%s: cell = %v, want the 50 m floor", c.name, cell)
		}
		if !c.wantAtMin && cell == 50 {
			t.Errorf("%s: cell hit the floor; density sizing had no effect", c.name)
		}
	}
	// Density invariance: scaling items 4x halves the cell.
	c1 := AutoCellSize(big, 10000, 4, 0)
	c2 := AutoCellSize(big, 40000, 4, 0)
	if got, want := c1/c2, 2.0; got < want-0.01 || got > want+0.01 {
		t.Errorf("cell ratio for 4x items = %v, want 2", got)
	}
}

// Query results are cell-size independent — only cost may change.
func TestAutoCellSameResultsAsFixed(t *testing.T) {
	bounds := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(20000, 20000)}
	rng := rand.New(rand.NewSource(9))
	auto := NewGrid(bounds, AutoCellSize(bounds, 4000, 0, 0))
	fixed := NewGrid(bounds, bounds.Width()/256)
	for i := 0; i < 4000; i++ {
		p := geo.Pt(rng.Float64()*20000, rng.Float64()*20000)
		q := geo.Pt(p.X+rng.Float64()*120-60, p.Y+rng.Float64()*120-60)
		auto.Insert(SegmentItem{S: geo.Segment{A: p, B: q}})
		fixed.Insert(SegmentItem{S: geo.Segment{A: p, B: q}})
	}
	for trial := 0; trial < 200; trial++ {
		p := geo.Pt(rng.Float64()*20000, rng.Float64()*20000)
		a, f := auto.Nearest(p, 5), fixed.Nearest(p, 5)
		if len(a) != len(f) {
			t.Fatalf("Nearest count mismatch at %v: %d vs %d", p, len(a), len(f))
		}
		for i := range a {
			if a[i] != f[i] {
				t.Fatalf("Nearest mismatch at %v: %v vs %v", p, a, f)
			}
		}
		aw, fw := auto.Within(p, 300), fixed.Within(p, 300)
		if len(aw) != len(fw) {
			t.Fatalf("Within count mismatch at %v: %d vs %d", p, len(aw), len(fw))
		}
	}
}

// benchGrid builds a metro-density segment soup: ~100k short segments
// over a 40 km extent, the regime where cell sizing starts to matter.
func benchGrid(cell float64) (*Grid, *rand.Rand) {
	bounds := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(40000, 40000)}
	g := NewGrid(bounds, cell)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100000; i++ {
		p := geo.Pt(rng.Float64()*40000, rng.Float64()*40000)
		q := geo.Pt(p.X+rng.Float64()*200-100, p.Y+rng.Float64()*200-100)
		g.Insert(SegmentItem{S: geo.Segment{A: p, B: q}})
	}
	return g, rand.New(rand.NewSource(13))
}

func benchmarkNearest(b *testing.B, cell float64) {
	g, rng := benchGrid(cell)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := geo.Pt(rng.Float64()*40000, rng.Float64()*40000)
		g.Nearest(p, 30) // k matches the matcher's candidate pool
	}
}

// The fixed baseline is the pre-auto sizing rule (bounds/256
// regardless of density); the auto variant sizes cells from item
// density. Compare with: go test -bench Nearest ./internal/spatial/
func BenchmarkNearestFixedCell(b *testing.B) {
	benchmarkNearest(b, 40000.0/256)
}

func BenchmarkNearestAutoCell(b *testing.B) {
	bounds := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(40000, 40000)}
	benchmarkNearest(b, AutoCellSize(bounds, 100000, 0, 0))
}
