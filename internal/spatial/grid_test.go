package spatial

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geo"
)

func buildPointGrid(t *testing.T, pts []geo.Point, cell float64) *Grid {
	t.Helper()
	bounds := geo.Rect{Min: geo.Pt(-1000, -1000), Max: geo.Pt(1000, 1000)}
	g := NewGrid(bounds, cell)
	for _, p := range pts {
		g.Insert(PointItem{p})
	}
	return g
}

func TestNewGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGrid with zero cell size did not panic")
		}
	}()
	NewGrid(geo.Rect{}, 0)
}

func TestWithin(t *testing.T) {
	pts := []geo.Point{geo.Pt(0, 0), geo.Pt(10, 0), geo.Pt(0, 50), geo.Pt(200, 200)}
	g := buildPointGrid(t, pts, 25)
	got := g.Within(geo.Pt(0, 0), 60)
	want := []int{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("Within = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Within = %v, want %v (sorted by distance)", got, want)
		}
	}
	if got := g.Within(geo.Pt(500, 500), 10); len(got) != 0 {
		t.Errorf("empty Within = %v", got)
	}
}

func TestNearest(t *testing.T) {
	pts := []geo.Point{geo.Pt(0, 0), geo.Pt(5, 0), geo.Pt(100, 0), geo.Pt(-300, 0)}
	g := buildPointGrid(t, pts, 25)
	got := g.Nearest(geo.Pt(1, 0), 3)
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nearest = %v, want %v", got, want)
		}
	}
	// k larger than item count returns all items.
	if got := g.Nearest(geo.Pt(0, 0), 99); len(got) != 4 {
		t.Errorf("Nearest(k=99) returned %d items, want 4", len(got))
	}
	if got := g.Nearest(geo.Pt(0, 0), 0); got != nil {
		t.Errorf("Nearest(k=0) = %v, want nil", got)
	}
	if got := NewGrid(geo.RectAround(geo.Pt(0, 0), 10), 5).Nearest(geo.Pt(0, 0), 3); got != nil {
		t.Errorf("Nearest on empty grid = %v, want nil", got)
	}
}

// Property: Nearest agrees with brute force on random point sets.
func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Pt(rng.Float64()*2000-1000, rng.Float64()*2000-1000)
		}
		g := buildPointGrid(t, pts, 50+rng.Float64()*200)
		q := geo.Pt(rng.Float64()*2000-1000, rng.Float64()*2000-1000)
		k := 1 + rng.Intn(10)

		got := g.Nearest(q, k)

		type hit struct {
			id int
			d  float64
		}
		brute := make([]hit, n)
		for i, p := range pts {
			brute[i] = hit{i, p.Dist(q)}
		}
		sort.Slice(brute, func(i, j int) bool { return brute[i].d < brute[j].d })
		wantK := k
		if wantK > n {
			wantK = n
		}
		if len(got) != wantK {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), wantK)
		}
		for i := 0; i < wantK; i++ {
			// Compare by distance (ids may tie).
			gd := pts[got[i]].Dist(q)
			if math.Abs(gd-brute[i].d) > 1e-9 {
				t.Fatalf("trial %d: rank %d distance %v, brute force %v", trial, i, gd, brute[i].d)
			}
		}
	}
}

// Property: Within agrees with brute force.
func TestWithinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(150)
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Pt(rng.Float64()*2000-1000, rng.Float64()*2000-1000)
		}
		g := buildPointGrid(t, pts, 30+rng.Float64()*300)
		q := geo.Pt(rng.Float64()*2000-1000, rng.Float64()*2000-1000)
		radius := rng.Float64() * 500

		got := g.Within(q, radius)
		want := map[int]bool{}
		for i, p := range pts {
			if p.Dist(q) <= radius {
				want[i] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: Within found %d, brute force %d", trial, len(got), len(want))
		}
		for _, id := range got {
			if !want[id] {
				t.Fatalf("trial %d: Within returned %d which is outside radius", trial, id)
			}
		}
		for i := 1; i < len(got); i++ {
			if pts[got[i-1]].Dist(q) > pts[got[i]].Dist(q)+1e-12 {
				t.Fatalf("trial %d: Within results not distance-sorted", trial)
			}
		}
	}
}

func TestSegmentItems(t *testing.T) {
	bounds := geo.RectAround(geo.Pt(0, 0), 500)
	g := NewGrid(bounds, 50)
	// A long horizontal segment spanning many cells.
	id := g.Insert(SegmentItem{geo.Segment{A: geo.Pt(-400, 0), B: geo.Pt(400, 0)}})
	g.Insert(SegmentItem{geo.Segment{A: geo.Pt(0, 300), B: geo.Pt(10, 300)}})

	// The long segment must be found when querying near its middle,
	// even though its endpoints are far away.
	got := g.Within(geo.Pt(3, 20), 25)
	if len(got) != 1 || got[0] != id {
		t.Fatalf("Within near segment middle = %v, want [%d]", got, id)
	}
	near := g.Nearest(geo.Pt(0, 100), 1)
	if len(near) != 1 || near[0] != id {
		t.Fatalf("Nearest = %v, want [%d]", near, id)
	}
}

func TestInRect(t *testing.T) {
	bounds := geo.RectAround(geo.Pt(0, 0), 500)
	g := NewGrid(bounds, 50)
	a := g.Insert(SegmentItem{geo.Segment{A: geo.Pt(0, 0), B: geo.Pt(100, 0)}})
	b := g.Insert(PointItem{geo.Pt(200, 200)})
	g.Insert(PointItem{geo.Pt(-400, -400)})

	got := g.InRect(geo.Rect{Min: geo.Pt(-10, -10), Max: geo.Pt(250, 250)})
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("InRect = %v, want [%d %d]", got, a, b)
	}
}

func TestInsertOutsideBoundsStillFindable(t *testing.T) {
	g := NewGrid(geo.RectAround(geo.Pt(0, 0), 100), 25)
	id := g.Insert(PointItem{geo.Pt(5000, 5000)}) // far outside
	got := g.Nearest(geo.Pt(4000, 4000), 1)
	if len(got) != 1 || got[0] != id {
		t.Fatalf("out-of-bounds item not found: %v", got)
	}
}

func TestItemAccessors(t *testing.T) {
	g := NewGrid(geo.RectAround(geo.Pt(0, 0), 100), 25)
	if g.Len() != 0 {
		t.Errorf("empty Len = %d", g.Len())
	}
	id := g.Insert(PointItem{geo.Pt(1, 2)})
	if g.Len() != 1 {
		t.Errorf("Len = %d, want 1", g.Len())
	}
	if it, ok := g.Item(id).(PointItem); !ok || it.P != geo.Pt(1, 2) {
		t.Errorf("Item = %v", g.Item(id))
	}
}
