// Package spatial provides a uniform grid spatial index over items with
// rectangular extents. It supports the queries the map-matching pipeline
// needs: radius search, k-nearest-neighbour search, and rectangle
// queries, each against either item extents or item reference points.
//
// A uniform grid is the right structure here: road segments and cell
// towers are roughly uniformly dense at city scale, insertions happen
// once at load time, and queries are tight (a few hundred meters to a
// few kilometers), so the grid beats tree structures in both simplicity
// and constant factors.
package spatial

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geo"
)

// Item is anything indexable by the grid: it exposes a bounding
// rectangle (for coarse placement) and an exact distance to a query
// point (for refinement).
type Item interface {
	// Bounds returns the item's axis-aligned bounding rectangle.
	Bounds() geo.Rect
	// DistTo returns the exact distance from p to the item in meters.
	DistTo(p geo.Point) float64
}

// Grid is a uniform-cell spatial index. The zero value is not usable;
// construct with NewGrid. Grid is safe for concurrent readers once
// built; Insert must not race with queries.
type Grid struct {
	cellSize float64
	origin   geo.Point
	cols     int
	rows     int
	cells    [][]int // cell -> item ids
	items    []Item
}

// AutoCellSize picks a cell size for indexing itemCount items spread
// over bounds so that an average cell holds about targetPerCell items
// (<= 0 selects the default of 4). Sizing by density instead of by a
// fixed bounds fraction keeps per-cell occupancy — and therefore
// per-query refinement cost — flat as networks grow from test lattices
// to metro-scale extents. The result is clamped to [minCell, the larger
// bounds dimension] so tiny test fixtures and degenerate inputs stay
// well-formed; minCell <= 0 selects the default of 50 m.
func AutoCellSize(bounds geo.Rect, itemCount, targetPerCell int, minCell float64) float64 {
	if targetPerCell <= 0 {
		targetPerCell = 4
	}
	if minCell <= 0 {
		minCell = 50
	}
	w, h := bounds.Width(), bounds.Height()
	maxDim := math.Max(w, h)
	if maxDim <= 0 || itemCount <= 0 {
		return minCell
	}
	// Solve cells = area/cell² ≈ itemCount/targetPerCell. Degenerate
	// (zero-area) bounds fall back to the linear analogue.
	area := w * h
	var cell float64
	if area > 0 {
		cell = math.Sqrt(area * float64(targetPerCell) / float64(itemCount))
	} else {
		cell = maxDim * float64(targetPerCell) / float64(itemCount)
	}
	return math.Min(math.Max(cell, minCell), maxDim)
}

// NewGrid creates a grid covering the rectangle bounds with square cells
// of the given size in meters. The bounds are buffered by one cell so
// items on the boundary index cleanly. cellSize must be positive and the
// bounds non-degenerate; NewGrid panics otherwise since both are
// programmer errors.
func NewGrid(bounds geo.Rect, cellSize float64) *Grid {
	if cellSize <= 0 {
		panic(fmt.Sprintf("spatial: non-positive cell size %v", cellSize))
	}
	if bounds.Width() < 0 || bounds.Height() < 0 {
		panic(fmt.Sprintf("spatial: inverted bounds %v", bounds))
	}
	b := bounds.Buffer(cellSize)
	cols := int(math.Ceil(b.Width()/cellSize)) + 1
	rows := int(math.Ceil(b.Height()/cellSize)) + 1
	return &Grid{
		cellSize: cellSize,
		origin:   b.Min,
		cols:     cols,
		rows:     rows,
		cells:    make([][]int, cols*rows),
	}
}

// Len returns the number of indexed items.
func (g *Grid) Len() int { return len(g.items) }

// Item returns the item with the given id (the value returned by
// Insert). It panics on an out-of-range id.
func (g *Grid) Item(id int) Item { return g.items[id] }

// Insert adds an item to the index and returns its id. Items whose
// bounds fall partly outside the grid are clamped to the boundary cells,
// so they remain findable (at a small refinement cost).
func (g *Grid) Insert(it Item) int {
	id := len(g.items)
	g.items = append(g.items, it)
	c0, r0 := g.cellAt(it.Bounds().Min)
	c1, r1 := g.cellAt(it.Bounds().Max)
	for r := r0; r <= r1; r++ {
		for c := c0; c <= c1; c++ {
			idx := r*g.cols + c
			g.cells[idx] = append(g.cells[idx], id)
		}
	}
	return id
}

// cellAt maps a point to (col, row), clamped into the grid.
func (g *Grid) cellAt(p geo.Point) (int, int) {
	c := int((p.X - g.origin.X) / g.cellSize)
	r := int((p.Y - g.origin.Y) / g.cellSize)
	return clamp(c, 0, g.cols-1), clamp(r, 0, g.rows-1)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Within returns the ids of all items whose exact distance to p is at
// most radius, in ascending distance order.
func (g *Grid) Within(p geo.Point, radius float64) []int {
	type hit struct {
		id int
		d  float64
	}
	var hits []hit
	seen := make(map[int]bool)
	g.forCandidates(geo.RectAround(p, radius), func(id int) {
		if seen[id] {
			return
		}
		seen[id] = true
		if d := g.items[id].DistTo(p); d <= radius {
			hits = append(hits, hit{id, d})
		}
	})
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].d != hits[j].d {
			return hits[i].d < hits[j].d
		}
		return hits[i].id < hits[j].id
	})
	ids := make([]int, len(hits))
	for i, h := range hits {
		ids[i] = h.id
	}
	return ids
}

// Nearest returns the ids of the k items nearest to p, in ascending
// distance order. It returns fewer than k ids only when the index holds
// fewer than k items. The search expands ring by ring, so typical-case
// cost is proportional to local density, not index size.
func (g *Grid) Nearest(p geo.Point, k int) []int {
	if k <= 0 || len(g.items) == 0 {
		return nil
	}
	if k > len(g.items) {
		k = len(g.items)
	}
	type hit struct {
		id int
		d  float64
	}
	var hits []hit
	seen := make(map[int]bool)
	// Expand the search radius until we have k hits whose distances are
	// all certain (i.e. within the already-scanned radius).
	radius := g.cellSize
	maxRadius := math.Hypot(float64(g.cols), float64(g.rows)) * g.cellSize
	for {
		g.forCandidates(geo.RectAround(p, radius), func(id int) {
			if seen[id] {
				return
			}
			seen[id] = true
			hits = append(hits, hit{id, g.items[id].DistTo(p)})
		})
		sort.Slice(hits, func(i, j int) bool {
			if hits[i].d != hits[j].d {
				return hits[i].d < hits[j].d
			}
			return hits[i].id < hits[j].id
		})
		// A hit is certain if its distance <= radius: anything outside
		// the scanned square is farther than radius away.
		if len(hits) >= k && hits[k-1].d <= radius {
			break
		}
		if radius >= maxRadius {
			break // scanned everything
		}
		radius *= 2
	}
	if k > len(hits) {
		k = len(hits)
	}
	ids := make([]int, k)
	for i := 0; i < k; i++ {
		ids[i] = hits[i].id
	}
	return ids
}

// InRect returns the ids of all items whose bounds intersect r, in
// ascending id order.
func (g *Grid) InRect(r geo.Rect) []int {
	seen := make(map[int]bool)
	var ids []int
	g.forCandidates(r, func(id int) {
		if seen[id] {
			return
		}
		seen[id] = true
		if g.items[id].Bounds().Intersects(r) {
			ids = append(ids, id)
		}
	})
	sort.Ints(ids)
	return ids
}

// forCandidates calls fn for every item id stored in a cell overlapping
// r. Ids may repeat across cells; callers deduplicate.
func (g *Grid) forCandidates(r geo.Rect, fn func(id int)) {
	c0, r0 := g.cellAt(r.Min)
	c1, r1 := g.cellAt(r.Max)
	for row := r0; row <= r1; row++ {
		for col := c0; col <= c1; col++ {
			for _, id := range g.cells[row*g.cols+col] {
				fn(id)
			}
		}
	}
}

// PointItem adapts a bare point (e.g. a cell tower location) to the
// Item interface.
type PointItem struct {
	P geo.Point
}

// Bounds returns the degenerate rectangle at the point.
func (pi PointItem) Bounds() geo.Rect { return geo.Rect{Min: pi.P, Max: pi.P} }

// DistTo returns the Euclidean distance from p to the point.
func (pi PointItem) DistTo(p geo.Point) float64 { return pi.P.Dist(p) }

// SegmentItem adapts a line segment (e.g. a road segment) to the Item
// interface.
type SegmentItem struct {
	S geo.Segment
}

// Bounds returns the segment's bounding rectangle.
func (si SegmentItem) Bounds() geo.Rect {
	r := geo.Rect{Min: si.S.A, Max: si.S.A}
	return r.Extend(si.S.B)
}

// DistTo returns the distance from p to the nearest point on the segment.
func (si SegmentItem) DistTo(p geo.Point) float64 { return si.S.Dist(p) }
