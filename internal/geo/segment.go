package geo

import "math"

// Segment is a directed straight line segment from A to B.
type Segment struct {
	A Point
	B Point
}

// Length returns the segment length in meters.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Bearing returns the direction of travel along the segment in radians,
// counterclockwise from the positive x axis.
func (s Segment) Bearing() float64 { return s.A.Bearing(s.B) }

// Midpoint returns the segment midpoint.
func (s Segment) Midpoint() Point { return s.A.Lerp(s.B, 0.5) }

// ClosestFraction returns the parameter t in [0,1] such that
// s.A.Lerp(s.B, t) is the point on the segment closest to p.
// For a degenerate (zero-length) segment it returns 0.
func (s Segment) ClosestFraction(p Point) float64 {
	d := s.B.Sub(s.A)
	den := d.Dot(d)
	if den == 0 {
		return 0
	}
	t := p.Sub(s.A).Dot(d) / den
	return math.Max(0, math.Min(1, t))
}

// Project returns the point on the segment closest to p.
func (s Segment) Project(p Point) Point {
	return s.A.Lerp(s.B, s.ClosestFraction(p))
}

// Dist returns the Euclidean distance from p to the nearest point on
// the segment, in meters.
func (s Segment) Dist(p Point) float64 {
	return p.Dist(s.Project(p))
}

// DistSq returns the squared distance from p to the segment.
func (s Segment) DistSq(p Point) float64 {
	return p.DistSq(s.Project(p))
}

// NormalizeAngle wraps an angle in radians into (-π, π].
func NormalizeAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a <= -math.Pi {
		a += 2 * math.Pi
	} else if a > math.Pi {
		a -= 2 * math.Pi
	}
	return a
}

// AngleDiff returns the absolute difference between two bearings in
// radians, in [0, π].
func AngleDiff(a, b float64) float64 {
	return math.Abs(NormalizeAngle(a - b))
}

// TurnAngle returns the absolute change of heading, in radians, when
// moving through the three points a -> b -> c. Collinear forward motion
// yields 0; a U-turn yields π. Degenerate inputs (repeated points)
// yield 0.
func TurnAngle(a, b, c Point) float64 {
	if a == b || b == c {
		return 0
	}
	return AngleDiff(a.Bearing(b), b.Bearing(c))
}
