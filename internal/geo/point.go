// Package geo provides planar geometric primitives used throughout the
// map-matching pipeline: points, segments, polylines, distances,
// projections, bearings and turn angles.
//
// All coordinates are planar and expressed in meters. The synthetic city
// generator places the urban center at the origin, so Euclidean distance
// between two points is the physical distance between them. Helpers are
// provided to convert to and from WGS84 latitude/longitude for
// interoperability (GeoJSON export, external data import); the conversion
// uses a local equirectangular approximation around a configurable anchor,
// which is accurate to well under a meter at city scale.
package geo

import (
	"fmt"
	"math"
)

// Point is a location on the plane, in meters.
type Point struct {
	X float64 // east-west offset from the city origin, meters
	Y float64 // north-south offset from the city origin, meters
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product of p and q viewed
// as vectors. Positive when q is counterclockwise from p.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q in meters.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// DistSq returns the squared Euclidean distance between p and q.
// It avoids the square root for comparison-only callers such as
// nearest-neighbour search.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Lerp returns the point a fraction t of the way from p to q.
// t outside [0,1] extrapolates.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Bearing returns the direction of travel from p to q in radians,
// measured counterclockwise from the positive x axis, in (-π, π].
// Bearing from a point to itself is 0.
func (p Point) Bearing(q Point) float64 {
	return math.Atan2(q.Y-p.Y, q.X-p.X)
}

func (p Point) String() string { return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y) }

// earthRadius is the mean Earth radius in meters, used by the local
// equirectangular lat/lon conversion.
const earthRadius = 6371008.8

// LatLon is a WGS84 coordinate in decimal degrees.
type LatLon struct {
	Lat float64
	Lon float64
}

// Anchor fixes the lat/lon of the planar origin so planar points can be
// exported as geographic coordinates and vice versa.
type Anchor struct {
	Origin LatLon
}

// ToLatLon converts a planar point to WGS84 using the local
// equirectangular approximation around the anchor origin.
func (a Anchor) ToLatLon(p Point) LatLon {
	latRad := a.Origin.Lat * math.Pi / 180
	dLat := p.Y / earthRadius
	dLon := p.X / (earthRadius * math.Cos(latRad))
	return LatLon{
		Lat: a.Origin.Lat + dLat*180/math.Pi,
		Lon: a.Origin.Lon + dLon*180/math.Pi,
	}
}

// FromLatLon converts a WGS84 coordinate to a planar point around the
// anchor origin.
func (a Anchor) FromLatLon(ll LatLon) Point {
	latRad := a.Origin.Lat * math.Pi / 180
	dLat := (ll.Lat - a.Origin.Lat) * math.Pi / 180
	dLon := (ll.Lon - a.Origin.Lon) * math.Pi / 180
	return Point{
		X: dLon * earthRadius * math.Cos(latRad),
		Y: dLat * earthRadius,
	}
}
