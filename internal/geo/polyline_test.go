package geo

import (
	"math"
	"math/rand"
	"testing"
)

func TestPolylineLength(t *testing.T) {
	cases := []struct {
		pl   Polyline
		want float64
	}{
		{nil, 0},
		{Polyline{Pt(0, 0)}, 0},
		{Polyline{Pt(0, 0), Pt(3, 4)}, 5},
		{Polyline{Pt(0, 0), Pt(3, 4), Pt(3, 10)}, 11},
	}
	for _, c := range cases {
		if got := c.pl.Length(); got != c.want {
			t.Errorf("Length(%v) = %v, want %v", c.pl, got, c.want)
		}
	}
}

func TestPolylineAt(t *testing.T) {
	pl := Polyline{Pt(0, 0), Pt(10, 0), Pt(10, 10)}
	cases := []struct {
		d    float64
		want Point
	}{
		{-5, Pt(0, 0)},
		{0, Pt(0, 0)},
		{5, Pt(5, 0)},
		{10, Pt(10, 0)},
		{15, Pt(10, 5)},
		{20, Pt(10, 10)},
		{99, Pt(10, 10)}, // past the end clamps
	}
	for _, c := range cases {
		if got := pl.At(c.d); got.Dist(c.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", c.d, got, c.want)
		}
	}
	if got := (Polyline{}).At(3); got != (Point{}) {
		t.Errorf("empty At = %v, want zero", got)
	}
	if got := (Polyline{Pt(7, 8)}).At(3); got != Pt(7, 8) {
		t.Errorf("single-point At = %v, want (7,8)", got)
	}
}

func TestPolylineResample(t *testing.T) {
	pl := Polyline{Pt(0, 0), Pt(10, 0)}
	rs := pl.Resample(5)
	if len(rs) != 5 {
		t.Fatalf("Resample len = %d, want 5", len(rs))
	}
	for i, p := range rs {
		want := Pt(2.5*float64(i), 0)
		if p.Dist(want) > 1e-9 {
			t.Errorf("Resample[%d] = %v, want %v", i, p, want)
		}
	}
	if rs := (Polyline{}).Resample(3); rs != nil {
		t.Errorf("empty Resample = %v, want nil", rs)
	}
	if rs := pl.Resample(1); len(rs) != 1 || rs[0] != pl[0] {
		t.Errorf("Resample(1) = %v, want start point", rs)
	}
}

func TestPolylineProject(t *testing.T) {
	pl := Polyline{Pt(0, 0), Pt(10, 0), Pt(10, 10)}
	q, along, seg, ok := pl.Project(Pt(4, 3))
	if !ok || q.Dist(Pt(4, 0)) > 1e-12 || !almostEqual(along, 4, 1e-12) || seg != 0 {
		t.Errorf("Project = %v along %v seg %d ok %v", q, along, seg, ok)
	}
	q, along, seg, ok = pl.Project(Pt(13, 7))
	if !ok || q.Dist(Pt(10, 7)) > 1e-12 || !almostEqual(along, 17, 1e-12) || seg != 1 {
		t.Errorf("Project = %v along %v seg %d ok %v", q, along, seg, ok)
	}
	if _, _, _, ok := (Polyline{}).Project(Pt(0, 0)); ok {
		t.Error("empty Project reported ok")
	}
	if d := (Polyline{}).Dist(Pt(0, 0)); !math.IsInf(d, 1) {
		t.Errorf("empty Dist = %v, want +Inf", d)
	}
}

// Property: At(along) for the projected point returns (approximately)
// the projection itself, and the projection is the true closest point
// among dense samples.
func TestPolylineProjectProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6)
		pl := make(Polyline, n)
		for i := range pl {
			pl[i] = randPt(rng)
		}
		p := randPt(rng)
		q, along, _, ok := pl.Project(p)
		if !ok {
			t.Fatal("Project not ok")
		}
		if pl.At(along).Dist(q) > 1e-6 {
			t.Fatalf("At(along)=%v disagrees with projection %v", pl.At(along), q)
		}
		best := p.Dist(q)
		total := pl.Length()
		for i := 0; i <= 100; i++ {
			s := pl.At(total * float64(i) / 100)
			if p.Dist(s) < best-1e-6 {
				t.Fatalf("found closer point %v (%.4f) than projection %v (%.4f)",
					s, p.Dist(s), q, best)
			}
		}
	}
}

func TestTotalTurn(t *testing.T) {
	straight := Polyline{Pt(0, 0), Pt(1, 0), Pt(2, 0), Pt(3, 0)}
	if got := straight.TotalTurn(); got != 0 {
		t.Errorf("straight TotalTurn = %v, want 0", got)
	}
	zigzag := Polyline{Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(2, 1)}
	if got := zigzag.TotalTurn(); !almostEqual(got, math.Pi, 1e-12) {
		t.Errorf("zigzag TotalTurn = %v, want pi", got)
	}
}

func TestRect(t *testing.T) {
	r := RectAround(Pt(0, 0), 10)
	if !r.Contains(Pt(10, -10)) {
		t.Error("boundary point not contained")
	}
	if r.Contains(Pt(10.1, 0)) {
		t.Error("outside point contained")
	}
	o := Rect{Pt(5, 5), Pt(20, 20)}
	if !r.Intersects(o) || !o.Intersects(r) {
		t.Error("overlapping rects reported disjoint")
	}
	far := Rect{Pt(100, 100), Pt(110, 110)}
	if r.Intersects(far) {
		t.Error("disjoint rects reported intersecting")
	}
	u := r.Union(far)
	if u.Min != Pt(-10, -10) || u.Max != Pt(110, 110) {
		t.Errorf("Union = %v", u)
	}
	b := r.Buffer(5)
	if b.Min != Pt(-15, -15) || b.Max != Pt(15, 15) {
		t.Errorf("Buffer = %v", b)
	}
	if c := r.Center(); c != Pt(0, 0) {
		t.Errorf("Center = %v", c)
	}
	if r.Width() != 20 || r.Height() != 20 {
		t.Errorf("Width/Height = %v/%v", r.Width(), r.Height())
	}
}

func TestPolylineBBox(t *testing.T) {
	if _, ok := (Polyline{}).BBox(); ok {
		t.Error("empty BBox reported ok")
	}
	r, ok := Polyline{Pt(1, 5), Pt(-2, 3), Pt(4, -1)}.BBox()
	if !ok || r.Min != Pt(-2, -1) || r.Max != Pt(4, 5) {
		t.Errorf("BBox = %v ok=%v", r, ok)
	}
}
