package geo

import (
	"fmt"
	"math"
)

// Polyline is an ordered sequence of points describing a path on the
// plane. A polyline with fewer than two points has zero length.
type Polyline []Point

// Length returns the total length of the polyline in meters.
func (pl Polyline) Length() float64 {
	var total float64
	for i := 1; i < len(pl); i++ {
		total += pl[i-1].Dist(pl[i])
	}
	return total
}

// TotalTurn returns the sum of absolute turn angles (radians) along the
// polyline — the paper's "number of turns" proxy used by the explicit
// transition features (§IV-D).
func (pl Polyline) TotalTurn() float64 {
	var total float64
	for i := 2; i < len(pl); i++ {
		total += TurnAngle(pl[i-2], pl[i-1], pl[i])
	}
	return total
}

// At returns the point a distance d from the start, measured along the
// polyline. d is clamped to [0, Length]. An empty polyline returns the
// zero Point; a single-point polyline returns that point.
func (pl Polyline) At(d float64) Point {
	if len(pl) == 0 {
		return Point{}
	}
	if d <= 0 {
		return pl[0]
	}
	for i := 1; i < len(pl); i++ {
		seg := pl[i-1].Dist(pl[i])
		if d <= seg && seg > 0 {
			return pl[i-1].Lerp(pl[i], d/seg)
		}
		d -= seg
	}
	return pl[len(pl)-1]
}

// Resample returns n points evenly spaced along the polyline, including
// both endpoints. n must be at least 2 unless the polyline is empty.
func (pl Polyline) Resample(n int) Polyline {
	if len(pl) == 0 || n <= 0 {
		return nil
	}
	if n == 1 {
		return Polyline{pl[0]}
	}
	total := pl.Length()
	out := make(Polyline, n)
	for i := 0; i < n; i++ {
		out[i] = pl.At(total * float64(i) / float64(n-1))
	}
	return out
}

// Project returns the closest point on the polyline to p, together with
// the distance along the polyline at which it occurs and the index of
// the segment containing it. An empty polyline returns the zero values
// and ok=false.
func (pl Polyline) Project(p Point) (closest Point, along float64, segIdx int, ok bool) {
	if len(pl) == 0 {
		return Point{}, 0, 0, false
	}
	if len(pl) == 1 {
		return pl[0], 0, 0, true
	}
	best := math.Inf(1)
	var walked float64
	for i := 1; i < len(pl); i++ {
		seg := Segment{pl[i-1], pl[i]}
		t := seg.ClosestFraction(p)
		q := pl[i-1].Lerp(pl[i], t)
		if d := p.DistSq(q); d < best {
			best = d
			closest = q
			along = walked + seg.Length()*t
			segIdx = i - 1
		}
		walked += seg.Length()
	}
	return closest, along, segIdx, true
}

// Dist returns the distance from p to the nearest point on the polyline.
// It returns +Inf for an empty polyline.
func (pl Polyline) Dist(p Point) float64 {
	q, _, _, ok := pl.Project(p)
	if !ok {
		return math.Inf(1)
	}
	return p.Dist(q)
}

// BBox returns the axis-aligned bounding box of the polyline.
// It returns the zero box and ok=false for an empty polyline.
func (pl Polyline) BBox() (Rect, bool) {
	if len(pl) == 0 {
		return Rect{}, false
	}
	r := Rect{Min: pl[0], Max: pl[0]}
	for _, p := range pl[1:] {
		r = r.Extend(p)
	}
	return r, true
}

// Rect is an axis-aligned rectangle with Min at the lower-left corner.
type Rect struct {
	Min Point
	Max Point
}

// RectAround returns the square of half-width r centered on p.
func RectAround(p Point, r float64) Rect {
	return Rect{Min: Point{p.X - r, p.Y - r}, Max: Point{p.X + r, p.Y + r}}
}

// Extend returns the smallest rectangle containing both r and p.
func (r Rect) Extend(p Point) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, p.X), math.Min(r.Min.Y, p.Y)},
		Max: Point{math.Max(r.Max.X, p.X), math.Max(r.Max.Y, p.Y)},
	}
}

// Union returns the smallest rectangle containing both rectangles.
func (r Rect) Union(o Rect) Rect {
	return r.Extend(o.Min).Extend(o.Max)
}

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Intersects reports whether the two rectangles overlap (boundary
// contact counts as overlap).
func (r Rect) Intersects(o Rect) bool {
	return r.Min.X <= o.Max.X && o.Min.X <= r.Max.X &&
		r.Min.Y <= o.Max.Y && o.Min.Y <= r.Max.Y
}

// Buffer returns r grown by d on every side.
func (r Rect) Buffer(d float64) Rect {
	return Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
}

// Center returns the rectangle center.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Width returns Max.X - Min.X.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns Max.Y - Min.Y.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

func (r Rect) String() string {
	return fmt.Sprintf("[%v %v]", r.Min, r.Max)
}
