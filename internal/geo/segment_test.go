package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSegmentProject(t *testing.T) {
	s := Segment{Pt(0, 0), Pt(10, 0)}
	cases := []struct {
		p    Point
		want Point
	}{
		{Pt(5, 3), Pt(5, 0)},    // interior projection
		{Pt(-4, 2), Pt(0, 0)},   // clamps to A
		{Pt(15, -7), Pt(10, 0)}, // clamps to B
		{Pt(10, 0), Pt(10, 0)},  // on endpoint
	}
	for _, c := range cases {
		if got := s.Project(c.p); got.Dist(c.want) > 1e-12 {
			t.Errorf("Project(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestSegmentDegenerate(t *testing.T) {
	s := Segment{Pt(3, 3), Pt(3, 3)}
	if got := s.Project(Pt(0, 0)); got != Pt(3, 3) {
		t.Errorf("degenerate Project = %v, want (3,3)", got)
	}
	if got := s.Dist(Pt(0, 3)); got != 3 {
		t.Errorf("degenerate Dist = %v, want 3", got)
	}
	if got := s.Length(); got != 0 {
		t.Errorf("degenerate Length = %v, want 0", got)
	}
}

// Property: the projection is never farther from p than either endpoint.
func TestProjectIsClosest(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		s := Segment{randPt(rng), randPt(rng)}
		p := randPt(rng)
		d := s.Dist(p)
		if d > p.Dist(s.A)+1e-9 || d > p.Dist(s.B)+1e-9 {
			t.Fatalf("projection distance %v exceeds endpoint distance (%v, %v)",
				d, p.Dist(s.A), p.Dist(s.B))
		}
		// And never farther than any sampled point on the segment.
		for _, tt := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			if q := s.A.Lerp(s.B, tt); d > p.Dist(q)+1e-9 {
				t.Fatalf("projection %v farther than interior point %v", d, p.Dist(q))
			}
		}
	}
}

func randPt(rng *rand.Rand) Point {
	return Pt(rng.Float64()*2000-1000, rng.Float64()*2000-1000)
}

func TestNormalizeAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-math.Pi / 2, -math.Pi / 2},
		{5 * math.Pi / 2, math.Pi / 2},
	}
	for _, c := range cases {
		if got := NormalizeAngle(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalizeAngleProperty(t *testing.T) {
	f := func(a float64) bool {
		a = clampCoord(a)
		n := NormalizeAngle(a)
		if n <= -math.Pi || n > math.Pi+1e-12 {
			return false
		}
		// Same direction: cos and sin must agree.
		return almostEqual(math.Cos(a), math.Cos(n), 1e-6) &&
			almostEqual(math.Sin(a), math.Sin(n), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngleDiff(t *testing.T) {
	if d := AngleDiff(0.1, -0.1); !almostEqual(d, 0.2, 1e-12) {
		t.Errorf("AngleDiff = %v, want 0.2", d)
	}
	// Wraparound: 179° vs -179° differ by 2°, not 358°.
	a, b := 179*math.Pi/180, -179*math.Pi/180
	if d := AngleDiff(a, b); !almostEqual(d, 2*math.Pi/180, 1e-9) {
		t.Errorf("AngleDiff wrap = %v, want 2 degrees", d)
	}
}

func TestTurnAngle(t *testing.T) {
	// Straight line: no turn.
	if a := TurnAngle(Pt(0, 0), Pt(1, 0), Pt(2, 0)); a != 0 {
		t.Errorf("straight TurnAngle = %v, want 0", a)
	}
	// Right angle.
	if a := TurnAngle(Pt(0, 0), Pt(1, 0), Pt(1, 1)); !almostEqual(a, math.Pi/2, 1e-12) {
		t.Errorf("right-angle TurnAngle = %v, want pi/2", a)
	}
	// U-turn.
	if a := TurnAngle(Pt(0, 0), Pt(1, 0), Pt(0, 0)); !almostEqual(a, math.Pi, 1e-12) {
		t.Errorf("u-turn TurnAngle = %v, want pi", a)
	}
	// Degenerate (repeated point).
	if a := TurnAngle(Pt(0, 0), Pt(0, 0), Pt(1, 1)); a != 0 {
		t.Errorf("degenerate TurnAngle = %v, want 0", a)
	}
}
