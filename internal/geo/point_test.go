package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(3, 4), Pt(1, -2)
	if got := p.Add(q); got != Pt(4, 2) {
		t.Errorf("Add = %v, want (4,2)", got)
	}
	if got := p.Sub(q); got != Pt(2, 6) {
		t.Errorf("Sub = %v, want (2,6)", got)
	}
	if got := p.Scale(2); got != Pt(6, 8) {
		t.Errorf("Scale = %v, want (6,8)", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v, want -5", got)
	}
	if got := p.Cross(q); got != 3*(-2)-4*1 {
		t.Errorf("Cross = %v, want -10", got)
	}
	if got := p.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
}

func TestDist(t *testing.T) {
	if d := Pt(0, 0).Dist(Pt(3, 4)); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := Pt(1, 1).DistSq(Pt(4, 5)); d != 25 {
		t.Errorf("DistSq = %v, want 25", d)
	}
}

func TestDistSqMatchesDist(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Pt(clampCoord(ax), clampCoord(ay)), Pt(clampCoord(bx), clampCoord(by))
		d := a.Dist(b)
		return almostEqual(d*d, a.DistSq(b), 1e-6*(1+d*d))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampCoord maps an arbitrary float into a sane coordinate range so
// property tests don't feed infinities or overflow-scale values.
func clampCoord(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}

func TestLerp(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 20)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v, want %v", got, a)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v, want %v", got, b)
	}
	if got := a.Lerp(b, 0.5); got != Pt(5, 10) {
		t.Errorf("Lerp(0.5) = %v, want (5,10)", got)
	}
}

func TestBearing(t *testing.T) {
	cases := []struct {
		from, to Point
		want     float64
	}{
		{Pt(0, 0), Pt(1, 0), 0},
		{Pt(0, 0), Pt(0, 1), math.Pi / 2},
		{Pt(0, 0), Pt(-1, 0), math.Pi},
		{Pt(0, 0), Pt(0, -1), -math.Pi / 2},
		{Pt(2, 2), Pt(3, 3), math.Pi / 4},
	}
	for _, c := range cases {
		if got := c.from.Bearing(c.to); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Bearing(%v,%v) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

func TestLatLonRoundTrip(t *testing.T) {
	a := Anchor{Origin: LatLon{Lat: 30.25, Lon: 120.17}} // Hangzhou-ish
	f := func(x, y float64) bool {
		p := Pt(math.Mod(clampCoord(x), 50000), math.Mod(clampCoord(y), 50000))
		back := a.FromLatLon(a.ToLatLon(p))
		return back.Dist(p) < 0.01 // sub-centimeter round trip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLatLonScale(t *testing.T) {
	// Moving 1000 m north must change latitude by ~1000/111195 degrees.
	a := Anchor{Origin: LatLon{Lat: 24.48, Lon: 118.09}} // Xiamen-ish
	ll := a.ToLatLon(Pt(0, 1000))
	wantDLat := 1000 / (earthRadius * math.Pi / 180)
	if !almostEqual(ll.Lat-a.Origin.Lat, wantDLat, 1e-9) {
		t.Errorf("dLat = %v, want %v", ll.Lat-a.Origin.Lat, wantDLat)
	}
	if ll.Lon != a.Origin.Lon {
		t.Errorf("moving north changed longitude: %v", ll.Lon)
	}
}

func TestAnchorKnownCity(t *testing.T) {
	// One degree of latitude is ~111.2 km everywhere; verify the anchor
	// reproduces that within the equirectangular approximation.
	a := Anchor{Origin: LatLon{Lat: 30, Lon: 120}}
	north := a.FromLatLon(LatLon{Lat: 31, Lon: 120})
	if math.Abs(north.Y-111195) > 200 {
		t.Errorf("1 degree north = %.0f m, want ≈111195", north.Y)
	}
	if math.Abs(north.X) > 1e-6 {
		t.Errorf("northward move changed X: %v", north.X)
	}
	// One degree of longitude at 30°N is ~96.3 km.
	east := a.FromLatLon(LatLon{Lat: 30, Lon: 121})
	want := 111195 * math.Cos(30*math.Pi/180)
	if math.Abs(east.X-want) > 300 {
		t.Errorf("1 degree east = %.0f m, want ≈%.0f", east.X, want)
	}
}
