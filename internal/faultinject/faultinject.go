// Package faultinject provides named failpoints for chaos-testing the
// matching pipeline: candidate lookup, learned scoring, and model
// deserialization register a Point each, and tests (or an operator via
// the LHMM_FAULTS environment variable) arm them to force the failure
// modes the fault-tolerance machinery must absorb — dead candidate
// sets, NaN scores, corrupt model files.
//
// The package is no-op by default and built for hot paths: every
// Point.Fail() first loads one package-level atomic.Bool and returns
// false, so an unarmed build pays a single atomic load per check (the
// same discipline as internal/obs). Arming is explicit and
// deterministic — a failpoint either fires on every hit or on every
// Nth hit — so chaos tests are reproducible; there is no randomness.
//
// Spec grammar (comma-separated, via Arm or LHMM_FAULTS):
//
//	hmm.candidates.empty          fire on every hit
//	hmm.candidates.empty:3        fire on every 3rd hit (hits 3, 6, 9, …)
//
// Unknown names are accepted and retained: the Point picks up its
// arming when it is later created, so env-armed CLIs work regardless of
// package initialization order.
package faultinject

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// EnvVar is the environment variable the CLIs arm failpoints from.
const EnvVar = "LHMM_FAULTS"

// armed is the global fast-path gate: false means every Fail() returns
// immediately after one atomic load.
var armed atomic.Bool

var (
	mu     sync.Mutex
	points = make(map[string]*Point)
	specs  = make(map[string]int64) // armed specs, by name -> every-Nth
)

// Point is one named failpoint. Create with New at package init and
// call Fail at the injection site.
type Point struct {
	name  string
	every atomic.Int64 // 0 = disarmed, N>=1 = fire on every Nth hit
	hits  atomic.Int64
}

// New returns the failpoint registered under name, creating it on
// first use. The same name always yields the same Point, and a Point
// created after its name was armed starts armed.
func New(name string) *Point {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p
	}
	p := &Point{name: name}
	if n, ok := specs[name]; ok {
		p.every.Store(n)
	}
	points[name] = p
	return p
}

// Name returns the failpoint's registered name.
func (p *Point) Name() string { return p.name }

// Fail reports whether the failpoint fires on this hit. Unarmed (the
// default), it costs one atomic load. Safe for concurrent use.
func (p *Point) Fail() bool {
	if !armed.Load() {
		return false
	}
	every := p.every.Load()
	if every <= 0 {
		return false
	}
	return p.hits.Add(1)%every == 0
}

// Hits returns how many times Fail has been evaluated while the point
// was armed (diagnostic; counts both firing and non-firing hits).
func (p *Point) Hits() int64 { return p.hits.Load() }

// Arm parses a comma-separated spec list ("name" or "name:N") and arms
// the named failpoints. Names not yet created are retained and applied
// when New runs for them. Empty spec is a no-op.
func Arm(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	type parsed struct {
		name string
		n    int64
	}
	var ps []parsed
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, n := part, int64(1)
		if idx := strings.LastIndex(part, ":"); idx >= 0 {
			name = part[:idx]
			v, err := strconv.ParseInt(part[idx+1:], 10, 64)
			if err != nil || v < 1 {
				return fmt.Errorf("faultinject: bad spec %q: want name or name:N with N >= 1", part)
			}
			n = v
		}
		if name == "" {
			return fmt.Errorf("faultinject: bad spec %q: empty failpoint name", part)
		}
		ps = append(ps, parsed{name, n})
	}
	mu.Lock()
	defer mu.Unlock()
	for _, p := range ps {
		specs[p.name] = p.n
		if pt, ok := points[p.name]; ok {
			pt.every.Store(p.n)
		}
	}
	if len(specs) > 0 {
		armed.Store(true)
	}
	return nil
}

// ArmFromEnv arms failpoints from the LHMM_FAULTS environment variable.
// Unset or empty is a no-op.
func ArmFromEnv() error { return Arm(os.Getenv(EnvVar)) }

// DisarmAll disarms every failpoint and restores the zero-cost fast
// path. Hit counts are reset.
func DisarmAll() {
	mu.Lock()
	defer mu.Unlock()
	armed.Store(false)
	specs = make(map[string]int64)
	for _, p := range points {
		p.every.Store(0)
		p.hits.Store(0)
	}
}

// Enabled reports whether any failpoint is armed.
func Enabled() bool { return armed.Load() }

// Armed returns the sorted names of currently armed failpoints.
func Armed() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(specs))
	for name := range specs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
