package faultinject

import (
	"sync"
	"testing"
)

func TestDisarmedIsNoOp(t *testing.T) {
	DisarmAll()
	p := New("test.noop")
	for i := 0; i < 100; i++ {
		if p.Fail() {
			t.Fatal("disarmed failpoint fired")
		}
	}
	if p.Hits() != 0 {
		t.Errorf("disarmed point counted %d hits", p.Hits())
	}
}

func TestArmEveryHit(t *testing.T) {
	t.Cleanup(DisarmAll)
	DisarmAll()
	p := New("test.every")
	if err := Arm("test.every"); err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("Enabled() = false after Arm")
	}
	for i := 0; i < 5; i++ {
		if !p.Fail() {
			t.Fatalf("armed failpoint did not fire on hit %d", i+1)
		}
	}
	DisarmAll()
	if p.Fail() {
		t.Error("failpoint fired after DisarmAll")
	}
}

func TestArmEveryNth(t *testing.T) {
	t.Cleanup(DisarmAll)
	DisarmAll()
	p := New("test.nth")
	if err := Arm("test.nth:3"); err != nil {
		t.Fatal(err)
	}
	var fired []int
	for i := 1; i <= 9; i++ {
		if p.Fail() {
			fired = append(fired, i)
		}
	}
	if len(fired) != 3 || fired[0] != 3 || fired[1] != 6 || fired[2] != 9 {
		t.Errorf("every-3rd fired on hits %v, want [3 6 9]", fired)
	}
}

func TestArmBeforeNew(t *testing.T) {
	t.Cleanup(DisarmAll)
	DisarmAll()
	if err := Arm("test.latecomer:2"); err != nil {
		t.Fatal(err)
	}
	p := New("test.latecomer")
	if p.Fail() {
		t.Error("hit 1 fired for every-2nd spec")
	}
	if !p.Fail() {
		t.Error("hit 2 did not fire for every-2nd spec")
	}
}

func TestArmSpecErrors(t *testing.T) {
	t.Cleanup(DisarmAll)
	DisarmAll()
	for _, bad := range []string{"x:0", "x:-1", "x:abc", ":3"} {
		if err := Arm(bad); err == nil {
			t.Errorf("Arm(%q) accepted", bad)
		}
	}
	// Empty spec is a no-op, not an error.
	if err := Arm(""); err != nil {
		t.Errorf("Arm(\"\") = %v", err)
	}
	if Enabled() {
		t.Error("Enabled() after no-op/failed arms")
	}
}

func TestArmedNames(t *testing.T) {
	t.Cleanup(DisarmAll)
	DisarmAll()
	if err := Arm("b.two, a.one:4"); err != nil {
		t.Fatal(err)
	}
	names := Armed()
	if len(names) != 2 || names[0] != "a.one" || names[1] != "b.two" {
		t.Errorf("Armed() = %v", names)
	}
}

func TestConcurrentFail(t *testing.T) {
	t.Cleanup(DisarmAll)
	DisarmAll()
	p := New("test.concurrent")
	if err := Arm("test.concurrent:2"); err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	fired := make([]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if p.Fail() {
					fired[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, f := range fired {
		total += f
	}
	if want := int64(workers * per / 2); total != want {
		t.Errorf("every-2nd fired %d of %d hits, want %d", total, workers*per, want)
	}
}
