package roadnet

import (
	"math/rand"
	"testing"

	"repro/internal/geo"
)

// buildJittered builds a w×h lattice with ~100 m spacing, per-node
// coordinate jitter, and random two-way street removal — small-scale
// stand-in for the synth cities. Deterministic for a given seed.
func buildJittered(t testing.TB, w, h int, dropProb float64, seed int64) *Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var b Builder
	for j := 0; j < h; j++ {
		for i := 0; i < w; i++ {
			b.AddNode(geo.Pt(
				float64(i)*100+rng.Float64()*40-20,
				float64(j)*100+rng.Float64()*40-20,
			))
		}
	}
	id := func(i, j int) NodeID { return NodeID(j*w + i) }
	added := 0
	for j := 0; j < h; j++ {
		for i := 0; i < w; i++ {
			if i+1 < w && rng.Float64() >= dropProb {
				if _, _, err := b.AddTwoWay(id(i, j), id(i+1, j), Local); err != nil {
					t.Fatal(err)
				}
				added++
			}
			if j+1 < h && rng.Float64() >= dropProb {
				if _, _, err := b.AddTwoWay(id(i, j), id(i, j+1), Local); err != nil {
					t.Fatal(err)
				}
				added++
			}
		}
	}
	if added == 0 {
		t.Fatal("jittered network dropped every street; pick another seed")
	}
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// assertSamePair fails unless the CH-backed and flat routers agree
// byte-for-byte on one node pair: same reachability, bitwise-equal
// distance, identical segment sequence.
func assertSamePair(t *testing.T, flat, ch *Router, a, b NodeID) {
	t.Helper()
	d1, ok1 := flat.NodeDist(a, b)
	d2, ok2 := ch.NodeDist(a, b)
	if ok1 != ok2 {
		t.Fatalf("reachability mismatch %d->%d: flat %v, ch %v", a, b, ok1, ok2)
	}
	if !ok1 {
		return
	}
	if d1 != d2 {
		t.Fatalf("dist mismatch %d->%d: flat %v, ch %v", a, b, d1, d2)
	}
	p1, pd1, _ := flat.NodePath(a, b)
	p2, pd2, _ := ch.NodePath(a, b)
	if pd1 != pd2 {
		t.Fatalf("path dist mismatch %d->%d: flat %v, ch %v", a, b, pd1, pd2)
	}
	if len(p1) != len(p2) {
		t.Fatalf("path length mismatch %d->%d: flat %v, ch %v", a, b, p1, p2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("path mismatch %d->%d at hop %d: flat %v, ch %v", a, b, i, p1, p2)
		}
	}
}

// The lattice is the adversarial case for path identity: nearly every
// pair has many exactly-equal-length shortest paths, so CH and Dijkstra
// only agree because both order paths by the canonical (dist, tie) key.
func TestCHMatchesDijkstraAllPairsLattice(t *testing.T) {
	n := buildGrid(t, 6, 5)
	flat := NewRouter(n)
	ch := NewRouter(n, WithHierarchy(BuildHierarchy(n)))
	for a := 0; a < n.NumNodes(); a++ {
		for b := 0; b < n.NumNodes(); b++ {
			assertSamePair(t, flat, ch, NodeID(a), NodeID(b))
		}
	}
}

func TestCHMatchesDijkstraAllPairsJittered(t *testing.T) {
	// Includes disconnected pockets: both routers must agree those are
	// unreachable too.
	n := buildJittered(t, 8, 8, 0.25, 7)
	flat := NewRouter(n)
	ch := NewRouter(n, WithHierarchy(BuildHierarchy(n)))
	for a := 0; a < n.NumNodes(); a++ {
		for b := 0; b < n.NumNodes(); b++ {
			assertSamePair(t, flat, ch, NodeID(a), NodeID(b))
		}
	}
}

func TestCHMatchesDijkstraRandomPairsLarge(t *testing.T) {
	n := buildJittered(t, 20, 20, 0.15, 11)
	flat := NewRouter(n)
	ch := NewRouter(n, WithHierarchy(BuildHierarchy(n)))
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 2000; trial++ {
		a := NodeID(rng.Intn(n.NumNodes()))
		b := NodeID(rng.Intn(n.NumNodes()))
		assertSamePair(t, flat, ch, a, b)
	}
}

// With a tight MaxDist the CH search must reproduce the flat router's
// reachability cutoff exactly, including paths that land on the bound.
func TestCHMaxDistBound(t *testing.T) {
	n := buildGrid(t, 7, 7)
	for _, maxDist := range []float64{100, 250, 300, 800} {
		flat := NewRouter(n, WithMaxDist(maxDist))
		ch := NewRouter(n, WithMaxDist(maxDist), WithHierarchy(BuildHierarchy(n)))
		for a := 0; a < n.NumNodes(); a++ {
			for b := 0; b < n.NumNodes(); b++ {
				assertSamePair(t, flat, ch, NodeID(a), NodeID(b))
			}
		}
	}
}

func TestCHRouteBetweenAndRouteDist(t *testing.T) {
	n := buildJittered(t, 10, 10, 0.2, 3)
	flat := NewRouter(n)
	ch := NewRouter(n, WithHierarchy(BuildHierarchy(n)))
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 1500; trial++ {
		a := PointOnRoad{Seg: SegmentID(rng.Intn(n.NumSegments())), Frac: rng.Float64()}
		b := PointOnRoad{Seg: SegmentID(rng.Intn(n.NumSegments())), Frac: rng.Float64()}
		r1, ok1 := flat.RouteBetween(a, b)
		r2, ok2 := ch.RouteBetween(a, b)
		if ok1 != ok2 {
			t.Fatalf("RouteBetween(%v,%v) reachability: flat %v, ch %v", a, b, ok1, ok2)
		}
		if ok1 {
			if r1.Dist != r2.Dist {
				t.Fatalf("RouteBetween(%v,%v) dist: flat %v, ch %v", a, b, r1.Dist, r2.Dist)
			}
			if len(r1.Segs) != len(r2.Segs) {
				t.Fatalf("RouteBetween(%v,%v) segs: flat %v, ch %v", a, b, r1.Segs, r2.Segs)
			}
			for i := range r1.Segs {
				if r1.Segs[i] != r2.Segs[i] {
					t.Fatalf("RouteBetween(%v,%v) segs: flat %v, ch %v", a, b, r1.Segs, r2.Segs)
				}
			}
		}
		d1, dok1 := flat.RouteDist(a, b)
		d2, dok2 := ch.RouteDist(a, b)
		if dok1 != dok2 || (dok1 && (d1 != d2 || d1 != r1.Dist)) {
			t.Fatalf("RouteDist(%v,%v): flat %v/%v, ch %v/%v, route %v", a, b, d1, dok1, d2, dok2, r1.Dist)
		}
	}
}

// A hierarchy rebuilt from its serialized parts (ranks + shortcut
// records) must answer queries identically to the original.
func TestCHFromPartsMatchesBuild(t *testing.T) {
	n := buildJittered(t, 9, 9, 0.2, 13)
	h := BuildHierarchy(n)
	h2, err := hierarchyFromParts(n, h.Rank(), h.Shortcuts())
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRouter(n, WithHierarchy(h))
	r2 := NewRouter(n, WithHierarchy(h2))
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 500; trial++ {
		a := NodeID(rng.Intn(n.NumNodes()))
		b := NodeID(rng.Intn(n.NumNodes()))
		assertSamePair(t, r1, r2, a, b)
	}
}

func TestCHFromPartsRejectsCorruptParts(t *testing.T) {
	n := buildGrid(t, 4, 4)
	h := BuildHierarchy(n)
	if _, err := hierarchyFromParts(n, h.Rank()[:1], h.Shortcuts()); err == nil {
		t.Error("short rank slice accepted")
	}
	if sc := h.Shortcuts(); len(sc) > 0 {
		bad := append([]shortcutRecord(nil), sc...)
		bad[0].A = int32(len(h.edges)) + 99
		if _, err := hierarchyFromParts(n, h.Rank(), bad); err == nil {
			t.Error("out-of-range child index accepted")
		}
		bad = append([]shortcutRecord(nil), sc...)
		bad[0].From++
		if _, err := hierarchyFromParts(n, h.Rank(), bad); err == nil {
			t.Error("non-chaining shortcut accepted")
		}
	}
}
