package roadnet

import (
	"math/rand"
	"testing"
)

// Ablation bench (DESIGN.md §6): the many-to-many shortest-path cache.
// Map matching queries repeat source nodes heavily; the LRU of SSSP
// trees turns repeated Dijkstra runs into lookups.

func benchQueries(n *Network, rng *rand.Rand, count int) [][2]NodeID {
	qs := make([][2]NodeID, count)
	// Cluster sources to mimic candidate sets (few sources, many
	// targets).
	sources := make([]NodeID, 8)
	for i := range sources {
		sources[i] = NodeID(rng.Intn(n.NumNodes()))
	}
	for i := range qs {
		qs[i] = [2]NodeID{
			sources[rng.Intn(len(sources))],
			NodeID(rng.Intn(n.NumNodes())),
		}
	}
	return qs
}

func BenchmarkRouterCached(b *testing.B) {
	n := buildGrid(b, 30, 30)
	r := NewRouter(n, WithCacheSize(1024))
	qs := benchQueries(n, rand.New(rand.NewSource(1)), 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		r.NodeDist(q[0], q[1])
	}
}

func BenchmarkRouterUncached(b *testing.B) {
	n := buildGrid(b, 30, 30)
	// Capacity 1 with alternating sources defeats the cache.
	r := NewRouter(n, WithCacheSize(1))
	qs := benchQueries(n, rand.New(rand.NewSource(1)), 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		r.NodeDist(q[0], q[1])
		// Evict by querying from a different source.
		r.NodeDist(qs[(i+1)%len(qs)][0], q[1])
	}
}

func BenchmarkShortestPathWeighted(b *testing.B) {
	n := buildGrid(b, 30, 30)
	rng := rand.New(rand.NewSource(2))
	qs := benchQueries(n, rng, 256)
	weight := func(s *Segment) float64 { return s.Length }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		n.ShortestPathWeighted(q[0], q[1], weight)
	}
}

func BenchmarkSegmentsNear(b *testing.B) {
	n := buildGrid(b, 40, 40)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := n.Node(NodeID(rng.Intn(n.NumNodes()))).P
		n.SegmentsNear(p, 30)
	}
}
