package roadnet

import (
	"testing"

	"repro/internal/geo"
)

// buildGrid builds a w×h lattice with 100 m spacing and two-way local
// streets, returning the network. Node (i,j) has id j*w+i.
func buildGrid(t testing.TB, w, h int) *Network {
	t.Helper()
	var b Builder
	for j := 0; j < h; j++ {
		for i := 0; i < w; i++ {
			b.AddNode(geo.Pt(float64(i)*100, float64(j)*100))
		}
	}
	id := func(i, j int) NodeID { return NodeID(j*w + i) }
	for j := 0; j < h; j++ {
		for i := 0; i < w; i++ {
			if i+1 < w {
				if _, _, err := b.AddTwoWay(id(i, j), id(i+1, j), Local); err != nil {
					t.Fatal(err)
				}
			}
			if j+1 < h {
				if _, _, err := b.AddTwoWay(id(i, j), id(i, j+1), Local); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestBuilderValidation(t *testing.T) {
	var b Builder
	b.AddNode(geo.Pt(0, 0))
	if _, err := b.AddSegment(0, 5, Local); err == nil {
		t.Error("AddSegment with bad to-node did not error")
	}
	if _, err := b.AddSegment(-1, 0, Local); err == nil {
		t.Error("AddSegment with bad from-node did not error")
	}
	if _, err := b.Build(); err == nil {
		t.Error("Build with no segments did not error")
	}
}

func TestGridTopology(t *testing.T) {
	n := buildGrid(t, 4, 3)
	if n.NumNodes() != 12 {
		t.Errorf("NumNodes = %d, want 12", n.NumNodes())
	}
	// Edges: horizontal 3*3=9, vertical 4*2=8, each two-way → 34 segments.
	if n.NumSegments() != 34 {
		t.Errorf("NumSegments = %d, want 34", n.NumSegments())
	}
	// Corner node 0 has two outgoing and two incoming.
	if len(n.Out(0)) != 2 || len(n.In(0)) != 2 {
		t.Errorf("corner degree out=%d in=%d, want 2/2", len(n.Out(0)), len(n.In(0)))
	}
	// Interior node (1,1)=5 has degree 4 both ways.
	if len(n.Out(5)) != 4 || len(n.In(5)) != 4 {
		t.Errorf("interior degree out=%d in=%d, want 4/4", len(n.Out(5)), len(n.In(5)))
	}
	// Next/Prev consistency: every segment following s starts at s.To.
	for i := 0; i < n.NumSegments(); i++ {
		s := n.Segment(SegmentID(i))
		for _, nx := range n.Next(s.ID) {
			if n.Segment(nx).From != s.To {
				t.Fatalf("Next(%d) returned segment not starting at To", s.ID)
			}
		}
		for _, pv := range n.Prev(s.ID) {
			if n.Segment(pv).To != s.From {
				t.Fatalf("Prev(%d) returned segment not ending at From", s.ID)
			}
		}
	}
}

func TestSegmentGeometry(t *testing.T) {
	var b Builder
	a := b.AddNode(geo.Pt(0, 0))
	c := b.AddNode(geo.Pt(100, 0))
	sid, err := b.AddSegment(a, c, Arterial, geo.Pt(50, 50))
	if err != nil {
		t.Fatal(err)
	}
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := n.Segment(sid)
	wantLen := geo.Polyline{geo.Pt(0, 0), geo.Pt(50, 50), geo.Pt(100, 0)}.Length()
	if s.Length != wantLen {
		t.Errorf("Length = %v, want %v", s.Length, wantLen)
	}
	if s.Speed != Arterial.DefaultSpeed() {
		t.Errorf("Speed = %v, want arterial default", s.Speed)
	}
	mid := s.Midpoint()
	if mid.Dist(geo.Pt(50, 50)) > 1e-9 {
		t.Errorf("Midpoint = %v, want (50,50)", mid)
	}
	if p := s.PointAt(0); p != geo.Pt(0, 0) {
		t.Errorf("PointAt(0) = %v", p)
	}
	if p := s.PointAt(1); p != geo.Pt(100, 0) {
		t.Errorf("PointAt(1) = %v", p)
	}
	if p := s.PointAt(-3); p != geo.Pt(0, 0) {
		t.Errorf("PointAt(-3) = %v, want clamp to start", p)
	}
}

func TestSegmentsNearAndWithin(t *testing.T) {
	n := buildGrid(t, 4, 4)
	p := geo.Pt(150, 10) // near the horizontal street y=0 between x=100..200
	near := n.SegmentsNear(p, 2)
	if len(near) != 2 {
		t.Fatalf("SegmentsNear returned %d", len(near))
	}
	for _, sid := range near {
		if d := n.DistTo(sid, p); d > 10+1e-9 {
			t.Errorf("near segment %d at distance %v", sid, d)
		}
	}
	within := n.SegmentsWithin(p, 60)
	if len(within) < 2 {
		t.Fatalf("SegmentsWithin returned %d", len(within))
	}
	for i := 1; i < len(within); i++ {
		if n.DistTo(within[i-1], p) > n.DistTo(within[i], p)+1e-9 {
			t.Error("SegmentsWithin not sorted by distance")
		}
	}
}

func TestProject(t *testing.T) {
	n := buildGrid(t, 2, 1) // single street (0,0)-(100,0), both directions
	var fwd SegmentID = -1
	for i := 0; i < n.NumSegments(); i++ {
		if s := n.Segment(SegmentID(i)); s.From == 0 && s.To == 1 {
			fwd = s.ID
		}
	}
	if fwd < 0 {
		t.Fatal("forward segment not found")
	}
	q, frac := n.Project(fwd, geo.Pt(30, 40))
	if q.Dist(geo.Pt(30, 0)) > 1e-9 || frac < 0.29 || frac > 0.31 {
		t.Errorf("Project = %v frac %v", q, frac)
	}
}

func TestBoundsAndTotalLength(t *testing.T) {
	n := buildGrid(t, 3, 3)
	b := n.Bounds()
	if b.Min != geo.Pt(0, 0) || b.Max != geo.Pt(200, 200) {
		t.Errorf("Bounds = %v", b)
	}
	// 2*2*3 horizontal + vertical unit edges of 100 m, two-way: 24 segments * 100.
	if got := n.TotalLength(); got != 2400 {
		t.Errorf("TotalLength = %v, want 2400", got)
	}
}

func TestClassString(t *testing.T) {
	if Local.String() != "local" || Arterial.String() != "arterial" || Highway.String() != "highway" {
		t.Error("class names wrong")
	}
	if Class(9).String() != "class(9)" {
		t.Errorf("unknown class = %q", Class(9).String())
	}
}
