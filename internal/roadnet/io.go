package roadnet

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/geo"
)

// fileFormat is the on-disk JSON schema for a network.
type fileFormat struct {
	Nodes    []fileNode    `json:"nodes"`
	Segments []fileSegment `json:"segments"`
}

type fileNode struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

type fileSegment struct {
	From  int         `json:"from"`
	To    int         `json:"to"`
	Class int         `json:"class"`
	Speed float64     `json:"speed,omitempty"`
	Via   [][]float64 `json:"via,omitempty"`
}

// Write serializes the network as JSON.
func Write(w io.Writer, n *Network) error {
	ff := fileFormat{
		Nodes:    make([]fileNode, n.NumNodes()),
		Segments: make([]fileSegment, n.NumSegments()),
	}
	for i := 0; i < n.NumNodes(); i++ {
		p := n.Node(NodeID(i)).P
		ff.Nodes[i] = fileNode{X: p.X, Y: p.Y}
	}
	for i := 0; i < n.NumSegments(); i++ {
		s := n.Segment(SegmentID(i))
		fs := fileSegment{
			From:  int(s.From),
			To:    int(s.To),
			Class: int(s.Class),
			Speed: s.Speed,
		}
		for _, p := range s.Shape[1 : len(s.Shape)-1] {
			fs.Via = append(fs.Via, []float64{p.X, p.Y})
		}
		ff.Segments[i] = fs
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(ff); err != nil {
		return fmt.Errorf("roadnet: write: %w", err)
	}
	return nil
}

// Read deserializes a network written by Write.
func Read(rd io.Reader) (*Network, error) {
	var ff fileFormat
	if err := json.NewDecoder(rd).Decode(&ff); err != nil {
		return nil, fmt.Errorf("roadnet: read: %w", err)
	}
	var b Builder
	for _, fn := range ff.Nodes {
		b.AddNode(geo.Pt(fn.X, fn.Y))
	}
	for i, fs := range ff.Segments {
		via := make([]geo.Point, len(fs.Via))
		for j, v := range fs.Via {
			if len(v) != 2 {
				return nil, fmt.Errorf("roadnet: read: segment %d via point %d has %d coords", i, j, len(v))
			}
			via[j] = geo.Pt(v[0], v[1])
		}
		sid, err := b.AddSegment(NodeID(fs.From), NodeID(fs.To), Class(fs.Class), via...)
		if err != nil {
			return nil, fmt.Errorf("roadnet: read: segment %d: %w", i, err)
		}
		if fs.Speed > 0 {
			b.segments[sid].Speed = fs.Speed
		}
	}
	n, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("roadnet: read: %w", err)
	}
	return n, nil
}
