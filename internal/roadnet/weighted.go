package roadnet

import "container/heap"

// ShortestPathWeighted runs an uncached Dijkstra search from one node
// to another under a caller-supplied edge weight (for example, length
// perturbed by per-trip noise to simulate realistic non-shortest
// routes). weight must be non-negative; segments with negative weight
// are skipped. It returns the segment sequence, the total weight, and
// whether a path exists.
func (n *Network) ShortestPathWeighted(from, to NodeID, weight func(*Segment) float64) ([]SegmentID, float64, bool) {
	if from == to {
		return nil, 0, true
	}
	dist := map[NodeID]float64{from: 0}
	parent := map[NodeID]SegmentID{}
	settled := map[NodeID]bool{}
	q := &pq{{from, 0}}
	for q.Len() > 0 {
		cur := heap.Pop(q).(pqItem)
		if settled[cur.node] {
			continue
		}
		settled[cur.node] = true
		if cur.node == to {
			break
		}
		for _, sid := range n.Out(cur.node) {
			seg := n.Segment(sid)
			w := weight(seg)
			if w < 0 {
				continue
			}
			nd := cur.dist + w
			if old, ok := dist[seg.To]; !ok || nd < old {
				dist[seg.To] = nd
				parent[seg.To] = sid
				heap.Push(q, pqItem{seg.To, nd})
			}
		}
	}
	d, ok := dist[to]
	if !ok || !settled[to] {
		return nil, 0, false
	}
	var rev []SegmentID
	cur := to
	for cur != from {
		sid, ok := parent[cur]
		if !ok {
			return nil, 0, false
		}
		rev = append(rev, sid)
		cur = n.Segment(sid).From
	}
	path := make([]SegmentID, len(rev))
	for i, s := range rev {
		path[len(rev)-1-i] = s
	}
	return path, d, true
}

// LargestComponent returns the node ids of the largest weakly-connected
// component (treating segments as undirected). The synthetic generator
// uses it to confine trip endpoints to the routable part of the city
// after random street removal.
func (n *Network) LargestComponent() []NodeID {
	visited := make([]bool, n.NumNodes())
	var best []NodeID
	for start := 0; start < n.NumNodes(); start++ {
		if visited[start] {
			continue
		}
		var comp []NodeID
		stack := []NodeID{NodeID(start)}
		visited[start] = true
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, cur)
			for _, sid := range n.Out(cur) {
				if t := n.Segment(sid).To; !visited[t] {
					visited[t] = true
					stack = append(stack, t)
				}
			}
			for _, sid := range n.In(cur) {
				if f := n.Segment(sid).From; !visited[f] {
					visited[f] = true
					stack = append(stack, f)
				}
			}
		}
		if len(comp) > len(best) {
			best = comp
		}
	}
	return best
}
