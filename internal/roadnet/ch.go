package roadnet

// Contraction Hierarchies over a Network.
//
// BuildHierarchy contracts nodes in edge-difference order, inserting
// shortcut edges that preserve shortest paths among the not-yet-
// contracted remainder, then splits all edges (original + shortcut)
// into an upward and a downward search graph. Queries run as lazy hub
// labeling on top of that: each endpoint gets a label — its exhaustive
// rank-ascending search space, a few hundred nodes where the flat
// search settles tens of thousands — and a source/target pair is
// answered by merge-intersecting the two labels. Labels are cached per
// node (Router), so the k×k transition fan-outs of HMM matching reuse
// each endpoint's label across every pair it appears in.
//
// Exactness contract: the router's canonical path order is the
// lexicographic key (distance, sum of per-segment tie values) — see
// segTie. Every hierarchy edge carries that key; a shortcut's key is
// the componentwise sum of its children's keys, and witness searches
// compare full keys. The canonical minimum-key path is therefore
// preserved through contraction, and the query reproduces the flat
// Dijkstra's path segment for segment. Reported distances are
// recomputed by summing segment lengths left-to-right along the
// unpacked path — the same fold, in the same order, as the flat
// Dijkstra's dist[v] = dist[u] + len accumulation — so they are
// bit-identical too, not merely close.

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/obs"
)

var (
	obsCHShortcuts = obs.Default.Gauge("router.ch.shortcuts")
	obsCHSettled   = obs.Default.Counter("router.ch.settled")
	obsCHQueries   = obs.Default.Counter("router.ch.queries")
)

// chEdge is one edge of the hierarchy: either an original road segment
// (seg >= 0) or a shortcut standing for the two-edge path a then b
// (seg == -1). The (d, t) pair is the edge's canonical path key.
type chEdge struct {
	from, to NodeID
	d        float64
	t        uint64
	seg      int32 // original segment id, or -1 for a shortcut
	a, b     int32 // child edge indices, unpack order a then b
}

// Hierarchy is an immutable Contraction-Hierarchies index over a
// Network. Build one with BuildHierarchy (or load it from a binary
// network file); attach it to a Router with WithHierarchy. Safe for
// concurrent use once built.
type Hierarchy struct {
	net   *Network
	rank  []int32  // node -> contraction order, 0 contracted first
	edges []chEdge // base edges first, then shortcuts in creation order
	nBase int

	// Query graphs, CSR over edge indices. Forward search from u walks
	// upAdj (edges leaving u toward higher rank); backward search from
	// v walks downAdj (edges entering v from higher rank).
	upOff, downOff []int32
	upAdj, downAdj []int32

	pool sync.Pool // *labelScratch
}

// NumShortcuts returns the number of shortcut edges the preprocessing
// added on top of the original segments.
func (h *Hierarchy) NumShortcuts() int { return len(h.edges) - h.nBase }

// witness-search settle budgets. The cheap one estimates contraction
// priorities; the thorough one guards actual shortcut insertion. An
// exhausted budget conservatively inserts the shortcut — never wrong,
// just an extra edge. The insertion budget is deliberately generous:
// skimping there starts a spiral on grid networks (missed witnesses
// add shortcuts, shortcuts inflate degrees and via-distances, which
// exhausts more budgets), and a 38k-node metro grid builds ~10×
// faster with a 1500-settle budget than with 120.
const (
	chPriorityWitnessCap = 96
	chContractWitnessCap = 1500
)

// baseEdges derives the hierarchy's base edge set from the network:
// segments in id order, self-loops dropped (they can never improve a
// canonical key), parallel same-direction edges collapsed to the one
// with the minimum key (the only one a canonical path can use). The
// result is a pure function of the network, which is what lets the
// binary format store shortcuts as indices into it.
func baseEdges(net *Network) []chEdge {
	edges := make([]chEdge, 0, net.NumSegments())
	idx := make(map[uint64]int32, net.NumSegments())
	for i := 0; i < net.NumSegments(); i++ {
		s := net.Segment(SegmentID(i))
		if s.From == s.To {
			continue
		}
		e := chEdge{from: s.From, to: s.To, d: s.Length, t: segTie(SegmentID(i)), seg: int32(i), a: -1, b: -1}
		k := uint64(uint32(s.From))<<32 | uint64(uint32(s.To))
		if j, ok := idx[k]; ok {
			if keyLess(e.d, e.t, edges[j].d, edges[j].t) {
				edges[j] = e
			}
			continue
		}
		idx[k] = int32(len(edges))
		edges = append(edges, e)
	}
	return edges
}

// BuildHierarchy runs Contraction-Hierarchies preprocessing over the
// network. The build is deterministic: ties in the node order break on
// node id, and shortcut creation order follows the contraction order.
func BuildHierarchy(net *Network) *Hierarchy {
	h := &Hierarchy{net: net}
	h.edges = baseEdges(net)
	h.nBase = len(h.edges)
	h.contract()
	h.buildQueryGraph()
	return h
}

// contractState is the mutable overlay graph used during preprocessing.
// The overlay keeps exactly one live edge per (from, to) pair — when a
// new shortcut dominates an existing parallel edge (strictly smaller
// key), the old edge leaves the adjacency lists. Dominated edges can
// never lie on a canonical path, and keeping the lists tight is what
// keeps witness searches and node degrees bounded on grid-like
// networks, where contraction otherwise spirals (every shortcut
// inflates degrees, which defeats witness searches, which adds more
// shortcuts).
type contractState struct {
	h          *Hierarchy
	outAdj     [][]int32 // node -> live edge indices leaving it
	inAdj      [][]int32 // node -> live edge indices entering it
	contracted []bool
	deletedN   []int32 // contracted-neighbor count (coherence term)
	level      []int32 // hierarchy depth: 1 + max level of contracted neighbors
	wit        witScratch

	// per-contraction scratch: min-key overlay edge per neighbor
	inMin, outMin []int32 // neighbor-indexed lists rebuilt per node
}

// witScratch is a version-stamped single-source search state reused
// across the many small witness searches of a build.
type witScratch struct {
	dist []float64
	tie  []uint64
	verD []int32 // stamp for dist/tie validity
	verS []int32 // stamp for settled
	verT []int32 // stamp for "is a target of the current one-to-many"
	cur  int32
	q    keyPQ
}

func (w *witScratch) init(n int) {
	w.dist = make([]float64, n)
	w.tie = make([]uint64, n)
	w.verD = make([]int32, n)
	w.verS = make([]int32, n)
	w.verT = make([]int32, n)
}

func (h *Hierarchy) contract() {
	n := h.net.NumNodes()
	st := &contractState{
		h:          h,
		outAdj:     make([][]int32, n),
		inAdj:      make([][]int32, n),
		contracted: make([]bool, n),
		deletedN:   make([]int32, n),
		level:      make([]int32, n),
	}
	st.wit.init(n)
	for i := range h.edges {
		e := &h.edges[i]
		st.outAdj[e.from] = append(st.outAdj[e.from], int32(i))
		st.inAdj[e.to] = append(st.inAdj[e.to], int32(i))
	}

	h.rank = make([]int32, n)
	pq := make(nodePQ, 0, n)
	for v := 0; v < n; v++ {
		pq = append(pq, nodeOrderItem{pri: st.priority(NodeID(v)), node: NodeID(v)})
	}
	heap.Init(&pq)

	order := int32(0)
	for pq.Len() > 0 {
		top := heap.Pop(&pq).(nodeOrderItem)
		v := top.node
		if st.contracted[v] {
			continue
		}
		// Lazy update: neighbors contracted since this entry was pushed
		// may have changed the priority. Recompute; if the node no
		// longer leads, push it back and take the new leader.
		if pri := st.priority(v); pq.Len() > 0 && pri > pq[0].pri {
			heap.Push(&pq, nodeOrderItem{pri: pri, node: v})
			continue
		}
		st.addShortcuts(v, true, chContractWitnessCap)
		st.contracted[v] = true
		h.rank[v] = order
		order++
		for _, ei := range st.outAdj[v] {
			if to := h.edges[ei].to; !st.contracted[to] {
				st.deletedN[to]++
				if st.level[to] < st.level[v]+1 {
					st.level[to] = st.level[v] + 1
				}
			}
		}
		for _, ei := range st.inAdj[v] {
			if from := h.edges[ei].from; !st.contracted[from] {
				st.deletedN[from]++
				if st.level[from] < st.level[v]+1 {
					st.level[from] = st.level[v] + 1
				}
			}
		}
	}
}

// priority is the contraction-order heuristic: edge difference
// (shortcuts a contraction would add minus overlay edges it removes)
// weighted double, plus the contracted-neighbor count and the
// hierarchy depth. The depth term is what keeps grid-like networks
// tractable: without it, contraction eats the dense core from one side
// and the frontier nodes accumulate enormous overlay degrees.
func (st *contractState) priority(v NodeID) int32 {
	added, removed := st.addShortcuts(v, false, chPriorityWitnessCap)
	return 2*(added-removed) + st.deletedN[v] + st.level[v]
}

// neighborMins rebuilds st.inMin/st.outMin with the live overlay edges
// to/from v's uncontracted neighbors. The overlay invariant (one live
// edge per pair, always the minimum-key one) means no per-pair
// minimization is needed here.
func (st *contractState) neighborMins(v NodeID) {
	h := st.h
	st.inMin = st.inMin[:0]
	for _, ei := range st.inAdj[v] {
		e := &h.edges[ei]
		if !st.contracted[e.from] && e.from != v {
			st.inMin = append(st.inMin, ei)
		}
	}
	st.outMin = st.outMin[:0]
	for _, ei := range st.outAdj[v] {
		e := &h.edges[ei]
		if !st.contracted[e.to] && e.to != v {
			st.outMin = append(st.outMin, ei)
		}
	}
}

// addShortcuts determines (and with materialize=true, inserts) the
// shortcuts contracting v requires: for each in-neighbor u and
// out-neighbor w, a shortcut u->w unless a witness path avoiding v is
// strictly better than the path through v. Returns the shortcut count
// and the number of overlay edges incident to v (the "removed" term of
// the edge difference).
func (st *contractState) addShortcuts(v NodeID, materialize bool, witnessCap int) (added, removed int32) {
	h := st.h
	st.neighborMins(v)
	removed = int32(len(st.inMin) + len(st.outMin))
	if len(st.inMin) == 0 || len(st.outMin) == 0 {
		return 0, removed
	}
	for _, inIdx := range st.inMin {
		eIn := h.edges[inIdx] // by value: appends below may grow h.edges
		u := eIn.from
		// One bounded search from u covers all targets w. The search
		// never enters v; its d-bound is the largest via-v distance.
		maxD := 0.0
		targets := 0
		for _, outIdx := range st.outMin {
			eOut := &h.edges[outIdx]
			if eOut.to == u {
				continue
			}
			st.wit.markTarget(eOut.to)
			targets++
			if d := eIn.d + eOut.d; d > maxD {
				maxD = d
			}
		}
		if targets == 0 {
			continue
		}
		st.witnessSearch(u, v, maxD, witnessCap, targets)
		for _, outIdx := range st.outMin {
			eOut := h.edges[outIdx]
			w := eOut.to
			if w == u {
				continue
			}
			viaD, viaT := eIn.d+eOut.d, eIn.t+eOut.t
			if st.wit.settledBetter(w, viaD, viaT) {
				continue // witness found: canonical path avoids v
			}
			added++
			if materialize {
				st.insertShortcut(u, w, viaD, viaT, inIdx, outIdx)
			}
		}
	}
	return added, removed
}

// insertShortcut adds a shortcut edge, maintaining the one-live-edge-
// per-pair overlay invariant: if an existing edge u->w carries a key at
// least as small the shortcut is dropped (it can never be on a
// canonical path); otherwise the existing edge is dominated and leaves
// the overlay.
func (st *contractState) insertShortcut(u, w NodeID, d float64, t uint64, a, b int32) {
	h := st.h
	for k, ei := range st.outAdj[u] {
		e := &h.edges[ei]
		if e.to != w {
			continue
		}
		if !keyLess(d, t, e.d, e.t) {
			return
		}
		ni := int32(len(h.edges))
		h.edges = append(h.edges, chEdge{from: u, to: w, d: d, t: t, seg: -1, a: a, b: b})
		st.outAdj[u][k] = ni
		in := st.inAdj[w]
		for k2, ej := range in {
			if ej == ei {
				in[k2] = ni
				break
			}
		}
		return
	}
	ei := int32(len(h.edges))
	h.edges = append(h.edges, chEdge{from: u, to: w, d: d, t: t, seg: -1, a: a, b: b})
	st.outAdj[u] = append(st.outAdj[u], ei)
	st.inAdj[w] = append(st.inAdj[w], ei)
}

// markTarget flags a node as a target of the next witnessSearch call.
func (w *witScratch) markTarget(node NodeID) { w.verT[node] = w.cur + 1 }

// witnessSearch runs a bounded canonical Dijkstra from u over the
// uncontracted overlay excluding node v, settling at most cap nodes,
// abandoning distances beyond maxD, and stopping early once every
// marked target has settled. Results are read back with settledBetter.
func (st *contractState) witnessSearch(u, v NodeID, maxD float64, cap, targets int) {
	h, w := st.h, &st.wit
	w.cur++
	w.q = w.q[:0]
	w.dist[u], w.tie[u], w.verD[u] = 0, 0, w.cur
	w.q = append(w.q, keyItem{node: u})
	settled := 0
	for len(w.q) > 0 && settled < cap && targets > 0 {
		cur := heap.Pop(&w.q).(keyItem)
		if w.verS[cur.node] == w.cur {
			continue
		}
		w.verS[cur.node] = w.cur
		settled++
		if w.verT[cur.node] == w.cur {
			targets--
		}
		if cur.dist > maxD {
			break
		}
		for _, ei := range st.outAdj[cur.node] {
			e := &h.edges[ei]
			if e.to == v || st.contracted[e.to] {
				continue
			}
			nd := cur.dist + e.d
			if nd > maxD {
				continue
			}
			nt := cur.tie + e.t
			if w.verD[e.to] == w.cur && !keyLess(nd, nt, w.dist[e.to], w.tie[e.to]) {
				continue
			}
			w.dist[e.to], w.tie[e.to], w.verD[e.to] = nd, nt, w.cur
			heap.Push(&w.q, keyItem{node: e.to, dist: nd, tie: nt})
		}
	}
}

// settledBetter reports whether the last witness search definitively
// found a path to w with key strictly less than (viaD, viaT). Only
// settled nodes count: a tentative distance could still shrink, and an
// exhausted budget must not suppress a needed shortcut.
func (w *witScratch) settledBetter(node NodeID, viaD float64, viaT uint64) bool {
	return w.verS[node] == w.cur && keyLess(w.dist[node], w.tie[node], viaD, viaT)
}

// nodeOrderItem / nodePQ: the lazy contraction-order queue.
type nodeOrderItem struct {
	pri  int32
	node NodeID
}

type nodePQ []nodeOrderItem

func (q nodePQ) Len() int { return len(q) }
func (q nodePQ) Less(i, j int) bool {
	if q[i].pri != q[j].pri {
		return q[i].pri < q[j].pri
	}
	return q[i].node < q[j].node
}
func (q nodePQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodePQ) Push(x interface{}) { *q = append(*q, x.(nodeOrderItem)) }
func (q *nodePQ) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// buildQueryGraph splits edges into the upward (forward-search) or
// downward (backward-search) CSR by endpoint rank. Only the minimum-
// key edge of each (from, to) pair enters the query graph — dominated
// parallels (shortcuts superseded by better later shortcuts, or base
// edges beaten by a two-hop path) cannot lie on a canonical path, and
// dropping them here reproduces exactly the live-overlay set the
// contraction ended with, for built and loaded hierarchies alike.
// Dominated edges stay in h.edges: shortcut unpacking may still
// reference them as children. Edge indices are laid down in index
// order, so per-node adjacency is deterministic.
func (h *Hierarchy) buildQueryGraph() {
	n := h.net.NumNodes()
	live := make(map[uint64]int32, len(h.edges))
	for i := range h.edges {
		e := &h.edges[i]
		k := uint64(uint32(e.from))<<32 | uint64(uint32(e.to))
		if j, ok := live[k]; !ok || keyLess(e.d, e.t, h.edges[j].d, h.edges[j].t) {
			live[k] = int32(i)
		}
	}
	isLive := make([]bool, len(h.edges))
	for _, i := range live {
		isLive[i] = true
	}
	h.upOff = make([]int32, n+1)
	h.downOff = make([]int32, n+1)
	for i := range h.edges {
		if !isLive[i] {
			continue
		}
		e := &h.edges[i]
		if h.rank[e.from] < h.rank[e.to] {
			h.upOff[e.from+1]++
		} else {
			h.downOff[e.to+1]++
		}
	}
	for v := 0; v < n; v++ {
		h.upOff[v+1] += h.upOff[v]
		h.downOff[v+1] += h.downOff[v]
	}
	h.upAdj = make([]int32, h.upOff[n])
	h.downAdj = make([]int32, h.downOff[n])
	upCur := append([]int32(nil), h.upOff[:n]...)
	downCur := append([]int32(nil), h.downOff[:n]...)
	for i := range h.edges {
		if !isLive[i] {
			continue
		}
		e := &h.edges[i]
		if h.rank[e.from] < h.rank[e.to] {
			h.upAdj[upCur[e.from]] = int32(i)
			upCur[e.from]++
		} else {
			h.downAdj[downCur[e.to]] = int32(i)
			downCur[e.to]++
		}
	}
}

// chLabel is one node's half of a CH query: every node its upward
// (forward) or downward (backward) search settles without stalling,
// with canonical search keys and parent edges, sorted by node id. A
// pairwise query is then one merge-intersection of two labels — lazy
// hub labeling. Labels are immutable once built; the Router caches
// them per node, which turns the k×k routed-transition pattern of HMM
// matching into ~2k label builds plus k² cheap merges instead of k²
// full bidirectional searches.
type chLabel struct {
	nodes []NodeID
	d     []float64
	t     []uint64
	par   []int32 // edge index into h.edges reaching nodes[i]; -1 at the root
}

func (l *chLabel) Len() int { return len(l.nodes) }
func (l *chLabel) Less(i, j int) bool {
	return l.nodes[i] < l.nodes[j]
}
func (l *chLabel) Swap(i, j int) {
	l.nodes[i], l.nodes[j] = l.nodes[j], l.nodes[i]
	l.d[i], l.d[j] = l.d[j], l.d[i]
	l.t[i], l.t[j] = l.t[j], l.t[i]
	l.par[i], l.par[j] = l.par[j], l.par[i]
}

// find locates a node in the sorted label; every parent-chain node of a
// labeled node is itself labeled (only non-stalled settled nodes relax),
// so lookups during path unpacking always hit.
func (l *chLabel) find(n NodeID) int {
	lo, hi := 0, len(l.nodes)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.nodes[mid] < n {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// labelScratch holds pooled label-build search state. CH search spaces
// are tiny (upward cones), so maps beat O(n) arrays here.
type labelScratch struct {
	dist map[NodeID]float64
	tie  map[NodeID]uint64
	par  map[NodeID]int32
	done map[NodeID]bool
	q    keyPQ
}

func (h *Hierarchy) getScratch() *labelScratch {
	if s, ok := h.pool.Get().(*labelScratch); ok {
		clear(s.dist)
		clear(s.tie)
		clear(s.par)
		clear(s.done)
		s.q = s.q[:0]
		return s
	}
	return &labelScratch{
		dist: map[NodeID]float64{},
		tie:  map[NodeID]uint64{},
		par:  map[NodeID]int32{},
		done: map[NodeID]bool{},
	}
}

// buildLabel runs one exhaustive rank-ascending search from root and
// returns its label. Forward labels follow upAdj (edges toward higher
// rank); backward labels follow downAdj in reverse (nodes that reach
// the root by descending). The d-bound is slackened by a hair: search
// keys accumulate in shortcut-tree order and may differ from the exact
// left-to-right fold in the last ulps, so admission is loose here and
// the exact recomputed distance decides reachability per query.
//
// Stall-on-demand: a node with a strictly better path arriving by
// descending from a higher-ranked labeled node cannot lie on any
// canonical up-down path, so it is settled but kept out of the label
// and never relaxed — the pruning that keeps labels small on grid
// networks. Dropping stalled nodes is safe for meets too: a candidate
// through one is a real path with key ≥ the canonical key, and the
// canonical path's own apex never stalls (stalling evidence would
// compose to a path with a smaller key — a contradiction).
func (h *Hierarchy) buildLabel(root NodeID, forward bool, maxDist float64) *chLabel {
	s := h.getScratch()
	defer h.pool.Put(s)
	bound := maxDist * (1 + 1e-9)
	s.dist[root], s.tie[root], s.par[root] = 0, 0, -1
	s.q = append(s.q, keyItem{node: root})
	lab := &chLabel{}
	settled := 0
	for len(s.q) > 0 {
		cur := heap.Pop(&s.q).(keyItem)
		if s.done[cur.node] {
			continue
		}
		s.done[cur.node] = true
		settled++

		var opp, adj []int32
		if forward {
			opp = h.downAdj[h.downOff[cur.node]:h.downOff[cur.node+1]]
			adj = h.upAdj[h.upOff[cur.node]:h.upOff[cur.node+1]]
		} else {
			opp = h.upAdj[h.upOff[cur.node]:h.upOff[cur.node+1]]
			adj = h.downAdj[h.downOff[cur.node]:h.downOff[cur.node+1]]
		}
		stalled := false
		for _, ei := range opp {
			e := &h.edges[ei]
			y := e.from
			if !forward {
				y = e.to
			}
			if yd, ok := s.dist[y]; ok && keyLess(yd+e.d, s.tie[y]+e.t, cur.dist, cur.tie) {
				stalled = true
				break
			}
		}
		if stalled {
			continue
		}
		lab.nodes = append(lab.nodes, cur.node)
		lab.d = append(lab.d, cur.dist)
		lab.t = append(lab.t, cur.tie)
		lab.par = append(lab.par, s.par[cur.node])

		for _, ei := range adj {
			e := &h.edges[ei]
			next := e.to
			if !forward {
				next = e.from
			}
			nd := cur.dist + e.d
			if nd > bound {
				continue
			}
			nt := cur.tie + e.t
			if od, ok := s.dist[next]; ok && !keyLess(nd, nt, od, s.tie[next]) {
				continue
			}
			s.dist[next], s.tie[next], s.par[next] = nd, nt, ei
			heap.Push(&s.q, keyItem{node: next, dist: nd, tie: nt})
		}
	}
	obsCHSettled.Add(int64(settled))
	sort.Sort(lab)
	return lab
}

// labelMeet merge-intersects a forward and a backward label and returns
// the indices of the canonical meet — the node minimizing the combined
// (dist, tie) key. ok=false means the labels share no node, i.e. the
// target is unreachable within the labels' bound. Splits of the same
// canonical path at different meets differ only in the last ulps of the
// combined search key and unpack to the same segment sequence, so any
// winner yields the exact same result.
func labelMeet(lf, lb *chLabel) (fi, bi int, ok bool) {
	bestD, bestT := math.Inf(1), ^uint64(0)
	fi, bi = -1, -1
	i, j := 0, 0
	for i < len(lf.nodes) && j < len(lb.nodes) {
		a, b := lf.nodes[i], lb.nodes[j]
		switch {
		case a == b:
			if cd, ct := lf.d[i]+lb.d[j], lf.t[i]+lb.t[j]; keyLess(cd, ct, bestD, bestT) {
				bestD, bestT, fi, bi = cd, ct, i, j
			}
			i++
			j++
		case a < b:
			i++
		default:
			j++
		}
	}
	return fi, bi, fi >= 0
}

// expandEdge emits the original segments of an edge left to right,
// recursively unpacking shortcuts.
func (h *Hierarchy) expandEdge(ei int32, fn func(SegmentID)) {
	e := &h.edges[ei]
	if e.seg >= 0 {
		fn(SegmentID(e.seg))
		return
	}
	h.expandEdge(e.a, fn)
	h.expandEdge(e.b, fn)
}

// walkLabels emits the full canonical path in forward order, one
// original segment at a time, by following parent chains out from the
// meet in both labels.
func (h *Hierarchy) walkLabels(lf, lb *chLabel, fi, bi int, fn func(SegmentID)) {
	// Forward half: parent edges lead meet -> root; collect and reverse.
	var stack [64]int32
	chain := stack[:0]
	for i := fi; lf.par[i] >= 0; {
		ei := lf.par[i]
		chain = append(chain, ei)
		i = lf.find(h.edges[ei].from)
	}
	for k := len(chain) - 1; k >= 0; k-- {
		h.expandEdge(chain[k], fn)
	}
	// Backward half: parent edges already point along travel direction.
	for j := bi; lb.par[j] >= 0; {
		ei := lb.par[j]
		h.expandEdge(ei, fn)
		j = lb.find(h.edges[ei].to)
	}
}

// distLabels returns the canonical shortest-path distance between the
// labels' roots without materializing the path: the unpacked segments
// are folded left to right, reproducing the flat Dijkstra's
// dist[v] = dist[u] + len accumulation bit for bit.
func (h *Hierarchy) distLabels(lf, lb *chLabel, maxDist float64) (float64, bool) {
	obsCHQueries.Inc()
	fi, bi, ok := labelMeet(lf, lb)
	if !ok {
		return 0, false
	}
	d := 0.0
	h.walkLabels(lf, lb, fi, bi, func(sid SegmentID) { d += h.net.Segment(sid).Length })
	if d > maxDist {
		return 0, false
	}
	return d, true
}

// pathLabels returns the canonical shortest path and its distance.
func (h *Hierarchy) pathLabels(lf, lb *chLabel, maxDist float64) ([]SegmentID, float64, bool) {
	obsCHQueries.Inc()
	fi, bi, ok := labelMeet(lf, lb)
	if !ok {
		return nil, 0, false
	}
	var segs []SegmentID
	d := 0.0
	h.walkLabels(lf, lb, fi, bi, func(sid SegmentID) {
		segs = append(segs, sid)
		d += h.net.Segment(sid).Length
	})
	if d > maxDist {
		return nil, 0, false
	}
	return segs, d, true
}

// shortcutRecord is the serializable form of one shortcut: endpoints
// plus child edge indices into the deterministic edge numbering (base
// edges in baseEdges order, then shortcuts in creation order). Keys are
// recomputed from children on load.
type shortcutRecord struct {
	From, To NodeID
	A, B     int32
}

// Shortcuts returns the hierarchy's shortcut records in creation order.
func (h *Hierarchy) Shortcuts() []shortcutRecord {
	recs := make([]shortcutRecord, 0, h.NumShortcuts())
	for i := h.nBase; i < len(h.edges); i++ {
		e := &h.edges[i]
		recs = append(recs, shortcutRecord{From: e.from, To: e.to, A: e.a, B: e.b})
	}
	return recs
}

// Rank returns the contraction order of every node (read-only view).
func (h *Hierarchy) Rank() []int32 { return h.rank }

// hierarchyFromParts reassembles a Hierarchy from its serialized parts:
// the node ranks and the shortcut records. Base edges and all keys are
// rederived from the network, which both keeps the binary format small
// and revalidates it against the network it is loaded with.
func hierarchyFromParts(net *Network, rank []int32, shortcuts []shortcutRecord) (*Hierarchy, error) {
	if len(rank) != net.NumNodes() {
		return nil, fmt.Errorf("roadnet: hierarchy rank count %d does not match %d nodes", len(rank), net.NumNodes())
	}
	h := &Hierarchy{net: net, rank: rank}
	h.edges = baseEdges(net)
	h.nBase = len(h.edges)
	for i, r := range shortcuts {
		n := int32(len(h.edges))
		if r.A < 0 || r.A >= n || r.B < 0 || r.B >= n {
			return nil, fmt.Errorf("roadnet: shortcut %d child out of range", i)
		}
		ea, eb := &h.edges[r.A], &h.edges[r.B]
		if int(r.From) < 0 || int(r.From) >= net.NumNodes() || int(r.To) < 0 || int(r.To) >= net.NumNodes() {
			return nil, fmt.Errorf("roadnet: shortcut %d endpoint out of range", i)
		}
		if ea.from != r.From || ea.to != eb.from || eb.to != r.To {
			return nil, fmt.Errorf("roadnet: shortcut %d children do not chain %d->%d", i, r.From, r.To)
		}
		h.edges = append(h.edges, chEdge{
			from: r.From, to: r.To,
			d: ea.d + eb.d, t: ea.t + eb.t,
			seg: -1, a: r.A, b: r.B,
		})
	}
	h.buildQueryGraph()
	return h, nil
}
