package roadnet

// Versioned binary network format ("LNET"). The JSON format in io.go
// stays the interchange format; this one exists so a ~100k-segment
// city loads in milliseconds: flat little-endian slabs that decode
// into the Network's CSR representation with no per-segment parsing,
// plus an optional Contraction-Hierarchies section (node ranks and
// shortcut child indices — keys and base edges are rederived from the
// network on load, which cross-validates the section against the
// graph it ships with).
//
// Layout (all little-endian, CRC-32/IEEE of everything before it at
// the tail):
//
//	magic "LNET" | u32 version=1 | u32 flags (bit0 = CH section)
//	u64 nodes | u64 segments | u64 viaPoints
//	nodes    × (f64 x, f64 y)
//	segments × (u32 from, u32 to, u8 class, f64 speed)
//	(segments+1) × u32 cumulative via-point offsets
//	viaPoints × (f64 x, f64 y)   — interior shape points only
//	[CH] nodes × u32 rank | u64 shortcuts | shortcuts × (u32 from, u32 to, u32 a, u32 b)
//	u32 crc
//
// Segment lengths are recomputed from the decoded shapes with the same
// left-to-right fold Builder uses, so a loaded network is bit-identical
// to one built from the same inputs.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/geo"
)

const (
	lnetMagic     = "LNET"
	lnetVersion   = 1
	lnetFlagCH    = 1 << 0
	lnetKnownFlag = lnetFlagCH
)

type binWriter struct{ buf []byte }

func (w *binWriter) u8(v uint8)    { w.buf = append(w.buf, v) }
func (w *binWriter) u32(v uint32)  { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *binWriter) u64(v uint64)  { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *binWriter) f64(v float64) { w.u64(math.Float64bits(v)) }

type binReader struct {
	buf []byte
	off int
	err error
}

func (r *binReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("roadnet: truncated binary network (need %d bytes at offset %d of %d)", n, r.off, len(r.buf))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *binReader) u8() uint8 {
	if b := r.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (r *binReader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *binReader) u64() uint64 {
	if b := r.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (r *binReader) f64() float64 { return math.Float64frombits(r.u64()) }

// WriteBinary serializes the network — and, when h is non-nil, its
// Contraction Hierarchy — in the LNET binary format.
func WriteBinary(w io.Writer, n *Network, h *Hierarchy) error {
	if h != nil && h.net != n {
		return fmt.Errorf("roadnet: hierarchy was built over a different network")
	}
	var bw binWriter
	via := 0
	for i := 0; i < n.NumSegments(); i++ {
		via += len(n.Segment(SegmentID(i)).Shape) - 2
	}
	est := 64 + n.NumNodes()*16 + n.NumSegments()*21 + via*16
	bw.buf = make([]byte, 0, est)

	bw.buf = append(bw.buf, lnetMagic...)
	bw.u32(lnetVersion)
	flags := uint32(0)
	if h != nil {
		flags |= lnetFlagCH
	}
	bw.u32(flags)
	bw.u64(uint64(n.NumNodes()))
	bw.u64(uint64(n.NumSegments()))
	bw.u64(uint64(via))

	for i := 0; i < n.NumNodes(); i++ {
		p := n.Node(NodeID(i)).P
		bw.f64(p.X)
		bw.f64(p.Y)
	}
	for i := 0; i < n.NumSegments(); i++ {
		s := n.Segment(SegmentID(i))
		bw.u32(uint32(s.From))
		bw.u32(uint32(s.To))
		bw.u8(uint8(s.Class))
		bw.f64(s.Speed)
	}
	off := uint32(0)
	bw.u32(off)
	for i := 0; i < n.NumSegments(); i++ {
		off += uint32(len(n.Segment(SegmentID(i)).Shape) - 2)
		bw.u32(off)
	}
	for i := 0; i < n.NumSegments(); i++ {
		shape := n.Segment(SegmentID(i)).Shape
		for _, p := range shape[1 : len(shape)-1] {
			bw.f64(p.X)
			bw.f64(p.Y)
		}
	}
	if h != nil {
		for _, r := range h.rank {
			bw.u32(uint32(r))
		}
		sc := h.Shortcuts()
		bw.u64(uint64(len(sc)))
		for _, r := range sc {
			bw.u32(uint32(r.From))
			bw.u32(uint32(r.To))
			bw.u32(uint32(r.A))
			bw.u32(uint32(r.B))
		}
	}
	bw.u32(crc32.ChecksumIEEE(bw.buf))
	if _, err := w.Write(bw.buf); err != nil {
		return fmt.Errorf("roadnet: write binary: %w", err)
	}
	return nil
}

// ReadBinary deserializes a network written by WriteBinary. The
// returned Hierarchy is nil when the file has no CH section.
func ReadBinary(rd io.Reader) (*Network, *Hierarchy, error) {
	buf, err := io.ReadAll(rd)
	if err != nil {
		return nil, nil, fmt.Errorf("roadnet: read binary: %w", err)
	}
	if len(buf) < len(lnetMagic)+12+4 || string(buf[:4]) != lnetMagic {
		return nil, nil, fmt.Errorf("roadnet: not an LNET binary network")
	}
	payload, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(tail); got != want {
		return nil, nil, fmt.Errorf("roadnet: binary network checksum mismatch (file %08x, computed %08x)", want, got)
	}
	r := &binReader{buf: payload, off: 4}
	if v := r.u32(); v != lnetVersion {
		return nil, nil, fmt.Errorf("roadnet: unsupported binary network version %d", v)
	}
	flags := r.u32()
	if flags&^uint32(lnetKnownFlag) != 0 {
		return nil, nil, fmt.Errorf("roadnet: unknown binary network flags %#x", flags)
	}
	nNodes, nSegs, nVia := r.u64(), r.u64(), r.u64()
	const sane = 1 << 31
	if nNodes == 0 || nSegs == 0 || nNodes > sane || nSegs > sane || nVia > sane {
		return nil, nil, fmt.Errorf("roadnet: implausible binary network header (%d nodes, %d segments, %d via points)", nNodes, nSegs, nVia)
	}

	nodes := make([]Node, nNodes)
	for i := range nodes {
		nodes[i] = Node{ID: NodeID(i), P: geo.Pt(r.f64(), r.f64())}
	}
	segments := make([]Segment, nSegs)
	for i := range segments {
		from, to := NodeID(r.u32()), NodeID(r.u32())
		class := Class(r.u8())
		speed := r.f64()
		if r.err != nil {
			return nil, nil, r.err
		}
		if int(from) >= len(nodes) || int(to) >= len(nodes) {
			return nil, nil, fmt.Errorf("roadnet: segment %d references node out of range", i)
		}
		if class > Highway {
			return nil, nil, fmt.Errorf("roadnet: segment %d has unknown class %d", i, class)
		}
		segments[i] = Segment{ID: SegmentID(i), From: from, To: to, Class: class, Speed: speed}
	}
	viaOff := make([]uint32, nSegs+1)
	for i := range viaOff {
		viaOff[i] = r.u32()
	}
	if r.err == nil && uint64(viaOff[nSegs]) != nVia {
		return nil, nil, fmt.Errorf("roadnet: via offsets end at %d, header says %d", viaOff[nSegs], nVia)
	}
	viaPts := make([]geo.Point, nVia)
	for i := range viaPts {
		viaPts[i] = geo.Pt(r.f64(), r.f64())
	}
	if r.err != nil {
		return nil, nil, r.err
	}
	for i := range segments {
		s := &segments[i]
		a, b := viaOff[i], viaOff[i+1]
		if b < a {
			return nil, nil, fmt.Errorf("roadnet: segment %d has decreasing via offsets", i)
		}
		shape := make(geo.Polyline, 0, int(b-a)+2)
		shape = append(shape, nodes[s.From].P)
		shape = append(shape, viaPts[a:b]...)
		shape = append(shape, nodes[s.To].P)
		s.Shape = shape
		s.Length = shape.Length()
	}

	net := assemble(nodes, segments)

	var h *Hierarchy
	if flags&lnetFlagCH != 0 {
		rank := make([]int32, nNodes)
		seen := make([]bool, nNodes)
		for i := range rank {
			v := r.u32()
			if r.err == nil && (uint64(v) >= nNodes || seen[v]) {
				return nil, nil, fmt.Errorf("roadnet: node ranks are not a permutation")
			}
			if r.err == nil {
				seen[v] = true
			}
			rank[i] = int32(v)
		}
		nSC := r.u64()
		if nSC > sane {
			return nil, nil, fmt.Errorf("roadnet: implausible shortcut count %d", nSC)
		}
		shortcuts := make([]shortcutRecord, nSC)
		for i := range shortcuts {
			shortcuts[i] = shortcutRecord{
				From: NodeID(r.u32()), To: NodeID(r.u32()),
				A: int32(r.u32()), B: int32(r.u32()),
			}
		}
		if r.err != nil {
			return nil, nil, r.err
		}
		h, err = hierarchyFromParts(net, rank, shortcuts)
		if err != nil {
			return nil, nil, err
		}
	}
	if r.err != nil {
		return nil, nil, r.err
	}
	if r.off != len(payload) {
		return nil, nil, fmt.Errorf("roadnet: %d trailing bytes in binary network", len(payload)-r.off)
	}
	return net, h, nil
}
