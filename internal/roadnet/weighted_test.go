package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
)

func TestShortestPathWeightedMatchesRouter(t *testing.T) {
	n := buildGrid(t, 5, 5)
	r := NewRouter(n)
	rng := rand.New(rand.NewSource(1))
	lengthWeight := func(s *Segment) float64 { return s.Length }
	for trial := 0; trial < 100; trial++ {
		a := NodeID(rng.Intn(25))
		b := NodeID(rng.Intn(25))
		_, d1, ok1 := n.ShortestPathWeighted(a, b, lengthWeight)
		d2, ok2 := r.NodeDist(a, b)
		if ok1 != ok2 {
			t.Fatalf("reachability mismatch %d->%d", a, b)
		}
		if ok1 && math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("distance mismatch %d->%d: %v vs %v", a, b, d1, d2)
		}
	}
}

func TestShortestPathWeightedCustomWeights(t *testing.T) {
	// Two routes from 0 to 3: direct long segment vs two short ones.
	var b Builder
	n0 := b.AddNode(geo.Pt(0, 0))
	n1 := b.AddNode(geo.Pt(100, 100))
	n3 := b.AddNode(geo.Pt(200, 0))
	direct, err := b.AddSegment(n0, n3, Local)
	if err != nil {
		t.Fatal(err)
	}
	up, err := b.AddSegment(n0, n1, Local)
	if err != nil {
		t.Fatal(err)
	}
	down, err := b.AddSegment(n1, n3, Local)
	if err != nil {
		t.Fatal(err)
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// By length the direct segment wins.
	path, _, ok := net.ShortestPathWeighted(n0, n3, func(s *Segment) float64 { return s.Length })
	if !ok || len(path) != 1 || path[0] != direct {
		t.Fatalf("length-weight path = %v", path)
	}
	// Penalize the direct segment and the detour wins.
	path, _, ok = net.ShortestPathWeighted(n0, n3, func(s *Segment) float64 {
		if s.ID == direct {
			return s.Length * 10
		}
		return s.Length
	})
	if !ok || len(path) != 2 || path[0] != up || path[1] != down {
		t.Fatalf("penalized path = %v", path)
	}
	// Negative weight skips the edge entirely.
	_, _, ok = net.ShortestPathWeighted(n0, n1, func(s *Segment) float64 { return -1 })
	if ok {
		t.Error("all-negative weights still found a path")
	}
	// Self route.
	if p, d, ok := net.ShortestPathWeighted(n0, n0, func(s *Segment) float64 { return s.Length }); !ok || d != 0 || p != nil {
		t.Errorf("self route = %v %v %v", p, d, ok)
	}
}

func TestLargestComponent(t *testing.T) {
	var b Builder
	// Component A: 3 nodes in a line. Component B: 2 nodes.
	a0 := b.AddNode(geo.Pt(0, 0))
	a1 := b.AddNode(geo.Pt(100, 0))
	a2 := b.AddNode(geo.Pt(200, 0))
	b0 := b.AddNode(geo.Pt(9000, 9000))
	b1 := b.AddNode(geo.Pt(9100, 9000))
	for _, pair := range [][2]NodeID{{a0, a1}, {a1, a2}, {b0, b1}} {
		if _, _, err := b.AddTwoWay(pair[0], pair[1], Local); err != nil {
			t.Fatal(err)
		}
	}
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	comp := n.LargestComponent()
	if len(comp) != 3 {
		t.Fatalf("LargestComponent size = %d, want 3", len(comp))
	}
	in := map[NodeID]bool{}
	for _, id := range comp {
		in[id] = true
	}
	if !in[a0] || !in[a1] || !in[a2] {
		t.Errorf("LargestComponent = %v", comp)
	}
}
