package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
)

func TestShortestPathWeightedMatchesRouter(t *testing.T) {
	n := buildGrid(t, 5, 5)
	r := NewRouter(n)
	rng := rand.New(rand.NewSource(1))
	lengthWeight := func(s *Segment) float64 { return s.Length }
	for trial := 0; trial < 100; trial++ {
		a := NodeID(rng.Intn(25))
		b := NodeID(rng.Intn(25))
		_, d1, ok1 := n.ShortestPathWeighted(a, b, lengthWeight)
		d2, ok2 := r.NodeDist(a, b)
		if ok1 != ok2 {
			t.Fatalf("reachability mismatch %d->%d", a, b)
		}
		if ok1 && math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("distance mismatch %d->%d: %v vs %v", a, b, d1, d2)
		}
	}
}

func TestShortestPathWeightedCustomWeights(t *testing.T) {
	// Two routes from 0 to 3: direct long segment vs two short ones.
	var b Builder
	n0 := b.AddNode(geo.Pt(0, 0))
	n1 := b.AddNode(geo.Pt(100, 100))
	n3 := b.AddNode(geo.Pt(200, 0))
	direct, err := b.AddSegment(n0, n3, Local)
	if err != nil {
		t.Fatal(err)
	}
	up, err := b.AddSegment(n0, n1, Local)
	if err != nil {
		t.Fatal(err)
	}
	down, err := b.AddSegment(n1, n3, Local)
	if err != nil {
		t.Fatal(err)
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// By length the direct segment wins.
	path, _, ok := net.ShortestPathWeighted(n0, n3, func(s *Segment) float64 { return s.Length })
	if !ok || len(path) != 1 || path[0] != direct {
		t.Fatalf("length-weight path = %v", path)
	}
	// Penalize the direct segment and the detour wins.
	path, _, ok = net.ShortestPathWeighted(n0, n3, func(s *Segment) float64 {
		if s.ID == direct {
			return s.Length * 10
		}
		return s.Length
	})
	if !ok || len(path) != 2 || path[0] != up || path[1] != down {
		t.Fatalf("penalized path = %v", path)
	}
	// Negative weight skips the edge entirely.
	_, _, ok = net.ShortestPathWeighted(n0, n1, func(s *Segment) float64 { return -1 })
	if ok {
		t.Error("all-negative weights still found a path")
	}
	// Self route.
	if p, d, ok := net.ShortestPathWeighted(n0, n0, func(s *Segment) float64 { return s.Length }); !ok || d != 0 || p != nil {
		t.Errorf("self route = %v %v %v", p, d, ok)
	}
}

func TestLargestComponent(t *testing.T) {
	var b Builder
	// Component A: 3 nodes in a line. Component B: 2 nodes.
	a0 := b.AddNode(geo.Pt(0, 0))
	a1 := b.AddNode(geo.Pt(100, 0))
	a2 := b.AddNode(geo.Pt(200, 0))
	b0 := b.AddNode(geo.Pt(9000, 9000))
	b1 := b.AddNode(geo.Pt(9100, 9000))
	for _, pair := range [][2]NodeID{{a0, a1}, {a1, a2}, {b0, b1}} {
		if _, _, err := b.AddTwoWay(pair[0], pair[1], Local); err != nil {
			t.Fatal(err)
		}
	}
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	comp := n.LargestComponent()
	if len(comp) != 3 {
		t.Fatalf("LargestComponent size = %d, want 3", len(comp))
	}
	in := map[NodeID]bool{}
	for _, id := range comp {
		in[id] = true
	}
	if !in[a0] || !in[a1] || !in[a2] {
		t.Errorf("LargestComponent = %v", comp)
	}
}

// Unreachable targets: directed dead ends and disconnected nodes must
// report ok=false, not a bogus path.
func TestShortestPathWeightedUnreachable(t *testing.T) {
	var b Builder
	n0 := b.AddNode(geo.Pt(0, 0))
	n1 := b.AddNode(geo.Pt(100, 0))
	n2 := b.AddNode(geo.Pt(200, 0))
	n3 := b.AddNode(geo.Pt(0, 500)) // disconnected entirely
	if _, err := b.AddSegment(n0, n1, Local); err != nil {
		t.Fatal(err)
	}
	// n2 -> n1 only: n2 is reachable from nowhere, and n1 cannot reach n2.
	if _, err := b.AddSegment(n2, n1, Local); err != nil {
		t.Fatal(err)
	}
	// Give n3 an outgoing edge so the network builder keeps it routable
	// in one direction only.
	if _, err := b.AddSegment(n3, n0, Local); err != nil {
		t.Fatal(err)
	}
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	length := func(s *Segment) float64 { return s.Length }
	for _, c := range []struct{ from, to NodeID }{
		{n0, n2}, // against the n2->n1 one-way
		{n1, n0}, // against the n0->n1 one-way
		{n0, n3}, // n3 has no incoming edges
		{n1, n3},
	} {
		if path, d, ok := n.ShortestPathWeighted(c.from, c.to, length); ok {
			t.Errorf("%d->%d: want unreachable, got path %v (d=%v)", c.from, c.to, path, d)
		}
	}
	// Sanity: the edges that do exist still route.
	if _, _, ok := n.ShortestPathWeighted(n3, n1, length); !ok {
		t.Error("n3->n1 should be reachable via n0")
	}
}

// Zero-length segments (overlapping nodes) are legal: they contribute
// zero weight but must still appear in the returned path.
func TestShortestPathWeightedZeroLengthSegments(t *testing.T) {
	var b Builder
	n0 := b.AddNode(geo.Pt(0, 0))
	n1 := b.AddNode(geo.Pt(0, 0)) // same position: zero-length hop
	n2 := b.AddNode(geo.Pt(100, 0))
	s01, err := b.AddSegment(n0, n1, Local)
	if err != nil {
		t.Fatal(err)
	}
	s12, err := b.AddSegment(n1, n2, Local)
	if err != nil {
		t.Fatal(err)
	}
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	path, d, ok := n.ShortestPathWeighted(n0, n2, func(s *Segment) float64 { return s.Length })
	if !ok {
		t.Fatal("n0->n2 unreachable")
	}
	if len(path) != 2 || path[0] != s01 || path[1] != s12 {
		t.Fatalf("path = %v, want [%d %d]", path, s01, s12)
	}
	if d != 100 {
		t.Fatalf("d = %v, want 100", d)
	}
}

// Duplicate parallel segments between the same node pair: the search
// must take the cheaper one under the supplied weight, even when that
// inverts the geometric order.
func TestShortestPathWeightedParallelSegments(t *testing.T) {
	var b Builder
	n0 := b.AddNode(geo.Pt(0, 0))
	n1 := b.AddNode(geo.Pt(100, 0))
	short, err := b.AddSegment(n0, n1, Local)
	if err != nil {
		t.Fatal(err)
	}
	long, err := b.AddSegment(n0, n1, Local, geo.Pt(50, 200)) // detour shape
	if err != nil {
		t.Fatal(err)
	}
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	path, _, ok := n.ShortestPathWeighted(n0, n1, func(s *Segment) float64 { return s.Length })
	if !ok || len(path) != 1 || path[0] != short {
		t.Fatalf("by length: path = %v (ok=%v), want [%d]", path, ok, short)
	}
	// Invert the preference: make the geometrically long segment cheap.
	path, d, ok := n.ShortestPathWeighted(n0, n1, func(s *Segment) float64 {
		if s.ID == long {
			return 1
		}
		return s.Length
	})
	if !ok || len(path) != 1 || path[0] != long {
		t.Fatalf("by custom weight: path = %v (ok=%v), want [%d]", path, ok, long)
	}
	if d != 1 {
		t.Fatalf("custom-weight d = %v, want 1", d)
	}
}
