// Package roadnet models the road network substrate: a directed graph
// of intersections (nodes) and road segments (edges) with geometry,
// spatial indexing for candidate retrieval, and shortest-path routing
// with a per-source cache (the paper's precomputation table, §V-A2).
package roadnet

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/spatial"
)

// NodeID identifies an intersection or terminal point in the network.
type NodeID int

// SegmentID identifies a directed road segment.
type SegmentID int

// Class is a coarse road classification used to assign speed limits and
// to steer the synthetic generator.
type Class int

// Road classes, from smallest to largest capacity.
const (
	Local Class = iota
	Arterial
	Highway
)

// String returns the lowercase class name.
func (c Class) String() string {
	switch c {
	case Local:
		return "local"
	case Arterial:
		return "arterial"
	case Highway:
		return "highway"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// DefaultSpeed returns a typical free-flow speed for the class in m/s.
func (c Class) DefaultSpeed() float64 {
	switch c {
	case Highway:
		return 27.8 // ~100 km/h
	case Arterial:
		return 16.7 // ~60 km/h
	default:
		return 11.1 // ~40 km/h
	}
}

// Node is an intersection or terminal point.
type Node struct {
	ID NodeID
	P  geo.Point
}

// Segment is a directed road segment between two nodes. Geometry is a
// polyline whose first and last points coincide with the endpoints of
// the From and To nodes.
type Segment struct {
	ID     SegmentID
	From   NodeID
	To     NodeID
	Shape  geo.Polyline
	Length float64 // meters, cached from Shape
	Class  Class
	Speed  float64 // free-flow speed, m/s
}

// Midpoint returns the point halfway along the segment geometry.
func (s *Segment) Midpoint() geo.Point { return s.Shape.At(s.Length / 2) }

// Bearing returns the overall direction of travel (start to end).
func (s *Segment) Bearing() float64 {
	return s.Shape[0].Bearing(s.Shape[len(s.Shape)-1])
}

// PointAt returns the point a fraction frac in [0,1] along the segment.
func (s *Segment) PointAt(frac float64) geo.Point {
	return s.Shape.At(s.Length * math.Max(0, math.Min(1, frac)))
}

// Network is an immutable road network. Build one with a Builder. All
// methods are safe for concurrent use once built.
type Network struct {
	nodes    []Node
	segments []Segment
	out      [][]SegmentID // node -> outgoing segment ids
	in       [][]SegmentID // node -> incoming segment ids
	index    *spatial.Grid // over segment geometry
	bounds   geo.Rect
}

// NumNodes returns the number of nodes.
func (n *Network) NumNodes() int { return len(n.nodes) }

// NumSegments returns the number of directed segments.
func (n *Network) NumSegments() int { return len(n.segments) }

// Node returns the node with the given id. It panics on a bad id.
func (n *Network) Node(id NodeID) *Node { return &n.nodes[id] }

// Segment returns the segment with the given id. It panics on a bad id.
func (n *Network) Segment(id SegmentID) *Segment { return &n.segments[id] }

// Out returns the ids of segments leaving the node. The returned slice
// must not be modified.
func (n *Network) Out(id NodeID) []SegmentID { return n.out[id] }

// In returns the ids of segments entering the node. The returned slice
// must not be modified.
func (n *Network) In(id NodeID) []SegmentID { return n.in[id] }

// Next returns the ids of segments that can follow s on a path (those
// leaving s's To node). The returned slice must not be modified.
func (n *Network) Next(s SegmentID) []SegmentID {
	return n.out[n.segments[s].To]
}

// Prev returns the ids of segments that can precede s on a path.
// The returned slice must not be modified.
func (n *Network) Prev(s SegmentID) []SegmentID {
	return n.in[n.segments[s].From]
}

// Bounds returns the bounding rectangle of all node positions.
func (n *Network) Bounds() geo.Rect { return n.bounds }

// TotalLength returns the summed length of all segments in meters.
func (n *Network) TotalLength() float64 {
	var total float64
	for i := range n.segments {
		total += n.segments[i].Length
	}
	return total
}

// segItem adapts a segment's polyline geometry to the spatial index.
type segItem struct {
	shape geo.Polyline
	box   geo.Rect
}

func (si segItem) Bounds() geo.Rect           { return si.box }
func (si segItem) DistTo(p geo.Point) float64 { return si.shape.Dist(p) }

// SegmentsNear returns the k segments nearest to p, ascending by
// geometric distance from p to the segment polyline.
func (n *Network) SegmentsNear(p geo.Point, k int) []SegmentID {
	ids := n.index.Nearest(p, k)
	out := make([]SegmentID, len(ids))
	for i, id := range ids {
		out[i] = SegmentID(id)
	}
	return out
}

// SegmentsWithin returns all segments within radius meters of p,
// ascending by distance.
func (n *Network) SegmentsWithin(p geo.Point, radius float64) []SegmentID {
	ids := n.index.Within(p, radius)
	out := make([]SegmentID, len(ids))
	for i, id := range ids {
		out[i] = SegmentID(id)
	}
	return out
}

// DistTo returns the geometric distance from p to segment s.
func (n *Network) DistTo(s SegmentID, p geo.Point) float64 {
	return n.segments[s].Shape.Dist(p)
}

// Project returns the closest point on segment s to p and the fraction
// along the segment at which it occurs.
func (n *Network) Project(s SegmentID, p geo.Point) (geo.Point, float64) {
	seg := &n.segments[s]
	q, along, _, _ := seg.Shape.Project(p)
	if seg.Length == 0 {
		return q, 0
	}
	return q, along / seg.Length
}

// Builder accumulates nodes and segments and produces an immutable
// Network. The zero value is ready to use.
type Builder struct {
	nodes    []Node
	segments []Segment
}

// AddNode appends a node at p and returns its id.
func (b *Builder) AddNode(p geo.Point) NodeID {
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, Node{ID: id, P: p})
	return id
}

// AddSegment appends a directed segment from one node to another with
// optional intermediate shape points (excluding the endpoints, which
// are taken from the nodes). It returns the new segment's id and an
// error if either node id is out of range.
func (b *Builder) AddSegment(from, to NodeID, class Class, via ...geo.Point) (SegmentID, error) {
	if int(from) >= len(b.nodes) || from < 0 {
		return 0, fmt.Errorf("roadnet: from node %d out of range", from)
	}
	if int(to) >= len(b.nodes) || to < 0 {
		return 0, fmt.Errorf("roadnet: to node %d out of range", to)
	}
	shape := make(geo.Polyline, 0, len(via)+2)
	shape = append(shape, b.nodes[from].P)
	shape = append(shape, via...)
	shape = append(shape, b.nodes[to].P)
	id := SegmentID(len(b.segments))
	b.segments = append(b.segments, Segment{
		ID:     id,
		From:   from,
		To:     to,
		Shape:  shape,
		Length: shape.Length(),
		Class:  class,
		Speed:  class.DefaultSpeed(),
	})
	return id, nil
}

// AddTwoWay adds a pair of directed segments between two nodes and
// returns both ids (forward, backward).
func (b *Builder) AddTwoWay(a, c NodeID, class Class, via ...geo.Point) (SegmentID, SegmentID, error) {
	fwd, err := b.AddSegment(a, c, class, via...)
	if err != nil {
		return 0, 0, err
	}
	rev := make([]geo.Point, len(via))
	for i, p := range via {
		rev[len(via)-1-i] = p
	}
	bwd, err := b.AddSegment(c, a, class, rev...)
	if err != nil {
		return 0, 0, err
	}
	return fwd, bwd, nil
}

// Build finalizes the network: it computes adjacency, bounds, and the
// spatial index. An empty builder yields an error since a usable network
// needs at least one segment.
func (b *Builder) Build() (*Network, error) {
	if len(b.segments) == 0 {
		return nil, fmt.Errorf("roadnet: cannot build a network with no segments")
	}
	n := &Network{
		nodes:    b.nodes,
		segments: b.segments,
		out:      make([][]SegmentID, len(b.nodes)),
		in:       make([][]SegmentID, len(b.nodes)),
	}
	bounds := geo.Rect{Min: b.nodes[0].P, Max: b.nodes[0].P}
	for _, nd := range b.nodes {
		bounds = bounds.Extend(nd.P)
	}
	n.bounds = bounds

	for i := range n.segments {
		s := &n.segments[i]
		n.out[s.From] = append(n.out[s.From], s.ID)
		n.in[s.To] = append(n.in[s.To], s.ID)
	}

	// Cell size tuned to typical query radius; at least 50 m to keep
	// the cell count bounded for tiny test networks.
	cell := math.Max(50, math.Max(bounds.Width(), bounds.Height())/256)
	n.index = spatial.NewGrid(bounds, cell)
	for i := range n.segments {
		s := &n.segments[i]
		box, _ := s.Shape.BBox()
		n.index.Insert(segItem{shape: s.Shape, box: box})
	}
	return n, nil
}
