// Package roadnet models the road network substrate: a directed graph
// of intersections (nodes) and road segments (edges) with geometry,
// spatial indexing for candidate retrieval, and shortest-path routing
// with a per-source cache (the paper's precomputation table, §V-A2).
package roadnet

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/spatial"
)

// NodeID identifies an intersection or terminal point in the network.
type NodeID int

// SegmentID identifies a directed road segment.
type SegmentID int

// Class is a coarse road classification used to assign speed limits and
// to steer the synthetic generator.
type Class int

// Road classes, from smallest to largest capacity.
const (
	Local Class = iota
	Arterial
	Highway
)

// String returns the lowercase class name.
func (c Class) String() string {
	switch c {
	case Local:
		return "local"
	case Arterial:
		return "arterial"
	case Highway:
		return "highway"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// DefaultSpeed returns a typical free-flow speed for the class in m/s.
func (c Class) DefaultSpeed() float64 {
	switch c {
	case Highway:
		return 27.8 // ~100 km/h
	case Arterial:
		return 16.7 // ~60 km/h
	default:
		return 11.1 // ~40 km/h
	}
}

// Node is an intersection or terminal point.
type Node struct {
	ID NodeID
	P  geo.Point
}

// Segment is a directed road segment between two nodes. Geometry is a
// polyline whose first and last points coincide with the endpoints of
// the From and To nodes.
type Segment struct {
	ID     SegmentID
	From   NodeID
	To     NodeID
	Shape  geo.Polyline
	Length float64 // meters, cached from Shape
	Class  Class
	Speed  float64 // free-flow speed, m/s
}

// Midpoint returns the point halfway along the segment geometry.
func (s *Segment) Midpoint() geo.Point { return s.Shape.At(s.Length / 2) }

// Bearing returns the overall direction of travel (start to end).
func (s *Segment) Bearing() float64 {
	return s.Shape[0].Bearing(s.Shape[len(s.Shape)-1])
}

// PointAt returns the point a fraction frac in [0,1] along the segment.
func (s *Segment) PointAt(frac float64) geo.Point {
	return s.Shape.At(s.Length * math.Max(0, math.Min(1, frac)))
}

// Network is an immutable road network. Build one with a Builder. All
// methods are safe for concurrent use once built.
//
// Adjacency is stored CSR-style: one offsets array per direction plus a
// packed array of segment ids, so a 100k-segment city costs two int32
// arrays and two id arrays instead of 2·N small heap slices. Segment
// geometry is likewise packed into a single point slab; each Segment's
// Shape is a capacity-bounded view into it. Per-node adjacency lists
// are ascending by segment id, matching the insertion order the
// pointer-based representation produced.
type Network struct {
	nodes    []Node
	segments []Segment

	outOff  []int32     // len NumNodes+1; out ids of node v are outSegs[outOff[v]:outOff[v+1]]
	outSegs []SegmentID // packed outgoing segment ids, grouped by From node
	inOff   []int32     // len NumNodes+1; in ids of node v are inSegs[inOff[v]:inOff[v+1]]
	inSegs  []SegmentID // packed incoming segment ids, grouped by To node

	shapeSlab []geo.Point // all segment polylines, contiguous

	index  *spatial.Grid // over segment geometry
	bounds geo.Rect
}

// NumNodes returns the number of nodes.
func (n *Network) NumNodes() int { return len(n.nodes) }

// NumSegments returns the number of directed segments.
func (n *Network) NumSegments() int { return len(n.segments) }

// Node returns the node with the given id. It panics on a bad id.
func (n *Network) Node(id NodeID) *Node { return &n.nodes[id] }

// Segment returns the segment with the given id. It panics on a bad id.
func (n *Network) Segment(id SegmentID) *Segment { return &n.segments[id] }

// Out returns the ids of segments leaving the node. The returned slice
// is a view into shared storage and must not be modified.
func (n *Network) Out(id NodeID) []SegmentID {
	return n.outSegs[n.outOff[id]:n.outOff[id+1]]
}

// In returns the ids of segments entering the node. The returned slice
// is a view into shared storage and must not be modified.
func (n *Network) In(id NodeID) []SegmentID {
	return n.inSegs[n.inOff[id]:n.inOff[id+1]]
}

// Next returns the ids of segments that can follow s on a path (those
// leaving s's To node). The returned slice must not be modified.
func (n *Network) Next(s SegmentID) []SegmentID {
	return n.Out(n.segments[s].To)
}

// Prev returns the ids of segments that can precede s on a path.
// The returned slice must not be modified.
func (n *Network) Prev(s SegmentID) []SegmentID {
	return n.In(n.segments[s].From)
}

// Bounds returns the bounding rectangle of all node positions.
func (n *Network) Bounds() geo.Rect { return n.bounds }

// TotalLength returns the summed length of all segments in meters.
func (n *Network) TotalLength() float64 {
	var total float64
	for i := range n.segments {
		total += n.segments[i].Length
	}
	return total
}

// segItem adapts a segment's polyline geometry to the spatial index.
type segItem struct {
	shape geo.Polyline
	box   geo.Rect
}

func (si segItem) Bounds() geo.Rect           { return si.box }
func (si segItem) DistTo(p geo.Point) float64 { return si.shape.Dist(p) }

// SegmentsNear returns the k segments nearest to p, ascending by
// geometric distance from p to the segment polyline.
func (n *Network) SegmentsNear(p geo.Point, k int) []SegmentID {
	ids := n.index.Nearest(p, k)
	out := make([]SegmentID, len(ids))
	for i, id := range ids {
		out[i] = SegmentID(id)
	}
	return out
}

// SegmentsWithin returns all segments within radius meters of p,
// ascending by distance.
func (n *Network) SegmentsWithin(p geo.Point, radius float64) []SegmentID {
	ids := n.index.Within(p, radius)
	out := make([]SegmentID, len(ids))
	for i, id := range ids {
		out[i] = SegmentID(id)
	}
	return out
}

// DistTo returns the geometric distance from p to segment s.
func (n *Network) DistTo(s SegmentID, p geo.Point) float64 {
	return n.segments[s].Shape.Dist(p)
}

// Project returns the closest point on segment s to p and the fraction
// along the segment at which it occurs.
func (n *Network) Project(s SegmentID, p geo.Point) (geo.Point, float64) {
	seg := &n.segments[s]
	q, along, _, _ := seg.Shape.Project(p)
	if seg.Length == 0 {
		return q, 0
	}
	return q, along / seg.Length
}

// Builder accumulates nodes and segments and produces an immutable
// Network. The zero value is ready to use.
type Builder struct {
	nodes    []Node
	segments []Segment
}

// AddNode appends a node at p and returns its id.
func (b *Builder) AddNode(p geo.Point) NodeID {
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, Node{ID: id, P: p})
	return id
}

// AddSegment appends a directed segment from one node to another with
// optional intermediate shape points (excluding the endpoints, which
// are taken from the nodes). It returns the new segment's id and an
// error if either node id is out of range.
func (b *Builder) AddSegment(from, to NodeID, class Class, via ...geo.Point) (SegmentID, error) {
	if int(from) >= len(b.nodes) || from < 0 {
		return 0, fmt.Errorf("roadnet: from node %d out of range", from)
	}
	if int(to) >= len(b.nodes) || to < 0 {
		return 0, fmt.Errorf("roadnet: to node %d out of range", to)
	}
	shape := make(geo.Polyline, 0, len(via)+2)
	shape = append(shape, b.nodes[from].P)
	shape = append(shape, via...)
	shape = append(shape, b.nodes[to].P)
	id := SegmentID(len(b.segments))
	b.segments = append(b.segments, Segment{
		ID:     id,
		From:   from,
		To:     to,
		Shape:  shape,
		Length: shape.Length(),
		Class:  class,
		Speed:  class.DefaultSpeed(),
	})
	return id, nil
}

// AddTwoWay adds a pair of directed segments between two nodes and
// returns both ids (forward, backward).
func (b *Builder) AddTwoWay(a, c NodeID, class Class, via ...geo.Point) (SegmentID, SegmentID, error) {
	fwd, err := b.AddSegment(a, c, class, via...)
	if err != nil {
		return 0, 0, err
	}
	rev := make([]geo.Point, len(via))
	for i, p := range via {
		rev[len(via)-1-i] = p
	}
	bwd, err := b.AddSegment(c, a, class, rev...)
	if err != nil {
		return 0, 0, err
	}
	return fwd, bwd, nil
}

// Build finalizes the network: it computes CSR adjacency, packs segment
// geometry into a contiguous slab, and builds the spatial index. An
// empty builder yields an error since a usable network needs at least
// one segment.
func (b *Builder) Build() (*Network, error) {
	if len(b.segments) == 0 {
		return nil, fmt.Errorf("roadnet: cannot build a network with no segments")
	}
	return assemble(b.nodes, b.segments), nil
}

// assemble constructs the immutable flat representation from node and
// segment slices (at least one segment; callers validate). It is shared
// by Builder.Build and the binary loader. Segment shapes are repacked
// into one slab; the input shape slices are not retained.
func assemble(nodes []Node, segments []Segment) *Network {
	n := &Network{nodes: nodes, segments: segments}

	bounds := geo.Rect{Min: nodes[0].P, Max: nodes[0].P}
	for _, nd := range nodes {
		bounds = bounds.Extend(nd.P)
	}
	n.bounds = bounds

	// Pack all polylines into one slab. Each Shape becomes a
	// capacity-bounded view so an accidental append cannot clobber the
	// next segment's geometry.
	total := 0
	for i := range segments {
		total += len(segments[i].Shape)
	}
	slab := make([]geo.Point, 0, total)
	for i := range segments {
		s := &segments[i]
		a := len(slab)
		slab = append(slab, s.Shape...)
		s.Shape = geo.Polyline(slab[a:len(slab):len(slab)])
	}
	n.shapeSlab = slab

	// CSR adjacency via counting sort. Segments are scanned in id
	// order, so each node's packed list is ascending by segment id —
	// the same order the previous append-per-node representation gave.
	n.outOff = make([]int32, len(nodes)+1)
	n.inOff = make([]int32, len(nodes)+1)
	for i := range segments {
		n.outOff[segments[i].From+1]++
		n.inOff[segments[i].To+1]++
	}
	for v := 0; v < len(nodes); v++ {
		n.outOff[v+1] += n.outOff[v]
		n.inOff[v+1] += n.inOff[v]
	}
	n.outSegs = make([]SegmentID, len(segments))
	n.inSegs = make([]SegmentID, len(segments))
	outCur := append([]int32(nil), n.outOff[:len(nodes)]...)
	inCur := append([]int32(nil), n.inOff[:len(nodes)]...)
	for i := range segments {
		s := &segments[i]
		n.outSegs[outCur[s.From]] = s.ID
		outCur[s.From]++
		n.inSegs[inCur[s.To]] = s.ID
		inCur[s.To]++
	}

	// Cell size derived from segment density so per-cell occupancy —
	// and with it candidate-lookup cost — stays flat from test lattices
	// to metro-scale extents.
	cell := spatial.AutoCellSize(bounds, len(segments), 0, 0)
	n.index = spatial.NewGrid(bounds, cell)
	for i := range segments {
		s := &segments[i]
		box, _ := s.Shape.BBox()
		n.index.Insert(segItem{shape: s.Shape, box: box})
	}
	return n
}
