package roadnet

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/geo"
)

// buildShaped builds a small network exercising every serialized
// field: interior via points, mixed classes, an overridden speed.
func buildShaped(t testing.TB) *Network {
	t.Helper()
	var b Builder
	n0 := b.AddNode(geo.Pt(0, 0))
	n1 := b.AddNode(geo.Pt(300, 0))
	n2 := b.AddNode(geo.Pt(300, 300))
	if _, _, err := b.AddTwoWay(n0, n1, Arterial, geo.Pt(100, 25), geo.Pt(200, -25)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddSegment(n1, n2, Highway, geo.Pt(320, 150)); err != nil {
		t.Fatal(err)
	}
	sid, err := b.AddSegment(n2, n0, Local)
	if err != nil {
		t.Fatal(err)
	}
	b.segments[sid].Speed = 3.5
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func sameNetwork(t *testing.T, a, b *Network) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumSegments() != b.NumSegments() {
		t.Fatalf("size mismatch: %d/%d nodes, %d/%d segments",
			a.NumNodes(), b.NumNodes(), a.NumSegments(), b.NumSegments())
	}
	for i := 0; i < a.NumNodes(); i++ {
		if a.Node(NodeID(i)).P != b.Node(NodeID(i)).P {
			t.Fatalf("node %d position mismatch", i)
		}
	}
	for i := 0; i < a.NumSegments(); i++ {
		sa, sb := a.Segment(SegmentID(i)), b.Segment(SegmentID(i))
		if sa.From != sb.From || sa.To != sb.To || sa.Class != sb.Class ||
			sa.Speed != sb.Speed || sa.Length != sb.Length {
			t.Fatalf("segment %d fields mismatch: %+v vs %+v", i, sa, sb)
		}
		if len(sa.Shape) != len(sb.Shape) {
			t.Fatalf("segment %d shape length mismatch", i)
		}
		for j := range sa.Shape {
			if sa.Shape[j] != sb.Shape[j] {
				t.Fatalf("segment %d shape point %d mismatch", i, j)
			}
		}
	}
	for v := 0; v < a.NumNodes(); v++ {
		ao, bo := a.Out(NodeID(v)), b.Out(NodeID(v))
		if len(ao) != len(bo) {
			t.Fatalf("node %d out-degree mismatch", v)
		}
		for j := range ao {
			if ao[j] != bo[j] {
				t.Fatalf("node %d adjacency mismatch: %v vs %v", v, ao, bo)
			}
		}
	}
	if a.Bounds() != b.Bounds() {
		t.Fatalf("bounds mismatch: %v vs %v", a.Bounds(), b.Bounds())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for name, n := range map[string]*Network{
		"shaped":   buildShaped(t),
		"lattice":  buildGrid(t, 5, 4),
		"jittered": buildJittered(t, 7, 7, 0.2, 21),
	} {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, n, nil); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		n2, h2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h2 != nil {
			t.Fatalf("%s: hierarchy from a file written without one", name)
		}
		sameNetwork(t, n, n2)
	}
}

func TestBinaryRoundTripWithHierarchy(t *testing.T) {
	n := buildJittered(t, 9, 9, 0.2, 31)
	h := BuildHierarchy(n)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, n, h); err != nil {
		t.Fatal(err)
	}
	n2, h2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2 == nil {
		t.Fatal("CH section lost in round trip")
	}
	sameNetwork(t, n, n2)
	if h2.NumShortcuts() != h.NumShortcuts() {
		t.Fatalf("shortcut count %d != %d", h2.NumShortcuts(), h.NumShortcuts())
	}
	// The loaded network + hierarchy must route byte-identically to a
	// flat Dijkstra router over the loaded network.
	flat := NewRouter(n2)
	ch := NewRouter(n2, WithHierarchy(h2))
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 500; trial++ {
		a := NodeID(rng.Intn(n2.NumNodes()))
		b := NodeID(rng.Intn(n2.NumNodes()))
		assertSamePair(t, flat, ch, a, b)
	}
}

func TestBinaryMatchesJSONRoundTrip(t *testing.T) {
	n := buildShaped(t)
	var jbuf, bbuf bytes.Buffer
	if err := Write(&jbuf, n); err != nil {
		t.Fatal(err)
	}
	nj, err := Read(&jbuf)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bbuf, n, nil); err != nil {
		t.Fatal(err)
	}
	nb, _, err := ReadBinary(&bbuf)
	if err != nil {
		t.Fatal(err)
	}
	sameNetwork(t, nj, nb)
}

func TestBinaryRejectsCorruption(t *testing.T) {
	n := buildGrid(t, 4, 4)
	h := BuildHierarchy(n)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, n, h); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, _, err := ReadBinary(strings.NewReader("not a network")); err == nil {
		t.Error("garbage accepted")
	}
	if _, _, err := ReadBinary(bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Error("truncated file accepted")
	}
	for _, off := range []int{4, 20, len(good) / 2, len(good) - 8} {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0xff
		if _, _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
			t.Errorf("bit flip at offset %d accepted", off)
		}
	}
	extra := append(append([]byte(nil), good...), 0, 0, 0, 0)
	if _, _, err := ReadBinary(bytes.NewReader(extra)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestWriteBinaryRejectsForeignHierarchy(t *testing.T) {
	n1 := buildGrid(t, 4, 4)
	n2 := buildGrid(t, 4, 4)
	h := BuildHierarchy(n1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, n2, h); err == nil {
		t.Error("hierarchy over a different network accepted")
	}
}
