package roadnet

import "testing"

// Regression for the eviction policy: a source that keeps getting hit
// must survive a scan of one-shot cold sources. The CLOCK reference
// bit gives re-used entries a second chance, while cold entries (bit
// never set) recycle among themselves.
func TestRouterCacheHotSurvivesColdScan(t *testing.T) {
	n := buildGrid(t, 10, 10)
	r := NewRouter(n, WithCacheSize(8))
	hot := NodeID(0)
	if _, ok := r.NodeDist(hot, 99); !ok {
		t.Fatal("warmup query failed")
	}
	r.NodeDist(hot, 55) // re-use marks the entry referenced

	inCache := func(src NodeID) bool {
		r.mu.Lock()
		defer r.mu.Unlock()
		_, ok := r.cache[src]
		return ok
	}

	// Scan three capacities' worth of cold sources, touching the hot
	// one between batches as live traffic would.
	cold := NodeID(1)
	for batch := 0; batch < 6; batch++ {
		for i := 0; i < 4; i++ {
			r.NodeDist(cold, 99)
			cold++
		}
		r.NodeDist(hot, 99)
	}
	if !inCache(hot) {
		t.Fatal("hot source evicted by cold scan")
	}
	// And the cache really was churning: the earliest cold sources must
	// be long gone.
	if inCache(1) && inCache(2) && inCache(3) {
		t.Error("no cold entries were evicted; scan did not churn the cache")
	}
}
