package roadnet

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/obs"
)

func segBetween(t testing.TB, n *Network, from, to NodeID) SegmentID {
	t.Helper()
	for _, sid := range n.Out(from) {
		if n.Segment(sid).To == to {
			return sid
		}
	}
	t.Fatalf("no segment %d->%d", from, to)
	return 0
}

func TestNodeDist(t *testing.T) {
	n := buildGrid(t, 5, 5)
	r := NewRouter(n)
	// Manhattan distance on the lattice.
	d, ok := r.NodeDist(0, NodeID(4*5+4)) // corner to corner
	if !ok || math.Abs(d-800) > 1e-9 {
		t.Errorf("NodeDist = %v ok=%v, want 800", d, ok)
	}
	if d, ok := r.NodeDist(3, 3); !ok || d != 0 {
		t.Errorf("self NodeDist = %v ok=%v", d, ok)
	}
}

func TestNodePath(t *testing.T) {
	n := buildGrid(t, 3, 3)
	r := NewRouter(n)
	path, d, ok := r.NodePath(0, 8) // (0,0) to (2,2)
	if !ok || math.Abs(d-400) > 1e-9 {
		t.Fatalf("NodePath dist = %v ok=%v", d, ok)
	}
	if len(path) != 4 {
		t.Fatalf("NodePath len = %d, want 4", len(path))
	}
	// Path must be contiguous and start/end correctly.
	if n.Segment(path[0]).From != 0 || n.Segment(path[3]).To != 8 {
		t.Error("path endpoints wrong")
	}
	for i := 1; i < len(path); i++ {
		if n.Segment(path[i-1]).To != n.Segment(path[i]).From {
			t.Error("path not contiguous")
		}
	}
	if p, d, ok := r.NodePath(4, 4); !ok || d != 0 || p != nil {
		t.Errorf("self NodePath = %v %v %v", p, d, ok)
	}
}

func TestMaxDistBound(t *testing.T) {
	n := buildGrid(t, 10, 1)
	r := NewRouter(n, WithMaxDist(250))
	if _, ok := r.NodeDist(0, 9); ok {
		t.Error("distance beyond bound reported reachable")
	}
	if d, ok := r.NodeDist(0, 2); !ok || d != 200 {
		t.Errorf("in-bound NodeDist = %v ok=%v", d, ok)
	}
}

func TestUnreachable(t *testing.T) {
	// Two disconnected components.
	var b Builder
	a0 := b.AddNode(geo.Pt(0, 0))
	a1 := b.AddNode(geo.Pt(100, 0))
	c0 := b.AddNode(geo.Pt(5000, 5000))
	c1 := b.AddNode(geo.Pt(5100, 5000))
	if _, err := b.AddSegment(a0, a1, Local); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddSegment(c0, c1, Local); err != nil {
		t.Fatal(err)
	}
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(n)
	if _, ok := r.NodeDist(a0, c1); ok {
		t.Error("disconnected nodes reported reachable")
	}
	if _, _, ok := r.NodePath(a0, c1); ok {
		t.Error("disconnected NodePath reported ok")
	}
}

func TestRouteBetweenSameSegment(t *testing.T) {
	n := buildGrid(t, 2, 1)
	fwd := segBetween(t, n, 0, 1)
	r := NewRouter(n)
	route, ok := r.RouteBetween(PointOnRoad{fwd, 0.2}, PointOnRoad{fwd, 0.7})
	if !ok || math.Abs(route.Dist-50) > 1e-9 || len(route.Segs) != 1 {
		t.Errorf("same-segment route = %+v ok=%v", route, ok)
	}
	// Backwards on the same directed segment requires a loop via the
	// reverse segment: 0.2*100 forward to end is wrong — it must go
	// through the network: (1-0.7)*100 + path(To=1 start... ) — in this
	// tiny net: 30 m to node 1, reverse segment 100 m to node 0, then
	// 20 m — total 150.
	route, ok = r.RouteBetween(PointOnRoad{fwd, 0.7}, PointOnRoad{fwd, 0.2})
	if !ok || math.Abs(route.Dist-150) > 1e-9 {
		t.Errorf("backward same-segment route = %+v ok=%v", route, ok)
	}
}

func TestRouteBetweenAdjacent(t *testing.T) {
	n := buildGrid(t, 3, 1)
	s01 := segBetween(t, n, 0, 1)
	s12 := segBetween(t, n, 1, 2)
	r := NewRouter(n)
	route, ok := r.RouteBetween(PointOnRoad{s01, 0.5}, PointOnRoad{s12, 0.5})
	if !ok || math.Abs(route.Dist-100) > 1e-9 {
		t.Fatalf("adjacent route = %+v ok=%v", route, ok)
	}
	if len(route.Segs) != 2 || route.Segs[0] != s01 || route.Segs[1] != s12 {
		t.Errorf("adjacent segs = %v", route.Segs)
	}
}

func TestRouteBetweenFar(t *testing.T) {
	n := buildGrid(t, 5, 5)
	r := NewRouter(n)
	sA := segBetween(t, n, 0, 1)                   // bottom-left horizontal
	sB := segBetween(t, n, NodeID(23), NodeID(24)) // top-right horizontal
	route, ok := r.RouteBetween(PointOnRoad{sA, 0.5}, PointOnRoad{sB, 0.5})
	if !ok {
		t.Fatal("far route not found")
	}
	// 50 remaining + dist(node1 -> node23) + 50 into sB.
	wantMid, ok2 := r.NodeDist(1, 23)
	if !ok2 {
		t.Fatal("mid dist not found")
	}
	if math.Abs(route.Dist-(50+wantMid+50)) > 1e-9 {
		t.Errorf("route dist = %v, want %v", route.Dist, 50+wantMid+50)
	}
	// Contiguity.
	for i := 1; i < len(route.Segs); i++ {
		if n.Segment(route.Segs[i-1]).To != n.Segment(route.Segs[i]).From {
			t.Fatal("route segments not contiguous")
		}
	}
}

// Property: NodeDist satisfies the triangle inequality through any
// intermediate node and symmetry holds on a two-way lattice.
func TestNodeDistProperties(t *testing.T) {
	n := buildGrid(t, 6, 6)
	r := NewRouter(n)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		a := NodeID(rng.Intn(36))
		b := NodeID(rng.Intn(36))
		c := NodeID(rng.Intn(36))
		dab, ok1 := r.NodeDist(a, b)
		dba, ok2 := r.NodeDist(b, a)
		if !ok1 || !ok2 || math.Abs(dab-dba) > 1e-9 {
			t.Fatalf("symmetry broken: %v vs %v", dab, dba)
		}
		dac, _ := r.NodeDist(a, c)
		dcb, _ := r.NodeDist(c, b)
		if dab > dac+dcb+1e-9 {
			t.Fatalf("triangle inequality broken: d(%d,%d)=%v > %v+%v", a, b, dab, dac, dcb)
		}
		// Path length equals reported distance.
		path, d, ok := r.NodePath(a, b)
		if !ok || math.Abs(d-dab) > 1e-9 {
			t.Fatalf("NodePath dist %v != NodeDist %v", d, dab)
		}
		var sum float64
		for _, sid := range path {
			sum += n.Segment(sid).Length
		}
		if math.Abs(sum-dab) > 1e-9 {
			t.Fatalf("path segment sum %v != dist %v", sum, dab)
		}
	}
}

func TestRouterCacheEviction(t *testing.T) {
	n := buildGrid(t, 4, 4)
	r := NewRouter(n, WithCacheSize(2))
	for i := 0; i < 10; i++ {
		src := NodeID(i % 4)
		if _, ok := r.NodeDist(src, NodeID(15)); !ok {
			t.Fatalf("query from %d failed", src)
		}
	}
	r.mu.Lock()
	size := len(r.cache)
	r.mu.Unlock()
	if size > 2 {
		t.Errorf("cache size %d exceeds capacity 2", size)
	}
}

func TestRouterConcurrent(t *testing.T) {
	n := buildGrid(t, 8, 8)
	r := NewRouter(n, WithCacheSize(4))
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 100; i++ {
				a := NodeID(rng.Intn(64))
				b := NodeID(rng.Intn(64))
				r.NodeDist(a, b)
				r.NodePath(a, b)
			}
			done <- true
		}(int64(g))
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func TestGeometry(t *testing.T) {
	n := buildGrid(t, 3, 1)
	r := NewRouter(n)
	s01 := segBetween(t, n, 0, 1)
	s12 := segBetween(t, n, 1, 2)
	a := PointOnRoad{s01, 0.5}
	b := PointOnRoad{s12, 0.5}
	route, _ := r.RouteBetween(a, b)
	pl := r.Geometry(route, a, b)
	if math.Abs(pl.Length()-route.Dist) > 1e-9 {
		t.Errorf("geometry length %v != route dist %v", pl.Length(), route.Dist)
	}
	if pl[0].Dist(geo.Pt(50, 0)) > 1e-9 || pl[len(pl)-1].Dist(geo.Pt(150, 0)) > 1e-9 {
		t.Errorf("geometry endpoints %v..%v", pl[0], pl[len(pl)-1])
	}
	// Single-segment geometry.
	route1, _ := r.RouteBetween(PointOnRoad{s01, 0.1}, PointOnRoad{s01, 0.9})
	pl1 := r.Geometry(route1, PointOnRoad{s01, 0.1}, PointOnRoad{s01, 0.9})
	if math.Abs(pl1.Length()-80) > 1e-9 {
		t.Errorf("single-seg geometry length = %v", pl1.Length())
	}
}

func TestTravelTime(t *testing.T) {
	n := buildGrid(t, 3, 1)
	r := NewRouter(n)
	s01 := segBetween(t, n, 0, 1)
	s12 := segBetween(t, n, 1, 2)
	route, _ := r.RouteBetween(PointOnRoad{s01, 0}, PointOnRoad{s12, 1})
	want := 200 / Local.DefaultSpeed()
	if got := r.TravelTime(route); math.Abs(got-want) > 1e-9 {
		t.Errorf("TravelTime = %v, want %v", got, want)
	}
	if got := r.TravelTime(Route{}); got != 0 {
		t.Errorf("empty TravelTime = %v", got)
	}
}

func TestNetworkRoundTrip(t *testing.T) {
	n := buildGrid(t, 3, 2)
	var buf bytes.Buffer
	if err := Write(&buf, n); err != nil {
		t.Fatal(err)
	}
	n2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n2.NumNodes() != n.NumNodes() || n2.NumSegments() != n.NumSegments() {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d",
			n2.NumNodes(), n2.NumSegments(), n.NumNodes(), n.NumSegments())
	}
	for i := 0; i < n.NumSegments(); i++ {
		a, b := n.Segment(SegmentID(i)), n2.Segment(SegmentID(i))
		if a.From != b.From || a.To != b.To || a.Length != b.Length || a.Class != b.Class {
			t.Fatalf("segment %d mismatch after round trip", i)
		}
	}
	if _, err := Read(bytes.NewBufferString("{bad json")); err == nil {
		t.Error("bad JSON did not error")
	}
}

func TestRouterCacheCounters(t *testing.T) {
	obs.Default.Enable()
	t.Cleanup(obs.Default.Disable)
	hits := obs.Default.Counter("router.cache.hits")
	misses := obs.Default.Counter("router.cache.misses")
	evictions := obs.Default.Counter("router.cache.evictions")
	h0, m0, e0 := hits.Value(), misses.Value(), evictions.Value()

	n := buildGrid(t, 6, 6)
	r := NewRouter(n, WithCacheSize(1))
	r.NodeDist(0, 7)  // miss
	r.NodeDist(0, 14) // hit (same source tree)
	r.NodeDist(1, 7)  // miss, evicts source 0
	r.NodeDist(0, 7)  // miss again after eviction

	if got := misses.Value() - m0; got != 3 {
		t.Errorf("misses delta = %d, want 3", got)
	}
	if got := hits.Value() - h0; got != 1 {
		t.Errorf("hits delta = %d, want 1", got)
	}
	if got := evictions.Value() - e0; got < 2 {
		t.Errorf("evictions delta = %d, want >= 2", got)
	}
}

// RouteDist must agree exactly with RouteBetween's Dist on every pair
// shape — same segment, adjacent, multi-hop, unreachable — and stay
// allocation-free once the shortest-path tree is cached.
func TestRouteDistMatchesRouteBetween(t *testing.T) {
	n := buildGrid(t, 5, 5)
	r := NewRouter(n)
	s01 := segBetween(t, n, 0, 1)
	s12 := segBetween(t, n, 1, 2)
	far := segBetween(t, n, NodeID(23), NodeID(24))
	pairs := [][2]PointOnRoad{
		{{s01, 0.2}, {s01, 0.7}}, // forward same segment
		{{s01, 0.7}, {s01, 0.2}}, // backward same segment (loops)
		{{s01, 0.5}, {s12, 0.5}}, // adjacent
		{{s01, 0.5}, {far, 0.5}}, // multi-hop
	}
	for _, p := range pairs {
		route, okR := r.RouteBetween(p[0], p[1])
		dist, okD := r.RouteDist(p[0], p[1])
		if okR != okD || math.Abs(route.Dist-dist) > 1e-12 {
			t.Errorf("RouteDist(%v,%v) = %g/%v, RouteBetween says %g/%v",
				p[0], p[1], dist, okD, route.Dist, okR)
		}
	}
}

func TestRouteDistNoAllocs(t *testing.T) {
	n := buildGrid(t, 5, 5)
	r := NewRouter(n)
	a := PointOnRoad{segBetween(t, n, 0, 1), 0.5}
	b := PointOnRoad{segBetween(t, n, NodeID(23), NodeID(24)), 0.5}
	if _, ok := r.RouteDist(a, b); !ok { // warm the tree cache
		t.Fatal("unreachable")
	}
	if allocs := testing.AllocsPerRun(1000, func() { r.RouteDist(a, b) }); allocs != 0 {
		t.Errorf("warm RouteDist allocates %.1f/op, want 0", allocs)
	}
}
