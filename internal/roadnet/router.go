package roadnet

import (
	"container/heap"
	"math"
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
)

// Router telemetry (internal/obs). Handles are interned once; every
// update is a no-op single atomic load until the Default registry is
// enabled.
var (
	obsCacheHits      = obs.Default.Counter("router.cache.hits")
	obsCacheMisses    = obs.Default.Counter("router.cache.misses")
	obsCacheEvictions = obs.Default.Counter("router.cache.evictions")
	obsCacheSize      = obs.Default.Gauge("router.cache.size")
	obsRoutes         = obs.Default.Counter("router.routes")
	obsRouteMisses    = obs.Default.Counter("router.routes.unreachable")
	// Dijkstra runs are microsecond-scale; the fine buckets keep its
	// quantiles meaningful (the coarse LatencyBuckets start at 100µs).
	obsDijkstraS = obs.Default.Histogram("router.dijkstra.seconds", obs.FineLatencyBuckets)
)

func init() {
	// Derived at scrape time from the hit/miss counters; exported as
	// lhmm_router_cache_hit_rate.
	obs.Default.Derived("router.cache.hit_rate", func() float64 {
		h, m := float64(obsCacheHits.Value()), float64(obsCacheMisses.Value())
		if h+m == 0 {
			return 0
		}
		return h / (h + m)
	})
}

// PointOnRoad is a position expressed as a fraction along a segment —
// the form candidate matches take during path-finding.
type PointOnRoad struct {
	Seg  SegmentID
	Frac float64 // 0 at the segment start, 1 at the end
}

// Route is a path through the network between two on-road points.
type Route struct {
	Dist float64     // route length in meters
	Segs []SegmentID // traversed segments, in order, inclusive of both ends
}

// Router answers shortest-path queries over a Network. Searches are
// bounded by MaxDist. Without a hierarchy, results of single-source
// Dijkstra runs are memoized in an approximate-LRU (CLOCK) cache,
// mirroring the precomputation table the paper uses to avoid repeated
// shortest-path searches (§V-A2). With a hierarchy attached
// (WithHierarchy), node queries run as Contraction-Hierarchies label
// intersections instead — same results, with per-node CH labels
// (thousands of times smaller than flat trees) cached under the same
// CLOCK policy. Router is safe for concurrent use.
type Router struct {
	net     *Network
	maxDist float64
	hier    *Hierarchy // nil = flat per-source Dijkstra

	mu       sync.Mutex
	cache    map[NodeID]int // source -> slot index in entries
	entries  []cacheSlot
	hand     int // CLOCK sweep position
	capacity int

	// CH label caches (hierarchy mode only), same CLOCK policy.
	fwdLabels labelCache
	bwdLabels labelCache
}

// cacheSlot is one CLOCK-cache slot. The reference bit is set on every
// hit and gives the entry a second chance during the eviction sweep, so
// hot sources survive scans of cold ones — the property an exact LRU
// has without its cost of mutating a shared recency list on every hit.
type cacheSlot struct {
	source NodeID
	tree   *ssspResult
	ref    bool
}

// ssspResult holds a bounded single-source shortest-path tree. tie
// carries each node's canonical tie-break key alongside its distance
// (see segTie); parents always describe the unique minimum-(dist, tie)
// path from the source.
type ssspResult struct {
	source NodeID
	dist   map[NodeID]float64
	tie    map[NodeID]uint64
	parent map[NodeID]SegmentID // segment used to reach the node
}

// RouterOption configures a Router.
type RouterOption func(*Router)

// WithMaxDist bounds every search to the given route length in meters.
// Queries beyond the bound report unreachable. Default 30 km.
func WithMaxDist(d float64) RouterOption {
	return func(r *Router) { r.maxDist = d }
}

// WithCacheSize sets how many single-source trees are memoized.
// Default 4096.
func WithCacheSize(n int) RouterOption {
	return func(r *Router) { r.capacity = n }
}

// WithHierarchy attaches a prebuilt Contraction Hierarchy; node queries
// then run as bidirectional CH searches instead of cached per-source
// Dijkstra trees. The hierarchy must have been built over the same
// network the router serves.
func WithHierarchy(h *Hierarchy) RouterOption {
	return func(r *Router) {
		r.hier = h
		if h != nil {
			obsCHShortcuts.Set(int64(h.NumShortcuts()))
		}
	}
}

// NewRouter creates a Router over the network.
func NewRouter(net *Network, opts ...RouterOption) *Router {
	r := &Router{
		net:      net,
		maxDist:  30000,
		cache:    make(map[NodeID]int),
		capacity: 4096,
	}
	for _, o := range opts {
		o(r)
	}
	r.fwdLabels.capacity = r.capacity
	r.bwdLabels.capacity = r.capacity
	return r
}

// MaxDist returns the search bound in meters.
func (r *Router) MaxDist() float64 { return r.maxDist }

// Hierarchy returns the attached Contraction Hierarchy, or nil when the
// router runs flat Dijkstra.
func (r *Router) Hierarchy() *Hierarchy { return r.hier }

// NodeDist returns the shortest route length between two nodes, or
// ok=false if unreachable within the search bound.
func (r *Router) NodeDist(from, to NodeID) (float64, bool) {
	if from == to {
		return 0, true
	}
	if r.hier != nil {
		lf := r.label(&r.fwdLabels, from, true)
		lb := r.label(&r.bwdLabels, to, false)
		return r.hier.distLabels(lf, lb, r.maxDist)
	}
	t := r.tree(from)
	d, ok := t.dist[to]
	return d, ok
}

// NodePath returns the segment sequence and length of the shortest
// route between two nodes, or ok=false if unreachable within the bound.
// An empty path with ok=true means from == to.
func (r *Router) NodePath(from, to NodeID) ([]SegmentID, float64, bool) {
	if from == to {
		return nil, 0, true
	}
	if r.hier != nil {
		lf := r.label(&r.fwdLabels, from, true)
		lb := r.label(&r.bwdLabels, to, false)
		return r.hier.pathLabels(lf, lb, r.maxDist)
	}
	t := r.tree(from)
	d, ok := t.dist[to]
	if !ok {
		return nil, 0, false
	}
	// Walk parents back from to.
	var rev []SegmentID
	cur := to
	for cur != from {
		seg, ok := t.parent[cur]
		if !ok {
			return nil, 0, false // defensive: broken tree
		}
		rev = append(rev, seg)
		cur = r.net.Segment(seg).From
	}
	path := make([]SegmentID, len(rev))
	for i, s := range rev {
		path[len(rev)-1-i] = s
	}
	return path, d, true
}

// RouteBetween returns the route from point a to point b, both given as
// positions on road segments. Movement follows segment direction: the
// route leaves a through the rest of its segment and enters b through
// the start of b's segment, except when both points lie on the same
// segment with b ahead of a. ok=false means b is unreachable within the
// search bound.
func (r *Router) RouteBetween(a, b PointOnRoad) (Route, bool) {
	obsRoutes.Inc()
	segA, segB := r.net.Segment(a.Seg), r.net.Segment(b.Seg)
	if a.Seg == b.Seg && b.Frac >= a.Frac {
		return Route{
			Dist: (b.Frac - a.Frac) * segA.Length,
			Segs: []SegmentID{a.Seg},
		}, true
	}
	head := (1 - a.Frac) * segA.Length // remaining length of a's segment
	tail := b.Frac * segB.Length       // consumed length of b's segment
	if segA.To == segB.From {
		return Route{
			Dist: head + tail,
			Segs: []SegmentID{a.Seg, b.Seg},
		}, true
	}
	mid, d, ok := r.NodePath(segA.To, segB.From)
	if !ok {
		obsRouteMisses.Inc()
		return Route{}, false
	}
	segs := make([]SegmentID, 0, len(mid)+2)
	segs = append(segs, a.Seg)
	segs = append(segs, mid...)
	segs = append(segs, b.Seg)
	return Route{Dist: head + d + tail, Segs: segs}, true
}

// RouteDist returns only the length of the route from a to b — the
// same distance RouteBetween reports, without materializing the
// segment list. Transition models that score on distance alone use it
// to keep per-step scoring allocation-free on the warm cache path.
func (r *Router) RouteDist(a, b PointOnRoad) (float64, bool) {
	obsRoutes.Inc()
	segA, segB := r.net.Segment(a.Seg), r.net.Segment(b.Seg)
	if a.Seg == b.Seg && b.Frac >= a.Frac {
		return (b.Frac - a.Frac) * segA.Length, true
	}
	head := (1 - a.Frac) * segA.Length
	tail := b.Frac * segB.Length
	if segA.To == segB.From {
		return head + tail, true
	}
	d, ok := r.NodeDist(segA.To, segB.From)
	if !ok {
		obsRouteMisses.Inc()
		return 0, false
	}
	return head + d + tail, true
}

// Geometry returns the polyline of a route's traversed segments,
// trimmed to the start and end positions.
func (r *Router) Geometry(route Route, a, b PointOnRoad) geo.Polyline {
	if len(route.Segs) == 0 {
		return nil
	}
	var pl geo.Polyline
	if len(route.Segs) == 1 {
		seg := r.net.Segment(route.Segs[0])
		start, end := a.Frac*seg.Length, b.Frac*seg.Length
		return clipShape(seg.Shape, start, end)
	}
	first := r.net.Segment(route.Segs[0])
	pl = append(pl, clipShape(first.Shape, a.Frac*first.Length, first.Length)...)
	for _, sid := range route.Segs[1 : len(route.Segs)-1] {
		shape := r.net.Segment(sid).Shape
		pl = append(pl, shape[1:]...)
	}
	last := r.net.Segment(route.Segs[len(route.Segs)-1])
	clipped := clipShape(last.Shape, 0, b.Frac*last.Length)
	if len(clipped) > 0 {
		pl = append(pl, clipped[1:]...)
	}
	return pl
}

// clipShape returns the part of the polyline between distances d0 and
// d1 from the start (d0 <= d1 assumed after swap).
func clipShape(shape geo.Polyline, d0, d1 float64) geo.Polyline {
	if d1 < d0 {
		d0, d1 = d1, d0
	}
	out := geo.Polyline{shape.At(d0)}
	var walked float64
	for i := 1; i < len(shape); i++ {
		seg := shape[i-1].Dist(shape[i])
		if walked+seg > d0 && walked+seg < d1 {
			out = append(out, shape[i])
		}
		walked += seg
	}
	out = append(out, shape.At(d1))
	return out
}

// tree returns the memoized bounded shortest-path tree rooted at from.
func (r *Router) tree(from NodeID) *ssspResult {
	r.mu.Lock()
	if i, ok := r.cache[from]; ok {
		r.entries[i].ref = true
		t := r.entries[i].tree
		r.mu.Unlock()
		obsCacheHits.Inc()
		return t
	}
	r.mu.Unlock()
	obsCacheMisses.Inc()

	var start time.Time
	timed := obs.Default.Enabled()
	if timed {
		start = time.Now()
	}
	t := r.dijkstra(from)
	if timed {
		obsDijkstraS.ObserveSince(start)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.cache[from]; ok {
		// Another goroutine computed it concurrently; keep theirs.
		r.entries[i].ref = true
		return r.entries[i].tree
	}
	if r.capacity <= 0 {
		return t
	}
	if len(r.entries) < r.capacity {
		r.cache[from] = len(r.entries)
		r.entries = append(r.entries, cacheSlot{source: from, tree: t})
	} else {
		// CLOCK sweep: pass over referenced slots clearing their bit,
		// evict the first unreferenced one. New entries start with the
		// bit clear, so a scan of one-shot sources recycles its own
		// slots before it can push out a recently re-used tree.
		for r.entries[r.hand].ref {
			r.entries[r.hand].ref = false
			r.hand = (r.hand + 1) % len(r.entries)
		}
		victim := r.hand
		delete(r.cache, r.entries[victim].source)
		obsCacheEvictions.Inc()
		r.entries[victim] = cacheSlot{source: from, tree: t}
		r.cache[from] = victim
		r.hand = (victim + 1) % len(r.entries)
	}
	obsCacheSize.Set(int64(len(r.cache)))
	return t
}

// labelCache memoizes per-node CH labels under the same CLOCK
// (second-chance) policy as the flat tree cache. Not self-locking:
// callers hold Router.mu.
type labelCache struct {
	idx      map[NodeID]int
	slots    []labelSlot
	hand     int
	capacity int
}

type labelSlot struct {
	node  NodeID
	label *chLabel
	ref   bool
}

func (c *labelCache) get(n NodeID) (*chLabel, bool) {
	i, ok := c.idx[n]
	if !ok {
		return nil, false
	}
	c.slots[i].ref = true
	return c.slots[i].label, true
}

func (c *labelCache) put(n NodeID, l *chLabel) {
	if c.capacity <= 0 {
		return
	}
	if c.idx == nil {
		c.idx = make(map[NodeID]int)
	}
	if len(c.slots) < c.capacity {
		c.idx[n] = len(c.slots)
		c.slots = append(c.slots, labelSlot{node: n, label: l})
		return
	}
	for c.slots[c.hand].ref {
		c.slots[c.hand].ref = false
		c.hand = (c.hand + 1) % len(c.slots)
	}
	victim := c.hand
	delete(c.idx, c.slots[victim].node)
	c.slots[victim] = labelSlot{node: n, label: l}
	c.idx[n] = victim
	c.hand = (victim + 1) % len(c.slots)
}

// label returns the memoized CH label rooted at node, building it
// outside the lock on a miss (concurrent builders race benignly; the
// first insert wins and labels are interchangeable — the build is
// deterministic).
func (r *Router) label(c *labelCache, node NodeID, forward bool) *chLabel {
	r.mu.Lock()
	if l, ok := c.get(node); ok {
		r.mu.Unlock()
		return l
	}
	r.mu.Unlock()
	l := r.hier.buildLabel(node, forward, r.maxDist)
	r.mu.Lock()
	defer r.mu.Unlock()
	if l2, ok := c.get(node); ok {
		return l2
	}
	c.put(node, l)
	return l
}

// pqItem is a priority-queue entry for plain weighted Dijkstra
// (ShortestPathWeighted).
type pqItem struct {
	node NodeID
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// segTie returns the canonical tie-break value of a segment: a fixed
// pseudo-random 44-bit integer derived from the id (splitmix64 mix).
// Routing orders paths by the lexicographic key (distance, sum of
// segment tie values), which makes the minimum-key path unique almost
// surely even on grid networks where many distinct paths share the
// exact same length. That uniqueness is what lets the Contraction-
// Hierarchies query reproduce the flat Dijkstra path byte for byte.
// 44-bit values keep sums overflow-free to 2^20 hops.
func segTie(id SegmentID) uint64 {
	x := uint64(id) + 1
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x >> 20
}

// keyLess reports whether key (d1, t1) precedes (d2, t2) in the
// canonical lexicographic path order.
func keyLess(d1 float64, t1 uint64, d2 float64, t2 uint64) bool {
	if d1 != d2 {
		return d1 < d2
	}
	return t1 < t2
}

// keyItem is a priority-queue entry carrying the canonical (dist, tie)
// key; the node id is the final comparison so pop order is fully
// deterministic.
type keyItem struct {
	node NodeID
	dist float64
	tie  uint64
}

type keyPQ []keyItem

func (q keyPQ) Len() int { return len(q) }
func (q keyPQ) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	if q[i].tie != q[j].tie {
		return q[i].tie < q[j].tie
	}
	return q[i].node < q[j].node
}
func (q keyPQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *keyPQ) Push(x interface{}) { *q = append(*q, x.(keyItem)) }
func (q *keyPQ) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// dijkstra runs a bounded single-source shortest-path search under the
// canonical (distance, tie) key order.
func (r *Router) dijkstra(from NodeID) *ssspResult {
	t := &ssspResult{
		source: from,
		dist:   map[NodeID]float64{from: 0},
		tie:    map[NodeID]uint64{from: 0},
		parent: map[NodeID]SegmentID{},
	}
	settled := make(map[NodeID]bool)
	q := &keyPQ{{node: from}}
	for q.Len() > 0 {
		cur := heap.Pop(q).(keyItem)
		if settled[cur.node] {
			continue
		}
		settled[cur.node] = true
		if cur.dist > r.maxDist {
			break
		}
		for _, sid := range r.net.Out(cur.node) {
			seg := r.net.Segment(sid)
			nd := cur.dist + seg.Length
			if nd > r.maxDist {
				continue
			}
			nt := cur.tie + segTie(sid)
			if od, ok := t.dist[seg.To]; !ok || keyLess(nd, nt, od, t.tie[seg.To]) {
				t.dist[seg.To] = nd
				t.tie[seg.To] = nt
				t.parent[seg.To] = sid
				heap.Push(q, keyItem{seg.To, nd, nt})
			}
		}
	}
	// Drop unsettled frontier entries beyond the bound so dist only
	// contains final values.
	for n, d := range t.dist {
		if d > r.maxDist {
			delete(t.dist, n)
			delete(t.tie, n)
			delete(t.parent, n)
		}
	}
	return t
}

// TravelTime returns the free-flow travel time of a route in seconds,
// using each segment's speed. Clipped end segments are prorated by the
// route's total distance.
func (r *Router) TravelTime(route Route) float64 {
	if len(route.Segs) == 0 {
		return 0
	}
	var fullLen, fullTime float64
	for _, sid := range route.Segs {
		seg := r.net.Segment(sid)
		fullLen += seg.Length
		if seg.Speed > 0 {
			fullTime += seg.Length / seg.Speed
		}
	}
	if fullLen == 0 {
		return 0
	}
	// Prorate: the route distance may be shorter than the sum of full
	// segment lengths because the first/last segments are clipped.
	return fullTime * math.Min(1, route.Dist/fullLen)
}
