// Package obs is the runtime telemetry layer: counters, gauges, and
// fixed-bucket histograms behind an atomic no-op-by-default Registry,
// structured logging via log/slog, per-trajectory match traces, and
// pprof/expvar debug serving. It is stdlib-only and designed so that
// instrumented hot paths cost almost nothing when observability is off:
// every instrument method first loads one shared atomic.Bool and
// returns, which BenchmarkCounterDisabled (bench_test.go) pins at a few
// nanoseconds with zero allocations. Instruments are interned by name,
// so package-level handles can be grabbed once at init and hammered
// from any goroutine — all state is atomic and safe under -race.
//
// The package-level Default registry is what the library's hot paths
// (roadnet.Router, hmm.Matcher, core training) report into; CLIs enable
// it with Default.Enable() or the BindFlags helper and dump
// Default.Snapshot() as JSON.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry owns a namespace of instruments. The zero value is not
// usable; call New. A disabled registry (the default) turns every
// instrument update into a single atomic load.
type Registry struct {
	enabled atomic.Bool

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	deriveds   map[string]func() float64
}

// New creates a disabled registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		deriveds:   make(map[string]func() float64),
	}
}

// Default is the process-wide registry the library reports into.
// Disabled until a CLI or test calls Default.Enable().
var Default = New()

// Enable turns instrument recording on.
func (r *Registry) Enable() { r.enabled.Store(true) }

// Disable turns instrument recording off (updates become no-ops again;
// recorded values are kept until Reset).
func (r *Registry) Disable() { r.enabled.Store(false) }

// Enabled reports whether the registry records updates.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// Counter returns the counter registered under name, creating it on
// first use. Safe for concurrent use; the same name always yields the
// same instrument.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{on: &r.enabled}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{on: &r.enabled}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds on first use (an implicit +Inf
// bucket is always appended). Bounds must be sorted ascending; later
// calls with different bounds reuse the first registration.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	h := &Histogram{
		on:     &r.enabled,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.histograms[name] = h
	return h
}

// Derived registers a gauge whose value is computed at read time from
// other instruments — ratios like a cache hit rate that would drift if
// maintained incrementally. The function must be safe for concurrent
// use and cheap; it runs on every Snapshot and Prometheus scrape.
// Re-registering a name replaces the function.
func (r *Registry) Derived(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.deriveds[name] = fn
}

// Reset zeroes every registered instrument (handles stay valid), so a
// run's metrics can be measured as deltas from a clean slate.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.histograms {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
	}
}

// Counter is a monotonically increasing event count.
type Counter struct {
	on *atomic.Bool
	v  atomic.Int64
}

// Add increments the counter by n. No-op on a nil counter or a
// disabled registry.
func (c *Counter) Add(n int64) {
	if c == nil || !c.on.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous integer level (queue depth, lag, cache
// size).
type Gauge struct {
	on *atomic.Bool
	v  atomic.Int64
}

// Set stores the current level. No-op on a nil gauge or a disabled
// registry.
func (g *Gauge) Set(v int64) {
	if g == nil || !g.on.Load() {
		return
	}
	g.v.Store(v)
}

// Add shifts the level by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil || !g.on.Load() {
		return
	}
	g.v.Add(delta)
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets (upper-bound
// inclusive), tracking total count and sum for mean computation.
type Histogram struct {
	on     *atomic.Bool
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one value. No-op on a nil histogram or a disabled
// registry.
func (h *Histogram) Observe(v float64) {
	if h == nil || !h.on.Load() {
		return
	}
	// Buckets are few (≤ ~12); linear scan beats binary search here.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveSince records the elapsed seconds since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil || !h.on.Load() {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Mean returns the mean observation, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	if n := h.Count(); n > 0 {
		return h.Sum() / float64(n)
	}
	return 0
}

// LatencyBuckets are the default bounds (in seconds) for wall-clock
// histograms: 100µs to ~30s in roughly 3× steps.
var LatencyBuckets = []float64{
	0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30,
}

// FineLatencyBuckets are bounds (in seconds) for microsecond-scale
// inner loops (per-pair Dijkstra, single-batch scoring): 1µs to 1s in
// roughly 3× steps. LatencyBuckets bottoms out at 100µs, which lumps
// most router queries into one bucket and makes their quantiles
// useless.
var FineLatencyBuckets = []float64{
	0.000001, 0.000003, 0.00001, 0.00003, 0.0001, 0.0003,
	0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1,
}

// Snapshot is a point-in-time JSON-marshalable view of a registry.
type Snapshot struct {
	Build      BuildInfo                    `json:"build"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Derived    map[string]float64           `json:"derived,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot is one histogram's state: cumulative counts per
// upper bound plus the overflow bucket, with bucket-interpolated
// latency quantiles precomputed for dashboards and bench output.
type HistogramSnapshot struct {
	Count    int64     `json:"count"`
	Sum      float64   `json:"sum"`
	Mean     float64   `json:"mean"`
	P50      float64   `json:"p50"`
	P95      float64   `json:"p95"`
	P99      float64   `json:"p99"`
	Bounds   []float64 `json:"bounds"`
	Buckets  []int64   `json:"buckets"` // len(Bounds)+1; last is +Inf
	Overflow int64     `json:"-"`
}

// Snapshot captures every instrument's current value. Counters that
// never incremented are omitted to keep JSON dumps focused, but every
// registered histogram is emitted even at zero observations so the
// scrape series set is stable (an unregistered histogram and an idle
// one used to be indistinguishable).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Build:      GetBuildInfo(),
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Derived:    make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for name, fn := range r.deriveds {
		s.Derived[name] = fn()
	}
	for name, c := range r.counters {
		if v := c.Value(); v != 0 {
			s.Counters[name] = v
		}
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Count:   h.Count(),
			Sum:     h.Sum(),
			Mean:    h.Mean(),
			Bounds:  append([]float64(nil), h.bounds...),
			Buckets: make([]int64, len(h.counts)),
		}
		for i := range h.counts {
			hs.Buckets[i] = h.counts[i].Load()
		}
		hs.Overflow = hs.Buckets[len(hs.Buckets)-1]
		hs.P50 = bucketQuantile(hs.Bounds, hs.Buckets, 0.50)
		hs.P95 = bucketQuantile(hs.Bounds, hs.Buckets, 0.95)
		hs.P99 = bucketQuantile(hs.Bounds, hs.Buckets, 0.99)
		s.Histograms[name] = hs
	}
	return s
}

// CounterNames returns the sorted names of all registered counters
// (including zero-valued ones), mainly for tests and debug listings.
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// GaugeNames returns the sorted names of all registered gauges.
func (r *Registry) GaugeNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.gauges))
	for name := range r.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DerivedNames returns the sorted names of all registered derived
// gauges.
func (r *Registry) DerivedNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.deriveds))
	for name := range r.deriveds {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// HistogramNames returns the sorted names of all registered
// histograms.
func (r *Registry) HistogramNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.histograms))
	for name := range r.histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Ratio returns a/(a+b) from two counter names in the snapshot — the
// shape of every hit-rate computation — or 0 when both are zero.
func (s Snapshot) Ratio(a, b string) float64 {
	x, y := float64(s.Counters[a]), float64(s.Counters[b])
	if x+y == 0 {
		return 0
	}
	return x / (x + y)
}
