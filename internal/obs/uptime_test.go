package obs

import (
	"strings"
	"testing"
)

func TestUptimeDerivedGauge(t *testing.T) {
	if Uptime() <= 0 {
		t.Fatal("Uptime() not positive")
	}
	found := false
	for _, n := range Default.DerivedNames() {
		if n == "uptime.seconds" {
			found = true
		}
	}
	if !found {
		t.Fatalf("uptime.seconds not registered: %v", Default.DerivedNames())
	}
	s := Default.Snapshot()
	if v, ok := s.Derived["uptime.seconds"]; !ok || v <= 0 {
		t.Fatalf("snapshot derived uptime.seconds = %v (present %v), want > 0", v, ok)
	}
	var b strings.Builder
	if err := Default.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "lhmm_uptime_seconds") {
		t.Fatal("lhmm_uptime_seconds missing from Prometheus exposition")
	}
}
