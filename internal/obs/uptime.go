package obs

import "time"

// processStart anchors the uptime gauge. Package-level so uptime is
// measured from obs initialization — effectively process start, since
// every binary links this package.
var processStart = time.Now()

func init() {
	// lhmm_uptime_seconds: a derived gauge, so it is computed at scrape
	// time and appears consistently in the Prometheus text exposition,
	// /metrics.json snapshots, and lhmm-bench -json output — the same
	// three surfaces every other derived gauge reaches.
	Default.Derived("uptime.seconds", func() float64 {
		return time.Since(processStart).Seconds()
	})
}

// Uptime reports time since process start (the value behind the
// lhmm_uptime_seconds derived gauge).
func Uptime() time.Duration { return time.Since(processStart) }
