package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format 0.0.4), stdlib-only. Registry
// names are dotted lowercase ("hmm.match.seconds"); on the wire they
// become underscore-separated with an "lhmm_" namespace prefix
// ("lhmm_hmm_match_seconds"), counters gain the conventional "_total"
// suffix, and histograms expand to cumulative "_bucket{le=...}" series
// plus "_sum"/"_count". Every registered instrument is emitted even at
// zero so the scrape's series set is stable from process start.

// PromContentType is the Content-Type for the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promNamespace prefixes every exported series.
const promNamespace = "lhmm_"

// promName maps a registry name to its wire name.
func promName(name string) string {
	return promNamespace + strings.ReplaceAll(name, ".", "_")
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every registered instrument in the Prometheus
// text exposition format, sorted by name for deterministic scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		histograms[name] = h
	}
	deriveds := make(map[string]func() float64, len(r.deriveds))
	for name, fn := range r.deriveds {
		deriveds[name] = fn
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	// lhmm_build_info is the conventional constant-1 info gauge: the
	// build metadata rides in labels so dashboards can join any series
	// against the binary that produced it. It is the one labeled series
	// in the exposition (registry instruments are label-free).
	bi := GetBuildInfo()
	fmt.Fprintf(bw, "# HELP lhmm_build_info Build metadata of the running binary (constant 1).\n")
	fmt.Fprintf(bw, "# TYPE lhmm_build_info gauge\n")
	fmt.Fprintf(bw, "lhmm_build_info{version=%q,goversion=%q,commit=%q} 1\n",
		bi.Version, bi.GoVersion, bi.Commit)
	for _, name := range sortedKeys(counters) {
		wire := promName(name) + "_total"
		fmt.Fprintf(bw, "# HELP %s Counter %q.\n", wire, name)
		fmt.Fprintf(bw, "# TYPE %s counter\n", wire)
		fmt.Fprintf(bw, "%s %d\n", wire, counters[name].Value())
	}
	for _, name := range sortedKeys(gauges) {
		wire := promName(name)
		fmt.Fprintf(bw, "# HELP %s Gauge %q.\n", wire, name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", wire)
		fmt.Fprintf(bw, "%s %d\n", wire, gauges[name].Value())
	}
	for _, name := range sortedKeys(deriveds) {
		wire := promName(name)
		fmt.Fprintf(bw, "# HELP %s Derived gauge %q (computed at scrape time).\n", wire, name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", wire)
		fmt.Fprintf(bw, "%s %s\n", wire, promFloat(deriveds[name]()))
	}
	for _, name := range sortedKeys(histograms) {
		h := histograms[name]
		wire := promName(name)
		fmt.Fprintf(bw, "# HELP %s Histogram %q.\n", wire, name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", wire)
		var cum int64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", wire, promFloat(bound), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", wire, cum)
		fmt.Fprintf(bw, "%s_sum %s\n", wire, promFloat(h.Sum()))
		fmt.Fprintf(bw, "%s_count %d\n", wire, h.count.Load())
	}
	return bw.Flush()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ValidatePromText checks that every line of a scrape is either a
// "# HELP"/"# TYPE" comment or a sample of the form
// `name{labels} value`, with metric names matching the exposition
// format's grammar. It is the repo's own scrape validator, used by the
// handler tests and the CI scrape smoke; it checks line shape, not
// full protocol semantics.
func ValidatePromText(b []byte) error {
	sc := bufio.NewScanner(bytes.NewReader(b))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	n := 0
	samples := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				return fmt.Errorf("prom: line %d: unknown comment %q", n, line)
			}
			continue
		}
		if err := validatePromSample(line); err != nil {
			return fmt.Errorf("prom: line %d: %w", n, err)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("prom: scan: %w", err)
	}
	if samples == 0 {
		return fmt.Errorf("prom: no samples in scrape")
	}
	return nil
}

func validatePromSample(line string) error {
	// name, optional {labels}, one space, value.
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return fmt.Errorf("malformed sample %q", line)
	}
	name := line[:i]
	if !validPromName(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		close := strings.Index(rest, "}")
		if close < 0 {
			return fmt.Errorf("unterminated labels in %q", line)
		}
		labels := rest[1:close]
		for _, pair := range strings.Split(labels, ",") {
			eq := strings.Index(pair, "=")
			if eq <= 0 || !validPromLabel(pair[:eq]) {
				return fmt.Errorf("invalid label pair %q", pair)
			}
			v := pair[eq+1:]
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return fmt.Errorf("unquoted label value in %q", pair)
			}
		}
		rest = rest[close+1:]
	}
	if len(rest) < 2 || rest[0] != ' ' {
		return fmt.Errorf("missing value in %q", line)
	}
	val := rest[1:]
	if val != "+Inf" && val != "-Inf" && val != "NaN" {
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			return fmt.Errorf("bad sample value %q", val)
		}
	}
	return nil
}

func validPromName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}

func validPromLabel(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}
