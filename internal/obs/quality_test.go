package obs

import (
	"sync"
	"testing"
	"time"
)

// qmClock is an injectable test clock for the quality monitor.
type qmClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *qmClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *qmClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newQMClock() *qmClock {
	return &qmClock{t: time.Unix(1_700_000_000, 0)}
}

func TestQualityDegradedAndRecovery(t *testing.T) {
	clk := newQMClock()
	var mu sync.Mutex
	var transitions []bool
	var lastViol []string
	m := NewQualityMonitor(QualityConfig{
		Window:          10 * time.Second,
		Slots:           5,
		MinSamples:      5,
		MaxDegradedRate: 0.20,
		OnTransition: func(degraded bool, viol []string) {
			mu.Lock()
			transitions = append(transitions, degraded)
			lastViol = viol
			mu.Unlock()
		},
		now: clk.now,
	})

	// Ten clean matches: ok.
	for i := 0; i < 10; i++ {
		m.RecordMatch(time.Millisecond, false, false)
	}
	if m.Degraded() {
		t.Fatal("degraded after clean matches")
	}
	// Enough degraded matches to push the rate past 20%.
	for i := 0; i < 5; i++ {
		m.RecordMatch(time.Millisecond, true, false)
	}
	if !m.Degraded() {
		t.Fatal("not degraded at 5/15 degraded rate vs 0.20 threshold")
	}
	mu.Lock()
	if len(transitions) == 0 || !transitions[len(transitions)-1] {
		t.Fatalf("no degraded transition fired: %v", transitions)
	}
	if len(lastViol) != 1 || lastViol[0] != "degraded_rate" {
		t.Fatalf("violations = %v, want [degraded_rate]", lastViol)
	}
	mu.Unlock()

	rep := m.Report()
	if rep.Status != "degraded" {
		t.Errorf("report status %q, want degraded", rep.Status)
	}
	if rep.Matches != 15 || rep.Requests != 15 {
		t.Errorf("report counts %d/%d, want 15/15", rep.Matches, rep.Requests)
	}
	if want := 5.0 / 15.0; rep.DegradedRate != want {
		t.Errorf("degraded rate %g, want %g", rep.DegradedRate, want)
	}

	// A quiet window expires the bad slots: recovery without traffic.
	clk.advance(11 * time.Second)
	if m.Degraded() {
		t.Fatal("still degraded after the window expired")
	}
	mu.Lock()
	if transitions[len(transitions)-1] {
		t.Fatalf("no recovery transition fired: %v", transitions)
	}
	mu.Unlock()
}

// Below MinSamples the monitor always reports ok, so one early failure
// cannot flip readiness.
func TestQualityMinSamplesGate(t *testing.T) {
	clk := newQMClock()
	m := NewQualityMonitor(QualityConfig{
		Window:          10 * time.Second,
		MinSamples:      10,
		MaxDegradedRate: 0.01,
		now:             clk.now,
	})
	for i := 0; i < 9; i++ {
		m.RecordMatch(time.Millisecond, true, false) // 100% degraded
	}
	if m.Degraded() {
		t.Fatal("degraded below the MinSamples gate")
	}
	m.RecordMatch(time.Millisecond, true, false)
	if !m.Degraded() {
		t.Fatal("not degraded once the gate is met")
	}
}

func TestQualityRequestRates(t *testing.T) {
	clk := newQMClock()
	m := NewQualityMonitor(QualityConfig{
		Window:       10 * time.Second,
		MinSamples:   5,
		MaxShedRate:  0.10,
		MaxEmptyRate: 0.30,
		now:          clk.now,
	})
	for i := 0; i < 10; i++ {
		m.RecordMatch(time.Millisecond, false, false)
	}
	m.RecordEmpty()
	m.RecordError()
	for i := 0; i < 3; i++ {
		m.RecordShed()
	}
	rep := m.Report()
	if rep.Requests != 15 || rep.Matches != 10 {
		t.Fatalf("counts %d/%d, want requests 15 matches 10", rep.Requests, rep.Matches)
	}
	if want := 3.0 / 15.0; rep.ShedRate != want {
		t.Errorf("shed rate %g, want %g", rep.ShedRate, want)
	}
	if want := 1.0 / 15.0; rep.EmptyRate != want {
		t.Errorf("empty rate %g, want %g", rep.EmptyRate, want)
	}
	if !m.Degraded() {
		t.Error("shed rate 0.2 vs threshold 0.1 should degrade")
	}
	if len(rep.Violations) != 1 || rep.Violations[0] != "shed_rate" {
		t.Errorf("violations %v, want [shed_rate]", rep.Violations)
	}
}

func TestQualityP99Threshold(t *testing.T) {
	clk := newQMClock()
	m := NewQualityMonitor(QualityConfig{
		Window:     10 * time.Second,
		MinSamples: 5,
		MaxP99:     10 * time.Millisecond,
		now:        clk.now,
	})
	for i := 0; i < 20; i++ {
		m.RecordMatch(500*time.Millisecond, false, false)
	}
	if !m.Degraded() {
		t.Fatal("p99 far above MaxP99 should degrade")
	}
	rep := m.Report()
	if len(rep.Violations) != 1 || rep.Violations[0] != "p99_latency" {
		t.Fatalf("violations %v, want [p99_latency]", rep.Violations)
	}
	if rep.P99S < 0.1 {
		t.Errorf("windowed p99 %gs implausibly low for 500ms matches", rep.P99S)
	}
	if m.P99() != rep.P99S {
		t.Errorf("P99() %g disagrees with report %g", m.P99(), rep.P99S)
	}
}

// The slot ring only remembers Window's worth of signal: old samples
// roll off as the clock advances slot by slot.
func TestQualitySlidingWindow(t *testing.T) {
	clk := newQMClock()
	m := NewQualityMonitor(QualityConfig{
		Window:          10 * time.Second,
		Slots:           5,
		MinSamples:      1,
		MaxDegradedRate: 0.5,
		now:             clk.now,
	})
	m.RecordMatch(time.Millisecond, true, false)
	if !m.Degraded() {
		t.Fatal("single degraded match above threshold should degrade")
	}
	// Fresh clean traffic in later slots dilutes, then expires, it.
	for i := 0; i < 5; i++ {
		clk.advance(2 * time.Second)
		m.RecordMatch(time.Millisecond, false, false)
	}
	if m.Degraded() {
		rep := m.Report()
		t.Fatalf("still degraded after the bad slot rolled off: %+v", rep)
	}
}

// A shadow candidate diverging below the configured agreement floor
// surfaces as a shadow_divergence violation; recovering agreement
// clears it.
func TestQualityShadowDivergence(t *testing.T) {
	clk := newQMClock()
	var mu sync.Mutex
	agreement := 1.0
	setAgreement := func(v float64) {
		mu.Lock()
		agreement = v
		mu.Unlock()
	}
	m := NewQualityMonitor(QualityConfig{
		Window:             10 * time.Second,
		Slots:              5,
		MinSamples:         1,
		MinShadowAgreement: 0.95,
		ShadowProbe: func() float64 {
			mu.Lock()
			defer mu.Unlock()
			return agreement
		},
		now: clk.now,
	})

	m.RecordMatch(time.Millisecond, false, false)
	if m.Degraded() {
		t.Fatal("degraded with full shadow agreement")
	}

	setAgreement(0.80)
	m.RecordMatch(time.Millisecond, false, false)
	if !m.Degraded() {
		t.Fatal("not degraded at agreement 0.80 vs floor 0.95")
	}
	rep := m.Report()
	if rep.ShadowAgreement != 0.80 {
		t.Errorf("report shadow agreement %v, want 0.80", rep.ShadowAgreement)
	}
	if rep.Thresholds.MinShadowAgreement != 0.95 {
		t.Errorf("report threshold %v, want 0.95", rep.Thresholds.MinShadowAgreement)
	}
	found := false
	for _, v := range rep.Violations {
		if v == "shadow_divergence" {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations %v, want shadow_divergence", rep.Violations)
	}

	setAgreement(0.99)
	m.RecordMatch(time.Millisecond, false, false)
	if m.Degraded() {
		t.Fatal("still degraded after agreement recovered")
	}
}

func TestQualityNilMonitor(t *testing.T) {
	var m *QualityMonitor
	m.RecordMatch(time.Second, true, true)
	m.RecordEmpty()
	m.RecordShed()
	m.RecordError()
	if m.Degraded() {
		t.Error("nil monitor degraded")
	}
	if m.P99() != 0 {
		t.Error("nil monitor p99 != 0")
	}
	if rep := m.Report(); rep.Status != "ok" {
		t.Errorf("nil monitor report status %q", rep.Status)
	}
}
