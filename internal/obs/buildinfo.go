package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running binary: module version, Go
// toolchain, and VCS commit. It is exported as the labeled
// lhmm_build_info gauge on /metrics, embedded in the JSON snapshot,
// and stamped into lhmm-bench documents so a committed benchmark
// records what built it.
type BuildInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Commit    string `json:"commit,omitempty"`
	// Modified marks a build from a dirty working tree.
	Modified bool `json:"modified,omitempty"`
}

var (
	buildInfoOnce sync.Once
	buildInfo     BuildInfo
)

// GetBuildInfo reads the binary's embedded build metadata once and
// caches it. Fields missing from the build (no VCS stamping, test
// binaries) come back empty rather than erroring.
func GetBuildInfo() BuildInfo {
	buildInfoOnce.Do(func() {
		buildInfo = BuildInfo{Version: "unknown", GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.Main.Version != "" {
			buildInfo.Version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev := s.Value
				if len(rev) > 12 {
					rev = rev[:12]
				}
				buildInfo.Commit = rev
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
	})
	return buildInfo
}
