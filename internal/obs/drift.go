package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Score-distribution drift monitoring. The learned emission and
// transition probabilities are LHMM's value claim; when the serving
// workload drifts away from the training distribution (a different
// city, a changed tower layout, degenerate weights) those score
// distributions shift long before accuracy metrics — which need ground
// truth — can say so. A DriftMonitor keeps streaming sketches
// (fixed-bucket histograms plus Welford mean/variance) of the model's
// decision-relevant signals; `lhmm train` freezes the same sketches
// over the validation split as a baseline, and the serving layer
// compares live sketches against it with PSI/KL.
//
// Like the Registry, the monitor is no-op by default: every Sketch
// shares the monitor's atomic enabled flag, so a disabled Observe is
// one atomic load with zero allocations (pinned by TestDriftDisabledAllocs).

// Standard bucket layouts for drift sketches.
var (
	// UnitBuckets covers probability-like scores in [0,1] with 20
	// linear buckets (the overflow bucket absorbs >0.95).
	UnitBuckets = []float64{
		0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50,
		0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95,
	}
	// CountBuckets covers small integer counts (candidate-set sizes).
	CountBuckets = []float64{1, 2, 4, 8, 12, 16, 20, 24, 28, 32, 40, 48}
)

// Sketch is one signal's streaming distribution summary: fixed-bucket
// counts (upper-bound inclusive, implicit +Inf overflow) plus Welford
// online mean/variance and min/max. Safe for concurrent use; a sketch
// belonging to a disabled monitor ignores observations.
type Sketch struct {
	on *atomic.Bool

	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1; last is +Inf overflow
	n      int64
	mean   float64
	m2     float64 // Welford sum of squared deviations
	min    float64
	max    float64
}

// Enabled reports whether observations are currently recorded (nil-safe).
func (s *Sketch) Enabled() bool { return s != nil && s.on.Load() }

// Observe records one value. No-op on a nil sketch or a disabled
// monitor (one atomic load, zero allocations).
func (s *Sketch) Observe(v float64) {
	if s == nil || !s.on.Load() {
		return
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	s.mu.Lock()
	i := 0
	for i < len(s.bounds) && v > s.bounds[i] {
		i++
	}
	s.counts[i]++
	s.n++
	d := v - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (v - s.mean)
	if s.n == 1 || v < s.min {
		s.min = v
	}
	if s.n == 1 || v > s.max {
		s.max = v
	}
	s.mu.Unlock()
}

// reset zeroes the sketch. Callers hold no lock.
func (s *Sketch) reset() {
	s.mu.Lock()
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.n, s.mean, s.m2, s.min, s.max = 0, 0, 0, 0, 0
	s.mu.Unlock()
}

// SketchSnapshot is a point-in-time JSON view of one sketch — also the
// per-signal payload of a persisted DriftBaseline.
type SketchSnapshot struct {
	Count    int64     `json:"count"`
	Mean     float64   `json:"mean"`
	Variance float64   `json:"variance"`
	Min      float64   `json:"min"`
	Max      float64   `json:"max"`
	Bounds   []float64 `json:"bounds"`
	Counts   []int64   `json:"counts"` // len(Bounds)+1; last is +Inf
}

func (s *Sketch) snapshot() SketchSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := SketchSnapshot{
		Count:  s.n,
		Mean:   s.mean,
		Min:    s.min,
		Max:    s.max,
		Bounds: append([]float64(nil), s.bounds...),
		Counts: append([]int64(nil), s.counts...),
	}
	if s.n > 1 {
		snap.Variance = s.m2 / float64(s.n-1)
	}
	return snap
}

// DriftMonitor owns a namespace of drift sketches behind one shared
// enabled flag. Sketches are interned by name, so package-level handles
// can be grabbed at init and hammered from any goroutine.
type DriftMonitor struct {
	enabled atomic.Bool

	mu       sync.Mutex
	sketches map[string]*Sketch
}

// NewDriftMonitor creates a disabled monitor.
func NewDriftMonitor() *DriftMonitor {
	return &DriftMonitor{sketches: make(map[string]*Sketch)}
}

// DefaultDrift is the process-wide drift monitor the matcher reports
// into. Disabled until a baseline-carrying server (or lhmm train's
// baseline collection) enables it.
var DefaultDrift = NewDriftMonitor()

// Enable turns observation recording on.
func (d *DriftMonitor) Enable() { d.enabled.Store(true) }

// Disable turns observation recording off (sketch contents are kept
// until Reset).
func (d *DriftMonitor) Disable() { d.enabled.Store(false) }

// Enabled reports whether the monitor records observations.
func (d *DriftMonitor) Enabled() bool { return d.enabled.Load() }

// Sketch returns the sketch registered under name, creating it with
// the given bucket bounds on first use; later calls with different
// bounds reuse the first registration.
func (d *DriftMonitor) Sketch(name string, bounds []float64) *Sketch {
	d.mu.Lock()
	defer d.mu.Unlock()
	if s, ok := d.sketches[name]; ok {
		return s
	}
	s := &Sketch{
		on:     &d.enabled,
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
	d.sketches[name] = s
	return s
}

// Reset zeroes every registered sketch (handles stay valid).
func (d *DriftMonitor) Reset() {
	d.mu.Lock()
	sketches := make([]*Sketch, 0, len(d.sketches))
	for _, s := range d.sketches {
		sketches = append(sketches, s)
	}
	d.mu.Unlock()
	for _, s := range sketches {
		s.reset()
	}
}

// Snapshot captures every registered sketch.
func (d *DriftMonitor) Snapshot() map[string]SketchSnapshot {
	d.mu.Lock()
	names := make([]string, 0, len(d.sketches))
	for name := range d.sketches {
		names = append(names, name)
	}
	byName := make(map[string]*Sketch, len(d.sketches))
	for name, s := range d.sketches {
		byName[name] = s
	}
	d.mu.Unlock()
	out := make(map[string]SketchSnapshot, len(names))
	for _, name := range names {
		out[name] = byName[name].snapshot()
	}
	return out
}

// DriftBaselineSchema identifies the persisted baseline format.
const DriftBaselineSchema = "lhmm-drift-baseline/v1"

// DriftBaseline is the training-time snapshot of the drift signals,
// written next to the model weights by `lhmm train` and loaded by the
// serving layer for online comparison.
type DriftBaseline struct {
	Schema    string                    `json:"schema"`
	CreatedAt string                    `json:"created_at,omitempty"`
	Model     string                    `json:"model,omitempty"`
	Signals   map[string]SketchSnapshot `json:"signals"`
}

// Baseline freezes the monitor's current sketches as a baseline
// document for the given model path.
func (d *DriftMonitor) Baseline(model string) DriftBaseline {
	return DriftBaseline{
		Schema:    DriftBaselineSchema,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		Model:     model,
		Signals:   d.Snapshot(),
	}
}

// WriteFile persists the baseline as indented JSON.
func (b *DriftBaseline) WriteFile(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal drift baseline: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadDriftBaseline reads and validates a baseline written by
// WriteFile.
func LoadDriftBaseline(path string) (*DriftBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b DriftBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("obs: drift baseline %s: %w", path, err)
	}
	if b.Schema != DriftBaselineSchema {
		return nil, fmt.Errorf("obs: drift baseline %s: schema %q (want %q)", path, b.Schema, DriftBaselineSchema)
	}
	if len(b.Signals) == 0 {
		return nil, fmt.Errorf("obs: drift baseline %s: no signals", path)
	}
	return &b, nil
}

// SignalDrift is one signal's baseline-vs-live comparison.
type SignalDrift struct {
	// PSI is the Population Stability Index between the baseline and
	// live bucket distributions (smoothed). Common operating points:
	// <0.1 stable, 0.1–0.25 moderate shift, >0.25 significant shift.
	PSI float64 `json:"psi"`
	// KL is the Kullback-Leibler divergence D(live ‖ baseline) in nats
	// over the same smoothed buckets.
	KL            float64 `json:"kl"`
	BaselineCount int64   `json:"baseline_count"`
	LiveCount     int64   `json:"live_count"`
	BaselineMean  float64 `json:"baseline_mean"`
	LiveMean      float64 `json:"live_mean"`
}

// DriftComparison is the full baseline-vs-live view: per-signal PSI/KL
// plus the headline maximum (over signals with live observations).
type DriftComparison struct {
	Signals   map[string]SignalDrift `json:"signals"`
	MaxPSI    float64                `json:"max_psi"`
	MaxSignal string                 `json:"max_signal,omitempty"`
}

// Compare computes the drift of the monitor's live sketches against a
// baseline. Signals missing on either side, or with no live
// observations yet, report zero drift (no evidence is not evidence of
// drift).
func (d *DriftMonitor) Compare(base *DriftBaseline) DriftComparison {
	return CompareDrift(base.Signals, d.Snapshot())
}

// CompareDrift computes per-signal PSI/KL between two sketch-snapshot
// sets keyed by signal name (the baseline's keys drive the
// comparison).
func CompareDrift(base, live map[string]SketchSnapshot) DriftComparison {
	cmp := DriftComparison{Signals: make(map[string]SignalDrift, len(base))}
	for name, b := range base {
		l, ok := live[name]
		sd := SignalDrift{
			BaselineCount: b.Count,
			BaselineMean:  b.Mean,
		}
		if ok {
			sd.LiveCount = l.Count
			sd.LiveMean = l.Mean
			if b.Count > 0 && l.Count > 0 && len(b.Counts) == len(l.Counts) {
				sd.PSI, sd.KL = psiKL(b.Counts, l.Counts)
			}
		}
		cmp.Signals[name] = sd
		if sd.LiveCount > 0 && sd.PSI > cmp.MaxPSI {
			cmp.MaxPSI, cmp.MaxSignal = sd.PSI, name
		}
	}
	return cmp
}

// psiKL computes PSI and KL divergence between two bucket-count
// vectors of equal length. Laplace smoothing (ε=0.5 per bucket) keeps
// empty buckets from producing infinities:
//
//	PSI = Σ (qᵢ-pᵢ)·ln(qᵢ/pᵢ)   KL = Σ qᵢ·ln(qᵢ/pᵢ)
//
// with p the baseline and q the live distribution.
func psiKL(base, live []int64) (psi, kl float64) {
	const eps = 0.5
	var nb, nl int64
	for i := range base {
		nb += base[i]
		nl += live[i]
	}
	if nb == 0 || nl == 0 {
		return 0, 0
	}
	k := float64(len(base))
	for i := range base {
		p := (float64(base[i]) + eps) / (float64(nb) + eps*k)
		q := (float64(live[i]) + eps) / (float64(nl) + eps*k)
		lr := math.Log(q / p)
		psi += (q - p) * lr
		kl += q * lr
	}
	return psi, kl
}
