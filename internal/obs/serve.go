package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

var publishOnce sync.Once

// PromHandler serves the Default registry in the Prometheus text
// exposition format. Shared by the debug server and lhmm-serve.
func PromHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", PromContentType)
	Default.WritePrometheus(w) //nolint:errcheck // best-effort scrape endpoint
}

// SnapshotHandler serves the Default registry snapshot as indented
// JSON — the pre-Prometheus format, kept for compatibility.
func SnapshotHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(Default.Snapshot()) //nolint:errcheck // best-effort debug endpoint
}

// Serve starts a debug HTTP server on addr exposing:
//
//	/debug/pprof/*  — net/http/pprof profiling endpoints
//	/debug/vars     — expvar, including the Default registry under "obs"
//	/metrics        — the Default registry in Prometheus text format
//	/metrics.json   — the Default registry snapshot as JSON (legacy)
//
// It enables the Default registry (metrics that nobody records are
// useless to serve) and returns the bound address plus a stop function.
func Serve(addr string) (string, func() error, error) {
	publishOnce.Do(func() {
		expvar.Publish("obs", expvar.Func(func() any { return Default.Snapshot() }))
	})
	Default.Enable()

	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", PromHandler)
	mux.HandleFunc("/metrics.json", SnapshotHandler)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: debug listener: %w", err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // Shutdown returns the real error
	stop := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
	return ln.Addr().String(), stop, nil
}
