package obs

// Bucket-interpolated quantile estimation, Prometheus
// histogram_quantile semantics: find the bucket holding the rank'th
// observation and interpolate linearly inside it, assuming uniform
// spread. The estimate's resolution is bounded by the bucket layout —
// good enough for p50/p95/p99 SLO lines, not for exact percentiles.

// bucketQuantile estimates the q-quantile (q in [0,1]) from per-bucket
// counts. counts has len(bounds)+1 entries, the last being the +Inf
// overflow. Returns 0 with no observations. A rank landing in the
// overflow bucket returns the highest finite bound (there is no upper
// edge to interpolate toward), matching Prometheus.
func bucketQuantile(bounds []float64, counts []int64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(bounds) {
			// Overflow bucket: clamp to the largest finite bound.
			if len(bounds) == 0 {
				return 0
			}
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		if c == 0 {
			return hi
		}
		inBucket := rank - float64(cum-c)
		return lo + (hi-lo)*(inBucket/float64(c))
	}
	return bounds[len(bounds)-1]
}

// BucketQuantile is the exported form of bucketQuantile for consumers
// that keep their own bucket counts over a shared bound layout (the
// shadow-scoring latency report).
func BucketQuantile(bounds []float64, counts []int64, q float64) float64 {
	return bucketQuantile(bounds, counts, q)
}

// Quantile estimates the q-quantile of the observed distribution by
// linear interpolation within the bucket holding that rank. Safe on a
// nil histogram (returns 0).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bucketQuantile(h.bounds, counts, q)
}

// Quantile estimates the q-quantile from a snapshot's bucket counts.
func (hs HistogramSnapshot) Quantile(q float64) float64 {
	return bucketQuantile(hs.Bounds, hs.Buckets, q)
}
