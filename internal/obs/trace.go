package obs

import "time"

// MatchTrace is the per-trajectory diagnostic record the batch matcher
// fills when tracing is requested: per-point candidate and score
// statistics, Viterbi break-and-recover events, shortcut activity, and
// wall-clock per pipeline stage. It is built single-threaded inside one
// Match call and is safe to read once returned.
type MatchTrace struct {
	// Points holds one record per trajectory point.
	Points []PointTrace `json:"points"`
	// Breaks lists the point indices where the Viterbi chain broke —
	// every candidate of the layer was unreachable from the previous
	// layer and scoring restarted (the recover half of the event).
	Breaks []int `json:"breaks,omitempty"`
	// ShortcutAttempts counts candidate pairs Algorithm 2 examined;
	// ShortcutAdoptions how many improved the table.
	ShortcutAttempts  int `json:"shortcut_attempts"`
	ShortcutAdoptions int `json:"shortcut_adoptions"`
	// Stages records wall-clock seconds per pipeline stage.
	Stages StageTimings `json:"stages"`
}

// PointTrace is the per-point slice of a MatchTrace.
type PointTrace struct {
	// Candidates is the prepared candidate-set size (before shortcut
	// pseudo-candidates).
	Candidates int `json:"candidates"`
	// BestObs and MeanObs summarize the emission scores of the set.
	BestObs float64 `json:"best_obs"`
	MeanObs float64 `json:"mean_obs"`
	// TransEvaluated counts transition-model calls into this point;
	// TransReachable how many returned a feasible movement.
	TransEvaluated int `json:"trans_evaluated"`
	TransReachable int `json:"trans_reachable"`
	// Restarts counts candidates of this point whose predecessors were
	// all unreachable (partial breaks).
	Restarts int `json:"restarts,omitempty"`
	// Skipped marks points the shortcut optimization bypassed.
	Skipped bool `json:"skipped,omitempty"`
}

// StageTimings is wall-clock seconds per matching stage. TransitionS
// is the transition-fill portion of ViterbiS (nested, not additive
// with it); the other stages partition TotalS.
type StageTimings struct {
	CandidatesS float64 `json:"candidates_s"`
	ViterbiS    float64 `json:"viterbi_s"`
	TransitionS float64 `json:"transition_s"`
	ShortcutsS  float64 `json:"shortcuts_s"`
	BacktrackS  float64 `json:"backtrack_s"`
	ExpandS     float64 `json:"expand_s"`
	TotalS      float64 `json:"total_s"`
}

// NewMatchTrace allocates a trace for an n-point trajectory.
func NewMatchTrace(n int) *MatchTrace {
	return &MatchTrace{Points: make([]PointTrace, n)}
}

// AddBreak records a full Viterbi break at point i.
func (t *MatchTrace) AddBreak(i int) {
	if t == nil {
		return
	}
	t.Breaks = append(t.Breaks, i)
}

// TotalCandidates sums the per-point candidate-set sizes.
func (t *MatchTrace) TotalCandidates() int {
	if t == nil {
		return 0
	}
	var n int
	for i := range t.Points {
		n += t.Points[i].Candidates
	}
	return n
}

// SkippedPoints counts points the shortcut optimization bypassed.
func (t *MatchTrace) SkippedPoints() int {
	if t == nil {
		return 0
	}
	var n int
	for i := range t.Points {
		if t.Points[i].Skipped {
			n++
		}
	}
	return n
}

// StageTimer measures one stage into a StageTimings field. Usage:
//
//	done := obs.Stage(&trace.Stages.ViterbiS)
//	... stage work ...
//	done()
//
// A nil target yields a no-op timer, so untraced calls skip the clock
// reads entirely.
func Stage(target *float64) func() {
	if target == nil {
		return func() {}
	}
	start := time.Now()
	return func() { *target += time.Since(start).Seconds() }
}
