package obs

import (
	"log/slog"
	"sync"
	"time"
)

// Online quality/SLO monitoring. The matcher's quality signals —
// degraded-mode fallbacks, gaps/breaks, empty-candidate failures, load
// shedding, and tail latency — are exactly the "is the learned model
// still beating the classical one" telemetry a deployed map-matcher
// needs (cf. LHMM §IV-C/D: the learned probabilities are the value
// claim; when they go non-finite we fall back to Eq. 2/3 and the
// degraded rate is the drift alarm). QualityMonitor keeps a sliding
// window of those signals as a ring of time slots and compares
// windowed rates against configured SLO thresholds.

// QualityConfig configures the sliding window and the SLO thresholds.
// A zero threshold disables that check.
type QualityConfig struct {
	// Window is the sliding-window length (default 60s) split into
	// Slots ring slots (default 6); expired slots are recycled lazily.
	Window time.Duration
	Slots  int

	// MinSamples gates threshold evaluation: with fewer matches in the
	// window than this, the monitor always reports ok (default 10) so
	// a single early failure can't flip readiness detail.
	MinSamples int

	// Rates are fractions in [0,1]. Degraded and gap rates are per
	// completed match; empty-candidate and shed rates are per request.
	MaxDegradedRate float64
	MaxGapRate      float64
	MaxEmptyRate    float64
	MaxShedRate     float64

	// MaxP99 bounds the windowed p99 match latency (0 disables).
	MaxP99 time.Duration

	// MaxDriftPSI bounds the maximum per-signal PSI of the learned
	// score distributions against their training-time baseline (0
	// disables). The value is supplied by DriftProbe.
	MaxDriftPSI float64
	// DriftProbe, when set with MaxDriftPSI > 0, supplies the current
	// max PSI on every evaluation (the serving layer wires a cached
	// DriftMonitor comparison). It is called with the monitor lock
	// held, so it must be cheap and must not call back into the
	// monitor.
	DriftProbe func() float64

	// MinShadowAgreement bounds the shadow candidate's per-point
	// agreement rate from below (0 disables). A candidate disagreeing
	// with the active model on live traffic is a quality detail worth
	// surfacing in /readyz, not unreadiness — the active model is still
	// the one answering.
	MinShadowAgreement float64
	// ShadowProbe, when set with MinShadowAgreement > 0, supplies the
	// current shadow agreement rate on every evaluation. Like
	// DriftProbe it is called with the monitor lock held, so it must be
	// cheap and must not call back into the monitor (the serving layer
	// wires a TTL-cached read).
	ShadowProbe func() float64

	// OnTransition, when set, is called (outside the monitor lock)
	// whenever the degraded status flips, with the new status and the
	// violated thresholds.
	OnTransition func(degraded bool, violations []string)

	// now overrides the clock in tests.
	now func() time.Time
}

func (c QualityConfig) withDefaults() QualityConfig {
	if c.Window <= 0 {
		c.Window = 60 * time.Second
	}
	if c.Slots <= 0 {
		c.Slots = 6
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 10
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// qSlot is one time slice of the sliding window.
type qSlot struct {
	start    time.Time
	requests int64
	matches  int64
	degraded int64
	gapped   int64
	empty    int64
	shed     int64
	latency  []int64 // per-LatencyBuckets counts, len(bounds)+1
	latSum   float64
}

// QualityMonitor tracks windowed quality rates against SLO thresholds.
// Safe for concurrent use. The zero value is not usable; call
// NewQualityMonitor.
type QualityMonitor struct {
	cfg     QualityConfig
	slotDur time.Duration

	mu       sync.Mutex
	slots    []qSlot
	degraded bool
}

// NewQualityMonitor creates a monitor with the given config (zero
// fields take documented defaults).
func NewQualityMonitor(cfg QualityConfig) *QualityMonitor {
	cfg = cfg.withDefaults()
	m := &QualityMonitor{
		cfg:     cfg,
		slotDur: cfg.Window / time.Duration(cfg.Slots),
		slots:   make([]qSlot, cfg.Slots),
	}
	for i := range m.slots {
		m.slots[i].latency = make([]int64, len(LatencyBuckets)+1)
	}
	return m
}

// slot returns the ring slot for now, recycling it if its epoch has
// passed. Callers hold mu.
func (m *QualityMonitor) slot(now time.Time) *qSlot {
	epoch := now.Truncate(m.slotDur)
	s := &m.slots[(epoch.UnixNano()/int64(m.slotDur))%int64(len(m.slots))]
	if !s.start.Equal(epoch) {
		*s = qSlot{start: epoch, latency: s.latency}
		for i := range s.latency {
			s.latency[i] = 0
		}
	}
	return s
}

// RecordMatch records one completed match: its latency and whether it
// ran degraded (any learned-score fallback) or gapped (breaks in the
// recovered path).
func (m *QualityMonitor) RecordMatch(d time.Duration, degraded, gapped bool) {
	if m == nil {
		return
	}
	now := m.cfg.now()
	m.mu.Lock()
	s := m.slot(now)
	s.requests++
	s.matches++
	if degraded {
		s.degraded++
	}
	if gapped {
		s.gapped++
	}
	v := d.Seconds()
	i := 0
	for i < len(LatencyBuckets) && v > LatencyBuckets[i] {
		i++
	}
	s.latency[i]++
	s.latSum += v
	m.evaluateLocked(now)
	m.mu.Unlock()
}

// RecordEmpty records a request that failed because no candidates
// survived for some point.
func (m *QualityMonitor) RecordEmpty() { m.record(func(s *qSlot) { s.requests++; s.empty++ }) }

// RecordShed records a request shed by admission control.
func (m *QualityMonitor) RecordShed() { m.record(func(s *qSlot) { s.requests++; s.shed++ }) }

// RecordError records a request that failed for any other reason; it
// counts toward the request denominator only.
func (m *QualityMonitor) RecordError() { m.record(func(s *qSlot) { s.requests++ }) }

func (m *QualityMonitor) record(f func(*qSlot)) {
	if m == nil {
		return
	}
	now := m.cfg.now()
	m.mu.Lock()
	f(m.slot(now))
	m.evaluateLocked(now)
	m.mu.Unlock()
}

// windowTotals sums live slots. Callers hold mu.
func (m *QualityMonitor) windowTotals(now time.Time) qSlot {
	var t qSlot
	t.latency = make([]int64, len(LatencyBuckets)+1)
	cutoff := now.Add(-m.cfg.Window)
	for i := range m.slots {
		s := &m.slots[i]
		if s.start.IsZero() || !s.start.After(cutoff) {
			continue
		}
		t.requests += s.requests
		t.matches += s.matches
		t.degraded += s.degraded
		t.gapped += s.gapped
		t.empty += s.empty
		t.shed += s.shed
		t.latSum += s.latSum
		for j, c := range s.latency {
			t.latency[j] += c
		}
	}
	return t
}

func rate(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// violations computes the list of violated thresholds. Callers hold mu.
func (m *QualityMonitor) violationsLocked(t qSlot) []string {
	if t.matches < int64(m.cfg.MinSamples) {
		return nil
	}
	var v []string
	if m.cfg.MaxDegradedRate > 0 && rate(t.degraded, t.matches) > m.cfg.MaxDegradedRate {
		v = append(v, "degraded_rate")
	}
	if m.cfg.MaxGapRate > 0 && rate(t.gapped, t.matches) > m.cfg.MaxGapRate {
		v = append(v, "gap_rate")
	}
	if m.cfg.MaxEmptyRate > 0 && rate(t.empty, t.requests) > m.cfg.MaxEmptyRate {
		v = append(v, "empty_rate")
	}
	if m.cfg.MaxShedRate > 0 && rate(t.shed, t.requests) > m.cfg.MaxShedRate {
		v = append(v, "shed_rate")
	}
	if m.cfg.MaxP99 > 0 && bucketQuantile(LatencyBuckets, t.latency, 0.99) > m.cfg.MaxP99.Seconds() {
		v = append(v, "p99_latency")
	}
	if m.cfg.MaxDriftPSI > 0 && m.cfg.DriftProbe != nil && m.cfg.DriftProbe() > m.cfg.MaxDriftPSI {
		v = append(v, "score_drift")
	}
	if m.cfg.MinShadowAgreement > 0 && m.cfg.ShadowProbe != nil && m.cfg.ShadowProbe() < m.cfg.MinShadowAgreement {
		v = append(v, "shadow_divergence")
	}
	return v
}

// evaluateLocked re-checks thresholds against the current window and
// fires the transition log + callback on a status flip. Callers hold
// mu; the lock is released around the log/callback so user callbacks
// cannot deadlock against the monitor.
func (m *QualityMonitor) evaluateLocked(now time.Time) {
	t := m.windowTotals(now)
	viol := m.violationsLocked(t)
	degraded := len(viol) > 0
	if degraded == m.degraded {
		return
	}
	m.degraded = degraded
	cb := m.cfg.OnTransition
	m.mu.Unlock()
	if degraded {
		Logger().Warn("quality degraded", slog.Any("violations", viol),
			slog.Float64("degraded_rate", rate(t.degraded, t.matches)),
			slog.Float64("gap_rate", rate(t.gapped, t.matches)),
			slog.Float64("empty_rate", rate(t.empty, t.requests)),
			slog.Float64("shed_rate", rate(t.shed, t.requests)),
			slog.Float64("p99_s", bucketQuantile(LatencyBuckets, t.latency, 0.99)))
	} else {
		Logger().Info("quality recovered")
	}
	if cb != nil {
		cb(degraded, viol)
	}
	m.mu.Lock()
}

// Degraded reports whether any SLO threshold is currently violated.
// It re-evaluates the window, so a quiet period (slots expiring with
// no traffic) recovers without needing new requests.
func (m *QualityMonitor) Degraded() bool {
	if m == nil {
		return false
	}
	now := m.cfg.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evaluateLocked(now)
	return m.degraded
}

// QualityReport is the JSON shape served at /v1/quality.
type QualityReport struct {
	WindowS      float64 `json:"window_s"`
	Requests     int64   `json:"requests"`
	Matches      int64   `json:"matches"`
	DegradedRate float64 `json:"degraded_rate"`
	GapRate      float64 `json:"gap_rate"`
	EmptyRate    float64 `json:"empty_rate"`
	ShedRate     float64 `json:"shed_rate"`
	P50S         float64 `json:"p50_s"`
	P95S         float64 `json:"p95_s"`
	P99S         float64 `json:"p99_s"`
	// DriftPSI is the current max per-signal score-drift PSI, present
	// only when a DriftProbe is configured.
	DriftPSI float64 `json:"drift_psi,omitempty"`
	// ShadowAgreement is the shadow candidate's current per-point
	// agreement rate, present only when a ShadowProbe is configured.
	ShadowAgreement float64  `json:"shadow_agreement,omitempty"`
	Status          string   `json:"status"` // "ok" | "degraded"
	Violations      []string `json:"violations,omitempty"`

	Thresholds QualityThresholds `json:"thresholds"`
}

// QualityThresholds echoes the configured SLOs in the report.
type QualityThresholds struct {
	MaxDegradedRate float64 `json:"max_degraded_rate,omitempty"`
	MaxGapRate      float64 `json:"max_gap_rate,omitempty"`
	MaxEmptyRate    float64 `json:"max_empty_rate,omitempty"`
	MaxShedRate     float64 `json:"max_shed_rate,omitempty"`
	MaxP99S         float64 `json:"max_p99_s,omitempty"`
	MaxDriftPSI     float64 `json:"max_drift_psi,omitempty"`
	// MinShadowAgreement is the shadow_divergence floor (0 = disabled).
	MinShadowAgreement float64 `json:"min_shadow_agreement,omitempty"`
	MinSamples         int     `json:"min_samples"`
}

// Report captures the windowed rates and status.
func (m *QualityMonitor) Report() QualityReport {
	if m == nil {
		return QualityReport{Status: "ok"}
	}
	now := m.cfg.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evaluateLocked(now)
	t := m.windowTotals(now)
	viol := m.violationsLocked(t)
	r := QualityReport{
		WindowS:      m.cfg.Window.Seconds(),
		Requests:     t.requests,
		Matches:      t.matches,
		DegradedRate: rate(t.degraded, t.matches),
		GapRate:      rate(t.gapped, t.matches),
		EmptyRate:    rate(t.empty, t.requests),
		ShedRate:     rate(t.shed, t.requests),
		P50S:         bucketQuantile(LatencyBuckets, t.latency, 0.50),
		P95S:         bucketQuantile(LatencyBuckets, t.latency, 0.95),
		P99S:         bucketQuantile(LatencyBuckets, t.latency, 0.99),
		Status:       "ok",
		Violations:   viol,
		Thresholds: QualityThresholds{
			MaxDegradedRate:    m.cfg.MaxDegradedRate,
			MaxGapRate:         m.cfg.MaxGapRate,
			MaxEmptyRate:       m.cfg.MaxEmptyRate,
			MaxShedRate:        m.cfg.MaxShedRate,
			MaxP99S:            m.cfg.MaxP99.Seconds(),
			MaxDriftPSI:        m.cfg.MaxDriftPSI,
			MinShadowAgreement: m.cfg.MinShadowAgreement,
			MinSamples:         m.cfg.MinSamples,
		},
	}
	if m.cfg.DriftProbe != nil {
		r.DriftPSI = m.cfg.DriftProbe()
	}
	if m.cfg.ShadowProbe != nil {
		r.ShadowAgreement = m.cfg.ShadowProbe()
	}
	if m.degraded {
		r.Status = "degraded"
	}
	return r
}

// P99 returns the windowed p99 match latency in seconds.
func (m *QualityMonitor) P99() float64 {
	if m == nil {
		return 0
	}
	now := m.cfg.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.windowTotals(now)
	return bucketQuantile(LatencyBuckets, t.latency, 0.99)
}
