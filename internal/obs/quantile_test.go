package obs

import (
	"math"
	"testing"
)

func TestBucketQuantile(t *testing.T) {
	bounds := []float64{1, 2, 4}
	// 10 obs <=1, 10 in (1,2], 10 in (2,4], none overflow.
	counts := []int64{10, 10, 10, 0}
	cases := []struct {
		q, want float64
	}{
		{0, 0},     // rank 0: bottom edge of the first bucket
		{0.5, 1.5}, // rank 15: 5 of 10 into (1,2]
		{1, 4},     // last observation: top of (2,4]
	}
	for _, c := range cases {
		got := bucketQuantile(bounds, counts, c.q)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("q=%g: got %g, want %g", c.q, got, c.want)
		}
	}
}

func TestBucketQuantileOverflowClamps(t *testing.T) {
	bounds := []float64{1, 2}
	counts := []int64{0, 0, 5} // everything above the last finite bound
	if got := bucketQuantile(bounds, counts, 0.99); got != 2 {
		t.Errorf("overflow quantile = %g, want clamp to last finite bound 2", got)
	}
}

func TestBucketQuantileEmpty(t *testing.T) {
	if got := bucketQuantile([]float64{1}, []int64{0, 0}, 0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
}

// A one-bound layout still interpolates inside its single finite
// bucket rather than degenerating to 0 or the bound.
func TestHistogramQuantileSingleBucket(t *testing.T) {
	r := New()
	r.Enable()
	h := r.Histogram("q.single.seconds", []float64{2})
	for i := 0; i < 10; i++ {
		h.Observe(1)
	}
	if got := h.Quantile(0.5); math.Abs(got-1) > 1e-9 {
		t.Errorf("single-bucket p50 = %g, want 1 (midpoint of [0,2])", got)
	}
	if got := h.Quantile(1); got != 2 {
		t.Errorf("single-bucket p100 = %g, want bucket edge 2", got)
	}
}

// Observations entirely above the last finite bound land in the +Inf
// overflow bucket; every quantile clamps to the last finite bound.
func TestHistogramQuantileAllOverflow(t *testing.T) {
	r := New()
	r.Enable()
	h := r.Histogram("q.over.seconds", []float64{0.1, 1})
	for i := 0; i < 10; i++ {
		h.Observe(50)
	}
	for _, q := range []float64{0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 1 {
			t.Errorf("all-overflow q=%g: got %g, want clamp to 1", q, got)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := New()
	r.Enable()
	h := r.Histogram("q.test.seconds", []float64{0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		h.Observe(0.005) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5) // third bucket
	}
	if p50 := h.Quantile(0.5); p50 > 0.01 {
		t.Errorf("p50 = %g, want within first bucket (<=0.01)", p50)
	}
	p95 := h.Quantile(0.95)
	if p95 <= 0.1 || p95 > 1 {
		t.Errorf("p95 = %g, want inside (0.1, 1]", p95)
	}
	// The snapshot carries the same quantiles.
	snap := r.Snapshot()
	hs := snap.Histograms["q.test.seconds"]
	if hs.P50 != h.Quantile(0.5) || hs.P95 != h.Quantile(0.95) || hs.P99 != h.Quantile(0.99) {
		t.Errorf("snapshot quantiles %v/%v/%v disagree with histogram", hs.P50, hs.P95, hs.P99)
	}
}
