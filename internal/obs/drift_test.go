package obs

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestSketchWelfordAndBuckets(t *testing.T) {
	d := NewDriftMonitor()
	d.Enable()
	s := d.Sketch("w", []float64{0.25, 0.5, 0.75})
	vals := []float64{0.1, 0.3, 0.3, 0.6, 0.9, 1.5}
	for _, v := range vals {
		s.Observe(v)
	}
	snap := d.Snapshot()["w"]
	if snap.Count != int64(len(vals)) {
		t.Fatalf("count = %d, want %d", snap.Count, len(vals))
	}
	var sum, sq float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / float64(len(vals))
	for _, v := range vals {
		sq += (v - mean) * (v - mean)
	}
	variance := sq / float64(len(vals)-1)
	if math.Abs(snap.Mean-mean) > 1e-12 {
		t.Errorf("mean = %g, want %g", snap.Mean, mean)
	}
	if math.Abs(snap.Variance-variance) > 1e-12 {
		t.Errorf("variance = %g, want %g", snap.Variance, variance)
	}
	if snap.Min != 0.1 || snap.Max != 1.5 {
		t.Errorf("min/max = %g/%g, want 0.1/1.5", snap.Min, snap.Max)
	}
	// Buckets: (-inf,0.25]=1, (0.25,0.5]=2, (0.5,0.75]=1, overflow=2.
	want := []int64{1, 2, 1, 2}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (%v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
}

func TestSketchSkipsNonFinite(t *testing.T) {
	d := NewDriftMonitor()
	d.Enable()
	s := d.Sketch("nf", UnitBuckets)
	s.Observe(math.NaN())
	s.Observe(math.Inf(1))
	s.Observe(math.Inf(-1))
	s.Observe(0.5)
	if got := d.Snapshot()["nf"].Count; got != 1 {
		t.Fatalf("count = %d, want 1 (non-finite values must be skipped)", got)
	}
}

func TestDriftDisabledAllocs(t *testing.T) {
	d := NewDriftMonitor()
	s := d.Sketch("off", UnitBuckets)
	s.Observe(0.5)
	if got := d.Snapshot()["off"].Count; got != 0 {
		t.Fatalf("disabled sketch recorded %d observations", got)
	}
	if allocs := testing.AllocsPerRun(1000, func() { s.Observe(0.5) }); allocs != 0 {
		t.Errorf("disabled Observe allocates %.1f/op, want 0", allocs)
	}
	d.Enable()
	if allocs := testing.AllocsPerRun(1000, func() { s.Observe(0.5) }); allocs != 0 {
		t.Errorf("enabled Observe allocates %.1f/op, want 0", allocs)
	}
}

func TestSketchInterned(t *testing.T) {
	d := NewDriftMonitor()
	a := d.Sketch("same", UnitBuckets)
	b := d.Sketch("same", CountBuckets) // later bounds ignored
	if a != b {
		t.Fatal("same name returned different sketches")
	}
}

func TestDriftMonitorReset(t *testing.T) {
	d := NewDriftMonitor()
	d.Enable()
	s := d.Sketch("r", UnitBuckets)
	s.Observe(0.4)
	d.Reset()
	if got := d.Snapshot()["r"].Count; got != 0 {
		t.Fatalf("count after reset = %d, want 0", got)
	}
}

// Identical live and baseline distributions must compare to zero drift;
// a shifted distribution must show strictly positive PSI and KL, and a
// larger shift must dominate a smaller one.
func TestPSIShiftMonotone(t *testing.T) {
	mk := func(shift float64) *DriftMonitor {
		d := NewDriftMonitor()
		d.Enable()
		s := d.Sketch("sig", UnitBuckets)
		for i := 0; i < 500; i++ {
			v := float64(i%100)/100 + shift
			if v > 1 {
				v = 1
			}
			s.Observe(v)
		}
		return d
	}
	base := mk(0).Baseline("m")
	same := mk(0).Compare(&base)
	if same.MaxPSI > 1e-9 {
		t.Errorf("identical distributions PSI = %g, want ~0", same.MaxPSI)
	}
	small := mk(0.1).Compare(&base)
	big := mk(0.4).Compare(&base)
	if small.Signals["sig"].PSI <= 0 || big.Signals["sig"].PSI <= 0 {
		t.Fatalf("shifted PSI not positive: small %g big %g",
			small.Signals["sig"].PSI, big.Signals["sig"].PSI)
	}
	if big.Signals["sig"].PSI <= small.Signals["sig"].PSI {
		t.Errorf("PSI not monotone in shift: small %g, big %g",
			small.Signals["sig"].PSI, big.Signals["sig"].PSI)
	}
	if small.Signals["sig"].KL <= 0 {
		t.Errorf("shifted KL = %g, want > 0", small.Signals["sig"].KL)
	}
}

// The smoothing must keep PSI finite even when live mass lands entirely
// in buckets the baseline never saw.
func TestPSIDisjointSupportFinite(t *testing.T) {
	d1 := NewDriftMonitor()
	d1.Enable()
	s1 := d1.Sketch("sig", UnitBuckets)
	for i := 0; i < 100; i++ {
		s1.Observe(0.05)
	}
	base := d1.Baseline("m")
	d2 := NewDriftMonitor()
	d2.Enable()
	s2 := d2.Sketch("sig", UnitBuckets)
	for i := 0; i < 100; i++ {
		s2.Observe(0.95)
	}
	cmp := d2.Compare(&base)
	psi := cmp.Signals["sig"].PSI
	if math.IsNaN(psi) || math.IsInf(psi, 0) {
		t.Fatalf("disjoint-support PSI = %g, want finite", psi)
	}
	if psi < 1 {
		t.Errorf("disjoint-support PSI = %g, want large (> 1)", psi)
	}
}

func TestCompareDriftEdgeCases(t *testing.T) {
	d := NewDriftMonitor()
	d.Enable()
	s := d.Sketch("sig", UnitBuckets)
	for i := 0; i < 50; i++ {
		s.Observe(0.5)
	}
	base := d.Baseline("m")

	// No live observations: the signal reports zero drift and is
	// excluded from MaxPSI (an idle server has no drift).
	idle := NewDriftMonitor()
	idle.Enable()
	idle.Sketch("sig", UnitBuckets)
	cmp := idle.Compare(&base)
	if sd := cmp.Signals["sig"]; sd.PSI != 0 || sd.LiveCount != 0 {
		t.Errorf("idle signal drift = %+v, want zero", sd)
	}
	if cmp.MaxPSI != 0 || cmp.MaxSignal != "" {
		t.Errorf("idle MaxPSI/MaxSignal = %g/%q, want 0/empty", cmp.MaxPSI, cmp.MaxSignal)
	}

	// Mismatched bucket layouts cannot be compared; zero drift, not a
	// panic or a spurious violation.
	other := NewDriftMonitor()
	other.Enable()
	o := other.Sketch("sig", []float64{1, 2, 3})
	o.Observe(1.5)
	cmp = other.Compare(&base)
	if sd := cmp.Signals["sig"]; sd.PSI != 0 {
		t.Errorf("mismatched-bounds PSI = %g, want 0", sd.PSI)
	}
}

func TestDriftBaselineRoundTrip(t *testing.T) {
	d := NewDriftMonitor()
	d.Enable()
	s := d.Sketch("sig", UnitBuckets)
	for i := 0; i < 20; i++ {
		s.Observe(float64(i) / 20)
	}
	base := d.Baseline("model.json")
	path := filepath.Join(t.TempDir(), "base.json")
	if err := base.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDriftBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != DriftBaselineSchema || got.Model != "model.json" {
		t.Errorf("schema/model = %q/%q", got.Schema, got.Model)
	}
	if got.Signals["sig"].Count != 20 {
		t.Errorf("round-tripped count = %d, want 20", got.Signals["sig"].Count)
	}
	// Self-comparison through the file is still zero drift.
	if cmp := d.Compare(got); cmp.MaxPSI > 1e-9 {
		t.Errorf("self-comparison PSI = %g, want ~0", cmp.MaxPSI)
	}
}

func TestLoadDriftBaselineRejectsBadSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	base := DriftBaseline{Schema: "nonsense/v9", Signals: map[string]SketchSnapshot{"x": {}}}
	if err := base.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDriftBaseline(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("bad schema load error = %v, want schema complaint", err)
	}
}

// A drift probe above the threshold must surface as a score_drift
// violation and flip the monitor, and the report must carry the PSI.
func TestQualityDriftViolation(t *testing.T) {
	clk := newQMClock()
	psi := 0.0
	var lastViol []string
	m := NewQualityMonitor(QualityConfig{
		Window:      10 * time.Second,
		MinSamples:  1,
		MaxDriftPSI: 0.25,
		DriftProbe:  func() float64 { return psi },
		OnTransition: func(degraded bool, viol []string) {
			lastViol = append([]string(nil), viol...)
		},
		now: clk.now,
	})
	m.RecordMatch(time.Millisecond, false, false)
	if m.Degraded() {
		t.Fatal("degraded with PSI below threshold")
	}
	psi = 0.9
	m.RecordMatch(time.Millisecond, false, false)
	if !m.Degraded() {
		t.Fatal("not degraded with PSI 0.9 vs threshold 0.25")
	}
	found := false
	for _, v := range lastViol {
		if v == "score_drift" {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations = %v, want score_drift", lastViol)
	}
	rep := m.Report()
	if rep.DriftPSI != 0.9 {
		t.Errorf("report DriftPSI = %g, want 0.9", rep.DriftPSI)
	}
	if rep.Thresholds.MaxDriftPSI != 0.25 {
		t.Errorf("report threshold = %g, want 0.25", rep.Thresholds.MaxDriftPSI)
	}
}

// OnTransition must fire exactly once per state change, not once per
// evaluation while the state persists.
func TestQualityCallbackOncePerTransition(t *testing.T) {
	clk := newQMClock()
	calls := 0
	m := NewQualityMonitor(QualityConfig{
		Window:          10 * time.Second,
		MinSamples:      1,
		MaxDegradedRate: 0.5,
		OnTransition:    func(bool, []string) { calls++ },
		now:             clk.now,
	})
	// Drive hard into degraded and stay there across many evaluations.
	for i := 0; i < 20; i++ {
		m.RecordMatch(time.Millisecond, true, false)
	}
	if !m.Degraded() {
		t.Fatal("not degraded at 100% degraded rate")
	}
	if calls != 1 {
		t.Fatalf("OnTransition fired %d times entering degraded, want exactly 1", calls)
	}
	// Recover (quiet window) and re-degrade: exactly two more firings.
	clk.advance(11 * time.Second)
	if m.Degraded() {
		t.Fatal("still degraded after window expiry")
	}
	if calls != 2 {
		t.Fatalf("OnTransition fired %d times after recovery, want 2", calls)
	}
	for i := 0; i < 20; i++ {
		m.RecordMatch(time.Millisecond, true, false)
	}
	if calls != 3 {
		t.Fatalf("OnTransition fired %d times after re-degrading, want 3", calls)
	}
}
