package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span tracing: a request-scoped span tree with W3C traceparent
// interop and JSONL export. Spans follow the same zero-cost-when-off
// discipline as the instruments: SpanFromContext on a context without
// a span returns nil, and every method is nil-safe, so an untraced
// request pays one context lookup per match and nothing else
// (TestSpanDisabledFastPathAllocs pins it at 0 allocs).
//
// A Span is built and ended on one goroutine (the request or match
// goroutine); only the root's record sink is mutex-guarded, so stage
// spans emitted from a match can interleave with sibling requests
// safely. Ending the root exports the whole tree to the Tracer's JSONL
// sink, one span per line.

// Tracer owns the sampling decision and the JSONL export sink. The
// zero value is disabled; SetOutput enables it.
type Tracer struct {
	enabled atomic.Bool
	sample  atomic.Uint64 // float64 bits of the sampling probability

	mu sync.Mutex
	w  io.Writer
}

// DefaultTracer is the process-wide tracer the serving stack and CLIs
// export through; disabled until SetOutput routes it somewhere.
var DefaultTracer = NewTracer()

// NewTracer returns a disabled tracer sampling at probability 1.
func NewTracer() *Tracer {
	t := &Tracer{}
	t.sample.Store(math.Float64bits(1))
	return t
}

// SetOutput routes exported spans to w as JSONL and enables the
// tracer; a nil w disables it. The caller retains ownership of w
// (Close it after the tracer is disabled or the process exits).
func (t *Tracer) SetOutput(w io.Writer) {
	t.mu.Lock()
	t.w = w
	t.mu.Unlock()
	t.enabled.Store(w != nil)
}

// SetSample sets the probabilistic sampling rate in [0, 1]; requests
// that arrive without an upstream sampled traceparent are traced with
// this probability.
func (t *Tracer) SetSample(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	t.sample.Store(math.Float64bits(p))
}

// Sample returns the current sampling probability.
func (t *Tracer) Sample() float64 { return math.Float64frombits(t.sample.Load()) }

// Enabled reports whether the tracer has an export sink.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// ShouldSample draws one sampling decision: false when disabled,
// always true at rate 1, otherwise a pseudo-random draw.
func (t *Tracer) ShouldSample() bool {
	if !t.Enabled() {
		return false
	}
	p := t.Sample()
	if p >= 1 {
		return true
	}
	if p <= 0 {
		return false
	}
	return randFloat() < p
}

// export writes one trace's span records as JSONL, one span per line.
func (t *Tracer) export(recs []SpanRecord) {
	if !t.Enabled() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.w == nil {
		return
	}
	enc := json.NewEncoder(t.w)
	for i := range recs {
		enc.Encode(&recs[i]) //nolint:errcheck // best-effort telemetry sink
	}
}

// SpanRecord is the exported (JSONL) form of one finished span.
type SpanRecord struct {
	TraceID   string         `json:"trace_id"`
	SpanID    string         `json:"span_id"`
	ParentID  string         `json:"parent_id,omitempty"`
	Name      string         `json:"name"`
	Start     time.Time      `json:"start"`
	DurationS float64        `json:"duration_s"`
	Attrs     map[string]any `json:"attrs,omitempty"`
}

// Span is one node of a request's trace tree. Create roots with
// Tracer.StartSpan and children with StartChild/ChildAt; a nil *Span
// is a valid no-op receiver for every method, which is how untraced
// requests skip the whole machinery.
type Span struct {
	tracer *Tracer
	root   *Span

	// TraceID is the W3C trace id (32 hex chars) shared by the tree;
	// SpanID this span's id (16 hex); ParentID the parent span's id.
	TraceID  string
	SpanID   string
	ParentID string
	Name     string

	start time.Time
	attrs map[string]any

	// Root-only: finished-span sink for the tree.
	mu   sync.Mutex
	recs []SpanRecord
}

// StartSpan opens a root span. traceID continues an upstream trace (a
// parsed traceparent); empty starts a new one. Returns nil when the
// tracer is disabled — callers rely on nil-safety, not checks.
func (t *Tracer) StartSpan(name, traceID, parentID string) *Span {
	if !t.Enabled() {
		return nil
	}
	if traceID == "" {
		traceID = NewTraceID()
	}
	s := &Span{
		tracer:   t,
		TraceID:  traceID,
		SpanID:   NewSpanID(),
		ParentID: parentID,
		Name:     name,
		start:    time.Now(),
	}
	s.root = s
	return s
}

// StartChild opens a child span of s starting now.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		tracer:   s.tracer,
		root:     s.root,
		TraceID:  s.TraceID,
		SpanID:   NewSpanID(),
		ParentID: s.SpanID,
		Name:     name,
		start:    time.Now(),
	}
}

// ChildAt records an already-finished child span with an explicit
// start and duration — the shape stage timings take when a pipeline
// measures durations first and attributes them to spans afterwards.
// The returned span is closed; it exists so further ChildAt calls can
// nest under it (e.g. the transition fill inside the Viterbi stage).
func (s *Span) ChildAt(name string, start time.Time, d time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := &Span{
		tracer:   s.tracer,
		root:     s.root,
		TraceID:  s.TraceID,
		SpanID:   NewSpanID(),
		ParentID: s.SpanID,
		Name:     name,
		start:    start,
	}
	s.root.append(SpanRecord{
		TraceID:   c.TraceID,
		SpanID:    c.SpanID,
		ParentID:  c.ParentID,
		Name:      c.Name,
		Start:     start,
		DurationS: d.Seconds(),
	})
	return c
}

// SetAttr attaches a key/value attribute. Call from the goroutine that
// owns the span, before End.
func (s *Span) SetAttr(key string, v any) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = v
}

// Duration returns the elapsed time since the span started.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(s.start)
}

// End closes the span. Ending a non-root span records it into the
// tree; ending the root additionally exports the whole tree as JSONL
// (children first, root last).
func (s *Span) End() {
	if s == nil {
		return
	}
	rec := SpanRecord{
		TraceID:   s.TraceID,
		SpanID:    s.SpanID,
		ParentID:  s.ParentID,
		Name:      s.Name,
		Start:     s.start,
		DurationS: time.Since(s.start).Seconds(),
		Attrs:     s.attrs,
	}
	s.root.append(rec)
	if s == s.root {
		s.mu.Lock()
		recs := s.recs
		s.recs = nil
		s.mu.Unlock()
		s.tracer.export(recs)
	}
}

func (s *Span) append(rec SpanRecord) {
	s.mu.Lock()
	s.recs = append(s.recs, rec)
	s.mu.Unlock()
}

// --- context plumbing ---

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying the span; a nil span returns
// ctx unchanged so call sites need no branches.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil. The nil
// return composes with the nil-safe Span methods: instrumented code
// calls SpanFromContext once and uses the result unconditionally.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// --- W3C traceparent ---

// ParseTraceparent parses a W3C traceparent header
// ("00-{32 hex trace-id}-{16 hex span-id}-{2 hex flags}"). ok is false
// on any malformed or all-zero field; sampled reflects bit 0 of the
// flags.
func ParseTraceparent(h string) (traceID, spanID string, sampled, ok bool) {
	h = strings.TrimSpace(h)
	parts := strings.Split(h, "-")
	if len(parts) != 4 || parts[0] != "00" ||
		len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return "", "", false, false
	}
	if !isHexLower(parts[1]) || !isHexLower(parts[2]) || !isHexLower(parts[3]) {
		return "", "", false, false
	}
	if parts[1] == strings.Repeat("0", 32) || parts[2] == strings.Repeat("0", 16) {
		return "", "", false, false
	}
	var flags byte
	fmt.Sscanf(parts[3], "%02x", &flags) //nolint:errcheck // validated hex above
	return parts[1], parts[2], flags&1 == 1, true
}

// Traceparent formats a W3C traceparent header for propagation.
func Traceparent(traceID, spanID string, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + traceID + "-" + spanID + "-" + flags
}

func isHexLower(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// --- id generation ---

// idState seeds a splitmix64 sequence from crypto/rand once; ids are
// then two atomic-increment hashes per call — unique within a process
// and cheap enough for per-request use.
var idState atomic.Uint64

func init() {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		idState.Store(binary.LittleEndian.Uint64(b[:]))
	} else {
		idState.Store(uint64(time.Now().UnixNano()))
	}
}

func nextRand() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func randFloat() float64 {
	return float64(nextRand()>>11) / float64(1<<53)
}

func hexN(n int) string {
	b := make([]byte, n)
	for i := 0; i < n; i += 8 {
		var chunk [8]byte
		binary.LittleEndian.PutUint64(chunk[:], nextRand())
		copy(b[i:], chunk[:min(8, n-i)])
	}
	return hex.EncodeToString(b)
}

// NewTraceID returns a random 32-hex-char W3C trace id.
func NewTraceID() string { return hexN(16) }

// NewSpanID returns a random 16-hex-char W3C span id.
func NewSpanID() string { return hexN(8) }

// NewRequestID returns a random request id for X-Request-ID echo.
func NewRequestID() string { return hexN(8) }
