package obs_test

import (
	"regexp"
	"testing"

	"repro/internal/obs"

	// Instruments register at package init via obs.Default; linking
	// serve pulls in the whole matching stack (core, hmm, roadnet,
	// eval) so every production metric name is on the lint's docket.
	_ "repro/internal/serve"
)

// metricName is the registry naming convention: dotted lowercase
// snake.case segments (underscores allowed inside a segment, as in
// "router.cache.hit_rate"). Every such name maps to a valid Prometheus
// metric name under the lhmm_ prefix, so enforcing it here keeps the
// /metrics exposition well-formed by construction.
var metricName = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$`)

func TestMetricNamesLint(t *testing.T) {
	names := obs.Default.CounterNames()
	names = append(names, obs.Default.GaugeNames()...)
	names = append(names, obs.Default.HistogramNames()...)
	names = append(names, obs.Default.DerivedNames()...)
	if len(names) < 10 {
		t.Fatalf("only %d instruments registered; expected the full stack (is serve still linked?)", len(names))
	}
	for _, name := range names {
		if !metricName.MatchString(name) {
			t.Errorf("metric %q violates the dotted lowercase snake.case convention %s", name, metricName)
		}
	}
}
