package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
)

// levelOff is above every standard slog level, silencing the default
// logger until a CLI opts in with SetLogLevel.
const levelOff = slog.LevelError + 4

var logLevel slog.LevelVar

var logger atomic.Pointer[slog.Logger]

func init() {
	logLevel.Set(levelOff)
	logger.Store(slog.New(slog.NewTextHandler(io.Discard, nil)))
}

// Logger returns the telemetry logger. It discards everything until
// SetLogOutput/SetLogLevel route it somewhere; callers on hot paths
// should guard expensive attribute construction with
// Logger().Enabled(nil, level).
func Logger() *slog.Logger { return logger.Load() }

// SetLogger replaces the telemetry logger wholesale (tests, custom
// handlers).
func SetLogger(l *slog.Logger) { logger.Store(l) }

// SetLogOutput routes structured logs to w at the current level in the
// default text format.
func SetLogOutput(w io.Writer) {
	logger.Store(slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: &logLevel})))
}

// SetLogFormat routes structured logs to w in the named format: "text"
// (slog's logfmt-style key=value handler, the default) or "json" (one
// JSON object per line, for log pipelines).
func SetLogFormat(w io.Writer, format string) error {
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		SetLogOutput(w)
	case "json":
		logger.Store(slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: &logLevel})))
	default:
		return fmt.Errorf("obs: unknown log format %q (want text|json)", format)
	}
	return nil
}

// SetLogLevel sets the minimum level emitted by loggers installed via
// SetLogOutput.
func SetLogLevel(l slog.Level) { logLevel.Set(l) }

// ParseLevel maps a flag string to a slog level: debug, info, warn,
// error, or off (case-insensitive).
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	case "off", "none", "":
		return levelOff, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error|off)", s)
}
