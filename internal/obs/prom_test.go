package obs

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Enable()
	r.Counter("test.requests").Add(7)
	r.Gauge("test.active").Set(3)
	h := r.Histogram("test.seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5) // overflow

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE lhmm_test_requests_total counter\n",
		"lhmm_test_requests_total 7\n",
		"# TYPE lhmm_test_active gauge\n",
		"lhmm_test_active 3\n",
		"# TYPE lhmm_test_seconds histogram\n",
		"lhmm_test_seconds_bucket{le=\"0.1\"} 1\n",
		"lhmm_test_seconds_bucket{le=\"1\"} 2\n",
		"lhmm_test_seconds_bucket{le=\"+Inf\"} 3\n",
		"lhmm_test_seconds_sum 5.55\n",
		"lhmm_test_seconds_count 3\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q in:\n%s", want, text)
		}
	}
	if err := ValidatePromText(buf.Bytes()); err != nil {
		t.Errorf("own scrape fails validation: %v", err)
	}
}

// Zero-observation instruments still appear so the series set is
// stable from process start.
func TestWritePrometheusZeroInstruments(t *testing.T) {
	r := New()
	r.Counter("zero.counter")
	r.Histogram("zero.seconds", []float64{1})
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"lhmm_zero_counter_total 0\n",
		"lhmm_zero_seconds_bucket{le=\"+Inf\"} 0\n",
		"lhmm_zero_seconds_count 0\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q in:\n%s", want, text)
		}
	}
}

func TestValidatePromTextRejects(t *testing.T) {
	bad := []string{
		"",                            // no samples at all
		"# BOGUS comment\nlhmm_x 1\n", // unknown comment
		"9leading_digit 1\n",          // name starts with digit
		"lhmm_x{le=0.1} 1\n",          // unquoted label value
		"lhmm_x{le=\"0.1\"\n",         // unterminated labels
		"lhmm_x\n",                    // missing value
		"lhmm_x notanumber\n",         // bad value
	}
	for _, text := range bad {
		if err := ValidatePromText([]byte(text)); err == nil {
			t.Errorf("ValidatePromText accepted %q", text)
		}
	}
	good := "lhmm_x{le=\"+Inf\"} 42\nlhmm_y 1.5e-3\nlhmm_z +Inf\n"
	if err := ValidatePromText([]byte(good)); err != nil {
		t.Errorf("ValidatePromText rejected good scrape: %v", err)
	}
}

// TestPromScrapeFile validates an externally captured scrape (the CI
// serve-smoke writes one and reruns this test against it). Skipped
// unless PROM_SCRAPE_FILE is set.
func TestPromScrapeFile(t *testing.T) {
	path := os.Getenv("PROM_SCRAPE_FILE")
	if path == "" {
		t.Skip("PROM_SCRAPE_FILE not set")
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePromText(b); err != nil {
		t.Fatalf("scrape %s: %v", path, err)
	}
	if !bytes.Contains(b, []byte("lhmm_")) {
		t.Fatalf("scrape %s has no lhmm_ series", path)
	}
}

// Derived gauges compute at scrape time from other instruments — the
// hit-rate pattern — and must round-trip the exposition validator.
func TestWritePrometheusDerived(t *testing.T) {
	r := New()
	r.Enable()
	hits := r.Counter("test.cache.hits")
	misses := r.Counter("test.cache.misses")
	r.Derived("test.cache.hit_rate", func() float64 {
		h, m := float64(hits.Value()), float64(misses.Value())
		if h+m == 0 {
			return 0
		}
		return h / (h + m)
	})
	hits.Add(3)
	misses.Add(1)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE lhmm_test_cache_hit_rate gauge\n",
		"lhmm_test_cache_hit_rate 0.75\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q in:\n%s", want, text)
		}
	}
	if err := ValidatePromText(buf.Bytes()); err != nil {
		t.Errorf("scrape with derived gauge fails validation: %v", err)
	}
	if snap := r.Snapshot(); snap.Derived["test.cache.hit_rate"] != 0.75 {
		t.Errorf("snapshot derived = %v, want 0.75", snap.Derived["test.cache.hit_rate"])
	}
}
