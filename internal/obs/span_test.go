package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// decodeSpans parses a tracer's JSONL output.
func decodeSpans(t *testing.T, b []byte) []SpanRecord {
	t.Helper()
	var recs []SpanRecord
	dec := json.NewDecoder(bytes.NewReader(b))
	for dec.More() {
		var r SpanRecord
		if err := dec.Decode(&r); err != nil {
			t.Fatalf("decode span: %v", err)
		}
		recs = append(recs, r)
	}
	return recs
}

func TestSpanTreeExport(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer()
	tr.SetOutput(&buf)

	root := tr.StartSpan("request", "", "")
	if root == nil {
		t.Fatal("StartSpan returned nil on enabled tracer")
	}
	root.SetAttr("path", "/v1/match")
	child := root.StartChild("match")
	grand := child.ChildAt("viterbi", time.Now().Add(-time.Millisecond), time.Millisecond)
	grand.ChildAt("transition", time.Now().Add(-time.Millisecond), 500*time.Microsecond)
	child.End()
	root.End()

	recs := decodeSpans(t, buf.Bytes())
	if len(recs) != 4 {
		t.Fatalf("got %d spans, want 4: %+v", len(recs), recs)
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
		if r.TraceID != root.TraceID {
			t.Errorf("span %s trace id %s, want %s", r.Name, r.TraceID, root.TraceID)
		}
		if len(r.SpanID) != 16 {
			t.Errorf("span %s id %q not 16 hex chars", r.Name, r.SpanID)
		}
	}
	if byName["match"].ParentID != root.SpanID {
		t.Errorf("match parent %s, want root %s", byName["match"].ParentID, root.SpanID)
	}
	if byName["viterbi"].ParentID != byName["match"].SpanID {
		t.Errorf("viterbi parent %s, want match %s", byName["viterbi"].ParentID, byName["match"].SpanID)
	}
	if byName["transition"].ParentID != byName["viterbi"].SpanID {
		t.Errorf("transition parent %s, want viterbi %s", byName["transition"].ParentID, byName["viterbi"].SpanID)
	}
	// The root exports last, after all children.
	if recs[len(recs)-1].Name != "request" {
		t.Errorf("last exported span is %s, want request (root)", recs[len(recs)-1].Name)
	}
	if got := byName["request"].Attrs["path"]; got != "/v1/match" {
		t.Errorf("root attr path = %v", got)
	}
}

func TestSpanUpstreamTraceContinues(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer()
	tr.SetOutput(&buf)
	up := strings.Repeat("ab", 16)
	parent := strings.Repeat("cd", 8)
	sp := tr.StartSpan("request", up, parent)
	sp.End()
	recs := decodeSpans(t, buf.Bytes())
	if recs[0].TraceID != up || recs[0].ParentID != parent {
		t.Errorf("got trace %s parent %s, want upstream %s/%s", recs[0].TraceID, recs[0].ParentID, up, parent)
	}
}

func TestSpanNilSafety(t *testing.T) {
	var s *Span
	s.SetAttr("k", 1)
	s.End()
	if c := s.StartChild("x"); c != nil {
		t.Error("nil.StartChild != nil")
	}
	if c := s.ChildAt("x", time.Now(), 0); c != nil {
		t.Error("nil.ChildAt != nil")
	}
	if d := s.Duration(); d != 0 {
		t.Error("nil.Duration != 0")
	}
	ctx := ContextWithSpan(context.Background(), nil)
	if got := SpanFromContext(ctx); got != nil {
		t.Error("nil span round-tripped through context as non-nil")
	}
}

func TestTracerDisabledAndSampling(t *testing.T) {
	tr := NewTracer()
	if tr.Enabled() {
		t.Error("fresh tracer enabled")
	}
	if sp := tr.StartSpan("x", "", ""); sp != nil {
		t.Error("disabled tracer returned a span")
	}
	if tr.ShouldSample() {
		t.Error("disabled tracer sampled")
	}
	var buf bytes.Buffer
	tr.SetOutput(&buf)
	tr.SetSample(0)
	if tr.ShouldSample() {
		t.Error("sample rate 0 sampled")
	}
	tr.SetSample(1)
	if !tr.ShouldSample() {
		t.Error("sample rate 1 did not sample")
	}
	tr.SetOutput(nil)
	if tr.Enabled() {
		t.Error("SetOutput(nil) left tracer enabled")
	}
}

func TestTraceparent(t *testing.T) {
	tid, sid := strings.Repeat("0a", 16), strings.Repeat("0b", 8)
	h := Traceparent(tid, sid, true)
	gt, gs, sampled, ok := ParseTraceparent(h)
	if !ok || gt != tid || gs != sid || !sampled {
		t.Fatalf("round trip failed: %q -> %v %v %v %v", h, gt, gs, sampled, ok)
	}
	_, _, sampled, ok = ParseTraceparent(Traceparent(tid, sid, false))
	if !ok || sampled {
		t.Fatalf("unsampled round trip: sampled=%v ok=%v", sampled, ok)
	}
	bad := []string{
		"",
		"00-" + tid + "-" + sid,         // missing flags
		"01-" + tid + "-" + sid + "-01", // wrong version
		"00-" + strings.ToUpper(tid) + "-" + sid + "-01",    // uppercase hex
		"00-" + strings.Repeat("0", 32) + "-" + sid + "-01", // all-zero trace
		"00-" + tid + "-" + strings.Repeat("0", 16) + "-01", // all-zero span
		"00-" + tid[:30] + "-" + sid + "-01",                // short trace id
	}
	for _, h := range bad {
		if _, _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent accepted %q", h)
		}
	}
}

func TestNewIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 32 {
			t.Fatalf("trace id %q not 32 chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
	if len(NewSpanID()) != 16 || len(NewRequestID()) != 16 {
		t.Error("span/request id length wrong")
	}
}

// TestSpanDisabledFastPathAllocs pins the untraced fast path: a
// context without a span costs one lookup and no allocations through
// every span method.
func TestSpanDisabledFastPathAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := SpanFromContext(ctx)
		sp.SetAttr("k", 1)
		c := sp.StartChild("x")
		c.ChildAt("y", time.Time{}, 0)
		c.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("untraced span path allocates %.1f/op, want 0", allocs)
	}
}
