package obs

import "testing"

// These benchmarks guard the contract the package doc promises: with
// the registry disabled (the default), every instrument update is one
// atomic load and an early return — a few ns/op, zero allocations.
// They are the regression fence for instrumenting hot paths like the
// router's 30ns cache-hit lookup.

func BenchmarkCounterDisabled(b *testing.B) {
	r := New()
	c := r.Counter("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Value() != 0 {
		b.Fatal("disabled counter recorded")
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	r := New()
	r.Enable()
	c := r.Counter("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeDisabled(b *testing.B) {
	r := New()
	g := r.Gauge("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkHistogramDisabled(b *testing.B) {
	r := New()
	h := r.Histogram("bench", LatencyBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.004)
	}
}

func BenchmarkHistogramEnabled(b *testing.B) {
	r := New()
	r.Enable()
	h := r.Histogram("bench", LatencyBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.004)
	}
}

// TestDisabledFastPathAllocs is the testable form of the 0-alloc
// guarantee so `go test` (not just -bench) enforces it.
func TestDisabledFastPathAllocs(t *testing.T) {
	r := New()
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", LatencyBuckets)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(3)
		h.Observe(1)
	})
	if allocs != 0 {
		t.Fatalf("disabled instruments allocate: %v allocs/op", allocs)
	}
}
