package obs

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// Flags is the standard observability flag trio shared by the CLIs.
type Flags struct {
	Metrics   string // dump a metrics snapshot: file path, or "-" for stdout
	LogLevel  string // debug|info|warn|error|off
	DebugAddr string // serve pprof+expvar+/metrics on this address
}

// BindFlags registers -metrics, -log-level, and -debug-addr on fs and
// returns the destination struct. Call Apply after fs.Parse.
func BindFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Metrics, "metrics", "", "dump metrics snapshot as JSON to this file on exit ('-' for stderr)")
	fs.StringVar(&f.LogLevel, "log-level", "", "structured log level: debug|info|warn|error (default off)")
	fs.StringVar(&f.DebugAddr, "debug-addr", "", "serve /debug/pprof, /debug/vars and /metrics on this address")
	return f
}

// Apply activates the parsed flags against the Default registry:
// enables metrics recording when a dump or debug server is requested,
// routes slog to stderr at the chosen level, and starts the debug
// server. The returned cleanup writes the metrics snapshot and stops
// the server; call it on exit (it is never nil).
func (f *Flags) Apply() (func() error, error) {
	if f.LogLevel != "" {
		level, err := ParseLevel(f.LogLevel)
		if err != nil {
			return func() error { return nil }, err
		}
		SetLogLevel(level)
		SetLogOutput(os.Stderr)
	}

	var stopServe func() error
	if f.DebugAddr != "" {
		addr, stop, err := Serve(f.DebugAddr)
		if err != nil {
			return func() error { return nil }, err
		}
		stopServe = stop
		Logger().Info("obs: debug server listening", "addr", addr)
	}
	if f.Metrics != "" {
		Default.Enable()
	}

	cleanup := func() error {
		var firstErr error
		if f.Metrics != "" {
			if err := dumpSnapshot(f.Metrics); err != nil {
				firstErr = err
			}
		}
		if stopServe != nil {
			if err := stopServe(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	return cleanup, nil
}

// dumpSnapshot writes the Default snapshot as indented JSON. "-" goes
// to stderr so it never corrupts a command's stdout results.
func dumpSnapshot(path string) error {
	data, err := json.MarshalIndent(Default.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal snapshot: %w", err)
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stderr.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
