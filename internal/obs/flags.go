package obs

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
)

// Flags is the standard observability flag set shared by the CLIs.
type Flags struct {
	Metrics     string  // dump a metrics snapshot: file path, or "-" for stdout
	LogLevel    string  // debug|info|warn|error|off
	LogFormat   string  // text|json
	DebugAddr   string  // serve pprof+expvar+/metrics on this address
	TraceOut    string  // JSONL span export path ('-' for stderr)
	TraceSample float64 // probabilistic trace sampling rate in [0,1]
}

// BindFlags registers the observability flags on fs and returns the
// destination struct. Call Apply after fs.Parse. -trace-out and
// -trace-sample default from LHMM_TRACE_OUT / LHMM_TRACE_SAMPLE so
// tracing can be switched on without touching a deployment's argv.
func BindFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{TraceSample: 1}
	if v := os.Getenv("LHMM_TRACE_SAMPLE"); v != "" {
		if p, err := strconv.ParseFloat(v, 64); err == nil {
			f.TraceSample = p
		}
	}
	fs.StringVar(&f.Metrics, "metrics", "", "dump metrics snapshot as JSON to this file on exit ('-' for stderr)")
	fs.StringVar(&f.LogLevel, "log-level", "", "structured log level: debug|info|warn|error (default off)")
	fs.StringVar(&f.LogFormat, "log-format", "text", "structured log format: text|json")
	fs.StringVar(&f.DebugAddr, "debug-addr", "", "serve /debug/pprof, /debug/vars and /metrics on this address")
	fs.StringVar(&f.TraceOut, "trace-out", os.Getenv("LHMM_TRACE_OUT"), "export sampled request spans as JSONL to this file ('-' for stderr; env LHMM_TRACE_OUT)")
	fs.Float64Var(&f.TraceSample, "trace-sample", f.TraceSample, "trace sampling probability in [0,1] (env LHMM_TRACE_SAMPLE)")
	return f
}

// Apply activates the parsed flags against the Default registry:
// enables metrics recording when a dump or debug server is requested,
// routes slog to stderr at the chosen level, and starts the debug
// server. The returned cleanup writes the metrics snapshot and stops
// the server; call it on exit (it is never nil).
func (f *Flags) Apply() (func() error, error) {
	if f.LogLevel != "" {
		level, err := ParseLevel(f.LogLevel)
		if err != nil {
			return func() error { return nil }, err
		}
		SetLogLevel(level)
		if err := SetLogFormat(os.Stderr, f.LogFormat); err != nil {
			return func() error { return nil }, err
		}
	}

	var stopServe func() error
	if f.DebugAddr != "" {
		addr, stop, err := Serve(f.DebugAddr)
		if err != nil {
			return func() error { return nil }, err
		}
		stopServe = stop
		Logger().Info("obs: debug server listening", "addr", addr)
	}
	if f.Metrics != "" {
		Default.Enable()
	}

	var traceFile *os.File
	if f.TraceOut != "" {
		if f.TraceOut == "-" {
			DefaultTracer.SetOutput(os.Stderr)
		} else {
			tf, err := os.Create(f.TraceOut)
			if err != nil {
				if stopServe != nil {
					stopServe() //nolint:errcheck // reporting the create error
				}
				return func() error { return nil }, fmt.Errorf("obs: trace out: %w", err)
			}
			traceFile = tf
			DefaultTracer.SetOutput(tf)
		}
		DefaultTracer.SetSample(f.TraceSample)
	}

	cleanup := func() error {
		var firstErr error
		if f.Metrics != "" {
			if err := dumpSnapshot(f.Metrics); err != nil {
				firstErr = err
			}
		}
		if traceFile != nil {
			DefaultTracer.SetOutput(nil)
			if err := traceFile.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if stopServe != nil {
			if err := stopServe(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	return cleanup, nil
}

// dumpSnapshot writes the Default snapshot as indented JSON. "-" goes
// to stderr so it never corrupts a command's stdout results.
func dumpSnapshot(path string) error {
	data, err := json.MarshalIndent(Default.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal snapshot: %w", err)
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stderr.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
