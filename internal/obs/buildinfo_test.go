package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestBuildInfoPopulated(t *testing.T) {
	bi := GetBuildInfo()
	if bi.GoVersion == "" {
		t.Error("GoVersion empty")
	}
	if bi.Version == "" {
		t.Error("Version empty (want at least \"unknown\")")
	}
	if len(bi.Commit) > 12 {
		t.Errorf("Commit %q longer than 12 chars", bi.Commit)
	}
	if again := GetBuildInfo(); again != bi {
		t.Error("GetBuildInfo not stable across calls")
	}
}

// The exposition must lead with the labeled lhmm_build_info gauge and
// still pass the repo's own scrape validator.
func TestPrometheusBuildInfoLine(t *testing.T) {
	r := New()
	r.Enable()
	r.Counter("x").Add(1)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "lhmm_build_info{version=") {
		t.Errorf("no lhmm_build_info series in exposition:\n%s", out)
	}
	if !strings.Contains(out, "goversion=") || !strings.Contains(out, "} 1\n") {
		t.Errorf("lhmm_build_info missing goversion label or constant-1 value:\n%s", out)
	}
	if err := ValidatePromText(buf.Bytes()); err != nil {
		t.Errorf("exposition with build_info fails validation: %v", err)
	}
}

func TestSnapshotCarriesBuildInfo(t *testing.T) {
	r := New()
	r.Enable()
	snap := r.Snapshot()
	if snap.Build.GoVersion != GetBuildInfo().GoVersion {
		t.Errorf("snapshot build info %+v != %+v", snap.Build, GetBuildInfo())
	}
}

// -log-format json must emit one parseable JSON object per line with
// the standard slog keys.
func TestSetLogFormatJSON(t *testing.T) {
	defer func() {
		SetLogOutput(bytes.NewBuffer(nil)) // restore a text logger
		SetLogLevel(levelOff)
	}()
	var buf bytes.Buffer
	if err := SetLogFormat(&buf, "json"); err != nil {
		t.Fatal(err)
	}
	SetLogLevel(slog.LevelInfo)
	Logger().Info("hello", slog.String("k", "v"), slog.Int("n", 7))
	Logger().Warn("second")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line not JSON: %v (%q)", err, lines[0])
	}
	if rec["msg"] != "hello" || rec["k"] != "v" || rec["n"] != float64(7) || rec["level"] != "INFO" {
		t.Errorf("unexpected record %v", rec)
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("second line not JSON: %v", err)
	}
}

func TestSetLogFormatRejectsUnknown(t *testing.T) {
	if err := SetLogFormat(bytes.NewBuffer(nil), "xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}
