package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterDisabledIsNoOp(t *testing.T) {
	r := New()
	c := r.Counter("x")
	c.Add(5)
	c.Inc()
	if got := c.Value(); got != 0 {
		t.Fatalf("disabled counter recorded %d", got)
	}
	r.Enable()
	c.Add(5)
	c.Inc()
	if got := c.Value(); got != 6 {
		t.Fatalf("enabled counter = %d, want 6", got)
	}
	r.Disable()
	c.Inc()
	if got := c.Value(); got != 6 {
		t.Fatalf("re-disabled counter = %d, want 6", got)
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Add(1)
	c.Inc()
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatal("nil instruments leaked values")
	}
}

func TestInstrumentInterning(t *testing.T) {
	r := New()
	if r.Counter("a") != r.Counter("a") {
		t.Error("same counter name yielded different instruments")
	}
	if r.Gauge("a") != r.Gauge("a") {
		t.Error("same gauge name yielded different instruments")
	}
	if r.Histogram("a", LatencyBuckets) != r.Histogram("a", nil) {
		t.Error("same histogram name yielded different instruments")
	}
	names := r.CounterNames()
	if len(names) != 1 || names[0] != "a" {
		t.Errorf("CounterNames = %v", names)
	}
}

func TestGauge(t *testing.T) {
	r := New()
	r.Enable()
	g := r.Gauge("lag")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	r.Enable()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Fatalf("sum = %v", h.Sum())
	}
	snap := r.Snapshot().Histograms["lat"]
	// 0.5 and 1 land in bucket ≤1; 5 in ≤10; 50 in ≤100; 500 overflows.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if snap.Buckets[i] != w {
			t.Fatalf("buckets = %v, want %v", snap.Buckets, want)
		}
	}
	if snap.Overflow != 1 {
		t.Fatalf("overflow = %d", snap.Overflow)
	}
	if snap.Mean != 556.5/5 {
		t.Fatalf("mean = %v", snap.Mean)
	}
}

func TestSnapshotAndReset(t *testing.T) {
	r := New()
	r.Enable()
	r.Counter("hits").Add(3)
	r.Counter("misses").Add(1)
	r.Counter("silent") // never incremented: omitted from snapshot
	r.Gauge("depth").Set(9)
	r.Histogram("h", []float64{1}).Observe(0.5)

	s := r.Snapshot()
	if s.Counters["hits"] != 3 || s.Counters["misses"] != 1 {
		t.Fatalf("counters = %v", s.Counters)
	}
	if _, ok := s.Counters["silent"]; ok {
		t.Error("zero counter present in snapshot")
	}
	if s.Gauges["depth"] != 9 {
		t.Fatalf("gauges = %v", s.Gauges)
	}
	if got := s.Ratio("hits", "misses"); got != 0.75 {
		t.Fatalf("Ratio = %v, want 0.75", got)
	}
	if (Snapshot{}).Ratio("a", "b") != 0 {
		t.Error("empty ratio not 0")
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot not marshalable: %v", err)
	}

	r.Reset()
	s = r.Snapshot()
	if len(s.Counters) != 0 || s.Gauges["depth"] != 0 {
		t.Fatalf("after reset: %+v", s)
	}
	// Registered histograms stay in the snapshot even at zero
	// observations — the scrape series set must be stable.
	if hs, ok := s.Histograms["h"]; !ok || hs.Count != 0 {
		t.Fatalf("after reset histogram h = %+v, ok=%v", s.Histograms["h"], ok)
	}
	// Handles stay live across Reset.
	r.Counter("hits").Inc()
	if r.Snapshot().Counters["hits"] != 1 {
		t.Error("counter handle dead after Reset")
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := New()
	r.Enable()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", LatencyBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%7) * 0.001)
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("c=%d g=%d h=%d, want 8000 each", c.Value(), g.Value(), h.Count())
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug,
		"INFO":  slog.LevelInfo,
		"warn":  slog.LevelWarn,
		"error": slog.LevelError,
		"off":   levelOff,
		"":      levelOff,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}

func TestLoggerRouting(t *testing.T) {
	t.Cleanup(func() {
		logLevel.Set(levelOff)
		logger.Store(slog.New(slog.NewTextHandler(io.Discard, nil)))
	})
	var buf bytes.Buffer
	SetLogLevel(slog.LevelInfo)
	SetLogOutput(&buf)
	Logger().Debug("hidden")
	Logger().Info("visible", "k", 1)
	out := buf.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "visible") {
		t.Fatalf("log output = %q", out)
	}
}

func TestStageTimer(t *testing.T) {
	var s float64
	done := Stage(&s)
	time.Sleep(2 * time.Millisecond)
	done()
	if s <= 0 {
		t.Fatalf("stage seconds = %v", s)
	}
	Stage(nil)() // no-op must not panic
}

func TestMatchTraceHelpers(t *testing.T) {
	var nilTrace *MatchTrace
	nilTrace.AddBreak(0)
	if nilTrace.TotalCandidates() != 0 || nilTrace.SkippedPoints() != 0 {
		t.Fatal("nil trace leaked values")
	}
	tr := NewMatchTrace(3)
	tr.Points[0].Candidates = 4
	tr.Points[2].Candidates = 6
	tr.Points[1].Skipped = true
	tr.AddBreak(2)
	if tr.TotalCandidates() != 10 {
		t.Errorf("TotalCandidates = %d", tr.TotalCandidates())
	}
	if tr.SkippedPoints() != 1 {
		t.Errorf("SkippedPoints = %d", tr.SkippedPoints())
	}
	if len(tr.Breaks) != 1 || tr.Breaks[0] != 2 {
		t.Errorf("Breaks = %v", tr.Breaks)
	}
	if _, err := json.Marshal(tr); err != nil {
		t.Fatalf("trace not marshalable: %v", err)
	}
}

func TestServe(t *testing.T) {
	wasEnabled := Default.Enabled()
	t.Cleanup(func() {
		if !wasEnabled {
			Default.Disable()
		}
	})
	addr, stop, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop() //nolint:errcheck
	Default.Counter("serve.test").Inc()

	for _, path := range []string{"/metrics", "/metrics.json", "/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		switch path {
		case "/metrics":
			if err := ValidatePromText(body); err != nil {
				t.Fatalf("/metrics not valid Prometheus text: %v", err)
			}
			if !strings.Contains(string(body), "lhmm_serve_test_total 1") {
				t.Errorf("/metrics missing lhmm_serve_test_total:\n%s", body)
			}
		case "/metrics.json":
			var snap Snapshot
			if err := json.Unmarshal(body, &snap); err != nil {
				t.Fatalf("/metrics.json not JSON: %v", err)
			}
			if snap.Counters["serve.test"] != 1 {
				t.Errorf("/metrics.json counters = %v", snap.Counters)
			}
		}
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}
