package baselines

import (
	"math"

	"repro/internal/geo"
	"repro/internal/hmm"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// CommonConfig holds the knobs shared by the HMM-family baselines.
type CommonConfig struct {
	// K is the candidate count per point (§V-A2: 45 for baselines).
	K int
	// Sigma is the observation Gaussian σ₁ in meters.
	Sigma float64
	// Beta is the transition scale σ₂ in meters.
	Beta float64
}

// withDefaults fills zero fields with cellular-scale defaults.
func (c CommonConfig) withDefaults() CommonConfig {
	if c.K <= 0 {
		c.K = 45
	}
	if c.Sigma <= 0 {
		c.Sigma = 450
	}
	if c.Beta <= 0 {
		c.Beta = 500
	}
	return c
}

// stmTransition is ST-Matching's [8] transition: spatial analysis
// (straight-line over route length, favoring direct movements) times
// temporal analysis (implied speed vs. the route's speed limits).
type stmTransition struct {
	router *roadnet.Router
	net    *roadnet.Network
}

func (s *stmTransition) Score(ct traj.CellTrajectory, i int, from, to *hmm.Candidate) (float64, bool) {
	route, ok := s.router.RouteBetween(from.Pos(), to.Pos())
	if !ok {
		return 0, false
	}
	straight := ct[i-1].P.Dist(ct[i].P)
	spatial := 1.0
	if route.Dist > 0 {
		spatial = math.Min(straight/route.Dist, 1)
	}
	temporal := speedSimilarity(s.net, route, ct[i].T-ct[i-1].T)
	return spatial * temporal, true
}

// speedSimilarity compares the speed implied by traversing the route in
// dt seconds with the route's mean free-flow speed (the cosine-style
// temporal analysis of STM).
func speedSimilarity(net *roadnet.Network, route roadnet.Route, dt float64) float64 {
	if dt <= 0 || len(route.Segs) == 0 {
		return 1
	}
	implied := route.Dist / dt
	var limit float64
	for _, sid := range route.Segs {
		limit += net.Segment(sid).Speed
	}
	limit /= float64(len(route.Segs))
	if implied == 0 || limit == 0 {
		return 1
	}
	return math.Min(implied, limit) / math.Max(implied, limit)
}

// NewSTM builds ST-Matching [8].
func NewSTM(net *roadnet.Network, router *roadnet.Router, cfg CommonConfig) Method {
	return NewSTMWithShortcuts(net, router, cfg, 0)
}

// NewSTMWithShortcuts builds STM with the paper's shortcut structure
// grafted on (the STM+S ablation of Table III).
func NewSTMWithShortcuts(net *roadnet.Network, router *roadnet.Router, cfg CommonConfig, shortcuts int) Method {
	cfg = cfg.withDefaults()
	name := "STM"
	if shortcuts > 0 {
		name = "STM+S"
	}
	return NewHMMMethod(name, &hmm.Matcher{
		Net:    net,
		Router: router,
		Obs:    &hmm.GaussianObservation{Net: net, Sigma: cfg.Sigma},
		Trans:  &stmTransition{router: router, net: net},
		Cfg:    hmm.Config{K: cfg.K, Shortcuts: shortcuts},
	})
}

// ifmTransition extends STM with IF-Matching's [32] information fusion:
// an extra term rewarding consistency between the implied speed and the
// speeds of the specific roads traversed, sharpening ambiguous cases.
type ifmTransition struct {
	stm stmTransition
	net *roadnet.Network
}

func (f *ifmTransition) Score(ct traj.CellTrajectory, i int, from, to *hmm.Candidate) (float64, bool) {
	base, ok := f.stm.Score(ct, i, from, to)
	if !ok {
		return 0, false
	}
	// Moving-direction fusion: candidate segments should roughly agree
	// with the movement bearing of the trajectory.
	move := ct[i-1].P.Bearing(ct[i].P)
	diff := geo.AngleDiff(move, f.net.Segment(to.Seg).Bearing())
	directional := math.Max(0.1, math.Cos(diff/2))
	return base * directional, true
}

// NewIFM builds IF-Matching [32].
func NewIFM(net *roadnet.Network, router *roadnet.Router, cfg CommonConfig) Method {
	cfg = cfg.withDefaults()
	return NewHMMMethod("IFM", &hmm.Matcher{
		Net:    net,
		Router: router,
		Obs:    &hmm.GaussianObservation{Net: net, Sigma: cfg.Sigma},
		Trans:  &ifmTransition{stm: stmTransition{router: router, net: net}, net: net},
		Cfg:    hmm.Config{K: cfg.K},
	})
}

// mcmTransition implements MCM's [34] common-subsequence idea: a route
// is good when its heading profile agrees with the trajectory's
// movement (the longest common heading subsequence, approximated by the
// mean heading agreement along the route) and it stays reachable within
// a bounded detour.
type mcmTransition struct {
	router *roadnet.Router
	net    *roadnet.Network
}

func (m *mcmTransition) Score(ct traj.CellTrajectory, i int, from, to *hmm.Candidate) (float64, bool) {
	route, ok := m.router.RouteBetween(from.Pos(), to.Pos())
	if !ok {
		return 0, false
	}
	straight := ct[i-1].P.Dist(ct[i].P)
	// Reachability bound: reject routes more than 3× the straight
	// distance plus slack (tracking multiple road candidates only while
	// they stay plausible).
	if route.Dist > 3*straight+800 {
		return 0, false
	}
	move := ct[i-1].P.Bearing(ct[i].P)
	var agree float64
	for _, sid := range route.Segs {
		diff := geo.AngleDiff(move, m.net.Segment(sid).Bearing())
		agree += math.Max(0, math.Cos(diff))
	}
	agree /= float64(len(route.Segs))
	lengthSim := math.Exp(-math.Abs(straight-route.Dist) / 600)
	return 0.5*agree + 0.5*lengthSim, true
}

// NewMCM builds MCM [34].
func NewMCM(net *roadnet.Network, router *roadnet.Router, cfg CommonConfig) Method {
	cfg = cfg.withDefaults()
	return NewHMMMethod("MCM", &hmm.Matcher{
		Net:    net,
		Router: router,
		Obs:    &hmm.GaussianObservation{Net: net, Sigma: cfg.Sigma},
		Trans:  &mcmTransition{router: router, net: net},
		Cfg:    hmm.Config{K: cfg.K},
	})
}

// snetTransition is SnapNet's [12] heuristic blend: the classical
// length-similarity term with direction agreement and a fewer-turns
// penalty.
type snetTransition struct {
	router *roadnet.Router
	net    *roadnet.Network
	beta   float64
}

func (s *snetTransition) Score(ct traj.CellTrajectory, i int, from, to *hmm.Candidate) (float64, bool) {
	route, ok := s.router.RouteBetween(from.Pos(), to.Pos())
	if !ok {
		return 0, false
	}
	straight := ct[i-1].P.Dist(ct[i].P)
	lengthSim := math.Exp(-math.Abs(straight-route.Dist) / s.beta)
	var turns float64
	for j := 1; j < len(route.Segs); j++ {
		turns += geo.AngleDiff(s.net.Segment(route.Segs[j-1]).Bearing(), s.net.Segment(route.Segs[j]).Bearing())
	}
	fewerTurns := math.Exp(-turns / math.Pi)
	move := ct[i-1].P.Bearing(ct[i].P)
	dir := math.Max(0.1, math.Cos(geo.AngleDiff(move, s.net.Segment(to.Seg).Bearing())/2))
	return lengthSim * fewerTurns * dir, true
}

// NewSNet builds SnapNet [12]. Its filter chain is applied during
// dataset preprocessing (§V-A1), shared by every method, so the method
// itself contributes the heuristic probability blend.
func NewSNet(net *roadnet.Network, router *roadnet.Router, cfg CommonConfig) Method {
	cfg = cfg.withDefaults()
	return NewHMMMethod("SNet", &hmm.Matcher{
		Net:    net,
		Router: router,
		Obs:    &hmm.GaussianObservation{Net: net, Sigma: cfg.Sigma},
		Trans:  &snetTransition{router: router, net: net, beta: cfg.Beta},
		Cfg:    hmm.Config{K: cfg.K},
	})
}

// thmmTransition is THMM's [42] tailored transition: the classical term
// constrained by geometric and topological consistency — bounded
// detours and no effectively-reversed movements.
type thmmTransition struct {
	router *roadnet.Router
	net    *roadnet.Network
	beta   float64
}

func (t *thmmTransition) Score(ct traj.CellTrajectory, i int, from, to *hmm.Candidate) (float64, bool) {
	route, ok := t.router.RouteBetween(from.Pos(), to.Pos())
	if !ok {
		return 0, false
	}
	straight := ct[i-1].P.Dist(ct[i].P)
	// Topological constraint: bounded detour relative to the straight
	// movement (tailored to cellular error scales).
	if route.Dist > 2.5*straight+1200 {
		return 0, false
	}
	// Geometric constraint: the entry and exit roads must not demand an
	// immediate U-turn against the movement direction.
	move := ct[i-1].P.Bearing(ct[i].P)
	if geo.AngleDiff(move, t.net.Segment(to.Seg).Bearing()) > 2.8 &&
		straight > 300 {
		return 0, false
	}
	lengthSim := math.Exp(-math.Abs(straight-route.Dist) / t.beta)
	return lengthSim, true
}

// NewTHMM builds THMM [42].
func NewTHMM(net *roadnet.Network, router *roadnet.Router, cfg CommonConfig) Method {
	cfg = cfg.withDefaults()
	return NewHMMMethod("THMM", &hmm.Matcher{
		Net:    net,
		Router: router,
		Obs:    &hmm.GaussianObservation{Net: net, Sigma: cfg.Sigma},
		Trans:  &thmmTransition{router: router, net: net, beta: cfg.Beta},
		Cfg:    hmm.Config{K: cfg.K},
	})
}
