package baselines

import (
	"fmt"

	"repro/internal/roadnet"
	"repro/internal/traj"
)

// geometricMethod is the classical point-to-curve geometric matcher of
// the pre-HMM literature (the paper's related work, [21]–[23]): each
// point snaps independently to its nearest road segment, and the
// snapped segments are connected by shortest paths. It has no noise
// model at all, making it the natural lower-bound reference for every
// probabilistic method in this repository.
type geometricMethod struct {
	net    *roadnet.Network
	router *roadnet.Router
}

// NewGeometric builds the nearest-road geometric matcher.
func NewGeometric(net *roadnet.Network, router *roadnet.Router) Method {
	return &geometricMethod{net: net, router: router}
}

func (g *geometricMethod) Name() string { return "Geometric" }

func (g *geometricMethod) Match(ct traj.CellTrajectory) (*Output, error) {
	if len(ct) == 0 {
		return nil, fmt.Errorf("baselines: empty trajectory")
	}
	snapped := make([]roadnet.PointOnRoad, len(ct))
	cands := make([][]roadnet.SegmentID, len(ct))
	for i, p := range ct {
		near := g.net.SegmentsNear(p.P, 1)
		if len(near) == 0 {
			return nil, fmt.Errorf("baselines: no road near point %d", i)
		}
		_, frac := g.net.Project(near[0], p.P)
		snapped[i] = roadnet.PointOnRoad{Seg: near[0], Frac: frac}
		cands[i] = []roadnet.SegmentID{near[0]}
	}
	var path []roadnet.SegmentID
	appendSeg := func(s roadnet.SegmentID) {
		if len(path) == 0 || path[len(path)-1] != s {
			path = append(path, s)
		}
	}
	for i := 1; i < len(snapped); i++ {
		route, ok := g.router.RouteBetween(snapped[i-1], snapped[i])
		if !ok {
			appendSeg(snapped[i-1].Seg)
			appendSeg(snapped[i].Seg)
			continue
		}
		for _, s := range route.Segs {
			appendSeg(s)
		}
	}
	if len(path) == 0 {
		path = append(path, snapped[0].Seg)
	}
	return &Output{Path: path, Candidates: cands}, nil
}
