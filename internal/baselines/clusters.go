package baselines

import (
	"repro/internal/cellular"
	"repro/internal/geo"
	"repro/internal/hmm"
	"repro/internal/mrg"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// clstersMethod implements CLSTERS [41]: error reduction by calibrating
// each trajectory point toward its historical anchor — the
// co-occurrence-weighted centroid of the roads the point's tower has
// historically matched — before running a standard HMM. This captures
// the system's defining "calibrate, then match" structure using the
// same historical data the other learning methods see.
type clstersMethod struct {
	net     *roadnet.Network
	graph   *mrg.Graph
	matcher *hmm.Matcher
	// blend is how far a point moves toward its anchor (0 = off,
	// 1 = fully replaced).
	blend float64
}

// NewCLSTERS builds CLSTERS over the historical co-occurrence graph.
func NewCLSTERS(net *roadnet.Network, router *roadnet.Router, graph *mrg.Graph, cfg CommonConfig) Method {
	cfg = cfg.withDefaults()
	return &clstersMethod{
		net:   net,
		graph: graph,
		matcher: &hmm.Matcher{
			Net:    net,
			Router: router,
			Obs:    &hmm.GaussianObservation{Net: net, Sigma: cfg.Sigma},
			Trans:  &hmm.ExponentialTransition{Router: router, Beta: cfg.Beta},
			Cfg:    hmm.Config{K: cfg.K},
		},
		blend: 0.5,
	}
}

func (c *clstersMethod) Name() string { return "CLSTERS" }

func (c *clstersMethod) Match(ct traj.CellTrajectory) (*Output, error) {
	calibrated := make(traj.CellTrajectory, len(ct))
	copy(calibrated, ct)
	for i := range calibrated {
		if anchor, ok := c.anchor(calibrated[i].Tower); ok {
			calibrated[i].P = calibrated[i].P.Lerp(anchor, c.blend)
		}
	}
	res, err := c.matcher.Match(calibrated)
	if err != nil {
		return nil, err
	}
	return resultToOutput(res), nil
}

// anchor returns the co-occurrence-weighted centroid of the tower's
// historical roads.
func (c *clstersMethod) anchor(t cellular.TowerID) (geo.Point, bool) {
	roads := c.graph.TopCoRoads(t, 8)
	if len(roads) == 0 {
		return geo.Point{}, false
	}
	var sum geo.Point
	var wSum float64
	for _, sid := range roads {
		w := c.graph.CoOccurrence(t, sid)
		if w <= 0 {
			continue
		}
		mid := c.net.Segment(sid).Midpoint()
		sum = sum.Add(mid.Scale(w))
		wSum += w
	}
	if wSum == 0 {
		return geo.Point{}, false
	}
	return sum.Scale(1 / wSum), true
}
