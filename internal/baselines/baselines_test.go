package baselines

import (
	"math/rand"
	"testing"

	"repro/internal/cellular"
	"repro/internal/metrics"
	"repro/internal/mrg"
	"repro/internal/roadnet"
	"repro/internal/synth"
	"repro/internal/traj"
)

// world builds a small dataset plus the shared infrastructure the
// baselines need.
func world(t testing.TB, trips int) (*traj.Dataset, *roadnet.Router, *mrg.Graph) {
	t.Helper()
	cfg := synth.DatasetConfig{
		Seed: 99,
		City: synth.CityConfig{
			Name:          "bl-test",
			HalfSize:      2000,
			BlockSize:     250,
			CoreRadius:    1000,
			NodeJitter:    15,
			EdgeDropCore:  0.05,
			EdgeDropRural: 0.3,
			ArterialEvery: 4,
			TowerCount:    40,
		},
		Trips: synth.TripConfig{
			Count:            trips,
			MinLen:           1200,
			MaxLen:           3200,
			GPSInterval:      20,
			GPSNoise:         8,
			CellMeanInterval: 40,
			Serving:          cellular.DefaultServingModel(),
		},
		Preprocess: true,
		Filter:     traj.DefaultFilterConfig(),
		TrainFrac:  0.7,
		ValidFrac:  0.1,
	}
	d, err := synth.GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	router := roadnet.NewRouter(d.Net)
	graph, err := mrg.BuildGraph(d.Net, d.Cells, d.TrainTrips())
	if err != nil {
		t.Fatal(err)
	}
	return d, router, graph
}

func TestHMMFamilyMethods(t *testing.T) {
	d, router, graph := world(t, 14)
	cfg := CommonConfig{K: 12}
	methods := []Method{
		NewSTM(d.Net, router, cfg),
		NewSTMWithShortcuts(d.Net, router, cfg, 1),
		NewIFM(d.Net, router, cfg),
		NewMCM(d.Net, router, cfg),
		NewSNet(d.Net, router, cfg),
		NewTHMM(d.Net, router, cfg),
		NewIVMM(d.Net, router, cfg),
		NewCLSTERS(d.Net, router, graph, cfg),
	}
	wantNames := map[string]bool{
		"STM": true, "STM+S": true, "IFM": true, "MCM": true,
		"SNet": true, "THMM": true, "IVMM": true, "CLSTERS": true,
	}
	for _, m := range methods {
		if !wantNames[m.Name()] {
			t.Errorf("unexpected method name %q", m.Name())
		}
		degenerate := 0
		trips := d.TestTrips()
		for _, tr := range trips {
			out, err := m.Match(tr.Cell)
			if err != nil {
				t.Fatalf("%s trip %d: %v", m.Name(), tr.ID, err)
			}
			if len(out.Path) == 0 {
				t.Errorf("%s trip %d: empty path", m.Name(), tr.ID)
			}
			if out.Candidates == nil {
				t.Errorf("%s: HMM method returned no candidate sets", m.Name())
			}
			pm := metrics.EvalPath(d.Net, out.Path, tr.Path, 50)
			if pm.Recall == 0 && pm.CMF == 1 {
				// Individual hard trips may defeat a GPS-era baseline
				// entirely (that is the CTMM problem); only systematic
				// failure is a bug.
				degenerate++
			}
		}
		if degenerate*2 > len(trips) {
			t.Errorf("%s: degenerate on %d/%d trips", m.Name(), degenerate, len(trips))
		}
		// Empty trajectory errors.
		if _, err := m.Match(nil); err == nil {
			t.Errorf("%s: empty trajectory did not error", m.Name())
		}
	}
}

func seqCfg() Seq2SeqConfig {
	return Seq2SeqConfig{Dim: 12, Epochs: 2, MaxTarget: 50, Seed: 5}
}

func TestDeepMM(t *testing.T) {
	d, _, _ := world(t, 12)
	m, err := NewDeepMM(d.Net, d.Cells.NumTowers(), d.TrainTrips(), seqCfg())
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "DeepMM" {
		t.Errorf("Name = %q", m.Name())
	}
	tr := d.TestTrips()[0]
	out, err := m.Match(tr.Cell)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy decode may be short but must produce something and no
	// immediate repeats.
	for i := 1; i < len(out.Path); i++ {
		if out.Path[i] == out.Path[i-1] {
			t.Error("consecutive duplicate segment in decode")
		}
	}
	if _, err := m.Match(nil); err == nil {
		t.Error("empty trajectory did not error")
	}
}

func TestDMMConstrainedDecode(t *testing.T) {
	d, _, _ := world(t, 12)
	m, err := NewDMM(d.Net, d.Cells.NumTowers(), d.TrainTrips(), seqCfg())
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "DMM" {
		t.Errorf("Name = %q", m.Name())
	}
	for _, tr := range d.TestTrips()[:2] {
		out, err := m.Match(tr.Cell)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Path) == 0 {
			t.Fatal("DMM produced empty path")
		}
		// The defining property: the decoded path is connected on the
		// road graph.
		for i := 1; i < len(out.Path); i++ {
			if d.Net.Segment(out.Path[i-1]).To != d.Net.Segment(out.Path[i]).From {
				t.Fatalf("DMM path not connected at %d", i)
			}
		}
	}
}

func TestTransformerMM(t *testing.T) {
	d, _, _ := world(t, 10)
	cfg := seqCfg()
	cfg.Epochs = 1
	m, err := NewTransformerMM(d.Net, d.Cells.NumTowers(), d.TrainTrips(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "TransformerMM" {
		t.Errorf("Name = %q", m.Name())
	}
	tr := d.TestTrips()[0]
	out, err := m.Match(tr.Cell)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(out.Path); i++ {
		if out.Path[i] == out.Path[i-1] {
			t.Error("consecutive duplicate segment in transformer decode")
		}
	}
	if _, err := m.Match(nil); err == nil {
		t.Error("empty trajectory did not error")
	}
}

// Seq2seq training must reduce the loss enough that teacher-forced
// predictions beat chance by a wide margin: decode a training trip and
// expect some overlap with its own ground truth (memorization check).
func TestSeq2SeqLearnsTrainingData(t *testing.T) {
	d, _, _ := world(t, 10)
	cfg := Seq2SeqConfig{Dim: 16, Epochs: 6, MaxTarget: 50, Seed: 6}
	m, err := NewDMM(d.Net, d.Cells.NumTowers(), d.TrainTrips(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var anyOverlap bool
	for _, tr := range d.TrainTrips()[:3] {
		out, err := m.Match(tr.Cell)
		if err != nil {
			t.Fatal(err)
		}
		pm := metrics.EvalPath(d.Net, out.Path, tr.Path, 100)
		// Corridor-level overlap: the reward-shaped decode follows the
		// trajectory corridor even when it picks parallel segments.
		if pm.Recall > 0.1 || pm.CMF < 0.8 {
			anyOverlap = true
		}
	}
	if !anyOverlap {
		t.Error("trained DMM shows no overlap with its own training paths")
	}
}

func TestGRUCellShapes(t *testing.T) {
	// Covered indirectly above; here pin the parameter count.
	c := NewGRUCell("g", 4, 8, randSrc())
	if got := len(c.Params()); got != 9 {
		t.Errorf("GRU params = %d, want 9", got)
	}
}

func randSrc() *rand.Rand { return rand.New(rand.NewSource(1)) }

func TestGeometricBaseline(t *testing.T) {
	d, router, _ := world(t, 10)
	m := NewGeometric(d.Net, router)
	if m.Name() != "Geometric" {
		t.Errorf("Name = %q", m.Name())
	}
	for _, tr := range d.TestTrips() {
		out, err := m.Match(tr.Cell)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Path) == 0 {
			t.Fatal("empty geometric path")
		}
		if len(out.Candidates) != len(tr.Cell) {
			t.Errorf("candidates per point = %d, want %d", len(out.Candidates), len(tr.Cell))
		}
		// Exactly one candidate per point: the nearest road.
		for _, layer := range out.Candidates {
			if len(layer) != 1 {
				t.Error("geometric matcher should have one candidate per point")
			}
		}
	}
	if _, err := m.Match(nil); err == nil {
		t.Error("empty trajectory did not error")
	}
}
