package baselines

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/nn"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// Seq2SeqConfig parameterizes the recurrent seq2seq matchers (DeepMM
// [37] and DMM [15]).
type Seq2SeqConfig struct {
	// Dim is the embedding and hidden size. Default 32.
	Dim int
	// Epochs over the training trips. Default 3.
	Epochs int
	// LR is the Adam learning rate. Default 1e-3.
	LR float64
	// MaxTarget caps the supervised/decoded path length. Default 90.
	MaxTarget int
	// Seed drives initialization and shuffling.
	Seed int64
}

func (c Seq2SeqConfig) withDefaults() Seq2SeqConfig {
	if c.Dim <= 0 {
		c.Dim = 32
	}
	if c.Epochs <= 0 {
		c.Epochs = 3
	}
	if c.LR <= 0 {
		c.LR = 1e-3
	}
	if c.MaxTarget <= 0 {
		c.MaxTarget = 90
	}
	return c
}

// GRUCell is a gated recurrent unit.
type GRUCell struct {
	Wz, Uz, Wr, Ur, Wh, Uh *nn.Param
	Bz, Br, Bh             *nn.Param
}

// NewGRUCell creates a GRU with input size in and hidden size d.
func NewGRUCell(name string, in, d int, rng *rand.Rand) *GRUCell {
	return &GRUCell{
		Wz: nn.NewParam(name+".Wz", in, d, rng),
		Uz: nn.NewParam(name+".Uz", d, d, rng),
		Bz: nn.NewZeroParam(name+".bz", 1, d),
		Wr: nn.NewParam(name+".Wr", in, d, rng),
		Ur: nn.NewParam(name+".Ur", d, d, rng),
		Br: nn.NewZeroParam(name+".br", 1, d),
		Wh: nn.NewParam(name+".Wh", in, d, rng),
		Uh: nn.NewParam(name+".Uh", d, d, rng),
		Bh: nn.NewZeroParam(name+".bh", 1, d),
	}
}

// Params returns the cell parameters.
func (c *GRUCell) Params() []*nn.Param {
	return []*nn.Param{c.Wz, c.Uz, c.Bz, c.Wr, c.Ur, c.Br, c.Wh, c.Uh, c.Bh}
}

// Step advances the hidden state with input x (1×in) and state h (1×d).
func (c *GRUCell) Step(tp *nn.Tape, x, h *nn.T) *nn.T {
	z := tp.Sigmoid(tp.AddRow(tp.Add(tp.MatMul(x, tp.Var(c.Wz)), tp.MatMul(h, tp.Var(c.Uz))), tp.Var(c.Bz)))
	r := tp.Sigmoid(tp.AddRow(tp.Add(tp.MatMul(x, tp.Var(c.Wr)), tp.MatMul(h, tp.Var(c.Ur))), tp.Var(c.Br)))
	rh := tp.Mul(r, h)
	hh := tp.Tanh(tp.AddRow(tp.Add(tp.MatMul(x, tp.Var(c.Wh)), tp.MatMul(rh, tp.Var(c.Uh))), tp.Var(c.Bh)))
	// h' = (1-z)⊙h + z⊙hh
	return tp.Add(tp.Sub(h, tp.Mul(z, h)), tp.Mul(z, hh))
}

// seq2seq is the shared recurrent encoder-decoder: tower sequence in,
// road sequence out, with additive attention over encoder states.
type seq2seq struct {
	cfg      Seq2SeqConfig
	net      *roadnet.Network
	numRoads int // output classes = numRoads + 1 (EOS)

	towerEmb *nn.Embedding
	roadEmb  *nn.Embedding // numRoads + 2 rows (BOS, EOS)
	enc      *GRUCell
	dec      *GRUCell
	att      *nn.Attention
	out      *nn.Linear // 2d -> numRoads+1
}

func (s *seq2seq) eosClass() int { return s.numRoads }
func (s *seq2seq) bosRow() int   { return s.numRoads }
func (s *seq2seq) eosRow() int   { return s.numRoads + 1 }

func newSeq2Seq(net *roadnet.Network, numTowers int, cfg Seq2SeqConfig) *seq2seq {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 100))
	d := cfg.Dim
	v := net.NumSegments()
	return &seq2seq{
		cfg:      cfg,
		net:      net,
		numRoads: v,
		towerEmb: nn.NewEmbedding("s2s.towerEmb", numTowers, d, rng),
		roadEmb:  nn.NewEmbedding("s2s.roadEmb", v+2, d, rng),
		enc:      NewGRUCell("s2s.enc", d, d, rng),
		dec:      NewGRUCell("s2s.dec", d, d, rng),
		att:      nn.NewAttention("s2s.att", d, d/2+1, rng),
		out:      nn.NewLinear("s2s.out", 2*d, v+1, rng),
	}
}

func (s *seq2seq) params() []*nn.Param {
	ps := append([]*nn.Param(nil), s.towerEmb.Params()...)
	ps = append(ps, s.roadEmb.Params()...)
	ps = append(ps, s.enc.Params()...)
	ps = append(ps, s.dec.Params()...)
	ps = append(ps, s.att.Params()...)
	ps = append(ps, s.out.Params()...)
	return ps
}

// encode runs the encoder over the tower sequence, returning all hidden
// states stacked (n×d) and the final state (1×d).
func (s *seq2seq) encode(tp *nn.Tape, ct traj.CellTrajectory) (*nn.T, *nn.T) {
	d := s.cfg.Dim
	h := tp.Const(nn.NewMat(1, d))
	states := make([]*nn.T, 0, len(ct))
	for _, cp := range ct {
		x := s.towerEmb.Forward(tp, []int{int(cp.Tower)})
		h = s.enc.Step(tp, x, h)
		states = append(states, h)
	}
	return tp.StackRows(states), h
}

// decodeStep advances the decoder one step: prev is the previous output
// row index in roadEmb, state the decoder state. It returns logits
// (1×numRoads+1) and the next state.
func (s *seq2seq) decodeStep(tp *nn.Tape, prevRow int, state, encStates *nn.T) (*nn.T, *nn.T) {
	x := s.roadEmb.Forward(tp, []int{prevRow})
	state = s.dec.Step(tp, x, state)
	ctxT, _ := s.att.Forward(tp, state, encStates, encStates)
	logits := s.out.Forward(tp, tp.ConcatCols(state, ctxT))
	return logits, state
}

// trainSeq2Seq teacher-forces the model on (cellular trajectory →
// ground-truth path) pairs.
func (s *seq2seq) train(trips []*traj.Trip) error {
	opt := nn.NewAdam()
	opt.LR = s.cfg.LR
	params := s.params()
	rng := rand.New(rand.NewSource(s.cfg.Seed + 200))
	for epoch := 0; epoch < s.cfg.Epochs; epoch++ {
		perm := rng.Perm(len(trips))
		for _, ti := range perm {
			tr := trips[ti]
			if len(tr.Cell) < 2 || len(tr.Path) == 0 {
				continue
			}
			target := tr.Path
			if len(target) > s.cfg.MaxTarget {
				target = target[:s.cfg.MaxTarget]
			}
			tp := nn.NewTape()
			encStates, state := s.encode(tp, tr.Cell)
			var logitRows []*nn.T
			labels := make([]int, 0, len(target)+1)
			prev := s.bosRow()
			for _, sid := range target {
				var logits *nn.T
				logits, state = s.decodeStep(tp, prev, state, encStates)
				logitRows = append(logitRows, logits)
				labels = append(labels, int(sid))
				prev = int(sid)
			}
			// EOS step.
			logits, _ := s.decodeStep(tp, prev, state, encStates)
			logitRows = append(logitRows, logits)
			labels = append(labels, s.eosClass())

			all := tp.StackRows(logitRows)
			targetMat := nn.SmoothedTargets(len(labels), s.numRoads+1, labels, 0.05)
			loss := tp.CrossEntropy(all, targetMat)
			if err := tp.Backward(loss); err != nil {
				return fmt.Errorf("baselines: seq2seq: %w", err)
			}
			nn.ClipGradNorm(params, 5)
			opt.Step(params)
		}
	}
	return nil
}

// minSteps estimates how many road segments a trajectory's journey
// spans, used to suppress the premature-EOS length bias of greedy and
// beam decoding on small training data. The estimate uses the
// start-to-end displacement, which positioning noise inflates far less
// than the sample-to-sample polyline length.
func (s *seq2seq) minSteps(ct traj.CellTrajectory) int {
	meanSeg := s.net.TotalLength() / float64(s.net.NumSegments())
	if meanSeg <= 0 || len(ct) < 2 {
		return 1
	}
	// Displacement underestimates loop-shaped trips; the sample
	// polyline overestimates by the positioning noise. Take the larger
	// of displacement and a third of the polyline length.
	span := ct[0].P.Dist(ct[len(ct)-1].P)
	if pl := ct.Positions().Length() / 3; pl > span {
		span = pl
	}
	n := int(0.6 * span / meanSeg)
	if n < 1 {
		n = 1
	}
	if n > s.cfg.MaxTarget-1 {
		n = s.cfg.MaxTarget - 1
	}
	return n
}

// greedyDecode decodes without graph constraints (DeepMM-style).
func (s *seq2seq) greedyDecode(ct traj.CellTrajectory) []roadnet.SegmentID {
	tp := nn.NewTape()
	encStates, state := s.encode(tp, ct)
	var path []roadnet.SegmentID
	prev := s.bosRow()
	minLen := s.minSteps(ct)
	for step := 0; step < s.cfg.MaxTarget; step++ {
		var logits *nn.T
		logits, state = s.decodeStep(tp, prev, state, encStates)
		best, bestV := 0, math.Inf(-1)
		for j, v := range logits.Val.W {
			if j == s.eosClass() && len(path) < minLen {
				continue
			}
			if v > bestV {
				best, bestV = j, v
			}
		}
		if best == s.eosClass() {
			break
		}
		sid := roadnet.SegmentID(best)
		if len(path) == 0 || path[len(path)-1] != sid {
			path = append(path, sid)
		}
		prev = best
	}
	return path
}

// constrainedDecode restricts each step to road-graph successors of the
// previous road (plus EOS), scores candidates by model logit plus a
// trajectory-closeness reward, and keeps a small beam — DMM's [15]
// graph-constrained decoding with its RL reward approximated by the
// closeness shaping term.
func (s *seq2seq) constrainedDecode(ct traj.CellTrajectory, beamWidth int, rewardW float64) []roadnet.SegmentID {
	if beamWidth < 1 {
		beamWidth = 1
	}
	trajGeom := ct.Positions()

	type beam struct {
		prevRow int
		state   *nn.T
		path    []roadnet.SegmentID
		visited map[roadnet.SegmentID]bool
		score   float64
		steps   int
		done    bool
	}
	// isReverse reports whether b is the opposite direction of a (the
	// same street driven backwards) — an immediate U-turn.
	isReverse := func(a, b roadnet.SegmentID) bool {
		sa, sb := s.net.Segment(a), s.net.Segment(b)
		return sa.From == sb.To && sa.To == sb.From
	}
	norm := func(b beam) float64 {
		if b.steps == 0 {
			return b.score
		}
		return b.score / float64(b.steps)
	}
	tp := nn.NewTape()
	encStates, state0 := s.encode(tp, ct)
	minLen := s.minSteps(ct)
	// Bound wandering: a plausible path is at most a few times the
	// displacement estimate.
	maxLen := minLen*3 + 8
	if maxLen > s.cfg.MaxTarget {
		maxLen = s.cfg.MaxTarget
	}
	dest := ct[len(ct)-1].P

	// First step: restrict to segments near the first point.
	first := s.net.SegmentsNear(ct[0].P, 20)
	beams := []beam{{prevRow: s.bosRow(), state: state0}}

	for step := 0; step < maxLen; step++ {
		var next []beam
		for _, b := range beams {
			if b.done {
				next = append(next, b)
				continue
			}
			logits, state := s.decodeStep(tp, b.prevRow, b.state, encStates)
			// Allowed successors: graph continuations that do not
			// revisit a segment or immediately U-turn (reward farming
			// loops otherwise dominate the shaped decode).
			var allowed []roadnet.SegmentID
			if len(b.path) == 0 {
				allowed = first
			} else {
				last := b.path[len(b.path)-1]
				for _, sid := range s.net.Next(last) {
					if b.visited[sid] || isReverse(last, sid) {
						continue
					}
					allowed = append(allowed, sid)
				}
				if len(allowed) == 0 {
					// Dead end: permit the U-turn as a last resort.
					for _, sid := range s.net.Next(last) {
						if !b.visited[sid] {
							allowed = append(allowed, sid)
						}
					}
				}
			}
			type cand struct {
				sid   roadnet.SegmentID
				score float64
				eos   bool
			}
			var cands []cand
			// EOS allowed once the path plausibly covers the journey,
			// with a destination-proximity bonus (the RL reward of the
			// original DMM rewards ending near the trajectory's end).
			if len(b.path) >= minLen {
				eosScore := logits.Val.W[s.eosClass()]
				if rewardW > 0 {
					last := s.net.Segment(b.path[len(b.path)-1])
					d := last.Shape[len(last.Shape)-1].Dist(dest)
					eosScore += rewardW * math.Exp(-d/600)
				}
				cands = append(cands, cand{score: eosScore, eos: true})
			}
			for _, sid := range allowed {
				score := logits.Val.W[int(sid)]
				if rewardW > 0 {
					d := trajGeom.Dist(s.net.Segment(sid).Midpoint())
					score += rewardW * math.Exp(-d/600)
				}
				cands = append(cands, cand{sid: sid, score: score})
			}
			if len(cands) == 0 {
				b.done = true
				next = append(next, b)
				continue
			}
			sort.Slice(cands, func(x, y int) bool { return cands[x].score > cands[y].score })
			take := beamWidth
			if take > len(cands) {
				take = len(cands)
			}
			for _, c := range cands[:take] {
				nb := beam{
					prevRow: b.prevRow,
					state:   b.state,
					path:    b.path,
					visited: b.visited,
					score:   b.score + c.score,
					steps:   b.steps + 1,
					done:    c.eos,
				}
				if !c.eos {
					nb.prevRow = int(c.sid)
					nb.state = state
					nb.path = append(append([]roadnet.SegmentID(nil), b.path...), c.sid)
					nb.visited = make(map[roadnet.SegmentID]bool, len(b.visited)+1)
					for k := range b.visited {
						nb.visited[k] = true
					}
					nb.visited[c.sid] = true
				}
				next = append(next, nb)
			}
		}
		sort.Slice(next, func(x, y int) bool { return norm(next[x]) > norm(next[y]) })
		if len(next) > beamWidth {
			next = next[:beamWidth]
		}
		beams = next
		allDone := true
		for _, b := range beams {
			if !b.done {
				allDone = false
			}
		}
		if allDone {
			break
		}
	}
	best := beams[0]
	for _, b := range beams[1:] {
		if norm(b) > norm(best) {
			best = b
		}
	}
	return best.path
}

// deepMM wraps the unconstrained seq2seq as a Method.
type deepMM struct{ s *seq2seq }

// NewDeepMM builds and trains DeepMM [37] on the training trips.
func NewDeepMM(net *roadnet.Network, numTowers int, trips []*traj.Trip, cfg Seq2SeqConfig) (Method, error) {
	s := newSeq2Seq(net, numTowers, cfg)
	if err := s.train(trips); err != nil {
		return nil, err
	}
	return &deepMM{s: s}, nil
}

func (d *deepMM) Name() string { return "DeepMM" }

func (d *deepMM) Match(ct traj.CellTrajectory) (*Output, error) {
	if len(ct) == 0 {
		return nil, fmt.Errorf("baselines: empty trajectory")
	}
	return &Output{Path: d.s.greedyDecode(ct)}, nil
}

// dmm wraps the graph-constrained beam decoder as a Method.
type dmm struct{ s *seq2seq }

// NewDMM builds and trains DMM [15] on the training trips.
func NewDMM(net *roadnet.Network, numTowers int, trips []*traj.Trip, cfg Seq2SeqConfig) (Method, error) {
	s := newSeq2Seq(net, numTowers, cfg)
	if err := s.train(trips); err != nil {
		return nil, err
	}
	return &dmm{s: s}, nil
}

func (d *dmm) Name() string { return "DMM" }

func (d *dmm) Match(ct traj.CellTrajectory) (*Output, error) {
	if len(ct) == 0 {
		return nil, fmt.Errorf("baselines: empty trajectory")
	}
	return &Output{Path: d.s.constrainedDecode(ct, 3, 2.0)}, nil
}
