package baselines

import (
	"math"

	"repro/internal/hmm"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// ivmmObservation implements IVMM's [10] interactive voting: each
// point's candidate scores are boosted by distance-decayed votes from
// neighboring points — a candidate reachable from a neighbor's strong
// candidate by a plausible route collects that neighbor's support.
// This captures the mutual-influence weighting of the original
// algorithm at windowed scope.
type ivmmObservation struct {
	inner  *hmm.GaussianObservation
	router *roadnet.Router
	// window is how many neighbors on each side vote.
	window int
	// voteK bounds the neighbor candidates considered per vote.
	voteK int
}

func (v *ivmmObservation) Candidates(ct traj.CellTrajectory, i, k int) []hmm.Candidate {
	cands := v.inner.Candidates(ct, i, k)
	for idx := range cands {
		cands[idx].Obs = v.votedScore(ct, i, &cands[idx])
	}
	// Re-sort by the voted score.
	for a := 1; a < len(cands); a++ {
		for b := a; b > 0 && cands[b].Obs > cands[b-1].Obs; b-- {
			cands[b], cands[b-1] = cands[b-1], cands[b]
		}
	}
	return cands
}

func (v *ivmmObservation) Score(ct traj.CellTrajectory, i int, c *hmm.Candidate) float64 {
	return v.votedScore(ct, i, c)
}

// votedScore blends the static Gaussian score with neighbor votes.
func (v *ivmmObservation) votedScore(ct traj.CellTrajectory, i int, c *hmm.Candidate) float64 {
	static := v.inner.Score(ct, i, c)
	var votes, weightSum float64
	for j := i - v.window; j <= i+v.window; j++ {
		if j < 0 || j >= len(ct) || j == i {
			continue
		}
		// Mutual-influence weight decays with inter-point distance.
		w := math.Exp(-ct[i].P.Dist(ct[j].P) / 2000)
		weightSum += w
		neighbor := v.inner.Candidates(ct, j, v.voteK)
		best := 0.0
		for idx := range neighbor {
			nc := &neighbor[idx]
			var route roadnet.Route
			var ok bool
			if j < i {
				route, ok = v.router.RouteBetween(nc.Pos(), c.Pos())
			} else {
				route, ok = v.router.RouteBetween(c.Pos(), nc.Pos())
			}
			if !ok {
				continue
			}
			straight := ct[i].P.Dist(ct[j].P)
			vote := nc.Obs * math.Exp(-math.Abs(straight-route.Dist)/800)
			if vote > best {
				best = vote
			}
		}
		votes += w * best
	}
	if weightSum == 0 {
		return static
	}
	return 0.5*static + 0.5*votes/weightSum
}

// NewIVMM builds IVMM [10].
func NewIVMM(net *roadnet.Network, router *roadnet.Router, cfg CommonConfig) Method {
	cfg = cfg.withDefaults()
	return NewHMMMethod("IVMM", &hmm.Matcher{
		Net:    net,
		Router: router,
		Obs: &ivmmObservation{
			inner:  &hmm.GaussianObservation{Net: net, Sigma: cfg.Sigma},
			router: router,
			window: 2,
			voteK:  3,
		},
		Trans: &hmm.ExponentialTransition{Router: router, Beta: cfg.Beta},
		Cfg:   hmm.Config{K: cfg.K},
	})
}
