// Package baselines re-implements the comparison methods of the
// paper's Table II on this repository's substrate: the GPS-era HMM
// matchers (STM, IVMM, IFM, MCM), the CTMM-tailored HMM matchers
// (CLSTERS, SNet, THMM), and the seq2seq family (DeepMM,
// TransformerMM, DMM). Each captures the defining idea of its original
// at the fidelity Table II's relative comparison requires (see
// DESIGN.md §4).
package baselines

import (
	"repro/internal/hmm"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// Output is a matching result in method-neutral form.
type Output struct {
	Path []roadnet.SegmentID
	// Candidates holds the candidate segments per point for
	// HMM-family methods (hitting-ratio evaluation); nil otherwise.
	Candidates [][]roadnet.SegmentID
}

// Method is a map-matching algorithm under evaluation.
type Method interface {
	Name() string
	Match(ct traj.CellTrajectory) (*Output, error)
}

// hmmMethod wraps an hmm.Matcher as a Method.
type hmmMethod struct {
	name    string
	matcher *hmm.Matcher
}

// NewHMMMethod adapts a configured hmm.Matcher.
func NewHMMMethod(name string, m *hmm.Matcher) Method {
	return &hmmMethod{name: name, matcher: m}
}

func (h *hmmMethod) Name() string { return h.name }

func (h *hmmMethod) Match(ct traj.CellTrajectory) (*Output, error) {
	res, err := h.matcher.Match(ct)
	if err != nil {
		return nil, err
	}
	return resultToOutput(res), nil
}

// resultToOutput converts an hmm.Result.
func resultToOutput(res *hmm.Result) *Output {
	out := &Output{Path: res.Path, Candidates: make([][]roadnet.SegmentID, len(res.Candidates))}
	for i, layer := range res.Candidates {
		segs := make([]roadnet.SegmentID, len(layer))
		for j, c := range layer {
			segs[j] = c.Seg
		}
		out.Candidates[i] = segs
	}
	return out
}

// FuncMethod adapts a closure as a Method (used for LHMM and simple
// variants in the evaluation harness).
type FuncMethod struct {
	MethodName string
	Fn         func(ct traj.CellTrajectory) (*Output, error)
}

// Name returns the method name.
func (f *FuncMethod) Name() string { return f.MethodName }

// Match invokes the closure.
func (f *FuncMethod) Match(ct traj.CellTrajectory) (*Output, error) { return f.Fn(ct) }

// ResultToOutput exposes the hmm.Result conversion for adapters outside
// this package.
func ResultToOutput(res *hmm.Result) *Output { return resultToOutput(res) }
