package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// TransformerMM [38] replaces the recurrent seq2seq with a small
// transformer: a single-head scaled-dot-product self-attention encoder
// over the tower sequence and a causally-masked decoder with cross
// attention, both with RMS-normalized residual blocks.
type transformerMM struct {
	cfg      Seq2SeqConfig
	net      *roadnet.Network
	numRoads int

	towerEmb *nn.Embedding
	roadEmb  *nn.Embedding

	// Encoder block.
	encQ, encK, encV *nn.Param
	encFF            *nn.MLP
	// Decoder block.
	decQ, decK, decV *nn.Param // causal self-attention
	xQ, xK, xV       *nn.Param // cross attention
	decFF            *nn.MLP
	out              *nn.Linear
}

func (t *transformerMM) eosClass() int { return t.numRoads }
func (t *transformerMM) bosRow() int   { return t.numRoads }

// NewTransformerMM builds and trains TransformerMM on the training
// trips.
func NewTransformerMM(net *roadnet.Network, numTowers int, trips []*traj.Trip, cfg Seq2SeqConfig) (Method, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 300))
	d := cfg.Dim
	v := net.NumSegments()
	t := &transformerMM{
		cfg:      cfg,
		net:      net,
		numRoads: v,
		towerEmb: nn.NewEmbedding("tf.towerEmb", numTowers, d, rng),
		roadEmb:  nn.NewEmbedding("tf.roadEmb", v+1, d, rng),
		encQ:     nn.NewParam("tf.encQ", d, d, rng),
		encK:     nn.NewParam("tf.encK", d, d, rng),
		encV:     nn.NewParam("tf.encV", d, d, rng),
		encFF:    nn.NewMLP("tf.encFF", []int{d, 2 * d, d}, nn.ActReLU, rng),
		decQ:     nn.NewParam("tf.decQ", d, d, rng),
		decK:     nn.NewParam("tf.decK", d, d, rng),
		decV:     nn.NewParam("tf.decV", d, d, rng),
		xQ:       nn.NewParam("tf.xQ", d, d, rng),
		xK:       nn.NewParam("tf.xK", d, d, rng),
		xV:       nn.NewParam("tf.xV", d, d, rng),
		decFF:    nn.NewMLP("tf.decFF", []int{d, 2 * d, d}, nn.ActReLU, rng),
		out:      nn.NewLinear("tf.out", d, v+1, rng),
	}
	if err := t.train(trips); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *transformerMM) params() []*nn.Param {
	ps := append([]*nn.Param(nil), t.towerEmb.Params()...)
	ps = append(ps, t.roadEmb.Params()...)
	ps = append(ps, t.encQ, t.encK, t.encV, t.decQ, t.decK, t.decV, t.xQ, t.xK, t.xV)
	ps = append(ps, t.encFF.Params()...)
	ps = append(ps, t.decFF.Params()...)
	ps = append(ps, t.out.Params()...)
	return ps
}

// positional returns sinusoidal position encodings for n rows of dim d.
func positional(n, d int) *nn.Mat {
	pe := nn.NewMat(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			angle := float64(i) / math.Pow(10000, float64(2*(j/2))/float64(d))
			if j%2 == 0 {
				pe.Set(i, j, math.Sin(angle))
			} else {
				pe.Set(i, j, math.Cos(angle))
			}
		}
	}
	return pe
}

// attend computes single-head scaled-dot-product attention with an
// optional additive mask (nil for none).
func attend(tp *nn.Tape, q, k, v *nn.T, wq, wk, wv *nn.Param, mask *nn.Mat) *nn.T {
	Q := tp.MatMul(q, tp.Var(wq))
	K := tp.MatMul(k, tp.Var(wk))
	V := tp.MatMul(v, tp.Var(wv))
	scores := tp.Scale(tp.MatMul(Q, tp.Transpose(K)), 1/math.Sqrt(float64(Q.C())))
	if mask != nil {
		scores = tp.Add(scores, tp.Const(mask))
	}
	return tp.MatMul(tp.SoftmaxRows(scores), V)
}

// causalMask returns an n×n upper-triangular -1e9 mask.
func causalMask(n int) *nn.Mat {
	m := nn.NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, -1e9)
		}
	}
	return m
}

// encode runs the encoder block over the tower sequence.
func (t *transformerMM) encode(tp *nn.Tape, ct traj.CellTrajectory) *nn.T {
	ids := make([]int, len(ct))
	for i, cp := range ct {
		ids[i] = int(cp.Tower)
	}
	x := tp.Add(t.towerEmb.Forward(tp, ids), tp.Const(positional(len(ct), t.cfg.Dim)))
	att := attend(tp, x, x, x, t.encQ, t.encK, t.encV, nil)
	x = tp.RMSNorm(tp.Add(x, att), 1e-6)
	ff := t.encFF.Forward(tp, x)
	return tp.RMSNorm(tp.Add(x, ff), 1e-6)
}

// decode runs the decoder block over the (BOS-prefixed) target rows and
// returns per-position logits.
func (t *transformerMM) decode(tp *nn.Tape, inRows []int, enc *nn.T) *nn.T {
	x := tp.Add(t.roadEmb.Forward(tp, inRows), tp.Const(positional(len(inRows), t.cfg.Dim)))
	self := attend(tp, x, x, x, t.decQ, t.decK, t.decV, causalMask(len(inRows)))
	x = tp.RMSNorm(tp.Add(x, self), 1e-6)
	cross := attend(tp, x, enc, enc, t.xQ, t.xK, t.xV, nil)
	x = tp.RMSNorm(tp.Add(x, cross), 1e-6)
	ff := t.decFF.Forward(tp, x)
	x = tp.RMSNorm(tp.Add(x, ff), 1e-6)
	return t.out.Forward(tp, x)
}

func (t *transformerMM) train(trips []*traj.Trip) error {
	opt := nn.NewAdam()
	opt.LR = t.cfg.LR
	params := t.params()
	rng := rand.New(rand.NewSource(t.cfg.Seed + 400))
	for epoch := 0; epoch < t.cfg.Epochs; epoch++ {
		perm := rng.Perm(len(trips))
		for _, ti := range perm {
			tr := trips[ti]
			if len(tr.Cell) < 2 || len(tr.Path) == 0 {
				continue
			}
			target := tr.Path
			if len(target) > t.cfg.MaxTarget {
				target = target[:t.cfg.MaxTarget]
			}
			inRows := make([]int, 0, len(target)+1)
			labels := make([]int, 0, len(target)+1)
			inRows = append(inRows, t.bosRow())
			for _, sid := range target {
				labels = append(labels, int(sid))
				inRows = append(inRows, int(sid))
			}
			labels = append(labels, t.eosClass())
			// Drop the final input row (it has no next label).
			inRows = inRows[:len(labels)]

			tp := nn.NewTape()
			enc := t.encode(tp, tr.Cell)
			logits := t.decode(tp, inRows, enc)
			targetMat := nn.SmoothedTargets(len(labels), t.numRoads+1, labels, 0.05)
			loss := tp.CrossEntropy(logits, targetMat)
			if err := tp.Backward(loss); err != nil {
				return fmt.Errorf("baselines: transformer: %w", err)
			}
			nn.ClipGradNorm(params, 5)
			opt.Step(params)
		}
	}
	return nil
}

func (t *transformerMM) Name() string { return "TransformerMM" }

func (t *transformerMM) Match(ct traj.CellTrajectory) (*Output, error) {
	if len(ct) == 0 {
		return nil, fmt.Errorf("baselines: empty trajectory")
	}
	tp := nn.NewTape()
	enc := t.encode(tp, ct)
	rows := []int{t.bosRow()}
	var path []roadnet.SegmentID
	meanSeg := t.net.TotalLength() / float64(t.net.NumSegments())
	minLen := 1
	if meanSeg > 0 && len(ct) >= 2 {
		span := ct[0].P.Dist(ct[len(ct)-1].P)
		minLen = int(0.6 * span / meanSeg)
		if minLen < 1 {
			minLen = 1
		}
		if minLen > t.cfg.MaxTarget-1 {
			minLen = t.cfg.MaxTarget - 1
		}
	}
	for step := 0; step < t.cfg.MaxTarget; step++ {
		logits := t.decode(tp, rows, enc)
		last := logits.Val.Row(logits.R() - 1)
		best, bestV := 0, math.Inf(-1)
		for j, v := range last {
			if j == t.eosClass() && len(path) < minLen {
				continue
			}
			if v > bestV {
				best, bestV = j, v
			}
		}
		if best == t.eosClass() {
			break
		}
		sid := roadnet.SegmentID(best)
		if len(path) == 0 || path[len(path)-1] != sid {
			path = append(path, sid)
		}
		rows = append(rows, best)
	}
	return &Output{Path: path}, nil
}
