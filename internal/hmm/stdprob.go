package hmm

import (
	"math"

	"repro/internal/roadnet"
	"repro/internal/traj"
)

// GaussianObservation is the classical distance-based observation
// probability of Eq. 2: candidates are the k nearest segments and
// P_O ∝ exp(-0.5·((d-μ)/σ)²).
type GaussianObservation struct {
	Net *roadnet.Network
	// Sigma is the positioning-error standard deviation σ₁ in meters.
	// GPS matchers use tens of meters; cellular needs hundreds.
	Sigma float64
	// Mu is the mean error μ₁ (usually 0).
	Mu float64
}

// Candidates returns the k segments nearest to the point, scored by the
// Gaussian density (constant factor dropped — scores are relative).
func (g *GaussianObservation) Candidates(ct traj.CellTrajectory, i, k int) []Candidate {
	segs := g.Net.SegmentsNear(ct[i].P, k)
	out := make([]Candidate, 0, len(segs))
	for _, sid := range segs {
		c := Candidate{Seg: sid}
		c.Proj, c.Frac = g.Net.Project(sid, ct[i].P)
		c.Dist = c.Proj.Dist(ct[i].P)
		c.Obs = g.Score(ct, i, &c)
		out = append(out, c)
	}
	return out
}

// Score computes Eq. 2 for an arbitrary candidate.
func (g *GaussianObservation) Score(ct traj.CellTrajectory, i int, c *Candidate) float64 {
	sigma := g.Sigma
	if sigma <= 0 {
		sigma = 450
	}
	z := (c.Dist - g.Mu) / sigma
	return math.Exp(-0.5 * z * z)
}

// ExponentialTransition is the classical transition probability of
// Eq. 3: P_T ∝ exp(-|d_great - d_route| / β), penalizing routes much
// longer (or shorter) than the straight-line movement between points.
type ExponentialTransition struct {
	Router *roadnet.Router
	// Beta is the scale σ₂ in meters.
	Beta float64
}

// Score computes Eq. 3. Unreachable movements return ok=false.
func (e *ExponentialTransition) Score(ct traj.CellTrajectory, i int, from, to *Candidate) (float64, bool) {
	dist, ok := e.Router.RouteDist(from.Pos(), to.Pos())
	if !ok {
		return 0, false
	}
	beta := e.Beta
	if beta <= 0 {
		beta = 500
	}
	straight := ct[i-1].P.Dist(ct[i].P)
	return math.Exp(-math.Abs(straight-dist) / beta), true
}
