package hmm

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// gridWorld builds a w×h 100 m lattice network plus a router.
func gridWorld(t testing.TB, w, h int) (*roadnet.Network, *roadnet.Router) {
	t.Helper()
	var b roadnet.Builder
	for j := 0; j < h; j++ {
		for i := 0; i < w; i++ {
			b.AddNode(geo.Pt(float64(i)*100, float64(j)*100))
		}
	}
	id := func(i, j int) roadnet.NodeID { return roadnet.NodeID(j*w + i) }
	for j := 0; j < h; j++ {
		for i := 0; i < w; i++ {
			if i+1 < w {
				if _, _, err := b.AddTwoWay(id(i, j), id(i+1, j), roadnet.Local); err != nil {
					t.Fatal(err)
				}
			}
			if j+1 < h {
				if _, _, err := b.AddTwoWay(id(i, j), id(i, j+1), roadnet.Local); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n, roadnet.NewRouter(n)
}

func classicMatcher(net *roadnet.Network, r *roadnet.Router, k, shortcuts int) *Matcher {
	return &Matcher{
		Net:    net,
		Router: r,
		Obs:    &GaussianObservation{Net: net, Sigma: 100},
		Trans:  &ExponentialTransition{Router: r, Beta: 200},
		Cfg:    Config{K: k, Shortcuts: shortcuts},
	}
}

// trajAlong builds a cellular trajectory from raw positions at 60 s
// intervals.
func trajAlong(pts ...geo.Point) traj.CellTrajectory {
	ct := make(traj.CellTrajectory, len(pts))
	for i, p := range pts {
		ct[i] = traj.CellPoint{Tower: -1, P: p, T: float64(i) * 60}
	}
	return ct
}

func TestMatchEmptyTrajectory(t *testing.T) {
	net, r := gridWorld(t, 3, 3)
	m := classicMatcher(net, r, 5, 0)
	if _, err := m.Match(nil); err == nil {
		t.Error("empty trajectory did not error")
	}
}

func TestMatchStraightLine(t *testing.T) {
	net, r := gridWorld(t, 6, 3)
	m := classicMatcher(net, r, 8, 0)
	// Points along the y=100 row street with small offsets.
	ct := trajAlong(
		geo.Pt(20, 108), geo.Pt(150, 93), geo.Pt(290, 110), geo.Pt(420, 95), geo.Pt(490, 102),
	)
	res, err := m.Match(ct)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matched) != len(ct) {
		t.Fatalf("Matched len = %d", len(res.Matched))
	}
	// Every matched candidate lies on the y=100 row.
	for i, c := range res.Matched {
		seg := net.Segment(c.Seg)
		mid := seg.Midpoint()
		if math.Abs(mid.Y-100) > 1 {
			t.Errorf("point %d matched to segment at %v, want the y=100 street", i, mid)
		}
	}
	// The expanded path is contiguous.
	for i := 1; i < len(res.Path); i++ {
		a, b := net.Segment(res.Path[i-1]), net.Segment(res.Path[i])
		if a.To != b.From && a.From != b.From && a.To != b.To {
			// Allow the same-segment dedup; adjacency via shared node.
			t.Errorf("path discontinuity between %d and %d", res.Path[i-1], res.Path[i])
		}
	}
	// Path heads east: the first matched candidate is west of the last.
	if res.Matched[0].Proj.X >= res.Matched[4].Proj.X {
		t.Error("path does not progress eastward")
	}
}

func TestMatchPrefersSmootherPath(t *testing.T) {
	// A noisy middle point pulls the naive nearest match off the row;
	// the transition term must keep the path on the straight street.
	net, r := gridWorld(t, 6, 5)
	m := classicMatcher(net, r, 10, 0)
	ct := trajAlong(
		geo.Pt(20, 205), geo.Pt(160, 230), geo.Pt(250, 280), geo.Pt(380, 210), geo.Pt(480, 200),
	)
	res, err := m.Match(ct)
	if err != nil {
		t.Fatal(err)
	}
	// The route should stay on y=200 (or at worst adjacent), not detour
	// up to y=300.
	for _, sid := range res.Path {
		if mid := net.Segment(sid).Midpoint(); mid.Y > 300 {
			t.Errorf("path detoured to %v", mid)
		}
	}
}

// TestShortcutSkipsNoisyPoint builds the paper's Observation 1 scenario
// directly: a point with such a high positioning error that its entire
// candidate set lies on a disconnected side street (an unqualified
// candidate set). Ordinary Viterbi is forced through it; the shortcut
// restores the projected road on the true street and skips the point.
func TestShortcutSkipsNoisyPoint(t *testing.T) {
	var b roadnet.Builder
	// Main street: nodes along y=300 every 100 m.
	var main []roadnet.NodeID
	for i := 0; i <= 8; i++ {
		main = append(main, b.AddNode(geo.Pt(float64(i)*100, 300)))
	}
	for i := 0; i+1 <= 8; i++ {
		if _, _, err := b.AddTwoWay(main[i], main[i+1], roadnet.Local); err != nil {
			t.Fatal(err)
		}
	}
	// Isolated side street near y=700 (not connected to the main one).
	s0 := b.AddNode(geo.Pt(150, 700))
	s1 := b.AddNode(geo.Pt(350, 700))
	if _, _, err := b.AddTwoWay(s0, s1, roadnet.Local); err != nil {
		t.Fatal(err)
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := roadnet.NewRouter(net)

	// The middle point's error puts it next to the isolated street, so
	// with K=2 its candidates are both on it.
	ct := trajAlong(
		geo.Pt(30, 310), geo.Pt(130, 295), geo.Pt(250, 690), geo.Pt(370, 305), geo.Pt(480, 300),
		geo.Pt(600, 295),
	)
	base := classicMatcher(net, r, 2, 0)
	with := classicMatcher(net, r, 2, 1)

	resBase, err := base.Match(ct)
	if err != nil {
		t.Fatal(err)
	}
	resWith, err := with.Match(ct)
	if err != nil {
		t.Fatal(err)
	}
	onIsolated := func(c Candidate) bool {
		return net.Segment(c.Seg).Midpoint().Y > 500
	}
	// Without shortcuts, the noisy point is matched to the unreachable
	// side street.
	if !onIsolated(resBase.Matched[2]) {
		t.Fatalf("baseline did not match the noisy point to the side street")
	}
	// With shortcuts, the pseudo-candidate on the main street replaces
	// it and the point is marked skipped.
	if onIsolated(resWith.Matched[2]) {
		t.Errorf("shortcut run still matched the side street")
	}
	if !resWith.Skipped[2] {
		t.Error("noisy point not marked skipped")
	}
	// The shortcut path never touches the isolated street.
	for _, sid := range resWith.Path {
		if net.Segment(sid).Midpoint().Y > 500 {
			t.Errorf("shortcut path includes the isolated street")
		}
	}
	// Shortcut run scores at least as high.
	if resWith.Score < resBase.Score {
		t.Errorf("shortcut lowered score: %v < %v", resWith.Score, resBase.Score)
	}
}

func TestGaussianObservation(t *testing.T) {
	net, _ := gridWorld(t, 3, 3)
	g := &GaussianObservation{Net: net, Sigma: 100}
	ct := trajAlong(geo.Pt(50, 10))
	cands := g.Candidates(ct, 0, 4)
	if len(cands) != 4 {
		t.Fatalf("got %d candidates", len(cands))
	}
	// Scores descend with distance.
	for i := 1; i < len(cands); i++ {
		if cands[i-1].Dist > cands[i].Dist+1e-9 {
			t.Error("candidates not sorted by distance")
		}
		if cands[i-1].Obs < cands[i].Obs-1e-12 {
			t.Error("observation scores not descending")
		}
	}
	// The nearest candidate is the y=0 street under the point.
	if cands[0].Dist > 10+1e-9 {
		t.Errorf("nearest candidate at distance %v", cands[0].Dist)
	}
	// Zero sigma falls back to a sane default rather than NaN.
	g0 := &GaussianObservation{Net: net}
	if s := g0.Score(ct, 0, &cands[0]); math.IsNaN(s) || s <= 0 {
		t.Errorf("default-sigma score = %v", s)
	}
}

func TestExponentialTransition(t *testing.T) {
	net, r := gridWorld(t, 4, 1)
	e := &ExponentialTransition{Router: r, Beta: 100}
	g := &GaussianObservation{Net: net, Sigma: 100}
	ct := trajAlong(geo.Pt(50, 5), geo.Pt(250, 5))
	a := g.Candidates(ct, 0, 1)[0]
	b := g.Candidates(ct, 1, 1)[0]
	s, ok := e.Score(ct, 1, &a, &b)
	if !ok {
		t.Fatal("transition not ok")
	}
	// Straight distance 200, route distance 200: near-perfect score.
	if s < 0.9 {
		t.Errorf("aligned transition score = %v", s)
	}
	// A candidate pair demanding a huge detour scores lower.
	far := a
	far.Frac = 0.99
	s2, ok := e.Score(ct, 1, &b, &far) // backwards movement
	if ok && s2 > s {
		t.Errorf("detour scored higher: %v > %v", s2, s)
	}
}

func TestMatchResultCandidatesExposed(t *testing.T) {
	net, r := gridWorld(t, 4, 4)
	m := classicMatcher(net, r, 5, 1)
	ct := trajAlong(geo.Pt(10, 105), geo.Pt(210, 95), geo.Pt(310, 105))
	res, err := m.Match(ct)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 3 {
		t.Fatalf("Candidates layers = %d", len(res.Candidates))
	}
	for i, layer := range res.Candidates {
		if len(layer) == 0 || len(layer) > 5 {
			t.Errorf("layer %d has %d candidates", i, len(layer))
		}
		// No pseudo-candidates leak into the exposed sets.
		for _, c := range layer {
			if c.pseudo {
				t.Error("pseudo candidate in exposed set")
			}
		}
	}
}

func TestMatchSinglePoint(t *testing.T) {
	net, r := gridWorld(t, 3, 3)
	m := classicMatcher(net, r, 5, 1)
	ct := trajAlong(geo.Pt(120, 95))
	res, err := m.Match(ct)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matched) != 1 || len(res.Path) != 1 {
		t.Fatalf("single-point result: %d matched, path %v", len(res.Matched), res.Path)
	}
}

func TestLogSpaceScoring(t *testing.T) {
	net, r := gridWorld(t, 6, 3)
	m := classicMatcher(net, r, 8, 0)
	m.Cfg.Scoring = ScoreLogProd
	ct := trajAlong(
		geo.Pt(20, 108), geo.Pt(150, 93), geo.Pt(290, 110), geo.Pt(420, 95),
	)
	res, err := m.Match(ct)
	if err != nil {
		t.Fatal(err)
	}
	// Log-product scores are non-positive sums of logs.
	if res.Score > 0 {
		t.Errorf("log-space score = %v, want <= 0", res.Score)
	}
	// The easy straight-line case matches the same street either way.
	m2 := classicMatcher(net, r, 8, 0)
	res2, err := m2.Match(ct)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Path) == 0 || len(res2.Path) == 0 {
		t.Fatal("empty paths")
	}
	for i, c := range res.Matched {
		if net.Segment(c.Seg).Midpoint().Y != net.Segment(res2.Matched[i].Seg).Midpoint().Y {
			t.Errorf("point %d: scoring modes diverge on the trivial case", i)
		}
	}
	// accum floors zero and tiny probabilities.
	if got := m.accum(0); got != -20 {
		t.Errorf("accum(0) = %v, want -20", got)
	}
	if got := m.accum(1e-300); got != -20 {
		t.Errorf("accum(tiny) = %v, want -20", got)
	}
}

func TestMatchTraceCollected(t *testing.T) {
	net, r := gridWorld(t, 8, 3)
	m := classicMatcher(net, r, 6, 1)
	m.Cfg.Trace = true
	ct := trajAlong(
		geo.Pt(20, 108), geo.Pt(150, 93), geo.Pt(290, 110),
		geo.Pt(420, 95), geo.Pt(550, 104),
	)
	res, err := m.Match(ct)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr == nil {
		t.Fatal("Cfg.Trace set but Result.Trace is nil")
	}
	if len(tr.Points) != len(ct) {
		t.Fatalf("trace has %d points for %d-point trajectory", len(tr.Points), len(ct))
	}
	for i, pt := range tr.Points {
		if pt.Candidates <= 0 {
			t.Errorf("point %d: candidates = %d", i, pt.Candidates)
		}
		if pt.BestObs <= 0 || pt.BestObs < pt.MeanObs {
			t.Errorf("point %d: best %v < mean %v", i, pt.BestObs, pt.MeanObs)
		}
		if i > 0 && pt.TransEvaluated <= 0 {
			t.Errorf("point %d: no transitions evaluated", i)
		}
		if pt.TransReachable > pt.TransEvaluated {
			t.Errorf("point %d: reachable %d > evaluated %d", i, pt.TransReachable, pt.TransEvaluated)
		}
	}
	if tr.TotalCandidates() <= 0 {
		t.Error("TotalCandidates = 0")
	}
	if tr.Stages.TotalS <= 0 {
		t.Errorf("stage total = %v", tr.Stages.TotalS)
	}
	sumStages := tr.Stages.CandidatesS + tr.Stages.ViterbiS + tr.Stages.ShortcutsS +
		tr.Stages.BacktrackS + tr.Stages.ExpandS
	if sumStages > tr.Stages.TotalS {
		t.Errorf("stage sum %v exceeds total %v", sumStages, tr.Stages.TotalS)
	}
	if tr.ShortcutAdoptions != res.ShortcutAdoptions {
		t.Errorf("trace adoptions %d != result %d", tr.ShortcutAdoptions, res.ShortcutAdoptions)
	}
	if tr.ShortcutAttempts < tr.ShortcutAdoptions {
		t.Errorf("attempts %d < adoptions %d", tr.ShortcutAttempts, tr.ShortcutAdoptions)
	}

	// Tracing off: no trace allocated.
	m.Cfg.Trace = false
	res, err = m.Match(ct)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("trace collected with Cfg.Trace off")
	}
}

func TestMatchCountersRecorded(t *testing.T) {
	obs.Default.Enable()
	t.Cleanup(obs.Default.Disable)
	matches := obs.Default.Counter("hmm.matches")
	cands := obs.Default.Counter("hmm.candidates")
	before, candsBefore := matches.Value(), cands.Value()

	net, r := gridWorld(t, 6, 3)
	m := classicMatcher(net, r, 5, 0)
	ct := trajAlong(geo.Pt(20, 100), geo.Pt(150, 100), geo.Pt(290, 100))
	if _, err := m.Match(ct); err != nil {
		t.Fatal(err)
	}
	if got := matches.Value() - before; got != 1 {
		t.Errorf("hmm.matches delta = %d, want 1", got)
	}
	if got := cands.Value() - candsBefore; got <= 0 {
		t.Errorf("hmm.candidates delta = %d, want > 0", got)
	}
}
