package hmm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/traj"
)

// bruteBestScore enumerates every candidate path (no shortcuts, no
// restarts) and returns the maximum Eq. 14 score, mirroring the
// matcher's scoring exactly: sum over steps of P_T·P_O with the first
// point contributing its observation.
func bruteBestScore(m *Matcher, ct traj.CellTrajectory, layers [][]Candidate) float64 {
	best := math.Inf(-1)
	idx := make([]int, len(layers))
	var rec func(i int, score float64)
	rec = func(i int, score float64) {
		if i == len(layers) {
			if score > best {
				best = score
			}
			return
		}
		for j := range layers[i] {
			idx[i] = j
			if i == 0 {
				rec(i+1, layers[0][j].Obs)
				continue
			}
			w, ok := m.stepScore(ct, i, &layers[i-1][idx[i-1]], &layers[i][j], nil)
			if !ok {
				continue
			}
			rec(i+1, score+w)
		}
	}
	rec(0, 0)
	return best
}

// TestViterbiOptimality cross-checks the dynamic program against brute
// force on small random instances: with shortcuts disabled and all
// transitions reachable, Viterbi must return the globally best
// candidate path score.
func TestViterbiOptimality(t *testing.T) {
	net, r := gridWorld(t, 6, 6)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(3)
		ct := make(traj.CellTrajectory, n)
		// A wandering track inside the grid.
		x, y := 100+rng.Float64()*200, 100+rng.Float64()*200
		for i := 0; i < n; i++ {
			x += rng.Float64() * 120
			y += rng.Float64()*160 - 80
			ct[i] = traj.CellPoint{Tower: -1, P: geo.Pt(x, y), T: float64(i) * 60}
		}
		m := classicMatcher(net, r, 3, 0)
		res, err := m.Match(ct)
		if err != nil {
			t.Fatal(err)
		}
		// Rebuild the same candidate layers the matcher used.
		layers := make([][]Candidate, n)
		reachableEverywhere := true
		for i := range ct {
			layers[i] = m.Obs.Candidates(ct, i, 3)
		}
		for i := 1; i < n && reachableEverywhere; i++ {
			for j := range layers[i-1] {
				for k := range layers[i] {
					if _, ok := m.stepScore(ct, i, &layers[i-1][j], &layers[i][k], nil); !ok {
						reachableEverywhere = false
					}
				}
			}
		}
		if !reachableEverywhere {
			continue // restarts make brute force incomparable
		}
		want := bruteBestScore(m, ct, layers)
		if math.Abs(res.Score-want) > 1e-9 {
			t.Fatalf("trial %d: Viterbi score %v, brute force %v", trial, res.Score, want)
		}
	}
}

// TestShortcutNeverLowersScore pins the invariant of Algorithm 2: the
// shortcut pass only replaces table entries with strictly higher
// scores, so enabling shortcuts can never reduce the final path score.
func TestShortcutNeverLowersScore(t *testing.T) {
	net, r := gridWorld(t, 7, 7)
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(4)
		ct := make(traj.CellTrajectory, n)
		x, y := 100.0, 300.0
		for i := 0; i < n; i++ {
			x += 60 + rng.Float64()*100
			y += rng.Float64()*300 - 150
			ct[i] = traj.CellPoint{Tower: -1, P: geo.Pt(x, y), T: float64(i) * 60}
		}
		without := classicMatcher(net, r, 3, 0)
		with := classicMatcher(net, r, 3, 2)
		a, err := without.Match(ct)
		if err != nil {
			t.Fatal(err)
		}
		b, err := with.Match(ct)
		if err != nil {
			t.Fatal(err)
		}
		if b.Score < a.Score-1e-9 {
			t.Fatalf("trial %d: shortcuts lowered score %v -> %v", trial, a.Score, b.Score)
		}
	}
}
