package hmm

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// Streaming telemetry (internal/obs). The pending gauge is the live
// emit lag: points pushed but not yet finalized, aggregated across all
// StreamMatchers reporting into the Default registry.
var (
	obsStreamPushes  = obs.Default.Counter("stream.pushes")
	obsStreamEmitted = obs.Default.Counter("stream.emitted")
	obsStreamBreaks  = obs.Default.Counter("stream.breaks")
	obsStreamErrors  = obs.Default.Counter("stream.errors")
	obsStreamPending = obs.Default.Gauge("stream.pending")
)

// StreamMatcher is an online variant of the matcher: points arrive one
// at a time and matches are emitted with a fixed lag (fixed-lag
// smoothing over the same candidate-graph Viterbi recurrence). A match
// for point i becomes final once point i+Lag has been processed —
// enough look-ahead for the transition evidence to disambiguate, while
// keeping bounded latency for real-time pipelines (SnapNet's setting
// [12]).
//
// The matcher's fault-tolerance configuration carries over: the
// Cfg.OnBreak policy decides whether a dead point (no candidates)
// errors the push, is skipped, or opens a stitch gap; Cfg.Sanitize
// applies per point as it arrives; and non-finite model scores degrade
// to the classical Eq. 2/3 fallbacks exactly as in batch mode.
//
// Shortcuts are not applied in streaming mode: Algorithm 2 revises
// earlier table entries, which would contradict already-emitted
// matches. Use the batch Matcher when offline accuracy matters most.
type StreamMatcher struct {
	M *Matcher
	// Lag is the number of future points observed before a match is
	// finalized. 0 emits greedily per point.
	Lag int

	ct      traj.CellTrajectory
	layers  [][]Candidate
	f       [][]float64
	pre     [][]int
	dead    []bool
	emitted int // points finalized so far
	matched []Candidate
	gaps    []Gap
	srep    traj.SanitizeReport
	lastT   float64
	deg     atomic.Int64
}

// NewStreamMatcher wraps a configured Matcher for streaming use.
func NewStreamMatcher(m *Matcher, lag int) *StreamMatcher {
	if lag < 0 {
		lag = 0
	}
	return &StreamMatcher{M: m, Lag: lag, lastT: math.Inf(-1)}
}

// Push processes the next trajectory point and returns any newly
// finalized matches (zero or one per call in steady state). A dead
// point — no candidates — errors under the BreakError policy and is
// otherwise absorbed per the configured policy, contributing a zero
// Candidate with Dead()[i] set to the emitted stream. A malformed
// point (non-finite coordinates, non-increasing timestamp) errors
// under strict sanitization and is dropped entirely — no index is
// consumed — under drop mode.
func (s *StreamMatcher) Push(p traj.CellPoint) ([]Candidate, error) {
	switch s.M.Cfg.Sanitize {
	case traj.SanitizeOff:
	default:
		bad, why := "", ""
		if !traj.FinitePoint(p) {
			bad, why = "non-finite coordinates or timestamp", "coords"
		} else if p.T <= s.lastT {
			bad, why = fmt.Sprintf("timestamp %v does not increase over %v", p.T, s.lastT), "time"
		}
		if bad != "" {
			if s.M.Cfg.Sanitize == traj.SanitizeStrict {
				obsStreamErrors.Inc()
				return nil, fmt.Errorf("hmm: stream: point %d: %s", len(s.ct), bad)
			}
			if why == "coords" {
				s.srep.BadCoords++
			} else {
				s.srep.BadTimes++
			}
			obsSanitizedPts.Inc()
			return nil, nil
		}
		s.lastT = p.T
	}
	obsStreamPushes.Inc()
	s.ct = append(s.ct, p)
	i := len(s.ct) - 1
	k := s.M.Cfg.K
	if k <= 0 {
		k = 30
	}
	layer := s.M.Obs.Candidates(s.ct, i, k)
	if fpDeadCandidates.Fail() {
		layer = nil
	}
	for j := range layer {
		if o := layer[j].Obs; math.IsNaN(o) || math.IsInf(o, 0) {
			layer[j].Obs = s.M.fallbackObs(layer[j].Dist)
			s.deg.Add(1)
			obsMatchDegraded.Inc()
		}
	}
	if len(layer) == 0 {
		if s.M.Cfg.OnBreak == BreakError {
			obsStreamErrors.Inc()
			return nil, fmt.Errorf("hmm: stream: no candidates for point %d", i)
		}
		// Dead point: consume the index with placeholder state so the
		// emitted stream stays aligned with the pushed points.
		s.layers = append(s.layers, nil)
		s.f = append(s.f, nil)
		s.pre = append(s.pre, nil)
		s.dead = append(s.dead, true)
		obsDeadPoints.Inc()
		out := s.emitUpTo(len(s.ct) - 1 - s.Lag)
		obsStreamEmitted.Add(int64(len(out)))
		obsStreamPending.Set(int64(s.Pending()))
		return out, nil
	}
	s.dead = append(s.dead, false)
	s.layers = append(s.layers, layer)
	f := make([]float64, len(layer))
	pre := make([]int, len(layer))
	pa := s.prevAlive(i)
	switch {
	case pa < 0:
		// First alive point.
		for j := range layer {
			f[j] = s.M.accum(layer[j].Obs)
			pre[j] = -1
		}
	case pa != i-1:
		// Dead gap immediately behind: no transition evidence bridges
		// it, so the chain restarts from fresh observation scores.
		for j := range layer {
			f[j] = s.M.accum(layer[j].Obs)
			pre[j] = -1
		}
	default:
		restarts := 0
		for kk := range layer {
			best, bestJ := math.Inf(-1), -1
			for j := range s.layers[i-1] {
				if math.IsInf(s.f[i-1][j], -1) {
					continue
				}
				w, ok := s.M.stepScore(s.ct, i, &s.layers[i-1][j], &layer[kk], &s.deg)
				if !ok {
					continue
				}
				if sc := s.f[i-1][j] + w; sc > best {
					best, bestJ = sc, j
				}
			}
			if bestJ < 0 {
				f[kk] = s.M.accum(layer[kk].Obs)
				pre[kk] = -1
				restarts++
				continue
			}
			f[kk] = best
			pre[kk] = bestJ
		}
		if restarts == len(layer) {
			// The chain broke here: every candidate restarted from its
			// observation score (the streaming analogue of the batch
			// matcher's break-and-recover event).
			obsStreamBreaks.Inc()
		}
	}
	s.f = append(s.f, f)
	s.pre = append(s.pre, pre)

	out := s.emitUpTo(len(s.ct) - 1 - s.Lag)
	obsStreamEmitted.Add(int64(len(out)))
	obsStreamPending.Set(int64(s.Pending()))
	return out, nil
}

// prevAlive returns the last alive index before i, or -1.
func (s *StreamMatcher) prevAlive(i int) int {
	for p := i - 1; p >= 0; p-- {
		if !s.dead[p] {
			return p
		}
	}
	return -1
}

// Flush finalizes all remaining points and returns their matches.
func (s *StreamMatcher) Flush() []Candidate {
	out := s.emitUpTo(len(s.ct) - 1)
	obsStreamEmitted.Add(int64(len(out)))
	obsStreamPending.Set(int64(s.Pending()))
	return out
}

// Pending returns the current emit lag: points pushed but not yet
// finalized. It grows toward Lag during warm-up, holds at Lag in
// steady state, and Flush drives it to zero.
func (s *StreamMatcher) Pending() int { return len(s.ct) - s.emitted }

// emitUpTo finalizes matches for points [emitted, until] by
// backtracking from the current best terminal candidate. Dead points
// emit a zero Candidate; under the Split policy, chain breaks whose
// entry point falls inside the newly finalized window are recorded as
// Gaps (each boundary exactly once, since the window only advances).
func (s *StreamMatcher) emitUpTo(until int) []Candidate {
	if until < s.emitted || len(s.ct) == 0 {
		return nil
	}
	split := s.M.Cfg.OnBreak == BreakSplit
	argmaxF := func(i int) int {
		best, idx := math.Inf(-1), 0
		for j, v := range s.f[i] {
			if v > best {
				best, idx = v, j
			}
		}
		return idx
	}
	last := len(s.ct) - 1
	for last >= 0 && s.dead[last] {
		last--
	}
	chain := make([]int, len(s.ct))
	for i := range chain {
		chain[i] = -1
	}
	if last >= 0 {
		idx := argmaxF(last)
		i := last
		for i >= 0 {
			chain[i] = idx
			p := s.prevAlive(i)
			if p < 0 {
				break
			}
			inWindow := i >= s.emitted && i <= until
			if p != i-1 {
				if split && inWindow {
					s.gaps = append(s.gaps, Gap{From: p, To: i, Reason: GapNoCandidates})
					obsMatchGaps.Inc()
				}
				idx = argmaxF(p)
			} else if next := s.pre[i][idx]; next < 0 {
				if split && inWindow {
					s.gaps = append(s.gaps, Gap{From: p, To: i, Reason: GapViterbiBreak})
					obsMatchGaps.Inc()
				}
				idx = argmaxF(p)
			} else {
				idx = next
			}
			i = p
		}
	}
	var out []Candidate
	for i := s.emitted; i <= until; i++ {
		var c Candidate
		if !s.dead[i] && chain[i] >= 0 {
			c = s.layers[i][chain[i]]
		}
		s.matched = append(s.matched, c)
		out = append(out, c)
	}
	s.emitted = until + 1
	return out
}

// Matched returns all finalized matches so far. Indices align with the
// accepted (pushed and not sanitizer-dropped) points; dead points hold
// a zero Candidate.
func (s *StreamMatcher) Matched() []Candidate { return s.matched }

// Dead reports which accepted points had no candidates (only possible
// under the Skip/Split policies).
func (s *StreamMatcher) Dead() []bool { return s.dead }

// Gaps returns the stitch boundaries finalized so far, in emit order
// (Split policy only). Gaps were appended as the backtrack walked each
// finalized window right-to-left, so within a window they appear in
// reverse trajectory order.
func (s *StreamMatcher) Gaps() []Gap { return s.gaps }

// Degraded returns how many scoring events fell back to the classical
// Eq. 2/3 models because a model returned NaN/Inf.
func (s *StreamMatcher) Degraded() int { return int(s.deg.Load()) }

// Sanitize reports the points dropped so far by drop-mode per-point
// sanitization (those points consume no stream index).
func (s *StreamMatcher) Sanitize() traj.SanitizeReport { return s.srep }

// Path expands the finalized matches into a connected traveled path.
// Under Split, the path is not routed across recorded Gaps.
func (s *StreamMatcher) Path() []roadnet.SegmentID {
	alive := make([]int, 0, len(s.matched))
	for i := range s.matched {
		if !s.dead[i] {
			alive = append(alive, i)
		}
	}
	noRouteTo := make(map[int]bool, len(s.gaps))
	for _, g := range s.gaps {
		noRouteTo[g.To] = true
	}
	return s.M.expandPath(s.matched, alive, noRouteTo)
}
