package hmm

import (
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// Streaming telemetry (internal/obs). The pending gauge is the live
// emit lag: points pushed but not yet finalized, aggregated across all
// StreamMatchers reporting into the Default registry.
var (
	obsStreamPushes  = obs.Default.Counter("stream.pushes")
	obsStreamEmitted = obs.Default.Counter("stream.emitted")
	obsStreamBreaks  = obs.Default.Counter("stream.breaks")
	obsStreamErrors  = obs.Default.Counter("stream.errors")
	obsStreamPending = obs.Default.Gauge("stream.pending")
)

// StreamMatcher is an online variant of the matcher: points arrive one
// at a time and matches are emitted with a fixed lag (fixed-lag
// smoothing over the same candidate-graph Viterbi recurrence). A match
// for point i becomes final once point i+Lag has been processed —
// enough look-ahead for the transition evidence to disambiguate, while
// keeping bounded latency for real-time pipelines (SnapNet's setting
// [12]).
//
// Shortcuts are not applied in streaming mode: Algorithm 2 revises
// earlier table entries, which would contradict already-emitted
// matches. Use the batch Matcher when offline accuracy matters most.
type StreamMatcher struct {
	M *Matcher
	// Lag is the number of future points observed before a match is
	// finalized. 0 emits greedily per point.
	Lag int

	ct      traj.CellTrajectory
	layers  [][]Candidate
	f       [][]float64
	pre     [][]int
	emitted int // points finalized so far
	matched []Candidate
}

// NewStreamMatcher wraps a configured Matcher for streaming use.
func NewStreamMatcher(m *Matcher, lag int) *StreamMatcher {
	if lag < 0 {
		lag = 0
	}
	return &StreamMatcher{M: m, Lag: lag}
}

// Push processes the next trajectory point and returns any newly
// finalized matches (zero or one per call in steady state).
func (s *StreamMatcher) Push(p traj.CellPoint) ([]Candidate, error) {
	obsStreamPushes.Inc()
	s.ct = append(s.ct, p)
	i := len(s.ct) - 1
	k := s.M.Cfg.K
	if k <= 0 {
		k = 30
	}
	layer := s.M.Obs.Candidates(s.ct, i, k)
	if len(layer) == 0 {
		obsStreamErrors.Inc()
		return nil, fmt.Errorf("hmm: stream: no candidates for point %d", i)
	}
	s.layers = append(s.layers, layer)
	f := make([]float64, len(layer))
	pre := make([]int, len(layer))
	if i == 0 {
		for j := range layer {
			f[j] = s.M.accum(layer[j].Obs)
			pre[j] = -1
		}
	} else {
		restarts := 0
		for kk := range layer {
			best, bestJ := math.Inf(-1), -1
			for j := range s.layers[i-1] {
				if math.IsInf(s.f[i-1][j], -1) {
					continue
				}
				w, ok := s.M.stepScore(s.ct, i, &s.layers[i-1][j], &layer[kk])
				if !ok {
					continue
				}
				if sc := s.f[i-1][j] + w; sc > best {
					best, bestJ = sc, j
				}
			}
			if bestJ < 0 {
				f[kk] = s.M.accum(layer[kk].Obs)
				pre[kk] = -1
				restarts++
				continue
			}
			f[kk] = best
			pre[kk] = bestJ
		}
		if restarts == len(layer) {
			// The chain broke here: every candidate restarted from its
			// observation score (the streaming analogue of the batch
			// matcher's break-and-recover event).
			obsStreamBreaks.Inc()
		}
	}
	s.f = append(s.f, f)
	s.pre = append(s.pre, pre)

	out := s.emitUpTo(len(s.ct) - 1 - s.Lag)
	obsStreamEmitted.Add(int64(len(out)))
	obsStreamPending.Set(int64(s.Pending()))
	return out, nil
}

// Flush finalizes all remaining points and returns their matches.
func (s *StreamMatcher) Flush() []Candidate {
	out := s.emitUpTo(len(s.ct) - 1)
	obsStreamEmitted.Add(int64(len(out)))
	obsStreamPending.Set(int64(s.Pending()))
	return out
}

// Pending returns the current emit lag: points pushed but not yet
// finalized. It grows toward Lag during warm-up, holds at Lag in
// steady state, and Flush drives it to zero.
func (s *StreamMatcher) Pending() int { return len(s.ct) - s.emitted }

// emitUpTo finalizes matches for points [emitted, until] by
// backtracking from the current best terminal candidate.
func (s *StreamMatcher) emitUpTo(until int) []Candidate {
	if until < s.emitted || len(s.ct) == 0 {
		return nil
	}
	last := len(s.ct) - 1
	bestIdx, best := 0, math.Inf(-1)
	for j, v := range s.f[last] {
		if v > best {
			best, bestIdx = v, j
		}
	}
	// Backtrack the whole chain, then emit the prefix.
	chain := make([]int, last+1)
	idx := bestIdx
	for i := last; i >= 0; i-- {
		chain[i] = idx
		if i > 0 {
			idx = s.pre[i][idx]
			if idx < 0 {
				bestPrev, b := 0, math.Inf(-1)
				for j, v := range s.f[i-1] {
					if v > b {
						b, bestPrev = v, j
					}
				}
				idx = bestPrev
			}
		}
	}
	var out []Candidate
	for i := s.emitted; i <= until; i++ {
		c := s.layers[i][chain[i]]
		s.matched = append(s.matched, c)
		out = append(out, c)
	}
	s.emitted = until + 1
	return out
}

// Matched returns all finalized matches so far.
func (s *StreamMatcher) Matched() []Candidate { return s.matched }

// Path expands the finalized matches into a connected traveled path.
func (s *StreamMatcher) Path() []roadnet.SegmentID {
	return s.M.expandPath(s.matched)
}
