// Package hmm provides the HMM map-matching backbone shared by LHMM and
// the HMM-family baselines: candidate road preparation, the candidate
// graph, Viterbi path-finding (Algorithm 1), the shortcut optimization
// that skips unqualified candidate sets (Algorithm 2, Observation 1),
// and the classical distance-based probability models (Eqs. 2–3).
//
// The matcher is fault-tolerant by configuration: Config.OnBreak
// selects whether a point with no candidates aborts the match (the
// paper's assumption), is skipped, or splits the trajectory into
// independently matched segments stitched with Gap markers;
// Config.Sanitize validates or repairs malformed input points; and
// non-finite probabilities from a misbehaving model degrade per step to
// the classical Eq. 2/3 models instead of poisoning the Viterbi table.
package hmm

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// Matcher telemetry (internal/obs). Hot loops accumulate into locals
// and flush once per Match, so the disabled-registry cost is a handful
// of atomic loads per trajectory.
var (
	obsMatches       = obs.Default.Counter("hmm.matches")
	obsMatchErrors   = obs.Default.Counter("hmm.match.errors")
	obsCandidates    = obs.Default.Counter("hmm.candidates")
	obsTransEval     = obs.Default.Counter("hmm.transitions.evaluated")
	obsTransBlocked  = obs.Default.Counter("hmm.transitions.unreachable")
	obsViterbiBreaks = obs.Default.Counter("hmm.viterbi.breaks")
	obsShortcutTries = obs.Default.Counter("hmm.shortcut.attempts")
	obsShortcutAdopt = obs.Default.Counter("hmm.shortcut.adoptions")
	obsPointsSkipped = obs.Default.Counter("hmm.points.skipped")
	obsMatchSeconds  = obs.Default.Histogram("hmm.match.seconds", obs.LatencyBuckets)

	// Fault-tolerance telemetry: degraded-mode scoring events (a model
	// returned NaN/Inf and the classical Eq. 2/3 fallback was used),
	// stitch gaps emitted under the Split policy, dead (candidate-less)
	// points absorbed under Skip/Split, and input points removed by
	// sanitization. core/session increments the same degraded counter
	// (instruments are interned by name) for its batched fallbacks.
	obsMatchDegraded = obs.Default.Counter("hmm.match.degraded")
	obsMatchGaps     = obs.Default.Counter("hmm.match.gaps")
	obsDeadPoints    = obs.Default.Counter("hmm.match.deadpoints")
	obsSanitizedPts  = obs.Default.Counter("hmm.match.sanitized")

	// Explainability telemetry: decisions explained and how many were
	// flagged low-margin (explain.go). Only move when Config.Explain is
	// set.
	obsExplainDecisions = obs.Default.Counter("hmm.explain.decisions")
	obsExplainLowMargin = obs.Default.Counter("hmm.explain.lowmargin")
)

// Failpoints (internal/faultinject; no-op unless armed) for chaos
// testing the break-recovery and degraded-mode machinery.
var (
	fpDeadCandidates = faultinject.New("hmm.candidates.empty")
	fpTransNaN       = faultinject.New("hmm.trans.nan")
)

// ErrNoCandidates marks a match abort caused by an empty candidate set
// (one fatal dead point under BreakError, or every point dead). The
// serving layer tests for it with errors.Is to feed the
// empty-candidate quality signal.
var ErrNoCandidates = errors.New("no candidates")

// Candidate is one candidate road segment for one trajectory point
// (Definition 4), carrying its projection and observation score.
type Candidate struct {
	Seg  roadnet.SegmentID
	Frac float64   // fraction along the segment of the projected point
	Proj geo.Point // projected position on the segment
	Dist float64   // distance from the trajectory point to the segment
	Obs  float64   // observation probability P_O(c|x)
	// pseudo marks candidates synthesized by the shortcut optimization
	// (the projected road c_{i-1}^u of Eq. 21).
	pseudo bool
}

// Pos returns the candidate as an on-road point for routing.
func (c *Candidate) Pos() roadnet.PointOnRoad {
	return roadnet.PointOnRoad{Seg: c.Seg, Frac: c.Frac}
}

// ObservationModel scores the candidate roads of trajectory points.
type ObservationModel interface {
	// Candidates returns up to k candidate segments for point i of the
	// trajectory, each with its observation probability, sorted by
	// descending probability.
	Candidates(ct traj.CellTrajectory, i, k int) []Candidate
	// Score fills the observation probability for an arbitrary
	// candidate of point i (used to score shortcut pseudo-candidates).
	Score(ct traj.CellTrajectory, i int, c *Candidate) float64
}

// TransitionModel scores the movement between candidates of consecutive
// trajectory points.
type TransitionModel interface {
	// Score returns P_T for moving from the candidate of point i-1 to
	// the candidate of point i via the shortest path. ok=false means
	// the movement is impossible (unreachable within bounds).
	Score(ct traj.CellTrajectory, i int, from, to *Candidate) (float64, bool)
}

// TransitionBatchModel is an optional fast path a TransitionModel may
// implement: score the whole |from|×|to| transition fan-out of one
// Viterbi step in a single call, so implementations can batch their
// per-pair inference (one k²×d matrix product instead of k² row
// products) and parallelize route construction internally. The matcher
// prefers it over pairwise Score when present; both must return the
// same probabilities.
type TransitionBatchModel interface {
	// ScoreBatch fills out[j*len(to)+kk] with P_T(from[j] → to[kk]) for
	// movement into point i, or NaN where the movement is impossible.
	// out has length len(from)*len(to).
	ScoreBatch(ct traj.CellTrajectory, i int, from, to []Candidate, out []float64)
}

// BreakPolicy selects how the matcher treats a dead point — one whose
// candidate set is empty (off-map outlier, fault injection, or a
// sanitizer-passed but unmatchable position).
type BreakPolicy int

const (
	// BreakError aborts the match with an error on the first dead
	// point (the default; the paper's Algorithm 1 assumption).
	BreakError BreakPolicy = iota
	// BreakSkip silently drops dead points: the chain restarts after
	// each dead gap, Result.Dead marks what was skipped, and the
	// expanded path still routes across the gap.
	BreakSkip
	// BreakSplit segments the trajectory at dead points and at Viterbi
	// breaks on the chosen path (every predecessor unreachable), each
	// segment matched independently and stitched with explicit
	// Result.Gaps markers; the expanded path does not route across a
	// gap.
	BreakSplit
)

// String returns the CLI spelling of the policy.
func (p BreakPolicy) String() string {
	switch p {
	case BreakError:
		return "error"
	case BreakSkip:
		return "skip"
	case BreakSplit:
		return "split"
	default:
		return fmt.Sprintf("BreakPolicy(%d)", int(p))
	}
}

// ParseBreakPolicy parses the CLI spelling of a break policy.
func ParseBreakPolicy(s string) (BreakPolicy, error) {
	switch s {
	case "error":
		return BreakError, nil
	case "skip":
		return BreakSkip, nil
	case "split":
		return BreakSplit, nil
	default:
		return 0, fmt.Errorf("hmm: unknown break policy %q (want error, skip, or split)", s)
	}
}

// GapReason explains why a stitch gap was emitted.
type GapReason int

const (
	// GapNoCandidates marks a gap spanning one or more dead points.
	GapNoCandidates GapReason = iota
	// GapViterbiBreak marks a gap where the chosen path restarted
	// because every transition into the point was unreachable.
	GapViterbiBreak
)

// String names the reason.
func (r GapReason) String() string {
	switch r {
	case GapNoCandidates:
		return "no-candidates"
	case GapViterbiBreak:
		return "viterbi-break"
	default:
		return fmt.Sprintf("GapReason(%d)", int(r))
	}
}

// Gap marks a discontinuity in a Split-policy match: the chain was
// broken between points From and To (indices into the matched
// trajectory; every point strictly between them is dead) and the two
// sides were matched independently.
type Gap struct {
	From, To int
	Reason   GapReason
}

// Result is the output of Viterbi path-finding.
type Result struct {
	// Matched holds the chosen candidate per point. Points skipped via
	// a shortcut have Skipped set and carry the pseudo-candidate the
	// shortcut projected for them. Dead points (only possible under
	// the Skip/Split break policies) have Dead set and a zero
	// Candidate.
	Matched []Candidate
	Skipped []bool
	// Dead marks points that had no candidates and were excluded from
	// matching (Skip/Split policies; always all-false under Error).
	Dead []bool
	// Gaps lists the stitch boundaries of a Split-policy match in
	// trajectory order (empty under Error/Skip).
	Gaps []Gap
	// Candidates holds the prepared candidate set per point (before
	// shortcut pseudo-candidates), for hitting-ratio evaluation.
	Candidates [][]Candidate
	// Path is the connected traveled path obtained by expanding the
	// routes between consecutive matched candidates. Under Split, the
	// path is not routed across Gaps: both gap endpoints appear
	// back-to-back and Gaps records the discontinuity.
	Path []roadnet.SegmentID
	// Score is the final candidate-path score (Eq. 14 form).
	Score float64
	// ShortcutAdoptions counts how many table entries Algorithm 2
	// improved (diagnostic; a skipped point also sets Skipped).
	ShortcutAdoptions int
	// Degraded counts scoring events that fell back to the classical
	// Eq. 2/3 models because a model returned NaN/Inf.
	Degraded int
	// Sanitize reports input points removed by drop-mode sanitization.
	// When points were dropped, all indices in this Result refer to
	// the sanitized trajectory.
	Sanitize traj.SanitizeReport
	// Trace is the per-trajectory telemetry record, populated only when
	// Config.Trace is set.
	Trace *obs.MatchTrace
	// Explain is the per-decision explanation artifact, populated only
	// when Config.Explain is set (explain.go).
	Explain *Explain
}

// Scoring selects how candidate paths accumulate step scores.
type Scoring int

const (
	// ScoreSum is the paper's Eq. 14: candidate paths sum the
	// P_T·P_O products of their steps.
	ScoreSum Scoring = iota
	// ScoreLogProd is the classical HMM objective: paths maximize the
	// product of step probabilities, accumulated as a sum of logs
	// (floored to keep zero-probability steps finite). An ablation of
	// the paper's design choice (DESIGN.md §6).
	ScoreLogProd
)

// Config parameterizes the matcher.
type Config struct {
	// K is the number of candidate roads per point (§V-A2: 30 for
	// LHMM, 45 for baselines).
	K int
	// Shortcuts is the number of one-hop shortcut predecessors per
	// candidate (the paper's K in §IV-E2; 1 is sufficient, 0 disables).
	Shortcuts int
	// Scoring selects sum-of-products (the paper) or log-product
	// accumulation.
	Scoring Scoring
	// OnBreak selects the dead-point policy: Error (default), Skip, or
	// Split. See BreakPolicy.
	OnBreak BreakPolicy
	// Sanitize selects input validation: strict (default; malformed
	// points error), drop (malformed points removed, reported in
	// Result.Sanitize), or off.
	Sanitize traj.SanitizeMode
	// FallbackSigma is the Eq. 2 Gaussian σ used when an observation
	// model returns NaN/Inf (degraded mode). Default 450 m.
	FallbackSigma float64
	// FallbackBeta is the Eq. 3 exponential β used when a transition
	// model returns NaN/Inf (degraded mode). Default 500 m.
	FallbackBeta float64
	// Trace collects a per-trajectory obs.MatchTrace on every Match
	// (per-point candidate and score stats, break events, stage
	// wall-clock) at the cost of a few clock reads per stage.
	Trace bool
	// Explain assembles a per-decision Explain artifact on the Result:
	// top-k candidate emission breakdowns, the chosen backpointer with
	// its step score and route, and winner/runner-up margins. Costs
	// per-point allocations and one route query per chosen transition;
	// leave off on hot paths.
	Explain bool
	// ExplainTopK bounds the per-point candidate breakdown (default 5).
	ExplainTopK int
	// ExplainLowMargin is the margin (nats) below which a decision is
	// flagged low-confidence (default 0.05).
	ExplainLowMargin float64
	// Parallel bounds the worker pool the per-step transition fan-out
	// runs on when the transition model only supports pairwise Score
	// (batch models parallelize internally). <=1 keeps the fan-out on
	// the calling goroutine. Values >1 require Trans.Score (and the
	// router behind it) to be safe for concurrent use; the matched
	// output is identical either way because the Viterbi recurrence
	// itself always runs sequentially over the memoized step table.
	Parallel int
}

// Matcher runs HMM path-finding with pluggable probability models —
// classical models yield the baselines, learned models yield LHMM.
type Matcher struct {
	Net    *roadnet.Network
	Router *roadnet.Router
	Obs    ObservationModel
	Trans  TransitionModel
	Cfg    Config
}

// Match runs candidate preparation, Viterbi, and (if enabled) the
// shortcut optimization on one cellular trajectory.
func (m *Matcher) Match(ct traj.CellTrajectory) (*Result, error) {
	return m.MatchContext(context.Background(), ct)
}

// MatchContext is Match with cancellation: the context is checked
// between points during candidate preparation and between Viterbi
// steps (and inside the parallel transition fan-out), so a canceled or
// deadline-expired context stops the match within one step's work and
// returns the context error wrapped.
func (m *Matcher) MatchContext(ctx context.Context, ct traj.CellTrajectory) (*Result, error) {
	if len(ct) == 0 {
		obsMatchErrors.Inc()
		return nil, fmt.Errorf("hmm: empty trajectory")
	}
	ct, srep, err := traj.Sanitize(ct, m.Cfg.Sanitize)
	if err != nil {
		obsMatchErrors.Inc()
		return nil, fmt.Errorf("hmm: %w", err)
	}
	if srep.Dropped() > 0 {
		obsSanitizedPts.Add(int64(srep.Dropped()))
	}
	if len(ct) == 0 {
		obsMatchErrors.Inc()
		return nil, fmt.Errorf("hmm: no valid points left after sanitization (dropped %d)", srep.Dropped())
	}
	k := m.Cfg.K
	if k <= 0 {
		k = 30
	}

	// Telemetry: counters accumulate into locals and flush once at the
	// end; the per-stage clock only runs when tracing is on — either a
	// MatchTrace (Cfg.Trace) or a request span arriving on ctx, which
	// receives the same stage timings as child spans.
	sp := obs.SpanFromContext(ctx)
	var trace *obs.MatchTrace
	if m.Cfg.Trace {
		trace = obs.NewMatchTrace(len(ct))
	}
	traced := trace != nil || sp != nil
	var st obs.StageTimings
	stage := func(target *float64) func() {
		if !traced {
			return nopStage
		}
		return obs.Stage(target)
	}
	var start time.Time
	timed := traced || obs.Default.Enabled()
	if timed {
		start = time.Now()
	}
	var nCand, nEval, nBlocked int64
	var deg atomic.Int64 // degraded-mode scoring events this match
	var es *explainState
	if m.Cfg.Explain {
		es = newExplainState(len(ct), m.Cfg.ExplainTopK, m.Cfg.ExplainLowMargin)
	}

	// Step 1: candidate preparation. Dead points (no candidates) are
	// fatal under the Error policy and recorded for segmentation under
	// Skip/Split.
	done := stage(&st.CandidatesS)
	layers := make([][]Candidate, len(ct))
	dead := make([]bool, len(ct))
	deadCount := 0
	for i := range ct {
		if err := ctx.Err(); err != nil {
			obsMatchErrors.Inc()
			return nil, fmt.Errorf("hmm: match canceled at point %d: %w", i, err)
		}
		layer := m.Obs.Candidates(ct, i, k)
		if fpDeadCandidates.Fail() {
			layer = nil
		}
		// Degraded mode: a NaN/Inf observation probability would poison
		// every path through this point; fall back to the classical
		// Eq. 2 Gaussian of the candidate's distance.
		if es != nil && len(layer) > 0 {
			es.fellback[i] = make([]bool, len(layer))
		}
		for j := range layer {
			if o := layer[j].Obs; math.IsNaN(o) || math.IsInf(o, 0) {
				layer[j].Obs = m.fallbackObs(layer[j].Dist)
				deg.Add(1)
				if es != nil {
					es.fellback[i][j] = true
				}
			}
		}
		layers[i] = layer
		if len(layer) == 0 {
			if m.Cfg.OnBreak == BreakError {
				obsMatchErrors.Inc()
				return nil, fmt.Errorf("hmm: %w for point %d", ErrNoCandidates, i)
			}
			dead[i] = true
			deadCount++
			continue
		}
		nCand += int64(len(layer))
		if trace != nil {
			pt := &trace.Points[i]
			pt.Candidates = len(layer)
			var sum float64
			for j := range layer {
				if o := layer[j].Obs; o > pt.BestObs {
					pt.BestObs = o
				}
				sum += layer[j].Obs
			}
			pt.MeanObs = sum / float64(len(layer))
		}
	}
	if deadCount == len(ct) {
		obsMatchErrors.Inc()
		return nil, fmt.Errorf("hmm: %w for any of the %d points", ErrNoCandidates, len(ct))
	}
	alive := make([]int, 0, len(ct)-deadCount)
	for i := range ct {
		if !dead[i] {
			alive = append(alive, i)
		}
	}
	keep := make([][]Candidate, len(layers))
	for i := range layers {
		keep[i] = append([]Candidate(nil), layers[i]...)
	}
	done()

	// Steps 2–3: candidate graph scores + Viterbi forward pass over the
	// alive points. Step scores between consecutive layers are memoized
	// (steps[i][j][kk] = W(c_{i-1}^j → c_i^kk), NaN when unreachable) so
	// the shortcut pass can reuse them instead of re-running the
	// transition model; steps[i] stays nil across a dead gap, where the
	// chain restarts from observation scores.
	done = stage(&st.ViterbiS)
	n := len(ct)
	f := make([][]float64, n)
	pre := make([][]int, n) // index into layers[i-1]; -1 for none
	steps := make([][][]float64, n)
	first := alive[0]
	f[first] = make([]float64, len(layers[first]))
	pre[first] = make([]int, len(layers[first]))
	for j := range layers[first] {
		f[first][j] = m.accum(layers[first][j].Obs)
		pre[first][j] = -1
	}
	var nBreaks int64
	var batchBuf []float64 // reused across steps by the batch-model path
	for ai := 1; ai < len(alive); ai++ {
		if err := ctx.Err(); err != nil {
			obsMatchErrors.Inc()
			return nil, fmt.Errorf("hmm: match canceled at step %d: %w", alive[ai], err)
		}
		i, p := alive[ai], alive[ai-1]
		f[i] = make([]float64, len(layers[i]))
		pre[i] = make([]int, len(layers[i]))
		if p != i-1 {
			// Dead gap: no transition evidence bridges it (the models
			// score adjacent points only), so the chain restarts from
			// fresh observation scores on the far side.
			for kk := range layers[i] {
				f[i][kk] = m.accum(layers[i][kk].Obs)
				pre[i][kk] = -1
			}
			continue
		}
		steps[i] = make([][]float64, len(layers[i-1]))
		for j := range layers[i-1] {
			steps[i][j] = make([]float64, len(layers[i]))
			for kk := range steps[i][j] {
				steps[i][j][kk] = math.NaN()
			}
		}
		// Phase 1: score the whole transition fan-out into the step
		// table — batched, parallel, or pairwise-sequential.
		tdone := stage(&st.TransitionS)
		batchBuf = m.fillSteps(ctx, ct, i, layers[i-1], layers[i], steps[i], batchBuf, &deg)
		tdone()
		// Phase 2: the Viterbi recurrence over the memoized table,
		// always sequential so results do not depend on scheduling.
		restarts, reachable := 0, 0
		for kk := range layers[i] {
			best, bestJ := math.Inf(-1), -1
			for j := range layers[i-1] {
				w := steps[i][j][kk]
				if math.IsNaN(w) {
					nBlocked++
					continue
				}
				reachable++
				if math.IsInf(f[i-1][j], -1) {
					continue
				}
				if s := f[i-1][j] + w; s > best {
					best, bestJ = s, j
				}
			}
			if bestJ < 0 {
				// All predecessors unreachable: restart scoring here so
				// one broken layer cannot void the whole trajectory.
				f[i][kk] = m.accum(layers[i][kk].Obs)
				pre[i][kk] = -1
				restarts++
				continue
			}
			f[i][kk] = best
			pre[i][kk] = bestJ
		}
		nEval += int64(len(layers[i]) * len(layers[i-1]))
		if trace != nil {
			pt := &trace.Points[i]
			pt.TransEvaluated = len(layers[i]) * len(layers[i-1])
			pt.TransReachable = reachable
			pt.Restarts = restarts
		}
		if restarts == len(layers[i]) {
			// Every candidate restarted: the chain broke at this point
			// and recovers from fresh observation scores.
			nBreaks++
			trace.AddBreak(i)
		}
	}
	done()

	// Shortcut optimization (Algorithm 2).
	done = stage(&st.ShortcutsS)
	adoptions, attempts := 0, 0
	if m.Cfg.Shortcuts > 0 && len(alive) >= 3 {
		adoptions, attempts = m.addShortcuts(ct, layers, f, pre, steps, &deg)
	}
	done()

	// Backward pass over the alive points; dead points keep a zero
	// Candidate and Dead=true. Under Split, a dead gap or a chosen-path
	// restart becomes an explicit Gap marker.
	done = stage(&st.BacktrackS)
	res := &Result{
		Matched:           make([]Candidate, n),
		Skipped:           make([]bool, n),
		Dead:              dead,
		Candidates:        keep,
		ShortcutAdoptions: adoptions,
		Sanitize:          srep,
		Trace:             trace,
	}
	argmaxF := func(i int) int {
		best, idx := math.Inf(-1), 0
		for j := range f[i] {
			if f[i][j] > best {
				best, idx = f[i][j], j
			}
		}
		return idx
	}
	last := alive[len(alive)-1]
	idx := argmaxF(last)
	res.Score = f[last][idx]
	noRouteTo := make(map[int]bool)
	var nSkipped int64
	driftTransOn := driftTransition.Enabled()
	for ai := len(alive) - 1; ai >= 0; ai-- {
		i := alive[ai]
		res.Matched[i] = layers[i][idx]
		res.Skipped[i] = layers[i][idx].pseudo
		if es != nil {
			es.chosen[i] = idx
		}
		if res.Skipped[i] {
			nSkipped++
			if trace != nil {
				trace.Points[i].Skipped = true
			}
		}
		if ai == 0 {
			break
		}
		p := alive[ai-1]
		if p != i-1 {
			// Dead gap on the chosen path.
			if m.Cfg.OnBreak == BreakSplit {
				res.Gaps = append(res.Gaps, Gap{From: p, To: i, Reason: GapNoCandidates})
				noRouteTo[i] = true
			}
			idx = argmaxF(p)
			continue
		}
		next := pre[i][idx]
		if next < 0 {
			// Restarted chain: pick the best candidate of the previous
			// layer independently — a stitch boundary under Split.
			if m.Cfg.OnBreak == BreakSplit {
				res.Gaps = append(res.Gaps, Gap{From: p, To: i, Reason: GapViterbiBreak})
				noRouteTo[i] = true
			}
			idx = argmaxF(p)
			continue
		}
		if driftTransOn && steps[i] != nil && next < len(steps[i]) && idx < len(steps[i][next]) {
			// Drift signal: the memoized step weight of the chosen
			// transition. Bounds-checked because shortcut pseudo-
			// candidates extend the layers but not the step tables.
			driftTransition.Observe(steps[i][next][idx])
		}
		idx = next
	}
	// Gaps were appended walking backward; restore trajectory order.
	for a, b := 0, len(res.Gaps)-1; a < b; a, b = a+1, b-1 {
		res.Gaps[a], res.Gaps[b] = res.Gaps[b], res.Gaps[a]
	}
	done()

	done = stage(&st.ExpandS)
	res.Path = m.expandPath(res.Matched, alive, noRouteTo)
	done()

	if es != nil {
		ex, nDecisions, nLowMargin := m.buildExplain(ct, es, layers, keep, f, pre, steps, dead, alive)
		res.Explain = ex
		obsExplainDecisions.Add(nDecisions)
		obsExplainLowMargin.Add(nLowMargin)
	}
	if obs.DefaultDrift.Enabled() {
		feedDrift(keep, deg.Load(), nCand, nEval)
	}

	res.Degraded = int(deg.Load())
	obsMatches.Inc()
	obsCandidates.Add(nCand)
	obsTransEval.Add(nEval)
	obsTransBlocked.Add(nBlocked)
	obsViterbiBreaks.Add(nBreaks)
	obsShortcutTries.Add(int64(attempts))
	obsShortcutAdopt.Add(int64(adoptions))
	obsPointsSkipped.Add(nSkipped)
	obsMatchDegraded.Add(deg.Load())
	obsMatchGaps.Add(int64(len(res.Gaps)))
	obsDeadPoints.Add(int64(deadCount))
	if timed {
		elapsed := time.Since(start).Seconds()
		obsMatchSeconds.Observe(elapsed)
		if traced {
			st.TotalS = elapsed
			if trace != nil {
				trace.Stages = st
				trace.ShortcutAdoptions = adoptions
				trace.ShortcutAttempts = attempts
			}
			emitStageSpans(sp, start, st)
		}
	}
	return res, nil
}

// emitStageSpans attributes the measured stage wall-clock onto the
// request's span tree as contiguous child spans; the transition fill
// nests inside the viterbi span. No-op without a parent span.
func emitStageSpans(sp *obs.Span, start time.Time, st obs.StageTimings) {
	if sp == nil {
		return
	}
	secs := func(s float64) time.Duration {
		return time.Duration(s * float64(time.Second))
	}
	cur := start
	emit := func(name string, s float64) *obs.Span {
		c := sp.ChildAt(name, cur, secs(s))
		cur = cur.Add(secs(s))
		return c
	}
	emit("candidates", st.CandidatesS)
	vStart := cur
	v := emit("viterbi", st.ViterbiS)
	v.ChildAt("transition", vStart, secs(st.TransitionS))
	emit("shortcuts", st.ShortcutsS)
	emit("backtrack", st.BacktrackS)
	emit("route", st.ExpandS)
}

// nopStage is the shared no-op stage closer used when tracing is off.
var nopStage = func() {}

// fillSteps populates the step table for the transition into point i:
// steps[j][kk] = accum(P_T(from[j]→to[kk]) · P_O(to[kk])), NaN where
// unreachable. A TransitionBatchModel scores the whole fan-out in one
// call; otherwise pairwise Score runs on Cfg.Parallel workers (each
// owning a disjoint set of target columns, so no write contention and
// scheduling cannot change the table). Workers drain early when ctx is
// canceled; the caller's per-step ctx check surfaces the error. It
// returns the (possibly grown) scratch buffer for reuse by the next
// step.
func (m *Matcher) fillSteps(ctx context.Context, ct traj.CellTrajectory, i int, from, to []Candidate, steps [][]float64, buf []float64, deg *atomic.Int64) []float64 {
	if bm, ok := m.Trans.(TransitionBatchModel); ok {
		nTo := len(to)
		if need := len(from) * nTo; cap(buf) < need {
			buf = make([]float64, need)
		} else {
			buf = buf[:need]
		}
		bm.ScoreBatch(ct, i, from, to, buf)
		for j := range from {
			row := steps[j]
			base := j * nTo
			for kk := range to {
				// NaN is the batch protocol's unreachable sentinel; an
				// Inf, however, is a misbehaving model — degrade it.
				pt := buf[base+kk]
				if math.IsInf(pt, 0) {
					var ok bool
					pt, ok = m.fallbackTrans(ct, i, &from[j], &to[kk])
					deg.Add(1)
					if !ok {
						continue
					}
				}
				if !math.IsNaN(pt) {
					row[kk] = m.accum(pt * to[kk].Obs)
				}
			}
		}
		return buf
	}
	workers := m.Cfg.Parallel
	if workers > len(to) {
		workers = len(to)
	}
	scoreCol := func(kk int) {
		for j := range from {
			if w, ok := m.stepScore(ct, i, &from[j], &to[kk], deg); ok {
				steps[j][kk] = w
			}
		}
	}
	if workers <= 1 {
		for kk := range to {
			if ctx.Err() != nil {
				return buf
			}
			scoreCol(kk)
		}
		return buf
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				kk := int(next.Add(1)) - 1
				if kk >= len(to) {
					return
				}
				scoreCol(kk)
			}
		}()
	}
	wg.Wait()
	return buf
}

// stepScore is Eq. 13: W(a→b) = P_T(a→b) · P_O(b|x_i), accumulated
// per the configured scoring. A NaN/Inf transition probability (a
// misbehaving learned model) degrades to the classical Eq. 3
// exponential instead of poisoning the Viterbi table; deg (optional)
// counts those events.
func (m *Matcher) stepScore(ct traj.CellTrajectory, i int, from, to *Candidate, deg *atomic.Int64) (float64, bool) {
	pt, ok := m.Trans.Score(ct, i, from, to)
	if fpTransNaN.Fail() {
		pt = math.NaN()
	}
	if !ok {
		return 0, false
	}
	if math.IsNaN(pt) || math.IsInf(pt, 0) {
		if deg != nil {
			deg.Add(1)
		}
		pt, ok = m.fallbackTrans(ct, i, from, to)
		if !ok {
			return 0, false
		}
	}
	return m.accum(pt * to.Obs), true
}

// fallbackObs is the degraded-mode observation probability: the
// classical Eq. 2 Gaussian of the candidate's distance.
func (m *Matcher) fallbackObs(dist float64) float64 {
	sigma := m.Cfg.FallbackSigma
	if sigma <= 0 {
		sigma = 450
	}
	z := dist / sigma
	return math.Exp(-0.5 * z * z)
}

// fallbackTrans is the degraded-mode transition probability: the
// classical Eq. 3 exponential over the route/straight-line distance
// difference.
func (m *Matcher) fallbackTrans(ct traj.CellTrajectory, i int, from, to *Candidate) (float64, bool) {
	dist, ok := m.Router.RouteDist(from.Pos(), to.Pos())
	if !ok {
		return 0, false
	}
	beta := m.Cfg.FallbackBeta
	if beta <= 0 {
		beta = 500
	}
	straight := ct[i-1].P.Dist(ct[i].P)
	return math.Exp(-math.Abs(straight-dist) / beta), true
}

// accum maps a step probability into the additive scoring domain.
func (m *Matcher) accum(p float64) float64 {
	if m.Cfg.Scoring == ScoreLogProd {
		const floor = -20
		if p <= 0 {
			return floor
		}
		l := math.Log(p)
		if l < floor {
			return floor
		}
		return l
	}
	return p
}

// expandPath concatenates the shortest-path routes between consecutive
// matched alive candidates into one traveled path. Routing into a
// point listed in noRouteTo (a Split-policy gap boundary) is
// suppressed: both endpoints are emitted back-to-back and the Result's
// Gaps record the discontinuity.
func (m *Matcher) expandPath(matched []Candidate, alive []int, noRouteTo map[int]bool) []roadnet.SegmentID {
	var path []roadnet.SegmentID
	appendSeg := func(s roadnet.SegmentID) {
		if len(path) == 0 || path[len(path)-1] != s {
			path = append(path, s)
		}
	}
	for ai := 1; ai < len(alive); ai++ {
		i, p := alive[ai], alive[ai-1]
		if noRouteTo[i] {
			appendSeg(matched[p].Seg)
			appendSeg(matched[i].Seg)
			continue
		}
		route, ok := m.Router.RouteBetween(matched[p].Pos(), matched[i].Pos())
		if !ok {
			// Unreachable gap: emit both endpoints and continue.
			appendSeg(matched[p].Seg)
			appendSeg(matched[i].Seg)
			continue
		}
		for _, s := range route.Segs {
			appendSeg(s)
		}
	}
	if len(path) == 0 && len(alive) > 0 {
		path = append(path, matched[alive[0]].Seg)
	}
	return path
}
