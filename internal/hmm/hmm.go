// Package hmm provides the HMM map-matching backbone shared by LHMM and
// the HMM-family baselines: candidate road preparation, the candidate
// graph, Viterbi path-finding (Algorithm 1), the shortcut optimization
// that skips unqualified candidate sets (Algorithm 2, Observation 1),
// and the classical distance-based probability models (Eqs. 2–3).
package hmm

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// Matcher telemetry (internal/obs). Hot loops accumulate into locals
// and flush once per Match, so the disabled-registry cost is a handful
// of atomic loads per trajectory.
var (
	obsMatches       = obs.Default.Counter("hmm.matches")
	obsMatchErrors   = obs.Default.Counter("hmm.match.errors")
	obsCandidates    = obs.Default.Counter("hmm.candidates")
	obsTransEval     = obs.Default.Counter("hmm.transitions.evaluated")
	obsTransBlocked  = obs.Default.Counter("hmm.transitions.unreachable")
	obsViterbiBreaks = obs.Default.Counter("hmm.viterbi.breaks")
	obsShortcutTries = obs.Default.Counter("hmm.shortcut.attempts")
	obsShortcutAdopt = obs.Default.Counter("hmm.shortcut.adoptions")
	obsPointsSkipped = obs.Default.Counter("hmm.points.skipped")
	obsMatchSeconds  = obs.Default.Histogram("hmm.match.seconds", obs.LatencyBuckets)
)

// Candidate is one candidate road segment for one trajectory point
// (Definition 4), carrying its projection and observation score.
type Candidate struct {
	Seg  roadnet.SegmentID
	Frac float64   // fraction along the segment of the projected point
	Proj geo.Point // projected position on the segment
	Dist float64   // distance from the trajectory point to the segment
	Obs  float64   // observation probability P_O(c|x)
	// pseudo marks candidates synthesized by the shortcut optimization
	// (the projected road c_{i-1}^u of Eq. 21).
	pseudo bool
}

// Pos returns the candidate as an on-road point for routing.
func (c *Candidate) Pos() roadnet.PointOnRoad {
	return roadnet.PointOnRoad{Seg: c.Seg, Frac: c.Frac}
}

// ObservationModel scores the candidate roads of trajectory points.
type ObservationModel interface {
	// Candidates returns up to k candidate segments for point i of the
	// trajectory, each with its observation probability, sorted by
	// descending probability.
	Candidates(ct traj.CellTrajectory, i, k int) []Candidate
	// Score fills the observation probability for an arbitrary
	// candidate of point i (used to score shortcut pseudo-candidates).
	Score(ct traj.CellTrajectory, i int, c *Candidate) float64
}

// TransitionModel scores the movement between candidates of consecutive
// trajectory points.
type TransitionModel interface {
	// Score returns P_T for moving from the candidate of point i-1 to
	// the candidate of point i via the shortest path. ok=false means
	// the movement is impossible (unreachable within bounds).
	Score(ct traj.CellTrajectory, i int, from, to *Candidate) (float64, bool)
}

// TransitionBatchModel is an optional fast path a TransitionModel may
// implement: score the whole |from|×|to| transition fan-out of one
// Viterbi step in a single call, so implementations can batch their
// per-pair inference (one k²×d matrix product instead of k² row
// products) and parallelize route construction internally. The matcher
// prefers it over pairwise Score when present; both must return the
// same probabilities.
type TransitionBatchModel interface {
	// ScoreBatch fills out[j*len(to)+kk] with P_T(from[j] → to[kk]) for
	// movement into point i, or NaN where the movement is impossible.
	// out has length len(from)*len(to).
	ScoreBatch(ct traj.CellTrajectory, i int, from, to []Candidate, out []float64)
}

// Result is the output of Viterbi path-finding.
type Result struct {
	// Matched holds the chosen candidate per point. Points skipped via
	// a shortcut have Skipped set and carry the pseudo-candidate the
	// shortcut projected for them.
	Matched []Candidate
	Skipped []bool
	// Candidates holds the prepared candidate set per point (before
	// shortcut pseudo-candidates), for hitting-ratio evaluation.
	Candidates [][]Candidate
	// Path is the connected traveled path obtained by expanding the
	// routes between consecutive matched candidates.
	Path []roadnet.SegmentID
	// Score is the final candidate-path score (Eq. 14 form).
	Score float64
	// ShortcutAdoptions counts how many table entries Algorithm 2
	// improved (diagnostic; a skipped point also sets Skipped).
	ShortcutAdoptions int
	// Trace is the per-trajectory telemetry record, populated only when
	// Config.Trace is set.
	Trace *obs.MatchTrace
}

// Scoring selects how candidate paths accumulate step scores.
type Scoring int

const (
	// ScoreSum is the paper's Eq. 14: candidate paths sum the
	// P_T·P_O products of their steps.
	ScoreSum Scoring = iota
	// ScoreLogProd is the classical HMM objective: paths maximize the
	// product of step probabilities, accumulated as a sum of logs
	// (floored to keep zero-probability steps finite). An ablation of
	// the paper's design choice (DESIGN.md §6).
	ScoreLogProd
)

// Config parameterizes the matcher.
type Config struct {
	// K is the number of candidate roads per point (§V-A2: 30 for
	// LHMM, 45 for baselines).
	K int
	// Shortcuts is the number of one-hop shortcut predecessors per
	// candidate (the paper's K in §IV-E2; 1 is sufficient, 0 disables).
	Shortcuts int
	// Scoring selects sum-of-products (the paper) or log-product
	// accumulation.
	Scoring Scoring
	// Trace collects a per-trajectory obs.MatchTrace on every Match
	// (per-point candidate and score stats, break events, stage
	// wall-clock) at the cost of a few clock reads per stage.
	Trace bool
	// Parallel bounds the worker pool the per-step transition fan-out
	// runs on when the transition model only supports pairwise Score
	// (batch models parallelize internally). <=1 keeps the fan-out on
	// the calling goroutine. Values >1 require Trans.Score (and the
	// router behind it) to be safe for concurrent use; the matched
	// output is identical either way because the Viterbi recurrence
	// itself always runs sequentially over the memoized step table.
	Parallel int
}

// Matcher runs HMM path-finding with pluggable probability models —
// classical models yield the baselines, learned models yield LHMM.
type Matcher struct {
	Net    *roadnet.Network
	Router *roadnet.Router
	Obs    ObservationModel
	Trans  TransitionModel
	Cfg    Config
}

// Match runs candidate preparation, Viterbi, and (if enabled) the
// shortcut optimization on one cellular trajectory.
func (m *Matcher) Match(ct traj.CellTrajectory) (*Result, error) {
	if len(ct) == 0 {
		obsMatchErrors.Inc()
		return nil, fmt.Errorf("hmm: empty trajectory")
	}
	k := m.Cfg.K
	if k <= 0 {
		k = 30
	}

	// Telemetry: counters accumulate into locals and flush once at the
	// end; the per-stage clock only runs when tracing is on.
	var trace *obs.MatchTrace
	if m.Cfg.Trace {
		trace = obs.NewMatchTrace(len(ct))
	}
	var st obs.StageTimings
	stage := func(target *float64) func() {
		if trace == nil {
			return nopStage
		}
		return obs.Stage(target)
	}
	var start time.Time
	timed := trace != nil || obs.Default.Enabled()
	if timed {
		start = time.Now()
	}
	var nCand, nEval, nBlocked int64

	// Step 1: candidate preparation.
	done := stage(&st.CandidatesS)
	layers := make([][]Candidate, len(ct))
	for i := range ct {
		layers[i] = m.Obs.Candidates(ct, i, k)
		if len(layers[i]) == 0 {
			obsMatchErrors.Inc()
			return nil, fmt.Errorf("hmm: no candidates for point %d", i)
		}
		nCand += int64(len(layers[i]))
		if trace != nil {
			pt := &trace.Points[i]
			pt.Candidates = len(layers[i])
			var sum float64
			for j := range layers[i] {
				if o := layers[i][j].Obs; o > pt.BestObs {
					pt.BestObs = o
				}
				sum += layers[i][j].Obs
			}
			pt.MeanObs = sum / float64(len(layers[i]))
		}
	}
	keep := make([][]Candidate, len(layers))
	for i := range layers {
		keep[i] = append([]Candidate(nil), layers[i]...)
	}
	done()

	// Steps 2–3: candidate graph scores + Viterbi forward pass. Step
	// scores between consecutive layers are memoized (steps[i][j][kk] =
	// W(c_{i-1}^j → c_i^kk), NaN when unreachable) so the shortcut pass
	// can reuse them instead of re-running the transition model.
	done = stage(&st.ViterbiS)
	n := len(ct)
	f := make([][]float64, n)
	pre := make([][]int, n) // index into layers[i-1]; -1 for none
	steps := make([][][]float64, n)
	f[0] = make([]float64, len(layers[0]))
	pre[0] = make([]int, len(layers[0]))
	for j := range layers[0] {
		f[0][j] = m.accum(layers[0][j].Obs)
		pre[0][j] = -1
	}
	var nBreaks int64
	var batchBuf []float64 // reused across steps by the batch-model path
	for i := 1; i < n; i++ {
		f[i] = make([]float64, len(layers[i]))
		pre[i] = make([]int, len(layers[i]))
		steps[i] = make([][]float64, len(layers[i-1]))
		for j := range layers[i-1] {
			steps[i][j] = make([]float64, len(layers[i]))
			for kk := range steps[i][j] {
				steps[i][j][kk] = math.NaN()
			}
		}
		// Phase 1: score the whole transition fan-out into the step
		// table — batched, parallel, or pairwise-sequential.
		batchBuf = m.fillSteps(ct, i, layers[i-1], layers[i], steps[i], batchBuf)
		// Phase 2: the Viterbi recurrence over the memoized table,
		// always sequential so results do not depend on scheduling.
		restarts, reachable := 0, 0
		for kk := range layers[i] {
			best, bestJ := math.Inf(-1), -1
			for j := range layers[i-1] {
				w := steps[i][j][kk]
				if math.IsNaN(w) {
					nBlocked++
					continue
				}
				reachable++
				if math.IsInf(f[i-1][j], -1) {
					continue
				}
				if s := f[i-1][j] + w; s > best {
					best, bestJ = s, j
				}
			}
			if bestJ < 0 {
				// All predecessors unreachable: restart scoring here so
				// one broken layer cannot void the whole trajectory.
				f[i][kk] = m.accum(layers[i][kk].Obs)
				pre[i][kk] = -1
				restarts++
				continue
			}
			f[i][kk] = best
			pre[i][kk] = bestJ
		}
		nEval += int64(len(layers[i]) * len(layers[i-1]))
		if trace != nil {
			pt := &trace.Points[i]
			pt.TransEvaluated = len(layers[i]) * len(layers[i-1])
			pt.TransReachable = reachable
			pt.Restarts = restarts
		}
		if restarts == len(layers[i]) {
			// Every candidate restarted: the chain broke at this point
			// and recovers from fresh observation scores.
			nBreaks++
			trace.AddBreak(i)
		}
	}
	done()

	// Shortcut optimization (Algorithm 2).
	done = stage(&st.ShortcutsS)
	adoptions, attempts := 0, 0
	if m.Cfg.Shortcuts > 0 && n >= 3 {
		adoptions, attempts = m.addShortcuts(ct, layers, f, pre, steps)
	}
	done()

	// Backward pass.
	done = stage(&st.BacktrackS)
	res := &Result{
		Matched:           make([]Candidate, n),
		Skipped:           make([]bool, n),
		Candidates:        keep,
		ShortcutAdoptions: adoptions,
		Trace:             trace,
	}
	lastBest, lastIdx := math.Inf(-1), 0
	for j := range layers[n-1] {
		if f[n-1][j] > lastBest {
			lastBest, lastIdx = f[n-1][j], j
		}
	}
	res.Score = lastBest
	idx := lastIdx
	var nSkipped int64
	for i := n - 1; i >= 0; i-- {
		res.Matched[i] = layers[i][idx]
		res.Skipped[i] = layers[i][idx].pseudo
		if res.Skipped[i] {
			nSkipped++
			if trace != nil {
				trace.Points[i].Skipped = true
			}
		}
		if i > 0 {
			idx = pre[i][idx]
			if idx < 0 {
				// Restarted chain: pick the best candidate of the
				// previous layer independently.
				best := math.Inf(-1)
				for j := range layers[i-1] {
					if f[i-1][j] > best {
						best, idx = f[i-1][j], j
					}
				}
			}
		}
	}
	done()

	done = stage(&st.ExpandS)
	res.Path = m.expandPath(res.Matched)
	done()

	obsMatches.Inc()
	obsCandidates.Add(nCand)
	obsTransEval.Add(nEval)
	obsTransBlocked.Add(nBlocked)
	obsViterbiBreaks.Add(nBreaks)
	obsShortcutTries.Add(int64(attempts))
	obsShortcutAdopt.Add(int64(adoptions))
	obsPointsSkipped.Add(nSkipped)
	if timed {
		elapsed := time.Since(start).Seconds()
		obsMatchSeconds.Observe(elapsed)
		if trace != nil {
			st.TotalS = elapsed
			trace.Stages = st
			trace.ShortcutAdoptions = adoptions
			trace.ShortcutAttempts = attempts
		}
	}
	return res, nil
}

// nopStage is the shared no-op stage closer used when tracing is off.
var nopStage = func() {}

// fillSteps populates the step table for the transition into point i:
// steps[j][kk] = accum(P_T(from[j]→to[kk]) · P_O(to[kk])), NaN where
// unreachable. A TransitionBatchModel scores the whole fan-out in one
// call; otherwise pairwise Score runs on Cfg.Parallel workers (each
// owning a disjoint set of target columns, so no write contention and
// scheduling cannot change the table). It returns the (possibly grown)
// scratch buffer for reuse by the next step.
func (m *Matcher) fillSteps(ct traj.CellTrajectory, i int, from, to []Candidate, steps [][]float64, buf []float64) []float64 {
	if bm, ok := m.Trans.(TransitionBatchModel); ok {
		nTo := len(to)
		if need := len(from) * nTo; cap(buf) < need {
			buf = make([]float64, need)
		} else {
			buf = buf[:need]
		}
		bm.ScoreBatch(ct, i, from, to, buf)
		for j := range from {
			row := steps[j]
			base := j * nTo
			for kk := range to {
				if pt := buf[base+kk]; !math.IsNaN(pt) {
					row[kk] = m.accum(pt * to[kk].Obs)
				}
			}
		}
		return buf
	}
	workers := m.Cfg.Parallel
	if workers > len(to) {
		workers = len(to)
	}
	scoreCol := func(kk int) {
		for j := range from {
			if w, ok := m.stepScore(ct, i, &from[j], &to[kk]); ok {
				steps[j][kk] = w
			}
		}
	}
	if workers <= 1 {
		for kk := range to {
			scoreCol(kk)
		}
		return buf
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				kk := int(next.Add(1)) - 1
				if kk >= len(to) {
					return
				}
				scoreCol(kk)
			}
		}()
	}
	wg.Wait()
	return buf
}

// stepScore is Eq. 13: W(a→b) = P_T(a→b) · P_O(b|x_i), accumulated
// per the configured scoring.
func (m *Matcher) stepScore(ct traj.CellTrajectory, i int, from, to *Candidate) (float64, bool) {
	pt, ok := m.Trans.Score(ct, i, from, to)
	if !ok {
		return 0, false
	}
	return m.accum(pt * to.Obs), true
}

// accum maps a step probability into the additive scoring domain.
func (m *Matcher) accum(p float64) float64 {
	if m.Cfg.Scoring == ScoreLogProd {
		const floor = -20
		if p <= 0 {
			return floor
		}
		l := math.Log(p)
		if l < floor {
			return floor
		}
		return l
	}
	return p
}

// expandPath concatenates the shortest-path routes between consecutive
// matched candidates into one traveled path.
func (m *Matcher) expandPath(matched []Candidate) []roadnet.SegmentID {
	var path []roadnet.SegmentID
	appendSeg := func(s roadnet.SegmentID) {
		if len(path) == 0 || path[len(path)-1] != s {
			path = append(path, s)
		}
	}
	for i := 1; i < len(matched); i++ {
		route, ok := m.Router.RouteBetween(matched[i-1].Pos(), matched[i].Pos())
		if !ok {
			// Unreachable gap: emit both endpoints and continue.
			appendSeg(matched[i-1].Seg)
			appendSeg(matched[i].Seg)
			continue
		}
		for _, s := range route.Segs {
			appendSeg(s)
		}
	}
	if len(path) == 0 && len(matched) > 0 {
		path = append(path, matched[0].Seg)
	}
	return path
}
