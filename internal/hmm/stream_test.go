package hmm

import (
	"math"
	"testing"

	"repro/internal/geo"
)

func TestStreamMatchesBatchOnEasyTrack(t *testing.T) {
	net, r := gridWorld(t, 8, 3)
	pts := []geo.Point{
		geo.Pt(20, 108), geo.Pt(150, 93), geo.Pt(290, 110),
		geo.Pt(420, 95), geo.Pt(550, 104), geo.Pt(660, 96),
	}
	ct := trajAlong(pts...)

	batch := classicMatcher(net, r, 8, 0)
	batchRes, err := batch.Match(ct)
	if err != nil {
		t.Fatal(err)
	}

	sm := NewStreamMatcher(classicMatcher(net, r, 8, 0), 2)
	var emitted []Candidate
	for _, p := range ct {
		out, err := sm.Push(p)
		if err != nil {
			t.Fatal(err)
		}
		emitted = append(emitted, out...)
	}
	emitted = append(emitted, sm.Flush()...)

	if len(emitted) != len(ct) {
		t.Fatalf("stream emitted %d matches for %d points", len(emitted), len(ct))
	}
	// On an unambiguous track the fixed-lag stream agrees with batch.
	for i := range emitted {
		if emitted[i].Seg != batchRes.Matched[i].Seg {
			a := net.Segment(emitted[i].Seg).Midpoint()
			b := net.Segment(batchRes.Matched[i].Seg).Midpoint()
			if math.Abs(a.Y-b.Y) > 1 {
				t.Errorf("point %d: stream %v vs batch %v", i, a, b)
			}
		}
	}
	if len(sm.Matched()) != len(ct) {
		t.Errorf("Matched() = %d", len(sm.Matched()))
	}
	if len(sm.Path()) == 0 {
		t.Error("empty stream path")
	}
}

func TestStreamEmissionTiming(t *testing.T) {
	net, r := gridWorld(t, 8, 3)
	sm := NewStreamMatcher(classicMatcher(net, r, 5, 0), 2)
	pts := trajAlong(
		geo.Pt(20, 100), geo.Pt(150, 100), geo.Pt(290, 100), geo.Pt(420, 100), geo.Pt(550, 100),
	)
	var counts []int
	for _, p := range pts {
		out, err := sm.Push(p)
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, len(out))
	}
	// With lag 2, the first emission happens at the 3rd point.
	if counts[0] != 0 || counts[1] != 0 || counts[2] != 1 {
		t.Errorf("emission schedule = %v, want [0 0 1 ...]", counts)
	}
	rest := sm.Flush()
	if len(rest) != 2 {
		t.Errorf("Flush emitted %d, want 2", len(rest))
	}
	// Flushing again is a no-op.
	if extra := sm.Flush(); len(extra) != 0 {
		t.Errorf("second Flush emitted %d", len(extra))
	}
}

func TestStreamZeroLag(t *testing.T) {
	net, r := gridWorld(t, 6, 3)
	sm := NewStreamMatcher(classicMatcher(net, r, 5, 0), 0)
	ct := trajAlong(geo.Pt(20, 100), geo.Pt(150, 100))
	out1, err := sm.Push(ct[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(out1) != 1 {
		t.Fatalf("zero-lag first push emitted %d", len(out1))
	}
	out2, err := sm.Push(ct[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(out2) != 1 {
		t.Fatalf("zero-lag second push emitted %d", len(out2))
	}
	// Negative lag clamps to zero.
	if sm2 := NewStreamMatcher(classicMatcher(net, r, 5, 0), -3); sm2.Lag != 0 {
		t.Errorf("negative lag = %d", sm2.Lag)
	}
}
