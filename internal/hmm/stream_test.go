package hmm

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/roadnet"
)

func TestStreamMatchesBatchOnEasyTrack(t *testing.T) {
	net, r := gridWorld(t, 8, 3)
	pts := []geo.Point{
		geo.Pt(20, 108), geo.Pt(150, 93), geo.Pt(290, 110),
		geo.Pt(420, 95), geo.Pt(550, 104), geo.Pt(660, 96),
	}
	ct := trajAlong(pts...)

	batch := classicMatcher(net, r, 8, 0)
	batchRes, err := batch.Match(ct)
	if err != nil {
		t.Fatal(err)
	}

	sm := NewStreamMatcher(classicMatcher(net, r, 8, 0), 2)
	var emitted []Candidate
	for _, p := range ct {
		out, err := sm.Push(p)
		if err != nil {
			t.Fatal(err)
		}
		emitted = append(emitted, out...)
	}
	emitted = append(emitted, sm.Flush()...)

	if len(emitted) != len(ct) {
		t.Fatalf("stream emitted %d matches for %d points", len(emitted), len(ct))
	}
	// On an unambiguous track the fixed-lag stream agrees with batch.
	for i := range emitted {
		if emitted[i].Seg != batchRes.Matched[i].Seg {
			a := net.Segment(emitted[i].Seg).Midpoint()
			b := net.Segment(batchRes.Matched[i].Seg).Midpoint()
			if math.Abs(a.Y-b.Y) > 1 {
				t.Errorf("point %d: stream %v vs batch %v", i, a, b)
			}
		}
	}
	if len(sm.Matched()) != len(ct) {
		t.Errorf("Matched() = %d", len(sm.Matched()))
	}
	if len(sm.Path()) == 0 {
		t.Error("empty stream path")
	}
}

func TestStreamEmissionTiming(t *testing.T) {
	net, r := gridWorld(t, 8, 3)
	sm := NewStreamMatcher(classicMatcher(net, r, 5, 0), 2)
	pts := trajAlong(
		geo.Pt(20, 100), geo.Pt(150, 100), geo.Pt(290, 100), geo.Pt(420, 100), geo.Pt(550, 100),
	)
	var counts []int
	for _, p := range pts {
		out, err := sm.Push(p)
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, len(out))
	}
	// With lag 2, the first emission happens at the 3rd point.
	if counts[0] != 0 || counts[1] != 0 || counts[2] != 1 {
		t.Errorf("emission schedule = %v, want [0 0 1 ...]", counts)
	}
	rest := sm.Flush()
	if len(rest) != 2 {
		t.Errorf("Flush emitted %d, want 2", len(rest))
	}
	// Flushing again is a no-op.
	if extra := sm.Flush(); len(extra) != 0 {
		t.Errorf("second Flush emitted %d", len(extra))
	}
}

func TestStreamZeroLag(t *testing.T) {
	net, r := gridWorld(t, 6, 3)
	sm := NewStreamMatcher(classicMatcher(net, r, 5, 0), 0)
	ct := trajAlong(geo.Pt(20, 100), geo.Pt(150, 100))
	out1, err := sm.Push(ct[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(out1) != 1 {
		t.Fatalf("zero-lag first push emitted %d", len(out1))
	}
	out2, err := sm.Push(ct[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(out2) != 1 {
		t.Fatalf("zero-lag second push emitted %d", len(out2))
	}
	// Negative lag clamps to zero.
	if sm2 := NewStreamMatcher(classicMatcher(net, r, 5, 0), -3); sm2.Lag != 0 {
		t.Errorf("negative lag = %d", sm2.Lag)
	}
}

func TestStreamFlushEmpty(t *testing.T) {
	net, r := gridWorld(t, 4, 3)
	sm := NewStreamMatcher(classicMatcher(net, r, 5, 0), 2)
	if out := sm.Flush(); len(out) != 0 {
		t.Fatalf("empty Flush emitted %d matches", len(out))
	}
	if sm.Pending() != 0 {
		t.Errorf("Pending on empty stream = %d", sm.Pending())
	}
	if len(sm.Matched()) != 0 {
		t.Errorf("Matched on empty stream = %d", len(sm.Matched()))
	}
	// Flushing an empty stream twice stays a no-op.
	if out := sm.Flush(); len(out) != 0 {
		t.Fatalf("second empty Flush emitted %d matches", len(out))
	}
}

func TestStreamLagLargerThanTrajectory(t *testing.T) {
	obs.Default.Enable()
	t.Cleanup(obs.Default.Disable)
	pending := obs.Default.Gauge("stream.pending")

	net, r := gridWorld(t, 8, 3)
	sm := NewStreamMatcher(classicMatcher(net, r, 5, 0), 10)
	ct := trajAlong(geo.Pt(20, 100), geo.Pt(150, 100), geo.Pt(290, 100))
	for i, p := range ct {
		out, err := sm.Push(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 0 {
			t.Fatalf("lag 10 emitted %d matches after %d points", len(out), i+1)
		}
		// The emit-lag gauge tracks the pushed-but-unfinalized count.
		if want := int64(i + 1); pending.Value() != want {
			t.Errorf("pending gauge after push %d = %d, want %d", i+1, pending.Value(), want)
		}
	}
	if sm.Pending() != len(ct) {
		t.Errorf("Pending = %d, want %d", sm.Pending(), len(ct))
	}
	out := sm.Flush()
	if len(out) != len(ct) {
		t.Fatalf("Flush emitted %d, want %d", len(out), len(ct))
	}
	if sm.Pending() != 0 || pending.Value() != 0 {
		t.Errorf("after Flush: Pending=%d gauge=%d, want 0", sm.Pending(), pending.Value())
	}
}

func TestStreamPushAfterViterbiBreak(t *testing.T) {
	obs.Default.Enable()
	t.Cleanup(obs.Default.Disable)
	breaks := obs.Default.Counter("stream.breaks")
	before := breaks.Value()

	// A router bound tight enough that the mid-trajectory jump is
	// unreachable from every candidate: the chain breaks and restarts.
	net, _ := gridWorld(t, 14, 3)
	r := roadnet.NewRouter(net, roadnet.WithMaxDist(250))
	sm := NewStreamMatcher(&Matcher{
		Net:    net,
		Router: r,
		Obs:    &GaussianObservation{Net: net, Sigma: 100},
		Trans:  &ExponentialTransition{Router: r, Beta: 200},
		Cfg:    Config{K: 5},
	}, 1)

	pts := trajAlong(
		geo.Pt(20, 100), geo.Pt(150, 100), // cluster A
		geo.Pt(1250, 100), geo.Pt(1300, 100), // far jump: unreachable within 250 m
	)
	var emitted []Candidate
	for _, p := range pts {
		out, err := sm.Push(p)
		if err != nil {
			t.Fatalf("Push after break: %v", err)
		}
		emitted = append(emitted, out...)
	}
	emitted = append(emitted, sm.Flush()...)
	if len(emitted) != len(pts) {
		t.Fatalf("emitted %d matches for %d points", len(emitted), len(pts))
	}
	if got := breaks.Value() - before; got < 1 {
		t.Errorf("stream.breaks delta = %d, want >= 1", got)
	}
	// Matches on both sides of the break stay near their own cluster.
	if a := net.Segment(emitted[1].Seg).Midpoint(); a.X > 600 {
		t.Errorf("pre-break match drifted to %v", a)
	}
	if b := net.Segment(emitted[2].Seg).Midpoint(); b.X < 600 {
		t.Errorf("post-break match drifted to %v", b)
	}
}

// TestStreamConcurrentInstrumented exercises the telemetry layer from
// concurrent streaming pipelines sharing one router (the -race
// acceptance gate for the instrumentation).
func TestStreamConcurrentInstrumented(t *testing.T) {
	obs.Default.Enable()
	t.Cleanup(obs.Default.Disable)
	pushes := obs.Default.Counter("stream.pushes")
	before := pushes.Value()

	net, r := gridWorld(t, 10, 4)
	const workers = 4
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sm := NewStreamMatcher(classicMatcher(net, r, 5, 0), 2)
			y := 100.0 * float64(1+w%2)
			ct := trajAlong(
				geo.Pt(20, y), geo.Pt(150, y), geo.Pt(290, y),
				geo.Pt(420, y), geo.Pt(550, y),
			)
			var n int
			for _, p := range ct {
				out, err := sm.Push(p)
				if err != nil {
					errs[w] = err
					return
				}
				n += len(out)
			}
			n += len(sm.Flush())
			if n != len(ct) {
				errs[w] = fmt.Errorf("emitted %d matches, want %d", n, len(ct))
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", w, err)
		}
	}
	if got := pushes.Value() - before; got != workers*5 {
		t.Errorf("stream.pushes delta = %d, want %d", got, workers*5)
	}
}
