package hmm

import (
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/geo"
	"repro/internal/traj"
)

// randomWalks builds jittered trajectories wandering across the grid.
func randomWalks(n, steps int, seed int64) []traj.CellTrajectory {
	rng := rand.New(rand.NewSource(seed))
	out := make([]traj.CellTrajectory, n)
	for i := range out {
		x, y := 100+rng.Float64()*400, 100+rng.Float64()*200
		pts := make([]geo.Point, steps)
		for s := range pts {
			x += rng.Float64()*160 - 40
			y += rng.Float64()*120 - 60
			pts[s] = geo.Pt(x, y)
		}
		out[i] = trajAlong(pts...)
	}
	return out
}

// TestParallelFanoutIdenticalToSequential pins the tentpole guarantee:
// the parallel transition fan-out returns byte-identical matched paths
// to the sequential one, because scheduling only changes who fills a
// pair-indexed table, never the Viterbi recurrence that reads it. Run
// under -race this doubles as the concurrency-soundness test; the
// GOMAXPROCS sweep exercises both the degenerate single-P and the
// multi-P interleavings.
func TestParallelFanoutIdenticalToSequential(t *testing.T) {
	net, r := gridWorld(t, 8, 5)
	walks := randomWalks(6, 7, 42)
	for _, shortcuts := range []int{0, 1} {
		seq := classicMatcher(net, r, 6, shortcuts)
		want := make([]*Result, len(walks))
		for i, ct := range walks {
			res, err := seq.Match(ct)
			if err != nil {
				t.Fatalf("sequential match %d: %v", i, err)
			}
			want[i] = res
		}
		for _, procs := range []int{1, 4} {
			old := runtime.GOMAXPROCS(procs)
			for _, workers := range []int{2, 3, 16} {
				par := classicMatcher(net, r, 6, shortcuts)
				par.Cfg.Parallel = workers
				for i, ct := range walks {
					res, err := par.Match(ct)
					if err != nil {
						t.Fatalf("parallel match %d: %v", i, err)
					}
					if !reflect.DeepEqual(res.Matched, want[i].Matched) {
						t.Fatalf("shortcuts=%d GOMAXPROCS=%d workers=%d walk %d: Matched diverged",
							shortcuts, procs, workers, i)
					}
					if !reflect.DeepEqual(res.Path, want[i].Path) {
						t.Fatalf("shortcuts=%d GOMAXPROCS=%d workers=%d walk %d: Path diverged",
							shortcuts, procs, workers, i)
					}
					if res.Score != want[i].Score {
						t.Fatalf("shortcuts=%d GOMAXPROCS=%d workers=%d walk %d: Score %v vs %v",
							shortcuts, procs, workers, i, res.Score, want[i].Score)
					}
				}
			}
			runtime.GOMAXPROCS(old)
		}
	}
}

// batchEcho wraps ExponentialTransition with a TransitionBatchModel
// implementation, proving the matcher's batch hook reproduces the
// pairwise path exactly.
type batchEcho struct{ ExponentialTransition }

func (b *batchEcho) ScoreBatch(ct traj.CellTrajectory, i int, from, to []Candidate, out []float64) {
	nTo := len(to)
	for j := range from {
		for kk := range to {
			p, ok := b.Score(ct, i, &from[j], &to[kk])
			if !ok {
				p = math.NaN()
			}
			out[j*nTo+kk] = p
		}
	}
}

func TestBatchModelIdenticalToPairwise(t *testing.T) {
	net, r := gridWorld(t, 8, 5)
	walks := randomWalks(4, 6, 7)
	pair := classicMatcher(net, r, 6, 1)
	batch := classicMatcher(net, r, 6, 1)
	batch.Trans = &batchEcho{ExponentialTransition{Router: r, Beta: 200}}
	for i, ct := range walks {
		want, err := pair.Match(ct)
		if err != nil {
			t.Fatalf("pairwise match %d: %v", i, err)
		}
		got, err := batch.Match(ct)
		if err != nil {
			t.Fatalf("batch match %d: %v", i, err)
		}
		if !reflect.DeepEqual(got.Matched, want.Matched) || got.Score != want.Score {
			t.Fatalf("walk %d: batch-model result diverged from pairwise", i)
		}
	}
}
