package hmm

import (
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/roadnet"
	"repro/internal/traj"
)

// addShortcuts implements Algorithm 2: for each candidate c_i^k
// (i ≥ 3 in the paper's 1-based indexing), find its best one-hop
// predecessors c_{i-2}^j (Eq. 20), build the shortcut shortest path,
// project x_{i-1} onto it to restore a pseudo-candidate c_{i-1}^u, and
// adopt the shortcut when its score (Eq. 21) beats the current f[c_i^k].
//
// Adopted pseudo-candidates are appended to layer i-1 with their f and
// pre entries, so the backward pass can walk through them.
//
// It returns how many table entries improved (adoptions) and how many
// shortcut constructions were examined (attempts) for telemetry.
func (m *Matcher) addShortcuts(ct traj.CellTrajectory, layers [][]Candidate, f [][]float64, pre [][]int, steps [][][]float64, deg *atomic.Int64) (adoptions, attempts int) {
	n := len(ct)
	for i := 2; i < n; i++ {
		// A shortcut needs the contiguous chain i-2 → i-1 → i; a dead
		// point anywhere in the window leaves its step table nil (the
		// chain restarted there) and the window is skipped.
		if steps[i] == nil || steps[i-1] == nil {
			continue
		}
		// Pre-compute, per middle candidate l, its best grand-predecessor
		// score: bestTwo[l] pairs with Eq. 20's inner max over j.
		nCur := len(layers[i]) // layers may grow behind us; bound to the original set
		for kk := 0; kk < nCur; kk++ {
			cur := &layers[i][kk]
			if cur.pseudo {
				continue
			}
			preds := m.bestOneHopPredecessors(layers, f, steps, i, kk, m.Cfg.Shortcuts)
			for _, j := range preds {
				attempts++
				grand := &layers[i-2][j]
				route, ok := m.Router.RouteBetween(grand.Pos(), cur.Pos())
				if !ok || len(route.Segs) == 0 {
					continue
				}
				u, ok := m.projectOntoRoute(route, ct[i-1])
				if !ok {
					continue
				}
				u.Obs = m.Obs.Score(ct, i-1, &u)
				w1, ok1 := m.stepScore(ct, i-1, grand, &u, deg)
				w2, ok2 := m.stepScore(ct, i, &u, cur, deg)
				if !ok1 || !ok2 {
					continue
				}
				fPrime := f[i-2][j] + w1 + w2
				if fPrime > f[i][kk] {
					adoptions++
					// Materialize the pseudo-candidate in layer i-1.
					layers[i-1] = append(layers[i-1], u)
					f[i-1] = append(f[i-1], f[i-2][j]+w1)
					pre[i-1] = append(pre[i-1], j)
					f[i][kk] = fPrime
					pre[i][kk] = len(layers[i-1]) - 1
				}
			}
		}
	}
	return adoptions, attempts
}

// bestOneHopPredecessors returns the indices (into layers[i-2]) of the
// top-K grand-predecessors of layers[i][k] by the two-step score of
// Eq. 20, maximizing over the middle candidate l. When every middle
// transition is unreachable (the degenerate unqualified-set case the
// shortcut exists for), it falls back to ranking grand-predecessors by
// their accumulated Viterbi score.
func (m *Matcher) bestOneHopPredecessors(layers [][]Candidate, f [][]float64, steps [][][]float64, i, k, topK int) []int {
	type scored struct {
		j int
		s float64
	}
	var out []scored
	for j := range layers[i-2] {
		if layers[i-2][j].pseudo || j >= len(steps[i-1]) {
			continue
		}
		best := math.Inf(-1)
		// steps only covers the original candidate sets; pseudo rows
		// appended later are beyond its bounds and skipped.
		for l := range steps[i-1][j] {
			w1 := steps[i-1][j][l]
			if math.IsNaN(w1) || l >= len(steps[i]) {
				continue
			}
			w2 := steps[i][l][k]
			if math.IsNaN(w2) {
				continue
			}
			if s := w1 + w2; s > best {
				best = s
			}
		}
		if !math.IsInf(best, -1) {
			out = append(out, scored{j, best})
		}
	}
	if len(out) == 0 {
		for j := range layers[i-2] {
			if !layers[i-2][j].pseudo && !math.IsInf(f[i-2][j], -1) {
				out = append(out, scored{j, f[i-2][j]})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].s > out[b].s })
	if topK > len(out) {
		topK = len(out)
	}
	idx := make([]int, topK)
	for i := 0; i < topK; i++ {
		idx[i] = out[i].j
	}
	return idx
}

// projectOntoRoute finds the segment of the route closest to the
// trajectory point and returns it as a pseudo-candidate (the projected
// road c_{i-1}^u of §IV-E2).
func (m *Matcher) projectOntoRoute(route roadnet.Route, p traj.CellPoint) (Candidate, bool) {
	best := Candidate{pseudo: true}
	bestD := math.Inf(1)
	for _, sid := range route.Segs {
		proj, frac := m.Net.Project(sid, p.P)
		if d := proj.Dist(p.P); d < bestD {
			bestD = d
			best.Seg = sid
			best.Frac = frac
			best.Proj = proj
			best.Dist = d
		}
	}
	if math.IsInf(bestD, 1) {
		return Candidate{}, false
	}
	return best, true
}
