package hmm

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

func streamWithPolicy(net *roadnet.Network, r *roadnet.Router, policy BreakPolicy, lag int, dead ...int) *StreamMatcher {
	m := deadMatcher(net, r, policy, dead...)
	return NewStreamMatcher(m, lag)
}

func pushAll(t *testing.T, s *StreamMatcher, ct traj.CellTrajectory) []Candidate {
	t.Helper()
	var out []Candidate
	for i, p := range ct {
		got, err := s.Push(p)
		if err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		out = append(out, got...)
	}
	return append(out, s.Flush()...)
}

func TestStreamDeadPointErrors(t *testing.T) {
	net, r := gridWorld(t, 6, 6)
	s := streamWithPolicy(net, r, BreakError, 1, 1)
	if _, err := s.Push(traj.CellPoint{Tower: -1, P: geo.Pt(50, 100), T: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push(traj.CellPoint{Tower: -1, P: geo.Pt(150, 100), T: 60}); err == nil {
		t.Fatal("dead point under BreakError did not error the push")
	}
}

func TestStreamDeadPointSkip(t *testing.T) {
	net, r := gridWorld(t, 6, 6)
	ct := lineTraj()
	s := streamWithPolicy(net, r, BreakSkip, 1, 2)
	out := pushAll(t, s, ct)
	if len(out) != len(ct) {
		t.Fatalf("emitted %d matches for %d points", len(out), len(ct))
	}
	if !s.Dead()[2] {
		t.Error("point 2 not marked dead")
	}
	if out[2].Obs != 0 {
		t.Error("dead point emitted a non-zero candidate")
	}
	for _, i := range []int{0, 1, 3, 4} {
		if out[i].Obs <= 0 {
			t.Errorf("alive point %d emitted zero candidate", i)
		}
	}
	if len(s.Gaps()) != 0 {
		t.Errorf("Skip policy recorded gaps: %v", s.Gaps())
	}
	if len(s.Path()) == 0 {
		t.Error("empty path")
	}
}

func TestStreamSplitGaps(t *testing.T) {
	net, r := gridWorld(t, 6, 6)
	s := streamWithPolicy(net, r, BreakSplit, 1, 2)
	pushAll(t, s, lineTraj())
	gaps := s.Gaps()
	if len(gaps) != 1 {
		t.Fatalf("gaps = %v, want exactly one", gaps)
	}
	if g := gaps[0]; g.From != 1 || g.To != 3 || g.Reason != GapNoCandidates {
		t.Errorf("gap = %+v, want {1 3 no-candidates}", g)
	}
	if len(s.Path()) == 0 {
		t.Error("empty path")
	}
}

func TestStreamBackToBackDead(t *testing.T) {
	net, r := gridWorld(t, 6, 6)
	s := streamWithPolicy(net, r, BreakSplit, 1, 2, 3)
	pushAll(t, s, lineTraj())
	gaps := s.Gaps()
	if len(gaps) != 1 || gaps[0].From != 1 || gaps[0].To != 4 {
		t.Errorf("gaps = %v, want one gap 1 -> 4", gaps)
	}
}

func TestStreamLeadingTrailingDead(t *testing.T) {
	net, r := gridWorld(t, 6, 6)
	for _, policy := range []BreakPolicy{BreakSkip, BreakSplit} {
		s := streamWithPolicy(net, r, policy, 1, 0, 4)
		out := pushAll(t, s, lineTraj())
		if len(out) != 5 {
			t.Fatalf("%v: emitted %d matches for 5 points", policy, len(out))
		}
		if !s.Dead()[0] || !s.Dead()[4] {
			t.Errorf("%v: endpoints not marked dead", policy)
		}
		if out[0].Obs != 0 || out[4].Obs != 0 {
			t.Errorf("%v: dead endpoints emitted candidates", policy)
		}
		if len(s.Gaps()) != 0 {
			t.Errorf("%v: gaps = %v, want none for edge dead points", policy, s.Gaps())
		}
	}
}

// TestStreamPendingAcrossBreak checks the emit lag stays consistent
// when a dead point passes through the pending window.
func TestStreamPendingAcrossBreak(t *testing.T) {
	net, r := gridWorld(t, 6, 6)
	s := streamWithPolicy(net, r, BreakSkip, 2, 2)
	ct := lineTraj()
	for i, p := range ct {
		if _, err := s.Push(p); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		wantPending := i + 1 - s.emitted
		if got := s.Pending(); got != wantPending || got > s.Lag+1 {
			t.Fatalf("after push %d: pending %d (emitted %d), lag %d", i, got, s.emitted, s.Lag)
		}
	}
	s.Flush()
	if s.Pending() != 0 {
		t.Errorf("pending after flush = %d", s.Pending())
	}
	if len(s.Matched()) != len(ct) {
		t.Errorf("matched %d of %d points", len(s.Matched()), len(ct))
	}
}

func TestStreamSanitize(t *testing.T) {
	net, r := gridWorld(t, 6, 6)
	bad := traj.CellPoint{Tower: -1, P: geo.Pt(math.NaN(), 100), T: 60}

	// Strict (the default): push errors.
	s := NewStreamMatcher(classicMatcher(net, r, 5, 0), 1)
	if _, err := s.Push(bad); err == nil {
		t.Fatal("NaN point under strict sanitization did not error")
	}

	// Drop: the point is swallowed without consuming a stream index,
	// and a stale timestamp is dropped too.
	m := classicMatcher(net, r, 5, 0)
	m.Cfg.Sanitize = traj.SanitizeDrop
	s = NewStreamMatcher(m, 0)
	ct := lineTraj()
	var emitted int
	for i, p := range ct {
		out, err := s.Push(p)
		if err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		emitted += len(out)
		if i == 2 {
			if out, err := s.Push(bad); err != nil || out != nil {
				t.Fatalf("dropped point: out=%v err=%v", out, err)
			}
			stale := traj.CellPoint{Tower: -1, P: geo.Pt(300, 100), T: p.T}
			if out, err := s.Push(stale); err != nil || out != nil {
				t.Fatalf("stale point: out=%v err=%v", out, err)
			}
		}
	}
	emitted += len(s.Flush())
	if emitted != len(ct) {
		t.Errorf("emitted %d matches, want %d (dropped points consume no index)", emitted, len(ct))
	}
	rep := s.Sanitize()
	if rep.BadCoords != 1 || rep.BadTimes != 1 {
		t.Errorf("report = %+v, want 1 bad coord and 1 bad timestamp", rep)
	}
}

// TestStreamMatchesBatchWithDeadPoints cross-checks the streaming
// matcher against the batch matcher on the same dead-point input: with
// a lag covering the whole trajectory, both must choose the same
// candidates.
func TestStreamMatchesBatchWithDeadPoints(t *testing.T) {
	net, r := gridWorld(t, 6, 6)
	ct := lineTraj()
	batch, err := deadMatcher(net, r, BreakSkip, 2).Match(ct)
	if err != nil {
		t.Fatal(err)
	}
	s := streamWithPolicy(net, r, BreakSkip, len(ct), 2)
	out := pushAll(t, s, ct)
	for i := range ct {
		if out[i].Seg != batch.Matched[i].Seg {
			t.Errorf("point %d: stream %d, batch %d", i, out[i].Seg, batch.Matched[i].Seg)
		}
	}
}
