package hmm

import (
	"fmt"
	"math"

	"repro/internal/cellular"
	"repro/internal/geo"
	"repro/internal/traj"
)

// This file makes StreamMatcher state a first-class, portable artifact:
// ExportState lifts the complete in-flight matching state into an
// exported value and NewStreamMatcherFromState rebuilds a matcher that
// continues exactly where the exported one stopped. The serving layer's
// session checkpointer serializes the exported state (together with the
// learned session's caches, internal/core) so a crash, restart, or
// handover never loses an in-flight trajectory: a restored matcher
// pushed the remaining points produces output byte-identical to an
// uninterrupted run, because the Viterbi recurrence is deterministic in
// its table (f, pre) and the table round-trips bit-exactly.

// StreamState is the complete serializable state of a StreamMatcher
// mid-stream. All index invariants of the live matcher hold: Points,
// Layers, F, Pre, and Dead are index-aligned per accepted point; dead
// points hold nil Layers/F/Pre rows; Matched has exactly Emitted
// entries.
//
// ExportState returns views, not deep copies: the exported slices alias
// the matcher's live state and are only consistent while the matcher is
// not pushed. Callers that serialize asynchronously must either encode
// before releasing the lock that serializes pushes, or deep-copy.
type StreamState struct {
	// Lag is the matcher's fixed emission lag.
	Lag int
	// Points are the accepted (pushed and not sanitizer-dropped) points.
	Points []StreamPoint
	// Layers holds the candidate layer per point (nil for dead points).
	Layers [][]Candidate
	// F and Pre are the Viterbi forward scores and backpointers per
	// point, index-aligned with Layers (Pre[i][j] indexes Layers[i-1];
	// -1 marks a chain restart).
	F [][]float64
	// Pre holds per-candidate backpointers (see F).
	Pre [][]int
	// Dead marks accepted points that had no candidates.
	Dead []bool
	// Emitted is how many points have been finalized so far.
	Emitted int
	// Matched are the finalized matches (len == Emitted).
	Matched []Candidate
	// Gaps are the stitch boundaries finalized so far (Split policy).
	Gaps []Gap
	// SanitizeBadCoords / SanitizeBadTimes reproduce the drop-mode
	// sanitization report.
	SanitizeBadCoords int
	SanitizeBadTimes  int
	// LastT is the last accepted timestamp (-Inf before the first).
	LastT float64
	// Degraded counts scoring events that fell back to the classical
	// Eq. 2/3 models so far.
	Degraded int64
}

// StreamPoint is one accepted trajectory point in exported form
// (mirror of traj.CellPoint with stable primitive fields).
type StreamPoint struct {
	Tower int
	X, Y  float64
	T     float64
}

// ExportState exports the matcher's complete resumable state. See
// StreamState for the aliasing contract.
func (s *StreamMatcher) ExportState() *StreamState {
	pts := make([]StreamPoint, len(s.ct))
	for i, p := range s.ct {
		pts[i] = StreamPoint{Tower: int(p.Tower), X: p.P.X, Y: p.P.Y, T: p.T}
	}
	return &StreamState{
		Lag:               s.Lag,
		Points:            pts,
		Layers:            s.layers,
		F:                 s.f,
		Pre:               s.pre,
		Dead:              s.dead,
		Emitted:           s.emitted,
		Matched:           s.matched,
		Gaps:              s.gaps,
		SanitizeBadCoords: s.srep.BadCoords,
		SanitizeBadTimes:  s.srep.BadTimes,
		LastT:             s.lastT,
		Degraded:          s.deg.Load(),
	}
}

// NewStreamMatcherFromState rebuilds a StreamMatcher over m that
// resumes exactly at st. The state is validated structurally (aligned
// lengths, in-range backpointers and gap indices) so a corrupted or
// hand-built state errors here instead of panicking mid-push. The
// matcher takes ownership of the state's slices.
func NewStreamMatcherFromState(m *Matcher, st *StreamState) (*StreamMatcher, error) {
	if err := validateStreamState(st); err != nil {
		return nil, err
	}
	s := NewStreamMatcher(m, st.Lag)
	ct := make(traj.CellTrajectory, len(st.Points))
	for i, p := range st.Points {
		ct[i] = traj.CellPoint{
			Tower: cellular.TowerID(p.Tower),
			P:     geo.Point{X: p.X, Y: p.Y},
			T:     p.T,
		}
	}
	s.ct = ct
	s.layers = st.Layers
	s.f = st.F
	s.pre = st.Pre
	s.dead = st.Dead
	s.emitted = st.Emitted
	s.matched = st.Matched
	s.gaps = st.Gaps
	s.srep = traj.SanitizeReport{BadCoords: st.SanitizeBadCoords, BadTimes: st.SanitizeBadTimes}
	s.lastT = st.LastT
	s.deg.Store(st.Degraded)
	return s, nil
}

// validateStreamState checks every structural invariant a live matcher
// maintains, so restored state can be trusted by the push/emit paths.
func validateStreamState(st *StreamState) error {
	n := len(st.Points)
	if len(st.Layers) != n || len(st.F) != n || len(st.Pre) != n || len(st.Dead) != n {
		return fmt.Errorf("hmm: stream state: misaligned arrays: %d points, %d layers, %d f, %d pre, %d dead",
			n, len(st.Layers), len(st.F), len(st.Pre), len(st.Dead))
	}
	if st.Lag < 0 {
		return fmt.Errorf("hmm: stream state: negative lag %d", st.Lag)
	}
	if st.Emitted < 0 || st.Emitted > n {
		return fmt.Errorf("hmm: stream state: emitted %d out of range for %d points", st.Emitted, n)
	}
	if len(st.Matched) != st.Emitted {
		return fmt.Errorf("hmm: stream state: %d matched entries for %d emitted points", len(st.Matched), st.Emitted)
	}
	for i := 0; i < n; i++ {
		nc := len(st.Layers[i])
		if st.Dead[i] && nc != 0 {
			return fmt.Errorf("hmm: stream state: dead point %d has %d candidates", i, nc)
		}
		if !st.Dead[i] && nc == 0 {
			return fmt.Errorf("hmm: stream state: alive point %d has no candidates", i)
		}
		if len(st.F[i]) != nc || len(st.Pre[i]) != nc {
			return fmt.Errorf("hmm: stream state: point %d: %d candidates, %d scores, %d backpointers",
				i, nc, len(st.F[i]), len(st.Pre[i]))
		}
		prev := 0
		if i > 0 {
			prev = len(st.Layers[i-1])
		}
		for j, p := range st.Pre[i] {
			if p < -1 || (i == 0 && p >= 0) || p >= prev {
				return fmt.Errorf("hmm: stream state: point %d candidate %d: backpointer %d out of range (prev layer %d)",
					i, j, p, prev)
			}
		}
	}
	for _, g := range st.Gaps {
		if g.From < 0 || g.To <= g.From || g.To >= n {
			return fmt.Errorf("hmm: stream state: gap [%d,%d] out of range for %d points", g.From, g.To, n)
		}
		if g.Reason != GapNoCandidates && g.Reason != GapViterbiBreak {
			return fmt.Errorf("hmm: stream state: gap [%d,%d]: unknown reason %d", g.From, g.To, int(g.Reason))
		}
	}
	if math.IsNaN(st.LastT) {
		return fmt.Errorf("hmm: stream state: NaN last timestamp")
	}
	if st.Degraded < 0 {
		return fmt.Errorf("hmm: stream state: negative degraded count %d", st.Degraded)
	}
	return nil
}
