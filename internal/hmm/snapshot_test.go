package hmm

import (
	"math"
	"strings"
	"testing"
)

// twoLayerState builds a minimal valid mid-stream state: two points,
// two candidates each, second layer chained to the first.
func twoLayerState() *StreamState {
	return &StreamState{
		Lag: 1,
		Points: []StreamPoint{
			{Tower: 0, X: 1, Y: 2, T: 10},
			{Tower: 1, X: 3, Y: 4, T: 20},
		},
		Layers: [][]Candidate{
			{{Seg: 1}, {Seg: 2}},
			{{Seg: 3}, {Seg: 4}},
		},
		F:       [][]float64{{-1, -2}, {-3, -4}},
		Pre:     [][]int{{-1, -1}, {0, 1}},
		Dead:    []bool{false, false},
		Emitted: 1,
		Matched: []Candidate{{Seg: 1}},
		LastT:   20,
	}
}

func TestStreamStateRoundTrip(t *testing.T) {
	st := twoLayerState()
	sm, err := NewStreamMatcherFromState(&Matcher{}, st)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Pending() != 1 || len(sm.Matched()) != 1 {
		t.Fatalf("restored matcher: pending=%d matched=%d", sm.Pending(), len(sm.Matched()))
	}
	out := sm.ExportState()
	if out.Emitted != st.Emitted || out.LastT != st.LastT || len(out.Points) != len(st.Points) {
		t.Fatalf("export after restore differs: %+v", out)
	}
	for i := range st.Points {
		if out.Points[i] != st.Points[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, out.Points[i], st.Points[i])
		}
	}
}

func TestStreamStateValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*StreamState)
		want string
	}{
		{"misaligned", func(st *StreamState) { st.Dead = st.Dead[:1] }, "misaligned"},
		{"negative lag", func(st *StreamState) { st.Lag = -1 }, "negative lag"},
		{"emitted out of range", func(st *StreamState) { st.Emitted = 3 }, "out of range"},
		{"matched mismatch", func(st *StreamState) { st.Matched = nil }, "matched entries"},
		{"dead with candidates", func(st *StreamState) { st.Dead[1] = true }, "has 2 candidates"},
		{"alive without candidates", func(st *StreamState) {
			st.Layers[1] = nil
			st.F[1] = nil
			st.Pre[1] = nil
		}, "no candidates"},
		{"scores misaligned", func(st *StreamState) { st.F[1] = st.F[1][:1] }, "scores"},
		{"backpointer out of range", func(st *StreamState) { st.Pre[1][0] = 2 }, "backpointer"},
		{"first layer backpointer", func(st *StreamState) { st.Pre[0][0] = 0 }, "backpointer"},
		{"gap out of range", func(st *StreamState) {
			st.Gaps = []Gap{{From: 0, To: 5, Reason: GapNoCandidates}}
		}, "gap"},
		{"gap unknown reason", func(st *StreamState) {
			st.Gaps = []Gap{{From: 0, To: 1, Reason: GapReason(9)}}
		}, "unknown reason"},
		{"NaN timestamp", func(st *StreamState) { st.LastT = math.NaN() }, "NaN"},
		{"negative degraded", func(st *StreamState) { st.Degraded = -1 }, "degraded"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := twoLayerState()
			tc.mut(st)
			_, err := NewStreamMatcherFromState(&Matcher{}, st)
			if err == nil {
				t.Fatal("invalid state accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// A dead point carries nil rows and must round-trip as such.
func TestStreamStateDeadPointRoundTrip(t *testing.T) {
	st := twoLayerState()
	st.Points = append(st.Points, StreamPoint{Tower: 2, X: 5, Y: 6, T: 30})
	st.Layers = append(st.Layers, nil)
	st.F = append(st.F, nil)
	st.Pre = append(st.Pre, nil)
	st.Dead = append(st.Dead, true)
	st.LastT = 30
	sm, err := NewStreamMatcherFromState(&Matcher{}, st)
	if err != nil {
		t.Fatal(err)
	}
	out := sm.ExportState()
	if !out.Dead[2] || out.Layers[2] != nil {
		t.Fatalf("dead point did not round-trip: dead=%v layer=%v", out.Dead[2], out.Layers[2])
	}
}
