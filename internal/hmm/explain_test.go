package hmm

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

func explainMatcher(t *testing.T) (*Matcher, *Result) {
	t.Helper()
	net, r := gridWorld(t, 6, 3)
	m := classicMatcher(net, r, 8, 0)
	m.Cfg.Explain = true
	res, err := m.Match(lineTraj())
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

func TestExplainDisabledByDefault(t *testing.T) {
	net, r := gridWorld(t, 6, 3)
	res, err := classicMatcher(net, r, 8, 0).Match(lineTraj())
	if err != nil {
		t.Fatal(err)
	}
	if res.Explain != nil {
		t.Fatal("Explain populated without Config.Explain")
	}
}

func TestExplainArtifact(t *testing.T) {
	_, res := explainMatcher(t)
	ex := res.Explain
	if ex == nil {
		t.Fatal("no Explain artifact")
	}
	if ex.TopK != 5 || ex.MarginThreshold != 0.05 {
		t.Errorf("defaults top_k=%d threshold=%g, want 5/0.05", ex.TopK, ex.MarginThreshold)
	}
	if len(ex.Points) != len(res.Matched) {
		t.Fatalf("%d explain points for %d matched points", len(ex.Points), len(res.Matched))
	}
	low := 0
	for i, pt := range ex.Points {
		if pt.Index != i {
			t.Errorf("point %d has index %d", i, pt.Index)
		}
		if pt.Dead {
			t.Fatalf("point %d marked dead on a clean match", i)
		}
		if pt.Chosen == nil {
			t.Fatalf("point %d has no choice", i)
		}
		if pt.Chosen.Seg != int(res.Matched[i].Seg) {
			t.Errorf("point %d chosen seg %d != matched seg %d", i, pt.Chosen.Seg, res.Matched[i].Seg)
		}
		if len(pt.Candidates) == 0 || len(pt.Candidates) > ex.TopK+1 {
			t.Errorf("point %d has %d candidates, want 1..%d", i, len(pt.Candidates), ex.TopK+1)
		}
		chosenFlags := 0
		for _, c := range pt.Candidates {
			if c.Chosen {
				chosenFlags++
				if c.Seg != pt.Chosen.Seg {
					t.Errorf("point %d chosen-flag on seg %d, choice says %d", i, c.Seg, pt.Chosen.Seg)
				}
			}
			if c.ClassicalObs <= 0 || c.ClassicalObs > 1 {
				t.Errorf("point %d seg %d classical obs %g outside (0,1]", i, c.Seg, c.ClassicalObs)
			}
			if c.Fallback {
				t.Errorf("point %d seg %d flagged fallback with a finite model", i, c.Seg)
			}
			if math.IsNaN(c.Obs) || math.IsInf(c.Obs, 0) {
				t.Errorf("point %d seg %d non-finite obs %g", i, c.Seg, c.Obs)
			}
		}
		if chosenFlags != 1 {
			t.Errorf("point %d has %d chosen flags, want exactly 1", i, chosenFlags)
		}
		ch := pt.Chosen
		if math.Abs(ch.Margin) > explainMarginCap {
			t.Errorf("point %d margin %g beyond cap", i, ch.Margin)
		}
		if ch.LowMargin {
			low++
			if ch.Margin >= ex.MarginThreshold {
				t.Errorf("point %d flagged low-margin at %g >= %g", i, ch.Margin, ex.MarginThreshold)
			}
		}
		if i == 0 {
			if ch.PrevSeg != -1 {
				t.Errorf("first point has prev seg %d, want -1", ch.PrevSeg)
			}
			continue
		}
		// Continuous chain: the backpointer must name the previous
		// matched candidate and carry its transition evidence.
		if ch.PrevSeg != int(res.Matched[i-1].Seg) {
			t.Errorf("point %d prev seg %d != matched[%d] seg %d",
				i, ch.PrevSeg, i-1, res.Matched[i-1].Seg)
		}
		if ch.TransScore < 0 {
			t.Errorf("point %d trans score %g < 0", i, ch.TransScore)
		}
		if len(ch.Route) == 0 {
			t.Errorf("point %d transition carries no route", i)
		}
	}
	if low != ex.LowMarginDecisions {
		t.Errorf("LowMarginDecisions %d, counted %d flags", ex.LowMarginDecisions, low)
	}
}

func TestExplainTopKBound(t *testing.T) {
	net, r := gridWorld(t, 6, 3)
	m := classicMatcher(net, r, 10, 0)
	m.Cfg.Explain = true
	m.Cfg.ExplainTopK = 2
	res, err := m.Match(lineTraj())
	if err != nil {
		t.Fatal(err)
	}
	if res.Explain.TopK != 2 {
		t.Fatalf("top_k = %d, want 2", res.Explain.TopK)
	}
	for i, pt := range res.Explain.Points {
		// The chosen candidate is always included, so 3 is the max.
		if len(pt.Candidates) > 3 {
			t.Errorf("point %d has %d candidates with top_k 2", i, len(pt.Candidates))
		}
	}
}

// Dead points under BreakSkip carry no breakdown, and the chain restart
// after the gap reports PrevSeg -1.
func TestExplainDeadPoints(t *testing.T) {
	net, r := gridWorld(t, 6, 6)
	m := deadMatcher(net, r, BreakSkip, 2)
	m.Cfg.Explain = true
	res, err := m.Match(lineTraj())
	if err != nil {
		t.Fatal(err)
	}
	ex := res.Explain
	if ex == nil {
		t.Fatal("no Explain artifact")
	}
	if !ex.Points[2].Dead || ex.Points[2].Chosen != nil || len(ex.Points[2].Candidates) != 0 {
		t.Errorf("dead point explained as %+v", ex.Points[2])
	}
	if ex.Points[1].Chosen == nil || ex.Points[3].Chosen == nil || ex.Points[4].Chosen == nil {
		t.Fatal("alive neighbors unexplained")
	}
	// The chain restarts on the far side of the gap (steps stay nil
	// across it), so the restart point reports no predecessor ...
	if got := ex.Points[3].Chosen.PrevSeg; got != -1 {
		t.Errorf("chain-restart point 3 prev seg %d, want -1", got)
	}
	// ... and the transition evidence resumes at the next point.
	if got := ex.Points[4].Chosen.PrevSeg; got != int(res.Matched[3].Seg) {
		t.Errorf("point 4 prev seg %d, want matched[3] seg %d", got, res.Matched[3].Seg)
	}
}

// A NaN-scoring observation model degrades every candidate to the
// classical fallback; the breakdown must say so.
func TestExplainFallbackFlag(t *testing.T) {
	net, r := gridWorld(t, 6, 3)
	m := classicMatcher(net, r, 5, 0)
	m.Obs = nanObs{m.Obs}
	m.Cfg.Explain = true
	res, err := m.Match(lineTraj())
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded == 0 {
		t.Fatal("NaN observation model did not degrade")
	}
	for i, pt := range res.Explain.Points {
		for _, c := range pt.Candidates {
			if !c.Fallback {
				t.Errorf("point %d seg %d not flagged fallback under a NaN model", i, c.Seg)
			}
			if c.Obs != c.ClassicalObs {
				t.Errorf("point %d seg %d fallback obs %g != classical %g", i, c.Seg, c.Obs, c.ClassicalObs)
			}
		}
	}
}

// Explain must survive shortcut pseudo-candidates: the skipped point's
// choice reports the projected road with the Pseudo flag, and the
// displaced step-table entries do not panic the assembly.
func TestExplainWithShortcuts(t *testing.T) {
	// The Observation-1 scenario from TestShortcutSkipsNoisyPoint: a
	// main street plus a disconnected side street that captures the
	// noisy middle point's whole candidate set.
	var b roadnet.Builder
	var main []roadnet.NodeID
	for i := 0; i <= 8; i++ {
		main = append(main, b.AddNode(geo.Pt(float64(i)*100, 300)))
	}
	for i := 0; i+1 <= 8; i++ {
		if _, _, err := b.AddTwoWay(main[i], main[i+1], roadnet.Local); err != nil {
			t.Fatal(err)
		}
	}
	s0 := b.AddNode(geo.Pt(150, 700))
	s1 := b.AddNode(geo.Pt(350, 700))
	if _, _, err := b.AddTwoWay(s0, s1, roadnet.Local); err != nil {
		t.Fatal(err)
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := roadnet.NewRouter(net)
	ct := trajAlong(
		geo.Pt(30, 310), geo.Pt(130, 295), geo.Pt(250, 690),
		geo.Pt(370, 305), geo.Pt(480, 300), geo.Pt(600, 295),
	)
	m := classicMatcher(net, r, 2, 1)
	m.Cfg.Explain = true
	res, err := m.Match(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Skipped[2] {
		t.Fatal("scenario regressed: noisy point not skipped")
	}
	ex := res.Explain
	if len(ex.Points) != len(ct) {
		t.Fatalf("%d explain points for %d inputs", len(ex.Points), len(ct))
	}
	if ch := ex.Points[2].Chosen; ch == nil || !ch.Pseudo {
		t.Errorf("skipped point's choice = %+v, want Pseudo", ch)
	}
	if ch := ex.Points[2].Chosen; ch != nil && ch.Seg != int(res.Matched[2].Seg) {
		t.Errorf("skipped point chosen seg %d != matched %d", ch.Seg, res.Matched[2].Seg)
	}
	// Downstream of the pseudo-candidate the chain continues; its
	// successor names the pseudo road as predecessor.
	if ch := ex.Points[3].Chosen; ch == nil || ch.PrevSeg != int(res.Matched[2].Seg) {
		t.Errorf("successor of pseudo-candidate reports prev %+v", ch)
	}
}

func TestScoreMargin(t *testing.T) {
	sum := &Matcher{Cfg: Config{Scoring: ScoreSum}}
	logp := &Matcher{Cfg: Config{Scoring: ScoreLogProd}}
	cases := []struct {
		name      string
		m         *Matcher
		w, r      float64
		hasRunner bool
		want      float64
	}{
		{"unopposed", sum, 0.5, 0, false, explainMarginCap},
		{"sum ratio", sum, 0.6, 0.2, true, math.Log(3)},
		{"sum zero winner", sum, 0, 0.2, true, 0},
		{"sum zero runner", sum, 0.5, 0, true, explainMarginCap},
		{"sum negative runner", sum, 0.5, -1, true, explainMarginCap},
		{"logprod diff", logp, -3, -5, true, 2},
		{"logprod clamp", logp, 0, -1000, true, explainMarginCap},
		{"logprod clamp neg", logp, -1000, 0, true, -explainMarginCap},
	}
	for _, c := range cases {
		if got := c.m.scoreMargin(c.w, c.r, c.hasRunner); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: margin(%g,%g) = %g, want %g", c.name, c.w, c.r, got, c.want)
		}
	}
	if got := sum.scoreMargin(math.NaN(), 0.5, true); got != 0 {
		t.Errorf("NaN winner margin = %g, want 0", got)
	}
}

// With explain and drift disabled, the memoized per-step scoring stays
// allocation-free (the hot path the acceptance gate pins).
func TestStepScoreNoAllocs(t *testing.T) {
	net, r := gridWorld(t, 6, 6)
	m := classicMatcher(net, r, 5, 0)
	ct := lineTraj()
	from := m.Obs.Candidates(ct, 0, 5)
	to := m.Obs.Candidates(ct, 1, 5)
	if len(from) == 0 || len(to) == 0 {
		t.Fatal("no candidates")
	}
	// Warm the router's route cache: the steady-state hot path is a
	// cache hit.
	if _, ok := m.stepScore(ct, 1, &from[0], &to[0], nil); !ok {
		t.Fatal("transition unreachable")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		m.stepScore(ct, 1, &from[0], &to[0], nil)
	})
	if allocs != 0 {
		t.Errorf("stepScore allocates %.1f/op on the warm path, want 0", allocs)
	}
}
