package hmm

import (
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/traj"
)

// Ablation benches (DESIGN.md §6): shortcut construction cost and the
// step-score memoization's effect on Viterbi.

func benchTrajectory(rng *rand.Rand, n int) traj.CellTrajectory {
	ct := make(traj.CellTrajectory, n)
	x, y := 200.0, 400.0
	for i := 0; i < n; i++ {
		x += 80 + rng.Float64()*120
		y += rng.Float64()*300 - 150
		ct[i] = traj.CellPoint{Tower: -1, P: geo.Pt(x, y), T: float64(i) * 60}
	}
	return ct
}

func benchMatch(b *testing.B, k, shortcuts int) {
	net, r := gridWorld(b, 25, 12)
	m := classicMatcher(net, r, k, shortcuts)
	rng := rand.New(rand.NewSource(7))
	trajs := make([]traj.CellTrajectory, 16)
	for i := range trajs {
		trajs[i] = benchTrajectory(rng, 12)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Match(trajs[i%len(trajs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchNoShortcuts(b *testing.B)   { benchMatch(b, 10, 0) }
func BenchmarkMatchOneShortcut(b *testing.B)   { benchMatch(b, 10, 1) }
func BenchmarkMatchFourShortcuts(b *testing.B) { benchMatch(b, 10, 4) }
func BenchmarkMatchLargeK(b *testing.B)        { benchMatch(b, 30, 1) }
