package hmm

import (
	"math"
	"sort"

	"repro/internal/obs"
	"repro/internal/traj"
)

// Decision-level explainability. With Config.Explain set, the matcher
// assembles an Explain artifact alongside the Result: per point, the
// top-k candidates with their emission-score breakdown (the learned
// score next to the classical Eq. 2 Gaussian it would fall back to),
// the chosen Viterbi backpointer with its step score and route, and
// the log-score margin between the chosen candidate and the runner-up
// — the per-decision confidence signal that low-confidence-region
// analyses and the continuous-learning loop consume. Everything here
// reads the Viterbi tables the match already built; the only extra
// model work is re-scoring the handful of chosen transitions whose
// memoized entries were displaced by shortcut pseudo-candidates.

// explainMarginCap bounds the reported margin so an unopposed decision
// (no runner-up, or a runner-up at zero probability) stays JSON-finite.
const explainMarginCap = 50

// Explain is the per-match decision explanation artifact.
type Explain struct {
	// TopK is the per-point candidate breakdown bound that was applied.
	TopK int `json:"top_k"`
	// MarginThreshold is the low-confidence margin (in nats) below
	// which a decision is flagged.
	MarginThreshold float64 `json:"margin_threshold"`
	// LowMarginDecisions counts flagged decisions across the match.
	LowMarginDecisions int `json:"low_margin_decisions"`
	// Points holds one entry per trajectory point, in order.
	Points []ExplainPoint `json:"points"`
}

// ExplainPoint explains the decision at one trajectory point.
type ExplainPoint struct {
	Index int `json:"index"`
	// Dead marks a point that had no candidates; it carries no
	// breakdown or choice.
	Dead bool `json:"dead,omitempty"`
	// Candidates is the top-k emission breakdown (the chosen candidate
	// is always included, even outside the top-k).
	Candidates []ExplainCandidate `json:"candidates,omitempty"`
	// Chosen explains the Viterbi decision (nil for dead points).
	Chosen *ExplainChoice `json:"chosen,omitempty"`
}

// ExplainCandidate is one candidate road's emission-score breakdown.
type ExplainCandidate struct {
	Seg  int     `json:"seg"`
	Dist float64 `json:"dist_m"`
	// Obs is the emission probability Viterbi saw: the learned P_O, or
	// the classical fallback when Fallback is set.
	Obs float64 `json:"obs"`
	// ClassicalObs is the Eq. 2 Gaussian of Dist — what the classical
	// HMM would have scored. The Obs/ClassicalObs gap is the learned
	// model's per-candidate contribution.
	ClassicalObs float64 `json:"classical_obs"`
	// Fallback marks a candidate whose learned score was non-finite,
	// so Obs IS ClassicalObs (a degraded-mode scoring event).
	Fallback bool `json:"fallback,omitempty"`
	// Chosen marks the candidate the backward pass selected.
	Chosen bool `json:"chosen,omitempty"`
}

// ExplainChoice explains the chosen candidate and the transition that
// led to it.
type ExplainChoice struct {
	Seg int `json:"seg"`
	// Pseudo marks a shortcut-synthesized candidate (Eq. 21's
	// projected road; not part of the original candidate set).
	Pseudo bool `json:"pseudo,omitempty"`
	// Score is the accumulated Viterbi score f of the chosen candidate
	// at this point.
	Score float64 `json:"score"`
	// Margin is the log-score margin (nats) between the chosen
	// candidate's accumulated score and the best alternative's at this
	// point — the decision confidence. Negative means the chain chose
	// a locally suboptimal candidate for global consistency; capped at
	// ±50 (an unopposed decision reports the cap).
	Margin float64 `json:"margin"`
	// Unopposed marks a single-candidate layer (no runner-up existed).
	Unopposed bool `json:"unopposed,omitempty"`
	// LowMargin flags Margin < the configured threshold.
	LowMargin bool `json:"low_margin,omitempty"`
	// PrevSeg is the chosen predecessor road at the previous point, or
	// -1 when the chain (re)starts here — first point, dead gap, or
	// Viterbi break.
	PrevSeg int `json:"prev_seg"`
	// TransScore is the memoized step weight W = accum(P_T·P_O) of the
	// chosen transition (absent at chain starts).
	TransScore float64 `json:"trans_score,omitempty"`
	// Route is the road-segment route of the chosen transition.
	Route []int `json:"route,omitempty"`
}

// explainState carries the per-match collection the assembly needs
// beyond the Viterbi tables: which original candidates fell back to
// the classical emission, and which candidate index the backward pass
// chose per point. Allocated only when Config.Explain is set.
type explainState struct {
	topK      int
	threshold float64
	fellback  [][]bool // aligned with the original (pre-shortcut) layers
	chosen    []int    // index into layers[i]; -1 where dead
}

func newExplainState(n, topK int, threshold float64) *explainState {
	if topK <= 0 {
		topK = 5
	}
	if threshold <= 0 {
		threshold = 0.05
	}
	st := &explainState{
		topK:      topK,
		threshold: threshold,
		fellback:  make([][]bool, n),
		chosen:    make([]int, n),
	}
	for i := range st.chosen {
		st.chosen[i] = -1
	}
	return st
}

// finiteOr maps NaN/Inf to a JSON-safe fallback.
func finiteOr(v, def float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return def
	}
	return v
}

// buildExplain assembles the Explain artifact from the finished match
// state. It returns the artifact plus the decision/low-margin counts
// for the telemetry flush.
func (m *Matcher) buildExplain(ct traj.CellTrajectory, es *explainState,
	layers, keep [][]Candidate, f [][]float64, pre [][]int, steps [][][]float64,
	dead []bool, alive []int) (*Explain, int64, int64) {

	ex := &Explain{
		TopK:            es.topK,
		MarginThreshold: es.threshold,
		Points:          make([]ExplainPoint, len(layers)),
	}
	var decisions, lowMargin int64
	prevAlive := make([]int, len(layers)) // previous alive index per point; -1 for the first
	for i := range prevAlive {
		prevAlive[i] = -1
	}
	for ai := 1; ai < len(alive); ai++ {
		prevAlive[alive[ai]] = alive[ai-1]
	}

	for i := range layers {
		pt := ExplainPoint{Index: i}
		if dead[i] || es.chosen[i] < 0 {
			pt.Dead = true
			ex.Points[i] = pt
			continue
		}
		decisions++
		chosen := es.chosen[i]
		cand := &layers[i][chosen]

		// Top-k emission breakdown over the original candidate set,
		// with the chosen candidate always included.
		order := make([]int, len(keep[i]))
		for j := range order {
			order[j] = j
		}
		sort.SliceStable(order, func(a, b int) bool {
			return keep[i][order[a]].Obs > keep[i][order[b]].Obs
		})
		take := es.topK
		if take > len(order) {
			take = len(order)
		}
		picked := order[:take]
		if chosen < len(keep[i]) {
			found := false
			for _, j := range picked {
				if j == chosen {
					found = true
					break
				}
			}
			if !found {
				picked = append(picked, chosen)
			}
		}
		pt.Candidates = make([]ExplainCandidate, 0, len(picked))
		for _, j := range picked {
			c := &keep[i][j]
			pt.Candidates = append(pt.Candidates, ExplainCandidate{
				Seg:          int(c.Seg),
				Dist:         c.Dist,
				Obs:          finiteOr(c.Obs, 0),
				ClassicalObs: m.fallbackObs(c.Dist),
				Fallback:     j < len(es.fellback[i]) && es.fellback[i][j],
				Chosen:       j == chosen,
			})
		}

		choice := &ExplainChoice{
			Seg:     int(cand.Seg),
			Pseudo:  cand.pseudo,
			Score:   finiteOr(f[i][chosen], 0),
			PrevSeg: -1,
		}

		// Margin: chosen accumulated score vs. the best alternative in
		// the same layer, in nats.
		runner, hasRunner := math.Inf(-1), false
		for j := range f[i] {
			if j == chosen {
				continue
			}
			hasRunner = true
			if f[i][j] > runner {
				runner = f[i][j]
			}
		}
		choice.Unopposed = !hasRunner
		choice.Margin = m.scoreMargin(f[i][chosen], runner, hasRunner)
		if choice.Margin < es.threshold {
			choice.LowMargin = true
			lowMargin++
		}

		// The chosen transition: predecessor, memoized step weight, and
		// route. Absent at chain starts (first point, dead gap, Viterbi
		// break).
		if p := prevAlive[i]; p == i-1 && chosen < len(pre[i]) {
			if prevIdx := pre[i][chosen]; prevIdx >= 0 && prevIdx < len(layers[p]) {
				prevCand := &layers[p][prevIdx]
				choice.PrevSeg = int(prevCand.Seg)
				w := math.NaN()
				if steps[i] != nil && prevIdx < len(steps[i]) && chosen < len(steps[i][prevIdx]) {
					w = steps[i][prevIdx][chosen]
				}
				if math.IsNaN(w) {
					// The memoized entry was displaced by a shortcut
					// pseudo-candidate; re-score this one transition.
					if ws, ok := m.stepScore(ct, i, prevCand, cand, nil); ok {
						w = ws
					}
				}
				choice.TransScore = finiteOr(w, 0)
				if route, ok := m.Router.RouteBetween(prevCand.Pos(), cand.Pos()); ok {
					segs := make([]int, len(route.Segs))
					for ri, s := range route.Segs {
						segs[ri] = int(s)
					}
					choice.Route = segs
				}
			}
		}
		pt.Chosen = choice
		ex.Points[i] = pt
	}
	ex.LowMarginDecisions = int(lowMargin)
	return ex, decisions, lowMargin
}

// scoreMargin maps the winner/runner-up accumulated scores to a margin
// in nats under the active scoring domain: log-prod scores are already
// logs, sum scores compare as a log-ratio.
func (m *Matcher) scoreMargin(winner, runner float64, hasRunner bool) float64 {
	if !hasRunner {
		return explainMarginCap
	}
	var margin float64
	if m.Cfg.Scoring == ScoreLogProd {
		margin = winner - runner
	} else {
		switch {
		case winner <= 0:
			margin = 0
		case runner <= 0:
			margin = explainMarginCap
		default:
			margin = math.Log(winner / runner)
		}
	}
	if margin > explainMarginCap {
		margin = explainMarginCap
	}
	if margin < -explainMarginCap {
		margin = -explainMarginCap
	}
	return finiteOr(margin, 0)
}

// --- drift feeding ---

// Drift sketches (obs.DefaultDrift; no-op unless a baseline consumer
// enabled the monitor). Signals: learned emission scores over the
// prepared candidate sets, memoized step weights along the chosen
// path, candidate-set sizes, and the per-match degraded-fallback rate.
// Values are sketched in the accumulation domain of the default
// ScoreSum scoring (probabilities in [0,1]); baseline and live sides
// are always computed identically, so the PSI comparison holds for any
// fixed configuration.
var (
	driftEmission   = obs.DefaultDrift.Sketch("emission", obs.UnitBuckets)
	driftTransition = obs.DefaultDrift.Sketch("transition", obs.UnitBuckets)
	driftCandidates = obs.DefaultDrift.Sketch("candidates", obs.CountBuckets)
	driftDegraded   = obs.DefaultDrift.Sketch("degraded", obs.UnitBuckets)
)

// feedDrift records one finished match into the drift sketches:
// per-candidate emission scores and per-point candidate counts over
// the original (pre-shortcut) sets, plus the degraded-event rate over
// all scoring events. Chosen-path transition weights are recorded
// inline during the backward pass (they are not recoverable here).
func feedDrift(keep [][]Candidate, deg, nCand, nEval int64) {
	for i := range keep {
		if len(keep[i]) == 0 {
			continue
		}
		driftCandidates.Observe(float64(len(keep[i])))
		for j := range keep[i] {
			driftEmission.Observe(keep[i][j].Obs)
		}
	}
	if total := nCand + nEval; total > 0 {
		r := float64(deg) / float64(total)
		if r > 1 {
			r = 1
		}
		driftDegraded.Observe(r)
	}
}
