package hmm

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/geo"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// deadObs wraps an observation model, returning no candidates for the
// listed point indices — a deterministic stand-in for off-map outliers.
type deadObs struct {
	ObservationModel
	dead map[int]bool
}

func (d deadObs) Candidates(ct traj.CellTrajectory, i, k int) []Candidate {
	if d.dead[i] {
		return nil
	}
	return d.ObservationModel.Candidates(ct, i, k)
}

// nanObs corrupts every observation probability to NaN (a misbehaving
// learned model); the matcher must degrade to the Eq. 2 fallback.
type nanObs struct{ ObservationModel }

func (n nanObs) Candidates(ct traj.CellTrajectory, i, k int) []Candidate {
	out := n.ObservationModel.Candidates(ct, i, k)
	for j := range out {
		out[j].Obs = math.NaN()
	}
	return out
}

// nanTrans reports every movement reachable but with a NaN probability;
// the matcher must degrade to the Eq. 3 fallback.
type nanTrans struct{ TransitionModel }

func (n nanTrans) Score(ct traj.CellTrajectory, i int, from, to *Candidate) (float64, bool) {
	if _, ok := n.TransitionModel.Score(ct, i, from, to); !ok {
		return 0, false
	}
	return math.NaN(), true
}

// lineTraj is a 5-point west-east track across the grid.
func lineTraj() traj.CellTrajectory {
	return trajAlong(
		geo.Pt(50, 100), geo.Pt(150, 100), geo.Pt(250, 100),
		geo.Pt(350, 100), geo.Pt(450, 100),
	)
}

func deadMatcher(net *roadnet.Network, r *roadnet.Router, policy BreakPolicy, dead ...int) *Matcher {
	m := classicMatcher(net, r, 5, 0)
	dm := map[int]bool{}
	for _, i := range dead {
		dm[i] = true
	}
	m.Obs = deadObs{m.Obs, dm}
	m.Cfg.OnBreak = policy
	return m
}

func TestBreakErrorPolicy(t *testing.T) {
	net, r := gridWorld(t, 6, 6)
	if _, err := deadMatcher(net, r, BreakError, 2).Match(lineTraj()); err == nil {
		t.Fatal("dead point under BreakError did not error")
	}
}

func TestBreakSkip(t *testing.T) {
	net, r := gridWorld(t, 6, 6)
	res, err := deadMatcher(net, r, BreakSkip, 2).Match(lineTraj())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Dead[2] {
		t.Error("point 2 not marked dead")
	}
	for _, i := range []int{0, 1, 3, 4} {
		if res.Dead[i] {
			t.Errorf("alive point %d marked dead", i)
		}
		if res.Matched[i].Obs <= 0 {
			t.Errorf("alive point %d has no match", i)
		}
	}
	if len(res.Gaps) != 0 {
		t.Errorf("Skip policy emitted gaps: %v", res.Gaps)
	}
	if len(res.Path) == 0 {
		t.Error("empty path")
	}
}

func TestBreakSplit(t *testing.T) {
	net, r := gridWorld(t, 6, 6)
	res, err := deadMatcher(net, r, BreakSplit, 2).Match(lineTraj())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Gaps) != 1 {
		t.Fatalf("gaps = %v, want exactly one", res.Gaps)
	}
	g := res.Gaps[0]
	if g.From != 1 || g.To != 3 || g.Reason != GapNoCandidates {
		t.Errorf("gap = %+v, want {1 3 no-candidates}", g)
	}
}

func TestBreakBackToBackDead(t *testing.T) {
	net, r := gridWorld(t, 6, 6)
	res, err := deadMatcher(net, r, BreakSplit, 2, 3).Match(lineTraj())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Gaps) != 1 || res.Gaps[0].From != 1 || res.Gaps[0].To != 4 {
		t.Errorf("gaps = %v, want one gap 1 -> 4", res.Gaps)
	}
}

func TestBreakLeadingTrailingDead(t *testing.T) {
	net, r := gridWorld(t, 6, 6)
	for _, policy := range []BreakPolicy{BreakSkip, BreakSplit} {
		res, err := deadMatcher(net, r, policy, 0, 4).Match(lineTraj())
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if !res.Dead[0] || !res.Dead[4] {
			t.Errorf("%v: endpoints not marked dead", policy)
		}
		// Leading/trailing dead points truncate the chain; they open no
		// gap because nothing is matched on their far side.
		if len(res.Gaps) != 0 {
			t.Errorf("%v: gaps = %v, want none for edge dead points", policy, res.Gaps)
		}
		if len(res.Path) == 0 {
			t.Errorf("%v: empty path", policy)
		}
	}
}

func TestAllDeadErrors(t *testing.T) {
	net, r := gridWorld(t, 6, 6)
	ct := lineTraj()
	if _, err := deadMatcher(net, r, BreakSkip, 0, 1, 2, 3, 4).Match(ct); err == nil {
		t.Fatal("all-dead trajectory did not error")
	}
}

// TestBreakPoliciesIdenticalOnCleanInput locks the acceptance bar: on
// input with no dead points, all three policies produce byte-identical
// results.
func TestBreakPoliciesIdenticalOnCleanInput(t *testing.T) {
	net, r := gridWorld(t, 6, 6)
	ct := lineTraj()
	base, err := deadMatcher(net, r, BreakError).Match(ct)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []BreakPolicy{BreakSkip, BreakSplit} {
		res, err := deadMatcher(net, r, policy).Match(ct)
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if res.Score != base.Score {
			t.Errorf("%v: score %v != %v", policy, res.Score, base.Score)
		}
		if len(res.Gaps) != 0 {
			t.Errorf("%v: unexpected gaps %v", policy, res.Gaps)
		}
		for i := range base.Matched {
			if res.Matched[i].Seg != base.Matched[i].Seg {
				t.Errorf("%v: point %d matched %d != %d", policy, i, res.Matched[i].Seg, base.Matched[i].Seg)
			}
		}
		if len(res.Path) != len(base.Path) {
			t.Errorf("%v: path length %d != %d", policy, len(res.Path), len(base.Path))
		}
	}
}

// TestViterbiBreakSplitGap forces a transition break (a jump beyond the
// router's range limit) and checks Split turns it into an explicit gap
// while Error/Skip still recover silently.
func TestViterbiBreakSplitGap(t *testing.T) {
	net, _ := gridWorld(t, 12, 3)
	r := roadnet.NewRouter(net, roadnet.WithMaxDist(250))
	ct := trajAlong(
		geo.Pt(50, 100), geo.Pt(150, 100),
		geo.Pt(950, 100), geo.Pt(1050, 100), // unreachable jump
	)
	for _, policy := range []BreakPolicy{BreakError, BreakSkip} {
		m := classicMatcher(net, r, 5, 0)
		m.Cfg.OnBreak = policy
		res, err := m.Match(ct)
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if len(res.Gaps) != 0 {
			t.Errorf("%v: gaps = %v, want none", policy, res.Gaps)
		}
	}
	m := classicMatcher(net, r, 5, 0)
	m.Cfg.OnBreak = BreakSplit
	res, err := m.Match(ct)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Gaps) != 1 || res.Gaps[0].Reason != GapViterbiBreak {
		t.Fatalf("gaps = %v, want one viterbi-break gap", res.Gaps)
	}
	if g := res.Gaps[0]; g.From != 1 || g.To != 2 {
		t.Errorf("gap = %+v, want {1 2 viterbi-break}", g)
	}
}

// TestDegradedObsFallback corrupts every observation score to NaN and
// checks the match equals the classical matcher run with the fallback
// parameters.
func TestDegradedObsFallback(t *testing.T) {
	net, r := gridWorld(t, 6, 6)
	ct := lineTraj()
	want, err := classicMatcher(net, r, 5, 0).Match(ct)
	if err != nil {
		t.Fatal(err)
	}
	m := classicMatcher(net, r, 5, 0)
	m.Obs = nanObs{m.Obs}
	m.Cfg.FallbackSigma = 100 // the classical matcher's sigma
	res, err := m.Match(ct)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded == 0 {
		t.Error("no degraded events counted")
	}
	for i := range want.Matched {
		if res.Matched[i].Seg != want.Matched[i].Seg {
			t.Errorf("point %d: matched %d, classical fallback reference %d", i, res.Matched[i].Seg, want.Matched[i].Seg)
		}
	}
}

// TestDegradedTransFallback corrupts every transition score to NaN and
// checks the match equals the classical matcher.
func TestDegradedTransFallback(t *testing.T) {
	net, r := gridWorld(t, 6, 6)
	ct := lineTraj()
	want, err := classicMatcher(net, r, 5, 0).Match(ct)
	if err != nil {
		t.Fatal(err)
	}
	m := classicMatcher(net, r, 5, 0)
	m.Trans = nanTrans{m.Trans}
	m.Cfg.FallbackBeta = 200 // the classical matcher's beta
	res, err := m.Match(ct)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded == 0 {
		t.Error("no degraded events counted")
	}
	if res.Score != want.Score {
		t.Errorf("score %v != classical %v", res.Score, want.Score)
	}
	for i := range want.Matched {
		if res.Matched[i].Seg != want.Matched[i].Seg {
			t.Errorf("point %d: matched %d, want %d", i, res.Matched[i].Seg, want.Matched[i].Seg)
		}
	}
}

func TestMatchContextCancel(t *testing.T) {
	net, r := gridWorld(t, 6, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, parallel := range []int{0, 4} {
		m := classicMatcher(net, r, 5, 0)
		m.Cfg.Parallel = parallel
		_, err := m.MatchContext(ctx, lineTraj())
		if !errors.Is(err, context.Canceled) {
			t.Errorf("parallel=%d: err = %v, want context.Canceled", parallel, err)
		}
	}
}

func TestMatchSanitize(t *testing.T) {
	net, r := gridWorld(t, 6, 6)
	ct := lineTraj()
	ct[2].P.X = math.NaN()

	m := classicMatcher(net, r, 5, 0) // strict is the zero value
	if _, err := m.Match(ct); err == nil {
		t.Fatal("NaN coordinate under strict sanitization did not error")
	}

	m.Cfg.Sanitize = traj.SanitizeDrop
	res, err := m.Match(ct)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sanitize.BadCoords != 1 {
		t.Errorf("BadCoords = %d, want 1", res.Sanitize.BadCoords)
	}
	if len(res.Matched) != len(ct)-1 {
		t.Errorf("matched %d points, want %d (indices refer to the sanitized trajectory)", len(res.Matched), len(ct)-1)
	}
}

// TestChaosFailpoints arms the matcher-level failpoints and checks the
// Skip policy absorbs injected dead candidate sets and NaN transition
// scores without errors or panics, sequentially and in parallel.
func TestChaosFailpoints(t *testing.T) {
	t.Cleanup(faultinject.DisarmAll)
	net, r := gridWorld(t, 6, 6)
	for _, spec := range []string{
		"hmm.candidates.empty:3",
		"hmm.trans.nan:2",
		"hmm.candidates.empty:4,hmm.trans.nan:3",
	} {
		for _, parallel := range []int{0, 4} {
			faultinject.DisarmAll()
			if err := faultinject.Arm(spec); err != nil {
				t.Fatal(err)
			}
			m := classicMatcher(net, r, 5, 1)
			m.Cfg.OnBreak = BreakSkip
			m.Cfg.Parallel = parallel
			for trial := 0; trial < 4; trial++ {
				res, err := m.Match(lineTraj())
				if err != nil {
					t.Fatalf("spec %q parallel %d: %v", spec, parallel, err)
				}
				if len(res.Matched) != 5 {
					t.Fatalf("spec %q: matched %d points", spec, len(res.Matched))
				}
			}
		}
	}
	faultinject.DisarmAll()
	// Disarmed again: identical to an unarmed run.
	m := classicMatcher(net, r, 5, 0)
	base, err := m.Match(lineTraj())
	if err != nil {
		t.Fatal(err)
	}
	if base.Degraded != 0 {
		t.Errorf("disarmed run counted %d degraded events", base.Degraded)
	}
}

func TestBreakPolicyParseRoundTrip(t *testing.T) {
	for _, p := range []BreakPolicy{BreakError, BreakSkip, BreakSplit} {
		got, err := ParseBreakPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v: got %v, err %v", p, got, err)
		}
	}
	if _, err := ParseBreakPolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}
