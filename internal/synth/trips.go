package synth

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cellular"
	"repro/internal/geo"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// TripConfig parameterizes trip generation and both sampling modalities.
type TripConfig struct {
	Count int
	// MinLen / MaxLen bound the ground-truth path length in meters.
	MinLen float64
	MaxLen float64
	// RouteNoise perturbs per-segment routing weights by a per-trip
	// uniform factor in [1, 1+RouteNoise] so ground-truth paths are
	// plausible rather than exactly shortest. Default 0.35.
	RouteNoise float64
	// SpeedFactorMin/Max bound the per-segment congestion multiplier on
	// free-flow speed. Defaults 0.5 / 1.0.
	SpeedFactorMin float64
	SpeedFactorMax float64
	// GPSInterval is the GPS sampling period in seconds; GPSNoise the
	// per-sample Gaussian position noise in meters.
	GPSInterval float64
	GPSNoise    float64
	// CellMeanInterval is the mean cellular sampling period in seconds.
	// Actual intervals are uniform in [0.35, 1.95]× the mean, yielding
	// max/mean interval ratios near the paper's Table I.
	CellMeanInterval float64
	// CenterBias concentrates trip origins near the city center: an
	// endpoint at distance r from the center is accepted with
	// probability exp(-CenterBias·r/HalfSize). 0 disables.
	CenterBias float64
	// Serving is the cellular positioning model.
	Serving cellular.ServingModel
}

// GenerateTrips simulates trips on the city. Unroutable OD pairs are
// re-drawn; generation fails if the city cannot support the requested
// trip lengths after many attempts.
func GenerateTrips(city *City, cfg TripConfig, rng *rand.Rand) ([]traj.Trip, error) {
	if cfg.Count <= 0 {
		return nil, nil
	}
	if len(city.Routable) < 2 {
		return nil, fmt.Errorf("synth: city has no routable component")
	}
	routeNoise := cfg.RouteNoise
	if routeNoise <= 0 {
		routeNoise = 0.35
	}
	sfMin, sfMax := cfg.SpeedFactorMin, cfg.SpeedFactorMax
	if sfMin <= 0 {
		sfMin = 0.5
	}
	if sfMax <= sfMin {
		sfMax = math.Max(1.0, sfMin+0.1)
	}
	gpsInterval := cfg.GPSInterval
	if gpsInterval <= 0 {
		gpsInterval = 15
	}
	cellInterval := cfg.CellMeanInterval
	if cellInterval <= 0 {
		cellInterval = 60
	}

	halfSize := math.Max(city.Net.Bounds().Width(), city.Net.Bounds().Height()) / 2

	trips := make([]traj.Trip, 0, cfg.Count)
	maxAttempts := cfg.Count * 200
	attempts := 0
	for len(trips) < cfg.Count {
		attempts++
		if attempts > maxAttempts {
			return nil, fmt.Errorf("synth: could not generate %d routable trips (made %d after %d attempts); relax MinLen/MaxLen",
				cfg.Count, len(trips), attempts)
		}
		from := pickEndpoint(city, cfg.CenterBias, halfSize, rng)
		to := pickEndpoint(city, cfg.CenterBias, halfSize, rng)
		straight := city.Net.Node(from).P.Dist(city.Net.Node(to).P)
		if straight < cfg.MinLen*0.6 || straight > cfg.MaxLen {
			continue
		}
		// Per-trip perturbed weights (deterministic within the trip).
		tripSeed := rng.Int63()
		wRng := rand.New(rand.NewSource(tripSeed))
		noise := make(map[roadnet.SegmentID]float64)
		weight := func(s *roadnet.Segment) float64 {
			f, ok := noise[s.ID]
			if !ok {
				f = 1 + wRng.Float64()*routeNoise
				noise[s.ID] = f
			}
			return s.Length * f
		}
		path, _, ok := city.Net.ShortestPathWeighted(from, to, weight)
		if !ok || len(path) == 0 {
			continue
		}
		var pathLen float64
		for _, sid := range path {
			pathLen += city.Net.Segment(sid).Length
		}
		if pathLen < cfg.MinLen || pathLen > cfg.MaxLen {
			continue
		}
		trip := simulateTrip(city, cfg, path, gpsInterval, cellInterval, sfMin, sfMax, rng)
		trip.ID = len(trips)
		trips = append(trips, trip)
	}
	return trips, nil
}

// pickEndpoint draws a routable node, biased toward the center when
// CenterBias > 0.
func pickEndpoint(city *City, bias, halfSize float64, rng *rand.Rand) roadnet.NodeID {
	for {
		id := city.Routable[rng.Intn(len(city.Routable))]
		if bias <= 0 {
			return id
		}
		r := city.Net.Node(id).P.Dist(city.Center)
		if rng.Float64() < math.Exp(-bias*r/halfSize) {
			return id
		}
	}
}

// simulateTrip drives along the path with a congestion-noised speed
// model and samples both modalities.
func simulateTrip(city *City, cfg TripConfig, path []roadnet.SegmentID,
	gpsInterval, cellInterval, sfMin, sfMax float64, rng *rand.Rand) traj.Trip {

	// Build the path geometry and the cumulative (distance, time) curve.
	var geom geo.Polyline
	var cumDist []float64 // distance at each segment boundary
	var cumTime []float64 // time at each segment boundary
	var d, tm float64
	cumDist = append(cumDist, 0)
	cumTime = append(cumTime, 0)
	for i, sid := range path {
		seg := city.Net.Segment(sid)
		if i == 0 {
			geom = append(geom, seg.Shape...)
		} else {
			geom = append(geom, seg.Shape[1:]...)
		}
		speed := seg.Speed * (sfMin + rng.Float64()*(sfMax-sfMin))
		d += seg.Length
		tm += seg.Length / speed
		cumDist = append(cumDist, d)
		cumTime = append(cumTime, tm)
	}
	totalTime := tm

	// distAt maps a time to a distance along the path by piecewise
	// linear interpolation over segment boundaries.
	distAt := func(t float64) float64 {
		if t <= 0 {
			return 0
		}
		if t >= totalTime {
			return d
		}
		// Binary search over cumTime.
		lo, hi := 0, len(cumTime)-1
		for lo+1 < hi {
			mid := (lo + hi) / 2
			if cumTime[mid] <= t {
				lo = mid
			} else {
				hi = mid
			}
		}
		span := cumTime[hi] - cumTime[lo]
		if span == 0 {
			return cumDist[lo]
		}
		frac := (t - cumTime[lo]) / span
		return cumDist[lo] + frac*(cumDist[hi]-cumDist[lo])
	}

	// GPS sampling.
	var gps []traj.GPSPoint
	for t := 0.0; t <= totalTime; t += gpsInterval {
		p := geom.At(distAt(t))
		if cfg.GPSNoise > 0 {
			p = p.Add(geo.Pt(rng.NormFloat64()*cfg.GPSNoise, rng.NormFloat64()*cfg.GPSNoise))
		}
		gps = append(gps, traj.GPSPoint{P: p, T: t})
	}

	// Cellular sampling: serving tower at jittered intervals.
	var cell traj.CellTrajectory
	prev := cellular.TowerID(-1)
	t := 0.0
	for {
		p := geom.At(distAt(t))
		id := cfg.Serving.Serve(rng, city.Cells, p, prev)
		if id >= 0 {
			cell = append(cell, traj.CellPoint{
				Tower: id,
				P:     city.Cells.Tower(id).P,
				T:     t,
			})
			prev = id
		}
		if t >= totalTime {
			break
		}
		t += cellInterval * (0.35 + rng.Float64()*1.6)
		if t > totalTime {
			t = totalTime
		}
	}

	return traj.Trip{
		Path:     append([]roadnet.SegmentID(nil), path...),
		PathGeom: geom,
		GPS:      gps,
		Cell:     cell,
	}
}
