// Package synth generates the synthetic cities and paired
// cellular-plus-GPS trip datasets that stand in for the paper's
// proprietary Hangzhou and Xiamen operator data (see DESIGN.md §2).
//
// A city is a jittered street lattice whose density decays away from
// the center (streets are removed with rising probability toward the
// outskirts), with arterial lines and a highway ring; cell towers are
// placed with the same urban-core density gradient. Trips are sampled
// journeys routed with per-trip perturbed weights, driven along the
// path with a congestion-noised speed model, and observed by both a GPS
// sampler (low noise) and a cellular serving-tower simulator (0.1–3 km
// error). All generation is deterministic given the config seed.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cellular"
	"repro/internal/geo"
	"repro/internal/roadnet"
)

// CityConfig parameterizes the synthetic city generator.
type CityConfig struct {
	Name string
	// HalfSize is half the city square's side, meters: the city spans
	// [-HalfSize, HalfSize]² centered on the origin.
	HalfSize float64
	// BlockSize is the street lattice spacing in meters.
	BlockSize float64
	// CoreRadius is the dense urban core radius in meters; street and
	// tower density decay beyond it.
	CoreRadius float64
	// NodeJitter is positional noise applied to lattice nodes, meters.
	NodeJitter float64
	// EdgeDropCore is the probability of removing a street inside the
	// core; EdgeDropRural is the probability at the city edge. The
	// probability interpolates linearly in between.
	EdgeDropCore  float64
	EdgeDropRural float64
	// ArterialEvery promotes every k-th lattice row/column to an
	// arterial (0 disables).
	ArterialEvery int
	// RingRoad adds a highway ring at roughly 0.7×HalfSize.
	RingRoad bool
	// TowerCount is the number of cell towers to place.
	TowerCount int
	// TowerCoreRadius is the dense-core radius of the tower placement
	// model; defaults to CoreRadius.
	TowerCoreRadius float64
}

// City is a generated road network plus tower infrastructure.
type City struct {
	Net    *roadnet.Network
	Cells  *cellular.Net
	Center geo.Point
	// Routable holds the node ids of the largest connected component;
	// trip endpoints are drawn from it.
	Routable []roadnet.NodeID
}

// GenerateCity builds the synthetic city. Deterministic given rng.
func GenerateCity(cfg CityConfig, rng *rand.Rand) (*City, error) {
	if cfg.HalfSize <= 0 || cfg.BlockSize <= 0 {
		return nil, fmt.Errorf("synth: HalfSize and BlockSize must be positive")
	}
	if cfg.TowerCount <= 0 {
		return nil, fmt.Errorf("synth: TowerCount must be positive")
	}
	core := cfg.CoreRadius
	if core <= 0 {
		core = cfg.HalfSize / 2
	}

	var b roadnet.Builder
	// Lattice nodes with jitter. Node (i,j) of an n×n lattice.
	n := int(2*cfg.HalfSize/cfg.BlockSize) + 1
	ids := make([][]roadnet.NodeID, n)
	for j := 0; j < n; j++ {
		ids[j] = make([]roadnet.NodeID, n)
		for i := 0; i < n; i++ {
			x := -cfg.HalfSize + float64(i)*cfg.BlockSize
			y := -cfg.HalfSize + float64(j)*cfg.BlockSize
			p := geo.Pt(
				x+rng.NormFloat64()*cfg.NodeJitter,
				y+rng.NormFloat64()*cfg.NodeJitter,
			)
			ids[j][i] = b.AddNode(p)
		}
	}

	dropProb := func(p geo.Point) float64 {
		r := p.Dist(geo.Point{})
		t := math.Max(0, math.Min(1, (r-core)/(cfg.HalfSize*math.Sqrt2-core)))
		return cfg.EdgeDropCore + t*(cfg.EdgeDropRural-cfg.EdgeDropCore)
	}
	addStreet := func(j0, i0, j1, i1 int) error {
		a, c := ids[j0][i0], ids[j1][i1]
		mid := geo.Segment{A: latticePos(cfg, i0, j0), B: latticePos(cfg, i1, j1)}.Midpoint()
		if rng.Float64() < dropProb(mid) {
			return nil
		}
		// A street along lattice row j is arterial when j is an arterial
		// line; along column i when i is.
		class := roadnet.Local
		if j0 == j1 && cfg.ArterialEvery > 0 && j0%cfg.ArterialEvery == 0 {
			class = roadnet.Arterial
		} else if i0 == i1 && cfg.ArterialEvery > 0 && i0%cfg.ArterialEvery == 0 {
			class = roadnet.Arterial
		}
		_, _, err := b.AddTwoWay(a, c, class)
		return err
	}

	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if i+1 < n {
				if err := addStreet(j, i, j, i+1); err != nil {
					return nil, err
				}
			}
			if j+1 < n {
				if err := addStreet(j, i, j+1, i); err != nil {
					return nil, err
				}
			}
		}
	}

	// Highway ring: connect the lattice nodes nearest to the ring circle
	// at regular angles with highway-class two-way segments.
	if cfg.RingRoad {
		ringR := 0.7 * cfg.HalfSize
		steps := 24
		var ringNodes []roadnet.NodeID
		for s := 0; s < steps; s++ {
			ang := 2 * math.Pi * float64(s) / float64(steps)
			target := geo.Pt(ringR*math.Cos(ang), ringR*math.Sin(ang))
			// Nearest lattice node.
			i := clampInt(int(math.Round((target.X+cfg.HalfSize)/cfg.BlockSize)), 0, n-1)
			j := clampInt(int(math.Round((target.Y+cfg.HalfSize)/cfg.BlockSize)), 0, n-1)
			ringNodes = append(ringNodes, ids[j][i])
		}
		for s := 0; s < steps; s++ {
			a, c := ringNodes[s], ringNodes[(s+1)%steps]
			if a == c {
				continue
			}
			if _, _, err := b.AddTwoWay(a, c, roadnet.Highway); err != nil {
				return nil, err
			}
		}
	}

	net, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("synth: %w", err)
	}

	towerCore := cfg.TowerCoreRadius
	if towerCore <= 0 {
		towerCore = core
	}
	towers := cellular.Place(cellular.PlacementConfig{
		Bounds:     geo.RectAround(geo.Point{}, cfg.HalfSize),
		Center:     geo.Point{},
		Count:      cfg.TowerCount,
		CoreRadius: towerCore,
		Jitter:     cfg.BlockSize / 10,
	}, rng)
	cells, err := cellular.NewNet(towers)
	if err != nil {
		return nil, fmt.Errorf("synth: %w", err)
	}

	return &City{
		Net:      net,
		Cells:    cells,
		Center:   geo.Point{},
		Routable: net.LargestComponent(),
	}, nil
}

// latticePos returns the unjittered lattice position of node (i,j);
// used only for density decisions so jitter does not bias street
// removal.
func latticePos(cfg CityConfig, i, j int) geo.Point {
	return geo.Pt(
		-cfg.HalfSize+float64(i)*cfg.BlockSize,
		-cfg.HalfSize+float64(j)*cfg.BlockSize,
	)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
