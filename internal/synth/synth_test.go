package synth

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cellular"
	"repro/internal/roadnet"
)

func smallCityConfig() CityConfig {
	return CityConfig{
		Name:          "test-city",
		HalfSize:      3000,
		BlockSize:     250,
		CoreRadius:    1200,
		NodeJitter:    20,
		EdgeDropCore:  0.05,
		EdgeDropRural: 0.5,
		ArterialEvery: 4,
		RingRoad:      true,
		TowerCount:    80,
	}
}

func TestGenerateCityValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := GenerateCity(CityConfig{}, rng); err == nil {
		t.Error("empty config did not error")
	}
	if _, err := GenerateCity(CityConfig{HalfSize: 1000, BlockSize: 100}, rng); err == nil {
		t.Error("zero TowerCount did not error")
	}
}

func TestGenerateCityShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	city, err := GenerateCity(smallCityConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if city.Net.NumSegments() < 500 {
		t.Errorf("city too small: %d segments", city.Net.NumSegments())
	}
	if city.Cells.NumTowers() != 80 {
		t.Errorf("towers = %d", city.Cells.NumTowers())
	}
	if len(city.Routable) < city.Net.NumNodes()/2 {
		t.Errorf("routable component too small: %d of %d", len(city.Routable), city.Net.NumNodes())
	}
	// Urban streets denser than rural: count segment midpoints in core
	// vs a same-area outer annulus.
	countIn := func(r0, r1 float64) int {
		var c int
		for i := 0; i < city.Net.NumSegments(); i++ {
			r := city.Net.Segment(roadnet.SegmentID(i)).Midpoint().Dist(city.Center)
			if r >= r0 && r < r1 {
				c++
			}
		}
		return c
	}
	inner := countIn(0, 1200)
	outer := countIn(2400, math.Sqrt(2400*2400+1200*1200))
	if inner <= outer {
		t.Errorf("no urban density gradient: inner %d vs outer %d", inner, outer)
	}
	// Some arterials and highways exist.
	var arterials, highways int
	for i := 0; i < city.Net.NumSegments(); i++ {
		switch city.Net.Segment(roadnet.SegmentID(i)).Class {
		case 1:
			arterials++
		case 2:
			highways++
		}
	}
	if arterials == 0 || highways == 0 {
		t.Errorf("arterials=%d highways=%d", arterials, highways)
	}
}

func TestGenerateCityDeterministic(t *testing.T) {
	cfg := smallCityConfig()
	a, err := GenerateCity(cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCity(cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Net.NumSegments() != b.Net.NumSegments() || a.Net.NumNodes() != b.Net.NumNodes() {
		t.Fatal("city generation not deterministic")
	}
	for i := 0; i < a.Net.NumNodes(); i++ {
		if a.Net.Node(roadnet.NodeID(i)).P != b.Net.Node(roadnet.NodeID(i)).P {
			t.Fatal("node positions differ between equal seeds")
		}
	}
}

func TestGenerateTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	city, err := GenerateCity(smallCityConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := TripConfig{
		Count:            12,
		MinLen:           1500,
		MaxLen:           5000,
		GPSInterval:      20,
		GPSNoise:         8,
		CellMeanInterval: 45,
		CenterBias:       1,
		Serving:          cellular.DefaultServingModel(),
	}
	trips, err := GenerateTrips(city, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(trips) != 12 {
		t.Fatalf("generated %d trips", len(trips))
	}
	for i, tr := range trips {
		if tr.ID != i {
			t.Errorf("trip %d has ID %d", i, tr.ID)
		}
		if tr.PathLength() < 1500 || tr.PathLength() > 5100 {
			t.Errorf("trip %d length %v outside bounds", i, tr.PathLength())
		}
		// Path contiguity.
		for j := 1; j < len(tr.Path); j++ {
			if city.Net.Segment(tr.Path[j-1]).To != city.Net.Segment(tr.Path[j]).From {
				t.Fatalf("trip %d path not contiguous", i)
			}
		}
		if len(tr.GPS) < 3 {
			t.Errorf("trip %d has %d GPS points", i, len(tr.GPS))
		}
		if len(tr.Cell) < 2 {
			t.Errorf("trip %d has %d cell points", i, len(tr.Cell))
		}
		// GPS points stay near the path (noise is 8 m).
		for _, g := range tr.GPS {
			if tr.PathGeom.Dist(g.P) > 60 {
				t.Errorf("trip %d GPS point %v is %v m from path", i, g.P, tr.PathGeom.Dist(g.P))
			}
		}
		// Cellular positions are tower positions: typically hundreds of
		// meters off the path. Check they are at least plausible (within
		// a few km).
		for _, c := range tr.Cell {
			if d := tr.PathGeom.Dist(c.P); d > 6000 {
				t.Errorf("trip %d cell point %v m from path", i, d)
			}
		}
		// Timestamps increase.
		for j := 1; j < len(tr.Cell); j++ {
			if tr.Cell[j].T <= tr.Cell[j-1].T {
				t.Errorf("trip %d cell timestamps not increasing", i)
			}
		}
	}
}

func TestGenerateTripsEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	city, err := GenerateCity(smallCityConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if trips, err := GenerateTrips(city, TripConfig{Count: 0}, rng); err != nil || trips != nil {
		t.Errorf("Count=0: %v %v", trips, err)
	}
	// Impossible length bounds must fail with a clear error, not hang.
	_, err = GenerateTrips(city, TripConfig{
		Count:  3,
		MinLen: 1e7,
		MaxLen: 2e7,
	}, rng)
	if err == nil {
		t.Error("impossible trip bounds did not error")
	}
}

func TestGenerateDatasetPresets(t *testing.T) {
	cfg := SyntheticXiamen(0.05, 20)
	d, err := GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "synthetic-xiamen" {
		t.Errorf("Name = %q", d.Name)
	}
	if len(d.Trips) == 0 || len(d.Trips) > 20 {
		t.Fatalf("trips = %d", len(d.Trips))
	}
	if len(d.Train) == 0 || len(d.Test) == 0 {
		t.Errorf("split %d/%d/%d", len(d.Train), len(d.Valid), len(d.Test))
	}
	stats := d.ComputeStats()
	if stats.RoadSegments == 0 || stats.CellPoints == 0 {
		t.Errorf("stats = %+v", stats)
	}
	// Cellular positioning error is in the hundreds of meters on
	// average — the defining property of the CTMM problem.
	var errSum float64
	var n int
	for i := range d.Trips {
		tr := &d.Trips[i]
		for _, c := range tr.Cell {
			// Use the raw tower position (tower id) against the path.
			errSum += tr.PathGeom.Dist(d.Cells.Tower(c.Tower).P)
			n++
		}
	}
	mean := errSum / float64(n)
	if mean < 60 || mean > 2500 {
		t.Errorf("mean tower-to-path distance %v m implausible for CTMM", mean)
	}
}

func TestGenerateDatasetDeterministic(t *testing.T) {
	cfg := SyntheticHangzhou(0.03, 6)
	a, err := GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trips) != len(b.Trips) {
		t.Fatal("dataset not deterministic")
	}
	for i := range a.Trips {
		if len(a.Trips[i].Cell) != len(b.Trips[i].Cell) {
			t.Fatal("trip cellular sampling not deterministic")
		}
		for j := range a.Trips[i].Cell {
			if a.Trips[i].Cell[j] != b.Trips[i].Cell[j] {
				t.Fatal("cell points differ between equal seeds")
			}
		}
	}
}

func TestGenerateCityOptionVariants(t *testing.T) {
	// No ring road, no arterials: the generator still produces a
	// routable city of local streets only.
	cfg := smallCityConfig()
	cfg.RingRoad = false
	cfg.ArterialEvery = 0
	city, err := GenerateCity(cfg, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < city.Net.NumSegments(); i++ {
		if c := city.Net.Segment(roadnet.SegmentID(i)).Class; c != roadnet.Local {
			t.Fatalf("unexpected class %v with arterials disabled", c)
		}
	}
	// Heavy rural pruning still leaves a usable core.
	cfg2 := smallCityConfig()
	cfg2.EdgeDropRural = 0.9
	city2, err := GenerateCity(cfg2, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if len(city2.Routable) < 50 {
		t.Errorf("routable core too small under heavy pruning: %d", len(city2.Routable))
	}
}

func TestTripPathSet(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	city, err := GenerateCity(smallCityConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	trips, err := GenerateTrips(city, TripConfig{
		Count: 2, MinLen: 1200, MaxLen: 3000,
		CellMeanInterval: 40, Serving: cellular.DefaultServingModel(),
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trips {
		set := tr.PathSet()
		if len(set) == 0 || len(set) > len(tr.Path) {
			t.Errorf("PathSet size %d for path %d", len(set), len(tr.Path))
		}
		for _, sid := range tr.Path {
			if !set[sid] {
				t.Fatal("PathSet missing a path segment")
			}
		}
	}
}
