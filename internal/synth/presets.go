package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/cellular"
	"repro/internal/traj"
)

// DatasetConfig bundles everything needed to generate a reproducible
// paired cellular+GPS dataset.
type DatasetConfig struct {
	City       CityConfig
	Trips      TripConfig
	Seed       int64
	Preprocess bool // apply the SnapNet filter chain to cellular trajectories (§V-A1)
	Filter     traj.FilterConfig
	TrainFrac  float64
	ValidFrac  float64
}

// GenerateDataset builds the city and trips and assembles a Dataset
// with train/valid/test splits. Deterministic given cfg.Seed.
func GenerateDataset(cfg DatasetConfig) (*traj.Dataset, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	city, err := GenerateCity(cfg.City, rng)
	if err != nil {
		return nil, err
	}
	trips, err := GenerateTrips(city, cfg.Trips, rng)
	if err != nil {
		return nil, err
	}
	if cfg.Preprocess {
		for i := range trips {
			trips[i].Cell = traj.Preprocess(trips[i].Cell, cfg.Filter)
		}
	}
	// Drop degenerate trips (preprocessing can empty a short noisy
	// trajectory).
	kept := trips[:0]
	for _, tr := range trips {
		if len(tr.Cell) >= 2 && len(tr.Path) >= 1 {
			tr.ID = len(kept)
			kept = append(kept, tr)
		}
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("synth: all generated trips degenerate after preprocessing")
	}
	d := &traj.Dataset{
		Name:   cfg.City.Name,
		Net:    city.Net,
		Cells:  city.Cells,
		Center: city.Center,
		Trips:  kept,
	}
	trainFrac, validFrac := cfg.TrainFrac, cfg.ValidFrac
	if trainFrac <= 0 {
		trainFrac = 0.7
	}
	if validFrac <= 0 {
		validFrac = 0.1
	}
	d.Split(trainFrac, validFrac)
	return d, nil
}

// SyntheticHangzhou returns a dataset config mirroring the shape of the
// paper's Hangzhou dataset (Table I): a large city with sparser cellular
// sampling (avg interval 67 s). scale in (0, 1] shrinks both the city
// and trip count so the full experiment suite runs on one machine;
// scale=1 approaches the paper's network size.
func SyntheticHangzhou(scale float64, trips int) DatasetConfig {
	if scale <= 0 {
		scale = 0.1
	}
	if scale > 1 {
		scale = 1
	}
	half := 4000 + 26000*scale // 30 km half-size at full scale
	return DatasetConfig{
		Seed: 20230401,
		City: CityConfig{
			Name:          "synthetic-hangzhou",
			HalfSize:      half,
			BlockSize:     220,
			CoreRadius:    half * 0.35,
			NodeJitter:    28,
			EdgeDropCore:  0.06,
			EdgeDropRural: 0.62,
			ArterialEvery: 5,
			RingRoad:      true,
			TowerCount:    int(160 + 2800*scale*scale),
		},
		Trips: TripConfig{
			Count:            trips,
			MinLen:           3200,
			MaxLen:           half * 1.8,
			RouteNoise:       0.4,
			SpeedFactorMin:   0.35, // urban congestion: long in-city travel
			SpeedFactorMax:   0.75, // times yield paper-like points/trajectory
			GPSInterval:      28,   // ≈81 GPS points on a 38-min trip
			GPSNoise:         8,
			CellMeanInterval: 67,
			CenterBias:       1.2,
			Serving:          cellular.DefaultServingModel(),
		},
		Preprocess: true,
		Filter:     traj.DefaultFilterConfig(),
		TrainFrac:  0.7,
		ValidFrac:  0.1,
	}
}

// SyntheticMetro returns a dataset config for a paper-scale city: at
// scale=1 the road network carries ~100k directed segments, matching
// the paper's Xiamen network (~92,913 segments, Table I) — the size at
// which flat per-source Dijkstra stops being viable and the router's
// Contraction Hierarchy pays for itself. The trip/sampling model
// follows the Xiamen preset; only the network is pushed to full scale.
func SyntheticMetro(scale float64, trips int) DatasetConfig {
	if scale <= 0 {
		scale = 0.1
	}
	if scale > 1 {
		scale = 1
	}
	half := 3500 + 16000*scale // ~196×196 lattice at full scale
	return DatasetConfig{
		Seed: 20230403,
		City: CityConfig{
			Name:          "synthetic-metro",
			HalfSize:      half,
			BlockSize:     200,
			CoreRadius:    half * 0.4,
			NodeJitter:    24,
			EdgeDropCore:  0.05,
			EdgeDropRural: 0.55,
			ArterialEvery: 4,
			RingRoad:      true,
			TowerCount:    int(200 + 2800*scale*scale),
		},
		Trips: TripConfig{
			Count:            trips,
			MinLen:           3000,
			MaxLen:           half * 1.8,
			RouteNoise:       0.35,
			SpeedFactorMin:   0.35,
			SpeedFactorMax:   0.75,
			GPSInterval:      26,
			GPSNoise:         8,
			CellMeanInterval: 42,
			CenterBias:       1.1,
			Serving:          cellular.DefaultServingModel(),
		},
		Preprocess: true,
		Filter:     traj.DefaultFilterConfig(),
		TrainFrac:  0.7,
		ValidFrac:  0.1,
	}
}

// SyntheticXiamen returns a dataset config mirroring the paper's Xiamen
// dataset (Table I): a smaller, denser city with faster cellular
// sampling (avg interval 42 s).
func SyntheticXiamen(scale float64, trips int) DatasetConfig {
	if scale <= 0 {
		scale = 0.1
	}
	if scale > 1 {
		scale = 1
	}
	half := 3500 + 18500*scale // 22 km half-size at full scale
	return DatasetConfig{
		Seed: 20230402,
		City: CityConfig{
			Name:          "synthetic-xiamen",
			HalfSize:      half,
			BlockSize:     200,
			CoreRadius:    half * 0.4,
			NodeJitter:    24,
			EdgeDropCore:  0.05,
			EdgeDropRural: 0.55,
			ArterialEvery: 4,
			RingRoad:      true,
			TowerCount:    int(140 + 2200*scale*scale),
		},
		Trips: TripConfig{
			Count:            trips,
			MinLen:           3000,
			MaxLen:           half * 1.8,
			RouteNoise:       0.35,
			SpeedFactorMin:   0.35,
			SpeedFactorMax:   0.75,
			GPSInterval:      26, // ≈88 GPS points on a 38-min trip
			GPSNoise:         8,
			CellMeanInterval: 42,
			CenterBias:       1.1,
			Serving:          cellular.DefaultServingModel(),
		},
		Preprocess: true,
		Filter:     traj.DefaultFilterConfig(),
		TrainFrac:  0.7,
		ValidFrac:  0.1,
	}
}
