package traj

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cellular"
	"repro/internal/geo"
	"repro/internal/roadnet"
)

// datasetFile is the on-disk JSON schema for a full dataset.
type datasetFile struct {
	Name    string          `json:"name"`
	Center  []float64       `json:"center"`
	Network json.RawMessage `json:"network"`
	Towers  [][]float64     `json:"towers"`
	Trips   []tripFile      `json:"trips"`
	Train   []int           `json:"train"`
	Valid   []int           `json:"valid"`
	Test    []int           `json:"test"`
}

type tripFile struct {
	Path []int       `json:"path"`
	GPS  [][]float64 `json:"gps"`  // [x, y, t]
	Cell [][]float64 `json:"cell"` // [tower, x, y, t]
}

// WriteDataset serializes a dataset (network, towers, trips, splits)
// as a single JSON document.
func WriteDataset(w io.Writer, d *Dataset) error {
	var netBuf bytes.Buffer
	if err := roadnet.Write(&netBuf, d.Net); err != nil {
		return fmt.Errorf("traj: write dataset: %w", err)
	}
	f := datasetFile{
		Name:    d.Name,
		Center:  []float64{d.Center.X, d.Center.Y},
		Network: json.RawMessage(netBuf.Bytes()),
		Train:   d.Train,
		Valid:   d.Valid,
		Test:    d.Test,
	}
	for i := 0; i < d.Cells.NumTowers(); i++ {
		p := d.Cells.Tower(cellular.TowerID(i)).P
		f.Towers = append(f.Towers, []float64{p.X, p.Y})
	}
	for i := range d.Trips {
		tr := &d.Trips[i]
		tf := tripFile{Path: make([]int, len(tr.Path))}
		for j, s := range tr.Path {
			tf.Path[j] = int(s)
		}
		for _, g := range tr.GPS {
			tf.GPS = append(tf.GPS, []float64{g.P.X, g.P.Y, g.T})
		}
		for _, c := range tr.Cell {
			tf.Cell = append(tf.Cell, []float64{float64(c.Tower), c.P.X, c.P.Y, c.T})
		}
		f.Trips = append(f.Trips, tf)
	}
	if err := json.NewEncoder(w).Encode(f); err != nil {
		return fmt.Errorf("traj: write dataset: %w", err)
	}
	return nil
}

// ReadDataset restores a dataset written by WriteDataset, rebuilding
// indices and path geometry.
func ReadDataset(r io.Reader) (*Dataset, error) {
	var f datasetFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("traj: read dataset: %w", err)
	}
	net, err := roadnet.Read(bytes.NewReader(f.Network))
	if err != nil {
		return nil, fmt.Errorf("traj: read dataset: %w", err)
	}
	towers := make([]geo.Point, len(f.Towers))
	for i, t := range f.Towers {
		if len(t) != 2 {
			return nil, fmt.Errorf("traj: read dataset: tower %d has %d coords", i, len(t))
		}
		towers[i] = geo.Pt(t[0], t[1])
	}
	cells, err := cellular.NewNet(towers)
	if err != nil {
		return nil, fmt.Errorf("traj: read dataset: %w", err)
	}
	d := &Dataset{
		Name:  f.Name,
		Net:   net,
		Cells: cells,
		Train: f.Train,
		Valid: f.Valid,
		Test:  f.Test,
	}
	if len(f.Center) == 2 {
		d.Center = geo.Pt(f.Center[0], f.Center[1])
	}
	for i, tf := range f.Trips {
		tr := Trip{ID: i}
		for _, s := range tf.Path {
			if s < 0 || s >= net.NumSegments() {
				return nil, fmt.Errorf("traj: read dataset: trip %d references segment %d", i, s)
			}
			tr.Path = append(tr.Path, roadnet.SegmentID(s))
		}
		tr.PathGeom = pathGeometry(net, tr.Path)
		for _, g := range tf.GPS {
			if len(g) != 3 {
				return nil, fmt.Errorf("traj: read dataset: trip %d malformed gps point", i)
			}
			tr.GPS = append(tr.GPS, GPSPoint{P: geo.Pt(g[0], g[1]), T: g[2]})
		}
		for _, c := range tf.Cell {
			if len(c) != 4 {
				return nil, fmt.Errorf("traj: read dataset: trip %d malformed cell point", i)
			}
			tw := cellular.TowerID(int(c[0]))
			if int(tw) < 0 || int(tw) >= cells.NumTowers() {
				return nil, fmt.Errorf("traj: read dataset: trip %d references tower %d", i, tw)
			}
			tr.Cell = append(tr.Cell, CellPoint{Tower: tw, P: geo.Pt(c[1], c[2]), T: c[3]})
		}
		d.Trips = append(d.Trips, tr)
	}
	return d, nil
}

// pathGeometry concatenates segment shapes (duplicated from metrics to
// avoid an import cycle; both are thin wrappers over Segment.Shape).
func pathGeometry(net *roadnet.Network, path []roadnet.SegmentID) geo.Polyline {
	var pl geo.Polyline
	for i, sid := range path {
		shape := net.Segment(sid).Shape
		if i == 0 {
			pl = append(pl, shape...)
		} else {
			pl = append(pl, shape[1:]...)
		}
	}
	return pl
}
