package traj

import "repro/internal/geo"

// KalmanConfig parameterizes the constant-velocity Kalman smoother, an
// optional alternative to the α-trimmed mean filter (Kalman filtering
// is one of the classical map-matching aids the paper's related work
// surveys [29]).
type KalmanConfig struct {
	// ProcessNoise is the acceleration noise standard deviation in
	// m/s². Default 2.
	ProcessNoise float64
	// MeasurementNoise is the positioning noise standard deviation in
	// meters. For cellular data use hundreds of meters. Default 400.
	MeasurementNoise float64
}

// DefaultKalmanConfig returns cellular-scale smoothing parameters.
func DefaultKalmanConfig() KalmanConfig {
	return KalmanConfig{ProcessNoise: 2, MeasurementNoise: 400}
}

// kalman1D tracks one axis with a constant-velocity model: state
// [position, velocity], scalar position measurements.
type kalman1D struct {
	x, v          float64 // state
	pxx, pxv, pvv float64 // covariance
	initialized   bool
	q, r          float64 // process/measurement variances
}

func (k *kalman1D) step(z, dt float64) float64 {
	if !k.initialized {
		k.x, k.v = z, 0
		k.pxx, k.pxv, k.pvv = k.r, 0, 100
		k.initialized = true
		return k.x
	}
	if dt <= 0 {
		dt = 1e-3
	}
	// Predict.
	k.x += k.v * dt
	q := k.q
	// Covariance of the constant-velocity model under acceleration
	// noise q: Q = q²·[[dt⁴/4, dt³/2], [dt³/2, dt²]].
	pxx := k.pxx + 2*dt*k.pxv + dt*dt*k.pvv + q*q*dt*dt*dt*dt/4
	pxv := k.pxv + dt*k.pvv + q*q*dt*dt*dt/2
	pvv := k.pvv + q*q*dt*dt
	// Update with measurement z.
	s := pxx + k.r
	kx := pxx / s
	kv := pxv / s
	innov := z - k.x
	k.x += kx * innov
	k.v += kv * innov
	k.pxx = (1 - kx) * pxx
	k.pxv = (1 - kx) * pxv
	k.pvv = pvv - kv*pxv
	return k.x
}

// KalmanFilter smooths point positions with independent
// constant-velocity filters per axis, preserving tower identities and
// timestamps. It returns a new trajectory.
func KalmanFilter(ct CellTrajectory, cfg KalmanConfig) CellTrajectory {
	if len(ct) == 0 {
		return nil
	}
	q := cfg.ProcessNoise
	if q <= 0 {
		q = 2
	}
	r := cfg.MeasurementNoise
	if r <= 0 {
		r = 400
	}
	fx := &kalman1D{q: q, r: r * r}
	fy := &kalman1D{q: q, r: r * r}
	out := make(CellTrajectory, len(ct))
	lastT := ct[0].T
	for i, p := range ct {
		dt := p.T - lastT
		lastT = p.T
		out[i] = p
		out[i].P = geo.Pt(fx.step(p.P.X, dt), fy.step(p.P.Y, dt))
	}
	return out
}
