// Package traj defines trajectory types — GPS and cellular sampling
// sequences, ground-truth trips — plus the preprocessing filter chain
// the paper applies before matching (§V-A1, following SnapNet [12]):
// speed filter, α-trimmed mean filter, and direction filter.
package traj

import (
	"math"
	"sort"

	"repro/internal/cellular"
	"repro/internal/geo"
	"repro/internal/roadnet"
)

// GPSPoint is a timestamped GPS sample along a trip.
type GPSPoint struct {
	P geo.Point
	T float64 // seconds since trip start
}

// CellPoint is a trajectory point under cellular positioning
// (Definition 2): the position of the interacted cell tower, possibly
// smoothed by preprocessing filters, plus the tower identity used for
// representation learning.
type CellPoint struct {
	Tower cellular.TowerID
	P     geo.Point // position estimate (tower location, or smoothed)
	T     float64   // seconds since trip start
}

// CellTrajectory is a cellular sampling sequence.
type CellTrajectory []CellPoint

// Positions returns the position estimates as a polyline.
func (ct CellTrajectory) Positions() geo.Polyline {
	pl := make(geo.Polyline, len(ct))
	for i, p := range ct {
		pl[i] = p.P
	}
	return pl
}

// Duration returns the elapsed time between the first and last samples.
func (ct CellTrajectory) Duration() float64 {
	if len(ct) < 2 {
		return 0
	}
	return ct[len(ct)-1].T - ct[0].T
}

// MeanInterval returns the mean sampling interval in seconds, or 0 for
// trajectories with fewer than two points.
func (ct CellTrajectory) MeanInterval() float64 {
	if len(ct) < 2 {
		return 0
	}
	return ct.Duration() / float64(len(ct)-1)
}

// MaxInterval returns the longest gap between consecutive samples.
func (ct CellTrajectory) MaxInterval() float64 {
	var m float64
	for i := 1; i < len(ct); i++ {
		if d := ct[i].T - ct[i-1].T; d > m {
			m = d
		}
	}
	return m
}

// SamplingDistances returns the consecutive-point distances in meters.
func (ct CellTrajectory) SamplingDistances() []float64 {
	if len(ct) < 2 {
		return nil
	}
	out := make([]float64, len(ct)-1)
	for i := 1; i < len(ct); i++ {
		out[i-1] = ct[i-1].P.Dist(ct[i].P)
	}
	return out
}

// Resample returns a copy keeping samples at least minGap seconds apart
// (the first point always kept), emulating lower sampling rates for the
// paper's Fig. 7(b) sweep.
func (ct CellTrajectory) Resample(minGap float64) CellTrajectory {
	if len(ct) == 0 || minGap <= 0 {
		out := make(CellTrajectory, len(ct))
		copy(out, ct)
		return out
	}
	out := CellTrajectory{ct[0]}
	last := ct[0].T
	for _, p := range ct[1:] {
		if p.T-last >= minGap {
			out = append(out, p)
			last = p.T
		}
	}
	return out
}

// Trip is one traveled journey with its ground truth and both sampling
// modalities, the unit of the synthetic datasets.
type Trip struct {
	ID       int
	Path     []roadnet.SegmentID // ground-truth traveled path, in order
	PathGeom geo.Polyline        // geometry of the traveled path
	GPS      []GPSPoint
	Cell     CellTrajectory
}

// PathLength returns the ground-truth path length in meters.
func (t *Trip) PathLength() float64 { return t.PathGeom.Length() }

// PathSet returns the trip's path as a segment-id set.
func (t *Trip) PathSet() map[roadnet.SegmentID]bool {
	s := make(map[roadnet.SegmentID]bool, len(t.Path))
	for _, e := range t.Path {
		s[e] = true
	}
	return s
}

// Dataset bundles a road network, tower network and trips, split into
// train/validation/test partitions.
type Dataset struct {
	Name   string
	Net    *roadnet.Network
	Cells  *cellular.Net
	Center geo.Point // city center, used by the robustness analysis
	Trips  []Trip
	Train  []int // indices into Trips
	Valid  []int
	Test   []int
}

// Split partitions trip indices deterministically by position:
// the first trainFrac go to Train, the next validFrac to Valid, the
// rest to Test. Fractions are clamped so every partition is valid.
func (d *Dataset) Split(trainFrac, validFrac float64) {
	n := len(d.Trips)
	nTrain := int(float64(n) * math.Max(0, math.Min(1, trainFrac)))
	nValid := int(float64(n) * math.Max(0, math.Min(1, validFrac)))
	if nTrain+nValid > n {
		nValid = n - nTrain
	}
	d.Train = d.Train[:0]
	d.Valid = d.Valid[:0]
	d.Test = d.Test[:0]
	for i := 0; i < n; i++ {
		switch {
		case i < nTrain:
			d.Train = append(d.Train, i)
		case i < nTrain+nValid:
			d.Valid = append(d.Valid, i)
		default:
			d.Test = append(d.Test, i)
		}
	}
}

// TrainTrips returns the training trips.
func (d *Dataset) TrainTrips() []*Trip { return d.pick(d.Train) }

// ValidTrips returns the validation trips.
func (d *Dataset) ValidTrips() []*Trip { return d.pick(d.Valid) }

// TestTrips returns the test trips.
func (d *Dataset) TestTrips() []*Trip { return d.pick(d.Test) }

func (d *Dataset) pick(idx []int) []*Trip {
	out := make([]*Trip, len(idx))
	for i, j := range idx {
		out[i] = &d.Trips[j]
	}
	return out
}

// Stats summarizes a dataset in the shape of the paper's Table I.
type Stats struct {
	RoadSegments          int
	Intersections         int
	CellPoints            int
	GPSPoints             int
	CellPointsPerTraj     float64
	GPSPointsPerTraj      float64
	AvgCellIntervalSec    float64
	MaxCellIntervalSec    float64
	AvgCellSampleDistM    float64
	MedianCellSampleDistM float64
}

// ComputeStats derives Table I-style characteristics from the dataset.
func (d *Dataset) ComputeStats() Stats {
	s := Stats{
		RoadSegments:  d.Net.NumSegments(),
		Intersections: d.Net.NumNodes(),
	}
	var cellPts, gpsPts int
	var intervalSum float64
	var intervalCount int
	var maxInterval float64
	var dists []float64
	for i := range d.Trips {
		tr := &d.Trips[i]
		cellPts += len(tr.Cell)
		gpsPts += len(tr.GPS)
		if mi := tr.Cell.MaxInterval(); mi > maxInterval {
			maxInterval = mi
		}
		for j := 1; j < len(tr.Cell); j++ {
			intervalSum += tr.Cell[j].T - tr.Cell[j-1].T
			intervalCount++
		}
		dists = append(dists, tr.Cell.SamplingDistances()...)
	}
	s.CellPoints = cellPts
	s.GPSPoints = gpsPts
	if n := len(d.Trips); n > 0 {
		s.CellPointsPerTraj = float64(cellPts) / float64(n)
		s.GPSPointsPerTraj = float64(gpsPts) / float64(n)
	}
	if intervalCount > 0 {
		s.AvgCellIntervalSec = intervalSum / float64(intervalCount)
	}
	s.MaxCellIntervalSec = maxInterval
	if len(dists) > 0 {
		var sum float64
		for _, d := range dists {
			sum += d
		}
		s.AvgCellSampleDistM = sum / float64(len(dists))
		s.MedianCellSampleDistM = median(dists)
	}
	return s
}

// median returns the median of xs without modifying it. Empty input
// returns 0.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}
