package traj

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
)

func TestKalmanFilterReducesNoise(t *testing.T) {
	// A phone moving east at 10 m/s sampled every 30 s with 300 m
	// noise: the smoother must reduce the mean position error.
	rng := rand.New(rand.NewSource(3))
	var raw CellTrajectory
	var truth []geo.Point
	for i := 0; i < 40; i++ {
		tm := float64(i) * 30
		p := geo.Pt(10*tm, 0)
		truth = append(truth, p)
		raw = append(raw, CellPoint{
			Tower: -1,
			P:     p.Add(geo.Pt(rng.NormFloat64()*300, rng.NormFloat64()*300)),
			T:     tm,
		})
	}
	smoothed := KalmanFilter(raw, KalmanConfig{ProcessNoise: 1, MeasurementNoise: 300})
	var rawErr, smErr float64
	// Skip the warm-up points where the filter is still acquiring the
	// velocity estimate.
	for i := 5; i < len(raw); i++ {
		rawErr += raw[i].P.Dist(truth[i])
		smErr += smoothed[i].P.Dist(truth[i])
	}
	if smErr >= rawErr {
		t.Errorf("Kalman did not reduce error: %.0f vs %.0f", smErr, rawErr)
	}
	// Identity and timestamps preserved.
	for i := range smoothed {
		if smoothed[i].Tower != raw[i].Tower || smoothed[i].T != raw[i].T {
			t.Fatal("Kalman modified identity or timestamps")
		}
	}
}

func TestKalmanFilterEdgeCases(t *testing.T) {
	if out := KalmanFilter(nil, DefaultKalmanConfig()); out != nil {
		t.Errorf("nil input = %v", out)
	}
	// Single point passes through at the measurement.
	one := CellTrajectory{{P: geo.Pt(5, 7), T: 0}}
	out := KalmanFilter(one, DefaultKalmanConfig())
	if len(out) != 1 || out[0].P != geo.Pt(5, 7) {
		t.Errorf("single point = %v", out)
	}
	// Duplicate timestamps do not divide by zero.
	dup := CellTrajectory{
		{P: geo.Pt(0, 0), T: 10},
		{P: geo.Pt(100, 0), T: 10},
		{P: geo.Pt(200, 0), T: 10},
	}
	out = KalmanFilter(dup, DefaultKalmanConfig())
	for _, p := range out {
		if math.IsNaN(p.P.X) || math.IsInf(p.P.X, 0) {
			t.Fatal("NaN/Inf from duplicate timestamps")
		}
	}
	// Zero-value config falls back to defaults.
	out = KalmanFilter(dup, KalmanConfig{})
	if len(out) != 3 {
		t.Errorf("default config output = %d points", len(out))
	}
}

func TestKalmanStationary(t *testing.T) {
	// A stationary phone: the smoothed track must converge toward the
	// true position as evidence accumulates.
	rng := rand.New(rand.NewSource(4))
	truth := geo.Pt(1000, -500)
	var raw CellTrajectory
	for i := 0; i < 60; i++ {
		raw = append(raw, CellPoint{
			P: truth.Add(geo.Pt(rng.NormFloat64()*250, rng.NormFloat64()*250)),
			T: float64(i) * 30,
		})
	}
	// Low process noise: the constant-velocity model must be told the
	// target barely accelerates for the evidence to accumulate.
	out := KalmanFilter(raw, KalmanConfig{ProcessNoise: 0.05, MeasurementNoise: 250})
	lastErr := out[len(out)-1].P.Dist(truth)
	if lastErr > 150 {
		t.Errorf("stationary estimate error %.0f m after 60 samples", lastErr)
	}
}
