package traj

import (
	"fmt"
	"math"
)

// SanitizeMode selects how trajectory sanitization treats malformed
// input points — NaN/Inf coordinates or timestamps, non-monotonic
// timestamps, and zero-duration duplicates. Real cellular feeds
// contain all three (clock glitches, handover artifacts, decoder
// bugs), and each poisons a different stage of the pipeline: NaN
// coordinates void spatial lookups, and non-increasing timestamps
// break the speed filter and transition features.
type SanitizeMode int

const (
	// SanitizeStrict rejects a trajectory containing any malformed
	// point with a descriptive error (the default: garbage in, error
	// out — never a crash downstream).
	SanitizeStrict SanitizeMode = iota
	// SanitizeDrop silently drops malformed points and matches the
	// rest, reporting what was removed.
	SanitizeDrop
	// SanitizeOff disables sanitization (the pre-hardening behavior;
	// malformed points flow into matching and surface as candidate
	// failures there).
	SanitizeOff
)

// String returns the CLI spelling of the mode.
func (m SanitizeMode) String() string {
	switch m {
	case SanitizeStrict:
		return "strict"
	case SanitizeDrop:
		return "drop"
	case SanitizeOff:
		return "off"
	default:
		return fmt.Sprintf("SanitizeMode(%d)", int(m))
	}
}

// ParseSanitizeMode parses the CLI spelling of a sanitize mode.
func ParseSanitizeMode(s string) (SanitizeMode, error) {
	switch s {
	case "strict":
		return SanitizeStrict, nil
	case "drop":
		return SanitizeDrop, nil
	case "off":
		return SanitizeOff, nil
	default:
		return 0, fmt.Errorf("traj: unknown sanitize mode %q (want strict, drop, or off)", s)
	}
}

// SanitizeReport counts what Sanitize removed.
type SanitizeReport struct {
	// BadCoords counts points dropped for NaN/Inf coordinates or
	// timestamps.
	BadCoords int
	// BadTimes counts points dropped for non-increasing timestamps
	// (clock glitches and zero-duration duplicates).
	BadTimes int
}

// Dropped returns the total number of removed points.
func (r SanitizeReport) Dropped() int { return r.BadCoords + r.BadTimes }

// FinitePoint reports whether the point's coordinates and timestamp
// are all finite — the per-point half of Sanitize, exported for
// streaming pipelines that validate points as they arrive.
func FinitePoint(p CellPoint) bool { return finitePoint(p) }

func finitePoint(p CellPoint) bool {
	return !math.IsNaN(p.P.X) && !math.IsInf(p.P.X, 0) &&
		!math.IsNaN(p.P.Y) && !math.IsInf(p.P.Y, 0) &&
		!math.IsNaN(p.T) && !math.IsInf(p.T, 0)
}

// Sanitize validates a cellular trajectory per the mode. Strict mode
// returns the input unchanged or an error naming the first malformed
// point. Drop mode returns a copy with malformed points removed
// (non-finite coordinates/timestamps first, then any point whose
// timestamp does not strictly increase over the last kept point) and a
// report of what went. Off returns the input unchanged. A clean
// trajectory is returned as-is in every mode with a zero report.
func Sanitize(ct CellTrajectory, mode SanitizeMode) (CellTrajectory, SanitizeReport, error) {
	var rep SanitizeReport
	if mode == SanitizeOff || len(ct) == 0 {
		return ct, rep, nil
	}
	clean := true
	lastT := math.Inf(-1)
	for i, p := range ct {
		if !finitePoint(p) {
			if mode == SanitizeStrict {
				return nil, rep, fmt.Errorf("traj: point %d has non-finite coordinates or timestamp (%v, %v, t=%v)", i, p.P.X, p.P.Y, p.T)
			}
			clean = false
			continue
		}
		if p.T <= lastT {
			if mode == SanitizeStrict {
				return nil, rep, fmt.Errorf("traj: point %d timestamp %v does not increase over %v", i, p.T, lastT)
			}
			clean = false
			continue
		}
		lastT = p.T
	}
	if clean {
		return ct, rep, nil
	}
	// Drop mode with something to drop: rebuild.
	out := make(CellTrajectory, 0, len(ct))
	lastT = math.Inf(-1)
	for _, p := range ct {
		if !finitePoint(p) {
			rep.BadCoords++
			continue
		}
		if p.T <= lastT {
			rep.BadTimes++
			continue
		}
		lastT = p.T
		out = append(out, p)
	}
	return out, rep, nil
}
