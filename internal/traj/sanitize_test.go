package traj

import (
	"math"
	"testing"

	"repro/internal/geo"
)

func cleanTraj(n int) CellTrajectory {
	ct := make(CellTrajectory, n)
	for i := range ct {
		ct[i] = CellPoint{Tower: -1, P: geo.Pt(float64(i)*100, 50), T: float64(i) * 60}
	}
	return ct
}

func TestSanitizeCleanPassthrough(t *testing.T) {
	ct := cleanTraj(5)
	for _, mode := range []SanitizeMode{SanitizeStrict, SanitizeDrop, SanitizeOff} {
		out, rep, err := Sanitize(ct, mode)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if rep.Dropped() != 0 {
			t.Errorf("mode %v: dropped %d from clean input", mode, rep.Dropped())
		}
		if len(out) != len(ct) {
			t.Errorf("mode %v: %d points out of %d", mode, len(out), len(ct))
		}
		// Clean input is returned without copying.
		if len(out) > 0 && &out[0] != &ct[0] {
			t.Errorf("mode %v: clean input was copied", mode)
		}
	}
}

func TestSanitizeNaNCoords(t *testing.T) {
	ct := cleanTraj(5)
	ct[2].P.X = math.NaN()

	if _, _, err := Sanitize(ct, SanitizeStrict); err == nil {
		t.Error("strict mode accepted NaN coordinate")
	}

	out, rep, err := Sanitize(ct, SanitizeDrop)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 || rep.BadCoords != 1 {
		t.Errorf("drop mode: %d points, report %+v", len(out), rep)
	}

	out, rep, err = Sanitize(ct, SanitizeOff)
	if err != nil || len(out) != 5 || rep.Dropped() != 0 {
		t.Errorf("off mode altered input: %d points, %+v, %v", len(out), rep, err)
	}
}

func TestSanitizeInfAndNaNTime(t *testing.T) {
	ct := cleanTraj(4)
	ct[1].P.Y = math.Inf(1)
	ct[3].T = math.NaN()
	out, rep, err := Sanitize(ct, SanitizeDrop)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || rep.BadCoords != 2 {
		t.Errorf("got %d points, report %+v", len(out), rep)
	}
}

func TestSanitizeDuplicateTimestamps(t *testing.T) {
	ct := cleanTraj(5)
	ct[2].T = ct[1].T // zero-duration duplicate
	ct[4].T = ct[3].T - 10

	if _, _, err := Sanitize(ct, SanitizeStrict); err == nil {
		t.Error("strict mode accepted duplicate timestamp")
	}

	out, rep, err := Sanitize(ct, SanitizeDrop)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || rep.BadTimes != 2 {
		t.Errorf("drop mode: %d points, report %+v", len(out), rep)
	}
	for i := 1; i < len(out); i++ {
		if out[i].T <= out[i-1].T {
			t.Errorf("output timestamps not strictly increasing at %d", i)
		}
	}
}

func TestSanitizeAllBad(t *testing.T) {
	ct := CellTrajectory{
		{P: geo.Pt(math.NaN(), 0), T: 0},
		{P: geo.Pt(math.Inf(-1), 0), T: 1},
	}
	out, rep, err := Sanitize(ct, SanitizeDrop)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 || rep.BadCoords != 2 {
		t.Errorf("all-bad drop: %d points, %+v", len(out), rep)
	}
}

func TestSanitizeEmpty(t *testing.T) {
	for _, mode := range []SanitizeMode{SanitizeStrict, SanitizeDrop, SanitizeOff} {
		out, rep, err := Sanitize(nil, mode)
		if err != nil || len(out) != 0 || rep.Dropped() != 0 {
			t.Errorf("mode %v on nil: %v %v %v", mode, out, rep, err)
		}
	}
}

func TestParseSanitizeMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SanitizeMode
	}{{"strict", SanitizeStrict}, {"drop", SanitizeDrop}, {"off", SanitizeOff}} {
		got, err := ParseSanitizeMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSanitizeMode(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Errorf("String() round-trip: %q != %q", got.String(), tc.in)
		}
	}
	if _, err := ParseSanitizeMode("bogus"); err == nil {
		t.Error("bogus mode accepted")
	}
}

// FuzzSanitize feeds arbitrary point patterns through every mode and
// asserts the invariants: no panic, strict never mutates, drop output
// is finite with strictly increasing timestamps.
func FuzzSanitize(f *testing.F) {
	f.Add(float64(1), float64(2), float64(3), float64(4), uint8(0))
	f.Add(math.NaN(), float64(0), math.Inf(1), float64(-1), uint8(1))
	f.Add(float64(0), float64(0), float64(0), float64(0), uint8(2))
	f.Fuzz(func(t *testing.T, x, y, t0, t1 float64, mode uint8) {
		ct := CellTrajectory{
			{P: geo.Pt(x, y), T: t0},
			{P: geo.Pt(y, x), T: t1},
			{P: geo.Pt(x+1, y-1), T: t1},
		}
		m := SanitizeMode(mode % 3)
		out, rep, err := Sanitize(ct, m)
		if m == SanitizeStrict && err == nil {
			// Accepted strictly: every point must be finite and ordered.
			last := math.Inf(-1)
			for _, p := range out {
				if !finitePoint(p) || p.T <= last {
					t.Fatalf("strict accepted malformed point %+v", p)
				}
				last = p.T
			}
		}
		if m == SanitizeDrop {
			if err != nil {
				t.Fatalf("drop mode errored: %v", err)
			}
			if len(out)+rep.Dropped() != len(ct) {
				t.Fatalf("drop accounting: %d out + %d dropped != %d in", len(out), rep.Dropped(), len(ct))
			}
			last := math.Inf(-1)
			for _, p := range out {
				if !finitePoint(p) || p.T <= last {
					t.Fatalf("drop output kept malformed point %+v", p)
				}
				last = p.T
			}
		}
	})
}
