package traj

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cellular"
	"repro/internal/geo"
	"repro/internal/roadnet"
)

func sampleDataset(t *testing.T) *Dataset {
	t.Helper()
	var b roadnet.Builder
	n0 := b.AddNode(geo.Pt(0, 0))
	n1 := b.AddNode(geo.Pt(100, 0))
	n2 := b.AddNode(geo.Pt(200, 0))
	s0, err := b.AddSegment(n0, n1, roadnet.Local)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := b.AddSegment(n1, n2, roadnet.Arterial)
	if err != nil {
		t.Fatal(err)
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cells, err := cellular.NewNet([]geo.Point{geo.Pt(50, 60), geo.Pt(160, -40)})
	if err != nil {
		t.Fatal(err)
	}
	d := &Dataset{
		Name:   "io-test",
		Net:    net,
		Cells:  cells,
		Center: geo.Pt(10, 20),
		Trips: []Trip{{
			ID:   0,
			Path: []roadnet.SegmentID{s0, s1},
			GPS: []GPSPoint{
				{P: geo.Pt(10, 1), T: 0},
				{P: geo.Pt(150, -2), T: 30},
			},
			Cell: CellTrajectory{
				{Tower: 0, P: geo.Pt(50, 60), T: 0},
				{Tower: 1, P: geo.Pt(160, -40), T: 45},
			},
		}},
	}
	d.Trips[0].PathGeom = pathGeometry(net, d.Trips[0].Path)
	d.Split(0.5, 0)
	return d
}

func TestDatasetRoundTrip(t *testing.T) {
	d := sampleDataset(t)
	var buf bytes.Buffer
	if err := WriteDataset(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadDataset(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d2.Name != d.Name || d2.Center != d.Center {
		t.Errorf("metadata mismatch: %q %v", d2.Name, d2.Center)
	}
	if d2.Net.NumSegments() != d.Net.NumSegments() || d2.Cells.NumTowers() != 2 {
		t.Errorf("network sizes differ")
	}
	if len(d2.Trips) != 1 {
		t.Fatalf("trips = %d", len(d2.Trips))
	}
	tr, tr2 := &d.Trips[0], &d2.Trips[0]
	if len(tr2.Path) != len(tr.Path) || tr2.Path[0] != tr.Path[0] {
		t.Errorf("path mismatch: %v", tr2.Path)
	}
	if len(tr2.GPS) != 2 || tr2.GPS[1].P != tr.GPS[1].P || tr2.GPS[1].T != 30 {
		t.Errorf("gps mismatch: %+v", tr2.GPS)
	}
	if len(tr2.Cell) != 2 || tr2.Cell[1].Tower != 1 || tr2.Cell[1].T != 45 {
		t.Errorf("cell mismatch: %+v", tr2.Cell)
	}
	if tr2.PathGeom.Length() != tr.PathGeom.Length() {
		t.Errorf("geometry length mismatch")
	}
	if len(d2.Train) != len(d.Train) || len(d2.Test) != len(d.Test) {
		t.Errorf("splits mismatch")
	}
}

func TestReadDatasetValidation(t *testing.T) {
	if _, err := ReadDataset(strings.NewReader("{bad")); err == nil {
		t.Error("bad JSON did not error")
	}
	d := sampleDataset(t)
	var buf bytes.Buffer
	if err := WriteDataset(&buf, d); err != nil {
		t.Fatal(err)
	}
	// Corrupt a segment reference.
	s := strings.Replace(buf.String(), `"path":[0,1]`, `"path":[0,99]`, 1)
	if s == buf.String() {
		t.Fatal("test setup: path not found in JSON")
	}
	if _, err := ReadDataset(strings.NewReader(s)); err == nil {
		t.Error("out-of-range segment did not error")
	}
	// Corrupt a tower reference.
	s = strings.Replace(buf.String(), `[1,160,-40,45]`, `[9,160,-40,45]`, 1)
	if s == buf.String() {
		t.Fatal("test setup: cell point not found in JSON")
	}
	if _, err := ReadDataset(strings.NewReader(s)); err == nil {
		t.Error("out-of-range tower did not error")
	}
}
