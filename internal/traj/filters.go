package traj

import (
	"math"
	"sort"

	"repro/internal/geo"
)

// FilterConfig parameterizes the preprocessing filter chain the paper
// applies to cellular trajectories before matching (§V-A1, following
// SnapNet [12]).
type FilterConfig struct {
	// MaxSpeed is the speed filter threshold in m/s: a point implying a
	// faster movement from the last kept point is dropped. Default 42
	// (~150 km/h).
	MaxSpeed float64
	// MeanWindow is the α-trimmed mean filter window size (number of
	// points, odd). Default 5.
	MeanWindow int
	// TrimAlpha is the fraction trimmed from each end of the window
	// before averaging, in [0, 0.5). Default 0.2.
	TrimAlpha float64
	// DirectionMinAngle is the direction filter threshold in radians: a
	// point whose incoming and outgoing headings differ by more than
	// this (a ping-pong handover artifact) is dropped. Default 2.62
	// (150°).
	DirectionMinAngle float64
}

// DefaultFilterConfig returns the configuration used by the dataset
// presets.
func DefaultFilterConfig() FilterConfig {
	return FilterConfig{
		MaxSpeed:          42,
		MeanWindow:        5,
		TrimAlpha:         0.2,
		DirectionMinAngle: 150 * math.Pi / 180,
	}
}

// Preprocess applies the full filter chain — speed filter, α-trimmed
// mean filter, direction filter — returning a new trajectory. The input
// is not modified. Tower identities are preserved; only position
// estimates are smoothed.
func Preprocess(ct CellTrajectory, cfg FilterConfig) CellTrajectory {
	out := SpeedFilter(ct, cfg.MaxSpeed)
	out = AlphaTrimmedMeanFilter(out, cfg.MeanWindow, cfg.TrimAlpha)
	out = DirectionFilter(out, cfg.DirectionMinAngle)
	return out
}

// SpeedFilter drops points that imply movement faster than maxSpeed
// (m/s) from the previously kept point. The first point is always kept.
// Non-positive maxSpeed disables the filter.
func SpeedFilter(ct CellTrajectory, maxSpeed float64) CellTrajectory {
	if len(ct) == 0 {
		return nil
	}
	if maxSpeed <= 0 {
		return append(CellTrajectory(nil), ct...)
	}
	out := CellTrajectory{ct[0]}
	for _, p := range ct[1:] {
		last := out[len(out)-1]
		dt := p.T - last.T
		if dt <= 0 {
			continue // duplicate or out-of-order timestamp
		}
		if last.P.Dist(p.P)/dt <= maxSpeed {
			out = append(out, p)
		}
	}
	return out
}

// AlphaTrimmedMeanFilter smooths point positions with an α-trimmed mean
// over a sliding window: for each point, the window's x and y
// coordinates are sorted, the extreme alpha fraction is trimmed from
// each end, and the rest averaged. Window sizes below 3 or an empty
// trajectory return an unmodified copy. Even windows are widened by one.
func AlphaTrimmedMeanFilter(ct CellTrajectory, window int, alpha float64) CellTrajectory {
	out := append(CellTrajectory(nil), ct...)
	if len(ct) == 0 || window < 3 {
		return out
	}
	if window%2 == 0 {
		window++
	}
	if alpha < 0 {
		alpha = 0
	}
	if alpha >= 0.5 {
		alpha = 0.49
	}
	half := window / 2
	for i := range ct {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi > len(ct)-1 {
			hi = len(ct) - 1
		}
		n := hi - lo + 1
		if n < 3 {
			continue
		}
		xs := make([]float64, 0, n)
		ys := make([]float64, 0, n)
		for j := lo; j <= hi; j++ {
			xs = append(xs, ct[j].P.X)
			ys = append(ys, ct[j].P.Y)
		}
		out[i].P = geo.Pt(trimmedMean(xs, alpha), trimmedMean(ys, alpha))
	}
	return out
}

// trimmedMean sorts xs and averages after removing the alpha fraction
// from each end (at least keeping one element).
func trimmedMean(xs []float64, alpha float64) float64 {
	sort.Float64s(xs)
	trim := int(alpha * float64(len(xs)))
	lo, hi := trim, len(xs)-trim
	if hi <= lo {
		lo, hi = len(xs)/2, len(xs)/2+1
	}
	var sum float64
	for _, x := range xs[lo:hi] {
		sum += x
	}
	return sum / float64(hi-lo)
}

// DirectionFilter removes ping-pong handover artifacts: an interior
// point whose incoming and outgoing headings differ by more than
// minAngle (i.e. the track doubles back on itself at that point) is
// dropped. Endpoints are always kept. Non-positive minAngle disables
// the filter.
func DirectionFilter(ct CellTrajectory, minAngle float64) CellTrajectory {
	if len(ct) == 0 {
		return nil
	}
	if minAngle <= 0 || len(ct) < 3 {
		return append(CellTrajectory(nil), ct...)
	}
	out := CellTrajectory{ct[0]}
	for i := 1; i < len(ct)-1; i++ {
		prev := out[len(out)-1]
		cur, next := ct[i], ct[i+1]
		if prev.P == cur.P || cur.P == next.P {
			out = append(out, cur)
			continue
		}
		turn := geo.TurnAngle(prev.P, cur.P, next.P)
		if turn <= minAngle {
			out = append(out, cur)
		}
	}
	out = append(out, ct[len(ct)-1])
	return out
}
