package traj

import (
	"testing"

	"repro/internal/cellular"
	"repro/internal/geo"
	"repro/internal/roadnet"
)

// datasetWithTinyNet builds a minimal valid Dataset (one street, one
// tower, no trips) for tests that need the container shape only.
func datasetWithTinyNet(t *testing.T) *Dataset {
	t.Helper()
	var b roadnet.Builder
	a := b.AddNode(geo.Pt(0, 0))
	c := b.AddNode(geo.Pt(100, 0))
	if _, err := b.AddSegment(a, c, roadnet.Local); err != nil {
		t.Fatal(err)
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cells, err := cellular.NewNet([]geo.Point{geo.Pt(50, 50)})
	if err != nil {
		t.Fatal(err)
	}
	return &Dataset{Name: "tiny", Net: net, Cells: cells}
}
