package traj

import (
	"math"
	"testing"

	"repro/internal/geo"
)

func mkTraj(pts ...geo.Point) CellTrajectory {
	ct := make(CellTrajectory, len(pts))
	for i, p := range pts {
		ct[i] = CellPoint{Tower: -1, P: p, T: float64(i) * 60}
	}
	return ct
}

func TestTrajectoryAccessors(t *testing.T) {
	ct := mkTraj(geo.Pt(0, 0), geo.Pt(300, 400), geo.Pt(300, 1000))
	if pl := ct.Positions(); len(pl) != 3 || pl[1] != geo.Pt(300, 400) {
		t.Errorf("Positions = %v", pl)
	}
	if d := ct.Duration(); d != 120 {
		t.Errorf("Duration = %v", d)
	}
	if mi := ct.MeanInterval(); mi != 60 {
		t.Errorf("MeanInterval = %v", mi)
	}
	if mi := ct.MaxInterval(); mi != 60 {
		t.Errorf("MaxInterval = %v", mi)
	}
	dists := ct.SamplingDistances()
	if len(dists) != 2 || dists[0] != 500 || dists[1] != 600 {
		t.Errorf("SamplingDistances = %v", dists)
	}
	empty := CellTrajectory{}
	if empty.Duration() != 0 || empty.MeanInterval() != 0 || empty.SamplingDistances() != nil {
		t.Error("empty trajectory accessors not zero")
	}
}

func TestResample(t *testing.T) {
	ct := mkTraj(geo.Pt(0, 0), geo.Pt(1, 0), geo.Pt(2, 0), geo.Pt(3, 0), geo.Pt(4, 0))
	// 60 s intervals; keep >= 120 s apart: indices 0,2,4.
	rs := ct.Resample(120)
	if len(rs) != 3 || rs[0].T != 0 || rs[1].T != 120 || rs[2].T != 240 {
		t.Errorf("Resample = %v", rs)
	}
	// Zero gap returns a copy.
	same := ct.Resample(0)
	if len(same) != len(ct) {
		t.Errorf("Resample(0) = %d points", len(same))
	}
	same[0].T = 999
	if ct[0].T == 999 {
		t.Error("Resample(0) did not copy")
	}
	if got := (CellTrajectory{}).Resample(10); len(got) != 0 {
		t.Errorf("empty Resample = %v", got)
	}
}

func TestSpeedFilter(t *testing.T) {
	ct := CellTrajectory{
		{P: geo.Pt(0, 0), T: 0},
		{P: geo.Pt(100, 0), T: 10},   // 10 m/s — keep
		{P: geo.Pt(10000, 0), T: 20}, // 990 m/s — drop
		{P: geo.Pt(200, 0), T: 30},   // 5 m/s from (100,0) — keep
		{P: geo.Pt(300, 0), T: 30},   // duplicate timestamp — drop
	}
	out := SpeedFilter(ct, 42)
	if len(out) != 3 {
		t.Fatalf("SpeedFilter kept %d, want 3: %v", len(out), out)
	}
	if out[2].P != geo.Pt(200, 0) {
		t.Errorf("SpeedFilter kept wrong points: %v", out)
	}
	if got := SpeedFilter(nil, 42); got != nil {
		t.Errorf("nil SpeedFilter = %v", got)
	}
	if got := SpeedFilter(ct, 0); len(got) != len(ct) {
		t.Errorf("disabled SpeedFilter dropped points")
	}
}

func TestAlphaTrimmedMeanFilter(t *testing.T) {
	// One outlier among collinear points: the trimmed mean should pull
	// it toward the line.
	ct := mkTraj(
		geo.Pt(0, 0), geo.Pt(100, 0), geo.Pt(200, 5000), geo.Pt(300, 0), geo.Pt(400, 0),
	)
	out := AlphaTrimmedMeanFilter(ct, 5, 0.2)
	if len(out) != len(ct) {
		t.Fatalf("filter changed length: %d", len(out))
	}
	if out[2].P.Y >= 5000 {
		t.Errorf("outlier not smoothed: %v", out[2].P)
	}
	// Tower ids preserved.
	for i := range out {
		if out[i].Tower != ct[i].Tower || out[i].T != ct[i].T {
			t.Error("filter modified identity or timestamp")
		}
	}
	// Small window: unchanged copy.
	same := AlphaTrimmedMeanFilter(ct, 1, 0.2)
	for i := range same {
		if same[i].P != ct[i].P {
			t.Error("window<3 modified positions")
		}
	}
	if got := AlphaTrimmedMeanFilter(nil, 5, 0.2); len(got) != 0 {
		t.Errorf("nil input = %v", got)
	}
}

func TestTrimmedMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100}
	got := trimmedMean(append([]float64(nil), xs...), 0.2)
	if got != 3 { // trims 1 and 100, mean(2,3,4)=3
		t.Errorf("trimmedMean = %v, want 3", got)
	}
	// Two elements, trim 0: plain mean.
	if got := trimmedMean([]float64{5, 7}, 0.49); got != 6 {
		t.Errorf("two-element trimmedMean = %v, want 6", got)
	}
	// Three elements with trim 1 keeps only the middle element.
	if got := trimmedMean([]float64{1, 50, 100}, 0.49); got != 50 {
		t.Errorf("heavy-trim trimmedMean = %v, want 50", got)
	}
}

func TestDirectionFilter(t *testing.T) {
	// Ping-pong: forward, jump back, forward again.
	ct := mkTraj(geo.Pt(0, 0), geo.Pt(1000, 0), geo.Pt(100, 0), geo.Pt(1100, 0))
	out := DirectionFilter(ct, 150*math.Pi/180)
	// Point 1 reverses (turn at p1: heading 0 then pi => drop p1? turn
	// computed at p1 between (p0->p1) and (p1->p2): pi -> dropped.
	if len(out) >= len(ct) {
		t.Fatalf("DirectionFilter dropped nothing: %v", out)
	}
	// Endpoints preserved.
	if out[0] != ct[0] || out[len(out)-1] != ct[len(ct)-1] {
		t.Error("DirectionFilter lost endpoints")
	}
	// Gentle curve untouched.
	curve := mkTraj(geo.Pt(0, 0), geo.Pt(100, 10), geo.Pt(200, 30), geo.Pt(300, 60))
	if got := DirectionFilter(curve, 150*math.Pi/180); len(got) != len(curve) {
		t.Errorf("gentle curve filtered: %d of %d", len(got), len(curve))
	}
	if got := DirectionFilter(nil, 1); got != nil {
		t.Errorf("nil input = %v", got)
	}
	if got := DirectionFilter(ct, 0); len(got) != len(ct) {
		t.Error("disabled filter dropped points")
	}
}

func TestPreprocessChain(t *testing.T) {
	ct := CellTrajectory{
		{P: geo.Pt(0, 0), T: 0},
		{P: geo.Pt(500, 0), T: 60},
		{P: geo.Pt(50000, 0), T: 120}, // speed outlier
		{P: geo.Pt(1000, 100), T: 180},
		{P: geo.Pt(1500, 0), T: 240},
		{P: geo.Pt(2000, 50), T: 300},
	}
	out := Preprocess(ct, DefaultFilterConfig())
	if len(out) == 0 || len(out) >= len(ct) {
		t.Fatalf("Preprocess kept %d of %d", len(out), len(ct))
	}
	for _, p := range out {
		if p.P.X > 10000 {
			t.Error("speed outlier survived preprocessing")
		}
	}
}

func TestSplit(t *testing.T) {
	d := Dataset{Trips: make([]Trip, 10)}
	for i := range d.Trips {
		d.Trips[i].ID = i
	}
	d.Split(0.6, 0.2)
	if len(d.Train) != 6 || len(d.Valid) != 2 || len(d.Test) != 2 {
		t.Fatalf("Split = %d/%d/%d", len(d.Train), len(d.Valid), len(d.Test))
	}
	if d.TrainTrips()[0].ID != 0 || d.TestTrips()[1].ID != 9 {
		t.Error("split picked wrong trips")
	}
	// Overlapping fractions clamp.
	d.Split(0.8, 0.5)
	if len(d.Train)+len(d.Valid)+len(d.Test) != 10 {
		t.Error("clamped split lost trips")
	}
}

func TestComputeStatsEmptyTrips(t *testing.T) {
	// Stats on an empty trip list must not divide by zero. A tiny
	// network satisfies the dataset shape.
	d := datasetWithTinyNet(t)
	s := d.ComputeStats()
	if s.CellPoints != 0 || s.CellPointsPerTraj != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestMedian(t *testing.T) {
	if m := median(nil); m != 0 {
		t.Errorf("median(nil) = %v", m)
	}
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %v", m)
	}
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("even median = %v", m)
	}
	// Input not modified.
	xs := []float64{3, 1, 2}
	median(xs)
	if xs[0] != 3 {
		t.Error("median modified input")
	}
}
