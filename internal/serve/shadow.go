package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/hmm"
	"repro/internal/obs"
	"repro/internal/shadow"
	"repro/internal/traj"
)

// shadowJob packages a completed batch match for mirroring: the raw
// trajectory, the effective (per-request-overridden) model it ran
// under, and the original request for disagreement capture.
func shadowJob(ct traj.CellTrajectory, m *core.Model, req *MatchRequest) shadow.Job {
	return shadow.Job{Trajectory: ct, Model: m, Meta: req}
}

// Shadow candidate lifecycle telemetry (the comparison instruments
// live in the shadow package).
var (
	obsShadowLoads    = obs.Default.Counter("shadow.loads")
	obsShadowLoadErrs = obs.Default.Counter("shadow.load.errors")
	obsShadowLoaded   = obs.Default.Gauge("shadow.loaded")
)

// ShadowConfig configures candidate-model shadow scoring: a second
// model mirrored against live traffic to build a promotion-readiness
// verdict before it replaces the serving model via hot-reload.
type ShadowConfig struct {
	// Loader opens a candidate model from a weights path; lhmm-serve
	// passes the same dataset-resident loader the reload registry uses.
	// Non-nil enables the /v1/shadow endpoints (a candidate can then be
	// loaded at runtime even if none was given at boot).
	Loader func(path string) (*core.Model, error)
	// ModelPath, when non-empty, is loaded at boot. A boot load failure
	// logs a warning and leaves shadow idle — it never stops the server
	// from starting, mirroring the reload registry's
	// corrupt-weights-keep-serving contract.
	ModelPath string
	// Sample is the fraction of completed match requests (and created
	// sessions) mirrored through the candidate (default 1).
	Sample float64
	// Workers/Queue bound the mirror pool (defaults 2/256); a full
	// queue drops samples rather than delaying the serving path.
	Workers int
	Queue   int
	// Timeout caps each mirrored match (default 30s).
	Timeout time.Duration
	// Capture, when set, records every disagreeing mirrored batch
	// request in the lhmm-capture format so `lhmm replay` can do
	// forensics on exactly the inputs where the models diverge. Open it
	// with sample rate 1 — the mirror already sampled.
	Capture *Capture
	// Thresholds gate the GET /v1/shadow promotion verdict.
	Thresholds shadow.Thresholds
}

// ShadowLoadRequest is the POST /v1/shadow/load body. An empty body
// (or empty path) reloads the current candidate path from disk.
type ShadowLoadRequest struct {
	Path string `json:"path,omitempty"`
}

// shadowState is the server's candidate-model holder plus the mirror
// that scores it. It deliberately does not reuse the serving Registry:
// candidate loads must not pollute the lhmm_serve_reloads_* series or
// readiness, and the failure contract is simpler (a bad candidate
// leaves the previous candidate — or nothing — in place).
type shadowState struct {
	cfg    ShadowConfig
	stats  *shadow.Stats
	mirror *shadow.Mirror

	cand    atomic.Pointer[core.Model]
	loading atomic.Bool // serializes loads, same CAS pattern as Registry

	mu       sync.Mutex
	path     string
	loadedAt time.Time
}

func newShadowState(cfg ShadowConfig) *shadowState {
	st := &shadowState{cfg: cfg, stats: shadow.NewStats()}
	st.mirror = shadow.NewMirror(shadow.Config{
		Candidate:    st.candidate,
		Sample:       cfg.Sample,
		Workers:      cfg.Workers,
		Queue:        cfg.Queue,
		Timeout:      cfg.Timeout,
		Encode:       encodeMatchBody,
		EncodeStream: encodeStreamBody,
		Stats:        st.stats,
		OnCompared:   st.onCompared,
	})
	return st
}

func (st *shadowState) candidate() *core.Model { return st.cand.Load() }

// encodeMatchBody produces the exact bytes handleMatch writes for a
// plain (non-debug) response: Encoder output to a buffer and to the
// wire is identical, so digest equality is over client-visible bytes.
func encodeMatchBody(res *hmm.Result) ([]byte, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(ResultJSON(res)); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// encodeStreamBody produces the exact bytes handleSessionFinish writes
// for a finished session.
func encodeStreamBody(sm *hmm.StreamMatcher) ([]byte, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(streamResultJSON(sm)); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// onCompared persists disagreeing batch requests to the capture file.
// Streaming disagreements are counted but not captured — the capture
// format records whole-trajectory requests.
func (st *shadowState) onCompared(job shadow.Job, cmp *shadow.Comparison) {
	if st.cfg.Capture == nil || job.Stream || !cmp.Disagrees() {
		return
	}
	req, ok := job.Meta.(*MatchRequest)
	if !ok || cmp.ActiveRes == nil {
		return
	}
	st.cfg.Capture.Record(req, job.Model, cmp.ActiveRes, cmp.ActiveBody)
}

// load opens, validates, and atomically installs a candidate model.
// Any failure keeps the previous candidate (or none) scoring — the
// serving model is never involved.
func (st *shadowState) load(path string) error {
	if path == "" {
		return errors.New("serve: shadow load: no model path")
	}
	if !st.loading.CompareAndSwap(false, true) {
		return errors.New("serve: shadow load already in progress")
	}
	defer st.loading.Store(false)
	m, err := st.cfg.Loader(path)
	if err != nil {
		obsShadowLoadErrs.Inc()
		return fmt.Errorf("serve: shadow load: %w", err)
	}
	if m == nil || m.Embeddings() == nil {
		obsShadowLoadErrs.Inc()
		return errors.New("serve: shadow load: model has no frozen embeddings")
	}
	// Fresh candidate, fresh evidence: the verdict must describe this
	// candidate only. Cumulative shadow.* counters keep running.
	st.stats.Reset()
	st.cand.Store(m)
	st.mu.Lock()
	st.path = path
	st.loadedAt = time.Now()
	st.mu.Unlock()
	obsShadowLoads.Inc()
	obsShadowLoaded.Set(1)
	obs.Logger().Info("serve: shadow candidate loaded", "path", path)
	return nil
}

// currentPath returns the installed candidate's path (falling back to
// the boot-configured one for retry-after-boot-failure loads).
func (st *shadowState) currentPath() string {
	st.mu.Lock()
	p := st.path
	st.mu.Unlock()
	if p == "" {
		p = st.cfg.ModelPath
	}
	return p
}

// report builds the GET /v1/shadow body.
func (st *shadowState) report() shadow.Report {
	r := st.stats.Report(st.cfg.Thresholds)
	if st.cand.Load() == nil {
		r.Enabled = false
		r.Verdict = shadow.VerdictDisabled
		r.Reasons = nil
		return r
	}
	r.Enabled = true
	st.mu.Lock()
	r.ModelPath = st.path
	if !st.loadedAt.IsZero() {
		r.LoadedAt = st.loadedAt.UTC().Format(time.RFC3339)
	}
	st.mu.Unlock()
	return r
}

// shadowProbeTTL bounds how often the quality monitor recomputes the
// agreement rate; like the drift probe, the cached value makes the
// under-lock call O(1).
const shadowProbeTTL = 5 * time.Second

// shadowProbe adapts the shadow aggregate to QualityConfig.ShadowProbe.
// Below the verdict's min-samples floor it reports 1.0 (no evidence of
// divergence), so a single early disagreement cannot flip /readyz
// detail.
type shadowProbe struct {
	st  *shadowState
	min int64

	mu   sync.Mutex
	last time.Time
	val  float64
}

func (p *shadowProbe) value() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if now := time.Now(); p.last.IsZero() || now.Sub(p.last) > shadowProbeTTL {
		rate, samples := p.st.stats.Agreement()
		if p.st.cand.Load() == nil || samples < p.min {
			rate = 1
		}
		p.val = rate
		p.last = now
	}
	return p.val
}

// --- handlers ---

func (s *Server) handleShadow(w http.ResponseWriter, r *http.Request) {
	if s.shadow == nil {
		writeJSON(w, http.StatusOK, shadow.Report{Verdict: shadow.VerdictDisabled})
		return
	}
	writeJSON(w, http.StatusOK, s.shadow.report())
}

func (s *Server) handleShadowLoad(w http.ResponseWriter, r *http.Request) {
	if s.shadow == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("serve: shadow scoring not configured"))
		return
	}
	var req ShadowLoadRequest
	if r.ContentLength != 0 {
		if !s.decode(w, r, &req) {
			return
		}
	}
	path := req.Path
	if path == "" {
		path = s.shadow.currentPath()
	}
	if err := s.shadow.load(path); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "loaded", "path": path})
}
