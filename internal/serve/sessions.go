package serve

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/hmm"
	"repro/internal/obs"
	"repro/internal/traj"
)

// Session telemetry.
var (
	obsSessActive   = obs.Default.Gauge("serve.sessions.active")
	obsSessCreated  = obs.Default.Counter("serve.sessions.created")
	obsSessEvicted  = obs.Default.Counter("serve.sessions.evicted")
	obsSessRejected = obs.Default.Counter("serve.sessions.rejected")
)

// fpSessionCreate fails session creation (chaos tests; no-op unless
// armed).
var fpSessionCreate = faultinject.New("serve.session.create")

var (
	// errSessionCap rejects a session create at the configured cap.
	// Mapped to 429 by the handlers.
	errSessionCap = errors.New("serve: session cap reached")
	// errSessionNotFound maps to 404.
	errSessionNotFound = errors.New("serve: no such session")
)

// sessionShards keeps lock contention flat as device counts grow; a
// power of two so the hash maps with a mask.
const sessionShards = 16

// Session is one device's live streaming match: a StreamMatcher plus
// the bookkeeping the manager needs for TTL eviction.
//
// All matcher access is serialized by mu — the StreamMatcher is a
// single-writer state machine, and HTTP gives no ordering between
// concurrent POSTs for the same device, so the manager imposes one.
// Concurrent pushes to one session queue behind the lock; pushes to
// different sessions only share a shard map read.
type Session struct {
	ID string

	mu sync.Mutex
	sm *hmm.StreamMatcher
	// done marks a finished session (kept briefly so a duplicate finish
	// reads as "gone", not a confusing 404-then-recreate).
	done bool

	lastNano atomic.Int64 // last touch, UnixNano; read by the janitor without mu

	// Durability bookkeeping (all no-ops when checkpointing is off).
	// wh is the weights hash of the model this session scores with,
	// stamped into every snapshot; seq counts state-changing pushes and
	// ckptSeq the last durably persisted seq, so seq != ckptSeq is the
	// dirty predicate; ckptQueued dedups the async write queue;
	// finished mirrors done for lock-free dirty checks.
	wh         [32]byte
	seq        atomic.Uint64
	ckptSeq    atomic.Uint64
	ckptQueued atomic.Bool
	finished   atomic.Bool

	// Shadow mirroring (zero unless the session was sampled at create):
	// the model+lag the session scores with, and every pushed point,
	// buffered so finish can replay the whole stream through the shadow
	// candidate. Guarded by mu like the matcher itself.
	shadowModel *core.Model
	shadowLag   int
	shadowPts   traj.CellTrajectory
}

func (s *Session) touch(now time.Time) { s.lastNano.Store(now.UnixNano()) }

// ckptDirty reports whether the session has state newer than its last
// durable snapshot. Lock-free: the checkpointer's sweep polls every
// live session.
func (s *Session) ckptDirty() bool {
	return !s.finished.Load() && s.seq.Load() != s.ckptSeq.Load()
}

// encodeSnapshot serializes the session under its writer lock,
// returning the bytes and the seq they capture. A finished session
// returns errSessionNotFound (its checkpoint is being removed, not
// rewritten).
func (s *Session) encodeSnapshot() ([]byte, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return nil, 0, errSessionNotFound
	}
	seq := s.seq.Load()
	data, err := core.EncodeStreamSnapshot(s.sm, s.ID, s.wh)
	return data, seq, err
}

// newRestoredSession wraps a decoded snapshot as a live session. The
// restored state is already durable, so it starts clean (seq ==
// ckptSeq).
func newRestoredSession(snap *core.StreamSnapshot, wh [32]byte, now time.Time) *Session {
	s := &Session{ID: snap.ID, sm: snap.SM, wh: wh}
	s.touch(now)
	return s
}

// push feeds points through the session's matcher under its writer
// lock and reports the newly finalized matches, the drop-mode
// sanitization count, and the degraded-scoring delta this batch caused
// (the quality monitor's per-push signal).
func (s *Session) push(pts traj.CellTrajectory, now time.Time) (fin []hmm.Candidate, dropped, degraded int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return nil, 0, 0, errSessionNotFound
	}
	s.touch(now)
	// Any push attempt may change matcher state (points before an
	// error are absorbed), so the session is dirty either way. One
	// atomic add; the scoring path itself is untouched.
	s.seq.Add(1)
	if s.shadowModel != nil {
		// Buffer the raw points; the mirrored matcher replays them and
		// deterministically reproduces any mid-stream error too.
		s.shadowPts = append(s.shadowPts, pts...)
	}
	before := s.sm.Sanitize().Dropped()
	degBefore := s.sm.Degraded()
	for i, p := range pts {
		out, perr := s.sm.Push(p)
		fin = append(fin, out...)
		if perr != nil {
			return fin, s.sm.Sanitize().Dropped() - before, s.sm.Degraded() - degBefore,
				fmt.Errorf("point %d: %w", i, perr)
		}
	}
	return fin, s.sm.Sanitize().Dropped() - before, s.sm.Degraded() - degBefore, nil
}

// finish flushes the matcher and returns the complete result view.
// The session is unusable afterwards.
func (s *Session) finish() (MatchResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return MatchResponse{}, errSessionNotFound
	}
	s.done = true
	s.finished.Store(true)
	s.sm.Flush()
	return streamResultJSON(s.sm), nil
}

// enableShadow marks the session for shadow mirroring at finish.
func (s *Session) enableShadow(m *core.Model, lag int) {
	s.mu.Lock()
	s.shadowModel = m
	s.shadowLag = lag
	s.mu.Unlock()
}

// shadowJob hands out the buffered replay inputs (nil model when the
// session was not sampled).
func (s *Session) shadowJob() (*core.Model, int, traj.CellTrajectory) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shadowModel, s.shadowLag, s.shadowPts
}

// status snapshots the session's progress counters.
func (s *Session) status() SessionStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	emitted := len(s.sm.Matched())
	pending := s.sm.Pending()
	return SessionStatus{
		ID:       s.ID,
		Pushed:   emitted + pending,
		Emitted:  emitted,
		Pending:  pending,
		Degraded: s.sm.Degraded(),
	}
}

type sessionShard struct {
	mu sync.Mutex
	m  map[string]*Session
}

// SessionManager owns the live streaming sessions: sharded lookup,
// a global cap, and TTL eviction of idle sessions via a janitor
// goroutine (or explicit Sweep calls in tests).
type SessionManager struct {
	shards [sessionShards]sessionShard
	count  atomic.Int64 // live sessions, bounded by max
	max    int64
	ttl    time.Duration

	// onRemove, when set (before any traffic), observes every session
	// leaving the manager; expired distinguishes TTL eviction from
	// finish/delete. The checkpointer uses it to delete on-disk
	// snapshots so the store cannot outgrow the live session set.
	onRemove func(id string, expired bool)

	stopOnce sync.Once
	stopCh   chan struct{}
}

// NewSessionManager creates a manager capping live sessions at max
// (<=0 means 1) and evicting sessions idle longer than ttl. The
// janitor starts only via Start; tests can drive Sweep directly.
func NewSessionManager(max int, ttl time.Duration) *SessionManager {
	if max <= 0 {
		max = 1
	}
	if ttl <= 0 {
		ttl = 5 * time.Minute
	}
	m := &SessionManager{max: int64(max), ttl: ttl, stopCh: make(chan struct{})}
	for i := range m.shards {
		m.shards[i].m = make(map[string]*Session)
	}
	return m
}

// Start launches the TTL janitor; Stop halts it.
func (m *SessionManager) Start() {
	interval := m.ttl / 4
	if interval < time.Second {
		interval = time.Second
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-m.stopCh:
				return
			case now := <-t.C:
				m.Sweep(now)
			}
		}
	}()
}

// Stop halts the janitor. Live sessions are left in place (Close on
// the server discards everything anyway).
func (m *SessionManager) Stop() { m.stopOnce.Do(func() { close(m.stopCh) }) }

// shardIndex maps a session ID to its shard (and to its checkpoint
// directory — the on-disk layout mirrors the in-memory one).
func shardIndex(id string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(id))
	return h.Sum32() & (sessionShards - 1)
}

func (m *SessionManager) shard(id string) *sessionShard {
	return &m.shards[shardIndex(id)]
}

// Create admits a new session backed by a fresh StreamMatcher from
// model. wh is the model's weights hash, stamped into the session's
// snapshots (zero when checkpointing is off — never read then).
// Returns errSessionCap when the manager is full.
func (m *SessionManager) Create(model *core.Model, wh [32]byte, lag int, now time.Time) (*Session, error) {
	if fpSessionCreate.Fail() {
		obsSessRejected.Inc()
		return nil, fmt.Errorf("serve: session create: fault injected: %s", fpSessionCreate.Name())
	}
	id, err := newSessionID()
	if err != nil {
		return nil, err
	}
	s := &Session{ID: id, sm: model.NewStream(lag), wh: wh}
	s.touch(now)
	if err := m.adopt(s, now); err != nil {
		return nil, err
	}
	obsSessCreated.Inc()
	return s, nil
}

// adopt inserts a fully built session (Create, checkpoint recovery)
// under the cap, rejecting duplicates.
func (m *SessionManager) adopt(s *Session, now time.Time) error {
	if m.count.Add(1) > m.max {
		m.count.Add(-1)
		obsSessRejected.Inc()
		return errSessionCap
	}
	sh := m.shard(s.ID)
	sh.mu.Lock()
	if _, dup := sh.m[s.ID]; dup {
		sh.mu.Unlock()
		m.count.Add(-1)
		return fmt.Errorf("serve: duplicate session id %s", s.ID)
	}
	sh.m[s.ID] = s
	sh.mu.Unlock()
	obsSessActive.Set(m.count.Load())
	return nil
}

// forEach visits every live session, one shard lock at a time (the
// checkpointer's sweeps).
func (m *SessionManager) forEach(f func(*Session)) {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		ss := make([]*Session, 0, len(sh.m))
		for _, s := range sh.m {
			ss = append(ss, s)
		}
		sh.mu.Unlock()
		for _, s := range ss {
			f(s)
		}
	}
}

// Get returns the live session for id, or errSessionNotFound.
func (m *SessionManager) Get(id string) (*Session, error) {
	sh := m.shard(id)
	sh.mu.Lock()
	s, ok := sh.m[id]
	sh.mu.Unlock()
	if !ok {
		return nil, errSessionNotFound
	}
	return s, nil
}

// Remove drops the session from the manager (finish or eviction). An
// in-flight push holding the session pointer completes; later lookups
// miss.
func (m *SessionManager) Remove(id string) {
	sh := m.shard(id)
	sh.mu.Lock()
	_, ok := sh.m[id]
	delete(sh.m, id)
	sh.mu.Unlock()
	if ok {
		m.count.Add(-1)
		obsSessActive.Set(m.count.Load())
		if m.onRemove != nil {
			m.onRemove(id, false)
		}
	}
}

// Len reports the number of live sessions.
func (m *SessionManager) Len() int { return int(m.count.Load()) }

// Sweep evicts every session idle since before now−TTL. It is the
// janitor's body, exported so tests can force eviction with a
// synthetic clock instead of sleeping.
func (m *SessionManager) Sweep(now time.Time) int {
	cutoff := now.Add(-m.ttl).UnixNano()
	evicted := 0
	var expired []string
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for id, s := range sh.m {
			if s.lastNano.Load() < cutoff {
				delete(sh.m, id)
				m.count.Add(-1)
				evicted++
				expired = append(expired, id)
			}
		}
		sh.mu.Unlock()
	}
	if m.onRemove != nil {
		// Outside the shard locks: the hook deletes on-disk checkpoints
		// (the store must not outlive its sessions).
		for _, id := range expired {
			m.onRemove(id, true)
		}
	}
	if evicted > 0 {
		obsSessEvicted.Add(int64(evicted))
		obsSessActive.Set(m.count.Load())
		obs.Logger().Info("serve: evicted idle sessions", "count", evicted)
	}
	return evicted
}

func newSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("serve: session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}
