package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
)

// schedConfig is the batching setup the serving tests run under: a
// window long enough that concurrent requests actually coalesce.
func schedConfig() sched.Config {
	return sched.Config{Window: 2 * time.Millisecond, MaxRows: 512, Workers: 4, MemoBytes: 8 << 20}
}

// newTestHTTP exposes an already-built Server over httptest with
// cleanup (testServer only covers the static-registry case).
func newTestHTTP(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts
}

// TestServeBatchingMatchParity pins the headline guarantee: /v1/match
// bodies served through the float64 micro-batching scheduler are
// byte-identical to bodies served with batching off, including under
// enough concurrency that multi-request batches actually form.
func TestServeBatchingMatchParity(t *testing.T) {
	ds, m := fixture(t)
	trips := ds.TestTrips()

	// Batching off: reference bodies.
	_, tsOff := testServer(t, m, Config{Workers: 8})
	want := make([][]byte, len(trips))
	for i, tr := range trips {
		resp, body := postJSON(t, tsOff.URL+"/v1/match", PointsRequest(tr.Cell))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("off match: %d: %s", resp.StatusCode, body)
		}
		want[i] = body
	}

	// Batching on: same model weights (fresh instance, same seed), the
	// scheduler installed as executor.
	_, mOn := fixture(t)
	s := sched.New(schedConfig())
	mOn.Exec = s
	_, tsOn := testServer(t, mOn, Config{Workers: 8, Sched: s})

	var wg sync.WaitGroup
	for round := 0; round < 3; round++ {
		for i, tr := range trips {
			wg.Add(1)
			go func(i int, req MatchRequest) {
				defer wg.Done()
				resp, body := postJSON(t, tsOn.URL+"/v1/match", req)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("on match trip %d: %d: %s", i, resp.StatusCode, body)
					return
				}
				if !bytes.Equal(body, want[i]) {
					t.Errorf("trip %d: batched body differs from direct", i)
				}
			}(i, PointsRequest(tr.Cell))
		}
		wg.Wait()
	}
}

// TestServeBatchingStreamFinishParity: a streaming session's finish
// body must also be byte-identical under batching.
func TestServeBatchingStreamFinishParity(t *testing.T) {
	ds, m := fixture(t)
	tr := ds.TestTrips()[0]

	finish := func(ts string) []byte {
		resp, body := postJSON(t, ts+"/v1/sessions", SessionRequest{})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("create: %d: %s", resp.StatusCode, body)
		}
		var sess SessionResponse
		if err := json.Unmarshal(body, &sess); err != nil {
			t.Fatal(err)
		}
		resp, body = postJSON(t, ts+"/v1/sessions/"+sess.ID+"/points", PushRequest{Points: PointsRequest(tr.Cell).Points})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("push: %d: %s", resp.StatusCode, body)
		}
		resp, body = postJSON(t, ts+"/v1/sessions/"+sess.ID+"/finish", struct{}{})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("finish: %d: %s", resp.StatusCode, body)
		}
		return body
	}

	_, tsOff := testServer(t, m, Config{DefaultLag: 2})
	want := finish(tsOff.URL)

	_, mOn := fixture(t)
	s := sched.New(schedConfig())
	mOn.Exec = s
	_, tsOn := testServer(t, mOn, Config{DefaultLag: 2, Sched: s})
	got := finish(tsOn.URL)

	if !bytes.Equal(got, want) {
		t.Fatalf("batched streaming finish differs from direct:\noff: %s\non:  %s", want, got)
	}
}

// TestServeReloadMidBatch fires POST /v1/reload concurrently with a
// stream of batched match requests against a registry that flips
// between two models with different weights. Snapshot pinning must
// hold: every response byte-equals one model's direct output — a body
// scored partly on old and partly on new weights would match neither.
func TestServeReloadMidBatch(t *testing.T) {
	ds, mA := fixture(t)
	tr := ds.TestTrips()[0]

	// Model B: same skeleton, different seed — visibly different scores.
	cfgB := fixCfg
	cfgB.Seed = 99
	mB, err := core.New(fixDS, fixDS.TrainTrips(), cfgB)
	if err != nil {
		t.Fatal(err)
	}
	mB.RefreshEmbeddings()

	// Reference bodies, computed directly (parity makes them also the
	// batched bodies).
	encode := func(m *core.Model) []byte {
		res, err := m.MatchContext(context.Background(), tr.Cell)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(ResultJSON(res)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	wantA, wantB := encode(mA), encode(mB)
	if bytes.Equal(wantA, wantB) {
		t.Fatal("fixture models agree; reload test has no signal")
	}

	s := sched.New(schedConfig())
	mA.Exec = s
	mB.Exec = s
	var flip atomic.Int64
	reg := NewRegistry(func() (*core.Model, error) {
		if flip.Add(1)%2 == 0 {
			return mB, nil
		}
		return mA, nil
	})
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	srv, err := New(reg, Config{Workers: 8, Sched: s})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestHTTP(t, srv)

	req := PointsRequest(tr.Cell)
	stop := make(chan struct{})
	var reloads sync.WaitGroup
	reloads.Add(1)
	go func() {
		defer reloads.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, body := postJSON(t, ts.URL+"/v1/reload", struct{}{})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("reload: %d: %s", resp.StatusCode, body)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				resp, body := postJSON(t, ts.URL+"/v1/match", req)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("match: %d: %s", resp.StatusCode, body)
					return
				}
				if !bytes.Equal(body, wantA) && !bytes.Equal(body, wantB) {
					t.Error("response matches neither snapshot: weights mixed mid-batch")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	reloads.Wait()
}
