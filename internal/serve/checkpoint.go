package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// The session checkpointer: per-session dirty tracking plus an async
// writer that persists lhmm-session/v1 snapshots to a crash-safe
// on-disk store, so a SIGKILL, OOM, or deploy restart never loses an
// in-flight streaming trajectory.
//
// Crash-consistency protocol, per snapshot:
//
//  1. encode under the session's writer lock (pushes are serialized
//     out, so the bytes are a consistent point-in-time state)
//  2. write to <shard>/<id>.ckpt.tmp
//  3. fsync the temp file (the bytes are durable before they are
//     visible)
//  4. rename onto <shard>/<id>.ckpt (atomic on POSIX: readers see the
//     old complete snapshot or the new complete snapshot, never a
//     torn one)
//  5. fsync the shard directory (the rename itself is durable)
//
// A crash between any two steps leaves either the previous snapshot
// intact or a stray .tmp that recovery deletes. The CRC footer inside
// the format catches the remaining hardware-level corruption; recovery
// quarantines, never crashes.
//
// The writer is a single goroutine fed by a bounded queue: sessions
// enqueue at most once (a queued flag), overflow is dropped and
// retried by the next periodic sweep, and write failures back off and
// retry before declaring the store sick. A sick store flips the
// serve.ckpt.degraded gauge and the server keeps serving from memory —
// durability degrades, availability does not.

// Checkpoint telemetry.
var (
	obsCkptWrites      = obs.Default.Counter("serve.ckpt.writes")
	obsCkptWriteErrors = obs.Default.Counter("serve.ckpt.write.errors")
	obsCkptBytes       = obs.Default.Counter("serve.ckpt.bytes")
	obsCkptRemoved     = obs.Default.Counter("serve.ckpt.removed")
	obsCkptRestored    = obs.Default.Counter("serve.ckpt.restored")
	obsCkptQuarantined = obs.Default.Counter("serve.ckpt.quarantined")
	obsCkptQueueDrops  = obs.Default.Counter("serve.ckpt.queue.drops")
	// obsCkptLag is the number of sessions whose live state is ahead of
	// their durable snapshot, refreshed on every sweep.
	obsCkptLag = obs.Default.Gauge("serve.ckpt.lag")
	// obsCkptDegraded is 1 while the store is sick (writes exhausted
	// their retries) and checkpoints are best-effort only.
	obsCkptDegraded = obs.Default.Gauge("serve.ckpt.degraded")
	// obsSessCkptGC counts checkpoints deleted because the TTL janitor
	// expired their session (the fix that keeps the store bounded).
	obsSessCkptGC = obs.Default.Counter("serve.sessions.ckpt.gc")
)

// Checkpointer failpoints (chaos tests; no-op unless armed).
var (
	// fpCkptWrite fails the temp-file write.
	fpCkptWrite = faultinject.New("serve.ckpt.write")
	// fpCkptFsync fails the pre-rename fsync.
	fpCkptFsync = faultinject.New("serve.ckpt.fsync")
	// fpCkptCorrupt flips a byte mid-snapshot before writing, simulating
	// storage corruption the CRC footer must catch at restore.
	fpCkptCorrupt = faultinject.New("serve.ckpt.corrupt")
)

const (
	ckptExt       = ".ckpt"
	ckptTmpExt    = ".ckpt.tmp"
	quarantineDir = "quarantine"
)

// CheckpointConfig parameterizes the session checkpointer. Dir == ""
// disables checkpointing entirely (the default: zero cost on the
// serving paths beyond one nil check).
type CheckpointConfig struct {
	// Dir is the checkpoint store root; per-shard subdirectories and a
	// quarantine directory are created under it.
	Dir string
	// Interval is the periodic dirty-session sweep cadence (default 5s).
	Interval time.Duration
	// Queue bounds the async write queue (default 256). Overflow is
	// dropped — the periodic sweep re-enqueues still-dirty sessions.
	Queue int
	// Retries is how many times a failed write is retried with backoff
	// before the store is declared sick (default 3).
	Retries int
	// Backoff is the base retry delay, doubled per attempt (default
	// 50ms).
	Backoff time.Duration
}

func (c CheckpointConfig) withDefaults() CheckpointConfig {
	if c.Interval <= 0 {
		c.Interval = 5 * time.Second
	}
	if c.Queue <= 0 {
		c.Queue = 256
	}
	if c.Retries <= 0 {
		c.Retries = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
	return c
}

// Checkpointer persists streaming sessions to disk and restores them
// at boot. One writer goroutine owns all disk I/O.
type Checkpointer struct {
	cfg CheckpointConfig
	mgr *SessionManager

	queue chan *Session

	stopOnce sync.Once
	stopCh   chan struct{}
	doneCh   chan struct{}

	sickMu sync.Mutex
	sick   bool
}

// NewCheckpointer creates the store layout (shard + quarantine
// directories) under cfg.Dir and returns a checkpointer over mgr. The
// writer goroutine starts only via Start.
func NewCheckpointer(cfg CheckpointConfig, mgr *SessionManager) (*Checkpointer, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("serve: checkpoint: empty directory")
	}
	for i := 0; i < sessionShards; i++ {
		if err := os.MkdirAll(filepath.Join(cfg.Dir, shardDirName(i)), 0o755); err != nil {
			return nil, fmt.Errorf("serve: checkpoint: %w", err)
		}
	}
	if err := os.MkdirAll(filepath.Join(cfg.Dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("serve: checkpoint: %w", err)
	}
	return &Checkpointer{
		cfg:    cfg,
		mgr:    mgr,
		queue:  make(chan *Session, cfg.Queue),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}, nil
}

// shardDirName names the per-shard directory of shard i.
func shardDirName(i int) string { return fmt.Sprintf("%02x", i) }

// path returns the snapshot path for a session ID (sharded exactly
// like the in-memory session map).
func (c *Checkpointer) path(id string) string {
	return filepath.Join(c.cfg.Dir, shardDirName(int(shardIndex(id))), id+ckptExt)
}

// Start launches the writer goroutine (periodic sweeps + queue
// draining). Stop halts it.
func (c *Checkpointer) Start() {
	go func() {
		defer close(c.doneCh)
		t := time.NewTicker(c.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-c.stopCh:
				// Drain whatever is already queued so Stop after a sweep
				// does not strand accepted work.
				for {
					select {
					case s := <-c.queue:
						c.persist(s)
					default:
						return
					}
				}
			case s := <-c.queue:
				c.persist(s)
			case <-t.C:
				c.sweep()
			}
		}
	}()
}

// Stop halts the writer after draining already-queued work.
func (c *Checkpointer) Stop() {
	c.stopOnce.Do(func() { close(c.stopCh) })
	<-c.doneCh
}

// enqueue schedules an async checkpoint of s. Deduplicated: a session
// already queued is not queued twice; a full queue drops (counted) and
// the periodic sweep retries, because the session stays dirty.
func (c *Checkpointer) enqueue(s *Session) {
	if !s.ckptQueued.CompareAndSwap(false, true) {
		return
	}
	select {
	case c.queue <- s:
	default:
		s.ckptQueued.Store(false)
		obsCkptQueueDrops.Inc()
	}
}

// sweep enqueues every dirty session and refreshes the lag gauge.
func (c *Checkpointer) sweep() {
	dirty := int64(0)
	c.mgr.forEach(func(s *Session) {
		if s.ckptDirty() {
			dirty++
			c.enqueue(s)
		}
	})
	obsCkptLag.Set(dirty)
}

// SweepSync checkpoints every dirty session and blocks until all of
// them are durable (graceful drain, SIGUSR2 handover) or ctx expires
// (e.g. the store is sick and writes keep failing).
func (c *Checkpointer) SweepSync(ctx context.Context) error {
	for {
		dirty := int64(0)
		c.mgr.forEach(func(s *Session) {
			if s.ckptDirty() {
				dirty++
				c.enqueue(s)
			}
		})
		obsCkptLag.Set(dirty)
		if dirty == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: checkpoint sweep: %d sessions still dirty: %w", dirty, ctx.Err())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// persist encodes and durably writes one session's snapshot, with
// bounded retry/backoff. Exhausted retries mark the store sick and
// leave the session dirty for the next sweep.
func (c *Checkpointer) persist(s *Session) {
	// Clear the queued flag before encoding: a push landing during the
	// write re-queues the session rather than being lost.
	s.ckptQueued.Store(false)
	data, seq, err := s.encodeSnapshot()
	if err != nil {
		if errors.Is(err, errSessionNotFound) {
			return // finished while queued; its checkpoint is removed elsewhere
		}
		obsCkptWriteErrors.Inc()
		obs.Logger().Warn("serve: checkpoint encode failed", "session", s.ID, "err", err)
		return
	}
	backoff := c.cfg.Backoff
	for attempt := 0; ; attempt++ {
		err = c.writeSnapshot(s.ID, data)
		if err == nil {
			break
		}
		obsCkptWriteErrors.Inc()
		if attempt >= c.cfg.Retries {
			c.setSick(true, err)
			return
		}
		select {
		case <-c.stopCh:
			return
		case <-time.After(backoff):
		}
		backoff *= 2
	}
	c.setSick(false, nil)
	s.ckptSeq.Store(seq)
	obsCkptWrites.Inc()
	obsCkptBytes.Add(int64(len(data)))
}

// writeSnapshot runs the temp-file + fsync + atomic-rename protocol
// for one snapshot.
func (c *Checkpointer) writeSnapshot(id string, data []byte) error {
	if fpCkptCorrupt.Fail() {
		data = append([]byte(nil), data...)
		data[len(data)/2] ^= 0xFF
	}
	final := c.path(id)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if fpCkptWrite.Fail() {
		err = fmt.Errorf("serve: checkpoint write: fault injected: %s", fpCkptWrite.Name())
	} else {
		_, err = f.Write(data)
	}
	if err == nil {
		if fpCkptFsync.Fail() {
			err = fmt.Errorf("serve: checkpoint fsync: fault injected: %s", fpCkptFsync.Name())
		} else {
			err = f.Sync()
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup of a failed write
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return err
	}
	return syncDir(filepath.Dir(final))
}

// syncDir fsyncs a directory so a completed rename survives power
// loss. Filesystems that refuse fsync on directories are tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}

// setSick flips the degraded-but-serving state. Transitions are
// logged once, not per failed write.
func (c *Checkpointer) setSick(sick bool, cause error) {
	c.sickMu.Lock()
	defer c.sickMu.Unlock()
	if sick == c.sick {
		return
	}
	c.sick = sick
	if sick {
		obsCkptDegraded.Set(1)
		obs.Logger().Warn("serve: checkpoint store sick; serving without durability", "err", cause)
	} else {
		obsCkptDegraded.Set(0)
		obs.Logger().Info("serve: checkpoint store recovered")
	}
}

// Sick reports whether the store is currently degraded.
func (c *Checkpointer) Sick() bool {
	c.sickMu.Lock()
	defer c.sickMu.Unlock()
	return c.sick
}

// Remove deletes a session's snapshot (finish, explicit delete, TTL
// expiry). Missing files are fine — short sessions may finish before
// their first checkpoint.
func (c *Checkpointer) Remove(id string, expired bool) {
	if err := os.Remove(c.path(id)); err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			obs.Logger().Warn("serve: checkpoint remove failed", "session", id, "err", err)
		}
		return
	}
	obsCkptRemoved.Inc()
	if expired {
		obsSessCkptGC.Inc()
	}
}

// Recover scans the store and restores every decodable snapshot as a
// live session in the manager. Snapshots that cannot be trusted —
// truncated, bit-flipped, version-skewed, stale beyond ttl, belonging
// to a different model, or filed under the wrong name — are moved to
// the quarantine directory with a reason suffix, never deleted and
// never fatal. Stray .tmp files from interrupted writes are removed.
// Call before Start, with no traffic flowing.
func (c *Checkpointer) Recover(m *core.Model, wh [32]byte, now time.Time, ttl time.Duration) (restored, quarantined int) {
	for i := 0; i < sessionShards; i++ {
		dir := filepath.Join(c.cfg.Dir, shardDirName(i))
		entries, err := os.ReadDir(dir)
		if err != nil {
			obs.Logger().Warn("serve: checkpoint recovery: unreadable shard", "dir", dir, "err", err)
			continue
		}
		for _, e := range entries {
			name := e.Name()
			full := filepath.Join(dir, name)
			if strings.HasSuffix(name, ckptTmpExt) {
				os.Remove(full) //nolint:errcheck // stray temp from an interrupted write
				continue
			}
			if e.IsDir() || !strings.HasSuffix(name, ckptExt) {
				continue
			}
			id := strings.TrimSuffix(name, ckptExt)
			switch ok, reason := c.restoreOne(full, id, m, wh, now, ttl); {
			case reason != "":
				c.quarantine(full, name, reason)
				quarantined++
			case ok:
				restored++
			}
		}
	}
	obsCkptRestored.Add(int64(restored))
	obsCkptQuarantined.Add(int64(quarantined))
	if restored > 0 || quarantined > 0 {
		obs.Logger().Info("serve: checkpoint recovery", "restored", restored, "quarantined", quarantined)
	}
	return restored, quarantined
}

// restoreOne decodes and adopts one snapshot file. It returns
// (true, "") when the session is live again, (false, reason) when the
// file must be quarantined, and (false, "") when the snapshot is fine
// but cannot be adopted right now (cap, duplicate) and stays on disk.
func (c *Checkpointer) restoreOne(path, id string, m *core.Model, wh [32]byte, now time.Time, ttl time.Duration) (bool, string) {
	if ttl > 0 {
		if fi, err := os.Stat(path); err == nil && now.Sub(fi.ModTime()) > ttl {
			// The session would have been TTL-evicted had the process
			// lived; restoring it would resurrect abandoned state.
			return false, "stale"
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return false, "unreadable"
	}
	snap, err := core.DecodeStreamSnapshot(m, wh, data)
	switch {
	case err == nil:
	case errors.Is(err, core.ErrSnapshotVersion):
		return false, "version"
	case errors.Is(err, core.ErrSnapshotMismatch):
		return false, "mismatch"
	default:
		return false, "corrupt"
	}
	if snap.ID != id {
		// The snapshot is internally valid but filed under another
		// session's name — trust neither.
		return false, "idmismatch"
	}
	sess := newRestoredSession(snap, wh, now)
	if err := c.mgr.adopt(sess, now); err != nil {
		// Cap reached or duplicate ID: leave the file in place for a
		// later boot instead of quarantining a perfectly good snapshot.
		obs.Logger().Warn("serve: checkpoint recovery: cannot adopt session", "session", id, "err", err)
		return false, ""
	}
	return true, ""
}

// quarantine moves a rejected snapshot aside, tagged with the reason.
func (c *Checkpointer) quarantine(path, name, reason string) {
	dst := filepath.Join(c.cfg.Dir, quarantineDir, name+"."+reason)
	if err := os.Rename(path, dst); err != nil {
		obs.Logger().Warn("serve: checkpoint quarantine failed", "file", path, "err", err)
		return
	}
	obs.Logger().Warn("serve: quarantined snapshot", "file", name, "reason", reason)
}
