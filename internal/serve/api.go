package serve

import (
	"fmt"
	"math"

	"repro/internal/cellular"
	"repro/internal/geo"
	"repro/internal/hmm"
	"repro/internal/obs"
	"repro/internal/traj"
)

// The wire schema of lhmm-serve. Everything is plain JSON with stable
// field names; cmd/lhmm reuses MatchRequest/MatchResponse for its
// -traj/-json modes so a server response can be diffed byte-for-byte
// against an offline match of the same trajectory.

// Point is one cellular observation on the wire.
type Point struct {
	Tower int     `json:"tower"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	T     float64 `json:"t"`
}

// MatchOptions are per-request overrides for whole-trajectory
// matching. Zero values keep the server's (or CLI's) defaults.
type MatchOptions struct {
	// OnBreak is the dead-point policy: "error", "skip", or "split".
	OnBreak string `json:"on_break,omitempty"`
	// Sanitize is the input-validation mode: "strict", "drop", or "off".
	Sanitize string `json:"sanitize,omitempty"`
	// TimeoutMS bounds the match wall-clock; clamped to the server's
	// configured maximum.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// MatchRequest is the body of POST /v1/match (and the file format of
// lhmm match -traj).
type MatchRequest struct {
	Points  []Point       `json:"points"`
	Options *MatchOptions `json:"options,omitempty"`
}

// Trajectory validates and converts the request points against the
// model's cell network.
func (r *MatchRequest) Trajectory(cells *cellular.Net) (traj.CellTrajectory, error) {
	if len(r.Points) == 0 {
		return nil, fmt.Errorf("serve: request has no points")
	}
	ct := make(traj.CellTrajectory, len(r.Points))
	for i, p := range r.Points {
		if p.Tower < 0 || p.Tower >= cells.NumTowers() {
			return nil, fmt.Errorf("serve: point %d references tower %d (network has %d)", i, p.Tower, cells.NumTowers())
		}
		ct[i] = traj.CellPoint{Tower: cellular.TowerID(p.Tower), P: geo.Pt(p.X, p.Y), T: p.T}
	}
	return ct, nil
}

// PointsRequest converts a trajectory into the wire form (the CLI's
// -dump-traj uses it to produce POST-able bodies).
func PointsRequest(ct traj.CellTrajectory) MatchRequest {
	req := MatchRequest{Points: make([]Point, len(ct))}
	for i, p := range ct {
		req.Points[i] = Point{Tower: int(p.Tower), X: p.P.X, Y: p.P.Y, T: p.T}
	}
	return req
}

// MatchedPoint is one finalized per-point match on the wire.
type MatchedPoint struct {
	Seg     int     `json:"seg"`
	Frac    float64 `json:"frac"`
	X       float64 `json:"x"`
	Y       float64 `json:"y"`
	Dist    float64 `json:"dist"`
	Obs     float64 `json:"obs"`
	Skipped bool    `json:"skipped,omitempty"`
	// Dead marks a point that had no candidate roads (Skip/Split break
	// policies); its other fields are zero.
	Dead bool `json:"dead,omitempty"`
}

// GapJSON is one stitch discontinuity of a Split-policy match.
type GapJSON struct {
	From   int    `json:"from"`
	To     int    `json:"to"`
	Reason string `json:"reason"`
}

// MatchResponse is the body of a successful POST /v1/match (and of
// lhmm match -json). Fields are fully determined by the match result,
// never by server state, so online and offline runs of the same
// trajectory and configuration encode identically.
type MatchResponse struct {
	Path     []int          `json:"path"`
	Matched  []MatchedPoint `json:"matched"`
	Gaps     []GapJSON      `json:"gaps,omitempty"`
	Score    float64        `json:"score"`
	Degraded int            `json:"degraded,omitempty"`
	// DroppedPoints counts input points removed by drop-mode
	// sanitization; indices above refer to the sanitized trajectory.
	DroppedPoints int `json:"dropped_points,omitempty"`
}

// DebugMatchResponse is the body of POST /v1/match?debug=1 (and of
// lhmm match -json -trace): the normal response plus the per-request
// MatchTrace — per-point candidate counts and score stats, Viterbi
// breaks, and stage wall-clock. Embedding MatchResponse keeps the
// leading fields byte-identical to the non-debug encoding; the trace
// block is strictly appended.
type DebugMatchResponse struct {
	MatchResponse
	Trace *obs.MatchTrace `json:"trace,omitempty"`
}

// ExplainMatchResponse is the body of POST /v1/match?explain=1 (and of
// lhmm match -json -explain): the normal response plus the
// per-decision Explain artifact, and the trace too when both flags are
// set. Like DebugMatchResponse, the extra blocks are strictly appended
// after the embedded MatchResponse fields.
type ExplainMatchResponse struct {
	MatchResponse
	Trace   *obs.MatchTrace `json:"trace,omitempty"`
	Explain *hmm.Explain    `json:"explain,omitempty"`
}

// ResultJSON converts a match result to the wire form.
func ResultJSON(res *hmm.Result) MatchResponse {
	out := MatchResponse{
		Path:          make([]int, len(res.Path)),
		Matched:       make([]MatchedPoint, len(res.Matched)),
		Score:         sanitizeFloat(res.Score),
		Degraded:      res.Degraded,
		DroppedPoints: res.Sanitize.Dropped(),
	}
	for i, s := range res.Path {
		out.Path[i] = int(s)
	}
	for i := range res.Matched {
		if i < len(res.Dead) && res.Dead[i] {
			out.Matched[i] = MatchedPoint{Dead: true}
			continue
		}
		c := &res.Matched[i]
		mp := MatchedPoint{
			Seg:  int(c.Seg),
			Frac: c.Frac,
			X:    c.Proj.X,
			Y:    c.Proj.Y,
			Dist: c.Dist,
			Obs:  sanitizeFloat(c.Obs),
		}
		if i < len(res.Skipped) {
			mp.Skipped = res.Skipped[i]
		}
		out.Matched[i] = mp
	}
	for _, g := range res.Gaps {
		out.Gaps = append(out.Gaps, GapJSON{From: g.From, To: g.To, Reason: g.Reason.String()})
	}
	return out
}

// streamResultJSON assembles the finish-time view of a streaming
// session: the same MatchResponse shape, built from the matcher's
// finalized state (streaming has no Eq. 14 path score).
func streamResultJSON(sm *hmm.StreamMatcher) MatchResponse {
	matched := sm.Matched()
	dead := sm.Dead()
	out := MatchResponse{
		Matched:       make([]MatchedPoint, len(matched)),
		Degraded:      sm.Degraded(),
		DroppedPoints: sm.Sanitize().Dropped(),
	}
	for i := range matched {
		if i < len(dead) && dead[i] {
			out.Matched[i] = MatchedPoint{Dead: true}
			continue
		}
		c := &matched[i]
		out.Matched[i] = MatchedPoint{
			Seg:  int(c.Seg),
			Frac: c.Frac,
			X:    c.Proj.X,
			Y:    c.Proj.Y,
			Dist: c.Dist,
			Obs:  sanitizeFloat(c.Obs),
		}
	}
	for _, s := range sm.Path() {
		out.Path = append(out.Path, int(s))
	}
	for _, g := range sm.Gaps() {
		out.Gaps = append(out.Gaps, GapJSON{From: g.From, To: g.To, Reason: g.Reason.String()})
	}
	return out
}

// matchedJSON converts newly finalized stream candidates, with dead
// points (zero candidates) marked.
func matchedJSON(out []hmm.Candidate) []MatchedPoint {
	ms := make([]MatchedPoint, len(out))
	for i := range out {
		c := &out[i]
		if c.Seg == 0 && c.Obs == 0 && c.Dist == 0 && c.Frac == 0 {
			// A zero Candidate is the matcher's dead-point placeholder.
			ms[i] = MatchedPoint{Dead: true}
			continue
		}
		ms[i] = MatchedPoint{
			Seg:  int(c.Seg),
			Frac: c.Frac,
			X:    c.Proj.X,
			Y:    c.Proj.Y,
			Dist: c.Dist,
			Obs:  sanitizeFloat(c.Obs),
		}
	}
	return ms
}

// SessionRequest is the body of POST /v1/sessions.
type SessionRequest struct {
	// Lag is the fixed emission lag in points; nil keeps the server
	// default.
	Lag *int `json:"lag,omitempty"`
	// OnBreak / Sanitize override the session's policies (same
	// spellings as MatchOptions).
	OnBreak  string `json:"on_break,omitempty"`
	Sanitize string `json:"sanitize,omitempty"`
}

// SessionResponse is the body of a successful session creation.
type SessionResponse struct {
	ID  string `json:"id"`
	Lag int    `json:"lag"`
}

// PushRequest is the body of POST /v1/sessions/{id}/points.
type PushRequest struct {
	Points []Point `json:"points"`
}

// PushResponse reports the matches finalized by a batch of pushes.
type PushResponse struct {
	Finalized []MatchedPoint `json:"finalized"`
	// Pending is the current emit lag: points accepted but not yet
	// finalized.
	Pending int `json:"pending"`
	// Dropped counts points in this request removed by drop-mode
	// sanitization (they consume no stream index).
	Dropped int `json:"dropped,omitempty"`
	// Degraded counts scoring events in this batch that fell back to
	// the classical models (the per-push quality signal).
	Degraded int `json:"degraded,omitempty"`
}

// SessionStatus is the body of GET /v1/sessions/{id}.
type SessionStatus struct {
	ID       string `json:"id"`
	Pushed   int    `json:"pushed"`
	Emitted  int    `json:"emitted"`
	Pending  int    `json:"pending"`
	Degraded int    `json:"degraded,omitempty"`
}

// ErrorResponse is the body of every non-2xx API response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// sanitizeFloat maps NaN/Inf (not encodable in JSON) to 0; the match
// pipeline's degraded-mode machinery makes these unreachable in
// practice, but a wire encoder must not be able to fail on a score.
func sanitizeFloat(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}
