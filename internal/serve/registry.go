package serve

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// Reload telemetry.
var (
	obsReloads      = obs.Default.Counter("serve.reloads")
	obsReloadErrors = obs.Default.Counter("serve.reload.errors")
)

// fpReloadFail fails a reload before the loader runs (chaos tests for
// the keep-the-old-model invariant; no-op unless armed).
var fpReloadFail = faultinject.New("serve.reload.fail")

// Registry owns the served model and swaps it atomically on reload.
//
// The hot-reload invariant: Reload builds a complete replacement model
// via the loader — typically core.New over the resident dataset plus
// nn.LoadParams, whose validate-all-before-write hardening rejects
// corrupt, truncated, or shape-mismatched weight files — and only then
// publishes it with one atomic pointer store. Any loader error leaves
// the previous model serving untouched; there is no window in which a
// request can observe a partially loaded model. In-flight matches and
// live streaming sessions keep the model pointer they started with, so
// a reload never changes scoring mid-trajectory.
type Registry struct {
	cur    atomic.Pointer[modelEntry]
	loader func() (*core.Model, error)

	// reloading serializes Reload calls (concurrent reloads would race
	// on "latest wins" with no useful ordering).
	reloading atomic.Bool
}

// modelEntry pairs a published model with identity digests computed
// once at load time: the session checkpointer stamps every snapshot
// with them, and recovery refuses snapshots that do not match the
// serving model, so hashing per checkpoint (or per session) would be
// pure waste.
type modelEntry struct {
	m  *core.Model
	wh [32]byte // core.(*Model).WeightsHash
}

// NewRegistry wraps a loader. The registry starts empty; call Reload
// once before serving (readiness reports false until a model is
// published).
func NewRegistry(loader func() (*core.Model, error)) *Registry {
	return &Registry{loader: loader}
}

// Model returns the currently served model, or nil before the first
// successful Reload.
func (r *Registry) Model() *core.Model {
	if e := r.cur.Load(); e != nil {
		return e.m
	}
	return nil
}

// Entry returns the served model together with its cached weights
// hash, or (nil, zero) before the first successful Reload.
func (r *Registry) Entry() (*core.Model, [32]byte) {
	if e := r.cur.Load(); e != nil {
		return e.m, e.wh
	}
	return nil, [32]byte{}
}

// Reload runs the loader and atomically publishes its model. On any
// error the previous model keeps serving. Concurrent calls coalesce:
// the loser returns an error without running the loader.
func (r *Registry) Reload() error {
	if !r.reloading.CompareAndSwap(false, true) {
		obsReloadErrors.Inc()
		return fmt.Errorf("serve: reload already in progress")
	}
	defer r.reloading.Store(false)
	if fpReloadFail.Fail() {
		obsReloadErrors.Inc()
		return fmt.Errorf("serve: reload: fault injected: %s", fpReloadFail.Name())
	}
	m, err := r.loader()
	if err != nil {
		obsReloadErrors.Inc()
		return fmt.Errorf("serve: reload: %w", err)
	}
	if m.Embeddings() == nil {
		obsReloadErrors.Inc()
		return fmt.Errorf("serve: reload: loader returned a model without embeddings")
	}
	r.cur.Store(&modelEntry{m: m, wh: m.WeightsHash()})
	obsReloads.Inc()
	obs.Logger().Info("serve: model reloaded")
	return nil
}
