package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/hmm"
	"repro/internal/obs"
)

func getJSON(t testing.TB, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// A ?explain=1 response must extend the plain response byte-for-byte:
// the explain block is strictly appended, so consumers of the plain
// schema can parse either.
func TestExplainEndpointBytePrefix(t *testing.T) {
	ds, m := fixture(t)
	_, ts := testServer(t, m, Config{})
	req := PointsRequest(ds.TestTrips()[0].Cell)

	resp, plain := postJSON(t, ts.URL+"/v1/match", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plain match: %d: %s", resp.StatusCode, plain)
	}
	resp, explained := postJSON(t, ts.URL+"/v1/match?explain=1", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain match: %d: %s", resp.StatusCode, explained)
	}
	// plain ends with "}\n"; the explain body continues from the "}".
	prefix := plain[:len(plain)-2]
	if !bytes.HasPrefix(explained, prefix) {
		t.Fatalf("explain response does not extend the plain bytes:\nplain:   %.120s\nexplain: %.120s",
			plain, explained)
	}

	var er ExplainMatchResponse
	if err := json.Unmarshal(explained, &er); err != nil {
		t.Fatal(err)
	}
	if er.Explain == nil {
		t.Fatal("no explain block in ?explain=1 response")
	}
	if len(er.Explain.Points) != len(req.Points) {
		t.Fatalf("%d explain points for %d input points", len(er.Explain.Points), len(req.Points))
	}
	for i, pt := range er.Explain.Points {
		if !pt.Dead && (pt.Chosen == nil || len(pt.Candidates) == 0) {
			t.Fatalf("point %d explained without choice/candidates", i)
		}
	}

	// The per-request explain flag must not leak into the shared model:
	// a following plain request still answers the plain bytes.
	resp, again := postJSON(t, ts.URL+"/v1/match", req)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(again, plain) {
		t.Fatalf("plain response changed after an explain request (%d)", resp.StatusCode)
	}
}

// Captures record plain matches only, with the digest taken over the
// exact response bytes, and replay's reader round-trips them.
func TestCaptureRoundTrip(t *testing.T) {
	ds, m := fixture(t)
	var buf bytes.Buffer
	_, ts := testServer(t, m, Config{Capture: NewCapture(&buf, 1)})
	req := PointsRequest(ds.TestTrips()[0].Cell)

	resp, plain := postJSON(t, ts.URL+"/v1/match", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match: %d: %s", resp.StatusCode, plain)
	}
	// Explain/debug requests are outside the reproducibility contract
	// and must not be captured.
	if resp, body := postJSON(t, ts.URL+"/v1/match?explain=1", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("explain match: %d: %s", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/match?debug=1", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("debug match: %d: %s", resp.StatusCode, body)
	}

	recs, err := ReadCaptures(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("%d capture records, want 1 (plain only)", len(recs))
	}
	rec := recs[0]
	if rec.Schema != CaptureSchema {
		t.Errorf("schema %q", rec.Schema)
	}
	sum := sha256.Sum256(plain)
	if rec.Response.SHA256 != hex.EncodeToString(sum[:]) {
		t.Errorf("capture digest %s does not match response bytes", rec.Response.SHA256)
	}
	if rec.Response.Bytes != len(plain) {
		t.Errorf("capture size %d, response was %d bytes", rec.Response.Bytes, len(plain))
	}
	if len(rec.Request.Points) != len(req.Points) {
		t.Errorf("capture request has %d points, sent %d", len(rec.Request.Points), len(req.Points))
	}
	if rec.Config.K != m.Cfg.K || rec.Config.OnBreak != m.Cfg.OnBreak.String() {
		t.Errorf("capture config %+v does not pin the effective model config", rec.Config)
	}
}

// Sampling is deterministic: rate 0.5 captures exactly every other
// eligible request, so capture files reproduce under load.
func TestCaptureSampling(t *testing.T) {
	_, m := fixture(t)
	var buf bytes.Buffer
	c := NewCapture(&buf, 0.5)
	req := &MatchRequest{Points: []Point{{Tower: 0, T: 1}}}
	res := &hmm.Result{}
	for i := 0; i < 10; i++ {
		c.Record(req, m, res, []byte("{}\n"))
	}
	recs, err := ReadCaptures(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("rate 0.5 captured %d of 10, want 5", len(recs))
	}
	if recs[0].ID != "c00000002" || recs[4].ID != "c00000010" {
		t.Errorf("sampled IDs %s..%s, want the even sequence", recs[0].ID, recs[4].ID)
	}

	if zero := NewCapture(&bytes.Buffer{}, 0); zero != nil {
		zero.Record(req, m, res, []byte("{}\n")) // must be a no-op, not a panic
	}
}

func TestDriftEndpointDisabled(t *testing.T) {
	_, m := fixture(t)
	_, ts := testServer(t, m, Config{})
	resp, body := getJSON(t, ts.URL+"/v1/drift")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/drift: %d", resp.StatusCode)
	}
	var dr DriftResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Status != "disabled" {
		t.Fatalf("status %q without a baseline, want disabled", dr.Status)
	}
}

// Serving a workload that does not look like the baseline must surface
// as per-signal PSI on /v1/drift and trip the QualityMonitor's
// score_drift violation.
func TestDriftShiftTripsViolation(t *testing.T) {
	ds, m := fixture(t)
	// A crafted baseline claiming every learned emission score was near
	// 1.0 — nothing an untrained model serves will look like it.
	counts := make([]int64, len(obs.UnitBuckets)+1)
	counts[len(counts)-1] = 1000
	base := &obs.DriftBaseline{
		Schema: obs.DriftBaselineSchema,
		Model:  "crafted",
		Signals: map[string]obs.SketchSnapshot{
			"emission": {
				Count:  1000,
				Mean:   0.99,
				Bounds: append([]float64(nil), obs.UnitBuckets...),
				Counts: counts,
			},
		},
	}
	_, ts := testServer(t, m, Config{
		DriftBaseline:     base,
		DriftBaselinePath: "crafted.json",
		Quality:           obs.QualityConfig{MinSamples: 1, MaxDriftPSI: 0.25},
	})

	resp, body := postJSON(t, ts.URL+"/v1/match", PointsRequest(ds.TestTrips()[0].Cell))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match: %d: %s", resp.StatusCode, body)
	}

	resp, body = getJSON(t, ts.URL+"/v1/drift")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/drift: %d", resp.StatusCode)
	}
	var dr DriftResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Status != "drift" {
		t.Fatalf("drift status %q, want drift: %s", dr.Status, body)
	}
	if dr.MaxSignal != "emission" || dr.Signals["emission"].PSI <= 0.25 {
		t.Fatalf("emission PSI %g (max signal %q), want > threshold 0.25",
			dr.Signals["emission"].PSI, dr.MaxSignal)
	}
	if dr.BaselineModel != "crafted" || dr.Threshold != 0.25 {
		t.Errorf("baseline provenance %q/%g not echoed", dr.BaselineModel, dr.Threshold)
	}

	resp, body = getJSON(t, ts.URL+"/v1/quality")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/quality: %d", resp.StatusCode)
	}
	var qr obs.QualityReport
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Status != "degraded" {
		t.Fatalf("quality status %q under drifted scores, want degraded: %s", qr.Status, body)
	}
	found := false
	for _, v := range qr.Violations {
		if v == "score_drift" {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations %v, want score_drift", qr.Violations)
	}
	if qr.DriftPSI <= 0.25 {
		t.Errorf("report drift PSI %g, want > 0.25", qr.DriftPSI)
	}

	// The scrape mirrors the comparison into lhmm_drift_* gauges.
	_, scrape := getJSON(t, ts.URL+"/metrics")
	prom := string(scrape)
	if !strings.Contains(prom, "lhmm_drift_emission_psi_milli") ||
		!strings.Contains(prom, "lhmm_drift_max_psi_milli") {
		t.Errorf("drift gauges missing from scrape")
	}
}

// syncBuf is a goroutine-safe buffer for capturing access logs (the
// handler logs after the response is flushed to the client).
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// With -log-format json, every access log line must parse as one JSON
// object carrying the request fields.
func TestAccessLogJSONParses(t *testing.T) {
	_, m := fixture(t)
	_, ts := testServer(t, m, Config{})

	var logs syncBuf
	if err := obs.SetLogFormat(&logs, "json"); err != nil {
		t.Fatal(err)
	}
	obs.SetLogLevel(slog.LevelInfo)
	defer func() {
		off, _ := obs.ParseLevel("off")
		obs.SetLogLevel(off)
		obs.SetLogFormat(&bytes.Buffer{}, "text") //nolint:errcheck // known-good format
	}()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitFor(t, func() bool { return strings.Contains(logs.String(), "/healthz") })

	for _, line := range strings.Split(strings.TrimSpace(logs.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("access log line is not JSON: %v (%q)", err, line)
		}
		if rec["msg"] != "request" {
			continue
		}
		rid, ok := rec["request_id"].(string)
		if rec["path"] != "/healthz" || rec["status"] != float64(200) || !ok || rid == "" {
			t.Errorf("unexpected access log record: %v", rec)
		}
	}
}
