package serve

import (
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
)

// Learned-score drift monitoring. When the server is started with a
// training-time baseline (lhmm train writes one next to the model),
// the matcher's drift sketches collect live score distributions and
// GET /v1/drift reports the PSI/KL divergence per signal. The same
// comparison feeds lhmm_drift_* gauges on /metrics and, with a
// -slo-drift-psi threshold, the QualityMonitor's score_drift
// violation.

// Drift gauges (milli-PSI: PSI is a small float, gauges are int64).
var (
	obsDriftMaxPSI  = obs.Default.Gauge("drift.max.psi.milli")
	obsDriftSignals = map[string]*obs.Gauge{
		"emission":   obs.Default.Gauge("drift.emission.psi.milli"),
		"transition": obs.Default.Gauge("drift.transition.psi.milli"),
		"candidates": obs.Default.Gauge("drift.candidates.psi.milli"),
		"degraded":   obs.Default.Gauge("drift.degraded.psi.milli"),
	}
)

// DriftResponse is the body of GET /v1/drift.
type DriftResponse struct {
	// Status is "disabled" (no baseline), "ok", or "drift" (some signal
	// exceeded the configured threshold).
	Status string `json:"status"`
	// Baseline provenance.
	BaselinePath    string `json:"baseline_path,omitempty"`
	BaselineModel   string `json:"baseline_model,omitempty"`
	BaselineCreated string `json:"baseline_created,omitempty"`
	// Threshold is the configured max PSI (0 = report-only).
	Threshold float64 `json:"threshold,omitempty"`
	// MaxPSI / MaxSignal headline the worst-drifting signal.
	MaxPSI    float64 `json:"max_psi"`
	MaxSignal string  `json:"max_signal,omitempty"`
	// Signals holds the per-signal comparison.
	Signals map[string]obs.SignalDrift `json:"signals,omitempty"`
}

// driftProbe caches the baseline comparison for the QualityMonitor's
// DriftProbe hook, which runs under the monitor's lock on every
// RecordMatch evaluation — the comparison itself is cheap (a few
// hundred bucket ops) but not free, so one result is reused for a
// short interval.
type driftProbe struct {
	base *obs.DriftBaseline

	mu   sync.Mutex
	last time.Time
	val  float64
}

const driftProbeTTL = 5 * time.Second

func (p *driftProbe) value() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.last.IsZero() && time.Since(p.last) < driftProbeTTL {
		return p.val
	}
	cmp := obs.DefaultDrift.Compare(p.base)
	p.val = cmp.MaxPSI
	p.last = time.Now()
	return p.val
}

// updateDriftGauges mirrors a comparison into the lhmm_drift_* gauges.
func updateDriftGauges(cmp obs.DriftComparison) {
	obsDriftMaxPSI.Set(int64(cmp.MaxPSI * 1000))
	for name, g := range obsDriftSignals {
		if sd, ok := cmp.Signals[name]; ok {
			g.Set(int64(sd.PSI * 1000))
		}
	}
}

// compareDrift runs a fresh live-vs-baseline comparison and refreshes
// the gauges.
func (s *Server) compareDrift() obs.DriftComparison {
	cmp := obs.DefaultDrift.Compare(s.cfg.DriftBaseline)
	updateDriftGauges(cmp)
	return cmp
}

func (s *Server) handleDrift(w http.ResponseWriter, r *http.Request) {
	if s.cfg.DriftBaseline == nil {
		writeJSON(w, http.StatusOK, DriftResponse{Status: "disabled"})
		return
	}
	cmp := s.compareDrift()
	resp := DriftResponse{
		Status:          "ok",
		BaselinePath:    s.cfg.DriftBaselinePath,
		BaselineModel:   s.cfg.DriftBaseline.Model,
		BaselineCreated: s.cfg.DriftBaseline.CreatedAt,
		Threshold:       s.cfg.Quality.MaxDriftPSI,
		MaxPSI:          cmp.MaxPSI,
		MaxSignal:       cmp.MaxSignal,
		Signals:         cmp.Signals,
	}
	if thr := s.cfg.Quality.MaxDriftPSI; thr > 0 && cmp.MaxPSI > thr {
		resp.Status = "drift"
	}
	writeJSON(w, http.StatusOK, resp)
}
