package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/traj"
)

// ckptConfig is a checkpointing server config with the periodic timer
// effectively off — tests drive sweeps explicitly for determinism.
func ckptConfig(dir string) Config {
	return Config{Checkpoint: CheckpointConfig{
		Dir:      dir,
		Interval: time.Hour,
		Backoff:  time.Millisecond,
	}}
}

// ckptServer builds a checkpoint-enabled server the test closes
// itself (crash tests need servers whose lifetime ends mid-test).
func ckptServer(t *testing.T, m *core.Model, dir string) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(staticRegistry(t, m), ckptConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	return s, httptest.NewServer(s.Handler())
}

func createSession(t *testing.T, url string, lag int) string {
	t.Helper()
	resp, body := postJSON(t, url+"/v1/sessions", SessionRequest{Lag: &lag})
	if resp.StatusCode != 200 {
		t.Fatalf("create: %d (%s)", resp.StatusCode, body)
	}
	var sr SessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	return sr.ID
}

func pushPoints(t *testing.T, url, id string, pts traj.CellTrajectory) {
	t.Helper()
	req := PushRequest{}
	for _, p := range pts {
		req.Points = append(req.Points, Point{Tower: int(p.Tower), X: p.P.X, Y: p.P.Y, T: p.T})
	}
	resp, body := postJSON(t, url+"/v1/sessions/"+id+"/points", req)
	if resp.StatusCode != 200 {
		t.Fatalf("push: %d (%s)", resp.StatusCode, body)
	}
}

func finishSession(t *testing.T, url, id string) []byte {
	t.Helper()
	resp, body := postJSON(t, url+"/v1/sessions/"+id+"/finish", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("finish: %d (%s)", resp.StatusCode, body)
	}
	return body
}

func sweepNow(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.CheckpointSweep(ctx); err != nil {
		t.Fatal(err)
	}
}

// The acceptance test for crash recovery: SIGKILL-style abandonment of
// a server mid-stream, restart over the same store, and the restored
// session — continued over HTTP with the remaining points — finishes
// with a response byte-identical to an uninterrupted session on a
// server that never crashed.
func TestCheckpointRestartRecovery(t *testing.T) {
	_, m := fixture(t)
	tr := sessionTrip(t)
	half := len(tr) / 2
	dir := t.TempDir()

	// Uninterrupted baseline (no checkpointing involved at all).
	_, baseTS := testServer(t, m, Config{})
	baseID := createSession(t, baseTS.URL, 2)
	pushPoints(t, baseTS.URL, baseID, tr)
	want := finishSession(t, baseTS.URL, baseID)

	// Server A: push half, make it durable, then "crash" — no drain, no
	// finish, just gone.
	srvA, tsA := ckptServer(t, m, dir)
	id := createSession(t, tsA.URL, 2)
	pushPoints(t, tsA.URL, id, tr[:half])
	sweepNow(t, srvA)
	ckptPath := srvA.ckpt.path(id)
	if _, err := os.Stat(ckptPath); err != nil {
		t.Fatalf("no checkpoint after sweep: %v", err)
	}
	tsA.Close()
	srvA.Close()

	// Server B boots over the same store and must already hold the
	// session.
	srvB, tsB := ckptServer(t, m, dir)
	defer func() { tsB.Close(); srvB.Close() }()
	if n := srvB.Sessions().Len(); n != 1 {
		t.Fatalf("recovered %d sessions, want 1", n)
	}
	if _, err := srvB.Sessions().Get(id); err != nil {
		t.Fatalf("restored session not resolvable: %v", err)
	}
	pushPoints(t, tsB.URL, id, tr[half:])
	got := finishSession(t, tsB.URL, id)
	if !bytes.Equal(got, want) {
		t.Fatalf("restored finish differs from uninterrupted run:\n got %s\nwant %s", got, want)
	}
	// Finishing removed the checkpoint — the store does not outlive its
	// sessions.
	if _, err := os.Stat(ckptPath); !os.IsNotExist(err) {
		t.Fatalf("checkpoint survives finish: %v", err)
	}
}

// sessionTrip returns a streaming-suitable trip from the shared
// fixture dataset.
func sessionTrip(t *testing.T) traj.CellTrajectory {
	t.Helper()
	ds, _ := fixture(t)
	tr := ds.TestTrips()[0].Cell
	if len(tr) < 6 {
		t.Skip("fixture trip too short")
	}
	return tr
}

// The TTL janitor deletes the on-disk checkpoint along with the
// session and counts it on the gc counter, so abandoned devices cannot
// grow the store forever.
func TestCheckpointTTLEvictionGC(t *testing.T) {
	_, m := fixture(t)
	tr := sessionTrip(t)
	dir := t.TempDir()

	srv, ts := ckptServer(t, m, dir)
	defer func() { ts.Close(); srv.Close() }()
	id := createSession(t, ts.URL, 2)
	pushPoints(t, ts.URL, id, tr[:3])
	sweepNow(t, srv)
	path := srv.ckpt.path(id)
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}

	gcBefore := obsSessCkptGC.Value()
	if n := srv.Sessions().Sweep(time.Now().Add(24 * time.Hour)); n != 1 {
		t.Fatalf("janitor evicted %d sessions, want 1", n)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("checkpoint survives TTL eviction: %v", err)
	}
	if got := obsSessCkptGC.Value() - gcBefore; got != 1 {
		t.Fatalf("sessions.ckpt.gc delta = %d, want 1", got)
	}
}

// DELETE /v1/sessions/{id} also deletes the snapshot.
func TestCheckpointDeleteRemovesSnapshot(t *testing.T) {
	_, m := fixture(t)
	tr := sessionTrip(t)
	dir := t.TempDir()

	srv, ts := ckptServer(t, m, dir)
	defer func() { ts.Close(); srv.Close() }()
	id := createSession(t, ts.URL, 2)
	pushPoints(t, ts.URL, id, tr[:3])
	sweepNow(t, srv)
	path := srv.ckpt.path(id)
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("DELETE", ts.URL+"/v1/sessions/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 204 {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("checkpoint survives delete: %v", err)
	}
}

// Boot-time recovery quarantines what it cannot trust — corrupt bytes,
// version skew, other-model snapshots — and removes stray temp files,
// without ever refusing to boot.
func TestCheckpointRecoveryQuarantine(t *testing.T) {
	_, m := fixture(t)
	tr := sessionTrip(t)
	dir := t.TempDir()

	// Produce one good snapshot, then corrupt a copy of it under a
	// different session ID, plus a stray temp file.
	srvA, tsA := ckptServer(t, m, dir)
	id := createSession(t, tsA.URL, 2)
	pushPoints(t, tsA.URL, id, tr[:4])
	sweepNow(t, srvA)
	good, err := os.ReadFile(srvA.ckpt.path(id))
	if err != nil {
		t.Fatal(err)
	}
	tsA.Close()
	srvA.Close()

	bad := append([]byte(nil), good...)
	bad[len(bad)/3] ^= 0xFF
	badPath := filepath.Join(dir, shardDirName(int(shardIndex("deadbeef"))), "deadbeef"+ckptExt)
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	// A structurally valid snapshot filed under the wrong session name
	// must not be adopted either.
	alias := filepath.Join(dir, shardDirName(int(shardIndex("impostor"))), "impostor"+ckptExt)
	if err := os.WriteFile(alias, good, 0o644); err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(dir, shardDirName(0), "leftover"+ckptTmpExt)
	if err := os.WriteFile(stray, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	srvB, tsB := ckptServer(t, m, dir)
	defer func() { tsB.Close(); srvB.Close() }()
	if n := srvB.Sessions().Len(); n != 1 {
		t.Fatalf("recovered %d sessions, want only the good one", n)
	}
	if _, err := srvB.Sessions().Get(id); err != nil {
		t.Fatalf("good session not restored: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, "deadbeef"+ckptExt+".corrupt")); err != nil {
		t.Fatalf("corrupt snapshot not quarantined: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, "impostor"+ckptExt+".idmismatch")); err != nil {
		t.Fatalf("aliased snapshot not quarantined: %v", err)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatalf("stray temp file survives recovery: %v", err)
	}
}

// Write faults exhaust their retries, flip the store into degraded
// mode, and the server keeps serving; once the fault clears, the next
// sweep heals the store and persists the session.
func TestCheckpointDegradedModeAndHeal(t *testing.T) {
	_, m := fixture(t)
	tr := sessionTrip(t)
	dir := t.TempDir()

	srv, ts := ckptServer(t, m, dir)
	defer func() { ts.Close(); srv.Close() }()
	id := createSession(t, ts.URL, 2)

	// Arm before the first push: every write attempt — including the
	// push-triggered async one — fails until disarmed.
	faultinject.DisarmAll()
	defer faultinject.DisarmAll()
	if err := faultinject.Arm(fpCkptWrite.Name()); err != nil {
		t.Fatal(err)
	}
	pushPoints(t, ts.URL, id, tr[:3])
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	err := srv.CheckpointSweep(ctx)
	cancel()
	if err == nil {
		t.Fatal("sweep under a persistent write fault reported success")
	}
	if !srv.ckpt.Sick() {
		t.Fatal("store not degraded after exhausting write retries")
	}
	// Serving continues while degraded.
	pushPoints(t, ts.URL, id, tr[3:4])

	faultinject.DisarmAll()
	sweepNow(t, srv)
	if srv.ckpt.Sick() {
		t.Fatal("store still degraded after the fault cleared")
	}
	if _, err := os.Stat(srv.ckpt.path(id)); err != nil {
		t.Fatalf("no checkpoint after healing: %v", err)
	}
}

// A transient write fault (every 2nd attempt) is absorbed by the
// retry loop without ever entering degraded mode. persist is driven
// synchronously — no Start — so the failing attempt lands
// deterministically on the second write.
func TestCheckpointWriteRetry(t *testing.T) {
	_, m := fixture(t)
	tr := sessionTrip(t)

	mgr := NewSessionManager(4, time.Minute)
	ck, err := NewCheckpointer(CheckpointConfig{Dir: t.TempDir(), Backoff: time.Millisecond}, mgr)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	s, err := mgr.Create(m, [32]byte{}, 1, now)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.push(tr[:3], now); err != nil {
		t.Fatal(err)
	}

	faultinject.DisarmAll()
	defer faultinject.DisarmAll()
	if err := faultinject.Arm(fpCkptWrite.Name() + ":2"); err != nil {
		t.Fatal(err)
	}
	ck.persist(s) // write hit 1: clean
	if s.ckptDirty() {
		t.Fatal("session dirty after first persist")
	}
	if _, _, _, err := s.push(tr[3:4], now); err != nil {
		t.Fatal(err)
	}
	errsBefore := obsCkptWriteErrors.Value()
	ck.persist(s) // write hit 2 fails, retry hit 3 succeeds
	if s.ckptDirty() {
		t.Fatal("session dirty after retried persist")
	}
	if ck.Sick() {
		t.Fatal("transient fault degraded the store")
	}
	if got := obsCkptWriteErrors.Value() - errsBefore; got != 1 {
		t.Fatalf("write.errors delta = %d, want 1 (exactly one retried attempt)", got)
	}
	if _, err := os.Stat(ck.path(s.ID)); err != nil {
		t.Fatalf("no checkpoint after retried write: %v", err)
	}
}

// A checkpoint corrupted on the way to disk (bit rot simulated by the
// corrupt failpoint) is caught by the CRC at the next boot and
// quarantined rather than restored.
func TestCheckpointCorruptionQuarantinedAtBoot(t *testing.T) {
	_, m := fixture(t)
	tr := sessionTrip(t)
	dir := t.TempDir()

	srvA, tsA := ckptServer(t, m, dir)
	id := createSession(t, tsA.URL, 2)
	// Armed before the push, so the async persist triggered by it (or
	// the final drain in Stop) silently writes flipped bytes — the
	// failure only the CRC can catch.
	faultinject.DisarmAll()
	defer faultinject.DisarmAll()
	if err := faultinject.Arm(fpCkptCorrupt.Name()); err != nil {
		t.Fatal(err)
	}
	pushPoints(t, tsA.URL, id, tr[:4])
	sweepNow(t, srvA)
	tsA.Close()
	srvA.Close()
	faultinject.DisarmAll()

	srvB, tsB := ckptServer(t, m, dir)
	defer func() { tsB.Close(); srvB.Close() }()
	if n := srvB.Sessions().Len(); n != 0 {
		t.Fatalf("recovered %d sessions from a corrupt store, want 0", n)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, id+ckptExt+".corrupt")); err != nil {
		t.Fatalf("corrupt snapshot not quarantined: %v", err)
	}
}

// Drain's final sweep makes every surviving session durable: a session
// pushed but never explicitly checkpointed is on disk after Drain.
func TestDrainFlushesCheckpoints(t *testing.T) {
	_, m := fixture(t)
	tr := sessionTrip(t)
	dir := t.TempDir()

	srv, ts := ckptServer(t, m, dir)
	defer func() { ts.Close(); srv.Close() }()
	id := createSession(t, ts.URL, 2)
	pushPoints(t, ts.URL, id, tr[:3])

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(srv.ckpt.path(id)); err != nil {
		t.Fatalf("no checkpoint after drain: %v", err)
	}
}
