package serve

import (
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/hmm"
	"repro/internal/traj"
)

func TestSessionTTLEviction(t *testing.T) {
	_, m := fixture(t)
	sm := NewSessionManager(10, time.Minute)
	t0 := time.Now()

	s1, err := sm.Create(m, [32]byte{}, 1, t0)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sm.Create(m, [32]byte{}, 1, t0)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := sm.Create(m, [32]byte{}, 1, t0)
	if err != nil {
		t.Fatal(err)
	}
	fresh.touch(t0.Add(50 * time.Second))

	if n := sm.Sweep(t0.Add(70 * time.Second)); n != 2 {
		t.Fatalf("evicted %d sessions, want 2", n)
	}
	if sm.Len() != 1 {
		t.Fatalf("%d live sessions after sweep, want 1", sm.Len())
	}
	for _, id := range []string{s1.ID, s2.ID} {
		if _, err := sm.Get(id); !errors.Is(err, errSessionNotFound) {
			t.Fatalf("evicted session %s still resolvable (err %v)", id, err)
		}
	}
	if _, err := sm.Get(fresh.ID); err != nil {
		t.Fatalf("recently touched session evicted: %v", err)
	}
	// Idempotent: a second sweep at the same instant evicts nothing.
	if n := sm.Sweep(t0.Add(70 * time.Second)); n != 0 {
		t.Fatalf("second sweep evicted %d", n)
	}
}

func TestSessionCapRejection(t *testing.T) {
	_, m := fixture(t)
	sm := NewSessionManager(2, time.Minute)
	now := time.Now()

	a, err := sm.Create(m, [32]byte{}, 1, now)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sm.Create(m, [32]byte{}, 1, now); err != nil {
		t.Fatal(err)
	}
	if _, err := sm.Create(m, [32]byte{}, 1, now); !errors.Is(err, errSessionCap) {
		t.Fatalf("create above cap: %v, want errSessionCap", err)
	}
	// Removing one frees a slot.
	sm.Remove(a.ID)
	if _, err := sm.Create(m, [32]byte{}, 1, now); err != nil {
		t.Fatalf("create after removal: %v", err)
	}
}

// The cap maps to 429 at the HTTP layer.
func TestSessionCapHTTP(t *testing.T) {
	_, m := fixture(t)
	_, ts := testServer(t, m, Config{MaxSessions: 1})

	resp, body := postJSON(t, ts.URL+"/v1/sessions", SessionRequest{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first create: %d (%s)", resp.StatusCode, body)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/sessions", SessionRequest{})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("create above cap: %d, want 429", resp.StatusCode)
	}
}

// Concurrent pushes to one session serialize behind its writer lock;
// pushes to distinct sessions proceed independently. Run under -race.
func TestConcurrentSessionPushes(t *testing.T) {
	ds, m := fixture(t)
	// Off-mode sanitization: concurrent pushers interleave timestamps
	// arbitrarily, and this test is about locking, not ordering.
	mm := *m
	mm.Cfg.Sanitize = traj.SanitizeOff
	mm.Cfg.OnBreak = hmm.BreakSkip // dead points must not error the push
	sm := NewSessionManager(64, time.Minute)
	now := time.Now()

	shared, err := sm.Create(&mm, [32]byte{}, 1, now)
	if err != nil {
		t.Fatal(err)
	}
	pts := ds.TestTrips()[0].Cell
	if len(pts) > 8 {
		pts = pts[:8]
	}

	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker pushes to the shared session and to a private
			// one.
			own, err := sm.Create(&mm, [32]byte{}, 1, now)
			if err != nil {
				t.Error(err)
				return
			}
			for _, p := range pts {
				if _, _, _, err := shared.push(traj.CellTrajectory{p}, now); err != nil {
					t.Errorf("shared push: %v", err)
					return
				}
				if _, _, _, err := own.push(traj.CellTrajectory{p}, now); err != nil {
					t.Errorf("own push: %v", err)
					return
				}
			}
			st := own.status()
			if st.Pushed != len(pts) {
				t.Errorf("private session pushed %d, want %d", st.Pushed, len(pts))
			}
		}()
	}
	wg.Wait()

	if st := shared.status(); st.Pushed != workers*len(pts) {
		t.Fatalf("shared session pushed %d, want %d", st.Pushed, workers*len(pts))
	}
	if sm.Len() != 1+workers {
		t.Fatalf("%d live sessions, want %d", sm.Len(), 1+workers)
	}
}

func TestSessionDoubleFinish(t *testing.T) {
	_, m := fixture(t)
	sm := NewSessionManager(4, time.Minute)
	s, err := sm.Create(m, [32]byte{}, 0, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.finish(); !errors.Is(err, errSessionNotFound) {
		t.Fatalf("second finish: %v, want errSessionNotFound", err)
	}
	if _, _, _, err := s.push(nil, time.Now()); !errors.Is(err, errSessionNotFound) {
		t.Fatalf("push after finish: %v, want errSessionNotFound", err)
	}
}
