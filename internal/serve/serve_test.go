package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/synth"
	"repro/internal/traj"
)

// The fixture dataset and model are built once: an untrained model
// with frozen embeddings scores deterministically for its seed, which
// is all the serving layer needs (it never trains).
var (
	fixOnce sync.Once
	fixDS   *traj.Dataset
	fixErr  error
	fixCfg  core.Config
)

func fixture(t testing.TB) (*traj.Dataset, *core.Model) {
	t.Helper()
	fixOnce.Do(func() {
		fixCfg = core.DefaultConfig()
		fixCfg.Dim = 16
		fixCfg.Epochs = 2
		fixCfg.FuseEpochs = 1
		fixCfg.K = 10
		fixCfg.PoolSize = 20
		fixCfg.CoPool = 8
		fixCfg.PairsPerTrip = 24
		fixDS, fixErr = synth.GenerateDataset(synth.DatasetConfig{
			Seed: 7,
			City: synth.CityConfig{
				Name:          "serve-test",
				HalfSize:      2200,
				BlockSize:     250,
				CoreRadius:    1100,
				NodeJitter:    15,
				EdgeDropCore:  0.05,
				EdgeDropRural: 0.35,
				ArterialEvery: 4,
				TowerCount:    45,
			},
			Trips: synth.TripConfig{
				Count:            10,
				MinLen:           1200,
				MaxLen:           3500,
				GPSInterval:      20,
				GPSNoise:         8,
				CellMeanInterval: 40,
				Serving:          cellular.DefaultServingModel(),
			},
			Preprocess: true,
			Filter:     traj.DefaultFilterConfig(),
			TrainFrac:  0.7,
			ValidFrac:  0.1,
		})
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	m, err := core.New(fixDS, fixDS.TrainTrips(), fixCfg)
	if err != nil {
		t.Fatal(err)
	}
	m.RefreshEmbeddings()
	return fixDS, m
}

// staticRegistry serves a fixed model (tests that don't reload).
func staticRegistry(t testing.TB, m *core.Model) *Registry {
	t.Helper()
	reg := NewRegistry(func() (*core.Model, error) { return m, nil })
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	return reg
}

func testServer(t testing.TB, m *core.Model, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(staticRegistry(t, m), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t testing.TB, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// POST /v1/match must answer the exact bytes an offline match of the
// same trajectory encodes — the core online/offline parity contract.
func TestMatchEndpointParity(t *testing.T) {
	ds, m := fixture(t)
	_, ts := testServer(t, m, Config{})
	tr := ds.TestTrips()[0]

	resp, got := postJSON(t, ts.URL+"/v1/match", PointsRequest(tr.Cell))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match: %d: %s", resp.StatusCode, got)
	}

	res, err := m.MatchContext(context.Background(), tr.Cell)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := json.NewEncoder(&want).Encode(ResultJSON(res)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("online and offline matches differ:\nonline:  %s\noffline: %s", got, want.Bytes())
	}
}

func TestMatchRequestValidation(t *testing.T) {
	_, m := fixture(t)
	_, ts := testServer(t, m, Config{})

	resp, _ := postJSON(t, ts.URL+"/v1/match", MatchRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty request: %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/match", MatchRequest{Points: []Point{{Tower: 1 << 20, T: 1}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad tower: %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/match", MatchRequest{
		Points:  []Point{{Tower: 0, T: 1}},
		Options: &MatchOptions{OnBreak: "bogus"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad option: %d, want 400", resp.StatusCode)
	}
}

// An HTTP streaming session must finalize the same matches as an
// offline StreamMatcher fed the same points.
func TestStreamingSessionParity(t *testing.T) {
	ds, m := fixture(t)
	_, ts := testServer(t, m, Config{DefaultLag: 2})
	tr := ds.TestTrips()[0]

	resp, body := postJSON(t, ts.URL+"/v1/sessions", SessionRequest{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: %d: %s", resp.StatusCode, body)
	}
	var sess SessionResponse
	if err := json.Unmarshal(body, &sess); err != nil {
		t.Fatal(err)
	}
	if sess.Lag != 2 {
		t.Fatalf("lag %d, want server default 2", sess.Lag)
	}

	var online []MatchedPoint
	for _, p := range PointsRequest(tr.Cell).Points {
		resp, body := postJSON(t, ts.URL+"/v1/sessions/"+sess.ID+"/points", PushRequest{Points: []Point{p}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("push: %d: %s", resp.StatusCode, body)
		}
		var pr PushResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatal(err)
		}
		online = append(online, pr.Finalized...)
	}
	resp, body = postJSON(t, ts.URL+"/v1/sessions/"+sess.ID+"/finish", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("finish: %d: %s", resp.StatusCode, body)
	}
	var fin MatchResponse
	if err := json.Unmarshal(body, &fin); err != nil {
		t.Fatal(err)
	}

	// Offline reference: same model, same lag, same points.
	sm := m.NewStream(2)
	for _, p := range tr.Cell {
		if _, err := sm.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	sm.Flush()
	want := streamResultJSON(sm)

	if len(fin.Matched) != len(want.Matched) {
		t.Fatalf("finish reported %d matches, offline %d", len(fin.Matched), len(want.Matched))
	}
	if len(online) != len(want.Matched)-2 {
		t.Fatalf("pushes finalized %d matches before finish, want %d (lag 2)", len(online), len(want.Matched)-2)
	}
	for i, mp := range fin.Matched {
		if mp != want.Matched[i] {
			t.Fatalf("match %d differs: online %+v offline %+v", i, mp, want.Matched[i])
		}
	}
	gotJSON, _ := json.Marshal(fin)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("streamed result differs:\nonline:  %s\noffline: %s", gotJSON, wantJSON)
	}

	// The session is gone after finish.
	resp, _ = postJSON(t, ts.URL+"/v1/sessions/"+sess.ID+"/points", PushRequest{})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("push after finish: %d, want 404", resp.StatusCode)
	}
}

// With one worker and no queue, a second concurrent match must shed
// with 429 while the first is still running — and nothing deadlocks.
func TestOverloadSheds429(t *testing.T) {
	ds, m := fixture(t)
	s, ts := testServer(t, m, Config{Workers: 1, Queue: 0})
	tr := ds.TestTrips()[0]

	started := make(chan struct{})
	unblock := make(chan struct{})
	s.testHookMatchStarted = func() {
		close(started)
		<-unblock
	}

	first := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/match", PointsRequest(tr.Cell))
		first <- resp.StatusCode
	}()
	<-started

	resp, body := postJSON(t, ts.URL+"/v1/match", PointsRequest(tr.Cell))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded match: %d (%s), want 429", resp.StatusCode, body)
	}

	close(unblock)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("first match: %d, want 200", code)
	}
}

// Drain must reject new work with 503, keep health endpoints live, and
// wait for the in-flight match to finish.
func TestGracefulDrain(t *testing.T) {
	ds, m := fixture(t)
	s, ts := testServer(t, m, Config{Workers: 2})
	tr := ds.TestTrips()[0]

	started := make(chan struct{})
	unblock := make(chan struct{})
	s.testHookMatchStarted = func() {
		close(started)
		<-unblock
	}

	inflight := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/match", PointsRequest(tr.Cell))
		inflight <- resp.StatusCode
	}()
	<-started

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	waitFor(t, s.isDraining)

	resp, _ := postJSON(t, ts.URL+"/v1/match", PointsRequest(tr.Cell))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("match during drain: %d, want 503", resp.StatusCode)
	}
	hc, err := http.Get(ts.URL + "/healthz")
	if err != nil || hc.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain: %v %v", hc, err)
	}
	hc.Body.Close()
	rc, err := http.Get(ts.URL + "/readyz")
	if err != nil || rc.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %v %v, want 503", rc, err)
	}
	rc.Body.Close()

	select {
	case err := <-drained:
		t.Fatalf("drain returned %v with a match still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(unblock)
	if code := <-inflight; code != http.StatusOK {
		t.Fatalf("in-flight match during drain: %d, want 200", code)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// A drain that exceeds its deadline reports the context error instead
// of hanging.
func TestDrainTimeout(t *testing.T) {
	ds, m := fixture(t)
	s, ts := testServer(t, m, Config{Workers: 1})
	tr := ds.TestTrips()[0]

	started := make(chan struct{})
	unblock := make(chan struct{})
	s.testHookMatchStarted = func() {
		close(started)
		<-unblock
	}
	done := make(chan struct{})
	go func() {
		postJSON(t, ts.URL+"/v1/match", PointsRequest(tr.Cell))
		close(done)
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("drain with a stuck match returned nil before its deadline")
	}
	close(unblock)
	<-done
}

// Armed failpoints must surface as 5xx responses, never a crash.
func TestFailpointsReturn5xx(t *testing.T) {
	ds, m := fixture(t)
	_, ts := testServer(t, m, Config{})
	tr := ds.TestTrips()[0]
	t.Cleanup(faultinject.DisarmAll)

	if err := faultinject.Arm("serve.session.create"); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/sessions", SessionRequest{})
	if resp.StatusCode < 500 {
		t.Fatalf("session create with armed failpoint: %d (%s), want 5xx", resp.StatusCode, body)
	}
	faultinject.DisarmAll()

	if err := faultinject.Arm("hmm.candidates.empty"); err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, ts.URL+"/v1/match", PointsRequest(tr.Cell))
	if resp.StatusCode < 500 {
		t.Fatalf("match with dead candidates armed: %d (%s), want 5xx", resp.StatusCode, body)
	}
	faultinject.DisarmAll()

	// Disarmed again, the same request succeeds: the failure was
	// contained to the faulted requests.
	resp, body = postJSON(t, ts.URL+"/v1/match", PointsRequest(tr.Cell))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match after disarm: %d (%s), want 200", resp.StatusCode, body)
	}
}

// Per-request break/sanitize overrides apply without mutating the
// shared model.
func TestMatchOptionOverrides(t *testing.T) {
	ds, m := fixture(t)
	_, ts := testServer(t, m, Config{})
	tr := ds.TestTrips()[0]
	t.Cleanup(faultinject.DisarmAll)

	if err := faultinject.Arm("hmm.candidates.empty:3"); err != nil {
		t.Fatal(err)
	}
	req := PointsRequest(tr.Cell)
	req.Options = &MatchOptions{OnBreak: "skip"}
	resp, body := postJSON(t, ts.URL+"/v1/match", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("skip-policy match with dead points: %d (%s), want 200", resp.StatusCode, body)
	}
	var mr MatchResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	dead := 0
	for _, mp := range mr.Matched {
		if mp.Dead {
			dead++
		}
	}
	if dead == 0 {
		t.Fatal("no dead points despite armed empty-candidates failpoint")
	}
	if m.Cfg.OnBreak.String() != "error" {
		t.Fatalf("request override leaked into shared model: OnBreak = %s", m.Cfg.OnBreak)
	}
}

func TestHealthReadyMetrics(t *testing.T) {
	_, m := fixture(t)
	_, ts := testServer(t, m, Config{})

	for _, ep := range []string{"/healthz", "/readyz", "/metrics.json", "/v1/quality"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d (%s)", ep, resp.StatusCode, body)
		}
		if !json.Valid(body) {
			t.Fatalf("%s: invalid JSON: %s", ep, body)
		}
	}
	// /metrics is Prometheus text now.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d (%s)", resp.StatusCode, body)
	}
	if err := obs.ValidatePromText(body); err != nil {
		t.Fatalf("/metrics: %v", err)
	}
}

// readyz reports 503 until a model is published.
func TestReadyzWithoutModel(t *testing.T) {
	reg := NewRegistry(func() (*core.Model, error) {
		return nil, fmt.Errorf("nope")
	})
	s, err := New(reg, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz without model: %d, want 503", resp.StatusCode)
	}
	resp, body := postJSON(t, ts.URL+"/v1/match", MatchRequest{Points: []Point{{T: 1}}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("match without model: %d (%s), want 503", resp.StatusCode, body)
	}
}

func TestRequestBodyLimit(t *testing.T) {
	_, m := fixture(t)
	_, ts := testServer(t, m, Config{MaxBodyBytes: 128})

	big := strings.Repeat("x", 4096)
	resp, err := http.Post(ts.URL+"/v1/match", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body: %d, want 400", resp.StatusCode)
	}
}

func waitFor(t testing.TB, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 2s")
		}
		time.Sleep(time.Millisecond)
	}
}
