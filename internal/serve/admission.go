package serve

import (
	"context"
	"errors"
	"sync/atomic"

	"repro/internal/obs"
)

// Admission-control telemetry. The in-flight gauge counts requests
// holding a worker slot; depth counts requests waiting in the queue.
var (
	obsAdmitted  = obs.Default.Counter("serve.admitted")
	obsShed      = obs.Default.Counter("serve.shed")
	obsInflight  = obs.Default.Gauge("serve.inflight")
	obsQueueWait = obs.Default.Gauge("serve.queue.depth")
)

// errOverloaded sheds a request: every worker is busy and the waiting
// queue is full. Mapped to 429 by the handlers.
var errOverloaded = errors.New("serve: overloaded: worker pool and queue are full")

// admission is the server's bounded worker pool plus waiting queue.
// A request first tries to take a worker slot; if none is free it
// waits in the bounded queue, and if the queue is full it is shed
// immediately. This keeps CPU-bound matching work at a fixed
// parallelism under any request rate — overload degrades to fast 429s
// instead of an unbounded goroutine pile-up.
type admission struct {
	slots   chan struct{} // capacity = concurrent workers
	waiting atomic.Int64
	maxWait int64 // queue bound; <= 0 means "no waiting, shed at once"
}

func newAdmission(workers, queue int) *admission {
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &admission{slots: make(chan struct{}, workers), maxWait: int64(queue)}
}

// acquire blocks until a worker slot is free, the queue overflows
// (errOverloaded), or ctx is done (its error). On success the caller
// must invoke the returned release exactly once.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	select {
	case a.slots <- struct{}{}:
		return a.admitted(), nil
	default:
	}
	if a.waiting.Add(1) > a.maxWait {
		a.waiting.Add(-1)
		obsShed.Inc()
		return nil, errOverloaded
	}
	obsQueueWait.Set(a.waiting.Load())
	defer func() {
		a.waiting.Add(-1)
		obsQueueWait.Set(a.waiting.Load())
	}()
	select {
	case a.slots <- struct{}{}:
		return a.admitted(), nil
	case <-ctx.Done():
		obsShed.Inc()
		return nil, ctx.Err()
	}
}

// admitted records a successful slot take and returns its releaser.
func (a *admission) admitted() func() {
	obsAdmitted.Inc()
	obsInflight.Add(1)
	var once atomic.Bool
	return func() {
		if once.Swap(true) {
			return
		}
		obsInflight.Add(-1)
		<-a.slots
	}
}

// inflight reports how many worker slots are currently held.
func (a *admission) inflight() int { return len(a.slots) }
