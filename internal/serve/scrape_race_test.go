package serve

import (
	"io"
	"net/http"
	"sync"
	"testing"
)

// Hammers every observability surface concurrently with in-flight
// matches and a mirroring shadow candidate. The assertions are thin on
// purpose: the test exists to give the race detector (go test -race)
// maximal interleaving across the metrics registry, drift monitor,
// quality monitor, shadow stats, and the serving path at once.
func TestConcurrentScrapesDuringMatches(t *testing.T) {
	ds, m := fixture(t)
	_, cand := fixture(t)
	_, ts := shadowTestServer(t, m, cand, Config{})

	trips := ds.TestTrips()
	get := func(path string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Error(err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %d", path, resp.StatusCode)
		}
	}

	const rounds = 20
	var wg sync.WaitGroup
	// Matchers: keep requests in flight (and the shadow mirror busy)
	// for the whole scrape storm.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				tr := trips[(w+i)%len(trips)]
				resp, body := postJSON(t, ts.URL+"/v1/match", PointsRequest(tr.Cell))
				if resp.StatusCode != http.StatusOK {
					t.Errorf("match: %d: %s", resp.StatusCode, body)
				}
			}
		}(w)
	}
	// Scrapers: every read-side surface, concurrently.
	for _, path := range []string{"/metrics", "/metrics.json", "/v1/drift", "/v1/quality", "/v1/shadow", "/readyz", "/healthz"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				get(path)
			}
		}(path)
	}
	wg.Wait()
}
