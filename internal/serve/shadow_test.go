package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/shadow"
)

// perturbedModel rebuilds the deterministic fixture model and negates
// every weight: values stay finite (so loading-style validation would
// pass) but sigmoid rankings invert, guaranteeing decision-level
// disagreement with the active model.
func perturbedModel(t testing.TB) *core.Model {
	t.Helper()
	_, m := fixture(t)
	for _, p := range m.AllParams() {
		for i := range p.W.W {
			p.W.W[i] = -p.W.W[i]
		}
	}
	m.RefreshEmbeddings()
	return m
}

// shadowTestServer starts a server with the candidate installed via
// the boot path.
func shadowTestServer(t testing.TB, m, cand *core.Model, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Shadow.Loader = func(string) (*core.Model, error) { return cand, nil }
	if cfg.Shadow.ModelPath == "" {
		cfg.Shadow.ModelPath = "candidate"
	}
	return testServer(t, m, cfg)
}

func getShadowReport(t testing.TB, url string) shadow.Report {
	t.Helper()
	resp, err := http.Get(url + "/v1/shadow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/shadow: %d", resp.StatusCode)
	}
	var r shadow.Report
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	return r
}

// waitShadowSamples polls the report until the asynchronous mirror has
// recorded at least n samples.
func waitShadowSamples(t testing.TB, url string, n int64) shadow.Report {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		r := getShadowReport(t, url)
		if r.Samples >= n {
			return r
		}
		if time.Now().After(deadline) {
			t.Fatalf("shadow samples stuck at %d, want >= %d", r.Samples, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// With no shadow configured the endpoint still answers, as disabled.
func TestShadowEndpointDisabled(t *testing.T) {
	_, m := fixture(t)
	_, ts := testServer(t, m, Config{})
	r := getShadowReport(t, ts.URL)
	if r.Enabled || r.Verdict != shadow.VerdictDisabled {
		t.Fatalf("want disabled verdict, got %+v", r)
	}
}

// Serving-path bytes must be identical with and without a shadow
// candidate mirroring every request — shadow scoring is observable only
// through its own surfaces.
func TestShadowServingParity(t *testing.T) {
	ds, m := fixture(t)
	_, tsOff := testServer(t, m, Config{})
	_, m2 := fixture(t)
	cand := perturbedModel(t)
	_, tsOn := shadowTestServer(t, m2, cand, Config{})

	for _, tr := range ds.TestTrips() {
		_, off := postJSON(t, tsOff.URL+"/v1/match", PointsRequest(tr.Cell))
		_, on := postJSON(t, tsOn.URL+"/v1/match", PointsRequest(tr.Cell))
		if !bytes.Equal(off, on) {
			t.Fatalf("shadow-on response differs from shadow-off:\noff: %s\non:  %s", off, on)
		}
	}
}

// An identical-weights candidate must converge to agreement 1.0 and a
// ready verdict.
func TestShadowIdenticalCandidateReady(t *testing.T) {
	ds, m := fixture(t)
	_, cand := fixture(t) // deterministic rebuild: identical weights
	_, ts := shadowTestServer(t, m, cand, Config{
		Shadow: ShadowConfig{Thresholds: shadow.Thresholds{MinSamples: 3}},
	})

	trips := ds.TestTrips()
	n := int64(0)
	for i := 0; i < 3; i++ {
		tr := trips[i%len(trips)]
		resp, body := postJSON(t, ts.URL+"/v1/match", PointsRequest(tr.Cell))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("match: %d: %s", resp.StatusCode, body)
		}
		n++
	}
	r := waitShadowSamples(t, ts.URL, n)
	if !r.Enabled {
		t.Fatal("shadow not enabled")
	}
	if r.AgreementRate != 1 {
		t.Fatalf("identical candidate agreement %v, want 1", r.AgreementRate)
	}
	if r.DigestMatchRate != 1 {
		t.Fatalf("identical candidate digest match rate %v, want 1", r.DigestMatchRate)
	}
	if r.Verdict != shadow.VerdictReady {
		t.Fatalf("verdict %q (reasons %v), want ready", r.Verdict, r.Reasons)
	}
}

// A perturbed candidate must show agreement < 1.0, a not_ready verdict,
// and a disagreement capture that replays byte-identically against the
// active model (the forensics loop).
func TestShadowPerturbedCandidateNotReady(t *testing.T) {
	ds, m := fixture(t)
	cand := perturbedModel(t)
	capPath := filepath.Join(t.TempDir(), "shadow_diffs.jsonl")
	capture, err := OpenCaptureFile(capPath, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer capture.Close()
	srv, ts := shadowTestServer(t, m, cand, Config{
		Shadow: ShadowConfig{
			Capture:    capture,
			Thresholds: shadow.Thresholds{MinSamples: 3},
		},
	})

	trips := ds.TestTrips()
	n := int64(0)
	for i := 0; i < 4; i++ {
		tr := trips[i%len(trips)]
		resp, body := postJSON(t, ts.URL+"/v1/match", PointsRequest(tr.Cell))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("match: %d: %s", resp.StatusCode, body)
		}
		n++
	}
	r := waitShadowSamples(t, ts.URL, n)
	if r.AgreementRate >= 1 {
		t.Fatalf("perturbed candidate agreement %v, want < 1", r.AgreementRate)
	}
	if r.Disagreements == 0 {
		t.Fatal("perturbed candidate recorded no disagreements")
	}
	if r.Verdict != shadow.VerdictNotReady {
		t.Fatalf("verdict %q (reasons %v), want not_ready", r.Verdict, r.Reasons)
	}

	// Drain flushes every queued comparison, so the capture is complete.
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(capPath)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ReadCaptures(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("disagreement capture is empty")
	}
	// Each captured record must reproduce against the active model —
	// exactly what `lhmm replay` checks.
	for i := range recs {
		rec := &recs[i]
		ct, err := rec.Request.Trajectory(m.Cells)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Match(ct)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(ResultJSON(res)); err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(buf.Bytes())
		if got := hex.EncodeToString(sum[:]); got != rec.Response.SHA256 {
			t.Fatalf("capture %d does not reproduce: digest %s vs recorded %s", i, got, rec.Response.SHA256)
		}
	}
}

// Finished streaming sessions are mirrored too.
func TestShadowStreamingSessions(t *testing.T) {
	ds, m := fixture(t)
	cand := perturbedModel(t)
	_, ts := shadowTestServer(t, m, cand, Config{
		Shadow: ShadowConfig{Thresholds: shadow.Thresholds{MinSamples: 1}},
	})

	tr := ds.TestTrips()[0]
	resp, body := postJSON(t, ts.URL+"/v1/sessions", SessionRequest{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session create: %d: %s", resp.StatusCode, body)
	}
	var sr SessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	req := PointsRequest(tr.Cell)
	resp, body = postJSON(t, ts.URL+"/v1/sessions/"+sr.ID+"/points", PushRequest{Points: req.Points})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("push: %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/sessions/"+sr.ID+"/finish", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("finish: %d: %s", resp.StatusCode, body)
	}

	r := waitShadowSamples(t, ts.URL, 1)
	if r.StreamSamples == 0 {
		t.Fatalf("no stream samples mirrored: %+v", r)
	}
}

// A failing candidate load must keep the previous candidate scoring —
// the shadow version of corrupt-weights-keep-serving.
func TestShadowLoadFailureKeepsCandidate(t *testing.T) {
	_, m := fixture(t)
	_, good := fixture(t)
	loads := 0
	cfg := Config{}
	cfg.Shadow.Loader = func(path string) (*core.Model, error) {
		loads++
		if path == "good" {
			return good, nil
		}
		return nil, errors.New("corrupt weights")
	}
	cfg.Shadow.ModelPath = "good"
	_, ts := testServer(t, m, cfg)

	r := getShadowReport(t, ts.URL)
	if !r.Enabled || r.ModelPath != "good" {
		t.Fatalf("boot candidate not installed: %+v", r)
	}

	resp, body := postJSON(t, ts.URL+"/v1/shadow/load", ShadowLoadRequest{Path: "bad"})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("bad load: %d: %s", resp.StatusCode, body)
	}
	r = getShadowReport(t, ts.URL)
	if !r.Enabled || r.ModelPath != "good" {
		t.Fatalf("failed load displaced candidate: %+v", r)
	}
	if loads != 2 {
		t.Fatalf("loader called %d times, want 2", loads)
	}
}

// POST /v1/shadow/load replaces the candidate at runtime and resets
// the per-candidate aggregates.
func TestShadowRuntimeLoadResets(t *testing.T) {
	ds, m := fixture(t)
	_, cand := fixture(t)
	srv, ts := shadowTestServer(t, m, cand, Config{
		Shadow: ShadowConfig{Thresholds: shadow.Thresholds{MinSamples: 1}},
	})

	tr := ds.TestTrips()[0]
	postJSON(t, ts.URL+"/v1/match", PointsRequest(tr.Cell))
	waitShadowSamples(t, ts.URL, 1)

	resp, body := postJSON(t, ts.URL+"/v1/shadow/load", ShadowLoadRequest{Path: "candidate-2"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %d: %s", resp.StatusCode, body)
	}
	// Quiesce the mirror before reading the reset aggregate — a stale
	// in-flight comparison would race the assertion otherwise.
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	r := getShadowReport(t, ts.URL)
	if r.Samples != 0 {
		t.Fatalf("samples %d after candidate reload, want 0 (reset)", r.Samples)
	}
	if r.ModelPath != "candidate-2" {
		t.Fatalf("model path %q, want candidate-2", r.ModelPath)
	}
}
