package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
)

// A failed reload — here a genuinely corrupt weights payload going
// through Model.Load — must leave the previously published model
// serving.
func TestReloadKeepsOldModelOnCorruptWeights(t *testing.T) {
	ds, _ := fixture(t)
	calls := 0
	loader := func() (*core.Model, error) {
		calls++
		m, err := core.New(ds, ds.TrainTrips(), fixCfg)
		if err != nil {
			return nil, err
		}
		if calls > 1 {
			// Second load: corrupt weights file. Load validates before
			// writing, so this must fail cleanly.
			if err := m.Load(strings.NewReader(`{"corrupt": tru`)); err != nil {
				return nil, err
			}
			return m, nil
		}
		m.RefreshEmbeddings()
		return m, nil
	}
	reg := NewRegistry(loader)

	if reg.Model() != nil {
		t.Fatal("registry non-empty before first reload")
	}
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	old := reg.Model()
	if old == nil {
		t.Fatal("no model after successful reload")
	}

	if err := reg.Reload(); err == nil {
		t.Fatal("reload with corrupt weights succeeded")
	}
	if reg.Model() != old {
		t.Fatal("failed reload replaced the served model")
	}

	// The kept model still matches.
	tr := ds.TestTrips()[0]
	if _, err := old.Match(tr.Cell); err != nil {
		t.Fatalf("old model broken after failed reload: %v", err)
	}
}

func TestReloadFailpoint(t *testing.T) {
	_, m := fixture(t)
	reg := staticRegistry(t, m)
	t.Cleanup(faultinject.DisarmAll)

	old := reg.Model()
	if err := faultinject.Arm("serve.reload.fail"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Reload(); err == nil {
		t.Fatal("reload with armed failpoint succeeded")
	}
	if reg.Model() != old {
		t.Fatal("faulted reload replaced the served model")
	}
	faultinject.DisarmAll()
	if err := reg.Reload(); err != nil {
		t.Fatalf("reload after disarm: %v", err)
	}
}

func TestReloadLoaderMustProduceEmbeddings(t *testing.T) {
	ds, _ := fixture(t)
	reg := NewRegistry(func() (*core.Model, error) {
		// A skeleton without RefreshEmbeddings/Load is unusable; the
		// registry must refuse to publish it.
		return core.New(ds, ds.TrainTrips(), fixCfg)
	})
	if err := reg.Reload(); err == nil {
		t.Fatal("reload published a model without embeddings")
	}
	if reg.Model() != nil {
		t.Fatal("unusable model published")
	}
}

// End to end over HTTP: a failed /v1/reload answers 5xx and matching
// continues on the old model.
func TestReloadHTTP(t *testing.T) {
	ds, m := fixture(t)
	calls := 0
	reg := NewRegistry(func() (*core.Model, error) {
		calls++
		if calls > 1 {
			return nil, fmt.Errorf("weights file corrupted")
		}
		return m, nil
	})
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	s, err := New(reg, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	resp, body := postJSON(t, hs.URL+"/v1/reload", nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failed reload: %d (%s), want 500", resp.StatusCode, body)
	}
	tr := ds.TestTrips()[0]
	resp, body = postJSON(t, hs.URL+"/v1/match", PointsRequest(tr.Cell))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match after failed reload: %d (%s), want 200", resp.StatusCode, body)
	}
}
