package serve

import (
	"log/slog"
	"net/http"
	"time"

	"repro/internal/obs"
)

// Request middleware: request-ID echo, W3C traceparent ingestion and
// propagation, probabilistic span sampling, and per-request structured
// access logs. With tracing disabled and logging off, the added cost
// over the bare mux is one header read and a status-capturing wrapper.

// statusWriter captures the response status for spans and access logs.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Handler returns the server's HTTP handler: the instrumented mux
// wrapped with request-ID, tracing, and access-log middleware.
//
// Every response echoes X-Request-ID (the client's, or a generated
// one). A request carrying a sampled W3C traceparent is always traced
// (when the tracer is enabled) and its trace continues under the
// upstream trace ID; otherwise the tracer's sampling rate decides. A
// traced response carries the outgoing traceparent header so clients
// can correlate their copy of the trace.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		obsRequests.Inc()
		start := time.Now()

		reqID := r.Header.Get("X-Request-ID")
		if reqID == "" {
			reqID = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", reqID)

		var traceID, parentID string
		upstreamSampled := false
		if tp := r.Header.Get("traceparent"); tp != "" {
			if tid, sid, sampled, ok := obs.ParseTraceparent(tp); ok {
				traceID, parentID, upstreamSampled = tid, sid, sampled
			}
		}
		var sp *obs.Span
		if upstreamSampled || obs.DefaultTracer.ShouldSample() {
			sp = obs.DefaultTracer.StartSpan("request", traceID, parentID)
		}
		if sp != nil {
			sp.SetAttr("method", r.Method)
			sp.SetAttr("path", r.URL.Path)
			sp.SetAttr("request_id", reqID)
			w.Header().Set("traceparent", obs.Traceparent(sp.TraceID, sp.SpanID, true))
			r = r.WithContext(obs.ContextWithSpan(r.Context(), sp))
		}

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		s.mux.ServeHTTP(sw, r)

		dur := time.Since(start)
		obsRequestS.Observe(dur.Seconds())
		if sp != nil {
			sp.SetAttr("status", sw.status)
			sp.End()
		}
		if l := obs.Logger(); l.Enabled(r.Context(), slog.LevelInfo) {
			l.Info("request",
				slog.String("request_id", reqID),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Float64("duration_s", dur.Seconds()),
				slog.Float64("p99_s", s.qm.P99()),
			)
		}
	})
}
