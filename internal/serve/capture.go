package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hmm"
	"repro/internal/obs"
)

// Request capture: a sampled JSONL record of what the matcher was
// asked, under which effective configuration, and a digest of what it
// answered. `lhmm replay` re-runs captured requests against a model
// and diffs the response digests — the regression harness for model
// rollouts and scoring refactors. Only plain (non-debug, non-explain)
// whole-trajectory matches are captured: those are the requests whose
// byte-identical reproducibility the service guarantees.

// CaptureSchema identifies the capture record format.
const CaptureSchema = "lhmm-capture/v1"

// Capture telemetry.
var (
	obsCaptured    = obs.Default.Counter("serve.capture.records")
	obsCaptureErrs = obs.Default.Counter("serve.capture.errors")
)

// CaptureRecord is one line of a capture file.
type CaptureRecord struct {
	Schema string `json:"schema"`
	ID     string `json:"id"`
	Time   string `json:"time,omitempty"`
	// Request is the request body verbatim (points + options).
	Request MatchRequest `json:"request"`
	// Config is the effective matching configuration the request ran
	// under, after per-request overrides (what replay must reproduce).
	Config CaptureConfig `json:"config"`
	// Response digests the encoded response body.
	Response CaptureDigest `json:"response"`
}

// CaptureConfig pins the effective per-request matching configuration.
type CaptureConfig struct {
	OnBreak   string `json:"on_break"`
	Sanitize  string `json:"sanitize"`
	K         int    `json:"k"`
	Shortcuts int    `json:"shortcuts"`
}

// CaptureDigest summarizes the response body a capture observed.
type CaptureDigest struct {
	// SHA256 is the hex digest of the exact response bytes (the
	// replay comparison key).
	SHA256 string `json:"sha256"`
	Bytes  int    `json:"bytes"`
	// Denormalized headline fields so capture files are greppable
	// without re-running anything.
	Score    float64 `json:"score"`
	PathLen  int     `json:"path_len"`
	Degraded int     `json:"degraded,omitempty"`
	Gaps     int     `json:"gaps,omitempty"`
}

// Capture writes sampled CaptureRecords as JSONL. Safe for concurrent
// use; sampling is deterministic (every 1/rate-th eligible request),
// so a smoke run with rate 1 captures everything and capture files are
// reproducible under load tests.
type Capture struct {
	mu   sync.Mutex
	w    io.Writer
	c    io.Closer
	rate float64
	seq  int64
}

// NewCapture wraps w. rate is clamped to [0,1]; records are sampled so
// that seq*rate crossing an integer boundary captures (rate 1 = all,
// 0.1 = every 10th).
func NewCapture(w io.Writer, rate float64) *Capture {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return &Capture{w: w, rate: rate}
}

// OpenCaptureFile creates (or truncates) a capture file.
func OpenCaptureFile(path string, rate float64) (*Capture, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("serve: capture out: %w", err)
	}
	c := NewCapture(f, rate)
	c.c = f
	return c, nil
}

// Close flushes nothing (writes are line-buffered by the OS) and
// closes the underlying file when OpenCaptureFile created one.
func (c *Capture) Close() error {
	if c == nil || c.c == nil {
		return nil
	}
	return c.c.Close()
}

// Record samples and writes one request/response pair. body must be
// the exact bytes sent to the client. Errors are counted and logged,
// never surfaced to the request path.
func (c *Capture) Record(req *MatchRequest, m *core.Model, res *hmm.Result, body []byte) {
	if c == nil || c.rate <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	if int64(float64(c.seq)*c.rate) == int64(float64(c.seq-1)*c.rate) {
		return
	}
	sum := sha256.Sum256(body)
	rec := CaptureRecord{
		Schema:  CaptureSchema,
		ID:      fmt.Sprintf("c%08d", c.seq),
		Time:    time.Now().UTC().Format(time.RFC3339),
		Request: *req,
		Config: CaptureConfig{
			OnBreak:   m.Cfg.OnBreak.String(),
			Sanitize:  m.Cfg.Sanitize.String(),
			K:         m.Cfg.K,
			Shortcuts: m.Cfg.Shortcuts,
		},
		Response: CaptureDigest{
			SHA256:   hex.EncodeToString(sum[:]),
			Bytes:    len(body),
			Score:    sanitizeFloat(res.Score),
			PathLen:  len(res.Path),
			Degraded: res.Degraded,
			Gaps:     len(res.Gaps),
		},
	}
	line, err := json.Marshal(rec)
	if err != nil {
		obsCaptureErrs.Inc()
		return
	}
	line = append(line, '\n')
	if _, err := c.w.Write(line); err != nil {
		obsCaptureErrs.Inc()
		obs.Logger().Warn("serve: capture write failed", "err", err)
		return
	}
	obsCaptured.Inc()
}

// ReadCaptures parses a capture JSONL stream, skipping blank lines and
// validating the schema tag per record.
func ReadCaptures(r io.Reader) ([]CaptureRecord, error) {
	dec := json.NewDecoder(r)
	var recs []CaptureRecord
	for {
		var rec CaptureRecord
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("serve: capture record %d: %w", len(recs)+1, err)
		}
		if rec.Schema != CaptureSchema {
			return nil, fmt.Errorf("serve: capture record %d: unknown schema %q (want %s)", len(recs)+1, rec.Schema, CaptureSchema)
		}
		recs = append(recs, rec)
	}
	return recs, nil
}
