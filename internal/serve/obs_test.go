package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// syncBuffer is a goroutine-safe writer for capturing tracer and log
// output from handler goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

func (b *syncBuffer) String() string { return string(b.Bytes()) }

// GET /v1/quality reports the windowed rates, echoes the thresholds,
// and counts the traffic the match endpoint served.
func TestQualityEndpoint(t *testing.T) {
	ds, m := fixture(t)
	_, ts := testServer(t, m, Config{Quality: obs.QualityConfig{
		Window:          time.Minute,
		MaxDegradedRate: 0.5,
		MaxP99:          10 * time.Second,
	}})
	tr := ds.TestTrips()[0]
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/match", PointsRequest(tr.Cell))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("match %d: %d: %s", i, resp.StatusCode, body)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/quality")
	if err != nil {
		t.Fatal(err)
	}
	var rep obs.QualityReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rep.Status != "ok" {
		t.Errorf("status %q, want ok", rep.Status)
	}
	if rep.Matches != 3 || rep.Requests != 3 {
		t.Errorf("counts %d/%d, want 3 matches of 3 requests", rep.Matches, rep.Requests)
	}
	if rep.WindowS != 60 {
		t.Errorf("window %gs, want 60", rep.WindowS)
	}
	if rep.Thresholds.MaxDegradedRate != 0.5 || rep.Thresholds.MaxP99S != 10 {
		t.Errorf("thresholds not echoed: %+v", rep.Thresholds)
	}
	if rep.P99S <= 0 {
		t.Errorf("windowed p99 %g, want > 0 after 3 matches", rep.P99S)
	}
}

// ?debug=1 appends the MatchTrace; the leading bytes stay identical to
// the non-debug encoding, so debug mode can never perturb parity.
func TestDebugMatchTrace(t *testing.T) {
	ds, m := fixture(t)
	_, ts := testServer(t, m, Config{})
	tr := ds.TestTrips()[0]

	_, plain := postJSON(t, ts.URL+"/v1/match", PointsRequest(tr.Cell))
	resp, debug := postJSON(t, ts.URL+"/v1/match?debug=1", PointsRequest(tr.Cell))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug match: %d: %s", resp.StatusCode, debug)
	}

	var dres DebugMatchResponse
	if err := json.Unmarshal(debug, &dres); err != nil {
		t.Fatal(err)
	}
	if dres.Trace == nil {
		t.Fatal("debug response has no trace block")
	}
	if len(dres.Trace.Points) == 0 {
		t.Error("trace has no per-point rows")
	}
	if dres.Trace.Stages.TotalS <= 0 {
		t.Error("trace has no stage timings")
	}

	// plain is `{...}\n`; debug must start with the same `{...` prefix
	// (everything up to the closing brace) and only append after it.
	prefix := bytes.TrimRight(plain, "}\n")
	if !bytes.HasPrefix(debug, prefix) {
		t.Error("debug response diverges from the non-debug encoding before the trace block")
	}
	if !bytes.Contains(debug, []byte(`"trace":`)) {
		t.Error("debug response missing trace field")
	}
	if bytes.Contains(plain, []byte(`"trace":`)) {
		t.Error("non-debug response leaked a trace field")
	}
}

// A sampled request exports a span tree covering the whole pipeline:
// request -> admission + match -> sanitize/candidates/observation/
// viterbi(transition)/route, all under one trace ID, with stage spans
// fitting inside their parents.
func TestRequestTracingSpans(t *testing.T) {
	ds, m := fixture(t)
	_, ts := testServer(t, m, Config{})
	tr := ds.TestTrips()[0]

	var sink syncBuffer
	obs.DefaultTracer.SetOutput(&sink)
	defer obs.DefaultTracer.SetOutput(nil)

	upTrace := strings.Repeat("ab", 16)
	upSpan := strings.Repeat("cd", 8)
	body, err := json.Marshal(PointsRequest(tr.Cell))
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/v1/match", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", obs.Traceparent(upTrace, upSpan, true))
	req.Header.Set("X-Request-ID", "req-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "req-42" {
		t.Errorf("X-Request-ID %q not echoed", got)
	}
	tp := resp.Header.Get("traceparent")
	gotTrace, _, sampled, ok := obs.ParseTraceparent(tp)
	if !ok || !sampled || gotTrace != upTrace {
		t.Errorf("response traceparent %q does not continue upstream trace %s", tp, upTrace)
	}

	var spans []obs.SpanRecord
	dec := json.NewDecoder(bytes.NewReader(sink.Bytes()))
	for dec.More() {
		var r obs.SpanRecord
		if err := dec.Decode(&r); err != nil {
			t.Fatal(err)
		}
		spans = append(spans, r)
	}
	byName := map[string]obs.SpanRecord{}
	for _, sp := range spans {
		if sp.TraceID != upTrace {
			t.Errorf("span %s trace %s, want upstream %s", sp.Name, sp.TraceID, upTrace)
		}
		byName[sp.Name] = sp
	}
	for _, want := range []string{
		"request", "admission", "match", "sanitize", "session_init",
		"candidates", "observation", "viterbi", "transition",
		"shortcuts", "backtrack", "route",
	} {
		if _, ok := byName[want]; !ok {
			t.Errorf("missing span %q in trace (have %d spans)", want, len(spans))
		}
	}
	root := byName["request"]
	if root.ParentID != upSpan {
		t.Errorf("root parent %s, want upstream span %s", root.ParentID, upSpan)
	}
	if root.Attrs["request_id"] != "req-42" || root.Attrs["path"] != "/v1/match" {
		t.Errorf("root attrs %v missing request_id/path", root.Attrs)
	}
	// The top-level match stages partition the match span: their
	// durations sum to no more than the match (and the match fits in
	// the request), within scheduling slack.
	const slack = 0.010
	match := byName["match"]
	var stageSum float64
	for _, name := range []string{"sanitize", "session_init", "candidates", "viterbi", "shortcuts", "backtrack", "route"} {
		if sp, ok := byName[name]; ok {
			if sp.ParentID != match.SpanID {
				t.Errorf("span %s parent %s, want match %s", name, sp.ParentID, match.SpanID)
			}
			stageSum += sp.DurationS
		}
	}
	if stageSum == 0 {
		t.Error("stage spans have zero total duration")
	}
	if stageSum > match.DurationS+slack {
		t.Errorf("stage durations sum %.6fs exceed match span %.6fs", stageSum, match.DurationS)
	}
	if match.DurationS > root.DurationS+slack {
		t.Errorf("match span %.6fs exceeds request span %.6fs", match.DurationS, root.DurationS)
	}
	if tsp := byName["transition"]; tsp.ParentID != byName["viterbi"].SpanID {
		t.Errorf("transition parent %s, want viterbi %s", tsp.ParentID, byName["viterbi"].SpanID)
	}
}

// Forcing learned-scoring NaNs through the failpoints drives every
// match degraded: the monitor crosses MaxDegradedRate, logs the warn
// transition, flips the gauge, and /readyz reports the degraded detail
// while staying 200.
func TestQualityDegradedByFaultInjection(t *testing.T) {
	ds, m := fixture(t)
	_, ts := testServer(t, m, Config{Quality: obs.QualityConfig{
		Window:          time.Minute,
		MinSamples:      2,
		MaxDegradedRate: 0.05,
	}})
	tr := ds.TestTrips()[0]

	var logs syncBuffer
	old := obs.Logger()
	obs.SetLogger(slog.New(slog.NewTextHandler(&logs, &slog.HandlerOptions{Level: slog.LevelInfo})))
	defer obs.SetLogger(old)

	t.Cleanup(faultinject.DisarmAll)
	// core.trans.nan poisons the batch scoring path (the learned
	// model's), hmm.trans.nan the scalar one; arming both covers
	// whichever the matcher takes.
	if err := faultinject.Arm("core.trans.nan,hmm.trans.nan"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/match", PointsRequest(tr.Cell))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("degraded match %d: %d: %s", i, resp.StatusCode, body)
		}
		var mres MatchResponse
		if err := json.Unmarshal(body, &mres); err != nil {
			t.Fatal(err)
		}
		if mres.Degraded == 0 {
			t.Fatalf("match %d not degraded under trans.nan faults", i)
		}
	}
	faultinject.DisarmAll()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz %d, want 200 (degraded quality must not unready)", resp.StatusCode)
	}
	if ready["status"] != "ready" || ready["quality"] != "degraded" {
		t.Errorf("/readyz %v, want status=ready quality=degraded", ready)
	}

	resp, err = http.Get(ts.URL + "/v1/quality")
	if err != nil {
		t.Fatal(err)
	}
	var rep obs.QualityReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rep.Status != "degraded" {
		t.Errorf("quality status %q, want degraded", rep.Status)
	}
	hasViol := false
	for _, v := range rep.Violations {
		if v == "degraded_rate" {
			hasViol = true
		}
	}
	if !hasViol {
		t.Errorf("violations %v missing degraded_rate", rep.Violations)
	}

	if out := logs.String(); !strings.Contains(out, "quality degraded") ||
		!strings.Contains(out, "level=WARN") {
		t.Errorf("no warn-level quality-degraded transition in logs:\n%s", out)
	}
}

// Scraping /metrics while matches run must be race-free (this test's
// teeth come from -race in CI) and every scrape must stay well-formed.
func TestConcurrentScrapeWhileMatching(t *testing.T) {
	ds, m := fixture(t)
	_, ts := testServer(t, m, Config{Workers: 4})
	tr := ds.TestTrips()[0]
	body, err := json.Marshal(PointsRequest(tr.Cell))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				resp, err := http.Post(ts.URL+"/v1/match", "application/json", bytes.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				resp.Body.Close()
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					errc <- err
					return
				}
				b := new(bytes.Buffer)
				b.ReadFrom(resp.Body) //nolint:errcheck
				resp.Body.Close()
				if err := obs.ValidatePromText(b.Bytes()); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
